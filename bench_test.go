// Benchmarks regenerating every figure of the MACEDON paper's evaluation at
// reduced but shape-preserving scale, plus ablations of the design choices
// DESIGN.md calls out. Full-scale regeneration: go run ./cmd/experiments.
//
// Reported custom metrics carry the quantity each figure plots, so one
// -bench=. run yields the whole paper-vs-measured table of EXPERIMENTS.md.
package main

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/dsl"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
	"macedon/internal/overlays/pastry"
	"macedon/internal/repo"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
	"macedon/internal/topology"
	"macedon/internal/transport"
)

// BenchmarkFigure7SpecLines reports the Figure-7 LOC metric for the bundled
// specifications (mean lines per spec, and total).
func BenchmarkFigure7SpecLines(b *testing.B) {
	paths, err := repo.Specs()
	if err != nil || len(paths) == 0 {
		b.Fatalf("no specs: %v", err)
	}
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				b.Fatal(err)
			}
			total += dsl.CountLines(string(src))
		}
	}
	b.ReportMetric(float64(total), "loc_total")
	b.ReportMetric(float64(total)/float64(len(paths)), "loc_per_spec")
}

// BenchmarkFigure8NICEStretch runs the NICE site experiment and reports the
// mean stretch across sites (paper band: ~1–2.5).
func BenchmarkFigure8NICEStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunNICE(harness.NICEParams{
			Sites: 8, PerSite: 4, Seed: 2004,
			Settle: 3 * time.Minute, Packets: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		var far float64
		for _, s := range res.Sites[1:] {
			if s.MeanStretch > 0 {
				sum += s.MeanStretch
				n++
				far = s.MeanStretch
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "stretch_mean")
			b.ReportMetric(far, "stretch_far_site")
		}
	}
}

// BenchmarkFigure9NICELatency reports per-site overlay latency (paper band:
// ~5–40 ms).
func BenchmarkFigure9NICELatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunNICE(harness.NICEParams{
			Sites: 8, PerSite: 4, Seed: 2004,
			Settle: 3 * time.Minute, Packets: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Min and max mean latency across receiving sites: the span of the
		// figure's per-site bars (overlay detours mean site index is not
		// strictly monotone, as in the published figure).
		var lo, hi time.Duration
		for _, s := range res.Sites[1:] {
			if s.Received == 0 {
				continue
			}
			if lo == 0 || s.MeanLatency < lo {
				lo = s.MeanLatency
			}
			if s.MeanLatency > hi {
				hi = s.MeanLatency
			}
		}
		b.ReportMetric(float64(lo.Microseconds())/1000, "min_site_ms")
		b.ReportMetric(float64(hi.Microseconds())/1000, "max_site_ms")
	}
}

// BenchmarkFigure10ChordConvergence reports the final average correct route
// entries for the three timer policies (paper ordering: 1 s > lsd > 20 s).
func BenchmarkFigure10ChordConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunChordConvergence(harness.ChordParams{
			Nodes: 60, Routers: 240, Seed: 2004,
			JoinWindow: 20 * time.Second, Duration: 100 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		finals := res.FinalValues()
		b.ReportMetric(finals["MACEDON (1 sec timer)"], "correct_1s")
		b.ReportMetric(finals["MIT lsd (dynamic)"], "correct_lsd")
		b.ReportMetric(finals["MACEDON (20 sec timer)"], "correct_20s")
	}
}

// BenchmarkFigure11PastryLatency reports MACEDON vs FreePastry-model mean
// latency at the largest common size (paper: MACEDON ~80% lower).
func BenchmarkFigure11PastryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunPastryLatency(harness.PastryParams{
			Sizes: []int{25, 50}, Seed: 2004,
			Converge: 90 * time.Second, Measure: 15 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		m := res.MACEDON.Points[len(res.MACEDON.Points)-1].Y
		f := res.FreePastry.Points[len(res.FreePastry.Points)-1].Y
		b.ReportMetric(m*1000, "macedon_ms")
		b.ReportMetric(f*1000, "freepastry_ms")
		if f > 0 {
			b.ReportMetric((1-m/f)*100, "reduction_pct")
		}
	}
}

// BenchmarkFigure12SplitStreamBandwidth reports steady-state delivered
// bandwidth under the two cache policies (paper: 580 vs 500 Kbps at a
// 600 Kbps target; scaled here).
func BenchmarkFigure12SplitStreamBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunSplitStream(harness.SplitStreamParams{
			Nodes: 30, Routers: 150, Seed: 2004,
			Stripes: 8, Converge: 90 * time.Second, Stream: 60 * time.Second,
			RateBitsSec: 200_000, PacketSize: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		ss := res.SteadyStateKbps()
		b.ReportMetric(ss["Avg Bandwidth (no cache evictions)"], "noevict_kbps")
		b.ReportMetric(ss["Avg Bandwidth (10 sec cache lifetime)"], "ttl10_kbps")
		b.ReportMetric(float64(res.TargetBitsSec)/1000, "target_kbps")
	}
}

// BenchmarkScenarioChurnShards runs the acceptance-shaped churn scenario on
// 1, 2, and 4 event-loop shards. Output is byte-identical across the
// variants (the golden corpus enforces it); the metric of interest is wall
// clock, which the benchmark harness reports as ns/op. On multi-core
// runners shards=4 should beat shards=1; the BENCH artifacts accumulate the
// trajectory.
func BenchmarkScenarioChurnShards(b *testing.B) {
	mk := func() *scenario.Scenario {
		return &scenario.Scenario{
			Name:     "bench-churn",
			Seed:     2004,
			Nodes:    150,
			Routers:  450,
			Protocol: "chord",
			Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(10 * time.Second)},
			Settle:   scenario.Duration(45 * time.Second),
			Drain:    scenario.Duration(10 * time.Second),
			Phases: []scenario.Phase{
				{
					Name:     "churn",
					Duration: scenario.Duration(45 * time.Second),
					Churn: &scenario.Churn{
						Model:    "poisson",
						Rate:     0.2,
						Downtime: scenario.Duration(15 * time.Second),
					},
					Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 5},
				},
			},
		}
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events int
			for i := 0; i < b.N; i++ {
				rep, err := harness.RunScenarioShards(mk(), shards)
				if err != nil {
					b.Fatal(err)
				}
				events = rep.EventsRun
			}
			b.ReportMetric(float64(events), "scenario_ops")
		})
	}
}

// BenchmarkScenarioChurnObs runs the same churn scenario with the
// observability plane off and on at a fixed shard count. The pair is the CI
// obs-overhead guard's input: the perf lane compares the two ns/op values
// and fails when obs-on costs more than the budgeted fraction over obs-off,
// pinning the "pay only when enabled" contract of internal/obs.
func BenchmarkScenarioChurnObs(b *testing.B) {
	mk := func() *scenario.Scenario {
		return &scenario.Scenario{
			Name:     "bench-churn",
			Seed:     2004,
			Nodes:    150,
			Routers:  450,
			Protocol: "chord",
			Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(10 * time.Second)},
			Settle:   scenario.Duration(45 * time.Second),
			Drain:    scenario.Duration(10 * time.Second),
			Phases: []scenario.Phase{
				{
					Name:     "churn",
					Duration: scenario.Duration(45 * time.Second),
					Churn: &scenario.Churn{
						Model:    "poisson",
						Rate:     0.2,
						Downtime: scenario.Duration(15 * time.Second),
					},
					Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 5},
				},
			},
		}
	}
	for _, c := range []struct {
		name string
		obs  bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := harness.RunScenarioExec(mk(), harness.ExecOptions{
					Shards: 2,
					Obs:    harness.ObsOptions{Enabled: c.obs},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablations -----------------------------------------------------------------

// BenchmarkAblationReadVsWriteLocking measures the paper's control/data
// transition classification (§2.1.2): concurrent data transitions under
// read locks vs forced exclusive locks.
func BenchmarkAblationReadVsWriteLocking(b *testing.B) {
	run := func(b *testing.B, lock core.LockMode) {
		g := topology.NewGraph()
		r := g.AddRouter()
		g.AttachClient(1, r, topology.DefaultAccess)
		sched := simnet.NewScheduler(1)
		net := simnet.New(sched, g, simnet.Config{})
		probe := &lockProbe{mode: lock}
		n, err := core.NewNode(core.Config{
			Addr: 1, Net: net, Bootstrap: 1,
			Stack: []core.Factory{func() core.Agent { return probe }},
		})
		if err != nil {
			b.Fatal(err)
		}
		sched.RunFor(time.Millisecond)
		const workers = 8
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N / workers
		if per == 0 {
			per = 1
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					probe.fire(n)
				}
			}()
		}
		wg.Wait()
	}
	b.Run("read", func(b *testing.B) { run(b, core.Read) })
	b.Run("write", func(b *testing.B) { run(b, core.Write) })
}

// lockProbe is a minimal agent with one data transition whose lock mode is
// configurable; fire dispatches it directly, bypassing the node queue to
// exercise true lock concurrency.
type lockProbe struct {
	mode core.LockMode
	spin int
}

func (p *lockProbe) ProtocolName() string { return "lockprobe" }

func (p *lockProbe) Define(d *core.Def) {
	d.States("up")
	d.Addressing(core.IPAddressing)
	d.UDPTransport("U")
	d.OnAPI(overlay.APIInit, core.Any, core.Write, func(ctx *core.Context, call *core.APICall) {
		ctx.StateChange("up")
	})
	d.OnAPI(overlay.APIDowncallExt, core.Any, p.mode, func(ctx *core.Context, call *core.APICall) {
		// Simulated read-only data work.
		s := 0
		for i := 0; i < 2000; i++ {
			s += i
		}
		_ = s
	})
}

func (p *lockProbe) fire(n *core.Node) {
	n.Downcall(0, nil)
}

// BenchmarkAblationTransportPriority measures head-of-line blocking: time
// for a control frame to cross a congested link when sharing the bulk
// transport vs using a dedicated instance (§3.1's multiple transports).
func BenchmarkAblationTransportPriority(b *testing.B) {
	run := func(b *testing.B, dedicated bool) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			g := topology.NewGraph()
			r1, r2 := g.AddRouter(), g.AddRouter()
			g.AddLink(r1, r2, 5*time.Millisecond, 1_000_000, 20*1500)
			g.AttachClient(1, r1, topology.DefaultAccess)
			g.AttachClient(2, r2, topology.DefaultAccess)
			sched := simnet.NewScheduler(int64(i))
			net := simnet.New(sched, g, simnet.Config{})
			ep1, _ := net.Endpoint(1)
			ep2, _ := net.Endpoint(2)
			m1 := transport.NewMux(ep1, net)
			m2 := transport.NewMux(ep2, net)
			bulk := m1.AddTCP("bulk")
			ctrl := bulk
			m2.AddTCP("bulk")
			if dedicated {
				ctrl = m1.AddTCP("ctrl")
				m2.AddTCP("ctrl")
			}
			var at time.Duration = -1
			m2.SetRecv(func(name string, src overlay.Address, frame []byte) {
				if len(frame) == 6 && at < 0 {
					at = sched.Elapsed()
				}
			})
			_ = bulk.Send(2, make([]byte, 400_000))
			_ = ctrl.Send(2, []byte("urgent"))
			sched.RunFor(30 * time.Second)
			if at > 0 {
				total += at
			}
		}
		b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ctrl_latency_ms")
	}
	b.Run("shared", func(b *testing.B) { run(b, false) })
	b.Run("dedicated", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCacheLifetime sweeps the Pastry location-cache policy
// (generalizing Figure 12): cache fills per delivered payload.
func BenchmarkAblationCacheLifetime(b *testing.B) {
	for _, c := range []struct {
		name     string
		lifetime time.Duration
	}{
		{"disabled", 0},
		{"ttl_2s", 2 * time.Second},
		{"forever", -1},
	} {
		b.Run(c.name, func(b *testing.B) {
			var fills, direct uint64
			for i := 0; i < b.N; i++ {
				cl, err := harness.NewCluster(harness.ClusterConfig{Nodes: 16, Routers: 100, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				stack := []core.Factory{pastry.New(pastry.Params{CacheLifetime: c.lifetime})}
				if err := cl.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
					b.Fatal(err)
				}
				cl.RunFor(60 * time.Second)
				src := cl.Nodes[cl.Addrs[3]]
				dest := overlay.Key(0x77777777)
				for k := 0; k < 20; k++ {
					_ = src.Route(dest, make([]byte, 100), 1, overlay.PriorityDefault)
					cl.RunFor(500 * time.Millisecond)
				}
				p := src.Instance("pastry").Agent().(*pastry.Protocol)
				fills += p.CacheFills()
				direct += p.DirectSends()
				cl.StopAll()
			}
			b.ReportMetric(float64(fills)/float64(b.N), "cache_fills")
			b.ReportMetric(float64(direct)/float64(b.N), "direct_sends")
		})
	}
}

// BenchmarkAblationChordTimerSweep generalizes Figure 10: convergence level
// after a fixed window for a range of fix-fingers periods.
func BenchmarkAblationChordTimerSweep(b *testing.B) {
	for _, period := range []time.Duration{time.Second, 4 * time.Second, 20 * time.Second} {
		b.Run(period.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.RunChordConvergence(harness.ChordParams{
					Nodes: 40, Routers: 160, Seed: 2004,
					JoinWindow: 15 * time.Second, Duration: 60 * time.Second,
					Modes: []harness.ChordMode{{Name: "sweep", Period: period}},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalValues()["sweep"], "correct_entries")
			}
		})
	}
}

// BenchmarkAblationFailureDetector measures detection latency for (g, f)
// failure-detector settings (§3.1's configurable parameters).
func BenchmarkAblationFailureDetector(b *testing.B) {
	for _, c := range []struct {
		name string
		g, f time.Duration
	}{
		{"g2_f6", 2 * time.Second, 6 * time.Second},
		{"g5_f20", 5 * time.Second, 20 * time.Second},
	} {
		b.Run(c.name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				cl, err := harness.NewCluster(harness.ClusterConfig{
					Nodes: 8, Routers: 80, Seed: int64(i),
					HeartbeatAfter: c.g, FailAfter: c.f, Sweep: 500 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				stack := []core.Factory{chord.New(chord.Params{})}
				if err := cl.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
					b.Fatal(err)
				}
				cl.RunFor(45 * time.Second)
				victim := cl.Addrs[3]
				_ = cl.Net.SetDown(victim, true)
				start := cl.Sched.Elapsed()
				// Wait until someone detects the failure.
				for cl.Sched.Elapsed()-start < 2*c.f+10*time.Second {
					cl.RunFor(time.Second)
					detected := false
					for _, a := range cl.Addrs {
						if a == victim {
							continue
						}
						if cl.Nodes[a].Instance("chord").Counters().Failures > 0 {
							detected = true
							break
						}
					}
					if detected {
						break
					}
				}
				total += cl.Sched.Elapsed() - start
				cl.StopAll()
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "detect_s")
		})
	}
}

// BenchmarkSweepSharedPrefix is the checkpoint/fork acceptance benchmark: a
// K=4 churn-rate sweep whose variants share one settled prefix, against the
// same four variants executed cold. Both produce byte-identical per-variant
// reports (TestSweepMatchesColdRuns gates that); the ns/op gap is the
// prefix re-simulation the fork saves. The sweep run also reports the
// measured speedup as a custom metric.
func BenchmarkSweepSharedPrefix(b *testing.B) {
	mkSweep := func() *scenario.Sweep {
		return &scenario.Sweep{
			Name: "bench-sweep",
			Base: scenario.Scenario{
				Name:     "bench-sweep",
				Seed:     2004,
				Nodes:    40,
				Routers:  160,
				Protocol: "chord",
				Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(15 * time.Second)},
				Settle:   scenario.Duration(90 * time.Second),
				Drain:    scenario.Duration(5 * time.Second),
				Phases: []scenario.Phase{
					{
						Name:     "churn",
						Duration: scenario.Duration(20 * time.Second),
						Churn:    &scenario.Churn{Model: "poisson", Rate: 0.1, Downtime: scenario.Duration(10 * time.Second)},
						Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 2},
					},
				},
			},
			Variants: []scenario.SweepVariant{
				{Name: "r05", ChurnRate: 0.05},
				{Name: "r10", ChurnRate: 0.10},
				{Name: "r20", ChurnRate: 0.20},
				{Name: "r40", ChurnRate: 0.40},
			},
		}
	}
	b.Run("fork4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := harness.RunSweep(mkSweep(), 2)
			if err != nil {
				b.Fatal(err)
			}
			var branches time.Duration
			for _, vr := range rep.Results {
				if !vr.SharedPrefix {
					b.Fatal("bench sweep variant ran cold")
				}
				branches += vr.BranchWall
			}
			cold := 4*rep.PrefixWall + branches
			if rep.TotalWall > 0 {
				b.ReportMetric(float64(cold)/float64(rep.TotalWall), "speedup_vs_cold")
			}
		}
	})
	b.Run("cold4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vs, err := mkSweep().Resolve()
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range vs {
				if _, err := harness.RunScenarioShards(v.Scenario, 2); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
