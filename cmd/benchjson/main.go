// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON document (stdout) for the CI benchmark artifact: one record per
// benchmark with every reported metric, plus run metadata. The artifacts
// (BENCH_<sha>.json) accumulate the repository's performance trajectory.
//
//	go test -run '^$' -bench . -benchtime=1x | benchjson > BENCH_$(git rev-parse HEAD).json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the artifact schema.
type Document struct {
	Commit    string    `json:"commit,omitempty"`
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	Results   []Result  `json:"results"`
}

func main() {
	doc := Document{
		Commit:    os.Getenv("GITHUB_SHA"),
		Timestamp: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value/unit pairs: "123 ns/op 4.5 stretch_mean".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
