// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON document (stdout) for the CI benchmark artifact: one record per
// benchmark with every reported metric, plus run metadata. The artifacts
// (BENCH_<sha>.json) accumulate the repository's performance trajectory.
//
//	go test -run '^$' -bench . -benchtime=1x | benchjson > BENCH_$(git rev-parse HEAD).json
//
// With -compare, benchjson is the CI bench-trend gate instead: it diffs two
// artifacts and fails (exit 1) when any benchmark present in both regressed
// ns/op, allocs/op, or B/op beyond the threshold — wall clock and the
// allocation hot path are gated together, so a speedup bought by garbage
// can't slip through. Benchmarks (or metrics) appearing in only one
// artifact are reported but never fail the gate, so adding or retiring
// benchmarks seeds the trajectory without breaking it.
//
//	benchjson -compare -threshold 0.20 BENCH_<parent>.json BENCH_<sha>.json
//
// With -history, the parsed document is additionally appended to a
// committed trajectory file — one compact JSON document per line, keyed by
// commit (a re-run of the same commit replaces its line instead of
// duplicating it). `macedon report -bench` renders the file as per-benchmark
// sparkline trends.
//
//	go test -run '^$' -bench . | benchjson -history bench/history.jsonl > BENCH_$(git rev-parse HEAD).json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the artifact schema.
type Document struct {
	Commit    string    `json:"commit,omitempty"`
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	Results   []Result  `json:"results"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two artifacts: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.20, "regression fraction (ns/op, allocs/op, B/op) that fails the comparison")
	history := flag.String("history", "", "also append this run to the given trajectory file (one compact JSON document per line; an existing line for the same commit is replaced)")
	flag.Parse()
	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold))
	}
	doc := Document{
		Commit:    os.Getenv("GITHUB_SHA"),
		Timestamp: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value/unit pairs: "123 ns/op 4.5 stretch_mean".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *history != "" {
		if err := appendHistory(*history, doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: history: %v\n", err)
			os.Exit(1)
		}
	}
}

// appendHistory folds one run into the trajectory file: every retained line
// is one compact document, ordered oldest-first. A line whose commit matches
// the new document's (nonempty) commit is replaced, so re-running CI on the
// same sha keeps exactly one entry per commit.
func appendHistory(path string, doc Document) error {
	var lines []string
	if b, err := os.ReadFile(path); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			var old Document
			if err := json.Unmarshal([]byte(line), &old); err != nil {
				return fmt.Errorf("%s: bad history line: %v", path, err)
			}
			if doc.Commit != "" && old.Commit == doc.Commit {
				continue
			}
			lines = append(lines, line)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	lines = append(lines, string(b))
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// loadDoc reads one artifact.
func loadDoc(path string) (*Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// gatedMetrics are the metrics the trend gate enforces. ns/op is wall
// clock; allocs/op and B/op pin the pooled event hot path, so an
// allocation regression fails CI even when wall clock holds steady.
var gatedMetrics = []string{"ns/op", "allocs/op", "B/op"}

// runCompare is the bench-trend gate: fail when any gated metric of any
// benchmark present in both artifacts regressed beyond the threshold.
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson -compare: exactly two artifacts required (old new)")
		return 2
	}
	oldDoc, err := loadDoc(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadDoc(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	oldBy := make(map[string]Result)
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r
	}
	fmt.Printf("bench trend: %s (%s) -> %s (%s), threshold %+.0f%% on %s\n",
		shortSha(oldDoc.Commit), args[0], shortSha(newDoc.Commit), args[1],
		threshold*100, strings.Join(gatedMetrics, ", "))
	fmt.Printf("%-52s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	failed := 0
	seen := make(map[string]bool)
	var names []string
	byName := make(map[string]Result)
	for _, r := range newDoc.Results {
		names = append(names, r.Name)
		byName[r.Name] = r
	}
	sort.Strings(names)
	for _, name := range names {
		r := byName[name]
		seen[name] = true
		old, inOld := oldBy[name]
		for _, metric := range gatedMetrics {
			nv, ok := r.Metrics[metric]
			if !ok || nv <= 0 {
				continue
			}
			if !inOld {
				fmt.Printf("%-52s %-10s %14s %14.0f %9s\n", name, metric, "-", nv, "new")
				continue
			}
			ov, ok := old.Metrics[metric]
			if !ok || ov <= 0 {
				// Metric newly reported (e.g. -benchmem just turned on):
				// seeds the trajectory, never fails the gate.
				fmt.Printf("%-52s %-10s %14s %14.0f %9s\n", name, metric, "-", nv, "new")
				continue
			}
			delta := nv/ov - 1
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				failed++
			}
			fmt.Printf("%-52s %-10s %14.0f %14.0f %+8.1f%%%s\n", name, metric, ov, nv, delta*100, mark)
		}
	}
	var gone []string
	for name := range oldBy {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("%-52s %-10s %14s %14s %9s\n", name, "", "-", "-", "gone")
	}
	if failed > 0 {
		fmt.Printf("FAIL: %d metric(s) regressed by more than %.0f%%\n", failed, threshold*100)
		return 1
	}
	fmt.Printf("ok: no regression beyond threshold on %s\n", strings.Join(gatedMetrics, ", "))
	return 0
}

func shortSha(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	if sha == "" {
		return "?"
	}
	return sha
}
