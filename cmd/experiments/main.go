// Command experiments regenerates the MACEDON paper's evaluation figures at
// configurable (default paper-like) scale on the simnet emulator.
//
// Usage:
//
//	experiments -figure 7              # spec LOC table
//	experiments -figure 8|9            # NICE stretch / latency per site
//	experiments -figure 10 -nodes 1000 # Chord convergence
//	experiments -figure 11             # Pastry latency vs size
//	experiments -figure 12 -nodes 300  # SplitStream bandwidth
//	experiments -figure all -scale 0.2 # everything, scaled down
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"macedon/internal/dsl"
	"macedon/internal/harness"
	"macedon/internal/repo"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate: 7, 8, 9, 10, 11, 12, or all")
	nodes := flag.Int("nodes", 0, "override overlay size (0 = figure default)")
	seed := flag.Int64("seed", 2004, "experiment seed")
	scale := flag.Float64("scale", 1.0, "scale factor for durations and sizes")
	flag.Parse()

	out := func(format string, args ...any) { fmt.Printf(format, args...) }
	run := func(f string) error {
		switch f {
		case "7":
			return figure7(out)
		case "8", "9":
			return figureNICE(out, *seed, *scale, f)
		case "10":
			return figure10(out, *seed, *scale, *nodes)
		case "11":
			return figure11(out, *seed, *scale)
		case "12":
			return figure12(out, *seed, *scale, *nodes)
		default:
			return fmt.Errorf("unknown figure %q", f)
		}
	}
	figures := []string{*figure}
	if *figure == "all" {
		figures = []string{"7", "8", "10", "11", "12"}
	}
	for _, f := range figures {
		if err := run(f); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func figure7(out func(string, ...any)) error {
	paths, err := repo.Specs()
	if err != nil || len(paths) == 0 {
		return fmt.Errorf("no specs/*.mac found: %v", err)
	}
	sort.Strings(paths)
	out("Figure 7 — lines of code used in algorithm specifications\n")
	out("%-24s %s\n", "specification", "LOC")
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		out("%-24s %d\n", filepath.Base(p), dsl.CountLines(string(src)))
	}
	return nil
}

func figureNICE(out func(string, ...any), seed int64, scale float64, which string) error {
	res, err := harness.RunNICE(harness.NICEParams{
		Seed:    seed,
		Settle:  time.Duration(float64(5*time.Minute) * scale),
		Packets: int(50 * scale),
	})
	if err != nil {
		return err
	}
	if which == "9" {
		res.PrintFigure9(out)
	} else {
		res.PrintFigure8(out)
		out("\n")
		res.PrintFigure9(out)
	}
	return nil
}

func figure10(out func(string, ...any), seed int64, scale float64, nodes int) error {
	if nodes == 0 {
		nodes = int(1000 * scale)
		if nodes < 50 {
			nodes = 50
		}
	}
	res, err := harness.RunChordConvergence(harness.ChordParams{
		Nodes: nodes,
		Seed:  seed,
	})
	if err != nil {
		return err
	}
	res.Print(out)
	return nil
}

func figure11(out func(string, ...any), seed int64, scale float64) error {
	sizes := []int{25, 50, 100, 150, 200, 250}
	if scale < 1 {
		sizes = []int{15, 30, 60}
	}
	res, err := harness.RunPastryLatency(harness.PastryParams{
		Sizes:    sizes,
		Seed:     seed,
		Converge: time.Duration(float64(300*time.Second) * scale),
		Measure:  time.Duration(float64(30*time.Second) * scale),
	})
	if err != nil {
		return err
	}
	res.Print(out)
	return nil
}

func figure12(out func(string, ...any), seed int64, scale float64, nodes int) error {
	if nodes == 0 {
		nodes = int(300 * scale)
		if nodes < 30 {
			nodes = 30
		}
	}
	res, err := harness.RunSplitStream(harness.SplitStreamParams{
		Nodes:    nodes,
		Seed:     seed,
		Converge: time.Duration(float64(300*time.Second) * scale),
		Stream:   time.Duration(float64(300*time.Second) * scale),
	})
	if err != nil {
		return err
	}
	res.Print(out)
	out("steady state (Kbps):")
	for name, v := range res.SteadyStateKbps() {
		out(" [%s: %.0f]", name, v)
	}
	out("\n")
	return nil
}
