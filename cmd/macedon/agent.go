package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"macedon/internal/deploy"
)

// runAgent implements "macedon agent": one overlay node in one OS process,
// remote-controlled by a `macedon deploy` controller. Users normally never
// run it by hand — the controller launches the fleet — but nothing stops a
// manual launch against a listening controller (a future host-list
// deployment does exactly that on each machine).
func runAgent(args []string) int {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	controller := fs.String("controller", "", "controller control address (host:port)")
	node := fs.Int("node", -1, "fleet node index")
	verbose := fs.Bool("v", false, "log agent lifecycle to stderr")
	_ = fs.Parse(args)
	if *controller == "" || *node < 0 {
		fmt.Fprintln(os.Stderr, "macedon agent: -controller and -node are required")
		return 2
	}
	var logw io.Writer = io.Discard
	if *verbose {
		logw = os.Stderr
	}
	if err := deploy.RunAgent(*controller, *node, logw); err != nil {
		fmt.Fprintf(os.Stderr, "macedon agent %d: %v\n", *node, err)
		return 1
	}
	return 0
}
