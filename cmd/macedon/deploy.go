package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"macedon/internal/deploy"
	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/scenario"
)

// runDeploy implements "macedon deploy": execute a declarative scenario as
// a real multi-process deployment on this host — one agent process per
// overlay node over livenet UDP sockets, churn as SIGKILL/restart,
// partitions and degradations as shaping filters — and print the same
// per-phase report the emulated path emits, plus the live-only columns
// (hops, control overhead). With -vs-sim the same scenario also runs on
// the emulator and the conformance verdict (docs/deploy.md tolerances) is
// printed; a failed verdict exits nonzero.
func runDeploy(args []string) int {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	nodes := fs.Int("nodes", 0, "override the scenario's population")
	seed := fs.Int64("seed", 0, "override the scenario's seed")
	speed := fs.Float64("speed", 1, "timeline compression (2 = twice as fast; protocol timers and failure detectors stay real-time — keep churn downtime/speed above fail_after, see docs/deploy.md)")
	basePort := fs.Int("base-port", 40000, "first UDP port; node i binds base-port+i")
	agentLogs := fs.String("agent-logs", "", "directory for per-agent log files")
	jsonOut := fs.String("json", "", "write the live report (and sim report with -vs-sim) as JSON to this file ('-' = stdout)")
	vsSim := fs.Bool("vs-sim", false, "also run the scenario on the emulator and print the live-vs-sim conformance verdict")
	shards := fs.Int("shards", 0, "emulator shards for -vs-sim (0 = GOMAXPROCS)")
	trace := fs.Bool("trace", false, "print the live event trace")
	quiet := fs.Bool("q", false, "suppress progress lines")
	obsOn := fs.Bool("obs", false, "enable the observability plane and print its output (fleet metrics exposition, sampled events, operation traces) after the report")
	traceSample := fs.Int("trace-sample", 0, "keep 1-in-N operation traces and event records (0 or 1 = all); sampling is keyed by the seed, matching a sim run's sampled population")
	metricsAddr := fs.String("metrics-addr", "", "base metrics endpoint (\"host:port\", \":port\", or a bare port): agent i serves Prometheus metrics on host:port+i at /metrics (and /debug/obs); empty host binds 127.0.0.1, 0.0.0.0 exposes the fleet to an external scraper")
	pushInterval := fs.Duration("push-interval", 0, "with -obs, the agents' metric delta-push cadence over the control connection (0 = 1s default); pushes need no inbound path, so NAT'd hosts report without -metrics-addr")
	verbose := fs.Bool("v", false, "verbose report: per-phase forwards, mean hops, control traffic, and obs histograms")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "macedon deploy: exactly one scenario file required")
		return 2
	}
	s, err := scenario.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		return 1
	}
	if *nodes > 0 {
		s.Nodes = *nodes
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon deploy: cannot locate own binary: %v\n", err)
		return 1
	}
	cfg := deploy.Config{
		Scenario:    s,
		Speed:       *speed,
		BasePort:    *basePort,
		AgentCmd:    []string{self, "agent"},
		AgentLogDir: *agentLogs,
		Obs:         *obsOn,
		TraceSample: *traceSample,
	}
	if *metricsAddr != "" {
		host, port, err := parseMetricsAddr(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macedon deploy: -metrics-addr: %v\n", err)
			return 2
		}
		cfg.MetricsBase = port
		cfg.MetricsHost = host
	}
	cfg.PushInterval = *pushInterval
	if !*quiet {
		cfg.Out = os.Stderr
	}
	start := time.Now()
	rep, err := deploy.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon deploy: %v\n", err)
		return 1
	}
	if *trace {
		fmt.Print(rep.TraceText())
		fmt.Println()
	}
	rep.FormatOpts(func(format string, args ...any) { fmt.Printf(format, args...) }, *verbose)
	printLiveColumns(rep)
	fmt.Printf("# live wall clock: %s\n", time.Since(start).Round(time.Millisecond))
	if *obsOn {
		fmt.Println()
		fmt.Print(rep.ObsText())
	}

	var simRep *scenario.Report
	exit := 0
	if *vsSim {
		n := *shards
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		simRep, err = harness.RunScenarioShards(s, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macedon deploy -vs-sim: %v\n", err)
			return 1
		}
		cmp := deploy.Compare(simRep, rep, deploy.Tolerances{})
		fmt.Println()
		fmt.Print(cmp.String())
		if !cmp.Pass {
			exit = 1
		}
	}
	if *jsonOut != "" {
		if err := writeDeployJSON(*jsonOut, rep, simRep); err != nil {
			fmt.Fprintf(os.Stderr, "macedon deploy: %v\n", err)
			return 1
		}
	}
	return exit
}

// parseMetricsAddr accepts "host:port", ":port", or a bare port. The host
// part is the agents' metrics bind address ("" = 127.0.0.1); node i serves
// port+i.
func parseMetricsAddr(s string) (string, int, error) {
	host := ""
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		host = s[:i]
		s = s[i+1:]
	}
	port, err := strconv.Atoi(s)
	if err != nil || port <= 0 || port > 65535 {
		return "", 0, fmt.Errorf("bad port %q", s)
	}
	return host, port, nil
}

// printLiveColumns prints the per-phase metrics the legacy report format
// omits (it predates them and is golden-gated): delivery rate, mean hop
// count, control overhead.
func printLiveColumns(rep *scenario.Report) {
	for i, p := range rep.Phases {
		if p.OpsSent == 0 {
			continue
		}
		fmt.Printf("  phase %d metrics: delivery=%.2f%% mean_hops=%.3f ctl_msgs=%d ctl_bytes=%d\n",
			i, 100*float64(p.OpsDelivered)/float64(p.OpsSent), p.MeanHops, p.CtlMsgs, p.CtlBytes)
	}
}

// writeDeployJSON writes the machine-readable run result: the live report,
// plus the sim report when one was produced.
func writeDeployJSON(path string, live, sim *scenario.Report) error {
	type payload struct {
		Live *metrics.ReportJSON `json:"live"`
		Sim  *metrics.ReportJSON `json:"sim,omitempty"`
	}
	p := payload{Live: metrics.EncodeReport(live)}
	if sim != nil {
		p.Sim = metrics.EncodeReport(sim)
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
