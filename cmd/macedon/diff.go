package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/scenario"
)

// runDiff implements "macedon diff": differential conformance between a
// generated protocol and its hand-written port. The scenario's protocol
// names either side of a pair (genchord/chord, genpastry/pastry,
// genrandtree/randtree); both implementations run the same compiled
// schedule on the emulator and the drift is graded within declared
// tolerances (metrics.DiffConformance). A failed verdict exits nonzero,
// which is what makes the command a CI gate.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the scenario's seed")
	shards := fs.Int("shards", 0, "event-loop shards (0 = GOMAXPROCS); any value prints identical output")
	jsonOut := fs.String("json", "", "write the verdict as JSON to this file ('-' = stdout)")
	tolDelivery := fs.Float64("tol-delivery", 0, "delivery tolerance in points (0 = default)")
	tolHops := fs.Float64("tol-hops", 0, "mean-hop tolerance as a fraction (0 = default)")
	tolMsgs := fs.Float64("tol-msgs", 0, "control-message tolerance as a fraction (0 = default)")
	tolBytes := fs.Float64("tol-bytes", 0, "control-byte tolerance as a fraction (0 = default)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "macedon diff: exactly one scenario file required")
		return 2
	}
	s, err := scenario.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		return 1
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	genName, handName, err := diffPair(s.Protocol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon diff: %v\n", err)
		return 2
	}
	n := *shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	run := func(proto string) (*scenario.Report, error) {
		// The two runs share everything but the protocol: same seed, same
		// compiled schedule, same workload population.
		v := *s
		v.Protocol = proto
		return harness.RunScenarioExec(&v, harness.ExecOptions{Shards: n})
	}
	genRep, err := run(genName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon diff: %s run: %v\n", genName, err)
		return 1
	}
	handRep, err := run(handName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon diff: %s run: %v\n", handName, err)
		return 1
	}
	d := metrics.DiffConformance(genRep, handRep, metrics.DiffTolerances{
		DeliveryPoints: *tolDelivery,
		HopsFrac:       *tolHops,
		MsgsFrac:       *tolMsgs,
		BytesFrac:      *tolBytes,
	})
	fmt.Print(d.Table())
	if *jsonOut != "" {
		body, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "macedon diff: encode: %v\n", err)
			return 1
		}
		body = append(body, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(body)
		} else if err := os.WriteFile(*jsonOut, body, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *jsonOut, err)
			return 1
		}
	}
	if !d.Pass {
		return 1
	}
	return 0
}

// diffPair resolves a scenario protocol to its (generated, hand-written)
// implementation pair: either side of the pair may be named.
func diffPair(proto string) (gen, hand string, err error) {
	if proto == "" {
		proto = "chord"
	}
	if strings.HasPrefix(proto, "gen") {
		gen, hand = proto, strings.TrimPrefix(proto, "gen")
	} else {
		gen, hand = "gen"+proto, proto
	}
	for _, p := range []string{gen, hand} {
		if _, err := harness.ScenarioStack(p); err != nil {
			return "", "", fmt.Errorf("protocol %q has no gen/hand pair (%v)", proto, err)
		}
	}
	return gen, hand, nil
}
