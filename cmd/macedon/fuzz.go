package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"macedon/internal/fuzz"
	"macedon/internal/scenario"
)

// runFuzz implements "macedon fuzz": execute seed-keyed random scenarios
// on the emulator with the invariant checkers enabled. A failing seed is
// deterministically shrunk to a minimal repro scenario and written under
// -out; committing the repro turns the found bug into a regression test
// (the repro replay in ci). -replay re-runs one repro file and reports its
// violation count. Everything is keyed by the seed: the same seed always
// generates, fails, and shrinks identically.
func runFuzz(args []string) int {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "first fuzz seed")
	runs := fs.Int("runs", 1, "number of consecutive seeds to try")
	shards := fs.Int("shards", 0, "emulator shards (0 = 2); any value reaches identical verdicts")
	budget := fs.Duration("budget", 0, "wall-clock budget for the campaign (0 = unbounded)")
	out := fs.String("out", "testdata/repro", "directory for shrunken repro scenarios")
	synthetic := fs.Bool("synthetic", false, "enable the synthetic always-fails checker (shrinker exercise)")
	obsOn := fs.Bool("obs", false, "run every scenario (and shrink probe) with the observability plane enabled, fuzzing the obs hooks alongside the engine; verdicts are unchanged")
	replay := fs.String("replay", "", "re-run one repro scenario file and report its violations")
	_ = fs.Parse(args)
	if *replay != "" {
		s, err := scenario.Load(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *replay, err)
			return 1
		}
		v, err := fuzz.ViolationsExec(s, *shards, *obsOn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *replay, err)
			return 1
		}
		fmt.Printf("replay %s: %d violation(s)\n", *replay, v)
		if v > 0 {
			return 1
		}
		return 0
	}
	start := time.Now()
	found, err := fuzz.Run(fuzz.Options{
		Seed:      *seed,
		Runs:      *runs,
		Shards:    *shards,
		Budget:    *budget,
		Synthetic: *synthetic,
		Obs:       *obsOn,
		Out:       *out,
		Log:       os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon fuzz: %v\n", err)
		return 1
	}
	fmt.Printf("fuzz: %d seed(s) from %d, %d failing, %s wall\n",
		*runs, *seed, len(found), time.Since(start).Round(time.Millisecond))
	if len(found) > 0 {
		for _, f := range found {
			fmt.Printf("  seed %d: %d violation(s) -> %s\n", f.Seed, f.Violations, f.ReproPath)
		}
		return 1
	}
	return 0
}
