// Command macedon is the MACEDON translator front end: it validates .mac
// protocol specifications, generates Go agents from them, reports the
// lines-of-code metric of the paper's Figure 7, and runs declarative
// evaluation scenarios on the emulator.
//
// Usage:
//
//	macedon check spec.mac...            validate specifications
//	macedon gen -pkg name spec.mac       generate a Go agent to stdout
//	macedon loc spec.mac...              count specification lines (Figure 7)
//	macedon scenario [-trace] [-shards N] file.json  run a churn/failure/workload scenario
//	macedon sweep [-shards N] [-json] sweep.json     run a shared-prefix parameter sweep
//	macedon deploy [-nodes N] [-vs-sim] file.json    run a scenario as a live multi-process deployment
//	macedon diff [-shards N] file.json       gen-vs-hand differential conformance on one scenario
//	macedon fuzz [-seed N] [-runs N]         random scenarios under invariant checks, with shrinking
//	macedon report [-bench] file             render a report's time series (or a bench history) as sparkline tables
//	macedon agent -controller H:P -node I    one live overlay node (launched by deploy)
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"

	"macedon/internal/codegen"
	"macedon/internal/dsl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "check":
		os.Exit(runCheck(os.Args[2:]))
	case "gen":
		os.Exit(runGen(os.Args[2:]))
	case "loc":
		os.Exit(runLoc(os.Args[2:]))
	case "scenario":
		os.Exit(runScenario(os.Args[2:]))
	case "sweep":
		os.Exit(runSweep(os.Args[2:]))
	case "deploy":
		os.Exit(runDeploy(os.Args[2:]))
	case "diff":
		os.Exit(runDiff(os.Args[2:]))
	case "fuzz":
		os.Exit(runFuzz(os.Args[2:]))
	case "report":
		os.Exit(runReport(os.Args[2:]))
	case "agent":
		os.Exit(runAgent(os.Args[2:]))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: macedon check|gen|loc|scenario|sweep|deploy|diff|fuzz|report|agent [args]")
}

func runCheck(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "macedon check: no specifications given")
		return 2
	}
	bad := 0
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad++
			continue
		}
		spec, err := dsl.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad++
			continue
		}
		layered := ""
		if spec.Uses != "" {
			layered = fmt.Sprintf(" uses %s", spec.Uses)
		}
		fmt.Printf("%s: protocol %s%s ok (%d states, %d messages, %d transitions)\n",
			path, spec.Name, layered, len(spec.States), len(spec.Messages), len(spec.Transitions))
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func runGen(args []string) int {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	pkg := fs.String("pkg", "", "generated package name (default gen<protocol>)")
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "macedon gen: exactly one specification required")
		return 2
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	spec, err := dsl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	name := *pkg
	if name == "" {
		name = "gen" + spec.Name
	}
	res, err := codegen.Generate(spec, name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	formatted, err := format.Source([]byte(res.Source))
	if err != nil {
		// Emit unformatted source with the error so the bug is debuggable.
		fmt.Fprintf(os.Stderr, "%s: generated source does not parse: %v\n", path, err)
		formatted = []byte(res.Source)
	}
	// Per-spec coverage summary: the CI gen-coverage job and users read
	// translation coverage from this line instead of grepping the output.
	fmt.Fprintf(os.Stderr, "%s: protocol %s: %d transitions, %d statements translated, %d opaque\n",
		path, spec.Name, res.Transitions, res.Translated, res.Opaque)
	if *out == "" {
		fmt.Print(string(formatted))
		return 0
	}
	if err := os.WriteFile(*out, formatted, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *out, err)
		return 1
	}
	return 0
}

func runLoc(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "macedon loc: no specifications given")
		return 2
	}
	sort.Strings(args)
	fmt.Printf("Figure 7 — lines of code used in algorithm specifications\n")
	fmt.Printf("%-24s %s\n", "specification", "LOC")
	total := 0
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			return 1
		}
		n := dsl.CountLines(string(src))
		total += n
		fmt.Printf("%-24s %d\n", filepath.Base(path), n)
	}
	fmt.Printf("%-24s %d\n", "total", total)
	return 0
}
