package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"macedon/internal/metrics"
	"macedon/internal/obs"
)

// runReport implements "macedon report": render the engine time series of a
// machine-readable report (`macedon scenario -json` / `macedon deploy
// -json`) as deterministic per-phase sparkline tables, or — with -bench —
// render the stored performance trajectory (bench/history.jsonl) the CI
// bench lane appends to. Both renderings are pure functions of the input
// file, so they can be diffed like any other trace.
func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	bench := fs.Bool("bench", false, "render a benchmark history file (one benchjson document per line) as a per-benchmark trajectory instead of a report's time series")
	metric := fs.String("metric", "ns/op", "with -bench, the metric to chart")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "macedon report: exactly one input file required")
		return 2
	}
	if *bench {
		return reportBench(fs.Arg(0), *metric)
	}
	return reportSeries(fs.Arg(0))
}

// loadReportJSON reads a report document, unwrapping the `macedon deploy
// -json` {live, sim} payload when that is what the file holds.
func loadReportJSON(path string) (*metrics.ReportJSON, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep metrics.ReportJSON
	if err := json.Unmarshal(b, &rep); err == nil && rep.Scenario != "" {
		return &rep, nil
	}
	var wrapped struct {
		Live *metrics.ReportJSON `json:"live"`
	}
	if err := json.Unmarshal(b, &wrapped); err == nil && wrapped.Live != nil && wrapped.Live.Scenario != "" {
		return wrapped.Live, nil
	}
	return nil, fmt.Errorf("%s: not a report JSON (run `macedon scenario -obs -json` or `macedon deploy -obs -json`)", path)
}

func reportSeries(path string) int {
	rep, err := loadReportJSON(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon report: %v\n", err)
		return 1
	}
	fmt.Printf("report %q: protocol %s, %d nodes, %d phases\n", rep.Scenario, rep.Protocol, rep.Nodes, len(rep.Phases))
	plotted := 0
	for pi, p := range rep.Phases {
		if p.Obs == nil || p.Obs.Series == nil || len(p.Obs.Series.Points) == 0 {
			continue
		}
		plotted++
		s := p.Obs.Series
		fmt.Printf("\nphase %d %q series (%d points", pi, p.Name, len(s.Points))
		if s.Dropped > 0 {
			fmt.Printf(", ring dropped %d older", s.Dropped)
		}
		fmt.Printf("):\n")
		width := len(s.Points)
		fmt.Printf("  %-14s %-*s %12s %12s %12s %12s\n", "column", width, "trend", "first", "last", "min", "max")
		for ci, col := range s.Columns {
			vals := make([]float64, len(s.Points))
			for i, pt := range s.Points {
				vals[i] = pt.Values[ci]
			}
			lo, hi := vals[0], vals[0]
			for _, v := range vals[1:] {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			fmt.Printf("  %-14s %-*s %12s %12s %12s %12s\n", col,
				width, obs.Sparkline(vals),
				reportValue(vals[0]), reportValue(vals[len(vals)-1]), reportValue(lo), reportValue(hi))
		}
	}
	if plotted == 0 {
		fmt.Println("no time series in this report (run with -obs; add -series-interval for intra-phase points)")
	}
	return 0
}

// benchDoc mirrors cmd/benchjson's Document schema (stdlib-only decode; the
// two commands stay independent binaries).
type benchDoc struct {
	Commit  string `json:"commit"`
	Results []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"results"`
}

func reportBench(path, metric string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macedon report: %v\n", err)
		return 1
	}
	defer f.Close()
	var docs []benchDoc
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d benchDoc
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			fmt.Fprintf(os.Stderr, "macedon report: %s: bad history line: %v\n", path, err)
			return 1
		}
		docs = append(docs, d)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "macedon report: %v\n", err)
		return 1
	}
	if len(docs) == 0 {
		fmt.Printf("bench history %s: empty\n", path)
		return 0
	}
	// Chart every benchmark that appears anywhere in the history, in sorted
	// order; runs missing a benchmark contribute no point (the sparkline
	// simply compresses), and first→last delta spans the runs that have it.
	series := make(map[string][]float64)
	for _, d := range docs {
		for _, r := range d.Results {
			if v, ok := r.Metrics[metric]; ok && v > 0 {
				series[r.Name] = append(series[r.Name], v)
			}
		}
	}
	var names []string
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	first, last := docs[0], docs[len(docs)-1]
	fmt.Printf("bench trajectory: %d run(s), %s .. %s, metric %s\n",
		len(docs), shortCommit(first.Commit), shortCommit(last.Commit), metric)
	fmt.Printf("%-52s %-*s %14s %14s %9s\n", "benchmark", len(docs), "trend", "first", "last", "delta")
	for _, name := range names {
		vals := series[name]
		delta := "-"
		if len(vals) > 1 && vals[0] > 0 {
			delta = fmt.Sprintf("%+.1f%%", (vals[len(vals)-1]/vals[0]-1)*100)
		}
		fmt.Printf("%-52s %-*s %14s %14s %9s\n", name,
			len(docs), obs.Sparkline(vals),
			reportValue(vals[0]), reportValue(vals[len(vals)-1]), delta)
	}
	return 0
}

// reportValue prints integral values exactly and the rest compactly — the
// exposition renderer's convention.
func reportValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

func shortCommit(sha string) string {
	if sha == "" {
		return "?"
	}
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
