package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/scenario"
)

// runScenario implements "macedon scenario": load a declarative scenario
// file, execute it on the emulator, and print the report (and, with -trace,
// the deterministic event trace). Running the same file with the same seed
// twice prints byte-identical output.
func runScenario(args []string) int {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the scenario's seed")
	trace := fs.Bool("trace", false, "print the executed event trace")
	check := fs.Bool("check", false, "validate and compile only; print the schedule summary")
	shards := fs.Int("shards", 0, "event-loop shards (0 = GOMAXPROCS, 1 = sequential); any value prints identical output")
	partitioner := fs.String("partitioner", "", "vertex-to-shard assignment: striped (default) or latency; either prints identical output, latency widens the lookahead window on sharded runs")
	obsOn := fs.Bool("obs", false, "enable the observability plane and print its output (metrics exposition, sampled events, operation traces, per-phase time series) after the report")
	traceSample := fs.Int("trace-sample", 0, "keep 1-in-N operation traces and event records (0 or 1 = all); sampling is keyed by the seed, so any shard count keeps the same ops")
	seriesInterval := fs.Duration("series-interval", 0, "with -obs, also sample the engine time series every interval of virtual time inside each phase (0 = phase boundaries only); sampling is scheduled on the virtual clock, so any shard count records identical series")
	seriesCap := fs.Int("series-cap", 0, "with -obs, per-phase time-series ring capacity (0 = default 256); the oldest points are evicted beyond it")
	jsonOut := fs.String("json", "", "write the machine-readable report (including the obs series with -obs) as JSON to this file ('-' = stdout)")
	verbose := fs.Bool("v", false, "verbose report: per-phase forwards, mean hops, control traffic, and obs histograms")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "macedon scenario: exactly one scenario file required")
		return 2
	}
	s, err := scenario.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		return 1
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *check {
		sched, err := scenario.Compile(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
			return 1
		}
		fmt.Printf("scenario %q: %d nodes, %d phases, %d ops (%d lookups, %d multicasts), settle=%s total=%s\n",
			s.Name, s.Nodes, len(sched.Phases), len(sched.Ops), sched.Lookups, sched.Multicasts,
			sched.Settle, sched.Total)
		return 0
	}
	n := *shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	rep, err := harness.RunScenarioExec(s, harness.ExecOptions{
		Shards:      n,
		Partitioner: *partitioner,
		Obs: harness.ObsOptions{
			Enabled:        *obsOn,
			TraceSample:    *traceSample,
			SeriesInterval: *seriesInterval,
			SeriesCap:      *seriesCap,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		return 1
	}
	if *trace {
		fmt.Print(rep.TraceText())
		fmt.Println()
	}
	rep.FormatOpts(func(format string, args ...any) { fmt.Printf(format, args...) }, *verbose)
	if *obsOn {
		fmt.Println()
		fmt.Print(rep.ObsText())
	}
	if *jsonOut != "" {
		b, err := metrics.ReportToJSON(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macedon scenario: %v\n", err)
			return 1
		}
		b = append(b, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "macedon scenario: %v\n", err)
			return 1
		}
	}
	return 0
}
