package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/scenario"
)

// runSweep implements "macedon sweep": load a declarative sweep file (a base
// scenario plus K variants), execute it with shared-prefix checkpoint/fork
// (docs/sweeps.md), and print the comparative per-variant table. The table
// is deterministic; the wall-clock timing footer (suppress with -timing=false)
// is the only machine-dependent output.
func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the base scenario's seed")
	shards := fs.Int("shards", 0, "event-loop shards (0 = GOMAXPROCS, 1 = sequential); any value prints an identical table")
	timing := fs.Bool("timing", true, "print the wall-clock timing footer")
	jsonOut := fs.Bool("json", false, "emit the machine-readable sweep result instead of the table (deterministic; no timing)")
	obsOn := fs.Bool("obs", false, "enable the observability plane: every variant runs cold (no shared prefix) and the table gains a per-variant obs snapshot section")
	traceSample := fs.Int("trace-sample", 0, "with -obs, keep 1-in-N operation traces and event records per variant (0 or 1 = all)")
	check := fs.Bool("check", false, "validate and resolve only; print the variant summary")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "macedon sweep: exactly one sweep file required")
		return 2
	}
	sw, err := scenario.LoadSweep(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		return 1
	}
	if *seed != 0 {
		sw.Base.Seed = *seed
	}
	if *check {
		vs, err := sw.Resolve()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
			return 1
		}
		fmt.Printf("sweep %q: base %q (%d nodes), %d variants, fork phase %d\n",
			sw.Name, sw.Base.Name, sw.Base.Nodes, len(vs), sw.Base.ForkPhase())
		for _, v := range vs {
			fmt.Printf("  %-16s protocol=%s seed=%d phases=%d\n",
				v.Name, v.Scenario.Protocol, v.Scenario.Seed, len(v.Scenario.Phases))
		}
		return 0
	}
	n := *shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	rep, err := harness.RunSweepExec(sw, n, harness.ObsOptions{Enabled: *obsOn, TraceSample: *traceSample})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		return 1
	}
	if *jsonOut {
		b, err := metrics.SweepToJSON(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macedon sweep: %v\n", err)
			return 1
		}
		fmt.Printf("%s\n", b)
		return 0
	}
	fmt.Print(metrics.SweepTable(rep))
	if *timing {
		fmt.Print(rep.TimingSummary())
	}
	return 0
}
