// Generated-vs-handwritten conformance gates: the genchord and genpastry
// agents emitted by `macedon gen` from specs/chord.mac and specs/pastry.mac
// must pass routing-oracle correctness checks under churn — the ring (or
// leaf set) every node converges to must match a global-knowledge oracle,
// and every delivered lookup must land at the oracle owner — and the whole
// run must be byte-identical at every shard count (the same determinism
// contract the golden-trace corpus enforces for scenarios).
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/overlay"
	"macedon/internal/overlays/genchord"
	"macedon/internal/overlays/genpastry"
)

const (
	confNodes   = 16
	confSeed    = 2026
	confLookups = 40
)

// confChurn drives the shared schedule: staggered joins, a settle window,
// three crashes, a repair window, revives, and a final settle. It returns
// the cluster ready for oracle inspection.
func confChurn(t *testing.T, shards int, stack []core.Factory) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{
		Nodes:          confNodes,
		Routers:        100,
		Seed:           confSeed,
		Shards:         shards,
		HeartbeatAfter: 2 * time.Second,
		FailAfter:      8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < confNodes; i++ {
		c.SpawnAt(i, stack, time.Duration(i)*500*time.Millisecond)
	}
	c.RunFor(40 * time.Second)
	for _, i := range []int{5, 9, 13} {
		c.Kill(i)
	}
	c.RunFor(30 * time.Second)
	for _, i := range []int{5, 9, 13} {
		if _, err := c.Revive(i, stack); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(40 * time.Second)
	return c
}

// lookupRecorder collects deliveries by op id; callbacks fire on the
// receiving node's shard, so recording is mutex-guarded.
type lookupRecorder struct {
	mu sync.Mutex
	at map[int32]overlay.Address
}

func (r *lookupRecorder) attach(c *harness.Cluster) {
	for i := 0; i < confNodes; i++ {
		addr := c.Addrs[i]
		n := c.Nodes[addr]
		self := addr
		n.RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, src overlay.Address) {
				r.mu.Lock()
				r.at[typ] = self
				r.mu.Unlock()
			},
		})
	}
}

// confKeys derives the deterministic lookup targets.
func confKeys() []overlay.Key {
	keys := make([]overlay.Key, confLookups)
	for i := range keys {
		keys[i] = overlay.HashString(fmt.Sprintf("conformance-lookup-%d", i))
	}
	return keys
}

// runLookups issues one route per key from a rotating origin and returns
// sorted result lines plus the delivered count.
func runLookups(t *testing.T, c *harness.Cluster, owner func(overlay.Key) overlay.Address) ([]string, int) {
	t.Helper()
	rec := &lookupRecorder{at: make(map[int32]overlay.Address)}
	rec.attach(c)
	keys := confKeys()
	for i, k := range keys {
		n := c.Nodes[c.Addrs[i%confNodes]]
		if err := n.Route(k, make([]byte, 32), int32(i), overlay.PriorityDefault); err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
	}
	c.RunFor(10 * time.Second)
	var lines []string
	delivered := 0
	for i, k := range keys {
		want := owner(k)
		got, ok := rec.at[int32(i)]
		if ok {
			delivered++
			if got != want {
				t.Errorf("lookup %d (key %v): delivered at %v, oracle owner %v", i, k, got, want)
			}
		}
		lines = append(lines, fmt.Sprintf("lookup %2d key=%v owner=%v delivered=%v at=%v", i, k, want, ok, got))
	}
	sort.Strings(lines)
	return lines, delivered
}

func TestGenChordRoutingOracleChurn(t *testing.T) {
	var traces []string
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			stack := []core.Factory{genchord.New()}
			c := confChurn(t, shards, stack)
			defer c.StopAll()

			oracle := metrics.NewChordOracle(c.Addrs)
			var lines []string
			for i := 0; i < confNodes; i++ {
				addr := c.Addrs[i]
				n := c.Nodes[addr]
				var succs []overlay.Address
				var fingers []overlay.Address
				n.Exec(func() {
					ag := n.Instance("chord").Agent().(*genchord.Agent)
					succs = append([]overlay.Address(nil), ag.Succs...)
					fingers = append([]overlay.Address(nil), ag.Fingers[:]...)
				})
				want := oracle.Successor(overlay.HashAddress(addr) + 1)
				if len(succs) == 0 || succs[0] != want {
					t.Errorf("node %d (%v): successor = %v, oracle %v", i, addr, succs, want)
				}
				correct := oracle.CorrectFingers(addr, fingers)
				lines = append(lines, fmt.Sprintf("node %2d succ=%v fingers_ok=%d", i, succs, correct))
			}
			lookups, delivered := runLookups(t, c, func(k overlay.Key) overlay.Address {
				return oracle.Successor(k)
			})
			if delivered < confLookups*9/10 {
				t.Errorf("only %d/%d lookups delivered", delivered, confLookups)
			}
			trace := strings.Join(append(lines, lookups...), "\n")
			traces = append(traces, trace)
		})
	}
	if len(traces) == 2 && traces[0] != traces[1] {
		t.Errorf("genchord conformance run differs between shard counts:\n--- shards=1\n%s\n--- shards=4\n%s", traces[0], traces[1])
	}
}

// pastryOwner is the Pastry delivery oracle: the live node numerically
// closest to the key by ring distance.
func pastryOwner(addrs []overlay.Address, k overlay.Key) overlay.Address {
	best := addrs[0]
	bestD := overlay.RingDiff(overlay.HashAddress(best), k)
	for _, a := range addrs[1:] {
		d := overlay.RingDiff(overlay.HashAddress(a), k)
		if d < bestD || (d == bestD && a < best) {
			best, bestD = a, d
		}
	}
	return best
}

func TestGenPastryRoutingOracleChurn(t *testing.T) {
	var traces []string
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			stack := []core.Factory{genpastry.New()}
			c := confChurn(t, shards, stack)
			defer c.StopAll()

			// Ring-coverage oracle: every node's leaf set must contain its
			// true ring successor and predecessor among the live members.
			ringSucc := func(self overlay.Address) overlay.Address {
				selfKey := overlay.HashAddress(self)
				best := overlay.NilAddress
				var bestD uint32
				for _, a := range c.Addrs {
					if a == self {
						continue
					}
					d := selfKey.Distance(overlay.HashAddress(a))
					if best == overlay.NilAddress || d < bestD {
						best, bestD = a, d
					}
				}
				return best
			}
			ringPred := func(self overlay.Address) overlay.Address {
				selfKey := overlay.HashAddress(self)
				best := overlay.NilAddress
				var bestD uint32
				for _, a := range c.Addrs {
					if a == self {
						continue
					}
					d := overlay.HashAddress(a).Distance(selfKey)
					if best == overlay.NilAddress || d < bestD {
						best, bestD = a, d
					}
				}
				return best
			}
			var lines []string
			for i := 0; i < confNodes; i++ {
				addr := c.Addrs[i]
				n := c.Nodes[addr]
				var leafset []overlay.Address
				n.Exec(func() {
					ag := n.Instance("pastry").Agent().(*genpastry.Agent)
					leafset = append([]overlay.Address(nil), ag.Leafset...)
				})
				wantSucc, wantPred := ringSucc(addr), ringPred(addr)
				hasSucc, hasPred := false, false
				for _, a := range leafset {
					hasSucc = hasSucc || a == wantSucc
					hasPred = hasPred || a == wantPred
				}
				if !hasSucc || !hasPred {
					t.Errorf("node %d (%v): leafset %v misses ring succ %v or pred %v",
						i, addr, leafset, wantSucc, wantPred)
				}
				lines = append(lines, fmt.Sprintf("node %2d leafset=%v", i, leafset))
			}
			lookups, delivered := runLookups(t, c, func(k overlay.Key) overlay.Address {
				return pastryOwner(c.Addrs, k)
			})
			if delivered < confLookups*9/10 {
				t.Errorf("only %d/%d lookups delivered", delivered, confLookups)
			}
			trace := strings.Join(append(lines, lookups...), "\n")
			traces = append(traces, trace)
		})
	}
	if len(traces) == 2 && traces[0] != traces[1] {
		t.Errorf("genpastry conformance run differs between shard counts:\n--- shards=1\n%s\n--- shards=4\n%s", traces[0], traces[1])
	}
}
