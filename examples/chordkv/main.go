// ChordKV: a tiny distributed key-value store over the Chord DHT,
// demonstrating the application side of the MACEDON API — payload types
// distinguish PUT and GET, and the routeIP primitive carries replies
// straight back to the requester.
package main

import (
	"fmt"
	"log"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
)

// Application payload types.
const (
	typPut = 1 // payload: [addr u32][kv...]
	typGet = 2
	typVal = 3
)

func main() {
	cluster, err := harness.NewCluster(harness.ClusterConfig{Nodes: 25, Routers: 150, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	stack := []core.Factory{chord.New(chord.Params{})}
	if err := cluster.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		log.Fatal(err)
	}

	// Each node stores the slice of the keyspace it owns.
	stores := make(map[overlay.Address]map[string]string)
	for _, addr := range cluster.Addrs {
		a := addr
		stores[a] = make(map[string]string)
		node := cluster.Nodes[a]
		node.RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, src overlay.Address) {
				switch typ {
				case typPut:
					k, v := splitKV(payload)
					stores[a][k] = v
				case typGet:
					k, _ := splitKV(payload)
					v := stores[a][k]
					_ = node.RouteIP(src, []byte(k+"\x00"+v), typVal, overlay.PriorityDefault)
				case typVal:
					k, v := splitKV(payload)
					fmt.Printf("GET %q -> %q (answered by %v)\n", k, v, src)
				}
			},
		})
	}

	cluster.RunFor(90 * time.Second) // ring stabilization

	put := func(from overlay.Address, k, v string) {
		_ = cluster.Nodes[from].Route(overlay.HashString(k), []byte(k+"\x00"+v), typPut, overlay.PriorityDefault)
	}
	get := func(from overlay.Address, k string) {
		_ = cluster.Nodes[from].Route(overlay.HashString(k), []byte(k+"\x00"), typGet, overlay.PriorityDefault)
	}

	put(cluster.Addrs[2], "macedon", "NSDI 2004")
	put(cluster.Addrs[5], "chord", "SIGCOMM 2001")
	put(cluster.Addrs[9], "pastry", "Middleware 2001")
	cluster.RunFor(5 * time.Second)

	get(cluster.Addrs[17], "macedon")
	get(cluster.Addrs[11], "chord")
	get(cluster.Addrs[3], "pastry")
	cluster.RunFor(5 * time.Second)
	cluster.StopAll()
}

func splitKV(p []byte) (string, string) {
	for i, b := range p {
		if b == 0 {
			return string(p[:i]), string(p[i+1:])
		}
	}
	return string(p), ""
}
