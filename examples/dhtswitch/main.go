// DHT switch: the paper's headline interoperability demo. The same Scribe
// multicast session runs first over Pastry, then over Chord — the only
// change is one element of the protocol stack, the Go equivalent of editing
// "protocol scribe uses pastry" to "uses chord" in scribe.mac.
package main

import (
	"fmt"
	"log"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/scribe"
)

func run(name string, stack []core.Factory) {
	cluster, err := harness.NewCluster(harness.ClusterConfig{Nodes: 16, Routers: 120, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		log.Fatal(err)
	}
	group := overlay.HashString("demo-session")
	received := 0
	// As in the paper's methodology, let the DHT converge by idling the
	// system before the multicast session forms (§4.2.3/§4.2.4).
	cluster.RunFor(2 * time.Minute)
	for _, addr := range cluster.Addrs[1:] {
		cluster.Nodes[addr].RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, src overlay.Address) { received++ },
		})
		_ = cluster.Nodes[addr].Join(group)
	}
	cluster.RunFor(time.Minute) // tree construction
	const packets = 10
	for i := 0; i < packets; i++ {
		_ = cluster.Nodes[cluster.Addrs[0]].Multicast(group, []byte("tick"), 1, overlay.PriorityDefault)
		cluster.RunFor(time.Second)
	}
	cluster.RunFor(10 * time.Second)
	fmt.Printf("scribe over %-7s: %d/%d deliveries to %d members\n",
		name, received, packets*(len(cluster.Addrs)-1), len(cluster.Addrs)-1)
	cluster.StopAll()
}

func main() {
	sp := scribe.Params{RefreshPeriod: 5 * time.Second}
	// "protocol scribe uses pastry"
	run("pastry", []core.Factory{pastry.New(pastry.Params{}), scribe.New(sp)})
	// "protocol scribe uses chord" — the one-line change.
	run("chord", []core.Factory{chord.New(chord.Params{}), scribe.New(sp)})
}
