// Quickstart: build a 20-node Chord ring on the emulator, route a payload
// by key, and watch it arrive at the key's owner — the smallest end-to-end
// MACEDON program.
package main

import (
	"fmt"
	"log"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
)

func main() {
	// A cluster is a generated INET topology plus the simnet emulator.
	cluster, err := harness.NewCluster(harness.ClusterConfig{
		Nodes: 20, Routers: 150, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every node runs a one-protocol stack: Chord.
	stack := []core.Factory{chord.New(chord.Params{})}
	if err := cluster.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		log.Fatal(err)
	}

	// Register the application's deliver handler on every node.
	for _, addr := range cluster.Addrs {
		a := addr
		cluster.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, src overlay.Address) {
				fmt.Printf("node %v (key %v) received %q from %v\n",
					a, overlay.HashAddress(a), payload, src)
			},
		})
	}

	// Let the ring stabilize in virtual time (this takes milliseconds of
	// real time), then route.
	cluster.RunFor(60 * time.Second)

	dest := overlay.HashString("hello-world")
	fmt.Printf("routing to key %v from node %v\n", dest, cluster.Addrs[3])
	if err := cluster.Nodes[cluster.Addrs[3]].Route(dest, []byte("hello, overlay"), 1, overlay.PriorityDefault); err != nil {
		log.Fatal(err)
	}
	cluster.RunFor(5 * time.Second)

	c := cluster.Nodes[cluster.Addrs[3]].Counters()
	fmt.Printf("source sent %d messages (%d bytes) total\n", c.MsgsSent, c.BytesSent)
	cluster.StopAll()
}
