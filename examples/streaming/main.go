// Streaming: a SplitStream forest (16 stripes over Scribe over Pastry)
// carrying a 600 Kbps stream to 60 receivers on the emulator — the workload
// of the paper's Figure 12, as a runnable program.
package main

import (
	"fmt"
	"log"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/overlay"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/scribe"
	"macedon/internal/overlays/splitstream"
)

func main() {
	cluster, err := harness.NewCluster(harness.ClusterConfig{Nodes: 60, Routers: 300, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	stack := []core.Factory{
		pastry.New(pastry.Params{CacheLifetime: -1}), // no cache evictions
		scribe.New(scribe.Params{MaxChildren: 16}),
		splitstream.New(splitstream.Params{Stripes: 16}),
	}
	if err := cluster.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		log.Fatal(err)
	}
	group := overlay.HashString("video-stream")

	cluster.RunFor(120 * time.Second) // Pastry convergence
	start := cluster.Sched.Now().Add(30 * time.Second)
	series := make(map[overlay.Address]*metrics.BandwidthSeries)
	for _, addr := range cluster.Addrs[1:] {
		bs := metrics.NewBandwidthSeries(start, 10*time.Second)
		series[addr] = bs
		cluster.Nodes[addr].RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, src overlay.Address) {
				bs.Add(cluster.Sched.Now(), len(payload))
			},
		})
		_ = cluster.Nodes[addr].Join(group)
	}
	cluster.RunFor(30 * time.Second) // forest construction

	// Stream 600 Kbps in 1000-byte packets for 60 virtual seconds.
	const rate = 600_000
	const size = 1000
	interval := time.Duration(size * 8 * int(time.Second) / rate)
	src := cluster.Nodes[cluster.Addrs[0]]
	for elapsed := time.Duration(0); elapsed < 60*time.Second; elapsed += interval {
		payload := harness.TimestampPayload(cluster.Sched.Now(), size)
		_ = src.Multicast(group, payload, 1, overlay.PriorityDefault)
		cluster.RunFor(interval)
	}
	cluster.RunFor(5 * time.Second)

	// Report per-bucket average delivered bandwidth.
	fmt.Println("t(s)   avg delivered (Kbps)")
	for b := 0; b < 6; b++ {
		var sum float64
		for _, bs := range series {
			pts := bs.Points()
			if b < len(pts) {
				sum += pts[b].BitsPerSec
			}
		}
		fmt.Printf("%-6d %.0f\n", b*10, sum/float64(len(series))/1000)
	}
	cluster.StopAll()
}
