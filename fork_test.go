// Fork-determinism gate: a scenario branch executed from a checkpoint must
// be byte-identical to the same scenario run cold. RunScenarioForked runs
// the shared prefix, forks, executes the branch, rewinds, and executes it
// again; both outputs are compared against the checked-in golden trace — the
// same files the cold runs are gated on — at -shards=1 and -shards=4. The
// corpus covers kill/revive churn, partitions, link failures, and multicast
// workloads, so any state the checkpoint fails to rewind (a timer, a
// congestion window, a dedup key, a PRNG) shows up as a trace diff here.
package main

import (
	"os"
	"path/filepath"
	"testing"

	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/scenario"
)

// forkGoldenScenarios is the fork gate's slice of the golden corpus: one
// kill/revive churn + partition scenario on a hand-written protocol, one on
// a machine-generated one, and the multicast workload (group state plus
// reliable-transport streams).
var forkGoldenScenarios = []string{
	"churn-partition",
	"genchord-churn",
	"multicast-workload",
}

func TestForkedBranchMatchesGolden(t *testing.T) {
	for _, name := range forkGoldenScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := scenario.Load(filepath.Join("examples", "scenarios", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "golden", name+".txt")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden %s: %v", goldenPath, err)
			}
			for _, shards := range []int{1, 4} {
				first, second, err := harness.RunScenarioForked(s, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got := goldenOutput(first); got != string(want) {
					t.Fatalf("shards=%d: first branch diverges from cold golden:\n%s",
						shards, firstDiff(string(want), got))
				}
				if got := goldenOutput(second); got != string(want) {
					t.Fatalf("shards=%d: branch after restore diverges from cold golden:\n%s",
						shards, firstDiff(string(want), got))
				}
			}
		})
	}
}

// TestSweepGolden gates the comparative sweep report: `macedon sweep` on the
// worked example must emit the checked-in table byte for byte (the table is
// deterministic; only the timing footer, absent here, is machine-dependent).
// Run with MACEDON_UPDATE_GOLDEN=1 to regenerate after an intentional change.
func TestSweepGolden(t *testing.T) {
	sw, err := scenario.LoadSweep(filepath.Join("examples", "scenarios", "gen-churn-sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := harness.RunSweep(sw, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := metrics.SweepTable(rep)
	goldenPath := filepath.Join("testdata", "golden", "gen-churn-sweep.txt")
	if os.Getenv("MACEDON_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with MACEDON_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("sweep table diverges from %s:\n%s", goldenPath, firstDiff(string(want), got))
	}
	shared := 0
	for _, vr := range rep.Results {
		if vr.SharedPrefix {
			shared++
		}
	}
	if shared != 4 || rep.Groups != 2 {
		t.Fatalf("expected 2 shared-prefix groups covering all 4 variants, got groups=%d shared=%d", rep.Groups, shared)
	}
}
