module macedon

go 1.24
