// Golden-trace regression corpus: every scenario in the corpus runs at
// -shards=1 and -shards=4 and both outputs must be byte-identical to the
// checked-in golden trace. This is the CI determinism gate — stronger than
// the old self-diff step, because it pins behaviour across commits and
// across shard counts, not just within one run.
//
// Regenerate the goldens after an intentional behaviour change with:
//
//	MACEDON_UPDATE_GOLDEN=1 go test -run TestGoldenTraces .
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
)

// goldenScenarios lists the corpus: the PR 1 churn-partition scenario plus
// link-failure, multicast-workload, the NICE/Overcast churn audits, and the
// machine-generated chord/pastry agents under lookup workloads and churn.
var goldenScenarios = []string{
	"churn-partition",
	"link-failure",
	"multicast-workload",
	"nice-churn",
	"overcast-churn",
	"genchord-churn",
	"genpastry-churn",
	// genchord-checked opts into the runtime invariant checkers, so its
	// golden pins the per-phase check report — checker set, node count,
	// violation count — across shard counts and partitioners too.
	"genchord-checked",
}

// goldenOutput renders a report exactly as `macedon scenario -trace` prints
// it, so the checked-in files double as CLI-diff targets.
func goldenOutput(rep *scenario.Report) string {
	return rep.TraceText() + "\n" + rep.String()
}

// goldenShardCounts returns the shard counts the corpus runs at. The CI
// golden matrix pins one count per job via MACEDON_GOLDEN_SHARDS so the
// lanes split the work; unset, the default covers sequential and sharded.
func goldenShardCounts(t *testing.T) []int {
	env := os.Getenv("MACEDON_GOLDEN_SHARDS")
	if env == "" {
		return []int{1, 4}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
			t.Fatalf("MACEDON_GOLDEN_SHARDS: bad shard count %q", f)
		}
		out = append(out, n)
	}
	return out
}

func TestGoldenTraces(t *testing.T) {
	update := os.Getenv("MACEDON_UPDATE_GOLDEN") != ""
	shardCounts := goldenShardCounts(t)
	for _, name := range goldenScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := scenario.Load(filepath.Join("examples", "scenarios", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "golden", name+".txt")
			for _, shards := range shardCounts {
				rep, err := harness.RunScenarioShards(s, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				got := goldenOutput(rep)
				if update && shards == shardCounts[0] {
					if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("missing golden (run with MACEDON_UPDATE_GOLDEN=1 to create): %v", err)
				}
				if got != string(want) {
					t.Fatalf("shards=%d output diverges from %s:\n%s",
						shards, goldenPath, firstDiff(string(want), got))
				}
			}
		})
	}
}

// TestGoldenTracesLatencyPartitioner gates the latency-aware partitioner
// against the SAME golden files as the striped default: vertex placement is
// an execution parameter, and event order is defined by deterministic
// (time, actor, seq) keys that never consult the assignment, so any
// partitioner must reproduce the corpus byte-for-byte at every shard count.
func TestGoldenTracesLatencyPartitioner(t *testing.T) {
	for _, name := range goldenScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := scenario.Load(filepath.Join("examples", "scenarios", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "golden", name+".txt")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenTraces with MACEDON_UPDATE_GOLDEN=1 first): %v", err)
			}
			for _, shards := range []int{1, 2, 4} {
				rep, err := harness.RunScenarioExec(s, harness.ExecOptions{
					Shards:      shards,
					Partitioner: simnet.PartitionerLatency,
				})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got := goldenOutput(rep); got != string(want) {
					t.Fatalf("latency partitioner, shards=%d diverges from %s:\n%s",
						shards, goldenPath, firstDiff(string(want), got))
				}
			}
		})
	}
}

// TestGoldenObsJSON pins the machine-readable obs section: the churn
// scenario runs with the observability plane on at -shards=1, 2, and 4, and
// the full JSON report — per-phase histograms, scheduler families, time
// series, exposition, sampled events, span records — must be byte-identical
// to the checked-in golden at every shard count. Regenerate with
// MACEDON_UPDATE_GOLDEN=1.
func TestGoldenObsJSON(t *testing.T) {
	update := os.Getenv("MACEDON_UPDATE_GOLDEN") != ""
	s, err := scenario.Load(filepath.Join("examples", "scenarios", "churn-partition.json"))
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden", "obs-report.json")
	for _, shards := range []int{1, 2, 4} {
		rep, err := harness.RunScenarioShardsObs(s, shards, harness.ObsOptions{Enabled: true, TraceSample: 4})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b, err := metrics.ReportToJSON(rep)
		if err != nil {
			t.Fatal(err)
		}
		got := string(b) + "\n"
		if update && shards == 1 {
			if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden (run with MACEDON_UPDATE_GOLDEN=1 to create): %v", err)
		}
		if got != string(want) {
			t.Fatalf("shards=%d obs JSON diverges from %s:\n%s",
				shards, goldenPath, firstDiff(string(want), got))
		}
	}
}

// TestGoldenDiffTable pins the differential-conformance table: genchord and
// chord both run the genchord-churn schedule, the drift is graded with the
// default tolerances, and the rendered table must be byte-identical to the
// checked-in golden at -shards=1 and -shards=4 — the gen-vs-hand verdict is
// itself deterministic and shard-invariant. The test also asserts the
// verdict is PASS, so a conformance regression in either implementation
// fails loudly rather than just reshaping the table.
func TestGoldenDiffTable(t *testing.T) {
	update := os.Getenv("MACEDON_UPDATE_GOLDEN") != ""
	s, err := scenario.Load(filepath.Join("examples", "scenarios", "genchord-churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden", "genchord-diff.txt")
	for _, shards := range []int{1, 4} {
		run := func(proto string) *scenario.Report {
			v := *s
			v.Protocol = proto
			rep, err := harness.RunScenarioExec(&v, harness.ExecOptions{Shards: shards})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", proto, shards, err)
			}
			return rep
		}
		d := metrics.DiffConformance(run("genchord"), run("chord"), metrics.DiffTolerances{})
		got := d.Table()
		if !d.Pass {
			t.Fatalf("shards=%d: genchord-vs-chord conformance verdict is FAIL:\n%s", shards, got)
		}
		if update && shards == 1 {
			if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden (run with MACEDON_UPDATE_GOLDEN=1 to create): %v", err)
		}
		if got != string(want) {
			t.Fatalf("shards=%d diff table diverges from %s:\n%s",
				shards, goldenPath, firstDiff(string(want), got))
		}
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d vs got %d", len(wl), len(gl))
}
