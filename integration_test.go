// Cross-cutting integration tests: full stacks under churn and loss, the
// conditions §1 names as the hard part of building networked systems.
package main

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/scribe"
	"macedon/internal/simnet"
)

// TestChordUnderChurn kills a quarter of the ring in waves and checks that
// routing still delivers at the surviving owner afterwards.
func TestChordUnderChurn(t *testing.T) {
	c, err := harness.NewCluster(harness.ClusterConfig{
		Nodes: 20, Routers: 120, Seed: 2718,
		HeartbeatAfter: 2 * time.Second, FailAfter: 8 * time.Second, Sweep: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{chord.New(chord.Params{})}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(90 * time.Second)

	victims := []overlay.Address{c.Addrs[4], c.Addrs[9], c.Addrs[14], c.Addrs[19], c.Addrs[7]}
	for i, v := range victims {
		_ = c.Net.SetDown(v, true)
		c.Nodes[v].Stop()
		c.RunFor(time.Duration(10+5*i) * time.Second)
	}
	c.RunFor(2 * time.Minute)

	var live []overlay.Address
	for _, a := range c.Addrs {
		dead := false
		for _, v := range victims {
			if a == v {
				dead = true
			}
		}
		if !dead {
			live = append(live, a)
		}
	}
	oracle := metrics.NewChordOracle(live)
	delivered := map[overlay.Key]overlay.Address{}
	for _, a := range live {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) {
				delivered[overlay.Key(typ)] = addr
			},
		})
	}
	keys := []overlay.Key{0x01020304, 0x55555555, 0x7eadbeef, 0x31415926}
	for _, k := range keys {
		if err := c.Nodes[live[1]].Route(k, []byte("post-churn"), int32(k), overlay.PriorityDefault); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(15 * time.Second)
	for _, k := range keys {
		got, ok := delivered[k]
		if !ok {
			t.Errorf("key %v undelivered after churn", k)
			continue
		}
		if want := oracle.Successor(k); got != want {
			t.Errorf("key %v at %v, want %v", k, got, want)
		}
	}
}

// TestScribeTreeSurvivesForwarderFailure kills an interior forwarder and
// expects the soft-state refresh to regraft its orphans.
func TestScribeTreeSurvivesForwarderFailure(t *testing.T) {
	c, err := harness.NewCluster(harness.ClusterConfig{
		Nodes: 16, Routers: 100, Seed: 31415,
		HeartbeatAfter: 2 * time.Second, FailAfter: 8 * time.Second, Sweep: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{
		pastry.New(pastry.Params{}),
		scribe.New(scribe.Params{RefreshPeriod: 5 * time.Second}),
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(90 * time.Second)
	group := overlay.HashString("durable-session")
	got := map[overlay.Address]int{}
	for _, a := range c.Addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) { got[addr]++ },
		})
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(30 * time.Second)

	// Find and kill an interior forwarder (a non-root node with children).
	var victim overlay.Address
	for _, a := range c.Addrs[1:] {
		sc := c.Nodes[a].Instance("scribe").Agent().(*scribe.Protocol)
		if len(sc.Children(group)) > 0 && sc.Parent(group) != overlay.NilAddress {
			victim = a
			break
		}
	}
	if victim == overlay.NilAddress {
		t.Skip("no interior forwarder under this seed")
	}
	_ = c.Net.SetDown(victim, true)
	c.Nodes[victim].Stop()
	c.RunFor(45 * time.Second) // refreshes regraft orphans

	for k := range got {
		delete(got, k)
	}
	const packets = 5
	for i := 0; i < packets; i++ {
		_ = c.Nodes[c.Addrs[0]].Multicast(group, []byte("after"), 9, overlay.PriorityDefault)
		c.RunFor(2 * time.Second)
	}
	c.RunFor(20 * time.Second)
	missing := 0
	for _, a := range c.Addrs[1:] {
		if a == victim {
			continue
		}
		if got[a] < packets {
			missing++
		}
	}
	if missing > 1 { // one straggler mid-regraft is tolerable
		t.Fatalf("%d members lost the stream after forwarder failure", missing)
	}
}

// TestChordRoutingUnderPacketLoss checks that UDP control loss slows but
// does not break ring formation (reliable transports carry the data).
func TestChordRoutingUnderPacketLoss(t *testing.T) {
	c, err := harness.NewCluster(harness.ClusterConfig{
		Nodes: 10, Routers: 100, Seed: 161803,
		Sim: simnet.Config{LossRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{chord.New(chord.Params{})}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * time.Minute)
	var got bool
	dest := overlay.Key(0x42424242)
	oracle := metrics.NewChordOracle(c.Addrs)
	owner := oracle.Successor(dest)
	c.Nodes[owner].RegisterHandlers(core.Handlers{
		Deliver: func([]byte, int32, overlay.Address) { got = true },
	})
	// Retry the route a few times: individual datagrams may die, the
	// reliable DATA transport must not.
	for i := 0; i < 3 && !got; i++ {
		_ = c.Nodes[c.Addrs[2]].Route(dest, []byte("lossy"), 1, overlay.PriorityDefault)
		c.RunFor(10 * time.Second)
	}
	if !got {
		t.Fatal("routing failed under 5% per-hop loss")
	}
}

// TestDeterministicExperiments re-runs a full experiment and requires
// byte-identical results: the reproducibility claim of the harness.
func TestDeterministicExperiments(t *testing.T) {
	run := func() []float64 {
		res, err := harness.RunChordConvergence(harness.ChordParams{
			Nodes: 25, Routers: 120, Seed: 77,
			JoinWindow: 10 * time.Second, Duration: 40 * time.Second,
			Modes: []harness.ChordMode{{Name: "d", Period: time.Second}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var ys []float64
		for _, p := range res.Series[0].Points {
			ys = append(ys, p.Y)
		}
		return ys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}
