// Package bloom implements the bloom-filter library the paper lists among
// the extensible MACEDON libraries (§3.3). Bullet's summary tickets use these
// filters to advertise which data blocks a node holds so that peers with
// disjoint data can find each other.
package bloom

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size bloom filter with k independent hash functions
// derived by double hashing. The zero value is unusable; construct with New.
type Filter struct {
	bits   []uint64
	m      uint32 // number of bits
	k      uint32 // number of hash functions
	nAdded int
}

// New returns a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64. It panics if m or k is zero: filter geometry is fixed at
// design time, so a zero is a programming error.
func New(m, k int) *Filter {
	if m <= 0 || k <= 0 {
		panic("bloom: filter geometry must be positive")
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: uint32(words * 64), k: uint32(k)}
}

// NewForCapacity returns a filter sized for n elements at approximately the
// given false-positive rate, using the standard optimal geometry
// m = -n·ln(p)/ln(2)², k = (m/n)·ln(2).
func NewForCapacity(n int, p float64) *Filter {
	if n <= 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := int(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// M returns the number of bits in the filter.
func (f *Filter) M() int { return int(f.m) }

// K returns the number of hash functions.
func (f *Filter) K() int { return int(f.k) }

// Count returns the number of Add calls since creation or Clear. It counts
// insertions, not distinct elements.
func (f *Filter) Count() int { return f.nAdded }

func (f *Filter) indexes(key uint64) (h1, h2 uint32) {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	h.Write(b[:])
	sum := h.Sum64()
	h1 = uint32(sum)
	h2 = uint32(sum>>32) | 1 // odd so the probe sequence covers the table
	return
}

// Add inserts a 64-bit element.
func (f *Filter) Add(key uint64) {
	h1, h2 := f.indexes(key)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + i*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.nAdded++
}

// Contains reports whether the element may have been inserted. False
// positives occur at the designed rate; false negatives never occur.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := f.indexes(key)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + i*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter in place.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.nAdded = 0
}

// Union merges other into f. Both filters must share geometry; Union returns
// an error otherwise. Bullet's collect pass unions child summaries on the way
// up the tree.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return errors.New("bloom: mismatched filter geometry")
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.nAdded += other.nAdded
	return nil
}

// EstimateDisjointness returns the fraction of set bits in other that are
// clear in f — a cheap proxy for how much data the other node holds that
// this node lacks. Bullet ranks candidate mesh peers by this score.
func (f *Filter) EstimateDisjointness(other *Filter) float64 {
	if f.m != other.m {
		return 0
	}
	var theirs, fresh int
	for i := range f.bits {
		t := other.bits[i]
		theirs += popcount(t)
		fresh += popcount(t &^ f.bits[i])
	}
	if theirs == 0 {
		return 0
	}
	return float64(fresh) / float64(theirs)
}

// FillRatio returns the fraction of bits set, an indicator of saturation.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

func popcount(x uint64) int {
	// Hacker's Delight population count; avoids importing math/bits into the
	// hot loop path (identical codegen, kept explicit for clarity of intent).
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// MarshalBinary encodes the filter for transmission inside a summary ticket.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 12+8*len(f.bits))
	binary.BigEndian.PutUint32(out[0:], f.m)
	binary.BigEndian.PutUint32(out[4:], f.k)
	binary.BigEndian.PutUint32(out[8:], uint32(f.nAdded))
	for i, w := range f.bits {
		binary.BigEndian.PutUint64(out[12+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a filter produced by MarshalBinary.
func (f *Filter) UnmarshalBinary(b []byte) error {
	if len(b) < 12 {
		return errors.New("bloom: truncated filter encoding")
	}
	m := binary.BigEndian.Uint32(b[0:])
	k := binary.BigEndian.Uint32(b[4:])
	n := binary.BigEndian.Uint32(b[8:])
	words := int(m / 64)
	if m == 0 || m%64 != 0 || k == 0 || len(b) != 12+8*words {
		return errors.New("bloom: corrupt filter encoding")
	}
	f.m, f.k, f.nAdded = m, k, int(n)
	f.bits = make([]uint64, words)
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(b[12+8*i:])
	}
	return nil
}
