package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	for i := uint64(0); i < 100; i++ {
		f.Add(i * 7919)
	}
	for i := uint64(0); i < 100; i++ {
		if !f.Contains(i * 7919) {
			t.Fatalf("false negative for %d", i*7919)
		}
	}
	if f.Count() != 100 {
		t.Fatalf("Count = %d", f.Count())
	}
}

// Property: anything added is always contained, regardless of geometry.
func TestNoFalseNegativesQuick(t *testing.T) {
	check := func(keys []uint64) bool {
		f := New(256, 3)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 1000
	f := NewForCapacity(n, 0.01)
	rng := rand.New(rand.NewSource(1))
	inserted := make(map[uint64]bool, n)
	for len(inserted) < n {
		k := rng.Uint64()
		inserted[k] = true
		f.Add(k)
	}
	fp := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if inserted[k] {
			continue
		}
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f far above designed 0.01", rate)
	}
}

func TestClear(t *testing.T) {
	f := New(128, 2)
	f.Add(1)
	f.Add(2)
	f.Clear()
	if f.Count() != 0 || f.FillRatio() != 0 {
		t.Fatalf("Clear left state: count=%d fill=%f", f.Count(), f.FillRatio())
	}
}

func TestUnion(t *testing.T) {
	a, b := New(256, 3), New(256, 3)
	a.Add(1)
	b.Add(2)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains(1) || !a.Contains(2) {
		t.Fatal("union lost elements")
	}
	mismatched := New(128, 3)
	if err := a.Union(mismatched); err == nil {
		t.Fatal("union of mismatched geometry should fail")
	}
}

func TestEstimateDisjointness(t *testing.T) {
	a, b := New(4096, 4), New(4096, 4)
	for i := uint64(0); i < 100; i++ {
		a.Add(i)
		b.Add(i + 1000) // fully disjoint sets
	}
	if d := a.EstimateDisjointness(b); d < 0.8 {
		t.Fatalf("disjoint sets estimate = %f, want near 1", d)
	}
	same := New(4096, 4)
	for i := uint64(0); i < 100; i++ {
		same.Add(i)
	}
	if d := a.EstimateDisjointness(same); d > 0.2 {
		t.Fatalf("identical sets estimate = %f, want near 0", d)
	}
	if d := a.EstimateDisjointness(New(4096, 4)); d != 0 {
		t.Fatalf("empty other estimate = %f, want 0", d)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(512, 5)
	for i := uint64(0); i < 50; i++ {
		f.Add(i * 13)
	}
	enc, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if g.M() != f.M() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatalf("geometry lost: %d/%d/%d vs %d/%d/%d", g.M(), g.K(), g.Count(), f.M(), f.K(), f.Count())
	}
	for i := uint64(0); i < 50; i++ {
		if !g.Contains(i * 13) {
			t.Fatalf("decoded filter lost element %d", i*13)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	var f Filter
	if err := f.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil input should fail")
	}
	if err := f.UnmarshalBinary(make([]byte, 12)); err == nil {
		t.Fatal("zero-geometry input should fail")
	}
	good, _ := New(128, 2).MarshalBinary()
	if err := f.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Fatal("truncated input should fail")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,0) should panic")
		}
	}()
	New(0, 0)
}

func TestNewForCapacityDefaults(t *testing.T) {
	f := NewForCapacity(0, 2.0) // nonsense inputs get sane defaults
	if f.M() <= 0 || f.K() <= 0 {
		t.Fatalf("bad geometry: m=%d k=%d", f.M(), f.K())
	}
}
