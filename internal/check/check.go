// Package check is the correctness plane: runtime structural-invariant
// checkers that both execution backends — the virtual-time scenario engine
// and the live deployment controller — drive at phase boundaries. A checker
// sees a substrate-neutral snapshot of every node's protocol state (a View
// of NodeStates) and reports Violations; the per-phase verdict lands in the
// report as a PhaseChecks section, in the JSON encoders, and in the obs
// event log.
//
// Checkers are deliberately churn-tolerant: overlay protocols repair
// structure asynchronously, so a snapshot taken moments after a kill is
// allowed to be inconsistent. The View carries per-node liveness and
// connectivity ages, and every structural checker restricts itself to the
// *stable* population — nodes whose liveness and connectivity have not
// changed for a grace window — so a violation means "the protocol had time
// to repair this and did not", not "repair was in flight".
//
// Scenarios opt in via the spec's `checks` field (docs/testing.md); with
// checks off, every legacy output stays byte-identical.
package check

import (
	"fmt"
	"sort"
	"time"

	"macedon/internal/overlay"
)

// Node-state kinds: which structural family a node's extracted state
// belongs to, deciding which checkers apply to it.
const (
	KindRing    = "ring"    // chord-family: successor list, predecessor, fingers
	KindLeafset = "leafset" // pastry-family: leaf set
	KindTree    = "tree"    // tree-family: parent/children/root
)

// NodeState is one node's protocol state reduced to a substrate-neutral
// snapshot: plain address lists that extract identically from the emulated
// cluster and from a live agent process (it crosses the deploy control
// protocol as JSON). Absent fields stay zero; checkers skip what a
// protocol does not expose.
type NodeState struct {
	// Node is the scenario node index; Addr its overlay address.
	Node int             `json:"node"`
	Addr overlay.Address `json:"addr"`
	// Alive reports whether the node process is up.
	Alive bool `json:"alive"`
	// Kind is the structural family ("ring", "leafset", "tree", or "").
	Kind string `json:"kind,omitempty"`
	// Joined reports whether the protocol completed its join.
	Joined bool `json:"joined,omitempty"`

	// Ring state (chord-family).
	Succs   []overlay.Address `json:"succs,omitempty"`
	Pred    overlay.Address   `json:"pred,omitempty"`
	Fingers []overlay.Address `json:"fingers,omitempty"`

	// Leafset state (pastry-family).
	Leafset []overlay.Address `json:"leafset,omitempty"`

	// Tree state.
	Parent   overlay.Address   `json:"parent,omitempty"`
	Children []overlay.Address `json:"children,omitempty"`
	Root     overlay.Address   `json:"root,omitempty"`

	// Refs is the failure-detected route state the staleness checker
	// audits: successor lists, predecessor, leaf sets, parent and child
	// links — state a live protocol must evict when the referenced node
	// dies. Lazily-repaired state (chord fingers, pastry routing-table
	// rows, location caches) is deliberately excluded: its staleness
	// bound is the repair-cycle length, not the failure detector's.
	// Sorted and deduplicated, so snapshots compare bytewise.
	Refs []overlay.Address `json:"refs,omitempty"`
}

// View is the phase-boundary snapshot handed to every checker: all node
// states plus the liveness/connectivity ages the stability rules need.
type View struct {
	// Phase is the phase index, PhaseName its label, At the snapshot's
	// offset on the run's timeline.
	Phase     int
	PhaseName string
	At        time.Duration

	// Nodes is indexed by scenario node index.
	Nodes []NodeState

	// UpFor[i] is how long node i has been continuously alive (0 when
	// down); DownFor[i] how long continuously dead (0 when up).
	UpFor   []time.Duration
	DownFor []time.Duration
	// ConnAge[i] is how long node i's connectivity has been unchanged:
	// time since the last node_down/up, link_down/up, degrade/restore or
	// partition/heal event touching it.
	ConnAge []time.Duration
	// Reachable[i] is false while node i sits behind an active node_down
	// or link_down; Degraded[i] while its access pipe is degraded.
	Reachable []bool
	Degraded  []bool
	// Partitioned reports an active network partition. Convergence
	// invariants (ring/leafset/tree coverage) are suspended under a
	// partition: a split network is not supposed to agree.
	Partitioned bool

	// Grace is the stability window; StaleBound the staleness checker's
	// limit on references to dead nodes.
	Grace      time.Duration
	StaleBound time.Duration

	byAddr map[overlay.Address]int
}

// Index maps an overlay address back to its node index (-1 when unknown).
func (v *View) Index(a overlay.Address) int {
	if v.byAddr == nil {
		v.byAddr = make(map[overlay.Address]int, len(v.Nodes))
		for i := range v.Nodes {
			v.byAddr[v.Nodes[i].Addr] = i
		}
	}
	if i, ok := v.byAddr[a]; ok {
		return i
	}
	return -1
}

// Stable reports whether node i belongs to the stable population: alive,
// reachable, undegraded, and unchanged (liveness and connectivity) for at
// least the grace window. Structural checkers use the stable set both as
// subjects and as the oracle membership.
func (v *View) Stable(i int) bool {
	return v.Nodes[i].Alive && v.Reachable[i] && !v.Degraded[i] &&
		v.UpFor[i] >= v.Grace && v.ConnAge[i] >= v.Grace
}

// StableDead reports whether node i has been dead for at least the grace
// window — long enough that live protocol state must have evicted it.
func (v *View) StableDead(i int) bool {
	return !v.Nodes[i].Alive && v.DownFor[i] >= v.Grace
}

// RecentChurn reports whether any node's liveness or connectivity changed
// within the grace window: repair traffic may still be in flight, so the
// cross-node agreement checks relax.
func (v *View) RecentChurn() bool {
	for i := range v.Nodes {
		if v.Nodes[i].Alive {
			if v.UpFor[i] < v.Grace || v.ConnAge[i] < v.Grace {
				return true
			}
		} else if v.DownFor[i] < v.Grace {
			return true
		}
	}
	return false
}

// QuietFor reports whether every node's liveness and connectivity have been
// unchanged for at least d. Checks over state that refreshes on a cycle
// longer than the grace window gate on this instead of RecentChurn —
// chord's round-robin finger repair, for example, revisits a given slot
// only once per full cycle, so a finger written from a transiently wrong
// lookup during churn can legitimately outlive the grace window.
func (v *View) QuietFor(d time.Duration) bool {
	for i := range v.Nodes {
		if v.Nodes[i].Alive {
			if v.UpFor[i] < d || v.ConnAge[i] < d {
				return false
			}
		} else if v.DownFor[i] < d {
			return false
		}
	}
	return true
}

// Violation is one invariant breach: which checker, which node (-1 for a
// whole-view violation), and a deterministic description.
type Violation struct {
	Checker string `json:"checker"`
	Node    int    `json:"node"`
	Detail  string `json:"detail"`
}

func (vi Violation) String() string {
	if vi.Node < 0 {
		return fmt.Sprintf("[%s] %s", vi.Checker, vi.Detail)
	}
	return fmt.Sprintf("[%s] node %d: %s", vi.Checker, vi.Node, vi.Detail)
}

// Checker inspects one phase-boundary View and reports violations. Check
// must be deterministic: the same View yields the same violations in the
// same order (the runner sorts anyway, as a belt).
type Checker interface {
	Name() string
	Check(v *View) []Violation
}

// PhaseChecks is the per-phase verdict: which checkers ran, how many nodes
// the snapshot covered, and every violation (sorted).
type PhaseChecks struct {
	// Checkers names the checkers that ran, in order.
	Checkers []string `json:"checkers"`
	// Nodes is the number of live nodes the snapshot covered.
	Nodes int `json:"nodes"`
	// Violations holds the breaches, sorted by (checker, node, detail) and
	// truncated to a readable cap; Total counts them all.
	Violations []Violation `json:"violations,omitempty"`
	Total      int         `json:"total_violations,omitempty"`
}

// Failed reports whether any violation was recorded.
func (pc *PhaseChecks) Failed() bool { return pc != nil && pc.Total > 0 }

// Run drives every checker over one View and assembles the verdict.
func Run(checkers []Checker, v *View) *PhaseChecks {
	pc := &PhaseChecks{}
	for _, c := range checkers {
		pc.Checkers = append(pc.Checkers, c.Name())
		pc.Violations = append(pc.Violations, c.Check(v)...)
	}
	for i := range v.Nodes {
		if v.Nodes[i].Alive {
			pc.Nodes++
		}
	}
	sort.Slice(pc.Violations, func(i, j int) bool {
		a, b := pc.Violations[i], pc.Violations[j]
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Detail < b.Detail
	})
	pc.Total = len(pc.Violations)
	if len(pc.Violations) > maxViolationLines {
		pc.Violations = pc.Violations[:maxViolationLines]
	}
	return pc
}

// Config resolves a scenario's checks spec against a protocol.
type Config struct {
	// Names lists the requested checkers; "auto" expands to the set that
	// fits the protocol (see ForProtocol).
	Names []string
	// Protocol is the scenario protocol name (drives "auto").
	Protocol string
	// Grace is the stability window (default 30s).
	Grace time.Duration
	// StaleBound limits how long dead nodes may linger in failure-detected
	// route state (default 2×Grace).
	StaleBound time.Duration
}

// Defaults for the stability windows.
const (
	DefaultGrace      = 30 * time.Second
	defaultStaleMul   = 2
	maxViolationLines = 64 // per phase, keeping reports readable
)

// ForProtocol returns the checker names that fit a scenario protocol.
func ForProtocol(proto string) []string {
	switch proto {
	case "", "chord", "genchord":
		return []string{"ring", "staleness"}
	case "pastry", "genpastry", "scribe":
		return []string{"leafset", "staleness"}
	case "randtree", "genrandtree", "overcast", "bullet":
		return []string{"tree", "staleness"}
	default:
		return []string{"staleness"}
	}
}

// Known reports whether a checker name is valid in a scenario spec.
func Known(name string) bool {
	switch name {
	case "auto", "ring", "leafset", "tree", "staleness", "synthetic-full-population":
		return true
	}
	return false
}

// New resolves a Config into its checker set.
func New(cfg Config) ([]Checker, error) {
	if cfg.Grace <= 0 {
		cfg.Grace = DefaultGrace
	}
	if cfg.StaleBound <= 0 {
		cfg.StaleBound = defaultStaleMul * cfg.Grace
	}
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, n := range cfg.Names {
		if n == "auto" {
			for _, a := range ForProtocol(cfg.Protocol) {
				add(a)
			}
			continue
		}
		add(n)
	}
	out := make([]Checker, 0, len(names))
	for _, n := range names {
		switch n {
		case "ring":
			out = append(out, ringChecker{})
		case "leafset":
			out = append(out, leafsetChecker{})
		case "tree":
			out = append(out, treeChecker{})
		case "staleness":
			out = append(out, stalenessChecker{})
		case "synthetic-full-population":
			out = append(out, SyntheticFullPopulation{})
		default:
			return nil, fmt.Errorf("check: unknown checker %q", n)
		}
	}
	return out, nil
}

// Resolve applies the Config's defaulting to its windows without building
// checkers — the view assembler needs the same resolved values.
func (cfg Config) Resolve() (grace, stale time.Duration) {
	grace, stale = cfg.Grace, cfg.StaleBound
	if grace <= 0 {
		grace = DefaultGrace
	}
	if stale <= 0 {
		stale = defaultStaleMul * grace
	}
	return grace, stale
}
