package check

import (
	"fmt"

	"macedon/internal/overlay"
)

// ringChecker verifies chord-family ring consistency against the
// global-knowledge oracle: a stable node's successor and predecessor must
// not skip over any stable live node, and every finger must sit at or past
// its interval start. The checks are arc checks, not equality checks, so a
// fresh joiner legitimately sitting between a node and its oracle
// successor never counts as a violation; dead pointers are the staleness
// checker's department.
type ringChecker struct{}

func (ringChecker) Name() string { return "ring" }

func (ringChecker) Check(v *View) []Violation {
	if v.Partitioned {
		return nil // a split ring is not supposed to agree
	}
	var out []Violation
	stable := ringMembers(v)
	for _, i := range stable {
		n := &v.Nodes[i]
		self := overlay.HashAddress(n.Addr)
		if len(n.Succs) == 0 {
			out = append(out, Violation{Checker: "ring", Node: i, Detail: "no successor"})
			continue
		}
		succ := overlay.HashAddress(n.Succs[0])
		if c := oracleNext(v, stable, i, self, false); c >= 0 {
			ck := overlay.HashAddress(v.Nodes[c].Addr)
			if n.Succs[0] != v.Nodes[c].Addr && ck.Between(self, succ) {
				out = append(out, Violation{Checker: "ring", Node: i, Detail: fmt.Sprintf(
					"successor %v skips stable node %d (%v)", n.Succs[0], c, v.Nodes[c].Addr)})
			}
		}
		if n.Pred != overlay.NilAddress {
			pred := overlay.HashAddress(n.Pred)
			if p := oracleNext(v, stable, i, self, true); p >= 0 {
				pk := overlay.HashAddress(v.Nodes[p].Addr)
				if n.Pred != v.Nodes[p].Addr && pk.Between(pred, self) {
					out = append(out, Violation{Checker: "ring", Node: i, Detail: fmt.Sprintf(
						"predecessor %v skips stable node %d (%v)", n.Pred, p, v.Nodes[p].Addr)})
				}
			}
		}
		// Fingers refresh round-robin, one slot per period, so a slot
		// written from a transiently wrong lookup during churn persists up
		// to a full cycle — longer than the grace window. Grade them only
		// once the whole view has been quiet for the stale bound.
		if v.QuietFor(v.StaleBound) {
			for fi, f := range n.Fingers {
				if f == overlay.NilAddress {
					continue
				}
				start := overlay.Key(uint32(self) + 1<<uint(fi))
				if overlay.HashAddress(f).Between(self, start) {
					out = append(out, Violation{Checker: "ring", Node: i, Detail: fmt.Sprintf(
						"finger %d (%v) precedes its interval start", fi, f)})
				}
			}
		}
	}
	return out
}

// ringMembers returns the stable joined ring-family node indices.
func ringMembers(v *View) []int {
	var out []int
	for i := range v.Nodes {
		if v.Nodes[i].Kind == KindRing && v.Nodes[i].Joined && v.Stable(i) {
			out = append(out, i)
		}
	}
	return out
}

// oracleNext returns the stable member nearest to key self going clockwise
// (or counter-clockwise) on the hash ring, excluding node i; -1 when i is
// the only stable member.
func oracleNext(v *View, stable []int, i int, self overlay.Key, ccw bool) int {
	best, bestDist := -1, uint32(0)
	for _, j := range stable {
		if j == i {
			continue
		}
		k := overlay.HashAddress(v.Nodes[j].Addr)
		var d uint32
		if ccw {
			d = k.Distance(self) // distance from j forward to self
		} else {
			d = self.Distance(k) // distance from self forward to j
		}
		if d == 0 {
			continue
		}
		if best < 0 || d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// leafsetChecker verifies pastry-family leaf sets: a stable node's leaf
// set must reach at least as close as the nearest stable live node in each
// ring direction. A fresher (non-stable) node sitting even closer
// satisfies the check — the arc is covered.
type leafsetChecker struct{}

func (leafsetChecker) Name() string { return "leafset" }

func (leafsetChecker) Check(v *View) []Violation {
	if v.Partitioned {
		return nil
	}
	var out []Violation
	var stable []int
	for i := range v.Nodes {
		if v.Nodes[i].Kind == KindLeafset && v.Nodes[i].Joined && v.Stable(i) {
			stable = append(stable, i)
		}
	}
	for _, i := range stable {
		n := &v.Nodes[i]
		self := overlay.HashAddress(n.Addr)
		for _, ccw := range []bool{false, true} {
			c := oracleNext(v, stable, i, self, ccw)
			if c < 0 {
				continue
			}
			dir := "cw"
			oracleDist := self.Distance(overlay.HashAddress(v.Nodes[c].Addr))
			if ccw {
				dir = "ccw"
				oracleDist = overlay.HashAddress(v.Nodes[c].Addr).Distance(self)
			}
			covered := false
			for _, l := range n.Leafset {
				j := v.Index(l)
				if j < 0 || !v.Nodes[j].Alive {
					continue
				}
				lk := overlay.HashAddress(l)
				var d uint32
				if ccw {
					d = lk.Distance(self)
				} else {
					d = self.Distance(lk)
				}
				if d != 0 && d <= oracleDist {
					covered = true
					break
				}
			}
			if !covered {
				out = append(out, Violation{Checker: "leafset", Node: i, Detail: fmt.Sprintf(
					"leafset misses nearest stable %s neighbor %d (%v)", dir, c, v.Nodes[c].Addr)})
			}
		}
	}
	return out
}

// treeChecker verifies tree well-formedness for tree-family overlays:
// agreement on a single root, acyclic parent pointers, a live parent path
// from every stable node to the root, and parent/child link symmetry. The
// path and symmetry rules relax while any node's liveness or connectivity
// changed inside the grace window (repair may be in flight); a cycle is
// always a violation — no repair protocol here ever routes through one.
type treeChecker struct{}

func (treeChecker) Name() string { return "tree" }

const (
	pathUnknown = iota
	pathVisiting
	pathToRoot
	pathBroken
	pathCyclic
)

func (treeChecker) Check(v *View) []Violation {
	if v.Partitioned {
		return nil
	}
	var out []Violation
	var subjects []int
	rootAddr := overlay.NilAddress
	rootFrom := -1
	for i := range v.Nodes {
		n := &v.Nodes[i]
		if n.Kind != KindTree || !n.Joined || !v.Stable(i) {
			continue
		}
		subjects = append(subjects, i)
		if n.Root != overlay.NilAddress {
			if rootAddr == overlay.NilAddress {
				rootAddr, rootFrom = n.Root, i
			} else if n.Root != rootAddr {
				out = append(out, Violation{Checker: "tree", Node: i, Detail: fmt.Sprintf(
					"root disagreement: %v here vs %v at node %d", n.Root, rootAddr, rootFrom)})
			}
		}
	}
	if len(subjects) == 0 {
		return out
	}
	recent := v.RecentChurn()

	// Parent-path classification, memoized across subjects.
	status := make([]int, len(v.Nodes))
	var walk func(i int) int
	walk = func(i int) int {
		switch status[i] {
		case pathVisiting:
			status[i] = pathCyclic
			return pathCyclic
		case pathUnknown:
		default:
			return status[i]
		}
		n := &v.Nodes[i]
		if !n.Alive || !v.Reachable[i] {
			status[i] = pathBroken
			return pathBroken
		}
		if n.Parent == overlay.NilAddress {
			if n.Addr == rootAddr || rootAddr == overlay.NilAddress {
				status[i] = pathToRoot
			} else {
				status[i] = pathBroken
			}
			return status[i]
		}
		p := v.Index(n.Parent)
		if p < 0 {
			status[i] = pathBroken
			return pathBroken
		}
		status[i] = pathVisiting
		r := walk(p)
		if status[i] == pathVisiting { // not flagged as on-cycle by the recursion
			status[i] = r
		}
		return status[i]
	}

	for _, i := range subjects {
		n := &v.Nodes[i]
		if n.Parent == overlay.NilAddress && n.Addr != rootAddr && rootAddr != overlay.NilAddress {
			if !recent {
				out = append(out, Violation{Checker: "tree", Node: i, Detail: "orphaned: joined with no parent"})
			}
			continue
		}
		switch walk(i) {
		case pathCyclic:
			if status[i] == pathCyclic { // report only the on-cycle nodes, not their descendants
				out = append(out, Violation{Checker: "tree", Node: i, Detail: "parent chain cycles"})
			}
		case pathBroken:
			if !recent {
				out = append(out, Violation{Checker: "tree", Node: i, Detail: "no live parent path to the root"})
			}
		}
		if p := v.Index(n.Parent); p >= 0 && !recent && v.Stable(p) && v.Nodes[p].Kind == KindTree {
			if !containsAddr(v.Nodes[p].Children, n.Addr) {
				out = append(out, Violation{Checker: "tree", Node: i, Detail: fmt.Sprintf(
					"parent %d (%v) does not list it as a child", p, n.Parent)})
			}
		}
	}
	return out
}

func containsAddr(s []overlay.Address, a overlay.Address) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

// stalenessChecker bounds route-state staleness: no reachable live node
// may still reference a node that has been dead longer than the stale
// bound — by then the failure detector must have evicted it from
// successor lists, leaf sets, and parent/child links (NodeState.Refs
// defines the audited state).
type stalenessChecker struct{}

func (stalenessChecker) Name() string { return "staleness" }

func (stalenessChecker) Check(v *View) []Violation {
	var out []Violation
	for i := range v.Nodes {
		n := &v.Nodes[i]
		if !n.Alive || !v.Reachable[i] || v.Degraded[i] {
			continue // an isolated node cannot learn about deaths
		}
		for _, r := range n.Refs {
			j := v.Index(r)
			if j < 0 || v.Nodes[j].Alive {
				continue
			}
			if v.DownFor[j] >= v.StaleBound {
				out = append(out, Violation{Checker: "staleness", Node: i, Detail: fmt.Sprintf(
					"stale ref to node %d (%v), down for %v", j, r, v.DownFor[j])})
			}
		}
	}
	return out
}

// SyntheticFullPopulation is a deliberately strict checker used to
// exercise the fuzzer's shrinking pipeline end to end: it flags every node
// that is down at a phase boundary, so any scenario with un-revived churn
// fails deterministically. It is not a protocol invariant; opt in with
// the "synthetic-full-population" name (macedon fuzz -synthetic).
type SyntheticFullPopulation struct{}

// Name implements Checker.
func (SyntheticFullPopulation) Name() string { return "synthetic-full-population" }

// Check implements Checker.
func (SyntheticFullPopulation) Check(v *View) []Violation {
	var out []Violation
	for i := range v.Nodes {
		if !v.Nodes[i].Alive {
			out = append(out, Violation{Checker: "synthetic-full-population", Node: i,
				Detail: "node down at phase end"})
		}
	}
	return out
}
