package check

import (
	"sort"

	"macedon/internal/core"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
	"macedon/internal/overlays/genchord"
	"macedon/internal/overlays/genpastry"
	"macedon/internal/overlays/genrandtree"
	"macedon/internal/overlays/overcast"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/randtree"
)

// Extract reduces one live node's protocol stack to its NodeState. It runs
// the inspection on the node's serialized execution queue (core.Node.Exec),
// so it is safe from any goroutine: the scenario engine calls it at epoch
// barriers (where Exec runs inline and deterministically), a live agent
// from its control-connection goroutine.
//
// The walk stops at the first instance whose structural family it knows —
// layered stacks (scribe-on-pastry, bullet-on-randtree) are checked
// through their base overlay. Unknown protocols yield a bare liveness
// record that every structural checker skips.
func Extract(n *core.Node, idx int) NodeState {
	st := NodeState{Node: idx, Addr: n.Addr(), Alive: true}
	n.Exec(func() {
		for _, inst := range n.Stack() {
			if extractInstance(inst, &st) {
				break
			}
		}
	})
	finishRefs(&st)
	return st
}

// DeadState is the NodeState of a node that is down: liveness only.
func DeadState(idx int, addr overlay.Address) NodeState {
	return NodeState{Node: idx, Addr: addr, Alive: false}
}

// extractInstance fills st from one stack instance when it recognizes the
// agent, reporting whether it did.
func extractInstance(inst *core.Instance, st *NodeState) bool {
	joined := inst.State() == core.State("joined")
	switch ag := inst.Agent().(type) {
	case *chord.Protocol:
		st.Kind = KindRing
		st.Joined = ag.Joined()
		st.Succs = ag.SuccList()
		st.Pred = ag.Predecessor()
		fingers := ag.FingerSnapshot()
		st.Fingers = append([]overlay.Address(nil), fingers[:]...)
	case *genchord.Agent:
		st.Kind = KindRing
		st.Joined = joined
		st.Succs = append([]overlay.Address(nil), ag.Succs...)
		st.Fingers = append([]overlay.Address(nil), ag.Fingers[:]...)
	case *pastry.Protocol:
		st.Kind = KindLeafset
		st.Joined = ag.Joined()
		st.Leafset = ag.LeafSet()
	case *genpastry.Agent:
		st.Kind = KindLeafset
		st.Joined = joined
		st.Leafset = append([]overlay.Address(nil), ag.Leafset...)
	case *randtree.Protocol:
		st.Kind = KindTree
		st.Joined = joined
		st.Root = ag.Root()
		st.Parent = firstAddr(inst.NeighborsSnapshot("parent"))
		st.Children = inst.NeighborsSnapshot("kids")
	case *genrandtree.Agent:
		st.Kind = KindTree
		st.Joined = joined
		st.Root = ag.Root
		st.Parent = firstAddr(inst.NeighborsSnapshot("parent"))
		st.Children = inst.NeighborsSnapshot("kids")
	case *overcast.Protocol:
		st.Kind = KindTree
		st.Joined = joined
		st.Parent = firstAddr(inst.NeighborsSnapshot("papa"))
		st.Children = inst.NeighborsSnapshot("kids")
	default:
		return false
	}
	return true
}

func firstAddr(s []overlay.Address) overlay.Address {
	if len(s) == 0 {
		return overlay.NilAddress
	}
	return s[0]
}

// finishRefs assembles the audited reference set: the failure-detected
// route state (successors, predecessor, leaf set, parent, children),
// sorted and deduplicated so two extractions of the same state are
// byte-identical.
func finishRefs(st *NodeState) {
	var refs []overlay.Address
	refs = append(refs, st.Succs...)
	if st.Pred != overlay.NilAddress {
		refs = append(refs, st.Pred)
	}
	refs = append(refs, st.Leafset...)
	if st.Parent != overlay.NilAddress {
		refs = append(refs, st.Parent)
	}
	refs = append(refs, st.Children...)
	if len(refs) == 0 {
		return
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	out := refs[:0]
	var prev overlay.Address
	for _, r := range refs {
		if r == overlay.NilAddress || r == st.Addr || r == prev {
			continue
		}
		out = append(out, r)
		prev = r
	}
	st.Refs = out
}
