package codegen

import (
	"fmt"
	"strings"

	"macedon/internal/dsl"
)

// softError marks constructs outside the translatable subset (unknown
// primitives, extensible library calls): the statement degrades to a TODO
// comment instead of failing the whole generation, mirroring how the paper's
// translator passes unknown C fragments through.
type softError struct{ msg string }

func (e softError) Error() string { return e.msg }

func softf(format string, args ...any) error {
	return softError{msg: fmt.Sprintf(format, args...)}
}

func isSoft(err error) bool {
	_, ok := err.(softError)
	return ok
}

// stmt translates one action-language statement at the given indent depth.
func (g *generator) stmt(s dsl.Stmt, depth int) error {
	ind := strings.Repeat("\t", depth)
	switch s := s.(type) {
	case *dsl.AssignStmt:
		v, ok := g.varTypes[s.Target]
		if !ok || v.Kind != dsl.VarPlain {
			return fmt.Errorf("codegen: %s: assignment to undeclared variable %q", s.Pos, s.Target)
		}
		val, err := g.expr(s.Value)
		if err != nil {
			return err
		}
		g.pf("%sa.%s = %s\n", ind, camel(s.Target), val)
	case *dsl.IfStmt:
		cond, err := g.expr(s.Cond)
		if err != nil {
			return err
		}
		g.pf("%sif %s {\n", ind, cond)
		for _, st := range s.Then {
			if err := g.stmt(st, depth+1); err != nil {
				return err
			}
		}
		if len(s.Else) > 0 {
			g.pf("%s} else {\n", ind)
			for _, st := range s.Else {
				if err := g.stmt(st, depth+1); err != nil {
					return err
				}
			}
		}
		g.pf("%s}\n", ind)
	case *dsl.ForeachStmt:
		g.loopVars[s.Var] = true
		g.pf("%sfor _, %s := range ctx.Neighbors(%q).Addrs() {\n", ind, s.Var, s.List)
		for _, st := range s.Body {
			if err := g.stmt(st, depth+1); err != nil {
				return err
			}
		}
		g.pf("%s}\n", ind)
		delete(g.loopVars, s.Var)
	case *dsl.CallStmt:
		if err := g.callStmt(s, ind); err != nil {
			if isSoft(err) {
				g.opaque++
				var parts []string
				for _, a := range s.Args {
					parts = append(parts, a.String())
				}
				g.pf("%s// TODO(macedon): untranslated action: %s(%s)\n", ind, s.Fn, strings.Join(parts, ", "))
				return nil
			}
			return err
		}
	case *dsl.OpaqueStmt:
		g.opaque++
		g.pf("%s// TODO(macedon): untranslated action: %s\n", ind, s.Text)
	default:
		return fmt.Errorf("codegen: unknown statement %T", s)
	}
	return nil
}

func (g *generator) callStmt(s *dsl.CallStmt, ind string) error {
	// Arguments translate lazily: several primitives take bare names
	// (states, timers, neighbor lists) that are not value expressions.
	arg := func(i int) (string, error) { return g.expr(s.Args[i]) }
	switch s.Fn {
	case "send":
		m, ok := g.msgs[s.Msg]
		if !ok {
			return fmt.Errorf("codegen: %s: send of undeclared message %q", s.Pos, s.Msg)
		}
		var inits []string
		for _, fi := range s.Fields {
			found := false
			for _, f := range m.Fields {
				if f.Name == fi.Name {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("codegen: %s: message %q has no field %q", s.Pos, s.Msg, fi.Name)
			}
			v, err := g.expr(fi.Value)
			if err != nil {
				return err
			}
			inits = append(inits, fmt.Sprintf("%s: %s", camel(fi.Name), v))
		}
		dest, err := arg(0)
		if err != nil {
			return err
		}
		g.pf("%s_ = ctx.Send(%s, &%s{%s}, overlay.PriorityDefault)\n",
			ind, dest, msgTypeName(s.Msg), strings.Join(inits, ", "))
	case "state_change":
		st, ok := s.Args[0].(dsl.Ident)
		if !ok {
			return fmt.Errorf("codegen: %s: state_change needs a state name", s.Pos)
		}
		g.pf("%sctx.StateChange(%q)\n", ind, st.Name)
	case "timer_sched", "timer_resched":
		t, ok := s.Args[0].(dsl.Ident)
		if !ok {
			return fmt.Errorf("codegen: %s: %s needs a timer name", s.Pos, s.Fn)
		}
		period := "0"
		if len(s.Args) > 1 {
			p1, err := arg(1)
			if err != nil {
				return err
			}
			period = p1 + "*time.Millisecond"
		}
		fn := "TimerSched"
		if s.Fn == "timer_resched" {
			fn = "TimerResched"
		}
		g.pf("%sctx.%s(%q, %s)\n", ind, fn, t.Name, period)
	case "timer_cancel":
		t, ok := s.Args[0].(dsl.Ident)
		if !ok {
			return fmt.Errorf("codegen: %s: timer_cancel needs a timer name", s.Pos)
		}
		g.pf("%sctx.TimerCancel(%q)\n", ind, t.Name)
	case "neighbor_add":
		l, err := g.listArg(s, 0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		g.pf("%sctx.Neighbors(%q).Add(%s)\n", ind, l, a1)
	case "neighbor_remove":
		l, err := g.listArg(s, 0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		g.pf("%sctx.Neighbors(%q).Remove(%s)\n", ind, l, a1)
	case "neighbor_clear":
		l, err := g.listArg(s, 0)
		if err != nil {
			return err
		}
		g.pf("%sctx.Neighbors(%q).Clear()\n", ind, l)
	case "deliver":
		a0, err := arg(0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		a2, err := arg(2)
		if err != nil {
			return err
		}
		g.pf("%sctx.Deliver(%s, %s, %s)\n", ind, a0, a1, a2)
	case "notify":
		kind, ok := s.Args[0].(dsl.Ident)
		if !ok {
			return softf("notify needs a neighbor kind at %s", s.Pos)
		}
		l, err := g.listArg(s, 1)
		if err != nil {
			return err
		}
		g.pf("%sctx.NotifyNeighbors(overlay.NbrType%s, ctx.Neighbors(%q).Addrs())\n",
			ind, camel(kind.Name), l)
	case "quash":
		g.pf("%sev.Quash = true\n", ind)
	case "upcall_ext":
		a0, err := arg(0)
		if err != nil {
			return err
		}
		g.pf("%sctx.UpcallExt(int(%s), nil)\n", ind, a0)
	default:
		return softf("unknown primitive statement %q at %s", s.Fn, s.Pos)
	}
	return nil
}

func (g *generator) listArg(s *dsl.CallStmt, i int) (string, error) {
	id, ok := s.Args[i].(dsl.Ident)
	if !ok {
		return "", softf("%s needs a neighbor list name at %s", s.Fn, s.Pos)
	}
	if v, declared := g.varTypes[id.Name]; !declared || v.Kind != dsl.VarNeighborList {
		return "", softf("%q is not a declared neighbor list at %s", id.Name, s.Pos)
	}
	return id.Name, nil
}

// expr translates an action-language expression.
func (g *generator) expr(e dsl.Expr) (string, error) {
	switch e := e.(type) {
	case dsl.IntLit:
		return e.Value, nil
	case dsl.Ident:
		return g.ident(e.Name)
	case dsl.NotExpr:
		inner, err := g.expr(e.Inner)
		if err != nil {
			return "", err
		}
		return "!(" + inner + ")", nil
	case dsl.BinExpr:
		l, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		r, err := g.expr(e.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", l, e.Op, r), nil
	case dsl.CallExpr:
		return g.callExpr(e)
	}
	return "", fmt.Errorf("codegen: unknown expression %T", e)
}

func (g *generator) ident(name string) (string, error) {
	if g.loopVars[name] {
		return name, nil
	}
	switch name {
	case "self":
		return "ctx.Self()", nil
	case "self_key":
		return "ctx.SelfKey()", nil
	case "from":
		return "ev.From", nil
	case "bootstrap":
		return "call.Bootstrap", nil
	case "payload":
		return "call.Payload", nil
	case "payload_type":
		return "call.PayloadType", nil
	case "dest":
		return "call.Dest", nil
	case "dest_ip":
		return "call.DestIP", nil
	case "group":
		return "call.Group", nil
	case "priority":
		return "call.Priority", nil
	case "failed":
		return "call.Failed", nil
	}
	if c, ok := g.consts[name]; ok {
		return c, nil
	}
	if v, ok := g.varTypes[name]; ok && v.Kind == dsl.VarPlain {
		return "a." + camel(name), nil
	}
	return "", fmt.Errorf("codegen: unknown identifier %q", name)
}

func (g *generator) callExpr(e dsl.CallExpr) (string, error) {
	switch e.Fn {
	case "field":
		id, ok := e.Args[0].(dsl.Ident)
		if !ok || g.curMsg == nil {
			return "", fmt.Errorf("codegen: field() outside a message transition")
		}
		for _, f := range g.curMsg.Fields {
			if f.Name == id.Name {
				return "m." + camel(id.Name), nil
			}
		}
		return "", fmt.Errorf("codegen: message %q has no field %q", g.curMsg.Name, id.Name)
	case "neighbor_size":
		id := e.Args[0].(dsl.Ident)
		return fmt.Sprintf("ctx.Neighbors(%q).Size()", id.Name), nil
	case "neighbor_query":
		id := e.Args[0].(dsl.Ident)
		arg, err := g.expr(e.Args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ctx.Neighbors(%q).Contains(%s)", id.Name, arg), nil
	case "neighbor_full":
		id := e.Args[0].(dsl.Ident)
		return fmt.Sprintf("ctx.Neighbors(%q).Full()", id.Name), nil
	case "neighbor_random":
		id := e.Args[0].(dsl.Ident)
		return fmt.Sprintf("nbrRandom(ctx, %q)", id.Name), nil
	case "neighbor_first":
		id := e.Args[0].(dsl.Ident)
		return fmt.Sprintf("nbrFirst(ctx, %q)", id.Name), nil
	case "hash":
		arg, err := g.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("overlay.HashAddress(%s)", arg), nil
	}
	return "", softf("unknown primitive %q", e.Fn)
}
