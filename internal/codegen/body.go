package codegen

import (
	"fmt"
	"strings"

	"macedon/internal/dsl"
)

// softError marks constructs outside the translatable subset (unknown
// primitives, extensible library calls): the statement degrades to a TODO
// comment instead of failing the whole generation, mirroring how the paper's
// translator passes unknown C fragments through.
type softError struct{ msg string }

func (e softError) Error() string { return e.msg }

func softf(format string, args ...any) error {
	return softError{msg: fmt.Sprintf(format, args...)}
}

func isSoft(err error) bool {
	_, ok := err.(softError)
	return ok
}

// stmtSummary renders a statement for the TODO comment that preserves it.
func stmtSummary(s dsl.Stmt) string {
	switch s := s.(type) {
	case *dsl.CallStmt:
		var parts []string
		for _, a := range s.Args {
			parts = append(parts, a.String())
		}
		fn := s.Fn
		if s.Msg != "" {
			fn = "send " + s.Msg
			for _, fi := range s.Fields {
				parts = append(parts, fi.Name+" = "+fi.Value.String())
			}
		}
		return fmt.Sprintf("%s(%s)", fn, strings.Join(parts, ", "))
	case *dsl.AssignStmt:
		return fmt.Sprintf("%s = %s", s.Target, s.Value)
	case *dsl.LocalStmt:
		if s.Value != nil {
			return fmt.Sprintf("%s %s = %s", s.Type, s.Name, s.Value)
		}
		return fmt.Sprintf("%s %s", s.Type, s.Name)
	case *dsl.IfStmt:
		return fmt.Sprintf("if (%s) { ... }", s.Cond)
	case *dsl.ForeachStmt:
		return fmt.Sprintf("foreach (%s in %s) { ... }", s.Var, s.List)
	case *dsl.ReturnStmt:
		return "return"
	case *dsl.OpaqueStmt:
		return s.Text
	}
	return fmt.Sprintf("%T", s)
}

// stmt translates one action-language statement at the given indent depth.
// Statements whose translation fails softly (constructs outside the subset)
// degrade to TODO comments; hard errors abort generation.
func (g *generator) stmt(s dsl.Stmt, depth int) error {
	ind := strings.Repeat("\t", depth)
	err := g.stmtInner(s, ind, depth)
	switch {
	case err == nil:
		if _, opaque := s.(*dsl.OpaqueStmt); !opaque {
			g.translated++
		}
		return nil
	case isSoft(err):
		g.opaque++
		g.pf("%s// TODO(macedon): untranslated action: %s\n", ind, stmtSummary(s))
		return nil
	default:
		return err
	}
}

func (g *generator) stmtInner(s dsl.Stmt, ind string, depth int) error {
	switch s := s.(type) {
	case *dsl.AssignStmt:
		val, err := g.expr(s.Value)
		if err != nil {
			return err
		}
		if _, local := g.locals[s.Target]; local {
			g.pf("%s%s = %s\n", ind, s.Target, val)
			return nil
		}
		v, ok := g.varTypes[s.Target]
		if !ok || v.Kind != dsl.VarPlain {
			return fmt.Errorf("codegen: %s: assignment to undeclared variable %q", s.Pos, s.Target)
		}
		g.pf("%sa.%s = %s\n", ind, camel(s.Target), val)
	case *dsl.LocalStmt:
		if !g.localTypes[s.Type] {
			return softf("local declaration of unsupported type %q at %s", s.Type, s.Pos)
		}
		if s.Value != nil {
			val, err := g.expr(s.Value)
			if err != nil {
				return err
			}
			g.pf("%svar %s %s = %s\n", ind, s.Name, goType(s.Type), val)
		} else {
			g.pf("%svar %s %s\n", ind, s.Name, goType(s.Type))
		}
		g.pf("%s_ = %s\n", ind, s.Name)
		g.locals[s.Name] = s.Type
	case *dsl.ReturnStmt:
		g.pf("%sreturn\n", ind)
	case *dsl.IfStmt:
		cond, err := g.expr(s.Cond)
		if err != nil {
			return err
		}
		g.pf("%sif %s {\n", ind, cond)
		if err := g.scopedBody(s.Then, depth+1); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			g.pf("%s} else {\n", ind)
			if err := g.scopedBody(s.Else, depth+1); err != nil {
				return err
			}
		}
		g.pf("%s}\n", ind)
	case *dsl.ForeachStmt:
		rng, err := g.rangeExpr(s.List)
		if err != nil {
			return err
		}
		g.loopVars[s.Var] = true
		g.pf("%sfor _, %s := range %s {\n", ind, s.Var, rng)
		if err := g.scopedBody(s.Body, depth+1); err != nil {
			return err
		}
		g.pf("%s}\n", ind)
		delete(g.loopVars, s.Var)
	case *dsl.CallStmt:
		return g.callStmt(s, ind)
	case *dsl.OpaqueStmt:
		g.opaque++
		g.pf("%s// TODO(macedon): untranslated action: %s\n", ind, s.Text)
	default:
		return fmt.Errorf("codegen: unknown statement %T", s)
	}
	return nil
}

// scopedBody translates a nested block, descoping the locals it declared on
// the way out — Go block scoping, so the generated code cannot reference a
// local outside the block that declared it.
func (g *generator) scopedBody(stmts []dsl.Stmt, depth int) error {
	saved := make(map[string]string, len(g.locals))
	for k, v := range g.locals {
		saved[k] = v
	}
	for _, st := range stmts {
		if err := g.stmt(st, depth); err != nil {
			return err
		}
	}
	g.locals = saved
	return nil
}

// rangeExpr resolves a foreach collection: a neighbor list, a nodeset state
// variable, a nodetable state variable, or a nodeset message field.
func (g *generator) rangeExpr(e dsl.Expr) (string, error) {
	if id, ok := e.(dsl.Ident); ok {
		if v, declared := g.varTypes[id.Name]; declared {
			switch {
			case v.Kind == dsl.VarNeighborList:
				return fmt.Sprintf("ctx.Neighbors(%q).Addrs()", id.Name), nil
			case v.Kind == dsl.VarTable:
				return "a." + camel(id.Name) + "[:]", nil
			case v.Kind == dsl.VarPlain && v.Type == "nodeset":
				return "a." + camel(id.Name), nil
			}
		}
	}
	return g.nodesetExpr(e)
}

// nodesetExpr resolves an expression that must denote a nodeset value: a
// nodeset state variable or a nodeset message field.
func (g *generator) nodesetExpr(e dsl.Expr) (string, error) {
	switch e := e.(type) {
	case dsl.Ident:
		if v, ok := g.varTypes[e.Name]; ok && v.Kind == dsl.VarPlain && v.Type == "nodeset" {
			return "a." + camel(e.Name), nil
		}
	case dsl.CallExpr:
		if e.Fn == "field" && len(e.Args) == 1 && g.curMsg != nil {
			if id, ok := e.Args[0].(dsl.Ident); ok {
				for _, f := range g.curMsg.Fields {
					if f.Name == id.Name && f.Type == "nodeset" {
						return "m." + camel(id.Name), nil
					}
				}
			}
		}
	}
	return "", softf("%s is not a nodeset collection", e)
}

// listVar resolves a statement argument that must name a nodeset state
// variable, returning the generated lvalue.
func (g *generator) listVar(s *dsl.CallStmt, i int) (string, error) {
	if i >= len(s.Args) {
		return "", softf("%s is missing its nodeset argument at %s", s.Fn, s.Pos)
	}
	id, ok := s.Args[i].(dsl.Ident)
	if !ok {
		return "", softf("%s needs a nodeset variable name at %s", s.Fn, s.Pos)
	}
	if v, declared := g.varTypes[id.Name]; !declared || v.Kind != dsl.VarPlain || v.Type != "nodeset" {
		return "", softf("%q is not a declared nodeset variable at %s", id.Name, s.Pos)
	}
	return "a." + camel(id.Name), nil
}

// tableVar resolves a statement argument that must name a nodetable.
func (g *generator) tableVar(s *dsl.CallStmt, i int) (string, error) {
	if i >= len(s.Args) {
		return "", softf("%s is missing its nodetable argument at %s", s.Fn, s.Pos)
	}
	id, ok := s.Args[i].(dsl.Ident)
	if !ok {
		return "", softf("%s needs a nodetable name at %s", s.Fn, s.Pos)
	}
	if v, declared := g.varTypes[id.Name]; !declared || v.Kind != dsl.VarTable {
		return "", softf("%q is not a declared nodetable at %s", id.Name, s.Pos)
	}
	return "a." + camel(id.Name) + "[:]", nil
}

// mapVar resolves a statement argument that must name a keymap.
func (g *generator) mapVar(fn string, args []dsl.Expr, i int, pos dsl.Pos) (string, error) {
	if i >= len(args) {
		return "", softf("%s is missing its keymap argument at %s", fn, pos)
	}
	id, ok := args[i].(dsl.Ident)
	if !ok {
		return "", softf("%s needs a keymap name at %s", fn, pos)
	}
	if v, declared := g.varTypes[id.Name]; !declared || v.Kind != dsl.VarPlain || v.Type != "keymap" {
		return "", softf("%q is not a declared keymap at %s", id.Name, pos)
	}
	return "a." + camel(id.Name), nil
}

// firstIdent returns the first argument as a bare name, if present.
func firstIdent(args []dsl.Expr) (dsl.Ident, bool) {
	if len(args) == 0 {
		return dsl.Ident{}, false
	}
	id, ok := args[0].(dsl.Ident)
	return id, ok
}

func (g *generator) callStmt(s *dsl.CallStmt, ind string) error {
	// Arguments translate lazily: several primitives take bare names
	// (states, timers, neighbor lists) that are not value expressions.
	arg := func(i int) (string, error) {
		if i >= len(s.Args) {
			return "", softf("%s is missing argument %d at %s", s.Fn, i, s.Pos)
		}
		return g.expr(s.Args[i])
	}
	switch s.Fn {
	case "send":
		m, ok := g.msgs[s.Msg]
		if !ok {
			return fmt.Errorf("codegen: %s: send of undeclared message %q", s.Pos, s.Msg)
		}
		var inits []string
		for _, fi := range s.Fields {
			found := false
			for _, f := range m.Fields {
				if f.Name == fi.Name {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("codegen: %s: message %q has no field %q", s.Pos, s.Msg, fi.Name)
			}
			v, err := g.expr(fi.Value)
			if err != nil {
				return err
			}
			inits = append(inits, fmt.Sprintf("%s: %s", camel(fi.Name), v))
		}
		dest, err := arg(0)
		if err != nil {
			return err
		}
		g.pf("%s_ = ctx.Send(%s, &%s{%s}, overlay.PriorityDefault)\n",
			ind, dest, msgTypeName(s.Msg), strings.Join(inits, ", "))
	case "state_change":
		st, ok := firstIdent(s.Args)
		if !ok {
			return fmt.Errorf("codegen: %s: state_change needs a state name", s.Pos)
		}
		g.pf("%sctx.StateChange(%q)\n", ind, st.Name)
	case "timer_sched", "timer_resched":
		t, ok := firstIdent(s.Args)
		if !ok {
			return fmt.Errorf("codegen: %s: %s needs a timer name", s.Pos, s.Fn)
		}
		period := "0"
		if len(s.Args) > 1 {
			p1, err := arg(1)
			if err != nil {
				return err
			}
			period = p1 + "*time.Millisecond"
		}
		fn := "TimerSched"
		if s.Fn == "timer_resched" {
			fn = "TimerResched"
		}
		g.pf("%sctx.%s(%q, %s)\n", ind, fn, t.Name, period)
	case "timer_cancel":
		t, ok := firstIdent(s.Args)
		if !ok {
			return fmt.Errorf("codegen: %s: timer_cancel needs a timer name", s.Pos)
		}
		g.pf("%sctx.TimerCancel(%q)\n", ind, t.Name)
	case "neighbor_add":
		l, err := g.listArg(s, 0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		g.pf("%sctx.Neighbors(%q).Add(%s)\n", ind, l, a1)
	case "neighbor_remove":
		l, err := g.listArg(s, 0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		g.pf("%sctx.Neighbors(%q).Remove(%s)\n", ind, l, a1)
	case "neighbor_clear":
		l, err := g.listArg(s, 0)
		if err != nil {
			return err
		}
		g.pf("%sctx.Neighbors(%q).Clear()\n", ind, l)
	case "neighbor_sync":
		l, err := g.listArg(s, 0)
		if err != nil {
			return err
		}
		set, err := g.listVar(s, 1)
		if err != nil {
			return err
		}
		g.need("nbrSync")
		g.pf("%snbrSync(ctx, %q, ctx.Self(), %s)\n", ind, l, set)
	case "list_append", "list_prepend", "list_remove":
		l, err := g.listVar(s, 0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		helper := map[string]string{
			"list_append": "listAppend", "list_prepend": "listPrepend", "list_remove": "listRemove",
		}[s.Fn]
		g.need(helper)
		g.pf("%s%s = %s(%s, %s)\n", ind, l, helper, l, a1)
	case "list_clear":
		l, err := g.listVar(s, 0)
		if err != nil {
			return err
		}
		g.pf("%s%s = nil\n", ind, l)
	case "list_trunc":
		l, err := g.listVar(s, 0)
		if err != nil {
			return err
		}
		n, err := arg(1)
		if err != nil {
			return err
		}
		g.need("listTrunc")
		g.pf("%s%s = listTrunc(%s, %s)\n", ind, l, l, n)
	case "ring_insert":
		l, err := g.listVar(s, 0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		half, err := arg(2)
		if err != nil {
			return err
		}
		g.need("ringInsert")
		g.pf("%s%s = ringInsert(ctx.SelfKey(), ctx.Self(), %s, %s, %s)\n", ind, l, l, a1, half)
	case "table_put":
		t, err := g.tableVar(s, 0)
		if err != nil {
			return err
		}
		idx, err := arg(1)
		if err != nil {
			return err
		}
		val, err := arg(2)
		if err != nil {
			return err
		}
		g.need("tablePut")
		g.pf("%stablePut(%s, %s, %s)\n", ind, t, idx, val)
	case "table_remove":
		t, err := g.tableVar(s, 0)
		if err != nil {
			return err
		}
		val, err := arg(1)
		if err != nil {
			return err
		}
		g.need("tableRemove")
		g.pf("%stableRemove(%s, %s)\n", ind, t, val)
	case "table_clear":
		t, err := g.tableVar(s, 0)
		if err != nil {
			return err
		}
		g.need("tableClear")
		g.pf("%stableClear(%s)\n", ind, t)
	case "map_put":
		m, err := g.mapVar(s.Fn, s.Args, 0, s.Pos)
		if err != nil {
			return err
		}
		k, err := arg(1)
		if err != nil {
			return err
		}
		v, err := arg(2)
		if err != nil {
			return err
		}
		g.pf("%s%s[%s] = %s\n", ind, m, k, v)
	case "map_del":
		m, err := g.mapVar(s.Fn, s.Args, 0, s.Pos)
		if err != nil {
			return err
		}
		k, err := arg(1)
		if err != nil {
			return err
		}
		g.pf("%sdelete(%s, %s)\n", ind, m, k)
	case "map_remove_value":
		m, err := g.mapVar(s.Fn, s.Args, 0, s.Pos)
		if err != nil {
			return err
		}
		v, err := arg(1)
		if err != nil {
			return err
		}
		g.need("mapRemoveValue")
		g.pf("%smapRemoveValue(%s, %s)\n", ind, m, v)
	case "deliver":
		a0, err := arg(0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		a2, err := arg(2)
		if err != nil {
			return err
		}
		g.pf("%sctx.Deliver(%s, %s, %s)\n", ind, a0, a1, a2)
	case "forward_upcall":
		// forward_upcall(payload, typ, next): run the engine's forward()
		// upcall for a payload about to travel on toward next (§2.2 — the
		// application or layer above observes every intermediate hop and may
		// quash it, ending the transition). Rewrites of the next hop or
		// payload by the upper handler are not honored by generated code.
		a0, err := arg(0)
		if err != nil {
			return err
		}
		a1, err := arg(1)
		if err != nil {
			return err
		}
		a2, err := arg(2)
		if err != nil {
			return err
		}
		g.pf("%sif fwOk, _, _ := ctx.Forward(%s, %s, %s, overlay.HashAddress(%s)); !fwOk {\n", ind, a0, a1, a2, a2)
		g.pf("%s\treturn\n", ind)
		g.pf("%s}\n", ind)
	case "notify":
		kind, ok := firstIdent(s.Args)
		if !ok {
			return softf("notify needs a neighbor kind at %s", s.Pos)
		}
		l, err := g.listArg(s, 1)
		if err != nil {
			return err
		}
		g.pf("%sctx.NotifyNeighbors(overlay.NbrType%s, ctx.Neighbors(%q).Addrs())\n",
			ind, camel(kind.Name), l)
	case "quash":
		g.pf("%sev.Quash = true\n", ind)
	case "upcall_ext":
		a0, err := arg(0)
		if err != nil {
			return err
		}
		g.pf("%sctx.UpcallExt(int(%s), nil)\n", ind, a0)
	default:
		return softf("unknown primitive statement %q at %s", s.Fn, s.Pos)
	}
	return nil
}

func (g *generator) listArg(s *dsl.CallStmt, i int) (string, error) {
	if i >= len(s.Args) {
		return "", softf("%s is missing its neighbor list argument at %s", s.Fn, s.Pos)
	}
	id, ok := s.Args[i].(dsl.Ident)
	if !ok {
		return "", softf("%s needs a neighbor list name at %s", s.Fn, s.Pos)
	}
	if v, declared := g.varTypes[id.Name]; !declared || v.Kind != dsl.VarNeighborList {
		return "", softf("%q is not a declared neighbor list at %s", id.Name, s.Pos)
	}
	return id.Name, nil
}

// expr translates an action-language expression.
func (g *generator) expr(e dsl.Expr) (string, error) {
	switch e := e.(type) {
	case dsl.IntLit:
		return e.Value, nil
	case dsl.Ident:
		return g.ident(e.Name)
	case dsl.NotExpr:
		inner, err := g.expr(e.Inner)
		if err != nil {
			return "", err
		}
		return "!(" + inner + ")", nil
	case dsl.BinExpr:
		l, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		r, err := g.expr(e.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", l, e.Op, r), nil
	case dsl.CallExpr:
		return g.callExpr(e)
	}
	return "", fmt.Errorf("codegen: unknown expression %T", e)
}

func (g *generator) ident(name string) (string, error) {
	if g.loopVars[name] {
		return name, nil
	}
	if _, ok := g.locals[name]; ok {
		return name, nil
	}
	switch name {
	case "self":
		return "ctx.Self()", nil
	case "self_key":
		return "ctx.SelfKey()", nil
	case "nil_node":
		return "overlay.NilAddress", nil
	case "from":
		return "ev.From", nil
	case "bootstrap":
		return "call.Bootstrap", nil
	case "payload":
		return "call.Payload", nil
	case "payload_type":
		return "call.PayloadType", nil
	case "dest":
		return "call.Dest", nil
	case "dest_ip":
		return "call.DestIP", nil
	case "group":
		return "call.Group", nil
	case "priority":
		return "call.Priority", nil
	case "failed":
		return "call.Failed", nil
	}
	if c, ok := g.consts[name]; ok {
		return c, nil
	}
	if v, ok := g.varTypes[name]; ok && v.Kind == dsl.VarPlain {
		return "a." + camel(name), nil
	}
	return "", fmt.Errorf("codegen: unknown identifier %q", name)
}

// exprArg fetches and translates the i-th argument of a value primitive.
func (g *generator) exprArg(e dsl.CallExpr, i int) (string, error) {
	if i >= len(e.Args) {
		return "", softf("%s is missing argument %d", e.Fn, i)
	}
	return g.expr(e.Args[i])
}

// identArg fetches the i-th argument of a value primitive as a bare name.
func identArg(e dsl.CallExpr, i int) (dsl.Ident, error) {
	if i >= len(e.Args) {
		return dsl.Ident{}, softf("%s is missing argument %d", e.Fn, i)
	}
	id, ok := e.Args[i].(dsl.Ident)
	if !ok {
		return dsl.Ident{}, softf("%s argument %d must be a name", e.Fn, i)
	}
	return id, nil
}

func (g *generator) callExpr(e dsl.CallExpr) (string, error) {
	if len(e.Args) == 0 {
		// Every value primitive takes at least one argument; a bare call is
		// outside the subset and degrades like any unknown construct.
		return "", softf("%s() without arguments", e.Fn)
	}
	switch e.Fn {
	case "field":
		id, ok := e.Args[0].(dsl.Ident)
		if !ok || g.curMsg == nil {
			return "", fmt.Errorf("codegen: field() outside a message transition")
		}
		for _, f := range g.curMsg.Fields {
			if f.Name == id.Name {
				return "m." + camel(id.Name), nil
			}
		}
		return "", fmt.Errorf("codegen: message %q has no field %q", g.curMsg.Name, id.Name)
	case "neighbor_size":
		id, err := identArg(e, 0)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ctx.Neighbors(%q).Size()", id.Name), nil
	case "neighbor_query":
		id, err := identArg(e, 0)
		if err != nil {
			return "", err
		}
		arg, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ctx.Neighbors(%q).Contains(%s)", id.Name, arg), nil
	case "neighbor_full":
		id, err := identArg(e, 0)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("ctx.Neighbors(%q).Full()", id.Name), nil
	case "neighbor_random":
		id, err := identArg(e, 0)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("nbrRandom(ctx, %q)", id.Name), nil
	case "neighbor_first":
		id, err := identArg(e, 0)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("nbrFirst(ctx, %q)", id.Name), nil
	case "hash":
		arg, err := g.exprArg(e, 0)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("overlay.HashAddress(%s)", arg), nil
	case "key_step":
		k, err := g.exprArg(e, 0)
		if err != nil {
			return "", err
		}
		i, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("overlay.KeyStep(%s, int(%s))", k, i), nil
	case "between", "between_incl":
		k, err := g.exprArg(e, 0)
		if err != nil {
			return "", err
		}
		a, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		b, err := g.exprArg(e, 2)
		if err != nil {
			return "", err
		}
		method := "Between"
		if e.Fn == "between_incl" {
			method = "BetweenIncl"
		}
		return fmt.Sprintf("(%s).%s(%s, %s)", k, method, a, b), nil
	case "ring_dist":
		a, err := g.exprArg(e, 0)
		if err != nil {
			return "", err
		}
		b, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s).Distance(%s)", a, b), nil
	case "ring_diff":
		a, err := g.exprArg(e, 0)
		if err != nil {
			return "", err
		}
		b, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("overlay.RingDiff(%s, %s)", a, b), nil
	case "shared_prefix":
		a, err := g.exprArg(e, 0)
		if err != nil {
			return "", err
		}
		b, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		bits, err := g.exprArg(e, 2)
		if err != nil {
			return "", err
		}
		g.need("keyPrefix")
		return fmt.Sprintf("keyPrefix(%s, %s, %s)", a, b, bits), nil
	case "digit":
		k, err := g.exprArg(e, 0)
		if err != nil {
			return "", err
		}
		i, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		bits, err := g.exprArg(e, 2)
		if err != nil {
			return "", err
		}
		g.need("keyDigit")
		return fmt.Sprintf("keyDigit(%s, %s, %s)", k, i, bits), nil
	case "list_size":
		s, err := g.nodesetExpr(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("int32(len(%s))", s), nil
	case "list_get":
		s, err := g.nodesetExpr(e.Args[0])
		if err != nil {
			return "", err
		}
		i, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		g.need("listGet")
		return fmt.Sprintf("listGet(%s, %s)", s, i), nil
	case "list_contains":
		s, err := g.nodesetExpr(e.Args[0])
		if err != nil {
			return "", err
		}
		v, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		g.need("listContains")
		return fmt.Sprintf("listContains(%s, %s)", s, v), nil
	case "list_random":
		s, err := g.nodesetExpr(e.Args[0])
		if err != nil {
			return "", err
		}
		g.need("listRandom")
		return fmt.Sprintf("listRandom(ctx, %s)", s), nil
	case "table_get":
		id, err := identArg(e, 0)
		if err != nil {
			return "", err
		}
		if v, declared := g.varTypes[id.Name]; !declared || v.Kind != dsl.VarTable {
			return "", softf("%q is not a declared nodetable", id.Name)
		}
		i, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		g.need("tableGet")
		return fmt.Sprintf("tableGet(a.%s[:], %s)", camel(id.Name), i), nil
	case "map_get":
		m, err := g.mapVar(e.Fn, e.Args, 0, dsl.Pos{})
		if err != nil {
			return "", err
		}
		k, err := g.exprArg(e, 1)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[%s]", m, k), nil
	}
	return "", softf("unknown primitive %q", e.Fn)
}
