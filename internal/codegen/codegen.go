// Package codegen translates parsed MACEDON specifications into Go agents
// for the engine — the role §3.2 of the paper assigns the MACEDON
// translator (which emitted C++). Message declarations become typed structs
// with binary codecs against internal/overlay, the STATE AND DATA sections
// become core.Def registrations plus Agent struct fields (scalars, nodeset
// slices, fixed-size nodetable arrays, keymap maps), and transition bodies
// written in the documented action-language subset (§3.3's primitives,
// ring-interval and prefix key arithmetic, bounded collection insertion)
// are translated statement by statement against core.Context and a small
// set of runtime helpers emitted only when referenced.
//
// Statements outside the subset degrade softly: they are preserved as
// "TODO(macedon)" comments, exactly as a human would port remaining C
// fragments, and counted in Result.Opaque alongside Result.Translated so
// `macedon gen` and the CI gen-coverage job can report per-spec coverage.
// The chord, pastry, and randtree specifications translate TODO-free; the
// committed outputs under internal/overlays/gen* are kept in sync by tests
// and gated by routing-oracle conformance tests under churn. The pipeline
// walkthrough is docs/codegen.md; the language reference is
// docs/maclang.md.
package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"macedon/internal/dsl"
)

// Result carries the generated source plus translation statistics: the
// per-spec coverage numbers `macedon gen` reports and the CI coverage job
// publishes.
type Result struct {
	Source      string
	Package     string
	Translated  int // statements translated into Go
	Opaque      int // statements preserved as TODO comments
	Transitions int
}

// Generate emits a Go package implementing core.Agent from a specification.
func Generate(spec *dsl.Spec, pkg string) (*Result, error) {
	g := &generator{
		spec:     spec,
		pkg:      pkg,
		consts:   map[string]string{},
		helpers:  map[string]bool{},
		varTypes: map[string]dsl.StateVar{},
		msgs:     map[string]dsl.Message{},
		// Locals are value-typed only: the collection primitives resolve
		// nodeset/nodetable/keymap operands through declared state
		// variables, so a collection-typed local would be undrivable —
		// rejecting the declaration makes it degrade to a visible TODO
		// instead of silently dropping every statement that touches it.
		localTypes: map[string]bool{
			"int": true, "double": true, "bool": true, "key": true,
			"macedon_key": true, "node": true, "buffer": true,
			"string": true,
		},
	}
	for _, c := range spec.Constants {
		g.consts[c.Name] = c.Value
	}
	for _, v := range spec.StateVars {
		g.varTypes[v.Name] = v
	}
	for _, m := range spec.Messages {
		g.msgs[m.Name] = m
	}
	src, err := g.file()
	if err != nil {
		return nil, err
	}
	return &Result{Source: src, Package: pkg, Translated: g.translated,
		Opaque: g.opaque, Transitions: len(spec.Transitions)}, nil
}

type generator struct {
	spec       *dsl.Spec
	pkg        string
	b          strings.Builder
	consts     map[string]string
	opaque     int
	translated int
	helpers    map[string]bool // runtime helpers referenced by translated code

	varTypes map[string]dsl.StateVar
	msgs     map[string]dsl.Message

	// Per-handler context.
	curMsg   *dsl.Message
	curKind  dsl.TransitionKind
	loopVars map[string]bool
	locals   map[string]string // handler-scoped locals: name → mac type

	localTypes map[string]bool
}

// need marks a runtime helper for emission at the end of the file.
func (g *generator) need(helper string) { g.helpers[helper] = true }

func init() { _ = strconv.Itoa } // strconv used in literal handling below

func (g *generator) pf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

// camel converts mac snake_case to exported Go CamelCase.
func camel(s string) string {
	parts := strings.Split(s, "_")
	var out strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		out.WriteString(strings.ToUpper(p[:1]))
		out.WriteString(p[1:])
	}
	return out.String()
}

// goType maps mac field types onto Go types.
func goType(t string) string {
	switch t {
	case "int":
		return "int32"
	case "double":
		return "float64"
	case "bool":
		return "bool"
	case "key", "macedon_key":
		return "overlay.Key"
	case "node":
		return "overlay.Address"
	case "buffer":
		return "[]byte"
	case "string":
		return "string"
	case "nodeset":
		return "[]overlay.Address"
	case "keyset":
		return "[]overlay.Key"
	case "keymap":
		return "map[overlay.Key]overlay.Address"
	}
	return "int32"
}

func encodeCall(f dsl.Field) string {
	n := camel(f.Name)
	switch f.Type {
	case "int":
		return fmt.Sprintf("w.I32(m.%s)", n)
	case "double":
		return fmt.Sprintf("w.F64(m.%s)", n)
	case "bool":
		return fmt.Sprintf("w.Bool(m.%s)", n)
	case "key", "macedon_key":
		return fmt.Sprintf("w.Key(m.%s)", n)
	case "node":
		return fmt.Sprintf("w.Addr(m.%s)", n)
	case "buffer":
		return fmt.Sprintf("w.Bytes32(m.%s)", n)
	case "string":
		return fmt.Sprintf("w.String16(m.%s)", n)
	case "nodeset":
		return fmt.Sprintf("w.Addrs(m.%s)", n)
	case "keyset":
		return fmt.Sprintf("w.Keys(m.%s)", n)
	}
	return fmt.Sprintf("w.I32(m.%s)", n)
}

func decodeCall(f dsl.Field) string {
	n := camel(f.Name)
	switch f.Type {
	case "int":
		return fmt.Sprintf("m.%s = r.I32()", n)
	case "double":
		return fmt.Sprintf("m.%s = r.F64()", n)
	case "bool":
		return fmt.Sprintf("m.%s = r.Bool()", n)
	case "key", "macedon_key":
		return fmt.Sprintf("m.%s = r.Key()", n)
	case "node":
		return fmt.Sprintf("m.%s = r.Addr()", n)
	case "buffer":
		return fmt.Sprintf("m.%s = append([]byte(nil), r.Bytes32()...)", n)
	case "string":
		return fmt.Sprintf("m.%s = r.String16()", n)
	case "nodeset":
		return fmt.Sprintf("m.%s = r.Addrs()", n)
	case "keyset":
		return fmt.Sprintf("m.%s = r.Keys()", n)
	}
	return fmt.Sprintf("m.%s = r.I32()", n)
}

// resolve substitutes constants.
func (g *generator) resolve(v string) string {
	if rep, ok := g.consts[v]; ok {
		return rep
	}
	return v
}

func msgTypeName(name string) string { return "msg" + camel(name) }

func (g *generator) file() (string, error) {
	s := g.spec
	g.pf("// Code generated by \"macedon gen\" from specs/%s.mac. DO NOT EDIT.\n", s.Name)
	g.pf("\n// Package %s is the generated MACEDON agent for protocol %q.\n", g.pkg, s.Name)
	g.pf("package %s\n\n", g.pkg)
	g.pf("import (\n\t\"time\"\n\n\t\"macedon/internal/core\"\n\t\"macedon/internal/overlay\"\n)\n\n")
	g.pf("var _ = time.Millisecond\n\n")

	// Message structs + codecs.
	for _, m := range s.Messages {
		tn := msgTypeName(m.Name)
		g.pf("type %s struct {\n", tn)
		for _, f := range m.Fields {
			g.pf("\t%s %s\n", camel(f.Name), goType(f.Type))
		}
		g.pf("}\n\n")
		g.pf("func (m *%s) MsgName() string { return %q }\n\n", tn, m.Name)
		g.pf("func (m *%s) Encode(w *overlay.Writer) {\n", tn)
		for _, f := range m.Fields {
			g.pf("\t%s\n", encodeCall(f))
		}
		g.pf("}\n\n")
		g.pf("func (m *%s) Decode(r *overlay.Reader) error {\n", tn)
		for _, f := range m.Fields {
			g.pf("\t%s\n", decodeCall(f))
		}
		g.pf("\treturn r.Err()\n}\n\n")
	}

	// Agent struct with plain state variables, node tables, and keymaps.
	var keymaps []string
	g.pf("// Agent is the generated protocol instance.\ntype Agent struct {\n")
	for _, v := range s.StateVars {
		switch v.Kind {
		case dsl.VarPlain:
			g.pf("\t%s %s\n", camel(v.Name), goType(v.Type))
			if v.Type == "keymap" {
				keymaps = append(keymaps, camel(v.Name))
			}
		case dsl.VarTable:
			g.pf("\t%s [%s]overlay.Address\n", camel(v.Name), g.resolve(v.Max))
		}
	}
	g.pf("}\n\n")
	g.pf("// New returns a factory for generated %s agents.\n", s.Name)
	if len(keymaps) == 0 {
		g.pf("func New() core.Factory {\n\treturn func() core.Agent { return &Agent{} }\n}\n\n")
	} else {
		g.pf("func New() core.Factory {\n\treturn func() core.Agent {\n\t\ta := &Agent{}\n")
		for _, km := range keymaps {
			g.pf("\t\ta.%s = make(map[overlay.Key]overlay.Address)\n", km)
		}
		g.pf("\t\treturn a\n\t}\n}\n\n")
	}
	g.pf("// ProtocolName implements the engine's naming hook.\n")
	g.pf("func (a *Agent) ProtocolName() string { return %q }\n\n", s.Name)

	// Define.
	g.pf("// Define declares the generated FSM.\nfunc (a *Agent) Define(d *core.Def) {\n")
	if len(s.States) > 0 {
		var qs []string
		for _, st := range s.States {
			qs = append(qs, fmt.Sprintf("%q", st))
		}
		g.pf("\td.States(%s)\n", strings.Join(qs, ", "))
	}
	if s.Addressing == "ip" {
		g.pf("\td.Addressing(core.IPAddressing)\n")
	} else {
		g.pf("\td.Addressing(core.HashAddressing)\n")
	}
	if s.Trace != "off" {
		g.pf("\td.Trace(core.Trace%s)\n", camel(s.Trace))
	}
	for _, tr := range s.Transports {
		switch tr.Kind {
		case "TCP":
			g.pf("\td.TCPTransport(%q)\n", tr.Name)
		case "UDP":
			g.pf("\td.UDPTransport(%q)\n", tr.Name)
		case "SWP":
			g.pf("\td.SWPTransport(%q, 0)\n", tr.Name)
		}
	}
	for _, m := range s.Messages {
		g.pf("\td.Message(%q, func() overlay.Message { return &%s{} }, %q)\n",
			m.Name, msgTypeName(m.Name), m.Transport)
	}
	for _, v := range s.StateVars {
		switch v.Kind {
		case dsl.VarTimer:
			period := "0"
			if v.Period != "" {
				period = g.resolve(v.Period) + "*time.Millisecond"
			}
			if v.Periodic {
				g.pf("\td.PeriodicTimer(%q, %s)\n", v.Name, period)
			} else {
				g.pf("\td.Timer(%q, %s)\n", v.Name, period)
			}
		case dsl.VarNeighborList:
			max := g.listMax(v)
			g.pf("\td.NeighborList(%q, %s, %v)\n", v.Name, max, v.FailDetect)
		}
	}
	for i, tr := range s.Transitions {
		guard := guardGo(tr.Guard)
		lock := "core.Write"
		if tr.Locking == "read" {
			lock = "core.Read"
		}
		h := fmt.Sprintf("a.transition%d", i)
		switch tr.Kind {
		case dsl.TransAPI:
			g.pf("\td.OnAPI(overlay.API%s, %s, %s, %s)\n", apiConst(tr.Name), guard, lock, h)
		case dsl.TransTimer:
			g.pf("\td.OnTimer(%q, %s, %s, %s)\n", tr.Name, guard, lock, h)
		case dsl.TransRecv:
			g.pf("\td.OnRecv(%q, %s, %s, %s)\n", tr.Name, guard, lock, h)
		case dsl.TransForward:
			g.pf("\td.OnForward(%q, %s, %s, %s)\n", tr.Name, guard, lock, h)
		}
	}
	g.pf("}\n\n")

	// Handlers.
	for i, tr := range s.Transitions {
		if err := g.handler(i, tr); err != nil {
			return "", err
		}
	}

	// Helpers. nbrRandom and nbrFirst are emitted unconditionally (the
	// original subset always carried them); the collection and key-space
	// helpers appear only when the spec's translation referenced them, in a
	// fixed order so regeneration is reproducible.
	g.pf(`func nbrRandom(ctx *core.Context, list string) overlay.Address {
	if n := ctx.Neighbors(list).Random(ctx.Rand()); n != nil {
		return n.Addr
	}
	return overlay.NilAddress
}

func nbrFirst(ctx *core.Context, list string) overlay.Address {
	if n := ctx.Neighbors(list).First(); n != nil {
		return n.Addr
	}
	return overlay.NilAddress
}
`)
	if g.helpers["ringInsert"] {
		g.need("listContains")
	}
	for _, h := range helperOrder {
		if g.helpers[h.name] {
			g.pf("\n%s", h.source)
		}
	}
	return g.b.String(), nil
}

// helperOrder fixes the emission order of the conditional runtime helpers.
var helperOrder = []struct {
	name   string
	source string
}{
	{"nbrSync", `// nbrSync replaces a neighbor list's members with a nodeset's, skipping
// nil and self (the failure detector monitors peers, not the local node).
func nbrSync(ctx *core.Context, list string, self overlay.Address, s []overlay.Address) {
	l := ctx.Neighbors(list)
	l.Clear()
	for _, a := range s {
		if a != overlay.NilAddress && a != self {
			l.Add(a)
		}
	}
}
`},
	{"listAppend", `// listAppend appends a to the list unless already present (or nil).
func listAppend(s []overlay.Address, a overlay.Address) []overlay.Address {
	if a == overlay.NilAddress {
		return s
	}
	for _, x := range s {
		if x == a {
			return s
		}
	}
	out := make([]overlay.Address, 0, len(s)+1)
	out = append(out, s...)
	return append(out, a)
}
`},
	{"listPrepend", `// listPrepend moves or inserts a at the front of the list.
func listPrepend(s []overlay.Address, a overlay.Address) []overlay.Address {
	if a == overlay.NilAddress {
		return s
	}
	out := make([]overlay.Address, 0, len(s)+1)
	out = append(out, a)
	for _, x := range s {
		if x != a {
			out = append(out, x)
		}
	}
	return out
}
`},
	{"listRemove", `// listRemove deletes every occurrence of a.
func listRemove(s []overlay.Address, a overlay.Address) []overlay.Address {
	out := make([]overlay.Address, 0, len(s))
	for _, x := range s {
		if x != a {
			out = append(out, x)
		}
	}
	return out
}
`},
	{"listTrunc", `// listTrunc bounds the list to its first n entries.
func listTrunc(s []overlay.Address, n int32) []overlay.Address {
	if n < 0 {
		n = 0
	}
	if int32(len(s)) > n {
		return s[:n]
	}
	return s
}
`},
	{"listGet", `// listGet returns the i-th entry, or NilAddress out of range.
func listGet(s []overlay.Address, i int32) overlay.Address {
	if i < 0 || int(i) >= len(s) {
		return overlay.NilAddress
	}
	return s[i]
}
`},
	{"listRandom", `// listRandom picks a uniformly random entry with the node's seeded
// source, or NilAddress when the list is empty.
func listRandom(ctx *core.Context, s []overlay.Address) overlay.Address {
	if len(s) == 0 {
		return overlay.NilAddress
	}
	return s[ctx.Rand().Intn(len(s))]
}
`},
	{"listContains", `// listContains reports whether a is in the list.
func listContains(s []overlay.Address, a overlay.Address) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}
`},
	{"ringInsert", `// ringInsert is the bounded leaf-set insertion: the result keeps the half
// closest clockwise and half closest counter-clockwise peers of self,
// clockwise side first, each side ordered by ring distance.
func ringInsert(selfKey overlay.Key, self overlay.Address, s []overlay.Address, a overlay.Address, half int32) []overlay.Address {
	if a == overlay.NilAddress || a == self || listContains(s, a) {
		return s
	}
	var cw, ccw []overlay.Address
	for _, x := range append(append([]overlay.Address(nil), s...), a) {
		xk := overlay.HashAddress(x)
		if selfKey.Distance(xk) <= xk.Distance(selfKey) {
			cw = ringSide(cw, x, func(k overlay.Key) uint32 { return selfKey.Distance(k) }, half)
		} else {
			ccw = ringSide(ccw, x, func(k overlay.Key) uint32 { return k.Distance(selfKey) }, half)
		}
	}
	return append(cw, ccw...)
}

// ringSide insertion-sorts a into one leaf-set side and bounds its size.
func ringSide(side []overlay.Address, a overlay.Address, dist func(overlay.Key) uint32, max int32) []overlay.Address {
	side = append(side, a)
	for i := len(side) - 1; i > 0; i-- {
		if dist(overlay.HashAddress(side[i])) < dist(overlay.HashAddress(side[i-1])) {
			side[i], side[i-1] = side[i-1], side[i]
		}
	}
	if int32(len(side)) > max {
		side = side[:max]
	}
	return side
}
`},
	{"tablePut", `// tablePut stores a at index i, ignoring out-of-range indices.
func tablePut(t []overlay.Address, i int32, a overlay.Address) {
	if i >= 0 && int(i) < len(t) {
		t[i] = a
	}
}
`},
	{"tableGet", `// tableGet returns the entry at index i, or NilAddress out of range.
func tableGet(t []overlay.Address, i int32) overlay.Address {
	if i < 0 || int(i) >= len(t) {
		return overlay.NilAddress
	}
	return t[i]
}
`},
	{"tableRemove", `// tableRemove clears every table slot holding a.
func tableRemove(t []overlay.Address, a overlay.Address) {
	for i, x := range t {
		if x == a {
			t[i] = overlay.NilAddress
		}
	}
}
`},
	{"tableClear", `// tableClear empties every table slot.
func tableClear(t []overlay.Address) {
	for i := range t {
		t[i] = overlay.NilAddress
	}
}
`},
	{"mapRemoveValue", `// mapRemoveValue deletes every entry whose value is a.
func mapRemoveValue(m map[overlay.Key]overlay.Address, a overlay.Address) {
	for k, v := range m {
		if v == a {
			delete(m, k)
		}
	}
}
`},
	{"keyPrefix", `// keyPrefix counts the leading base-2^bits digits two keys share.
func keyPrefix(a, b overlay.Key, bits int32) int32 {
	return int32(a.SharedPrefix(b, int(bits)))
}
`},
	{"keyDigit", `// keyDigit extracts the i-th base-2^bits digit of a key.
func keyDigit(k overlay.Key, i, bits int32) int32 {
	return int32(k.Digit(int(i), int(bits)))
}
`},
}

func (g *generator) listMax(v dsl.StateVar) string {
	if v.Max != "" {
		return g.resolve(v.Max)
	}
	// Fall back to the neighbor type's declared max.
	for _, nt := range g.spec.NeighborTypes {
		if nt.Name == v.Type && nt.Max != "" {
			return g.resolve(nt.Max)
		}
	}
	return "1"
}

func guardGo(gd dsl.StateGuard) string {
	switch gd := gd.(type) {
	case dsl.GuardAny:
		return "core.Any"
	case dsl.GuardStates:
		var qs []string
		for _, s := range gd.States {
			qs = append(qs, fmt.Sprintf("%q", s))
		}
		return fmt.Sprintf("core.In(%s)", strings.Join(qs, ", "))
	case dsl.GuardNot:
		return fmt.Sprintf("core.Not(%s)", guardGo(gd.Inner))
	}
	return "core.Any"
}

func apiConst(name string) string {
	switch name {
	case "init":
		return "Init"
	case "route":
		return "Route"
	case "routeIP":
		return "RouteIP"
	case "multicast":
		return "Multicast"
	case "anycast":
		return "Anycast"
	case "collect":
		return "Collect"
	case "create_group":
		return "CreateGroup"
	case "join":
		return "Join"
	case "leave":
		return "Leave"
	case "error":
		return "Error"
	case "notify":
		return "Notify"
	case "upcall_ext":
		return "UpcallExt"
	case "downcall_ext":
		return "DowncallExt"
	}
	return camel(name)
}

func (g *generator) handler(i int, tr dsl.Transition) error {
	g.curKind = tr.Kind
	g.curMsg = nil
	g.loopVars = map[string]bool{}
	g.locals = map[string]string{}
	g.pf("// transition%d implements: %s %s %s [locking %s;]\n", i, tr.Guard, tr.Kind, tr.Name, tr.Locking)
	switch tr.Kind {
	case dsl.TransAPI:
		g.pf("func (a *Agent) transition%d(ctx *core.Context, call *core.APICall) {\n\t_ = call\n", i)
	case dsl.TransTimer:
		g.pf("func (a *Agent) transition%d(ctx *core.Context) {\n", i)
	case dsl.TransRecv, dsl.TransForward:
		m := g.msgs[tr.Name]
		g.curMsg = &m
		g.pf("func (a *Agent) transition%d(ctx *core.Context, ev *core.MsgEvent) {\n", i)
		g.pf("\tm := ev.Msg.(*%s)\n\t_ = m\n", msgTypeName(tr.Name))
	}
	for _, st := range tr.Body {
		if err := g.stmt(st, 1); err != nil {
			return err
		}
	}
	g.pf("}\n\n")
	return nil
}
