package codegen

import (
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macedon/internal/dsl"
	"macedon/internal/repo"
)

func TestCamel(t *testing.T) {
	cases := map[string]string{
		"accept": "Accept", "payload_type": "PayloadType", "x": "X",
		"probe_requester": "ProbeRequester",
	}
	for in, want := range cases {
		if got := camel(in); got != want {
			t.Errorf("camel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGoTypes(t *testing.T) {
	cases := map[string]string{
		"int": "int32", "double": "float64", "key": "overlay.Key",
		"node": "overlay.Address", "buffer": "[]byte", "nodeset": "[]overlay.Address",
	}
	for in, want := range cases {
		if got := goType(in); got != want {
			t.Errorf("goType(%q) = %q, want %q", in, got, want)
		}
	}
}

func loadSpec(t *testing.T, name string) *dsl.Spec {
	t.Helper()
	src, err := os.ReadFile(repo.Path("specs", name))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dsl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestGeneratedSourcesParse generates Go from every bundled spec and
// verifies the output is syntactically valid Go.
func TestGeneratedSourcesParse(t *testing.T) {
	paths, err := repo.Specs()
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs: %v", err)
	}
	for _, path := range paths {
		name := filepath.Base(path)
		spec := loadSpec(t, name)
		res, err := Generate(spec, "gen"+spec.Name)
		if err != nil {
			t.Errorf("%s: generate: %v", name, err)
			continue
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, name+".go", res.Source, 0); err != nil {
			t.Errorf("%s: generated source does not parse: %v", name, err)
		}
		if res.Transitions == 0 {
			t.Errorf("%s: no transitions generated", name)
		}
	}
}

// fullyTranslated is the set of specs that must generate with zero TODO
// fallbacks — the CI gen-coverage job's regression floor.
var fullyTranslated = []struct {
	spec, pkg string
}{
	{"randtree.mac", "genrandtree"},
	{"chord.mac", "genchord"},
	{"pastry.mac", "genpastry"},
}

// TestFullyTranslatedSpecs proves the action-language subset covers the
// whole RandTree, Chord, and Pastry specifications: zero TODO fallbacks,
// and a positive Translated count surfaced through the Result.
func TestFullyTranslatedSpecs(t *testing.T) {
	for _, c := range fullyTranslated {
		spec := loadSpec(t, c.spec)
		res, err := Generate(spec, c.pkg)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if res.Opaque != 0 {
			t.Errorf("%s left %d untranslated statements", c.spec, res.Opaque)
		}
		if strings.Contains(res.Source, "TODO(macedon)") {
			t.Errorf("%s output contains TODO fallbacks", c.spec)
		}
		if res.Translated == 0 {
			t.Errorf("%s reports zero translated statements", c.spec)
		}
	}
}

// TestCommittedGeneratedSourcesInSync regenerates every committed generated
// package and diffs it against the tree, so the generator and its outputs
// can never drift apart.
func TestCommittedGeneratedSourcesInSync(t *testing.T) {
	for _, c := range fullyTranslated {
		spec := loadSpec(t, c.spec)
		res, err := Generate(spec, c.pkg)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		formatted, err := format.Source([]byte(res.Source))
		if err != nil {
			t.Fatalf("%s: generated source does not format: %v", c.spec, err)
		}
		committed, err := os.ReadFile(repo.Path("internal", "overlays", c.pkg, c.pkg+".go"))
		if err != nil {
			t.Fatal(err)
		}
		if string(committed) != string(formatted) {
			t.Errorf("internal/overlays/%s is stale: run "+
				"`go run ./cmd/macedon gen -pkg %s -o internal/overlays/%s/%s.go specs/%s`",
				c.pkg, c.pkg, c.pkg, c.pkg, c.spec)
		}
	}
}

// TestOpaqueStatementsBecomeTODOs checks the preservation path.
func TestOpaqueStatementsBecomeTODOs(t *testing.T) {
	spec, err := dsl.Parse(`
protocol p
transports { UDP u; }
messages { u m { int x; } }
transitions { any recv m { some_c_function(a, b); } }
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(spec, "genp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != 1 {
		t.Fatalf("opaque = %d", res.Opaque)
	}
	if !strings.Contains(res.Source, "TODO(macedon)") {
		t.Fatal("missing TODO marker")
	}
}

// TestUnknownLibraryCallsDegrade checks that library calls outside the
// subset degrade to TODO comments wherever they appear — as a statement, as
// an assignment source, or as a condition — instead of failing generation.
func TestUnknownLibraryCallsDegrade(t *testing.T) {
	spec, err := dsl.Parse(`
protocol p
transports { UDP u; }
messages { u m { int x; } }
auxiliary_data { int count; }
transitions {
  any recv m {
    frobnicate(from, 3);
    count = mystery_metric(from);
    if (exotic_check(count)) { count = 0; }
    count = list_size();
    neighbor_size(1 + 2);
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(spec, "genp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != 5 {
		t.Fatalf("opaque = %d, want 5", res.Opaque)
	}
	if n := strings.Count(res.Source, "TODO(macedon)"); n != 5 {
		t.Fatalf("TODO markers = %d, want 5", n)
	}
}

// TestCollectionPrimitivesTranslate checks the indexed-collection subset:
// nodeset lists, nodetables, keymaps, locals, and return.
func TestCollectionPrimitivesTranslate(t *testing.T) {
	spec, err := dsl.Parse(`
protocol p
constants { N = 16; }
transports { UDP u; }
messages { u m { key k; nodeset others; } }
auxiliary_data {
  nodeset ring;
  nodetable table N;
  keymap cache;
}
transitions {
  any recv m {
    node best;
    best = list_get(ring, 0);
    if (best == nil_node) {
      return;
    }
    foreach (x in field(others)) {
      ring_insert(ring, x, 4);
      table_put(table, shared_prefix(self_key, hash(x), 4) * 2, x);
    }
    map_put(cache, field(k), best);
    list_trunc(ring, 8);
  }
  any API error {
    list_remove(ring, failed);
    table_remove(table, failed);
    map_remove_value(cache, failed);
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(spec, "genp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != 0 {
		t.Fatalf("opaque = %d: %s", res.Opaque, res.Source)
	}
	for _, want := range []string{
		"Table [16]overlay.Address",
		"Cache map[overlay.Key]overlay.Address",
		"a.Cache = make(map[overlay.Key]overlay.Address)",
		"ringInsert(ctx.SelfKey(), ctx.Self(), a.Ring, x, 4)",
		"tablePut(a.Table[:]",
		"mapRemoveValue(a.Cache, call.Failed)",
		"for _, x := range m.Others {",
	} {
		if !strings.Contains(res.Source, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	if _, err := format.Source([]byte(res.Source)); err != nil {
		t.Fatalf("generated source does not format: %v", err)
	}
}

// TestGenerateErrors exercises translator diagnostics.
func TestGenerateErrors(t *testing.T) {
	bad := []string{
		// assignment to undeclared variable
		`protocol p transports { UDP u; } messages { u m { } } transitions { any recv m { zz = 1; } }`,
		// send with unknown field
		`protocol p transports { UDP u; } messages { u m { int x; } } transitions { any recv m { send m(from, nope = 1); } }`,
		// field() of unknown field
		`protocol p transports { UDP u; } messages { u m { int x; } } transitions { any recv m { if (field(nope) == 1) { } } }`,
	}
	for i, src := range bad {
		spec, err := dsl.Parse(src)
		if err != nil {
			t.Fatalf("case %d should parse: %v", i, err)
		}
		if _, err := Generate(spec, "genp"); err == nil {
			t.Errorf("case %d: expected generation error", i)
		}
	}
}
