package codegen

import (
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macedon/internal/dsl"
	"macedon/internal/repo"
)

func TestCamel(t *testing.T) {
	cases := map[string]string{
		"accept": "Accept", "payload_type": "PayloadType", "x": "X",
		"probe_requester": "ProbeRequester",
	}
	for in, want := range cases {
		if got := camel(in); got != want {
			t.Errorf("camel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGoTypes(t *testing.T) {
	cases := map[string]string{
		"int": "int32", "double": "float64", "key": "overlay.Key",
		"node": "overlay.Address", "buffer": "[]byte", "nodeset": "[]overlay.Address",
	}
	for in, want := range cases {
		if got := goType(in); got != want {
			t.Errorf("goType(%q) = %q, want %q", in, got, want)
		}
	}
}

func loadSpec(t *testing.T, name string) *dsl.Spec {
	t.Helper()
	src, err := os.ReadFile(repo.Path("specs", name))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dsl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestGeneratedSourcesParse generates Go from every bundled spec and
// verifies the output is syntactically valid Go.
func TestGeneratedSourcesParse(t *testing.T) {
	paths, err := repo.Specs()
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs: %v", err)
	}
	for _, path := range paths {
		name := filepath.Base(path)
		spec := loadSpec(t, name)
		res, err := Generate(spec, "gen"+spec.Name)
		if err != nil {
			t.Errorf("%s: generate: %v", name, err)
			continue
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, name+".go", res.Source, 0); err != nil {
			t.Errorf("%s: generated source does not parse: %v", name, err)
		}
		if res.Transitions == 0 {
			t.Errorf("%s: no transitions generated", name)
		}
	}
}

// TestRandtreeFullyTranslated proves the action-language subset covers the
// whole RandTree specification: zero TODO fallbacks.
func TestRandtreeFullyTranslated(t *testing.T) {
	spec := loadSpec(t, "randtree.mac")
	res, err := Generate(spec, "genrandtree")
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != 0 {
		t.Fatalf("randtree left %d untranslated statements", res.Opaque)
	}
	if strings.Contains(res.Source, "TODO(macedon)") {
		t.Fatal("randtree output contains TODO fallbacks")
	}
}

// TestCommittedGenRandtreeInSync regenerates genrandtree and diffs it
// against the committed package, so the generator and its output can never
// drift apart.
func TestCommittedGenRandtreeInSync(t *testing.T) {
	spec := loadSpec(t, "randtree.mac")
	res, err := Generate(spec, "genrandtree")
	if err != nil {
		t.Fatal(err)
	}
	formatted, err := format.Source([]byte(res.Source))
	if err != nil {
		t.Fatalf("generated source does not format: %v", err)
	}
	committed, err := os.ReadFile(repo.Path("internal", "overlays", "genrandtree", "genrandtree.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(committed) != string(formatted) {
		t.Fatal("internal/overlays/genrandtree is stale: run " +
			"`go run ./cmd/macedon gen -pkg genrandtree -o internal/overlays/genrandtree/genrandtree.go specs/randtree.mac`")
	}
}

// TestOpaqueStatementsBecomeTODOs checks the preservation path.
func TestOpaqueStatementsBecomeTODOs(t *testing.T) {
	spec, err := dsl.Parse(`
protocol p
transports { UDP u; }
messages { u m { int x; } }
transitions { any recv m { some_c_function(a, b); } }
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(spec, "genp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != 1 {
		t.Fatalf("opaque = %d", res.Opaque)
	}
	if !strings.Contains(res.Source, "TODO(macedon)") {
		t.Fatal("missing TODO marker")
	}
}

// TestGenerateErrors exercises translator diagnostics.
func TestGenerateErrors(t *testing.T) {
	bad := []string{
		// assignment to undeclared variable
		`protocol p transports { UDP u; } messages { u m { } } transitions { any recv m { zz = 1; } }`,
		// send with unknown field
		`protocol p transports { UDP u; } messages { u m { int x; } } transitions { any recv m { send m(from, nope = 1); } }`,
		// field() of unknown field
		`protocol p transports { UDP u; } messages { u m { int x; } } transitions { any recv m { if (field(nope) == 1) { } } }`,
	}
	for i, src := range bad {
		spec, err := dsl.Parse(src)
		if err != nil {
			t.Fatalf("case %d should parse: %v", i, err)
		}
		if _, err := Generate(spec, "genp"); err == nil {
			t.Errorf("case %d: expected generation error", i)
		}
	}
}
