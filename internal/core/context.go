package core

import (
	"fmt"
	"math/rand"
	"time"

	"macedon/internal/overlay"
)

// ProtocolPayload is the payload type tag reserved for layered protocol
// messages: when layer i+1 sends one of its own messages through layer i,
// the payload travels with this tag and is demultiplexed into the upper
// layer's transition table on arrival. Application payload types are >= 0.
const ProtocolPayload int32 = -1

// APICall carries the arguments of an API transition: one struct for every
// call in Figure 3, plus the engine-driven error and notify events. Handlers
// may set Return, which propagates back to the caller.
type APICall struct {
	Kind overlay.API

	Bootstrap overlay.Address // init: the well-known bootstrap node
	Group     overlay.Key     // create_group / join / leave / multicast / anycast / collect
	Dest      overlay.Key     // route
	DestIP    overlay.Address // routeIP

	Payload     []byte
	PayloadType int32
	Priority    int

	Op  int // upcall_ext / downcall_ext operation code
	Arg any

	NbrType   overlay.NeighborType // notify
	Neighbors []overlay.Address    // notify

	Failed overlay.Address // error: the peer the failure detector declared dead

	Return int
}

// MsgEvent carries a message transition's event data. For forward
// transitions the handler may rewrite NextHop (redirect), mutate Msg (the
// engine re-encodes it), or set Quash to drop the message (§2.2).
type MsgEvent struct {
	Msg  overlay.Message
	From overlay.Address // immediate sender (recv) or original source (layered)

	// Forward-transition fields.
	NextHop overlay.Address
	NextKey overlay.Key
	Quash   bool
}

// Handlers is the application's upcall registration: the
// macedon_register_handlers() of Figure 3. Any field may be nil.
type Handlers struct {
	// Forward is invoked at intermediate hops of application payloads; the
	// return value false quashes the message.
	Forward func(payload []byte, typ int32, next overlay.Address, nextKey overlay.Key) bool
	// Deliver is invoked when an application payload reaches this node.
	Deliver func(payload []byte, typ int32, src overlay.Address)
	// Notify is invoked when the top protocol's neighbor set changes.
	Notify func(nt overlay.NeighborType, neighbors []overlay.Address)
	// Upcall is the extensible upcall (upcall_ext) from the top protocol.
	Upcall func(op int, arg any) int

	// StateChange is a lifecycle hook for external drivers: it fires
	// whenever any instance in the stack moves to a new FSM state (joining,
	// joined, ...). Live deployment agents stream these to the controller
	// as per-node event traces. Deferred onto the node's event queue.
	StateChange func(proto string, from, to State)
	// Failure fires when the engine failure detector declares a peer dead
	// on some instance (after the error transition dispatched). It runs on
	// the node's event queue and must not call Node.Exec.
	Failure func(proto string, peer overlay.Address)
}

// Context is what a transition body sees: the action primitives of §3.3 —
// state changes, timer scheduling, message transmission, neighbor
// management, and the cross-layer upcalls/downcalls. A Context is only valid
// for the duration of the transition that received it.
type Context struct {
	inst *Instance
}

// Self returns this node's address.
func (c *Context) Self() overlay.Address { return c.inst.node.addr }

// SelfKey returns this node's hash key.
func (c *Context) SelfKey() overlay.Key { return c.inst.node.key }

// Now returns the current (virtual or wall) time.
func (c *Context) Now() time.Time { return c.inst.node.clock.Now() }

// Rand returns the node's seeded PRNG.
func (c *Context) Rand() *rand.Rand { return c.inst.node.rng }

// State returns the instance's current FSM state.
func (c *Context) State() State { return c.inst.state }

// StateChange moves the FSM to s (the state_change primitive). The state
// must have been declared.
func (c *Context) StateChange(s State) {
	i := c.inst
	if !i.def.states[s] {
		panic(fmt.Sprintf("core: %s: state_change to undeclared state %q", i.def.name, s))
	}
	if i.state == s {
		return
	}
	i.trace(TraceLow, "state %s -> %s", i.state, s)
	from := i.state
	i.state = s
	if h := i.node.handlers.StateChange; h != nil {
		i.node.post(func() { h(i.def.name, from, s) })
	}
}

// Neighbors returns a declared neighbor list.
func (c *Context) Neighbors(name string) *NeighborList {
	l, ok := c.inst.nbrs[name]
	if !ok {
		panic(fmt.Sprintf("core: %s: undeclared neighbor list %q", c.inst.def.name, name))
	}
	return l
}

// TimerSched schedules a declared timer to fire after d (timer_sched). A
// non-positive d uses the timer's declared period. Scheduling an already
// pending timer is a no-op; use TimerResched to replace the deadline.
func (c *Context) TimerSched(name string, d time.Duration) {
	c.inst.schedTimer(name, d, false)
}

// TimerResched replaces a timer's deadline (timer_resched).
func (c *Context) TimerResched(name string, d time.Duration) {
	c.inst.schedTimer(name, d, true)
}

// TimerCancel stops a pending timer.
func (c *Context) TimerCancel(name string) {
	i := c.inst
	ts, ok := i.timers[name]
	if !ok {
		panic(fmt.Sprintf("core: %s: undeclared timer %q", i.def.name, name))
	}
	ts.gen++ // defeat fires already queued behind this event
	if ts.tm != nil {
		ts.tm.Stop()
		ts.tm = nil
	}
}

// TimerPending reports whether the named timer is scheduled.
func (c *Context) TimerPending(name string) bool {
	ts, ok := c.inst.timers[name]
	return ok && ts.tm != nil
}

// Send transmits one of this protocol's messages to dst at a priority
// (PriorityDefault uses the message's declared transport). On the lowest
// layer this hits the transport subsystem directly; on higher layers the
// message is encapsulated and sent via the base layer's routeIP path, which
// is how MACEDON higher-layer messages travel (§3.1).
//
// Cross-layer calls made from inside a transition are deferred: they run
// after the current transition completes, preserving transition atomicity
// and making lock-order inversions between layers impossible.
func (c *Context) Send(dst overlay.Address, m overlay.Message, pri int) error {
	i := c.inst
	frame, err := overlay.EncodeMessage(i.def.registry, m)
	if err != nil {
		return err
	}
	if i.lower == nil {
		return i.sendFrame(dst, m.MsgName(), frame, pri)
	}
	call := &APICall{
		Kind:        overlay.APIRouteIP,
		DestIP:      dst,
		Payload:     frame,
		PayloadType: ProtocolPayload,
		Priority:    pri,
	}
	i.trace(TraceHigh, "send %s to %v via %s", m.MsgName(), dst, i.lower.def.name)
	i.counters.MsgsSent.Inc()
	i.counters.BytesSent.Add(uint64(len(frame)))
	lower := i.lower
	i.node.post(func() { lower.dispatchAPI(call) })
	return nil
}

// downcall defers an API call to the layer below.
func (c *Context) downcall(call *APICall) error {
	i := c.inst
	if i.lower == nil {
		return fmt.Errorf("core: %s has no layer below for %s", i.def.name, call.Kind)
	}
	lower := i.lower
	i.node.post(func() { lower.dispatchAPI(call) })
	return nil
}

// Route asks the layer below to route a payload toward a key.
func (c *Context) Route(dest overlay.Key, payload []byte, typ int32, pri int) error {
	return c.downcall(&APICall{Kind: overlay.APIRoute, Dest: dest, Payload: payload, PayloadType: typ, Priority: pri})
}

// RouteIP asks the layer below to deliver a payload to an address directly.
func (c *Context) RouteIP(dst overlay.Address, payload []byte, typ int32, pri int) error {
	return c.downcall(&APICall{Kind: overlay.APIRouteIP, DestIP: dst, Payload: payload, PayloadType: typ, Priority: pri})
}

// Multicast asks the layer below to disseminate a payload to a group.
func (c *Context) Multicast(group overlay.Key, payload []byte, typ int32, pri int) error {
	return c.downcall(&APICall{Kind: overlay.APIMulticast, Group: group, Payload: payload, PayloadType: typ, Priority: pri})
}

// Anycast asks the layer below to deliver a payload to one group member.
func (c *Context) Anycast(group overlay.Key, payload []byte, typ int32, pri int) error {
	return c.downcall(&APICall{Kind: overlay.APIAnycast, Group: group, Payload: payload, PayloadType: typ, Priority: pri})
}

// Collect sends a payload up the group's distribution tree toward its root,
// the reverse-multicast primitive the paper introduces (§2.2).
func (c *Context) Collect(group overlay.Key, payload []byte, typ int32, pri int) error {
	return c.downcall(&APICall{Kind: overlay.APICollect, Group: group, Payload: payload, PayloadType: typ, Priority: pri})
}

// CreateGroup / JoinGroup / LeaveGroup manage multicast session state below.
func (c *Context) CreateGroup(g overlay.Key) error {
	return c.downcall(&APICall{Kind: overlay.APICreateGroup, Group: g})
}

// JoinGroup subscribes this node to a group via the layer below.
func (c *Context) JoinGroup(g overlay.Key) error {
	return c.downcall(&APICall{Kind: overlay.APIJoin, Group: g})
}

// LeaveGroup unsubscribes this node from a group via the layer below.
func (c *Context) LeaveGroup(g overlay.Key) error {
	return c.downcall(&APICall{Kind: overlay.APILeave, Group: g})
}

// DowncallExt is the extensible downcall into the layer below.
func (c *Context) DowncallExt(op int, arg any) error {
	return c.downcall(&APICall{Kind: overlay.APIDowncallExt, Op: op, Arg: arg})
}

// Deliver passes a payload up: to the layer above when it is a protocol
// message or to the application when this is the top layer (the deliver()
// upcall). Delivery is deferred until the current transition completes.
func (c *Context) Deliver(payload []byte, typ int32, src overlay.Address) {
	i := c.inst
	i.node.post(func() { i.deliverUp(payload, typ, src) })
}

// Forward runs the forward() upcall for a payload about to be forwarded to
// next: the layer above (or the application) may quash it or redirect it.
// It returns whether to proceed, the possibly-rewritten next hop, and the
// possibly-rewritten payload.
func (c *Context) Forward(payload []byte, typ int32, next overlay.Address, nextKey overlay.Key) (bool, overlay.Address, []byte) {
	return c.inst.forwardUp(payload, typ, next, nextKey)
}

// NotifyNeighbors runs the notify() upcall: the layer above (or the
// application) learns this protocol's neighbor set changed. Deferred.
func (c *Context) NotifyNeighbors(nt overlay.NeighborType, neighbors []overlay.Address) {
	i := c.inst
	i.node.post(func() { i.notifyUp(nt, neighbors) })
}

// UpcallExt is the extensible upcall to the layer above or application.
// Deferred; any result the upper layer produces must travel back through a
// DowncallExt or protocol message.
func (c *Context) UpcallExt(op int, arg any) {
	i := c.inst
	i.node.post(func() { i.upcallExt(op, arg) })
}

// EncodeFrame encodes one of this protocol's own messages for transmission
// through the layer below's route/multicast path (as a ProtocolPayload).
func (c *Context) EncodeFrame(m overlay.Message) ([]byte, error) {
	return overlay.EncodeMessage(c.inst.def.registry, m)
}

// TransportQueued reports bytes queued toward dst on a named transport of
// the lowest layer — the observable "blocked transport" condition.
func (c *Context) TransportQueued(transport string, dst overlay.Address) int {
	n := c.inst.node
	t, ok := n.transports[transport]
	if !ok {
		return 0
	}
	return t.QueuedBytes(dst)
}

// After schedules fn to run as a write-locked continuation of this protocol
// instance after d: the engine-level analogue of Teapot's continuations,
// used for delayed actions that are not worth a declared timer (equally
// spaced probe trains, modeled processing delays).
func (c *Context) After(d time.Duration, fn func(ctx *Context)) {
	i := c.inst
	i.node.clock.After(d, func() {
		i.node.post(func() {
			if i.node.stopped {
				return
			}
			i.mu.Lock()
			defer i.mu.Unlock()
			fn(&Context{inst: i})
		})
	})
}

// Tracef writes a protocol-level trace line at the given level.
func (c *Context) Tracef(l TraceLevel, format string, args ...any) {
	c.inst.trace(l, format, args...)
}
