package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/simnet"
	"macedon/internal/topology"
)

// --- test protocols ---------------------------------------------------

// echoMsgData is the routing protocol's encapsulation message.
type echoMsgData struct {
	Src     overlay.Address
	Dest    overlay.Address
	Typ     int32
	Payload []byte
}

func (m *echoMsgData) MsgName() string { return "data" }
func (m *echoMsgData) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.Addr(m.Dest)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *echoMsgData) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Dest = r.Addr()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

type echoPing struct{ N int32 }

func (m *echoPing) MsgName() string                { return "ping" }
func (m *echoPing) Encode(w *overlay.Writer)       { w.I32(m.N) }
func (m *echoPing) Decode(r *overlay.Reader) error { m.N = r.I32(); return r.Err() }

type echoPong struct{ N int32 }

func (m *echoPong) MsgName() string                { return "pong" }
func (m *echoPong) Encode(w *overlay.Writer)       { w.I32(m.N) }
func (m *echoPong) Decode(r *overlay.Reader) error { m.N = r.I32(); return r.Err() }

// echoProto is a minimal lowest-layer routing protocol: routeIP relays
// through the bootstrap node (so forward upcalls have a hop to run on),
// plus a ping/pong pair and a periodic tick timer.
type echoProto struct {
	boot     overlay.Address
	ticks    int
	pongs    []int32
	failures []overlay.Address
	notified int
}

func (p *echoProto) ProtocolName() string { return "echo" }

func (p *echoProto) Define(d *Def) {
	d.States("ready")
	d.Addressing(IPAddressing)
	d.UDPTransport("BE")
	d.TCPTransport("REL")
	d.Message("data", func() overlay.Message { return &echoMsgData{} }, "REL")
	d.Message("ping", func() overlay.Message { return &echoPing{} }, "BE")
	d.Message("pong", func() overlay.Message { return &echoPong{} }, "BE")
	d.PeriodicTimer("tick", 100*time.Millisecond)
	d.Timer("oneshot", 0)
	d.NeighborList("peers", 8, true)

	d.OnAPI(overlay.APIInit, In(StateInit), Write, func(ctx *Context, call *APICall) {
		p.boot = call.Bootstrap
		ctx.StateChange("ready")
		ctx.TimerSched("tick", 0)
	})
	d.OnAPI(overlay.APIRouteIP, In("ready"), Read, func(ctx *Context, call *APICall) {
		m := &echoMsgData{Src: ctx.Self(), Dest: call.DestIP, Typ: call.PayloadType, Payload: call.Payload}
		next := call.DestIP
		if ctx.Self() != p.boot && call.DestIP != p.boot {
			next = p.boot // relay through the bootstrap
		}
		_ = ctx.Send(next, m, call.Priority)
	})
	d.OnRecv("data", In("ready"), Write, func(ctx *Context, ev *MsgEvent) {
		m := ev.Msg.(*echoMsgData)
		if m.Dest == ctx.Self() {
			ctx.Deliver(m.Payload, m.Typ, m.Src)
			return
		}
		ok, next, payload := ctx.Forward(m.Payload, m.Typ, m.Dest, overlay.HashAddress(m.Dest))
		if !ok {
			return
		}
		m.Payload = payload
		m.Dest = next // a redirect rewrites the destination in this protocol
		_ = ctx.Send(next, m, overlay.PriorityDefault)
	})
	d.OnRecv("ping", In("ready"), Write, func(ctx *Context, ev *MsgEvent) {
		_ = ctx.Send(ev.From, &echoPong{N: ev.Msg.(*echoPing).N}, overlay.PriorityDefault)
	})
	d.OnRecv("ping", In(StateInit), Write, func(ctx *Context, ev *MsgEvent) {
		// Scoped differently before init completes: ignore silently.
	})
	d.OnRecv("pong", In("ready"), Write, func(ctx *Context, ev *MsgEvent) {
		p.pongs = append(p.pongs, ev.Msg.(*echoPong).N)
	})
	d.OnTimer("tick", In("ready"), Read, func(ctx *Context) { p.ticks++ })
	d.OnTimer("oneshot", Any, Write, func(ctx *Context) { p.ticks += 100 })
	d.OnAPI(overlay.APIError, Any, Write, func(ctx *Context, call *APICall) {
		p.failures = append(p.failures, call.Failed)
	})
	d.OnAPI(overlay.APIDowncallExt, Any, Write, func(ctx *Context, call *APICall) {
		switch call.Op {
		case 1: // add monitored peer
			ctx.Neighbors("peers").Add(call.Arg.(overlay.Address))
		case 2: // ping a peer
			_ = ctx.Send(call.Arg.(overlay.Address), &echoPing{N: 42}, overlay.PriorityDefault)
		case 3: // announce neighbors upward
			ctx.NotifyNeighbors(overlay.NbrTypePeer, ctx.Neighbors("peers").Addrs())
		}
	})
}

// upperNote is a layered protocol's own message.
type upperNote struct{ Text string }

func (m *upperNote) MsgName() string                { return "note" }
func (m *upperNote) Encode(w *overlay.Writer)       { w.String16(m.Text) }
func (m *upperNote) Decode(r *overlay.Reader) error { m.Text = r.String16(); return r.Err() }

// upperProto layers on echo: its notes travel inside echo data messages.
type upperProto struct {
	notes    []string
	forwards []string
	quash    bool
	redirect overlay.Address
}

func (p *upperProto) ProtocolName() string { return "upper" }

func (p *upperProto) Define(d *Def) {
	d.States("up")
	d.Message("note", func() overlay.Message { return &upperNote{} }, "")
	d.OnAPI(overlay.APIInit, Any, Write, func(ctx *Context, call *APICall) {
		ctx.StateChange("up")
	})
	d.OnAPI(overlay.APIRouteIP, Any, Read, func(ctx *Context, call *APICall) {
		// Application data: wrap in a note? No — pass through to the base.
		_ = ctx.RouteIP(call.DestIP, call.Payload, call.PayloadType, call.Priority)
	})
	d.OnAPI(overlay.APIDowncallExt, Any, Write, func(ctx *Context, call *APICall) {
		// op 10: send a note to the given address.
		_ = ctx.Send(call.Arg.(overlay.Address), &upperNote{Text: "hi"}, overlay.PriorityDefault)
	})
	d.OnRecv("note", Any, Write, func(ctx *Context, ev *MsgEvent) {
		p.notes = append(p.notes, ev.Msg.(*upperNote).Text)
	})
	d.OnForward("note", Any, Write, func(ctx *Context, ev *MsgEvent) {
		n := ev.Msg.(*upperNote)
		p.forwards = append(p.forwards, n.Text)
		n.Text = n.Text + "+hop" // rewrite in flight
		if p.quash {
			ev.Quash = true
		}
		if p.redirect != overlay.NilAddress {
			ev.NextHop = p.redirect
		}
	})
}

// --- rig ---------------------------------------------------------------

type coreRig struct {
	sched *simnet.Scheduler
	net   *simnet.Network
	nodes map[overlay.Address]*Node
}

func newCoreRig(t *testing.T, addrs []overlay.Address, stack []Factory, boot overlay.Address) *coreRig {
	t.Helper()
	g := topology.NewGraph()
	hub := g.AddRouter()
	for _, a := range addrs {
		g.AttachClient(a, hub, topology.DefaultAccess)
	}
	sched := simnet.NewScheduler(5)
	net := simnet.New(sched, g, simnet.Config{})
	r := &coreRig{sched: sched, net: net, nodes: make(map[overlay.Address]*Node)}
	for _, a := range addrs {
		n, err := NewNode(Config{Addr: a, Net: net, Stack: stack, Bootstrap: boot})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[a] = n
	}
	return r
}

func echoStack() []Factory { return []Factory{func() Agent { return &echoProto{} }} }
func twoLayerStack() []Factory {
	return []Factory{func() Agent { return &echoProto{} }, func() Agent { return &upperProto{} }}
}

func echoOf(n *Node) *echoProto   { return n.Instance("echo").Agent().(*echoProto) }
func upperOf(n *Node) *upperProto { return n.Instance("upper").Agent().(*upperProto) }

// --- tests ---------------------------------------------------------------

func TestInitTransitionRuns(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1}, echoStack(), 1)
	r.sched.RunFor(time.Millisecond)
	if st := r.nodes[1].Instance("echo").State(); st != "ready" {
		t.Fatalf("state after init = %q", st)
	}
}

func TestAppRouteIPDeliver(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2}, echoStack(), 1)
	var got []byte
	var gotTyp int32
	var gotSrc overlay.Address
	r.nodes[2].RegisterHandlers(Handlers{
		Deliver: func(p []byte, typ int32, src overlay.Address) {
			got = append([]byte(nil), p...)
			gotTyp, gotSrc = typ, src
		},
	})
	if err := r.nodes[1].RouteIP(2, []byte("payload"), 7, overlay.PriorityDefault); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Second)
	if string(got) != "payload" || gotTyp != 7 || gotSrc != 1 {
		t.Fatalf("deliver = %q typ=%d src=%v", got, gotTyp, gotSrc)
	}
}

func TestAppNegativeTypeRejected(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1}, echoStack(), 1)
	if err := r.nodes[1].RouteIP(1, nil, -1, 0); err == nil {
		t.Fatal("negative app payload type must be rejected")
	}
}

func TestPingPongAndStateScoping(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2}, echoStack(), 1)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].Downcall(2, overlay.Address(2)) // ping node 2
	r.sched.RunFor(time.Second)
	if p := echoOf(r.nodes[1]); len(p.pongs) != 1 || p.pongs[0] != 42 {
		t.Fatalf("pongs = %v", p.pongs)
	}
}

func TestPeriodicTimer(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1}, echoStack(), 1)
	r.sched.RunFor(time.Second + 10*time.Millisecond)
	p := echoOf(r.nodes[1])
	if p.ticks < 9 || p.ticks > 11 {
		t.Fatalf("ticks in 1s at 100ms period = %d", p.ticks)
	}
}

func TestStopCancelsTimers(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1}, echoStack(), 1)
	r.sched.RunFor(300 * time.Millisecond)
	r.nodes[1].Stop()
	p := echoOf(r.nodes[1])
	before := p.ticks
	r.sched.RunFor(time.Second)
	if p.ticks != before {
		t.Fatalf("ticks advanced after Stop: %d -> %d", before, p.ticks)
	}
}

func TestLayeredSendAndRecv(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2}, twoLayerStack(), 1)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].Downcall(10, overlay.Address(2)) // upper sends note to node 2
	r.sched.RunFor(time.Second)
	if notes := upperOf(r.nodes[2]).notes; len(notes) != 1 || notes[0] != "hi" {
		t.Fatalf("notes = %v", notes)
	}
}

func TestForwardUpcallRewrite(t *testing.T) {
	// Three nodes; notes from 2 to 3 relay through bootstrap 1, whose upper
	// layer's forward transition rewrites the text.
	r := newCoreRig(t, []overlay.Address{1, 2, 3}, twoLayerStack(), 1)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[2].Downcall(10, overlay.Address(3))
	r.sched.RunFor(time.Second)
	if fw := upperOf(r.nodes[1]).forwards; len(fw) != 1 || fw[0] != "hi" {
		t.Fatalf("relay forwards = %v", fw)
	}
	if notes := upperOf(r.nodes[3]).notes; len(notes) != 1 || notes[0] != "hi+hop" {
		t.Fatalf("rewritten notes = %v", notes)
	}
}

func TestForwardUpcallQuash(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2, 3}, twoLayerStack(), 1)
	r.sched.RunFor(10 * time.Millisecond)
	upperOf(r.nodes[1]).quash = true
	r.nodes[2].Downcall(10, overlay.Address(3))
	r.sched.RunFor(time.Second)
	if notes := upperOf(r.nodes[3]).notes; len(notes) != 0 {
		t.Fatalf("quashed note arrived: %v", notes)
	}
}

func TestForwardUpcallRedirect(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2, 3, 4}, twoLayerStack(), 1)
	r.sched.RunFor(10 * time.Millisecond)
	upperOf(r.nodes[1]).redirect = 4
	r.nodes[2].Downcall(10, overlay.Address(3))
	r.sched.RunFor(time.Second)
	if notes := upperOf(r.nodes[4]).notes; len(notes) != 1 {
		t.Fatalf("redirected note missing: %v", notes)
	}
	if notes := upperOf(r.nodes[3]).notes; len(notes) != 0 {
		t.Fatalf("original destination still got the note: %v", notes)
	}
}

func TestAppForwardHandlerQuash(t *testing.T) {
	// Application payloads relayed through the bootstrap run the app's
	// forward handler there.
	r := newCoreRig(t, []overlay.Address{1, 2, 3}, echoStack(), 1)
	var sawForward bool
	r.nodes[1].RegisterHandlers(Handlers{
		Forward: func(p []byte, typ int32, next overlay.Address, key overlay.Key) bool {
			sawForward = true
			return false // quash everything
		},
	})
	var delivered bool
	r.nodes[3].RegisterHandlers(Handlers{
		Deliver: func([]byte, int32, overlay.Address) { delivered = true },
	})
	_ = r.nodes[2].RouteIP(3, []byte("x"), 1, overlay.PriorityDefault)
	r.sched.RunFor(time.Second)
	if !sawForward {
		t.Fatal("app forward handler never ran")
	}
	if delivered {
		t.Fatal("quashed payload was delivered")
	}
}

func TestNotifyUpcallToApp(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2}, echoStack(), 1)
	var nt overlay.NeighborType
	var nbrs []overlay.Address
	r.nodes[1].RegisterHandlers(Handlers{
		Notify: func(typ overlay.NeighborType, as []overlay.Address) { nt, nbrs = typ, as },
	})
	r.nodes[1].Downcall(1, overlay.Address(2)) // add peer
	r.nodes[1].Downcall(3, nil)                // notify
	r.sched.RunFor(time.Second)
	if nt != overlay.NbrTypePeer || len(nbrs) != 1 || nbrs[0] != 2 {
		t.Fatalf("notify = %v %v", nt, nbrs)
	}
}

func TestFailureDetection(t *testing.T) {
	g := topology.NewGraph()
	hub := g.AddRouter()
	g.AttachClient(1, hub, topology.DefaultAccess)
	g.AttachClient(2, hub, topology.DefaultAccess)
	sched := simnet.NewScheduler(5)
	net := simnet.New(sched, g, simnet.Config{})
	mk := func(a overlay.Address) *Node {
		n, err := NewNode(Config{
			Addr: a, Net: net, Stack: echoStack(), Bootstrap: 1,
			HeartbeatAfter: 2 * time.Second, FailAfter: 6 * time.Second,
			Sweep: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1, n2 := mk(1), mk(2)
	_ = n2
	n1.Downcall(1, overlay.Address(2)) // monitor node 2
	sched.RunFor(time.Second)

	// Alive but silent: heartbeats keep it alive, no failure for a long time.
	sched.RunFor(30 * time.Second)
	if f := echoOf(n1).failures; len(f) != 0 {
		t.Fatalf("alive peer declared failed: %v", f)
	}

	// Now crash node 2.
	if err := net.SetDown(2, true); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(10 * time.Second)
	f := echoOf(n1).failures
	if len(f) != 1 || f[0] != 2 {
		t.Fatalf("failures = %v", f)
	}
	if echoOf(n1).failures[0] != 2 {
		t.Fatalf("wrong failed peer")
	}
	// The failed peer was removed from the monitored list: no repeat firing.
	sched.RunFor(20 * time.Second)
	if f := echoOf(n1).failures; len(f) != 1 {
		t.Fatalf("error transition re-fired: %v", f)
	}
	if c := n1.Instance("echo").Counters(); c.Failures != 1 {
		t.Fatalf("failure counter = %d", c.Failures)
	}
}

func TestCountersAdvance(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2}, echoStack(), 1)
	r.nodes[1].Downcall(2, overlay.Address(2))
	r.sched.RunFor(time.Second)
	c1 := r.nodes[1].Counters()
	if c1.MsgsSent == 0 || c1.Transitions == 0 || c1.TimerFires == 0 {
		t.Fatalf("counters did not advance: %+v", c1)
	}
	c2 := r.nodes[2].Counters()
	if c2.MsgsRecv == 0 {
		t.Fatalf("receiver counters: %+v", c2)
	}
}

func TestUnhandledEventCounted(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1, 2}, echoStack(), 1)
	// Multicast has no transition in echo.
	_ = r.nodes[1].Multicast(5, []byte("x"), 1, 0)
	r.sched.RunFor(100 * time.Millisecond)
	if c := r.nodes[1].Instance("echo").Counters(); c.Unhandled == 0 {
		t.Fatal("unhandled API call not counted")
	}
}

func TestTracing(t *testing.T) {
	g := topology.NewGraph()
	hub := g.AddRouter()
	g.AttachClient(1, hub, topology.DefaultAccess)
	sched := simnet.NewScheduler(5)
	net := simnet.New(sched, g, simnet.Config{})
	var buf bytes.Buffer
	n, err := NewNode(Config{Addr: 1, Net: net, Stack: echoStack(), Bootstrap: 1,
		TraceLevel: TraceHigh, TraceWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	sched.RunFor(500 * time.Millisecond)
	out := buf.String()
	if !strings.Contains(out, "state init -> ready") {
		t.Fatalf("missing state-change trace:\n%s", out)
	}
	if !strings.Contains(out, "timer tick") {
		t.Fatalf("missing timer trace:\n%s", out)
	}
}

func TestConfigValidation(t *testing.T) {
	g := topology.NewGraph()
	hub := g.AddRouter()
	g.AttachClient(1, hub, topology.DefaultAccess)
	sched := simnet.NewScheduler(5)
	net := simnet.New(sched, g, simnet.Config{})
	if _, err := NewNode(Config{Addr: 1, Net: net}); err == nil {
		t.Fatal("empty stack must fail")
	}
	if _, err := NewNode(Config{Addr: 99, Net: net, Stack: echoStack()}); err == nil {
		t.Fatal("unattached address must fail")
	}
	if _, err := NewNode(Config{Addr: 1, Stack: echoStack()}); err == nil {
		t.Fatal("nil network must fail")
	}
}

func TestDefValidation(t *testing.T) {
	bad := func(name string, define func(d *Def)) {
		t.Helper()
		d := newDef("p")
		define(d)
		if err := d.validate(); err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
	}
	bad("undeclared message transition", func(d *Def) {
		d.OnRecv("nope", Any, Write, func(*Context, *MsgEvent) {})
	})
	bad("undeclared timer transition", func(d *Def) {
		d.OnTimer("nope", Any, Write, func(*Context) {})
	})
	bad("message on undeclared transport", func(d *Def) {
		d.Message("m", func() overlay.Message { return &echoPing{} }, "missing")
	})
	bad("duplicate transport", func(d *Def) {
		d.TCPTransport("t")
		d.TCPTransport("t")
	})
	bad("duplicate neighbor list", func(d *Def) {
		d.NeighborList("l", 1, false)
		d.NeighborList("l", 2, false)
	})
}

func TestStateExprs(t *testing.T) {
	if !Any.Matches("x") {
		t.Fatal("Any should match")
	}
	e := In("a", "b")
	if !e.Matches("a") || e.Matches("c") {
		t.Fatal("In broken")
	}
	n := Not(In("joining", "init"))
	if n.Matches("joining") || n.Matches("init") || !n.Matches("joined") {
		t.Fatal("Not broken")
	}
	if n.String() != "!(joining|init)" {
		t.Fatalf("Not string = %q", n.String())
	}
}

func TestNeighborList(t *testing.T) {
	l := newNeighborList(neighborDecl{name: "kids", max: 2})
	if l.Size() != 0 || l.Full() {
		t.Fatal("fresh list state wrong")
	}
	a := l.Add(10)
	if a == nil || a.Addr != 10 || a.Key != overlay.HashAddress(10) {
		t.Fatalf("entry = %+v", a)
	}
	if l.Add(10) != a {
		t.Fatal("re-add should return existing entry")
	}
	l.Add(11)
	if !l.Full() || l.Add(12) != nil {
		t.Fatal("capacity not enforced")
	}
	if !l.Contains(11) || l.Contains(12) {
		t.Fatal("Contains broken")
	}
	if l.Entry(10) != a || l.Entry(99) != nil {
		t.Fatal("Entry broken")
	}
	if l.First().Addr != 10 {
		t.Fatal("First broken")
	}
	addrs := l.Addrs()
	if len(addrs) != 2 || addrs[0] != 10 || addrs[1] != 11 {
		t.Fatalf("Addrs = %v", addrs)
	}
	if !l.Remove(10) || l.Remove(10) {
		t.Fatal("Remove broken")
	}
	l.Clear()
	if l.Size() != 0 {
		t.Fatal("Clear broken")
	}
}

func TestTimerGenerationsCancelQueuedFires(t *testing.T) {
	r := newCoreRig(t, []overlay.Address{1}, echoStack(), 1)
	n := r.nodes[1]
	inst := n.Instance("echo")
	p := echoOf(n)
	// Schedule the one-shot, then cancel it in the same virtual instant.
	n.post(func() {
		ctx := &Context{inst: inst}
		ctx.TimerSched("oneshot", time.Millisecond)
		ctx.TimerCancel("oneshot")
	})
	r.sched.RunFor(time.Second)
	if p.ticks >= 100 {
		t.Fatal("cancelled one-shot fired")
	}
}
