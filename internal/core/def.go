// Package core is the MACEDON engine: the runtime half of the paper's
// primary contribution. Protocols — whether hand-written or emitted by the
// code generator — declare their finite state machine (system states,
// messages with transport bindings, timers, neighbor lists, and transitions
// scoped by state expressions) through a Def, and the engine supplies
// everything §1 lists as shared infrastructure: thread and timer management,
// network communication, per-transition read/write locking, failure
// detection, protocol layering with the overlay-generic API of Figure 3,
// debugging/tracing, and state serialization points.
package core

import (
	"fmt"
	"time"

	"macedon/internal/overlay"
)

// State is an FSM system state ("phase of execution", §2.1.1).
type State string

// StateInit is the automatic starting state of every protocol.
const StateInit State = "init"

// StateExpr guards a transition: the grammar's STATE EXPR. Expressions are
// built from Any, In, and Not.
type StateExpr interface {
	Matches(s State) bool
	String() string
}

type anyExpr struct{}

func (anyExpr) Matches(State) bool { return true }
func (anyExpr) String() string     { return "any" }

// Any matches every state: the grammar's "any" scope.
var Any StateExpr = anyExpr{}

type inExpr []State

func (e inExpr) Matches(s State) bool {
	for _, st := range e {
		if st == s {
			return true
		}
	}
	return false
}

func (e inExpr) String() string {
	out := ""
	for i, st := range e {
		if i > 0 {
			out += "|"
		}
		out += string(st)
	}
	return "(" + out + ")"
}

// In matches any of the listed states, e.g. In("joined", "probing").
func In(states ...State) StateExpr { return inExpr(states) }

type notExpr struct{ inner StateExpr }

func (e notExpr) Matches(s State) bool { return !e.inner.Matches(s) }
func (e notExpr) String() string       { return "!" + e.inner.String() }

// Not negates an expression, e.g. Not(In("joining", "init")) for the
// paper's "!(joining|init)".
func Not(e StateExpr) StateExpr { return notExpr{e} }

// LockMode is the transition's serialization class (§2.1.2): control
// transitions write node state and take the instance lock exclusively; data
// transitions only read and may run concurrently.
type LockMode uint8

const (
	// Write is the default: exclusive access ("control").
	Write LockMode = iota
	// Read allows concurrent data transitions ("data").
	Read
)

// String names the lock mode as the grammar's locking option does.
func (m LockMode) String() string {
	if m == Read {
		return "read"
	}
	return "write"
}

// Addressing selects the protocol's address family (grammar header).
type Addressing uint8

const (
	// HashAddressing routes by 32-bit hash keys.
	HashAddressing Addressing = iota
	// IPAddressing routes by node addresses directly.
	IPAddressing
)

// Handler kinds.
type (
	// MsgHandler runs a message transition (recv or forward).
	MsgHandler func(ctx *Context, ev *MsgEvent)
	// TimerHandler runs a timer transition.
	TimerHandler func(ctx *Context)
	// APIHandler runs an API transition.
	APIHandler func(ctx *Context, call *APICall)
)

type eventKind uint8

const (
	evRecv eventKind = iota
	evForward
	evTimer
	evAPI
)

func (k eventKind) String() string {
	switch k {
	case evRecv:
		return "recv"
	case evForward:
		return "forward"
	case evTimer:
		return "timer"
	default:
		return "API"
	}
}

type eventKey struct {
	kind eventKind
	name string // message name, timer name, or API kind name
}

type transition struct {
	guard StateExpr
	lock  LockMode
	msg   MsgHandler
	timer TimerHandler
	api   APIHandler
}

type transportDecl struct {
	name   string
	kind   overlay.TransportKind
	window int // SWP only
}

type messageDecl struct {
	name      string
	transport string // default transport instance name
}

type timerDecl struct {
	name     string
	period   time.Duration // default period for Resched-with-default
	periodic bool          // automatically re-arm after each fire
}

type neighborDecl struct {
	name       string
	max        int
	failDetect bool
}

// Def collects a protocol's declaration: everything a .mac file's STATE AND
// DATA and TRANSITIONS sections contain. The engine constructs one per
// instance and hands it to the Agent's Define method.
type Def struct {
	name       string
	addressing Addressing
	traceLevel TraceLevel
	traceSet   bool

	states     map[State]bool
	transports []transportDecl
	messages   map[string]*messageDecl
	msgOrder   []string
	registry   *overlay.Registry
	timers     map[string]*timerDecl
	neighbors  []neighborDecl

	transitions map[eventKey][]transition
}

func newDef(name string) *Def {
	return &Def{
		name:        name,
		states:      map[State]bool{StateInit: true},
		messages:    make(map[string]*messageDecl),
		registry:    overlay.NewRegistry(name),
		timers:      make(map[string]*timerDecl),
		transitions: make(map[eventKey][]transition),
	}
}

// Name returns the protocol name.
func (d *Def) Name() string { return d.name }

// States declares the protocol's FSM states; "init" is always present.
func (d *Def) States(states ...State) {
	for _, s := range states {
		d.states[s] = true
	}
}

// Addressing sets the protocol's address family (hash by default).
func (d *Def) Addressing(a Addressing) { d.addressing = a }

// Trace sets the protocol's tracing level, overriding the node's default.
func (d *Def) Trace(l TraceLevel) { d.traceLevel, d.traceSet = l, true }

// TCPTransport declares a reliable congestion-friendly transport instance.
// Transport declaration order is priority order: index 0 is highest.
func (d *Def) TCPTransport(name string) {
	d.transports = append(d.transports, transportDecl{name: name, kind: overlay.TCP})
}

// UDPTransport declares an unreliable transport instance.
func (d *Def) UDPTransport(name string) {
	d.transports = append(d.transports, transportDecl{name: name, kind: overlay.UDP})
}

// SWPTransport declares a reliable congestion-unfriendly sliding-window
// transport instance. window <= 0 selects the default.
func (d *Def) SWPTransport(name string, window int) {
	d.transports = append(d.transports, transportDecl{name: name, kind: overlay.SWP, window: window})
}

// Message declares a message type bound to a default transport instance.
// Higher-layer protocols pass transport "" — their messages travel inside
// the base layer's data messages.
func (d *Def) Message(name string, factory func() overlay.Message, transport string) {
	if _, dup := d.messages[name]; dup {
		panic(fmt.Sprintf("core: message %q declared twice in %q", name, d.name))
	}
	d.registry.Register(name, factory)
	d.messages[name] = &messageDecl{name: name, transport: transport}
	d.msgOrder = append(d.msgOrder, name)
}

// Timer declares a timer state variable with a default period.
func (d *Def) Timer(name string, period time.Duration) {
	d.timers[name] = &timerDecl{name: name, period: period}
}

// PeriodicTimer declares a timer that automatically re-arms with its period
// after every fire, until cancelled.
func (d *Def) PeriodicTimer(name string, period time.Duration) {
	d.timers[name] = &timerDecl{name: name, period: period, periodic: true}
}

// NeighborList declares a neighbor set with a maximum size (<= 0 means
// unbounded). failDetect asks the engine to monitor members for failure and
// invoke the error API transition when one goes silent (§3.1).
func (d *Def) NeighborList(name string, max int, failDetect bool) {
	d.neighbors = append(d.neighbors, neighborDecl{name: name, max: max, failDetect: failDetect})
}

// OnRecv declares a message reception transition: the node is the message's
// destination (or the message is a lowest-layer control message).
func (d *Def) OnRecv(msg string, guard StateExpr, lock LockMode, h MsgHandler) {
	d.addTransition(eventKey{evRecv, msg}, transition{guard: guard, lock: lock, msg: h})
}

// OnForward declares a forward transition: a higher-layer message transiting
// this node while the base layer routes it. The handler may redirect or
// quash the message through the MsgEvent.
func (d *Def) OnForward(msg string, guard StateExpr, lock LockMode, h MsgHandler) {
	d.addTransition(eventKey{evForward, msg}, transition{guard: guard, lock: lock, msg: h})
}

// OnTimer declares a timer expiration transition.
func (d *Def) OnTimer(name string, guard StateExpr, lock LockMode, h TimerHandler) {
	d.addTransition(eventKey{evTimer, name}, transition{guard: guard, lock: lock, timer: h})
}

// OnAPI declares an API transition for calls arriving from the layer above
// (or the application), plus the engine-driven error and notify events.
func (d *Def) OnAPI(kind overlay.API, guard StateExpr, lock LockMode, h APIHandler) {
	d.addTransition(eventKey{evAPI, kind.String()}, transition{guard: guard, lock: lock, api: h})
}

func (d *Def) addTransition(k eventKey, t transition) {
	if t.guard == nil {
		t.guard = Any
	}
	d.transitions[k] = append(d.transitions[k], t)
}

// validate checks internal consistency after Define returns.
func (d *Def) validate() error {
	for k := range d.transitions {
		switch k.kind {
		case evRecv, evForward:
			if _, ok := d.messages[k.name]; !ok {
				return fmt.Errorf("core: %s: transition on undeclared message %q", d.name, k.name)
			}
		case evTimer:
			if _, ok := d.timers[k.name]; !ok {
				return fmt.Errorf("core: %s: transition on undeclared timer %q", d.name, k.name)
			}
		}
	}
	tnames := make(map[string]bool, len(d.transports))
	for _, t := range d.transports {
		if tnames[t.name] {
			return fmt.Errorf("core: %s: transport %q declared twice", d.name, t.name)
		}
		tnames[t.name] = true
	}
	for _, m := range d.messages {
		if m.transport != "" && !tnames[m.transport] {
			return fmt.Errorf("core: %s: message %q bound to undeclared transport %q", d.name, m.name, m.transport)
		}
	}
	seen := make(map[string]bool, len(d.neighbors))
	for _, nb := range d.neighbors {
		if seen[nb.name] {
			return fmt.Errorf("core: %s: neighbor list %q declared twice", d.name, nb.name)
		}
		seen[nb.name] = true
	}
	return nil
}

// Agent is a protocol implementation: what the code generator emits from a
// specification, or what a developer writes directly against the engine.
type Agent interface {
	// Define declares the protocol's FSM on the supplied Def. It is called
	// exactly once, before any event is dispatched.
	Define(d *Def)
}

// Factory constructs a fresh Agent for one node's stack.
type Factory func() Agent
