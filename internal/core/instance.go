package core

import (
	"fmt"
	"sync"
	"time"

	"macedon/internal/overlay"
)

// Instance is one protocol layer on one node: the "MACEDON agent" of §3.2.
// It owns the protocol's FSM state, timers, neighbor lists, and the
// read/write lock that serializes control transitions against data
// transitions.
type Instance struct {
	node  *Node
	agent Agent
	def   *Def

	mu    sync.RWMutex
	state State

	timers map[string]*timerState
	nbrs   map[string]*NeighborList

	lower, upper *Instance

	counters counterSet
}

type timerState struct {
	decl *timerDecl
	tm   stoppable
	gen  uint64 // invalidates queued fires after cancel/resched
}

type stoppable interface{ Stop() bool }

func newInstance(n *Node, agent Agent) (*Instance, error) {
	i := &Instance{
		node:   n,
		agent:  agent,
		state:  StateInit,
		timers: make(map[string]*timerState),
		nbrs:   make(map[string]*NeighborList),
	}
	d := newDef(protocolName(agent))
	agent.Define(d)
	if err := d.validate(); err != nil {
		return nil, err
	}
	i.def = d
	for name, td := range d.timers {
		i.timers[name] = &timerState{decl: td}
	}
	for _, nd := range d.neighbors {
		i.nbrs[nd.name] = newNeighborList(nd)
	}
	return i, nil
}

// protocolName lets agents name themselves through an optional interface;
// otherwise Define must call Def.SetName via the builder. In practice every
// agent implements Namer.
func protocolName(a Agent) string {
	if n, ok := a.(interface{ ProtocolName() string }); ok {
		return n.ProtocolName()
	}
	return fmt.Sprintf("%T", a)
}

// Name returns the protocol name.
func (i *Instance) Name() string { return i.def.name }

// State returns the instance's current FSM state (for tests and tools).
func (i *Instance) State() State {
	i.mu.RLock()
	defer i.mu.RUnlock()
	return i.state
}

// Agent returns the protocol implementation (for white-box inspection in
// experiments: the paper's debugging features dump protocol state the same
// way).
func (i *Instance) Agent() Agent { return i.agent }

// Counters returns a snapshot of the instance's engine counters. The
// accumulator is atomic, so no lock is needed: control goroutines (live
// agents serving /metrics, tests polling mid-run) can snapshot while
// transitions execute.
func (i *Instance) Counters() Counters {
	return i.counters.snapshot()
}

// NeighborsSnapshot returns the member addresses of a neighbor list.
func (i *Instance) NeighborsSnapshot(name string) []overlay.Address {
	i.mu.RLock()
	defer i.mu.RUnlock()
	if l, ok := i.nbrs[name]; ok {
		return l.Addrs()
	}
	return nil
}

func (i *Instance) trace(l TraceLevel, format string, args ...any) {
	level := i.node.traceLevel
	if i.def != nil && i.def.traceSet {
		level = i.def.traceLevel
	}
	if l > level {
		return
	}
	i.node.tracer.tracef(l, i.node.clock.Now(), "%s",
		fmt.Sprintf("%v %s: %s", i.node.addr, i.def.name, fmt.Sprintf(format, args...)))
}

// dispatch finds the first transition for k whose guard matches the current
// state and runs it under the declared lock mode. It reports whether a
// transition ran.
func (i *Instance) dispatch(k eventKey, run func(t transition, ctx *Context)) bool {
	ts := i.def.transitions[k]
	// Guard evaluation reads the state; take the read lock briefly, then the
	// transition lock. State can only move under the write lock, and control
	// events are serialized per instance, so re-checking under the
	// transition lock keeps the race window harmless: a guard that matched
	// is re-validated before the handler runs.
	for idx := range ts {
		t := ts[idx]
		if t.lock == Read {
			i.mu.RLock()
		} else {
			i.mu.Lock()
		}
		if !t.guard.Matches(i.state) {
			if t.lock == Read {
				i.mu.RUnlock()
			} else {
				i.mu.Unlock()
			}
			continue
		}
		i.counters.Transitions.Inc()
		i.trace(TraceMed, "%s %s [%s, %s]", k.kind, k.name, t.guard, t.lock)
		ctx := &Context{inst: i}
		run(t, ctx)
		if t.lock == Read {
			i.mu.RUnlock()
		} else {
			i.mu.Unlock()
		}
		return true
	}
	i.counters.Unhandled.Inc()
	i.trace(TraceMed, "unhandled %s %s in state %s", k.kind, k.name, i.state)
	return false
}

// handleFrame demultiplexes a lowest-layer frame into a recv transition.
func (i *Instance) handleFrame(src overlay.Address, frame []byte) {
	m, err := overlay.DecodeMessage(i.def.registry, frame)
	if err != nil {
		i.trace(TraceLow, "bad frame from %v: %v", src, err)
		return
	}
	i.counters.MsgsRecv.Inc()
	i.counters.BytesRecv.Add(uint64(len(frame)))
	ev := &MsgEvent{Msg: m, From: src}
	i.dispatch(eventKey{evRecv, m.MsgName()}, func(t transition, ctx *Context) {
		t.msg(ctx, ev)
	})
}

// sendFrame transmits an encoded frame on the lowest layer.
func (i *Instance) sendFrame(dst overlay.Address, msgName string, frame []byte, pri int) error {
	tr, err := i.node.transportFor(i.def, msgName, pri)
	if err != nil {
		return err
	}
	i.counters.MsgsSent.Inc()
	i.counters.BytesSent.Add(uint64(len(frame)))
	i.trace(TraceHigh, "send %s to %v on %s", msgName, dst, tr.Name())
	return tr.Send(dst, frame)
}

// schedTimer implements timer_sched / timer_resched.
func (i *Instance) schedTimer(name string, d time.Duration, replace bool) {
	ts, ok := i.timers[name]
	if !ok {
		panic(fmt.Sprintf("core: %s: undeclared timer %q", i.def.name, name))
	}
	if d <= 0 {
		d = ts.decl.period
	}
	if d <= 0 {
		panic(fmt.Sprintf("core: %s: timer %q scheduled with no period", i.def.name, name))
	}
	if ts.tm != nil {
		if !replace {
			return
		}
		ts.tm.Stop()
		ts.tm = nil
	}
	i.trace(TraceHigh, "timer %s in %v", name, d)
	i.armTimer(ts, name, d)
}

// armTimer schedules the timer callback through the node queue so timer
// transitions serialize with every other event. The generation stamp makes
// cancellations and reschedules win over already-queued fires.
func (i *Instance) armTimer(ts *timerState, name string, d time.Duration) {
	ts.gen++
	gen := ts.gen
	ts.tm = i.node.clock.After(d, func() {
		i.node.post(func() { i.fireTimer(ts, name, gen) })
	})
}

func (i *Instance) fireTimer(ts *timerState, name string, gen uint64) {
	if i.node.stopped || gen != ts.gen {
		return
	}
	ts.tm = nil
	i.counters.TimerFires.Inc()
	i.dispatch(eventKey{evTimer, name}, func(t transition, ctx *Context) {
		t.timer(ctx)
	})
	if ts.decl.periodic && ts.tm == nil {
		i.armTimer(ts, name, ts.decl.period)
	}
}

// dispatchAPI runs an API transition. Unhandled calls are counted and
// otherwise ignored, as an overlay with no matching transition would be.
func (i *Instance) dispatchAPI(call *APICall) {
	i.dispatch(eventKey{evAPI, call.Kind.String()}, func(t transition, ctx *Context) {
		t.api(ctx, call)
	})
}

// deliverUp implements the deliver() upcall from this layer.
func (i *Instance) deliverUp(payload []byte, typ int32, src overlay.Address) {
	i.counters.Delivered.Inc()
	if typ == ProtocolPayload && i.upper != nil {
		up := i.upper
		m, err := overlay.DecodeMessage(up.def.registry, payload)
		if err != nil {
			up.trace(TraceLow, "bad layered frame from %v: %v", src, err)
			return
		}
		up.counters.MsgsRecv.Inc()
		up.counters.BytesRecv.Add(uint64(len(payload)))
		ev := &MsgEvent{Msg: m, From: src}
		up.dispatch(eventKey{evRecv, m.MsgName()}, func(t transition, ctx *Context) {
			t.msg(ctx, ev)
		})
		return
	}
	if typ >= 0 && i.upper == nil {
		i.trace(TraceHigh, "deliver type %d from %v to application", typ, src)
		if h := i.node.handlers.Deliver; h != nil {
			h(payload, typ, src)
		}
		return
	}
	i.counters.Unhandled.Inc()
	i.trace(TraceLow, "undeliverable payload type %d from %v", typ, src)
}

// forwardUp implements the forward() upcall: it gives the layer above (or
// the application) the chance to redirect, rewrite, or quash a payload this
// layer is about to forward toward next.
func (i *Instance) forwardUp(payload []byte, typ int32, next overlay.Address, nextKey overlay.Key) (bool, overlay.Address, []byte) {
	i.counters.Forwarded.Inc()
	if typ == ProtocolPayload && i.upper != nil {
		up := i.upper
		m, err := overlay.DecodeMessage(up.def.registry, payload)
		if err != nil {
			up.trace(TraceLow, "bad layered frame in forward: %v", err)
			return true, next, payload
		}
		ev := &MsgEvent{Msg: m, NextHop: next, NextKey: nextKey}
		handled := up.dispatch(eventKey{evForward, m.MsgName()}, func(t transition, ctx *Context) {
			t.msg(ctx, ev)
		})
		if !handled {
			return true, next, payload
		}
		if ev.Quash {
			return false, next, payload
		}
		// The transition may have mutated the message; re-encode so the
		// rewritten form travels on (the paper: "intermediate nodes can
		// change the message or its destination").
		newPayload, err := overlay.EncodeMessage(up.def.registry, ev.Msg)
		if err != nil {
			return true, ev.NextHop, payload
		}
		return true, ev.NextHop, newPayload
	}
	if typ >= 0 && i.upper == nil {
		if h := i.node.handlers.Forward; h != nil {
			return h(payload, typ, next, nextKey), next, payload
		}
	}
	return true, next, payload
}

// notifyUp implements the notify() upcall.
func (i *Instance) notifyUp(nt overlay.NeighborType, neighbors []overlay.Address) {
	if i.upper != nil {
		i.upper.dispatchAPI(&APICall{Kind: overlay.APINotify, NbrType: nt, Neighbors: neighbors})
		return
	}
	if h := i.node.handlers.Notify; h != nil {
		h(nt, neighbors)
	}
}

// upcallExt implements the extensible upcall_ext.
func (i *Instance) upcallExt(op int, arg any) int {
	if i.upper != nil {
		call := &APICall{Kind: overlay.APIUpcallExt, Op: op, Arg: arg}
		i.upper.dispatchAPI(call)
		return call.Return
	}
	if h := i.node.handlers.Upcall; h != nil {
		return h(op, arg)
	}
	return 0
}

// stopTimers cancels all pending protocol timers.
func (i *Instance) stopTimers() {
	for _, ts := range i.timers {
		if ts.tm != nil {
			ts.tm.Stop()
			ts.tm = nil
		}
	}
}
