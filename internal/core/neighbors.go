package core

import (
	"math/rand"

	"macedon/internal/overlay"
)

// Neighbor is one entry in a neighbor list: the peer's address plus the
// per-neighbor fields the grammar lets specifications attach (delay and
// bandwidth estimates being the common ones, as in the Overcast example of
// §3.3.2; Value carries any protocol-specific struct).
type Neighbor struct {
	Addr      overlay.Address
	Key       overlay.Key
	Delay     float64 // round-trip estimate in milliseconds
	Bandwidth float64 // estimate in bits per second
	Value     any
}

// NeighborList is the engine's neighbor-management library (§3.3.2): an
// ordered set of neighbors with optional capacity. All the MACEDON
// primitives are here: Add (neighbor_add), Remove, Clear (neighbor_clear),
// Size (neighbor_size), Contains (neighbor_query), Entry (neighbor_entry),
// Random (neighbor_random).
type NeighborList struct {
	name       string
	max        int
	failDetect bool
	entries    []*Neighbor
	index      map[overlay.Address]*Neighbor
}

func newNeighborList(d neighborDecl) *NeighborList {
	return &NeighborList{
		name:       d.name,
		max:        d.max,
		failDetect: d.failDetect,
		index:      make(map[overlay.Address]*Neighbor),
	}
}

// Name returns the list's declared name.
func (l *NeighborList) Name() string { return l.name }

// Max returns the declared capacity (0 = unbounded).
func (l *NeighborList) Max() int { return l.max }

// FailDetect reports whether the engine monitors this list's members.
func (l *NeighborList) FailDetect() bool { return l.failDetect }

// Size returns the number of neighbors.
func (l *NeighborList) Size() int { return len(l.entries) }

// Full reports whether the list is at capacity.
func (l *NeighborList) Full() bool { return l.max > 0 && len(l.entries) >= l.max }

// Add inserts addr and returns its entry. If addr is already present the
// existing entry is returned; if the list is full, nil.
func (l *NeighborList) Add(addr overlay.Address) *Neighbor {
	if n, ok := l.index[addr]; ok {
		return n
	}
	if l.Full() {
		return nil
	}
	n := &Neighbor{Addr: addr, Key: overlay.HashAddress(addr)}
	l.entries = append(l.entries, n)
	l.index[addr] = n
	return n
}

// Remove deletes addr, reporting whether it was present.
func (l *NeighborList) Remove(addr overlay.Address) bool {
	n, ok := l.index[addr]
	if !ok {
		return false
	}
	delete(l.index, addr)
	for i, e := range l.entries {
		if e == n {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			break
		}
	}
	return true
}

// Clear empties the list.
func (l *NeighborList) Clear() {
	l.entries = l.entries[:0]
	l.index = make(map[overlay.Address]*Neighbor)
}

// Contains reports whether addr is in the list.
func (l *NeighborList) Contains(addr overlay.Address) bool {
	_, ok := l.index[addr]
	return ok
}

// Entry returns addr's entry, or nil.
func (l *NeighborList) Entry(addr overlay.Address) *Neighbor { return l.index[addr] }

// Random returns a uniformly random entry, or nil if empty.
func (l *NeighborList) Random(rng *rand.Rand) *Neighbor {
	if len(l.entries) == 0 {
		return nil
	}
	return l.entries[rng.Intn(len(l.entries))]
}

// First returns the first entry in insertion order, or nil.
func (l *NeighborList) First() *Neighbor {
	if len(l.entries) == 0 {
		return nil
	}
	return l.entries[0]
}

// Entries returns the entries in insertion order. The slice is a copy; the
// pointed-to neighbors are live.
func (l *NeighborList) Entries() []*Neighbor {
	return append([]*Neighbor(nil), l.entries...)
}

// Addrs returns the member addresses in insertion order.
func (l *NeighborList) Addrs() []overlay.Address {
	out := make([]overlay.Address, len(l.entries))
	for i, e := range l.entries {
		out[i] = e.Addr
	}
	return out
}
