package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/substrate"
	"macedon/internal/transport"
)

// hbTransport is the engine's private UDP channel for failure-detection
// heartbeats; it is always transport id 0 on every node.
const hbTransport = "@mac"

// Heartbeat datagram kinds.
const (
	hbRequest  = 0
	hbResponse = 1
)

// Config assembles one overlay node.
type Config struct {
	// Addr is the node's address; it must be attached to the network.
	Addr overlay.Address
	// Net supplies the clock and datagram endpoint.
	Net substrate.Network
	// Stack lists the protocol factories, lowest layer first. "protocol
	// scribe uses pastry" is Stack{pastry.New, scribe.New}.
	Stack []Factory
	// Bootstrap is the well-known bootstrap node passed to init transitions.
	Bootstrap overlay.Address

	// Seed for the node's PRNG; 0 derives one from the address.
	Seed int64

	// TraceLevel and TraceWriter configure engine tracing (default: off to
	// stderr).
	TraceLevel  TraceLevel
	TraceWriter io.Writer

	// Failure-detector parameters (§3.1): silence > HeartbeatAfter triggers
	// a heartbeat probe; silence > FailAfter invokes the error transition.
	// Zero values select 5 s and 20 s; Sweep defaults to 1 s.
	HeartbeatAfter time.Duration
	FailAfter      time.Duration
	Sweep          time.Duration
}

// Node is one overlay participant: a stack of protocol instances over the
// transport subsystem, plus the application-facing MACEDON API of Figure 3.
type Node struct {
	addr overlay.Address
	key  overlay.Key

	clock substrate.Clock
	mux   *transport.Mux
	rng   *rand.Rand

	stack      []*Instance
	transports map[string]transport.Transport
	prio       []transport.Transport // declaration order = priority order
	handlers   Handlers
	tracer     *Tracer
	traceLevel TraceLevel

	hbAfter, failAfter, sweepEvery time.Duration
	lastHeard                      map[overlay.Address]time.Time
	hbProbed                       map[overlay.Address]bool
	sweepTimer                     substrate.Timer

	// Deferred-execution queue: every engine event (frame, timer, API call,
	// cross-layer dispatch) runs through here, one at a time per node.
	execMu   chan struct{} // buffered(1) semaphore usable from any goroutine
	queue    []func()
	queueMu  chan struct{}
	draining bool

	stopped bool
}

// NewNode builds and starts a node: transports are created, instances
// defined and wired, and every layer's init transition dispatched bottom-up.
func NewNode(cfg Config) (*Node, error) {
	if len(cfg.Stack) == 0 {
		return nil, errors.New("core: empty protocol stack")
	}
	if cfg.Net == nil {
		return nil, errors.New("core: no network substrate")
	}
	ep, err := cfg.Net.Endpoint(cfg.Addr)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.Addr)*2654435761 + 1
	}
	tw := cfg.TraceWriter
	if tw == nil {
		tw = os.Stderr
	}
	n := &Node{
		addr:       cfg.Addr,
		key:        overlay.HashAddress(cfg.Addr),
		clock:      cfg.Net,
		rng:        rand.New(rand.NewSource(seed)),
		transports: make(map[string]transport.Transport),
		tracer:     newTracer(tw, cfg.TraceLevel),
		traceLevel: cfg.TraceLevel,
		hbAfter:    cfg.HeartbeatAfter,
		failAfter:  cfg.FailAfter,
		sweepEvery: cfg.Sweep,
		lastHeard:  make(map[overlay.Address]time.Time),
		hbProbed:   make(map[overlay.Address]bool),
		queueMu:    make(chan struct{}, 1),
	}
	n.queueMu <- struct{}{}
	if n.hbAfter <= 0 {
		n.hbAfter = 5 * time.Second
	}
	if n.failAfter <= 0 {
		n.failAfter = 20 * time.Second
	}
	if n.sweepEvery <= 0 {
		n.sweepEvery = time.Second
	}

	n.mux = transport.NewMux(ep, cfg.Net)
	n.mux.SetRecv(n.onFrame)
	hb := n.mux.AddUDP(hbTransport)
	n.transports[hbTransport] = hb

	for _, f := range cfg.Stack {
		inst, err := newInstance(n, f())
		if err != nil {
			return nil, err
		}
		n.stack = append(n.stack, inst)
	}
	for i := range n.stack {
		if i > 0 {
			n.stack[i].lower = n.stack[i-1]
			n.stack[i-1].upper = n.stack[i]
		}
	}
	// Only the lowest layer's transports are instantiated; higher layers'
	// messages ride the base layer (§3.1).
	for _, td := range n.stack[0].def.transports {
		var t transport.Transport
		switch td.kind {
		case overlay.TCP:
			t = n.mux.AddTCP(td.name)
		case overlay.UDP:
			t = n.mux.AddUDP(td.name)
		case overlay.SWP:
			t = n.mux.AddSWP(td.name, td.window)
		}
		n.transports[td.name] = t
		n.prio = append(n.prio, t)
	}

	// Init transitions run bottom-up, then the failure-detector sweep
	// starts.
	boot := cfg.Bootstrap
	n.post(func() {
		for _, inst := range n.stack {
			inst.dispatchAPI(&APICall{Kind: overlay.APIInit, Bootstrap: boot})
		}
	})
	n.sweepTimer = n.clock.After(n.sweepEvery, n.sweep)
	return n, nil
}

// post enqueues fn on the node's serialized execution queue. If the queue is
// idle, fn (and everything it posts) runs before post returns; otherwise it
// runs when the current event chain drains. This is what makes every
// cross-layer call deferred and every node single-logical-threaded.
func (n *Node) post(fn func()) {
	<-n.queueMu
	n.queue = append(n.queue, fn)
	if n.draining {
		n.queueMu <- struct{}{}
		return
	}
	n.draining = true
	for len(n.queue) > 0 {
		next := n.queue[0]
		n.queue = n.queue[1:]
		n.queueMu <- struct{}{}
		next()
		<-n.queueMu
	}
	n.draining = false
	n.queueMu <- struct{}{}
}

// Exec runs fn on the node's serialized execution queue and waits for it to
// finish: the safe way for code outside the event loop — live deployments
// and tests polling protocol state while socket goroutines dispatch — to
// inspect or mutate protocol instances. Must not be called from within the
// node's own event handlers (it would deadlock waiting on itself).
func (n *Node) Exec(fn func()) {
	done := make(chan struct{})
	n.post(func() {
		fn()
		close(done)
	})
	<-done
}

// Addr returns the node's address.
func (n *Node) Addr() overlay.Address { return n.addr }

// Key returns the node's hash key.
func (n *Node) Key() overlay.Key { return n.key }

// Stack returns the protocol instances, lowest first.
func (n *Node) Stack() []*Instance { return append([]*Instance(nil), n.stack...) }

// Instance returns the named protocol instance, or nil.
func (n *Node) Instance(proto string) *Instance {
	for _, i := range n.stack {
		if i.def.name == proto {
			return i
		}
	}
	return nil
}

// Top returns the highest-layer instance: the one the application talks to.
func (n *Node) Top() *Instance { return n.stack[len(n.stack)-1] }

// RegisterHandlers installs the application's upcall handlers
// (macedon_register_handlers).
func (n *Node) RegisterHandlers(h Handlers) { n.handlers = h }

// apiToTop defers an API call into the top instance.
func (n *Node) apiToTop(call *APICall) {
	top := n.Top()
	n.post(func() { top.dispatchAPI(call) })
}

// Route sends payload toward the key dest through the overlay
// (macedon_route).
func (n *Node) Route(dest overlay.Key, payload []byte, typ int32, pri int) error {
	if typ < 0 {
		return fmt.Errorf("core: application payload types must be >= 0 (got %d)", typ)
	}
	n.apiToTop(&APICall{Kind: overlay.APIRoute, Dest: dest, Payload: payload, PayloadType: typ, Priority: pri})
	return nil
}

// RouteIP sends payload directly to a node address (macedon_routeIP).
func (n *Node) RouteIP(dst overlay.Address, payload []byte, typ int32, pri int) error {
	if typ < 0 {
		return fmt.Errorf("core: application payload types must be >= 0 (got %d)", typ)
	}
	n.apiToTop(&APICall{Kind: overlay.APIRouteIP, DestIP: dst, Payload: payload, PayloadType: typ, Priority: pri})
	return nil
}

// Multicast disseminates payload to a session (macedon_multicast).
func (n *Node) Multicast(group overlay.Key, payload []byte, typ int32, pri int) error {
	if typ < 0 {
		return fmt.Errorf("core: application payload types must be >= 0 (got %d)", typ)
	}
	n.apiToTop(&APICall{Kind: overlay.APIMulticast, Group: group, Payload: payload, PayloadType: typ, Priority: pri})
	return nil
}

// Anycast delivers payload to one member of a session (macedon_anycast).
func (n *Node) Anycast(group overlay.Key, payload []byte, typ int32, pri int) error {
	if typ < 0 {
		return fmt.Errorf("core: application payload types must be >= 0 (got %d)", typ)
	}
	n.apiToTop(&APICall{Kind: overlay.APIAnycast, Group: group, Payload: payload, PayloadType: typ, Priority: pri})
	return nil
}

// Collect sends payload up the session tree toward the root
// (macedon_collect).
func (n *Node) Collect(group overlay.Key, payload []byte, typ int32, pri int) error {
	if typ < 0 {
		return fmt.Errorf("core: application payload types must be >= 0 (got %d)", typ)
	}
	n.apiToTop(&APICall{Kind: overlay.APICollect, Group: group, Payload: payload, PayloadType: typ, Priority: pri})
	return nil
}

// CreateGroup creates a multicast session (macedon_create_group).
func (n *Node) CreateGroup(group overlay.Key) error {
	n.apiToTop(&APICall{Kind: overlay.APICreateGroup, Group: group})
	return nil
}

// Join subscribes to a session (macedon_join).
func (n *Node) Join(group overlay.Key) error {
	n.apiToTop(&APICall{Kind: overlay.APIJoin, Group: group})
	return nil
}

// Leave unsubscribes from a session (macedon_leave).
func (n *Node) Leave(group overlay.Key) error {
	n.apiToTop(&APICall{Kind: overlay.APILeave, Group: group})
	return nil
}

// Downcall issues an extensible downcall into the top protocol.
func (n *Node) Downcall(op int, arg any) {
	n.apiToTop(&APICall{Kind: overlay.APIDowncallExt, Op: op, Arg: arg})
}

// Counters sums the engine counters across the stack.
func (n *Node) Counters() Counters {
	var sum Counters
	for _, i := range n.stack {
		c := i.Counters()
		sum.MsgsSent += c.MsgsSent
		sum.MsgsRecv += c.MsgsRecv
		sum.BytesSent += c.BytesSent
		sum.BytesRecv += c.BytesRecv
		sum.TimerFires += c.TimerFires
		sum.Transitions += c.Transitions
		sum.Unhandled += c.Unhandled
		sum.Delivered += c.Delivered
		sum.Forwarded += c.Forwarded
		sum.Failures += c.Failures
	}
	return sum
}

// Transport returns a named lowest-layer transport instance (for tests).
func (n *Node) Transport(name string) (transport.Transport, bool) {
	t, ok := n.transports[name]
	return t, ok
}

// Stop cancels timers and closes the transports. The node must not be used
// afterwards.
func (n *Node) Stop() {
	n.post(func() {
		n.stopped = true
		if n.sweepTimer != nil {
			n.sweepTimer.Stop()
		}
		for _, i := range n.stack {
			i.stopTimers()
		}
		n.mux.Close()
	})
}

// transportFor resolves a message's transport by priority override or
// declaration binding.
func (n *Node) transportFor(d *Def, msgName string, pri int) (transport.Transport, error) {
	if pri >= 0 && pri < len(n.prio) {
		return n.prio[pri], nil
	}
	md, ok := d.messages[msgName]
	if !ok {
		return nil, fmt.Errorf("core: %s: message %q not declared", d.name, msgName)
	}
	if md.transport == "" {
		return nil, fmt.Errorf("core: %s: message %q has no transport binding and no priority was given", d.name, msgName)
	}
	t, ok := n.transports[md.transport]
	if !ok {
		return nil, fmt.Errorf("core: %s: transport %q not instantiated", d.name, md.transport)
	}
	return t, nil
}

// onFrame is the mux receive path: heartbeat bookkeeping plus lowest-layer
// demultiplexing, all through the node queue.
func (n *Node) onFrame(tname string, src overlay.Address, frame []byte) {
	// Frames are only valid during the callback: copy before deferring.
	buf := append([]byte(nil), frame...)
	n.post(func() {
		if n.stopped {
			return
		}
		n.lastHeard[src] = n.clock.Now()
		delete(n.hbProbed, src)
		if tname == hbTransport {
			n.handleHeartbeat(src, buf)
			return
		}
		n.stack[0].handleFrame(src, buf)
	})
}

func (n *Node) handleHeartbeat(src overlay.Address, frame []byte) {
	if len(frame) < 1 {
		return
	}
	if frame[0] == hbRequest {
		_ = n.transports[hbTransport].Send(src, []byte{hbResponse})
	}
}

// sweep is the failure detector (§3.1): for every fail_detect neighbor list
// member, silence beyond HeartbeatAfter solicits communication; silence
// beyond FailAfter removes the peer and invokes the error transition.
func (n *Node) sweep() {
	n.post(func() {
		if n.stopped {
			return
		}
		now := n.clock.Now()
		var failed []overlay.Address
		for _, inst := range n.stack {
			for _, l := range inst.nbrs {
				if !l.failDetect {
					continue
				}
				for _, nb := range l.Entries() {
					heard, ok := n.lastHeard[nb.Addr]
					if !ok {
						// Never heard: start the clock at first sight.
						n.lastHeard[nb.Addr] = now
						continue
					}
					silence := now.Sub(heard)
					switch {
					case silence > n.failAfter && n.hbProbed[nb.Addr]:
						// Probed and still silent: dead. A failure verdict
						// requires an unanswered probe, not just a stale
						// lastHeard entry: protocols re-add live peers whose
						// timestamp predates their membership (successor
						// lists rebuilt from a remote node's view do this
						// every stabilize round), and those must get a probe
						// cycle — not an instant, perpetually repeating
						// failure — before the error transition fires.
						l.Remove(nb.Addr)
						failed = append(failed, nb.Addr)
						inst.counters.Failures.Inc()
						inst.trace(TraceLow, "failure of %v detected on %s", nb.Addr, l.Name())
						inst.dispatchAPI(&APICall{Kind: overlay.APIError, Failed: nb.Addr})
						if h := n.handlers.Failure; h != nil {
							h(inst.def.name, nb.Addr)
						}
					case silence > n.hbAfter && !n.hbProbed[nb.Addr]:
						n.hbProbed[nb.Addr] = true
						_ = n.transports[hbTransport].Send(nb.Addr, []byte{hbRequest})
					}
				}
			}
		}
		// The verdicts consume the probes only after every list is swept,
		// so a peer monitored by several lists (or stacked instances) fails
		// on all of them in the same sweep; if it is ever re-added (a
		// revived node resurfacing in a successor list), it gets a fresh
		// probe cycle instead of failing on a stale flag forever.
		for _, a := range failed {
			delete(n.hbProbed, a)
		}
		n.sweepTimer = n.clock.After(n.sweepEvery, n.sweep)
	})
}
