package core

// Checkpoint/fork support. A core.Node is forkable through
// internal/statecopy: capturing the node pointer records every piece of
// state the engine mutates while events execute — FSM state, protocol agent
// fields, neighbor lists, timer generations, engine counters, the
// failure-detector's lastHeard/probe books, the node PRNG, and the whole
// transport subsystem underneath (mux incarnation bookkeeping, reliable
// connections with congestion/RTT/stream state, UDP reassembly buffers).
// Restoring rewrites that state into the same objects, which keeps the
// pointers captured by queued scheduler events valid (see
// internal/statecopy's package comment for the walk semantics).
//
// The contract a capture relies on:
//
//   - Quiescence: capture and restore happen between scheduler RunFor
//     windows, when the node's deferred-execution queue has fully drained
//     and no transition is mid-flight (every lock unlocked, the queue
//     semaphore holding its idle token).
//   - Substrate handles are opaque: the node's clock and endpoints snapshot
//     themselves through the emulator's own Snapshot/Restore; timers queued
//     in the event heaps are rewound by the scheduler snapshot.
//   - Protocol agents keep their mutable state reachable from the agent
//     struct (fields, maps, slices, pointers). All bundled and generated
//     overlays do; an agent squirreling state away inside a long-lived
//     closure would escape the walk.
//
// Two engine types opt out of the walk entirely:

// StateCopyOpaque marks the protocol definition as shared across fork
// branches: a Def is immutable once newInstance has validated it (the
// transition table, message registry, and declarations never change at run
// time), so rewinding a branch never needs to touch it.
func (d *Def) StateCopyOpaque() {}

// StateCopyOpaque marks the tracer as shared across fork branches: its only
// state is the output writer and level, which belong to the experiment, not
// to the rewound timeline.
func (t *Tracer) StateCopyOpaque() {}
