package core

import (
	"fmt"
	"io"
	"time"

	"macedon/internal/obs"
)

// TraceLevel is the grammar's four-level tracing header ("trace_ off | low |
// med | high").
type TraceLevel uint8

const (
	// TraceOff disables tracing.
	TraceOff TraceLevel = iota
	// TraceLow records state changes and failures.
	TraceLow
	// TraceMed additionally records every transition dispatch.
	TraceMed
	// TraceHigh additionally records sends, timers, and upcalls.
	TraceHigh
)

// String returns the grammar keyword for the level.
func (l TraceLevel) String() string {
	switch l {
	case TraceOff:
		return "off"
	case TraceLow:
		return "low"
	case TraceMed:
		return "med"
	case TraceHigh:
		return "high"
	}
	return fmt.Sprintf("TraceLevel(%d)", uint8(l))
}

// obsLevel maps the grammar's trace levels onto obs log levels: low is the
// important stuff (state changes, failures), med/high are engine debug.
func obsLevel(l TraceLevel) obs.Level {
	if l == TraceLow {
		return obs.LevelInfo
	}
	return obs.LevelDebug
}

// traceEpoch anchors trace record timestamps: Record.At is the offset from
// the Unix epoch, so both wall clocks and the emulator's virtual clock
// (which also starts at a fixed origin) produce stable offsets.
var traceEpoch = time.Unix(0, 0)

// tracerRing bounds how many recent trace records a tracer retains for
// structured inspection (`/debug/obs` on live agents).
const tracerRing = 512

// Tracer serializes trace lines from a node. It is a thin shim over an
// obs.EventLog: lines ride the obs pipeline (and stay queryable as
// structured records), while a render hook preserves the historical
// `15:04:05.000000 message` byte format the golden traces pin down.
type Tracer struct {
	log   *obs.EventLog
	level TraceLevel
	sink  bool // a writer is attached
}

func newTracer(w io.Writer, level TraceLevel) *Tracer {
	l := obs.NewEventLog(nil, obs.LevelDebug)
	l.SetCap(tracerRing)
	l.SetRender(func(r obs.Record) string {
		if len(r.Fields) >= 2 {
			return r.Fields[0].Value + " " + r.Fields[1].Value
		}
		return r.String()
	})
	if w != nil {
		l.SetWriter(w)
	}
	return &Tracer{log: l, level: level, sink: w != nil}
}

// Enabled reports whether lines at level l are emitted.
func (t *Tracer) Enabled(l TraceLevel) bool {
	return t != nil && t.sink && l != TraceOff && l <= t.level
}

// Events exposes the tracer's structured record log.
func (t *Tracer) Events() *obs.EventLog {
	if t == nil {
		return nil
	}
	return t.log
}

func (t *Tracer) tracef(l TraceLevel, at time.Time, format string, args ...any) {
	if !t.Enabled(l) {
		return
	}
	t.log.EmitAt(at.Sub(traceEpoch), 0, obsLevel(l), "trace",
		obs.F("at", at.Format("15:04:05.000000")),
		obs.F("msg", fmt.Sprintf(format, args...)))
}

// Counters aggregates per-instance engine statistics: the built-in metric
// tracking the paper lists among MACEDON's evaluation facilities. It is a
// plain snapshot struct; the live accumulator behind it is counterSet.
type Counters struct {
	MsgsSent    uint64
	MsgsRecv    uint64
	BytesSent   uint64
	BytesRecv   uint64
	TimerFires  uint64
	Transitions uint64
	Unhandled   uint64 // events with no matching transition in this state
	Delivered   uint64 // deliver upcalls issued
	Forwarded   uint64 // forward upcalls issued
	Failures    uint64 // error transitions invoked by the failure detector
}

// counterSet is the live per-instance accumulator: one obs.Counter per
// statistic, incremented atomically so concurrent readers (live agents
// polling metrics while socket goroutines dispatch, the sharded emulator
// under read-locked data transitions) never race the hot path. obs.Counter
// is a plain named uint64, which is what lets statecopy checkpoint/restore
// rewind these across sweep forks.
type counterSet struct {
	MsgsSent    obs.Counter
	MsgsRecv    obs.Counter
	BytesSent   obs.Counter
	BytesRecv   obs.Counter
	TimerFires  obs.Counter
	Transitions obs.Counter
	Unhandled   obs.Counter
	Delivered   obs.Counter
	Forwarded   obs.Counter
	Failures    obs.Counter
}

// snapshot loads every counter atomically into the public snapshot struct.
func (c *counterSet) snapshot() Counters {
	return Counters{
		MsgsSent:    c.MsgsSent.Load(),
		MsgsRecv:    c.MsgsRecv.Load(),
		BytesSent:   c.BytesSent.Load(),
		BytesRecv:   c.BytesRecv.Load(),
		TimerFires:  c.TimerFires.Load(),
		Transitions: c.Transitions.Load(),
		Unhandled:   c.Unhandled.Load(),
		Delivered:   c.Delivered.Load(),
		Forwarded:   c.Forwarded.Load(),
		Failures:    c.Failures.Load(),
	}
}
