package core

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceLevel is the grammar's four-level tracing header ("trace_ off | low |
// med | high").
type TraceLevel uint8

const (
	// TraceOff disables tracing.
	TraceOff TraceLevel = iota
	// TraceLow records state changes and failures.
	TraceLow
	// TraceMed additionally records every transition dispatch.
	TraceMed
	// TraceHigh additionally records sends, timers, and upcalls.
	TraceHigh
)

// String returns the grammar keyword for the level.
func (l TraceLevel) String() string {
	switch l {
	case TraceOff:
		return "off"
	case TraceLow:
		return "low"
	case TraceMed:
		return "med"
	case TraceHigh:
		return "high"
	}
	return fmt.Sprintf("TraceLevel(%d)", uint8(l))
}

// Tracer serializes trace lines from a node. One tracer per node; cheap when
// the level filters everything out.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	level TraceLevel
}

func newTracer(w io.Writer, level TraceLevel) *Tracer {
	return &Tracer{w: w, level: level}
}

// Enabled reports whether lines at level l are emitted.
func (t *Tracer) Enabled(l TraceLevel) bool {
	return t != nil && t.w != nil && l != TraceOff && l <= t.level
}

func (t *Tracer) tracef(l TraceLevel, at time.Time, format string, args ...any) {
	if !t.Enabled(l) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "%s %s\n", at.Format("15:04:05.000000"), fmt.Sprintf(format, args...))
}

// Counters aggregates per-instance engine statistics: the built-in metric
// tracking the paper lists among MACEDON's evaluation facilities.
type Counters struct {
	MsgsSent    uint64
	MsgsRecv    uint64
	BytesSent   uint64
	BytesRecv   uint64
	TimerFires  uint64
	Transitions uint64
	Unhandled   uint64 // events with no matching transition in this state
	Delivered   uint64 // deliver upcalls issued
	Forwarded   uint64 // forward upcalls issued
	Failures    uint64 // error transitions invoked by the failure detector
}
