package deploy

import (
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/livenet"
	"macedon/internal/overlay"
)

// RunAgent is the body of `macedon agent`: one overlay node in one OS
// process, remote-controlled by a deploy controller. It dials the
// controller, introduces itself, receives its AgentConfig, binds its
// livenet socket, runs the protocol stack, and serves control commands
// until told to quit or the control connection drops (the controller
// died — a headless agent exits rather than lingering).
func RunAgent(controller string, node int, logw io.Writer) error {
	if logw == nil {
		logw = io.Discard
	}
	tc, err := net.Dial("tcp", controller)
	if err != nil {
		return fmt.Errorf("deploy agent: dial controller: %w", err)
	}
	conn := NewConn(tc)
	defer conn.Close()
	if err := conn.Send(&Msg{Kind: KindHello, Hello: &Hello{Node: node, Pid: os.Getpid()}}); err != nil {
		return err
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("deploy agent: awaiting config: %w", err)
	}
	if m.Kind != KindConfig || m.Config == nil {
		return fmt.Errorf("deploy agent: expected config, got %q", m.Kind)
	}
	cfg := m.Config
	fmt.Fprintf(logw, "agent %d: pid %d addr %v proto %s\n", node, os.Getpid(), cfg.Addr, cfg.Protocol)

	a := &agent{conn: conn, cfg: cfg, logw: logw}
	if err := a.start(); err != nil {
		return err
	}
	defer a.stop()
	return a.serve()
}

type agent struct {
	conn *Conn
	cfg  *AgentConfig
	logw io.Writer
	net  *livenet.Network
	node *core.Node
}

// start builds the livenet substrate and the overlay node.
func (a *agent) start() error {
	table := make(map[overlay.Address]string, len(a.cfg.Table))
	for k, hp := range a.cfg.Table {
		ai, err := strconv.ParseUint(k, 10, 32)
		if err != nil {
			return fmt.Errorf("deploy agent: bad table address %q", k)
		}
		table[overlay.Address(ai)] = hp
	}
	a.net = livenet.New("127.0.0.1", 0, livenet.WithTable(table))
	if a.cfg.Shape != nil {
		a.applyShape(a.cfg.Shape)
	}
	stack, err := harness.ScenarioStack(a.cfg.Protocol)
	if err != nil {
		return err
	}
	node, err := core.NewNode(core.Config{
		Addr:           overlay.Address(a.cfg.Addr),
		Net:            a.net,
		Stack:          stack,
		Bootstrap:      overlay.Address(a.cfg.Bootstrap),
		HeartbeatAfter: time.Duration(a.cfg.HeartbeatAfterNs),
		FailAfter:      time.Duration(a.cfg.FailAfterNs),
	})
	if err != nil {
		a.net.Close()
		return err
	}
	a.node = node
	// Stream the node's life back to the controller: deliveries and
	// forwards keyed by workload op id, plus state transitions and failure
	// verdicts for the per-node event trace.
	node.RegisterHandlers(core.Handlers{
		Deliver: func(payload []byte, typ int32, src overlay.Address) {
			a.event(&Event{Kind: EvDeliver, Op: int(typ), AtUnixNano: time.Now().UnixNano()})
		},
		Forward: func(payload []byte, typ int32, next overlay.Address, nextKey overlay.Key) bool {
			a.event(&Event{Kind: EvForward, Op: int(typ), AtUnixNano: time.Now().UnixNano()})
			return true
		},
		StateChange: func(proto string, from, to core.State) {
			a.event(&Event{Kind: EvState, AtUnixNano: time.Now().UnixNano(),
				Proto: proto, From: string(from), State: string(to)})
		},
		Failure: func(proto string, peer overlay.Address) {
			a.event(&Event{Kind: EvFail, AtUnixNano: time.Now().UnixNano(),
				Proto: proto, Peer: uint32(peer)})
		},
	})
	if a.cfg.HasGroup {
		if a.cfg.CreateGroup {
			_ = node.CreateGroup(overlay.Key(a.cfg.Group))
		} else {
			_ = node.Join(overlay.Key(a.cfg.Group))
		}
	}
	return nil
}

func (a *agent) stop() {
	if a.node != nil {
		a.node.Stop()
	}
	if a.net != nil {
		a.net.Close()
	}
}

// serve is the command loop. It returns nil on quit and the read error
// when the control connection drops.
func (a *agent) serve() error {
	for {
		m, err := a.conn.Recv()
		if err != nil {
			return fmt.Errorf("deploy agent: control connection lost: %w", err)
		}
		switch m.Kind {
		case KindOp:
			a.runOp(m.Op)
		case KindShape:
			a.applyShape(m.Shape)
		case KindPoll:
			_ = a.conn.Send(&Msg{Kind: KindMetrics, Metrics: a.metrics()})
		case KindQuit:
			fmt.Fprintf(a.logw, "agent %d: quit\n", a.cfg.Node)
			return nil
		default:
			fmt.Fprintf(a.logw, "agent %d: unknown control message %q\n", a.cfg.Node, m.Kind)
		}
	}
}

func (a *agent) runOp(op *OpCmd) {
	if op == nil {
		return
	}
	size := op.Size
	if size < 8 {
		size = 8
	}
	switch op.Kind {
	case "lookup":
		_ = a.node.Route(overlay.Key(op.Key), make([]byte, size), int32(op.ID), overlay.PriorityDefault)
	case "multicast":
		_ = a.node.Multicast(overlay.Key(a.cfg.Group), make([]byte, size), int32(op.ID), overlay.PriorityDefault)
	default:
		fmt.Fprintf(a.logw, "agent %d: unknown op kind %q\n", a.cfg.Node, op.Kind)
	}
}

// applyShape replaces the network's whole shaping state with the command's.
func (a *agent) applyShape(s *ShapeCmd) {
	a.net.ClearShaping()
	if s == nil {
		return
	}
	for _, r := range s.Rules {
		a.net.SetPeerShaping(overlay.Address(r.Peer), livenet.Shaping{
			Drop: r.Drop, Loss: r.Loss, Delay: time.Duration(r.DelayNs),
		})
	}
	if d := s.Default; d != nil {
		a.net.SetDefaultShaping(&livenet.Shaping{Drop: d.Drop, Loss: d.Loss, Delay: time.Duration(d.DelayNs)})
	}
}

// metrics snapshots the node's engine counters and the socket counters.
// Instance counters take their own read locks, so sampling from the
// control goroutine is safe while the node dispatches.
func (a *agent) metrics() *Metrics {
	c := a.node.Counters()
	s := a.net.Stats()
	return &Metrics{
		MsgsSent: c.MsgsSent, MsgsRecv: c.MsgsRecv,
		BytesSent: c.BytesSent, BytesRecv: c.BytesRecv,
		Failures: c.Failures,
		NetSent:  s.Sent, NetRecv: s.Recv,
		NetBytesSent: s.BytesSent, NetBytesRecv: s.BytesRecv,
		ShapeDrops: s.ShapeDrops, LossDrops: s.LossDrops,
	}
}

// event streams one event; send failures are ignored (the controller may
// be tearing the run down while deliveries still fire).
func (a *agent) event(ev *Event) {
	_ = a.conn.Send(&Msg{Kind: KindEvent, Event: ev})
}
