package deploy

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"macedon/internal/check"
	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/livenet"
	"macedon/internal/obs"
	"macedon/internal/overlay"
)

// RunAgent is the body of `macedon agent`: one overlay node in one OS
// process, remote-controlled by a deploy controller. It dials the
// controller, introduces itself, receives its AgentConfig, binds its
// livenet socket, runs the protocol stack, and serves control commands
// until told to quit or the control connection drops (the controller
// died — a headless agent exits rather than lingering).
func RunAgent(controller string, node int, logw io.Writer) error {
	if logw == nil {
		logw = io.Discard
	}
	tc, err := net.Dial("tcp", controller)
	if err != nil {
		return fmt.Errorf("deploy agent: dial controller: %w", err)
	}
	conn := NewConn(tc)
	defer conn.Close()
	if err := conn.Send(&Msg{Kind: KindHello, Hello: &Hello{Node: node, Pid: os.Getpid()}}); err != nil {
		return err
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("deploy agent: awaiting config: %w", err)
	}
	if m.Kind != KindConfig || m.Config == nil {
		return fmt.Errorf("deploy agent: expected config, got %q", m.Kind)
	}
	cfg := m.Config
	fmt.Fprintf(logw, "agent %d: pid %d addr %v proto %s\n", node, os.Getpid(), cfg.Addr, cfg.Protocol)

	a := &agent{conn: conn, cfg: cfg, logw: logw}
	if err := a.start(); err != nil {
		return err
	}
	defer a.stop()
	return a.serve()
}

type agent struct {
	conn *Conn
	cfg  *AgentConfig
	logw io.Writer
	net  *livenet.Network
	node *core.Node

	// Observability plane: reg serves /metrics, events is the sampled
	// structured log (ring for /debug/obs, teed to the controller as EvObs
	// frames when cfg.Obs), httpLn is the /metrics listener.
	reg     *obs.Registry
	events  *obs.EventLog
	started time.Time
	httpLn  net.Listener

	// Push-based metric shipping (cfg.Obs): the agent periodically sends
	// EvMetrics delta expositions so the controller needs no scrape path.
	// pushPrev is the full page the last shipped delta was measured against,
	// pushLimit admits the periodic pushes (the pre-poll flush bypasses it),
	// pushStop tears the ticker goroutine down.
	pushMu    sync.Mutex
	pushPrev  *obs.Scrape
	pushLimit *obs.TokenBucket
	pushStop  chan struct{}
}

// start builds the livenet substrate and the overlay node.
func (a *agent) start() error {
	table := make(map[overlay.Address]string, len(a.cfg.Table))
	for k, hp := range a.cfg.Table {
		ai, err := strconv.ParseUint(k, 10, 32)
		if err != nil {
			return fmt.Errorf("deploy agent: bad table address %q", k)
		}
		table[overlay.Address(ai)] = hp
	}
	a.net = livenet.New("127.0.0.1", 0, livenet.WithTable(table))
	if a.cfg.Shape != nil {
		a.applyShape(a.cfg.Shape)
	}
	stack, err := harness.ScenarioStack(a.cfg.Protocol)
	if err != nil {
		return err
	}
	node, err := core.NewNode(core.Config{
		Addr:           overlay.Address(a.cfg.Addr),
		Net:            a.net,
		Stack:          stack,
		Bootstrap:      overlay.Address(a.cfg.Bootstrap),
		HeartbeatAfter: time.Duration(a.cfg.HeartbeatAfterNs),
		FailAfter:      time.Duration(a.cfg.FailAfterNs),
	})
	if err != nil {
		a.net.Close()
		return err
	}
	a.node = node
	a.startObs()
	// Stream the node's life back to the controller: deliveries and
	// forwards keyed by workload op id, plus state transitions and failure
	// verdicts for the per-node event trace.
	node.RegisterHandlers(core.Handlers{
		Deliver: func(payload []byte, typ int32, src overlay.Address) {
			a.event(&Event{Kind: EvDeliver, Op: int(typ), AtUnixNano: time.Now().UnixNano()})
			a.obsEvent(uint64(uint32(typ)), obs.LevelDebug, "deliver",
				obs.F("op", typ), obs.F("src", src))
		},
		Forward: func(payload []byte, typ int32, next overlay.Address, nextKey overlay.Key) bool {
			a.event(&Event{Kind: EvForward, Op: int(typ), AtUnixNano: time.Now().UnixNano(),
				Next: uint32(next)})
			a.obsEvent(uint64(uint32(typ)), obs.LevelDebug, "forward",
				obs.F("op", typ), obs.F("next", next))
			return true
		},
		StateChange: func(proto string, from, to core.State) {
			a.event(&Event{Kind: EvState, AtUnixNano: time.Now().UnixNano(),
				Proto: proto, From: string(from), State: string(to)})
			a.obsEvent(uint64(a.cfg.Addr), obs.LevelInfo, "state",
				obs.F("proto", proto), obs.F("from", from), obs.F("to", to))
		},
		Failure: func(proto string, peer overlay.Address) {
			a.event(&Event{Kind: EvFail, AtUnixNano: time.Now().UnixNano(),
				Proto: proto, Peer: uint32(peer)})
			a.obsEvent(uint64(a.cfg.Addr), obs.LevelWarn, "failure",
				obs.F("proto", proto), obs.F("peer", peer))
		},
	})
	if a.cfg.HasGroup {
		if a.cfg.CreateGroup {
			_ = node.CreateGroup(overlay.Key(a.cfg.Group))
		} else {
			_ = node.Join(overlay.Key(a.cfg.Group))
		}
	}
	return nil
}

func (a *agent) stop() {
	if a.node != nil {
		a.node.Stop()
	}
	if a.net != nil {
		a.net.Close()
	}
	if a.httpLn != nil {
		_ = a.httpLn.Close()
	}
	if a.pushStop != nil {
		close(a.pushStop)
		a.pushStop = nil
	}
}

// startObs builds the agent's observability plane: a registry of live
// collectors over the engine and socket counters (the same family names
// the emulated engine's exposition uses, so a fleet-wide sum is directly
// comparable to a sim run), the sampled event log, and — when configured —
// the /metrics + /debug/obs HTTP listener.
func (a *agent) startObs() {
	a.started = time.Now()
	reg := obs.NewRegistry()
	engine := func(pick func(core.Counters) uint64) func() float64 {
		return func() float64 { return float64(pick(a.node.Counters())) }
	}
	sock := func(pick func(livenet.Stats) uint64) func() float64 {
		return func() float64 { return float64(pick(a.net.Stats())) }
	}
	reg.CounterFunc("macedon_engine_msgs_sent_total", "Protocol messages sent by live nodes.",
		engine(func(c core.Counters) uint64 { return c.MsgsSent }))
	reg.CounterFunc("macedon_engine_msgs_recv_total", "Protocol messages received by live nodes.",
		engine(func(c core.Counters) uint64 { return c.MsgsRecv }))
	reg.CounterFunc("macedon_engine_bytes_sent_total", "Protocol bytes sent by live nodes.",
		engine(func(c core.Counters) uint64 { return c.BytesSent }))
	reg.CounterFunc("macedon_engine_bytes_recv_total", "Protocol bytes received by live nodes.",
		engine(func(c core.Counters) uint64 { return c.BytesRecv }))
	reg.CounterFunc("macedon_engine_failures_total", "Failure-detector verdicts raised.",
		engine(func(c core.Counters) uint64 { return c.Failures }))
	reg.CounterFunc("macedon_net_sent_total", "Network frames sent.",
		sock(func(s livenet.Stats) uint64 { return s.Sent }))
	reg.CounterFunc("macedon_net_delivered_total", "Network frames delivered.",
		sock(func(s livenet.Stats) uint64 { return s.Recv }))
	reg.CounterFunc("macedon_net_bytes_total", "Network payload bytes carried.",
		sock(func(s livenet.Stats) uint64 { return s.BytesSent }))
	reg.CounterFunc("macedon_net_dropped_total", "Network frames dropped (all causes).",
		sock(func(s livenet.Stats) uint64 { return s.ShapeDrops + s.LossDrops }))
	reg.GaugeFunc("macedon_uptime_seconds", "Seconds since this agent process started.",
		func() float64 { return time.Since(a.started).Seconds() })
	reg.Gauge("macedon_agent_info", "Constant 1, labeled with this agent's identity.",
		obs.L("node", strconv.Itoa(a.cfg.Node)), obs.L("proto", a.cfg.Protocol)).Set(1)
	a.reg = reg

	// The event log samples by wall-clock token bucket (unlike the sim's
	// deterministic key hash — live time is not replayable anyway) and keeps
	// a ring for /debug/obs. With Obs on, admitted lines additionally stream
	// to the controller as EvObs frames.
	a.events = obs.NewEventLog(&obs.TokenBucket{Rate: 50, Burst: 100}, obs.LevelDebug)
	a.events.SetCap(256)
	if a.cfg.Obs {
		a.events.SetWriter(obsLineWriter{a})
		iv := time.Duration(a.cfg.PushIntervalNs)
		if iv <= 0 {
			iv = time.Second
		}
		// The ticker paces the pushes; the bucket caps them independently so
		// a misconfigured interval still cannot flood the control connection.
		a.pushLimit = &obs.TokenBucket{Rate: 2 / iv.Seconds(), Burst: 2}
		a.pushStop = make(chan struct{})
		go a.pushLoop(iv)
	}

	if a.cfg.MetricsPort > 0 {
		host := a.cfg.MetricsHost
		if host == "" {
			host = "127.0.0.1"
		}
		ln, err := net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(a.cfg.MetricsPort)))
		if err != nil {
			fmt.Fprintf(a.logw, "agent %d: metrics listener: %v\n", a.cfg.Node, err)
			return
		}
		a.httpLn = ln
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			io.WriteString(w, a.reg.Text())
		})
		mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"node":           a.cfg.Node,
				"pid":            os.Getpid(),
				"addr":           a.cfg.Addr,
				"protocol":       a.cfg.Protocol,
				"uptime_seconds": time.Since(a.started).Seconds(),
				"events":         a.events.Lines(),
				"events_evicted": a.events.Dropped(),
			})
		})
		go func() { _ = http.Serve(ln, mux) }()
	}
}

// pushLoop ships one delta exposition per interval until stop closes.
func (a *agent) pushLoop(iv time.Duration) {
	t := time.NewTicker(iv)
	defer t.Stop()
	stop := a.pushStop
	for {
		select {
		case <-t.C:
			a.pushMetrics()
		case <-stop:
			return
		}
	}
}

// pushMetrics ships one EvMetrics frame carrying the change in every
// registry sample since the last successful push (obs.Diff against the
// previous page), so the controller reconstructs absolute totals by summing
// deltas. The token bucket caps the cadence; skipped deltas simply ride
// along in the next push.
func (a *agent) pushMetrics() {
	a.pushMu.Lock()
	defer a.pushMu.Unlock()
	if a.pushLimit == nil || !a.pushLimit.Admit("metrics_push", 0) {
		return
	}
	a.flushLocked()
}

// flushLocked computes and ships the outstanding delta unconditionally
// (pushMu held) and returns the full page it was measured from.
func (a *agent) flushLocked() string {
	text := a.reg.Text()
	cur, err := obs.ParseText([]byte(text))
	if err != nil {
		return text
	}
	f := obs.NewFleet()
	f.Add(obs.Diff(cur, a.pushPrev))
	msg := &Msg{Kind: KindEvent, Event: &Event{Kind: EvMetrics,
		AtUnixNano: time.Now().UnixNano(), Expo: f.Text()}}
	if a.conn.Send(msg) == nil {
		// Only a shipped delta advances the baseline; a failed send's delta
		// rides along in the next push.
		a.pushPrev = cur
	}
	return text
}

// replyWithFlush flushes the outstanding delta and sends the poll reply in
// one critical section, so no concurrent ticker push can slip between the
// two frames. The control stream is FIFO: the controller folds the delta in
// before it sees the reply, so its push-reconstructed totals equal the
// reply's same-instant exposition exactly — the live acceptance gate.
func (a *agent) replyWithFlush(reply *Msg) {
	a.pushMu.Lock()
	defer a.pushMu.Unlock()
	reply.Metrics.Expo = a.flushLocked()
	_ = a.conn.Send(reply)
}

// obsEvent records one structured event at this agent's uptime-relative
// timestamp (nil-safe: the log exists once start ran).
func (a *agent) obsEvent(key uint64, lvl obs.Level, name string, fields ...obs.Field) {
	if a.events == nil {
		return
	}
	a.events.EmitAt(time.Since(a.started), key, lvl, name, fields...)
}

// obsLineWriter tees admitted event-log lines to the controller as EvObs
// frames; the event log hands it one rendered line per Write.
type obsLineWriter struct{ a *agent }

func (w obsLineWriter) Write(p []byte) (int, error) {
	w.a.event(&Event{Kind: EvObs, AtUnixNano: time.Now().UnixNano(),
		Line: strings.TrimRight(string(p), "\n")})
	return len(p), nil
}

// serve is the command loop. It returns nil on quit and the read error
// when the control connection drops.
func (a *agent) serve() error {
	for {
		m, err := a.conn.Recv()
		if err != nil {
			return fmt.Errorf("deploy agent: control connection lost: %w", err)
		}
		switch m.Kind {
		case KindOp:
			a.runOp(m.Op)
		case KindShape:
			a.applyShape(m.Shape)
		case KindPoll:
			reply := &Msg{Kind: KindMetrics, Metrics: a.metrics()}
			if m.PollState {
				// Extract runs on the node's dispatch queue (core.Node.Exec),
				// so the routing-state read is as consistent as the sim
				// engine's barrier-time extraction.
				st := check.Extract(a.node, a.cfg.Node)
				reply.State = &st
			}
			if a.cfg.Obs {
				a.replyWithFlush(reply)
			} else {
				_ = a.conn.Send(reply)
			}
		case KindQuit:
			fmt.Fprintf(a.logw, "agent %d: quit\n", a.cfg.Node)
			return nil
		default:
			fmt.Fprintf(a.logw, "agent %d: unknown control message %q\n", a.cfg.Node, m.Kind)
		}
	}
}

func (a *agent) runOp(op *OpCmd) {
	if op == nil {
		return
	}
	size := op.Size
	if size < 8 {
		size = 8
	}
	switch op.Kind {
	case "lookup":
		_ = a.node.Route(overlay.Key(op.Key), make([]byte, size), int32(op.ID), overlay.PriorityDefault)
	case "multicast":
		_ = a.node.Multicast(overlay.Key(a.cfg.Group), make([]byte, size), int32(op.ID), overlay.PriorityDefault)
	default:
		fmt.Fprintf(a.logw, "agent %d: unknown op kind %q\n", a.cfg.Node, op.Kind)
	}
}

// applyShape replaces the network's whole shaping state with the command's.
func (a *agent) applyShape(s *ShapeCmd) {
	a.net.ClearShaping()
	if s == nil {
		return
	}
	for _, r := range s.Rules {
		a.net.SetPeerShaping(overlay.Address(r.Peer), livenet.Shaping{
			Drop: r.Drop, Loss: r.Loss, Delay: time.Duration(r.DelayNs),
		})
	}
	if d := s.Default; d != nil {
		a.net.SetDefaultShaping(&livenet.Shaping{Drop: d.Drop, Loss: d.Loss, Delay: time.Duration(d.DelayNs)})
	}
}

// metrics snapshots the node's engine counters and the socket counters.
// Instance counters take their own read locks, so sampling from the
// control goroutine is safe while the node dispatches.
func (a *agent) metrics() *Metrics {
	c := a.node.Counters()
	s := a.net.Stats()
	return &Metrics{
		MsgsSent: c.MsgsSent, MsgsRecv: c.MsgsRecv,
		BytesSent: c.BytesSent, BytesRecv: c.BytesRecv,
		Failures: c.Failures,
		NetSent:  s.Sent, NetRecv: s.Recv,
		NetBytesSent: s.BytesSent, NetBytesRecv: s.BytesRecv,
		ShapeDrops: s.ShapeDrops, LossDrops: s.LossDrops,
	}
}

// event streams one event; send failures are ignored (the controller may
// be tearing the run down while deliveries still fire).
func (a *agent) event(ev *Event) {
	_ = a.conn.Send(&Msg{Kind: KindEvent, Event: ev})
}
