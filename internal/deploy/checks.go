package deploy

import (
	"fmt"
	"time"

	"macedon/internal/check"
	"macedon/internal/obs"
)

// The live backend's half of the correctness plane: the same invariant
// checkers the scenario engine drives at phase boundaries run here over
// routing-state snapshots the agents ship back on a state-carrying poll.
// The View's liveness and connectivity ages are scenario-time (wall
// elapsed × Speed), so a scenario's grace and staleness windows mean the
// same thing on both backends.

// touchAllConnLocked stamps every node's connectivity age: a partition or
// heal changes the whole network's shape at once (c.mu held).
func (c *controller) touchAllConnLocked() {
	now := time.Now()
	for i := range c.connAt {
		c.connAt[i] = now
	}
}

// scenSince converts a wall-clock age to scenario time (c.mu held — reads
// the stamp arrays only through its caller).
func (c *controller) scenSince(since, now time.Time) time.Duration {
	if !since.Before(now) {
		return 0
	}
	return time.Duration(float64(now.Sub(since)) * c.cfg.Speed)
}

// runChecksLocked assembles the phase-boundary View from the latest
// per-agent state snapshots and drives the checkers (c.mu held). An alive
// agent that has not answered a state poll yet — its process restarted
// between the poll and the snapshot — contributes an alive-but-unjoined
// placeholder: no checker indicts a node it has no state for, and the
// stability windows keep its peers' views out of scope too.
func (c *controller) runChecksLocked(pi int) *check.PhaseChecks {
	now := time.Now()
	n := len(c.agents)
	v := &check.View{
		Phase:       pi,
		PhaseName:   c.sched.Phases[pi].Name,
		At:          c.scenTime(now),
		Grace:       c.checkGrace,
		StaleBound:  c.checkStale,
		Partitioned: c.partition,
	}
	v.Nodes = make([]check.NodeState, n)
	v.UpFor = make([]time.Duration, n)
	v.DownFor = make([]time.Duration, n)
	v.ConnAge = make([]time.Duration, n)
	v.Reachable = make([]bool, n)
	v.Degraded = make([]bool, n)
	for i := 0; i < n; i++ {
		switch {
		case c.alive[i] && c.agents[i].state != nil:
			v.Nodes[i] = *c.agents[i].state
			v.Nodes[i].Node = i // controller indexing is authoritative
			v.UpFor[i] = c.scenSince(c.upAt[i], now)
		case c.alive[i]:
			v.Nodes[i] = check.NodeState{Node: i, Addr: c.addrs[i], Alive: true}
			v.UpFor[i] = c.scenSince(c.upAt[i], now)
		default:
			v.Nodes[i] = check.DeadState(i, c.addrs[i])
			v.DownFor[i] = c.scenSince(c.downAt[i], now)
		}
		v.ConnAge[i] = c.scenSince(c.connAt[i], now)
		v.Reachable[i] = !c.down[i]
		v.Degraded[i] = c.degLoss[i] > 0 || c.degDelay[i] > 0
	}
	pc := check.Run(c.checkers, v)
	for _, vi := range pc.Violations {
		c.tracefLocked("check violation %s", vi)
		if c.obs != nil {
			key := vi.Node
			if key < 0 {
				key = 0
			}
			c.obs.events.EmitAt(v.At, uint64(key), obs.LevelWarn, "check_violation",
				obs.F("checker", vi.Checker), obs.F("node", vi.Node),
				obs.F("phase", pi), obs.F("detail", fmt.Sprintf("%q", vi.Detail)))
		}
	}
	return pc
}
