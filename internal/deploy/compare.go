package deploy

import (
	"fmt"
	"math"
	"strings"

	"macedon/internal/scenario"
)

// Tolerances bound how far a live run may drift from the emulated run of
// the same scenario before the conformance verdict fails. The defaults are
// the acceptance bounds: delivery within 2 percentage points, mean hop
// count within 15%.
type Tolerances struct {
	// DeliveryPoints is the allowed |live − sim| delivery-rate gap, in
	// percentage points.
	DeliveryPoints float64
	// HopsFrac is the allowed |live − sim| / sim mean-hop gap.
	HopsFrac float64
}

// DefaultTolerances are the acceptance bounds.
var DefaultTolerances = Tolerances{DeliveryPoints: 2, HopsFrac: 0.15}

// Comparison is the live-vs-sim verdict for one scenario.
type Comparison struct {
	Scenario string
	Protocol string

	SimSent, LiveSent           int
	SimDelivered, LiveDelivered int
	// Delivery rates in percent, aggregated over every workload phase.
	SimDelivery, LiveDelivery float64
	// DeliveryDelta is |live − sim| in points for once-per-op workloads,
	// or in relative percent for fan-out (multicast) workloads;
	// DeliveryUnit names which.
	DeliveryDelta float64
	DeliveryUnit  string

	// Mean hops per delivered operation ((forwards+deliveries)/deliveries,
	// the shared definition both backends compute). Zero when a side
	// delivered nothing.
	SimHops, LiveHops float64
	HopsDelta         float64 // |live − sim| / sim; 0 when hops are not comparable

	// Control overhead, informational: cumulative protocol messages per
	// live node over the phased window.
	SimCtlMsgs, LiveCtlMsgs uint64

	Tol  Tolerances
	Pass bool
	// Failures lists each bound that was exceeded.
	Failures []string
}

// aggregate reduces a report's phases to totals.
func aggregate(r *scenario.Report) (sent, delivered, forwards int) {
	for _, p := range r.Phases {
		sent += p.OpsSent
		delivered += p.OpsDelivered
		forwards += p.OpsForwarded
	}
	return
}

func lastCtl(r *scenario.Report) uint64 {
	if len(r.Phases) == 0 {
		return 0
	}
	return r.Phases[len(r.Phases)-1].CtlMsgs
}

// Compare grades a live report against the emulated report of the same
// scenario. Zero tolerances select the defaults.
func Compare(sim, live *scenario.Report, tol Tolerances) *Comparison {
	if tol.DeliveryPoints == 0 {
		tol.DeliveryPoints = DefaultTolerances.DeliveryPoints
	}
	if tol.HopsFrac == 0 {
		tol.HopsFrac = DefaultTolerances.HopsFrac
	}
	cmp := &Comparison{Scenario: sim.Scenario, Protocol: sim.Protocol, Tol: tol, Pass: true}
	var simFwd, liveFwd int
	cmp.SimSent, cmp.SimDelivered, simFwd = aggregate(sim)
	cmp.LiveSent, cmp.LiveDelivered, liveFwd = aggregate(live)
	cmp.SimCtlMsgs, cmp.LiveCtlMsgs = lastCtl(sim), lastCtl(live)

	if cmp.SimSent > 0 {
		cmp.SimDelivery = 100 * float64(cmp.SimDelivered) / float64(cmp.SimSent)
	}
	if cmp.LiveSent > 0 {
		cmp.LiveDelivery = 100 * float64(cmp.LiveDelivered) / float64(cmp.LiveSent)
	}
	// Lookup workloads deliver at most once per op, so the rates live on a
	// 0–100% scale and the bound is absolute points. Dissemination
	// workloads deliver once per receiving member — the "rate" is a
	// fan-out factor in the hundreds of percent — so the same bound is
	// applied to the relative gap instead (2 points ≈ 2% near 100%).
	cmp.DeliveryDelta = math.Abs(cmp.LiveDelivery - cmp.SimDelivery)
	cmp.DeliveryUnit = "points"
	if math.Max(cmp.SimDelivery, cmp.LiveDelivery) > 100 && cmp.SimDelivery > 0 {
		cmp.DeliveryDelta = 100 * cmp.DeliveryDelta / cmp.SimDelivery
		cmp.DeliveryUnit = "% relative"
	}
	if cmp.DeliveryDelta > tol.DeliveryPoints {
		cmp.Pass = false
		cmp.Failures = append(cmp.Failures, fmt.Sprintf(
			"delivery: live %.2f%% vs sim %.2f%% (Δ %.2f %s > %.2f)",
			cmp.LiveDelivery, cmp.SimDelivery, cmp.DeliveryDelta, cmp.DeliveryUnit, tol.DeliveryPoints))
	}

	if cmp.SimDelivered > 0 {
		cmp.SimHops = float64(simFwd+cmp.SimDelivered) / float64(cmp.SimDelivered)
	}
	if cmp.LiveDelivered > 0 {
		cmp.LiveHops = float64(liveFwd+cmp.LiveDelivered) / float64(cmp.LiveDelivered)
	}
	if cmp.SimHops > 0 && cmp.LiveHops > 0 {
		cmp.HopsDelta = math.Abs(cmp.LiveHops-cmp.SimHops) / cmp.SimHops
		if cmp.HopsDelta > tol.HopsFrac {
			cmp.Pass = false
			cmp.Failures = append(cmp.Failures, fmt.Sprintf(
				"hops: live %.3f vs sim %.3f (Δ %.1f%% > %.0f%%)",
				cmp.LiveHops, cmp.SimHops, 100*cmp.HopsDelta, 100*tol.HopsFrac))
		}
	}
	return cmp
}

// String renders the verdict.
func (c *Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live-vs-sim %q (%s):\n", c.Scenario, c.Protocol)
	fmt.Fprintf(&b, "  %-12s %14s %14s\n", "", "sim", "live")
	fmt.Fprintf(&b, "  %-12s %8d/%-5d %8d/%-5d\n", "delivered", c.SimDelivered, c.SimSent, c.LiveDelivered, c.LiveSent)
	fmt.Fprintf(&b, "  %-12s %13.2f%% %13.2f%%  (Δ %.2f %s, tol %.1f)\n",
		"delivery", c.SimDelivery, c.LiveDelivery, c.DeliveryDelta, c.DeliveryUnit, c.Tol.DeliveryPoints)
	fmt.Fprintf(&b, "  %-12s %14.3f %14.3f  (Δ %.1f%%, tol %.0f%%)\n",
		"mean hops", c.SimHops, c.LiveHops, 100*c.HopsDelta, 100*c.Tol.HopsFrac)
	fmt.Fprintf(&b, "  %-12s %14d %14d\n", "ctl msgs", c.SimCtlMsgs, c.LiveCtlMsgs)
	if c.Pass {
		b.WriteString("  verdict: PASS\n")
	} else {
		b.WriteString("  verdict: FAIL\n")
		for _, f := range c.Failures {
			fmt.Fprintf(&b, "    %s\n", f)
		}
	}
	return b.String()
}
