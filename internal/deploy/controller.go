package deploy

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"macedon/internal/check"
	"macedon/internal/harness"
	"macedon/internal/obs"
	"macedon/internal/overlay"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
)

// Config describes one live deployment run.
type Config struct {
	// Scenario is the experiment to execute — the same declarative files
	// `macedon scenario` runs on the emulator.
	Scenario *scenario.Scenario
	// Speed divides the scenario timeline (1 = real time). Protocol
	// timers are NOT compressed; keep it modest (docs/deploy.md).
	Speed float64
	// Host and BasePort place the fleet's UDP sockets: node i binds
	// Host:BasePort+i. Defaults: 127.0.0.1, 40000.
	Host     string
	BasePort int
	// AgentCmd is the argv prefix that starts one agent process; the
	// controller appends "-controller <addr> -node <i>". `macedon deploy`
	// uses its own binary: {os.Executable(), "agent"}.
	AgentCmd []string
	// AgentLogDir, when set, collects one log file per agent process.
	AgentLogDir string
	// Out receives progress lines (nil = silent).
	Out io.Writer
	// DegradeBase is the latency unit a degrade event's LatencyFactor is
	// scaled by on the live path (default 5ms): added one-way delay is
	// DegradeBase×(factor−1).
	DegradeBase time.Duration
	// Timeout aborts a wedged run (default: scaled total + 2 minutes).
	Timeout time.Duration
	// Obs enables the observability plane: the controller assembles the
	// same Report.Obs sections the sim engine emits (metric families,
	// sampled event log, operation trace spans), and agents stream their
	// sampled event-log lines back over the control protocol.
	Obs bool
	// TraceSample keeps 1-in-N operation traces and event records, keyed by
	// hash on the scenario seed — the identical sampled population a sim run
	// of the same scenario traces. 0 or 1 keeps everything.
	TraceSample int
	// MetricsBase, when nonzero, has agent i serve Prometheus text-format
	// metrics at http://Host:MetricsBase+i/metrics (plus /debug/obs); with
	// Obs also set, the controller scrapes the fleet at report time and
	// folds the expositions into Report.Obs when no agent pushed one.
	MetricsBase int
	// MetricsHost is the bind address of each agent's metrics listener
	// (empty = 127.0.0.1). Real-cluster deployments set a routable interface
	// or 0.0.0.0 so an external Prometheus can scrape the fleet.
	MetricsHost string
	// PushInterval overrides the agents' EvMetrics delta-push cadence
	// (default 1s). Pushes ride the control connection, so NAT'd hosts need
	// no inbound scrape path at all.
	PushInterval time.Duration
}

// agentSlot is the controller's view of one fleet member.
type agentSlot struct {
	proc *exec.Cmd
	conn *Conn
	// gen counts process launches of this slot; a stale connection (from a
	// SIGKILLed generation) is ignored when it finally reaps.
	gen     int
	logFile *os.File
	// metrics is the last snapshot this slot answered a poll with (the
	// current process generation's counters, which restart at zero on
	// every SIGKILL/relaunch).
	metrics  Metrics
	hasStats bool
	// retired accumulates the socket counters of dead generations (their
	// last polled snapshots), so the slot's cumulative network totals
	// never move backwards across restarts. Engine counters are NOT
	// retired: the emulator's per-phase counter sums likewise see only
	// the live node objects, whose counters also restart on revive.
	retired Metrics
	pollCh  chan *Metrics
	// state is the last routing-state snapshot a state-carrying poll
	// brought back (correctness plane); cleared on kill like the metrics.
	state *check.NodeState
	// push accumulates the current generation's EvMetrics delta expositions
	// (summing deltas reconstructs the agent's absolute totals). expo and
	// pushExpo are the consistent pair the last poll captured: the agent's
	// full page from the reply and the push-reconstructed page snapshotted
	// the moment the reply arrived (the agent flushes right before replying,
	// so the two agree exactly). All cleared on kill like the metrics.
	push     *obs.Fleet
	expo     string
	pushExpo string
}

// controller executes a compiled schedule against a fleet of agent
// processes; it implements scenario.WallExecutor.
type controller struct {
	cfg   Config
	s     *scenario.Scenario
	sched *scenario.Schedule
	addrs []overlay.Address
	table map[string]string
	ln    net.Listener
	start time.Time

	group       overlay.Key
	hasGroup    bool
	degradeBase time.Duration

	mu     sync.Mutex
	agents []*agentSlot
	alive  []bool

	// Shaping source of truth, recompiled into per-agent rule sets on
	// every change (and on agent restart).
	partitionA int // side-A size; 0 = no partition
	partition  bool
	down       []bool // node_down / link_down: host unreachable
	degLoss    []float64
	degDelay   []time.Duration

	// Workload accounting (the live twin of the scenario engine's grids;
	// single controller process, so plain ints under mu).
	sendAt    map[int]time.Time
	sendPhase map[int]int
	rows      []scenario.PhaseTotals
	base      scenario.PhaseTotals
	opsSent   []int
	opsSkip   []int
	delivered []int
	latSum    []time.Duration
	forwards  []int

	eventsRun int
	trace     []string
	err       error

	// obs is the run's observability plane (nil when Config.Obs is off);
	// addrIdx maps overlay addresses back to fleet indices for span records.
	obs     *ctrlObs
	addrIdx map[uint32]int

	// Correctness plane (empty unless the scenario has a checks spec): the
	// resolved checker set, the stability windows, and wall-clock stamps of
	// each node's last liveness/connectivity change. PhaseEnd converts the
	// stamps to scenario-time ages (wall × Speed) so the grace-window
	// semantics match the emulated backend's.
	checkers             []check.Checker
	checkGrace           time.Duration
	checkStale           time.Duration
	upAt, downAt, connAt []time.Time
}

// Run executes the scenario as a live localhost deployment and returns
// the same structured report the emulated path produces. Delivery,
// latency, hop and counter bookkeeping follow the scenario engine's
// definitions exactly, which is what makes the two reports comparable
// (Compare, live_test.go).
func Run(cfg Config) (*scenario.Report, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("deploy: no scenario")
	}
	if len(cfg.AgentCmd) == 0 {
		return nil, fmt.Errorf("deploy: no agent command")
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 40000
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.DegradeBase <= 0 {
		cfg.DegradeBase = 5 * time.Millisecond
	}
	s := cfg.Scenario
	sched, err := scenario.Compile(s)
	if err != nil {
		return nil, err
	}
	addrs, err := harness.TopologyAddrs(s.Nodes, s.Routers, s.Seed)
	if err != nil {
		return nil, err
	}
	table := make(map[string]string, len(addrs))
	for i, a := range addrs {
		table[strconv.FormatUint(uint64(uint32(a)), 10)] = fmt.Sprintf("%s:%d", cfg.Host, cfg.BasePort+i)
	}
	ln, err := net.Listen("tcp", cfg.Host+":0")
	if err != nil {
		return nil, fmt.Errorf("deploy: control listener: %w", err)
	}
	c := &controller{
		cfg:         cfg,
		s:           s,
		sched:       sched,
		addrs:       addrs,
		table:       table,
		ln:          ln,
		degradeBase: cfg.DegradeBase,
		agents:      make([]*agentSlot, s.Nodes),
		alive:       make([]bool, s.Nodes),
		down:        make([]bool, s.Nodes),
		degLoss:     make([]float64, s.Nodes),
		degDelay:    make([]time.Duration, s.Nodes),
		sendAt:      make(map[int]time.Time),
		sendPhase:   make(map[int]int),
		rows:        make([]scenario.PhaseTotals, len(sched.Phases)),
		opsSent:     make([]int, len(sched.Phases)),
		opsSkip:     make([]int, len(sched.Phases)),
		delivered:   make([]int, len(sched.Phases)),
		latSum:      make([]time.Duration, len(sched.Phases)),
		forwards:    make([]int, len(sched.Phases)),
	}
	for i := range c.agents {
		c.agents[i] = &agentSlot{pollCh: make(chan *Metrics, 1)}
	}
	if ccfg := s.CheckConfig(); ccfg != nil {
		if c.checkers, err = check.New(*ccfg); err != nil {
			_ = ln.Close()
			return nil, err
		}
		c.checkGrace, c.checkStale = ccfg.Resolve()
	}
	c.upAt = make([]time.Time, s.Nodes)
	c.downAt = make([]time.Time, s.Nodes)
	c.connAt = make([]time.Time, s.Nodes)
	c.addrIdx = make(map[uint32]int, len(addrs))
	for i, a := range addrs {
		c.addrIdx[uint32(a)] = i
	}
	if cfg.Obs {
		c.obs = newCtrlObs(cfg, s, sched)
	}
	if s.NeedsGroup() {
		c.hasGroup = true
		c.group = overlay.HashString(s.GroupName())
	}
	defer c.shutdown()
	go c.acceptLoop()

	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = time.Duration(float64(sched.Total)/cfg.Speed) + 2*time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	c.start = time.Now()
	for i := range c.connAt {
		c.upAt[i], c.downAt[i], c.connAt[i] = c.start, c.start, c.start
	}
	fmt.Fprintf(cfg.Out, "deploy %q: %d nodes on %s:%d.., control %s, speed %.3gx, wall ≈%s\n",
		s.Name, s.Nodes, cfg.Host, cfg.BasePort, ln.Addr(), cfg.Speed,
		time.Duration(float64(sched.Total)/cfg.Speed).Round(time.Second))
	if err := scenario.NewWallRunner(sched, cfg.Speed, c).Run(ctx); err != nil {
		return nil, err
	}
	if c.err != nil {
		return nil, c.err
	}
	return c.report(), nil
}

// --- fleet plumbing ----------------------------------------------------------

// acceptLoop admits agent control connections: each one introduces itself
// with a hello, gets its config, and is served by a reader goroutine.
func (c *controller) acceptLoop() {
	for {
		tc, err := c.ln.Accept()
		if err != nil {
			return // listener closed: run over
		}
		go c.admit(tc)
	}
}

func (c *controller) admit(tc net.Conn) {
	conn := NewConn(tc)
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	m, err := conn.Recv()
	if err != nil || m.Kind != KindHello || m.Hello == nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	i := m.Hello.Node
	if i < 0 || i >= len(c.agents) {
		_ = conn.Close()
		return
	}
	c.mu.Lock()
	slot := c.agents[i]
	slot.conn = conn
	gen := slot.gen
	cfgMsg := &Msg{Kind: KindConfig, Config: c.agentConfigLocked(i)}
	c.mu.Unlock()
	if err := conn.Send(cfgMsg); err != nil {
		_ = conn.Close()
		return
	}
	c.reader(i, gen, conn)
}

// agentConfigLocked assembles node i's config, including the shaping rules
// currently in force (c.mu held).
func (c *controller) agentConfigLocked(i int) *AgentConfig {
	ac := &AgentConfig{
		Node:             i,
		Addr:             uint32(c.addrs[i]),
		Bootstrap:        uint32(c.addrs[0]),
		Protocol:         c.protoName(),
		Table:            c.table,
		HeartbeatAfterNs: int64(c.s.HeartbeatAfter.D()),
		FailAfterNs:      int64(c.s.FailAfter.D()),
		Shape:            c.rulesForLocked(i),
		Obs:              c.cfg.Obs,
	}
	if c.cfg.MetricsBase > 0 {
		ac.MetricsPort = c.cfg.MetricsBase + i
		ac.MetricsHost = c.cfg.MetricsHost
	}
	if c.cfg.PushInterval > 0 {
		ac.PushIntervalNs = int64(c.cfg.PushInterval)
	}
	if c.hasGroup {
		ac.HasGroup = true
		ac.Group = uint32(c.group)
		ac.CreateGroup = i == 0
	}
	return ac
}

func (c *controller) protoName() string {
	if c.s.Protocol == "" {
		return "chord"
	}
	return c.s.Protocol
}

// reader consumes one agent connection's stream until it drops.
func (c *controller) reader(i, gen int, conn *Conn) {
	for {
		m, err := conn.Recv()
		if err != nil {
			c.mu.Lock()
			if c.agents[i].gen == gen && c.agents[i].conn == conn {
				c.agents[i].conn = nil
			}
			c.mu.Unlock()
			return
		}
		switch m.Kind {
		case KindEvent:
			c.onEvent(i, m.Event)
		case KindMetrics:
			if m.Metrics != nil {
				if m.State != nil || m.Metrics.Expo != "" {
					c.mu.Lock()
					slot := c.agents[i]
					if m.State != nil {
						slot.state = m.State
					}
					if m.Metrics.Expo != "" {
						// Snapshot the consistent pair: the agent flushed its
						// delta right before this reply (FIFO stream), so the
						// push-reconstructed page equals the reply's page.
						slot.expo = m.Metrics.Expo
						slot.pushExpo = ""
						if slot.push != nil {
							slot.pushExpo = slot.push.Text()
						}
					}
					c.mu.Unlock()
				}
				select {
				case c.agents[i].pollCh <- m.Metrics:
				default:
				}
			}
		}
	}
}

// onEvent is the live twin of the scenario engine's delivery accounting.
func (c *controller) onEvent(i int, ev *Event) {
	if ev == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case EvDeliver:
		at, ok := c.sendAt[ev.Op]
		if !ok {
			return
		}
		ph := c.sendPhase[ev.Op]
		c.delivered[ph]++
		when := time.Unix(0, ev.AtUnixNano)
		lat := when.Sub(at)
		if lat > 0 {
			c.latSum[ph] += lat
		}
		c.obsDeliverLocked(ev.Op, i, ph, when, lat)
	case EvForward:
		if _, ok := c.sendAt[ev.Op]; !ok {
			return
		}
		c.forwards[c.sendPhase[ev.Op]]++
		c.obsForwardLocked(ev.Op, i, c.nextIndex(ev.Next), time.Unix(0, ev.AtUnixNano))
	case EvObs:
		c.obsAgentLineLocked(i, ev.Line)
	case EvMetrics:
		c.obsPushLocked(i, ev.Expo)
	case EvState:
		c.tracefLocked("node %d %s: state %s -> %s", i, ev.Proto, ev.From, ev.State)
	case EvFail:
		c.tracefLocked("node %d %s: failure of %v detected", i, ev.Proto, overlay.Address(ev.Peer))
	}
}

// spawn launches (or relaunches) agent process i.
func (c *controller) spawn(i int) error {
	argv := append(append([]string(nil), c.cfg.AgentCmd...),
		"-controller", c.ln.Addr().String(), "-node", strconv.Itoa(i))
	cmd := exec.Command(argv[0], argv[1:]...)
	var logf *os.File
	if c.cfg.AgentLogDir != "" {
		f, err := os.OpenFile(filepath.Join(c.cfg.AgentLogDir, fmt.Sprintf("agent-%d.log", i)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			logf = f
			cmd.Stdout, cmd.Stderr = f, f
		}
	}
	if err := cmd.Start(); err != nil {
		if logf != nil {
			logf.Close()
		}
		return fmt.Errorf("deploy: spawn agent %d: %w", i, err)
	}
	c.mu.Lock()
	slot := c.agents[i]
	slot.gen++
	slot.proc = cmd
	slot.logFile = logf
	c.alive[i] = true
	c.upAt[i] = time.Now()
	c.mu.Unlock()
	go func() { _ = cmd.Wait() }() // reap
	return nil
}

// kill SIGKILLs agent process i: live churn is real process death.
func (c *controller) kill(i int) {
	c.mu.Lock()
	slot := c.agents[i]
	proc := slot.proc
	conn := slot.conn
	slot.proc = nil
	slot.conn = nil
	slot.gen++ // stale readers and reaps identify themselves
	logf := slot.logFile
	slot.logFile = nil
	if slot.hasStats {
		// Retire the dying generation's socket counters (as of its last
		// poll — traffic since then is lost, like any crash loses its
		// tail) so the slot's cumulative totals stay monotone.
		slot.retired.NetSent += slot.metrics.NetSent
		slot.retired.NetRecv += slot.metrics.NetRecv
		slot.retired.NetBytesSent += slot.metrics.NetBytesSent
		slot.retired.ShapeDrops += slot.metrics.ShapeDrops
		slot.retired.LossDrops += slot.metrics.LossDrops
		slot.metrics = Metrics{}
		slot.hasStats = false
	}
	slot.state = nil
	// The push accumulation restarts with the next generation's counters,
	// mirroring the scrape path (current-generation pages only).
	slot.push = nil
	slot.expo = ""
	slot.pushExpo = ""
	c.alive[i] = false
	c.downAt[i] = time.Now()
	c.mu.Unlock()
	if proc != nil && proc.Process != nil {
		_ = proc.Process.Kill()
	}
	if conn != nil {
		_ = conn.Close()
	}
	if logf != nil {
		_ = logf.Close()
	}
}

// send delivers one control message to agent i if it is connected.
func (c *controller) send(i int, m *Msg) {
	c.mu.Lock()
	conn := c.agents[i].conn
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Send(m)
	}
}

// broadcastShape pushes every agent's recomputed rule set.
func (c *controller) broadcastShape() {
	for i := range c.agents {
		c.mu.Lock()
		conn := c.agents[i].conn
		rules := c.rulesForLocked(i)
		c.mu.Unlock()
		if conn != nil {
			_ = conn.Send(&Msg{Kind: KindShape, Shape: rules})
		}
	}
}

// rulesForLocked compiles the scenario-level network state (partition,
// downed hosts, degradations) into node i's outbound rule set. Every
// datagram crosses exactly one side's rules per direction, so loss and
// delay apply once per traversal like the emulator's access pipes
// (docs/deploy.md: scenario-to-wall-clock mapping).
func (c *controller) rulesForLocked(i int) *ShapeCmd {
	sc := &ShapeCmd{}
	if c.down[i] {
		sc.Default = &PeerRule{Drop: true}
		return sc
	}
	if c.degLoss[i] > 0 || c.degDelay[i] > 0 {
		// This node's own degraded access pipe shapes all of its outbound.
		sc.Default = &PeerRule{Loss: c.degLoss[i], DelayNs: int64(c.degDelay[i])}
	}
	for j, a := range c.addrs {
		if j == i {
			continue
		}
		switch {
		case c.down[j]:
			sc.Rules = append(sc.Rules, PeerRule{Peer: uint32(a), Drop: true})
		case c.partition && c.sideOf(i) != c.sideOf(j):
			sc.Rules = append(sc.Rules, PeerRule{Peer: uint32(a), Drop: true})
		case c.degLoss[j] > 0 || c.degDelay[j] > 0:
			// The peer's degraded pipe shapes traffic toward it. A
			// per-peer rule REPLACES the default on the agent, so when
			// this node is degraded too, compose both pipes the way the
			// emulated path (sender's access + receiver's access) would:
			// independent losses multiply through, delays add.
			loss := 1 - (1-c.degLoss[i])*(1-c.degLoss[j])
			sc.Rules = append(sc.Rules, PeerRule{Peer: uint32(a), Loss: loss,
				DelayNs: int64(c.degDelay[i] + c.degDelay[j])})
		}
	}
	return sc
}

func (c *controller) sideOf(i int) int {
	if i < c.partitionA {
		return 1
	}
	return 2
}

// poll gathers metrics from every live agent (last-known snapshots stand
// in for agents that do not answer in time). withState additionally asks
// each agent for its routing-state snapshot (correctness plane).
func (c *controller) poll(withState bool) {
	type pending struct {
		i  int
		ch chan *Metrics
	}
	var waits []pending
	for i := range c.agents {
		c.mu.Lock()
		conn := c.agents[i].conn
		ch := c.agents[i].pollCh
		c.mu.Unlock()
		if conn == nil {
			continue
		}
		// Drain a stale answer from an earlier poll round.
		select {
		case <-ch:
		default:
		}
		if err := conn.Send(&Msg{Kind: KindPoll, PollState: withState}); err == nil {
			waits = append(waits, pending{i, ch})
		}
	}
	deadline := time.After(5 * time.Second)
	for _, w := range waits {
		select {
		case m := <-w.ch:
			c.mu.Lock()
			c.agents[w.i].metrics = *m
			c.agents[w.i].hasStats = true
			c.mu.Unlock()
		case <-deadline:
			return
		}
	}
}

// totalsLocked reduces the latest per-agent snapshots to cumulative
// counters: engine counters over live agents (the emulated engine also
// drops dead nodes' counters) and socket counters over every agent.
func (c *controller) totalsLocked() (ctlMsgs, ctlBytes uint64, net simnet.Stats) {
	for i, slot := range c.agents {
		m := slot.retired
		if slot.hasStats {
			m.NetSent += slot.metrics.NetSent
			m.NetRecv += slot.metrics.NetRecv
			m.NetBytesSent += slot.metrics.NetBytesSent
			m.ShapeDrops += slot.metrics.ShapeDrops
			m.LossDrops += slot.metrics.LossDrops
			if c.alive[i] {
				ctlMsgs += slot.metrics.MsgsSent
				ctlBytes += slot.metrics.BytesSent
			}
		}
		net.Sent += m.NetSent
		net.Delivered += m.NetRecv
		// simnet.Stats.Bytes counts payload bytes entering the network, so
		// the live twin is bytes sent, not received.
		net.Bytes += m.NetBytesSent
		net.RandomLoss += m.LossDrops
		net.PartitionDrops += m.ShapeDrops
	}
	return
}

// --- scenario.WallExecutor ---------------------------------------------------

// SettleEnd polls the fleet for the baseline snapshot phase deltas are
// measured against.
func (c *controller) SettleEnd() {
	c.poll(false)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.base = scenario.PhaseTotals{}
	c.base.CtlMsgs, c.base.CtlBytes, c.base.Net = c.totalsLocked()
	c.tracefLocked("settle complete (%d live)", c.countLiveLocked())
}

// PhaseEnd snapshots phase pi.
func (c *controller) PhaseEnd(pi int) {
	c.poll(len(c.checkers) > 0)
	c.mu.Lock()
	defer c.mu.Unlock()
	row := &c.rows[pi]
	row.Live = c.countLiveLocked()
	row.CtlMsgs, row.CtlBytes, row.Net = c.totalsLocked()
	c.obsPhaseSampleLocked(pi, row)
	if len(c.checkers) > 0 {
		row.Checks = c.runChecksLocked(pi)
	}
	c.tracefLocked("phase %d (%s) complete", pi, c.sched.Phases[pi].Name)
}

func (c *controller) countLiveLocked() int {
	live := 0
	for _, up := range c.alive {
		if up {
			live++
		}
	}
	return live
}

// Apply executes one schedule op at its wall instant: the directive
// compiler of the live backend.
func (c *controller) Apply(op scenario.Op) {
	c.eventsRun++
	switch op.Kind {
	case scenario.OpSpawn, scenario.OpRevive:
		verb := "spawn"
		if op.Kind == scenario.OpRevive {
			verb = "revive"
		}
		c.mu.Lock()
		up := c.alive[op.Node]
		c.mu.Unlock()
		if up {
			c.tracef("%s node %d skipped (already up)", verb, op.Node)
			return
		}
		if err := c.spawn(op.Node); err != nil {
			c.err = err
			return
		}
		c.tracef("%s node %d (%v, pid %d)", verb, op.Node, c.addrs[op.Node], c.agents[op.Node].proc.Process.Pid)
		if op.Kind == scenario.OpRevive {
			c.obsLifecycle(op.Node, "revive", obs.F("node", op.Node))
		}
	case scenario.OpKill:
		c.mu.Lock()
		up := c.alive[op.Node]
		c.mu.Unlock()
		if !up {
			c.tracef("kill node %d skipped (already down)", op.Node)
			return
		}
		c.kill(op.Node)
		c.tracef("kill node %d (%v) [SIGKILL]", op.Node, c.addrs[op.Node])
		c.obsLifecycle(op.Node, "kill", obs.F("node", op.Node))
	case scenario.OpNodeDown, scenario.OpLinkDown:
		c.mu.Lock()
		c.down[op.Node] = true
		c.connAt[op.Node] = time.Now()
		c.mu.Unlock()
		c.broadcastShape()
		c.tracef("%s node %d", op.Kind, op.Node)
	case scenario.OpNodeUp, scenario.OpLinkUp:
		c.mu.Lock()
		c.down[op.Node] = false
		c.connAt[op.Node] = time.Now()
		c.mu.Unlock()
		c.broadcastShape()
		c.tracef("%s node %d", op.Kind, op.Node)
	case scenario.OpPartition:
		c.mu.Lock()
		c.partition = true
		c.partitionA = op.SideA
		c.touchAllConnLocked()
		c.mu.Unlock()
		c.broadcastShape()
		c.tracef("partition [0..%d) | [%d..%d)", op.SideA, op.SideA, len(c.addrs))
		c.obsLifecycle(op.SideA, "partition", obs.F("side_a", op.SideA))
	case scenario.OpHeal:
		c.mu.Lock()
		c.partition = false
		c.touchAllConnLocked()
		c.mu.Unlock()
		c.broadcastShape()
		c.tracef("heal partition")
		c.obsLifecycle(0, "heal")
	case scenario.OpDegrade:
		c.mu.Lock()
		// A degrade op replaces the node's degradation outright, exactly
		// like the emulator's DegradeNodeAccess: factor <= 1 clears any
		// earlier added delay.
		c.degLoss[op.Node] = op.Loss
		c.degDelay[op.Node] = 0
		if op.LatencyFactor > 1 {
			c.degDelay[op.Node] = time.Duration(float64(c.degradeBase) * (op.LatencyFactor - 1))
		}
		c.connAt[op.Node] = time.Now()
		c.mu.Unlock()
		c.broadcastShape()
		c.tracef("degrade node %d (delay %v, loss %.2f)", op.Node, c.degDelay[op.Node], op.Loss)
	case scenario.OpRestore:
		c.mu.Lock()
		c.degLoss[op.Node] = 0
		c.degDelay[op.Node] = 0
		c.connAt[op.Node] = time.Now()
		c.mu.Unlock()
		c.broadcastShape()
		c.tracef("restore node %d", op.Node)
	case scenario.OpLookup, scenario.OpMulticast:
		c.applyWorkload(op)
	}
}

func (c *controller) applyWorkload(op scenario.Op) {
	kind := "lookup"
	if op.Kind == scenario.OpMulticast {
		kind = "multicast"
	}
	c.mu.Lock()
	up := c.alive[op.Node]
	if !up {
		c.opsSkip[op.Phase]++
		c.obsSkipLocked(kind, op)
		c.mu.Unlock()
		c.tracef("%s #%d skipped (node %d down)", kind, op.ID, op.Node)
		return
	}
	c.sendAt[op.ID] = time.Now()
	c.sendPhase[op.ID] = op.Phase
	c.opsSent[op.Phase]++
	c.obsInjectLocked(kind, op)
	c.mu.Unlock()
	c.send(op.Node, &Msg{Kind: KindOp, Op: &OpCmd{ID: op.ID, Kind: kind, Key: op.Key, Size: op.Size}})
}

// --- teardown and report -----------------------------------------------------

// shutdown quits the fleet and releases everything.
func (c *controller) shutdown() {
	for i := range c.agents {
		c.send(i, &Msg{Kind: KindQuit})
	}
	_ = c.ln.Close()
	// Give agents a moment to exit on their own, then make sure.
	time.Sleep(200 * time.Millisecond)
	for i := range c.agents {
		c.kill(i)
	}
}

func (c *controller) tracef(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracefLocked(format, args...)
}

func (c *controller) tracefLocked(format string, args ...any) {
	line := fmt.Sprintf("t=%10.3fs  %s", time.Since(c.start).Seconds()*c.cfg.Speed, fmt.Sprintf(format, args...))
	c.trace = append(c.trace, line)
	fmt.Fprintln(c.cfg.Out, line)
}

// report assembles the live run's structured report with the same shape
// and accounting the emulated engine emits.
func (c *controller) report() *scenario.Report {
	c.poll(false)
	scrapes := c.scrapeFleet()
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _, finalNet := c.totalsLocked()
	rep := &scenario.Report{
		Scenario:  c.s.Name,
		Protocol:  c.protoName(),
		Seed:      c.s.Seed,
		Nodes:     c.s.Nodes,
		Settle:    c.sched.Settle,
		End:       c.sched.End,
		Total:     c.sched.Total,
		EventsRun: c.eventsRun,
		Final:     finalNet,
	}
	rows := make([]scenario.PhaseTotals, len(c.rows))
	for pi := range c.rows {
		row := c.rows[pi]
		row.Sent = c.opsSent[pi]
		row.Skipped = c.opsSkip[pi]
		row.Delivered = c.delivered[pi]
		row.LatSum = c.latSum[pi]
		row.Forwards = c.forwards[pi]
		rows[pi] = row
	}
	rep.Phases = scenario.AssemblePhases(c.sched.Phases, rows, c.base)
	c.finishObsLocked(rep, scrapes)
	// The trace is copied last: finishObsLocked records the push/poll
	// verification outcome as trace lines.
	rep.Trace = append([]string(nil), c.trace...)
	return rep
}
