package deploy

import (
	"net"
	"testing"
	"time"

	"macedon/internal/scenario"
)

// TestConnRoundTrip frames messages over a real TCP pair.
func TestConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Msg, 2)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(c)
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			done <- m
		}
	}()
	tc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(tc)
	defer conn.Close()
	if err := conn.Send(&Msg{Kind: KindHello, Hello: &Hello{Node: 7, Pid: 1234}}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&Msg{Kind: KindOp, Op: &OpCmd{ID: 42, Kind: "lookup", Key: 0xdeadbeef, Size: 64}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case m := <-done:
			switch m.Kind {
			case KindHello:
				if m.Hello == nil || m.Hello.Node != 7 {
					t.Fatalf("hello mangled: %+v", m)
				}
			case KindOp:
				if m.Op == nil || m.Op.ID != 42 || m.Op.Key != 0xdeadbeef {
					t.Fatalf("op mangled: %+v", m.Op)
				}
			default:
				t.Fatalf("unexpected kind %q", m.Kind)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("frame never arrived")
		}
	}
}

func reportWith(sent, delivered, forwards int) *scenario.Report {
	return &scenario.Report{
		Scenario: "cmp", Protocol: "genchord",
		Phases: []scenario.PhaseReport{
			{OpsSent: sent, OpsDelivered: delivered, OpsForwarded: forwards, CtlMsgs: 1000},
		},
	}
}

// TestCompareWithinTolerance: identical metrics pass.
func TestCompareWithinTolerance(t *testing.T) {
	sim := reportWith(100, 100, 150) // 2.5 hops
	live := reportWith(100, 99, 152) // 2.535 hops, Δ delivery 1 point
	cmp := Compare(sim, live, Tolerances{})
	if !cmp.Pass {
		t.Fatalf("expected pass: %s", cmp)
	}
	if cmp.SimHops != 2.5 {
		t.Fatalf("sim hops = %v", cmp.SimHops)
	}
}

// TestCompareDeliveryBound: a 3-point delivery gap fails the default
// 2-point bound and is named in the failure list.
func TestCompareDeliveryBound(t *testing.T) {
	cmp := Compare(reportWith(100, 100, 150), reportWith(100, 97, 150), Tolerances{})
	if cmp.Pass {
		t.Fatalf("expected delivery failure: %s", cmp)
	}
	if len(cmp.Failures) != 1 {
		t.Fatalf("failures = %v", cmp.Failures)
	}
}

// TestCompareHopsBound: a 20% hop gap fails the default 15% bound.
func TestCompareHopsBound(t *testing.T) {
	sim := reportWith(100, 100, 100)  // 2.0 hops
	live := reportWith(100, 100, 140) // 2.4 hops: +20%
	cmp := Compare(sim, live, Tolerances{})
	if cmp.Pass {
		t.Fatalf("expected hops failure: %s", cmp)
	}
}

// TestCompareCustomTolerance: widened bounds accept the same gap.
func TestCompareCustomTolerance(t *testing.T) {
	sim := reportWith(100, 100, 100)
	live := reportWith(100, 100, 140)
	cmp := Compare(sim, live, Tolerances{HopsFrac: 0.25})
	if !cmp.Pass {
		t.Fatalf("expected pass at 25%%: %s", cmp)
	}
}

// TestCompareFanOutRelative: multicast delivery rates are fan-out factors
// (hundreds of percent), so the delivery bound applies relatively there —
// a 5-point gap at ~995% is half a percent and passes; the same relative
// gap at 3% would fail.
func TestCompareFanOutRelative(t *testing.T) {
	sim := reportWith(115, 1144, 1144)  // 994.8% fan-out
	live := reportWith(115, 1138, 1138) // 989.6%
	cmp := Compare(sim, live, Tolerances{})
	if !cmp.Pass {
		t.Fatalf("relative fan-out gap of 0.5%% should pass: %s", cmp)
	}
	if cmp.DeliveryUnit != "% relative" {
		t.Fatalf("unit = %q", cmp.DeliveryUnit)
	}
	// A genuinely large relative gap still fails.
	bad := Compare(reportWith(100, 900, 900), reportWith(100, 800, 800), Tolerances{})
	if bad.Pass {
		t.Fatalf("11%% relative fan-out gap should fail: %s", bad)
	}
}
