package deploy

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"macedon/internal/harness"
	"macedon/internal/repo"
	"macedon/internal/scenario"
)

// The live tests run real multi-process deployments: dozens of agent
// processes, real UDP sockets, real SIGKILL churn, minutes of wall clock.
// They are gated behind MACEDON_LIVE=1 (the CI live-smoke job sets it) so
// the ordinary test run stays fast. MACEDON_LIVE_SPEED compresses the
// timeline for local iteration; conformance defaults to real time because
// protocol timers do not compress with it.

func liveGate(t *testing.T) {
	t.Helper()
	if os.Getenv("MACEDON_LIVE") == "" {
		t.Skip("live deployment test; set MACEDON_LIVE=1 to run")
	}
}

func liveSpeed() float64 {
	if v := os.Getenv("MACEDON_LIVE_SPEED"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1
}

var (
	buildOnce sync.Once
	macedon   string
	buildErr  error
)

// buildBinary compiles the macedon binary once per test run; the
// controller launches it as `macedon agent`.
func buildBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "macedon-live")
		if err != nil {
			buildErr = err
			return
		}
		macedon = filepath.Join(dir, "macedon")
		cmd := exec.Command("go", "build", "-o", macedon, "./cmd/macedon")
		cmd.Dir = repo.Root()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return macedon
}

// runBoth executes one scenario on both backends and returns (live, sim).
func runBoth(t *testing.T, s *scenario.Scenario, basePort int) (*scenario.Report, *scenario.Report) {
	t.Helper()
	bin := buildBinary(t)
	logDir := t.TempDir()
	live, err := Run(Config{
		Scenario:    s,
		Speed:       liveSpeed(),
		BasePort:    basePort,
		AgentCmd:    []string{bin, "agent"},
		AgentLogDir: logDir,
		Out:         testWriter{t},
	})
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	sim, err := harness.RunScenarioShards(s, 2)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return live, sim
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func loadScenario(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	s, err := scenario.Load(repo.Path("examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func deliveryPct(r *scenario.Report) float64 {
	sent, del := 0, 0
	for _, p := range r.Phases {
		sent += p.OpsSent
		del += p.OpsDelivered
	}
	if sent == 0 {
		return 0
	}
	return 100 * float64(del) / float64(sent)
}

// TestLiveSmokeGenchordVsSim is the CI live-smoke acceptance: a 16-node
// genchord deployment on localhost processes runs the churn+lookup
// scenario, must deliver ≥99% of lookups, and must agree with the
// emulated run of the identical scenario within the conformance
// tolerances (delivery within 2 points, mean hops within 15%).
func TestLiveSmokeGenchordVsSim(t *testing.T) {
	liveGate(t)
	s := loadScenario(t, "live-churn-lookup.json")
	// CI-sized fleet; `macedon deploy -nodes 32` is the full acceptance
	// run. Shrinking the population reshapes the compiled schedule, and
	// the per-kill loss window costs relatively more in a small ring, so
	// the 16-node smoke pins a seed whose churn draw yields a
	// representative single kill/revive with the ≥99% bound still met by
	// the emulated run (the live run must then match it within tolerance).
	s.Nodes = 16
	s.Seed = 8080
	live, sim := runBoth(t, s, 41000)

	if pct := deliveryPct(live); pct < 99 {
		t.Errorf("live delivery %.2f%% < 99%%", pct)
	}
	cmp := Compare(sim, live, Tolerances{})
	t.Logf("\n%s", cmp)
	if !cmp.Pass {
		t.Errorf("live-vs-sim conformance failed:\n%s", cmp)
	}
}

// TestLiveRandtreeVsSim cross-validates the dissemination path: the same
// randtree multicast scenario under wave churn on both backends. Hop
// counts compare tree fan-out edges per delivery; delivery compares
// per-member stream completeness.
func TestLiveRandtreeVsSim(t *testing.T) {
	liveGate(t)
	s := loadScenario(t, "live-randtree-stream.json")
	live, sim := runBoth(t, s, 42000)

	cmp := Compare(sim, live, Tolerances{})
	t.Logf("\n%s", cmp)
	if !cmp.Pass {
		t.Errorf("live-vs-sim conformance failed:\n%s", cmp)
	}
	if live.Phases[0].OpsDelivered == 0 {
		t.Error("live steady phase delivered nothing")
	}
}

// TestLiveObsPlane runs the observability plane end to end on the live
// backend: every agent serves /metrics over HTTP (the controller's report
// scrape proves it — macedon_uptime_seconds only exists agent-side), the
// fleet exposition carries the same core families the sim engine emits, and
// at least one lookup trace is reconstructable from inject to deliver.
func TestLiveObsPlane(t *testing.T) {
	liveGate(t)
	s := loadScenario(t, "live-churn-lookup.json")
	s.Nodes = 8
	s.Seed = 8081
	bin := buildBinary(t)
	live, err := Run(Config{
		Scenario:    s,
		Speed:       liveSpeed(),
		BasePort:    44000,
		AgentCmd:    []string{bin, "agent"},
		AgentLogDir: t.TempDir(),
		Out:         testWriter{t},
		Obs:         true,
		TraceSample: 1,
		MetricsBase: 44500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if live.Obs == nil {
		t.Fatal("obs enabled but the live report has no obs section")
	}
	for _, family := range []string{
		"macedon_ops_total{kind=\"lookup\"}",
		"macedon_engine_msgs_sent_total",
		"macedon_net_sent_total",
		"macedon_uptime_seconds", // only agents serve this: proves the HTTP scrape path
	} {
		if !strings.Contains(live.Obs.Exposition, family) {
			t.Errorf("fleet exposition missing %s:\n%s", family, live.Obs.Exposition)
		}
	}
	// One reconstructable end-to-end trace: an op whose span chain has both
	// the inject and the deliver hop.
	injected, delivered := map[string]bool{}, false
	for _, line := range live.Obs.Spans {
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		switch f[3] {
		case "inject":
			injected[f[0]] = true
		case "deliver":
			if injected[f[0]] {
				delivered = true
			}
		}
	}
	if !delivered {
		t.Errorf("no trace runs inject→deliver; %d span records", len(live.Obs.Spans))
	}
	if len(live.Obs.Events) == 0 {
		t.Error("no sampled event records")
	}
	var latCount uint64
	for _, p := range live.Phases {
		if p.Obs != nil {
			latCount += p.Obs.Latency.Count
		}
	}
	if latCount == 0 {
		t.Error("per-phase latency histograms are empty")
	}
	// Push-based shipping is the primary fleet source: the controller
	// reconstructs each agent's page by summing its EvMetrics deltas and
	// verifies it equals the poll reply's same-instant exposition for the
	// engine/net families. Any disagreement shows up as a mismatch trace
	// line; full agreement shows up as the summary line.
	agreed := false
	for _, line := range live.Trace {
		if strings.Contains(line, "obs push/poll mismatch") {
			t.Errorf("push-merged exposition disagrees with poll: %s", line)
		}
		if strings.Contains(line, "obs push/poll expositions agree") && !strings.Contains(line, "agree for 0/") {
			agreed = true
		}
	}
	if !agreed {
		t.Error("no agent's push-merged exposition was verified against its poll page")
	}
	// The live report carries the per-phase time series the controller
	// samples from the phase-boundary polls.
	for pi, p := range live.Phases {
		if p.Obs == nil || len(p.Obs.Series.Points) == 0 {
			t.Errorf("phase %d has no live time series", pi)
		}
	}
}

// TestLiveShapingPartition drives a partition through the live backend:
// a two-phase scenario partitions the fleet, and the shaping filters must
// actually drop cross-side traffic (visible as shape drops in the final
// counters).
func TestLiveShapingPartition(t *testing.T) {
	liveGate(t)
	s := &scenario.Scenario{
		Name:           "live-partition",
		Seed:           99,
		Nodes:          8,
		Routers:        80,
		Protocol:       "genchord",
		Join:           scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(6e9)},
		Settle:         scenario.Duration(20e9),
		Drain:          scenario.Duration(5e9),
		HeartbeatAfter: scenario.Duration(2e9),
		FailAfter:      scenario.Duration(8e9),
		Phases: []scenario.Phase{
			{
				Name:     "split",
				Duration: scenario.Duration(20e9),
				Events: []scenario.Event{
					{At: scenario.Duration(2e9), Kind: scenario.EvPartition, Fraction: 0.5},
					{At: scenario.Duration(15e9), Kind: scenario.EvHeal},
				},
				Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 2},
			},
		},
	}
	bin := buildBinary(t)
	live, err := Run(Config{
		Scenario: s,
		Speed:    liveSpeed(),
		BasePort: 43000,
		AgentCmd: []string{bin, "agent"},
		Out:      testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
	if live.Final.PartitionDrops == 0 {
		t.Error("partition produced no shape drops in the live fleet")
	}
}
