package deploy

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"macedon/internal/obs"
	"macedon/internal/scenario"
)

// ctrlObs is the live deployment's observability plane: the controller-side
// twin of the scenario engine's engineObs. It keeps the same metric
// families — workload counters, per-phase latency/hop histograms keyed by
// the same phase labels — samples the same operation population (the
// KeySampler is keyed by the scenario seed, so a live run and a sim run of
// one scenario trace the same ops), and assembles the same Report.Obs
// sections. Agent-local series (engine and socket counters) arrive by
// scraping each agent's /metrics endpoint and folding the expositions
// through obs.Fleet, which sums samples family by family.
//
// All mutable state is guarded by the owning controller's mu; registry
// handles and the event log carry their own synchronization.
type ctrlObs struct {
	seed        int64
	speed       float64
	host        string
	metricsBase int
	sampler     obs.KeySampler

	reg    *obs.Registry
	events *obs.EventLog
	spans  *obs.TraceSet

	opsLookup    *obs.Counter
	opsMulticast *obs.Counter
	opsSkipped   *obs.Counter
	opsDelivered *obs.Counter
	nodesAlive   *obs.Gauge
	latHist      []*obs.Histogram
	hopHist      []*obs.Histogram

	// Per-op forward/delivery tallies (live twin of engineObs' atomic
	// arrays; a single controller process mutates them under mu).
	opFwd map[int]int
	opDel map[int]int

	// series is the live twin of the sim engine's per-phase time series,
	// sampled from the per-phase poll totals at each phase boundary. The
	// columns are the subset of the sim's the live plane can measure, so a
	// live report's series lines up column-for-column with a sim run's.
	series []*obs.Series

	// agentLines collects sampled event-log lines streamed back by agents
	// (EvObs), prefixed with their node index.
	agentLines []string
}

// maxAgentLines bounds the retained agent event stream; beyond it the
// oldest lines are simply not kept (the per-agent ring still has them).
const maxAgentLines = 4096

// liveSeriesColumns is the live plane's shared subset of the sim engine's
// series columns (no scheduler exists here, so no events/pending).
var liveSeriesColumns = []string{"net_sent", "net_delivered", "ops_delivered"}

func newCtrlObs(cfg Config, s *scenario.Scenario, sched *scenario.Schedule) *ctrlObs {
	n := uint64(cfg.TraceSample)
	if n < 1 {
		n = 1
	}
	sampler := obs.KeySampler{Seed: uint64(s.Seed), N: n}
	reg := obs.NewRegistry()
	o := &ctrlObs{
		seed:        s.Seed,
		speed:       cfg.Speed,
		host:        cfg.Host,
		metricsBase: cfg.MetricsBase,
		sampler:     sampler,
		reg:         reg,
		events:      obs.NewEventLog(sampler, obs.LevelInfo),
		spans:       obs.NewTraceSet(0),

		opsLookup:    reg.Counter("macedon_ops_total", "Workload operations injected.", obs.L("kind", "lookup")),
		opsMulticast: reg.Counter("macedon_ops_total", "Workload operations injected.", obs.L("kind", "multicast")),
		opsSkipped:   reg.Counter("macedon_ops_skipped_total", "Workload operations skipped because the sender was down."),
		opsDelivered: reg.Counter("macedon_ops_delivered_total", "Workload deliveries (one per receiving member)."),
		nodesAlive:   reg.Gauge("macedon_nodes_alive", "Nodes currently alive."),

		opFwd: make(map[int]int),
		opDel: make(map[int]int),
	}
	o.latHist = make([]*obs.Histogram, len(sched.Phases))
	o.hopHist = make([]*obs.Histogram, len(sched.Phases))
	o.series = make([]*obs.Series, len(sched.Phases))
	for pi, p := range sched.Phases {
		l := obs.L("phase", fmt.Sprintf("%d-%s", pi, p.Name))
		o.latHist[pi] = reg.Histogram("macedon_op_latency_seconds", "End-to-end operation latency.", obs.LatencyBuckets, l)
		o.hopHist[pi] = reg.Histogram("macedon_op_hops", "Mean overlay hops per delivery of an operation.", obs.HopBuckets, l)
		o.series[pi] = obs.NewSeries(liveSeriesColumns, 0)
	}
	return o
}

// scenTime maps a wall instant to the scenario timeline (wall elapsed
// compressed by the speed factor), so live event timestamps line up with
// the schedule the sim runs on.
func (c *controller) scenTime(t time.Time) time.Duration {
	return time.Duration(float64(t.Sub(c.start)) * c.cfg.Speed)
}

// obsInjectLocked records one injected workload op: counter, sampled event
// record, and the trace's inject span (c.mu held).
func (c *controller) obsInjectLocked(kind string, op scenario.Op) {
	o := c.obs
	if o == nil {
		return
	}
	at := c.scenTime(time.Now())
	if kind == "lookup" {
		o.opsLookup.Inc()
	} else {
		o.opsMulticast.Inc()
	}
	tid := obs.MintTraceID(o.seed, op.ID)
	o.events.EmitAt(at, uint64(op.ID), obs.LevelInfo, "inject",
		obs.F("kind", kind), obs.F("op", op.ID), obs.F("node", op.Node),
		obs.F("trace", fmt.Sprintf("%016x", uint64(tid))))
	if o.sampler.Admit("span", uint64(op.ID)) {
		o.spans.Record(-1, obs.Span{Trace: tid, Op: op.ID, Kind: obs.SpanInject, Node: op.Node, Next: -1, At: at})
	}
}

// obsSkipLocked records a workload op whose sender was down (c.mu held).
func (c *controller) obsSkipLocked(kind string, op scenario.Op) {
	o := c.obs
	if o == nil {
		return
	}
	o.opsSkipped.Inc()
	o.events.EmitAt(c.scenTime(time.Now()), uint64(op.ID), obs.LevelWarn, "skip",
		obs.F("kind", kind), obs.F("op", op.ID), obs.F("node", op.Node))
}

// obsLifecycle records a sampled lifecycle event (kill, revive, partition,
// heal — the same names the sim engine emits), keyed by node index.
func (c *controller) obsLifecycle(key int, name string, fields ...obs.Field) {
	o := c.obs
	if o == nil {
		return
	}
	o.events.EmitAt(c.scenTime(time.Now()), uint64(key), obs.LevelInfo, name, fields...)
}

// obsForwardLocked records one forward hop of a traced op (c.mu held).
func (c *controller) obsForwardLocked(opID, node, next int, at time.Time) {
	o := c.obs
	if o == nil {
		return
	}
	o.opFwd[opID]++
	if o.sampler.Admit("span", uint64(opID)) {
		o.spans.Record(-1, obs.Span{
			Trace: obs.MintTraceID(o.seed, opID), Op: opID,
			Kind: obs.SpanForward, Node: node, Next: next, At: c.scenTime(at),
		})
	}
}

// obsDeliverLocked records one delivery of a traced op (c.mu held).
func (c *controller) obsDeliverLocked(opID, node, phase int, at time.Time, lat time.Duration) {
	o := c.obs
	if o == nil {
		return
	}
	o.opDel[opID]++
	o.opsDelivered.Inc()
	if phase >= 0 && phase < len(o.latHist) {
		o.latHist[phase].Observe(lat.Seconds())
	}
	if o.sampler.Admit("span", uint64(opID)) {
		o.spans.Record(-1, obs.Span{
			Trace: obs.MintTraceID(o.seed, opID), Op: opID,
			Kind: obs.SpanDeliver, Node: node, Next: -1, At: c.scenTime(at),
		})
	}
}

// obsPushLocked folds one pushed delta exposition into agent i's push
// fleet (c.mu held): summing every delta from one generation reconstructs
// that generation's absolute totals, for counters and gauges alike.
func (c *controller) obsPushLocked(i int, expo string) {
	if c.obs == nil || expo == "" {
		return
	}
	sc, err := obs.ParseText([]byte(expo))
	if err != nil {
		c.tracefLocked("obs push node %d: bad exposition: %v", i, err)
		return
	}
	slot := c.agents[i]
	if slot.push == nil {
		slot.push = obs.NewFleet()
	}
	slot.push.Add(sc)
}

// obsPhaseSampleLocked appends phase pi's boundary sample to the live time
// series (c.mu held): the cumulative totals the phase-end poll just
// gathered, stamped at the phase's end offset on the scenario timeline —
// the same virtual-time axis the sim series uses.
func (c *controller) obsPhaseSampleLocked(pi int, row *scenario.PhaseTotals) {
	o := c.obs
	if o == nil || pi >= len(o.series) {
		return
	}
	ph := c.sched.Phases[pi]
	o.series[pi].Append(ph.End-ph.Start,
		float64(row.Net.Sent), float64(row.Net.Delivered), float64(o.opsDelivered.Load()))
}

// obsAgentLineLocked retains one EvObs line streamed by agent i (c.mu held).
func (c *controller) obsAgentLineLocked(i int, line string) {
	o := c.obs
	if o == nil || len(o.agentLines) >= maxAgentLines {
		return
	}
	o.agentLines = append(o.agentLines, fmt.Sprintf("node=%d %s", i, line))
}

// scrapeFleet fetches every live agent's /metrics exposition. It runs
// without c.mu (HTTP round trips) right before the final report assembly.
func (c *controller) scrapeFleet() []*obs.Scrape {
	if c.obs == nil || c.obs.metricsBase == 0 {
		return nil
	}
	c.mu.Lock()
	up := append([]bool(nil), c.alive...)
	c.mu.Unlock()
	client := &http.Client{Timeout: 3 * time.Second}
	var out []*obs.Scrape
	for i, alive := range up {
		if !alive {
			continue
		}
		sc, err := scrapeAgent(client, fmt.Sprintf("http://%s:%d/metrics", c.obs.host, c.obs.metricsBase+i))
		if err != nil {
			c.tracef("obs scrape node %d failed: %v", i, err)
			continue
		}
		out = append(out, sc)
	}
	return out
}

func scrapeAgent(client *http.Client, url string) (*obs.Scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFrame))
	if err != nil {
		return nil, err
	}
	return obs.ParseText(body)
}

// finishObsLocked assembles the live run's Report.Obs (c.mu held): hop
// histograms from the final per-op tallies, fleet-level mirrors when no
// agent scrape supplied the engine/net families, and the merged exposition.
func (c *controller) finishObsLocked(rep *scenario.Report, scrapes []*obs.Scrape) {
	o := c.obs
	if o == nil {
		return
	}
	for opID, del := range o.opDel {
		if del == 0 {
			continue
		}
		ph, ok := c.sendPhase[opID]
		if !ok || ph < 0 || ph >= len(o.hopHist) {
			continue
		}
		o.hopHist[ph].Observe(float64(o.opFwd[opID]+del) / float64(del))
	}
	// Push shipping is the primary per-agent source (it needs no inbound
	// path to the fleet); the HTTP scrape is the fallback. Each live slot
	// contributes the page its last poll captured: the push-reconstructed
	// exposition, or the reply's own page if no delta ever landed. Where
	// both exist they must agree exactly on the engine/net families — the
	// agent flushed its delta immediately before replying — so the check
	// runs on every report and any drift lands in the trace.
	var pages []*obs.Scrape
	agree, mismatch := 0, 0
	for i, slot := range c.agents {
		if !c.alive[i] {
			continue
		}
		page := slot.pushExpo
		if page == "" {
			page = slot.expo
		} else if slot.expo != "" {
			if d := pushPollMismatch(slot.pushExpo, slot.expo); d != "" {
				mismatch++
				c.tracefLocked("obs push/poll mismatch node %d: %s", i, d)
			} else {
				agree++
			}
		}
		if page == "" {
			continue
		}
		if sc, err := obs.ParseText([]byte(page)); err == nil {
			pages = append(pages, sc)
		}
	}
	if agree+mismatch > 0 {
		c.tracefLocked("obs push/poll expositions agree for %d/%d agents", agree, agree+mismatch)
	}
	if len(pages) == 0 {
		pages = scrapes
	}
	if len(pages) == 0 {
		// No HTTP plane: mirror the polled totals into the same families the
		// agents would have served, so the exposition's family set matches
		// the sim engine's either way.
		var msgsSent, msgsRecv, bytesSent, bytesRecv uint64
		for i, slot := range c.agents {
			if slot.hasStats && c.alive[i] {
				msgsSent += slot.metrics.MsgsSent
				msgsRecv += slot.metrics.MsgsRecv
				bytesSent += slot.metrics.BytesSent
				bytesRecv += slot.metrics.BytesRecv
			}
		}
		o.reg.Counter("macedon_engine_msgs_sent_total", "Protocol messages sent by live nodes.").Store(msgsSent)
		o.reg.Counter("macedon_engine_msgs_recv_total", "Protocol messages received by live nodes.").Store(msgsRecv)
		o.reg.Counter("macedon_engine_bytes_sent_total", "Protocol bytes sent by live nodes.").Store(bytesSent)
		o.reg.Counter("macedon_engine_bytes_recv_total", "Protocol bytes received by live nodes.").Store(bytesRecv)
		net := rep.Final
		o.reg.Counter("macedon_net_sent_total", "Network frames sent.").Store(net.Sent)
		o.reg.Counter("macedon_net_delivered_total", "Network frames delivered.").Store(net.Delivered)
		o.reg.Counter("macedon_net_bytes_total", "Network payload bytes carried.").Store(net.Bytes)
		o.reg.Counter("macedon_net_dropped_total", "Network frames dropped (all causes).").
			Store(net.RandomLoss + net.PartitionDrops)
	}
	o.nodesAlive.Set(float64(c.countLiveLocked()))

	for pi := range rep.Phases {
		if pi < len(o.latHist) {
			rep.Phases[pi].Obs = &scenario.PhaseObs{
				Latency: o.latHist[pi].Snapshot(),
				Hops:    o.hopHist[pi].Snapshot(),
				Series:  o.series[pi].Snapshot(),
			}
		}
	}
	fleet := obs.NewFleet()
	if own, err := obs.ParseText([]byte(o.reg.Text())); err == nil {
		fleet.Add(own)
	}
	for _, sc := range pages {
		fleet.Add(sc)
	}
	rep.Obs = &scenario.ObsReport{
		Exposition: fleet.Text(),
		Events:     append(o.events.Lines(), o.agentLines...),
		Spans:      o.spans.Lines(),
	}
}

// pushPollMismatch compares a push-reconstructed exposition with the poll
// reply's page over the engine/net families and returns a description of
// the first differing sample ("" when they agree). Those families are
// integral counters well under 2^53, so the telescoped float sum the push
// path produces is exact and the comparison can demand equality.
func pushPollMismatch(pushExpo, pollExpo string) string {
	a, errA := obs.ParseText([]byte(pushExpo))
	b, errB := obs.ParseText([]byte(pollExpo))
	if errA != nil || errB != nil {
		return "unparseable exposition"
	}
	filter := func(s *obs.Scrape) map[string]float64 {
		m := make(map[string]float64)
		for _, sm := range s.Samples {
			if strings.HasPrefix(sm.Name, "macedon_engine_") || strings.HasPrefix(sm.Name, "macedon_net_") {
				m[sm.Name+" "+sm.Labels] = sm.Value
			}
		}
		return m
	}
	am, bm := filter(a), filter(b)
	for k, av := range am {
		bv, ok := bm[k]
		if !ok {
			return fmt.Sprintf("%s: missing from poll page", k)
		}
		if av != bv {
			return fmt.Sprintf("%s: push %v poll %v", k, av, bv)
		}
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			return fmt.Sprintf("%s: missing from push page", k)
		}
	}
	return ""
}

// nextIndex resolves a forward event's next-hop address to its fleet index
// (-1 if unknown). addrIdx is built once at construction and only read.
func (c *controller) nextIndex(a uint32) int {
	if i, ok := c.addrIdx[a]; ok {
		return i
	}
	return -1
}
