// Package deploy is the live-deployment subsystem: the paper's "run the
// same code on a real network" pillar (§4.3, ModelNet/PlanetLab in the
// original) realized as a controller/agent architecture. `macedon agent`
// runs ONE overlay node per OS process over livenet sockets; `macedon
// deploy` launches the fleet, compiles a declarative scenario to
// wall-clock directives — churn becomes SIGKILL and process restart,
// partitions and degradations become per-peer shaping filters inside the
// livenet endpoints, workloads become timed control-plane commands — and
// streams per-node events and metrics back over the control protocol to
// render the same per-phase report the emulated path emits. docs/deploy.md
// is the subsystem tour; the live-vs-sim conformance harness
// (live_test.go) runs one scenario on both backends and requires the
// protocol-level metrics to agree.
package deploy

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"macedon/internal/check"
)

// maxFrame bounds a control frame; anything larger is a protocol error.
const maxFrame = 1 << 20

// Control message kinds.
const (
	KindHello   = "hello"   // agent → controller, first message on connect
	KindConfig  = "config"  // controller → agent, in response to hello
	KindShape   = "shape"   // controller → agent, replace shaping rules
	KindOp      = "op"      // controller → agent, workload operation
	KindPoll    = "poll"    // controller → agent, request metrics
	KindMetrics = "metrics" // agent → controller, poll response
	KindEvent   = "event"   // agent → controller, streamed node event
	KindQuit    = "quit"    // controller → agent, stop and exit
)

// Msg is the control protocol envelope: one frame, one message. Exactly
// the field matching Kind is populated.
type Msg struct {
	Kind    string       `json:"kind"`
	Hello   *Hello       `json:"hello,omitempty"`
	Config  *AgentConfig `json:"config,omitempty"`
	Shape   *ShapeCmd    `json:"shape,omitempty"`
	Op      *OpCmd       `json:"op,omitempty"`
	Metrics *Metrics     `json:"metrics,omitempty"`
	Event   *Event       `json:"event,omitempty"`
	// PollState, on a poll, asks the agent to extract its overlay routing
	// state alongside the counters; State carries it back on the metrics
	// reply. The correctness plane's phase-boundary invariant checks ride
	// the existing poll round trip rather than a new message kind.
	PollState bool             `json:"poll_state,omitempty"`
	State     *check.NodeState `json:"state,omitempty"`
}

// Hello identifies a connecting agent process.
type Hello struct {
	// Node is the agent's node index (from its command line).
	Node int `json:"node"`
	// Pid is the agent's OS process id.
	Pid int `json:"pid"`
}

// AgentConfig tells a fresh agent everything it needs to become overlay
// node Node: its overlay address, the full fleet address table, the
// protocol stack, and its multicast-session role.
type AgentConfig struct {
	Node int `json:"node"`
	// Addr is the node's overlay address — the same address (and hence
	// hash key) the emulated cluster assigns node Node, so live and sim
	// runs of one scenario route the identical key space.
	Addr uint32 `json:"addr"`
	// Bootstrap is the well-known bootstrap address (node 0's).
	Bootstrap uint32 `json:"bootstrap"`
	// Protocol names the stack (harness.ScenarioStack).
	Protocol string `json:"protocol"`
	// Table maps every fleet address (decimal string) to "host:port".
	Table map[string]string `json:"table"`
	// HeartbeatAfterNs/FailAfterNs tune the engine failure detector
	// exactly as the scenario's fields do for the emulated run.
	HeartbeatAfterNs int64 `json:"heartbeat_after_ns,omitempty"`
	FailAfterNs      int64 `json:"fail_after_ns,omitempty"`
	// Group, when nonzero semantics apply (HasGroup), is the multicast
	// session key; the bootstrap creates it, everyone else joins.
	HasGroup    bool   `json:"has_group,omitempty"`
	Group       uint32 `json:"group,omitempty"`
	CreateGroup bool   `json:"create_group,omitempty"`
	// Shape carries the shaping rules already in force (an agent restarted
	// mid-partition must come back inside it).
	Shape *ShapeCmd `json:"shape,omitempty"`
	// MetricsPort, when nonzero, makes the agent serve its observability
	// plane over HTTP on MetricsHost:MetricsPort: Prometheus text-format
	// metrics at /metrics and a JSON status snapshot at /debug/obs.
	MetricsPort int `json:"metrics_port,omitempty"`
	// MetricsHost is the metrics listener's bind address; empty means
	// 127.0.0.1. Real-cluster deployments bind a routable interface (or
	// 0.0.0.0) so an external Prometheus can scrape the fleet.
	MetricsHost string `json:"metrics_host,omitempty"`
	// Obs streams the agent's sampled structured event log back over the
	// control connection (EvObs events), rate-limited by a wall-clock token
	// bucket so a busy node cannot flood the controller. It also enables
	// push-based metric shipping: the agent periodically sends EvMetrics
	// delta expositions, so the controller needs no scrape path to NAT'd
	// hosts.
	Obs bool `json:"obs,omitempty"`
	// PushIntervalNs overrides the EvMetrics push cadence (default 1s).
	PushIntervalNs int64 `json:"push_interval_ns,omitempty"`
}

// PeerRule is one serialized shaping rule.
type PeerRule struct {
	Peer    uint32  `json:"peer"`
	Drop    bool    `json:"drop,omitempty"`
	Loss    float64 `json:"loss,omitempty"`
	DelayNs int64   `json:"delay_ns,omitempty"`
}

// ShapeCmd replaces the agent's entire shaping state: the listed per-peer
// rules plus an optional default rule for unlisted peers.
type ShapeCmd struct {
	Rules   []PeerRule `json:"rules,omitempty"`
	Default *PeerRule  `json:"default,omitempty"`
}

// OpCmd is one workload operation the agent must issue.
type OpCmd struct {
	// ID tags the operation; it rides the payload type field so deliver
	// and forward events can be matched to it, exactly as in the emulator.
	ID int `json:"id"`
	// Kind is "lookup" or "multicast".
	Kind string `json:"op"`
	// Key is the lookup target.
	Key uint32 `json:"key,omitempty"`
	// Size is the payload size in bytes.
	Size int `json:"size"`
}

// Event kinds an agent streams.
const (
	EvDeliver = "deliver" // workload payload delivered at this node
	EvForward = "forward" // workload payload forwarded through this node
	EvState   = "state"   // a protocol instance changed FSM state
	EvFail    = "fail"    // the failure detector declared a peer dead
	EvObs     = "obs"     // one sampled structured event-log line
	EvMetrics = "metrics" // a pushed delta exposition of the agent's registry
)

// Event is one streamed per-node event.
type Event struct {
	Kind string `json:"ev"`
	// Op is the workload operation id (deliver, forward).
	Op int `json:"opid,omitempty"`
	// AtUnixNano is the agent's wall clock when the event fired. On one
	// host this is directly comparable to the controller's clock.
	AtUnixNano int64 `json:"at"`
	// Proto and State describe state events; Peer describes failures.
	Proto string `json:"proto,omitempty"`
	From  string `json:"from,omitempty"`
	State string `json:"state,omitempty"`
	Peer  uint32 `json:"peer,omitempty"`
	// Next is the next-hop overlay address of a forward event, so the
	// controller can reconstruct the hop chain of an operation trace.
	Next uint32 `json:"next,omitempty"`
	// Line is one rendered event-log record (EvObs).
	Line string `json:"line,omitempty"`
	// Expo is a delta exposition page (EvMetrics): each sample's value is
	// the change since the agent's previous successful push, so the
	// controller reconstructs absolute totals by summing every delta.
	Expo string `json:"expo,omitempty"`
}

// Metrics is an agent's counter snapshot: engine counters summed over the
// protocol stack plus livenet socket counters.
type Metrics struct {
	MsgsSent     uint64 `json:"msgs_sent"`
	MsgsRecv     uint64 `json:"msgs_recv"`
	BytesSent    uint64 `json:"bytes_sent"`
	BytesRecv    uint64 `json:"bytes_recv"`
	Failures     uint64 `json:"failures"`
	NetSent      uint64 `json:"net_sent"`
	NetRecv      uint64 `json:"net_recv"`
	NetBytesSent uint64 `json:"net_bytes_sent"`
	NetBytesRecv uint64 `json:"net_bytes_recv"`
	ShapeDrops   uint64 `json:"shape_drops"`
	LossDrops    uint64 `json:"loss_drops"`
	// Expo is the agent's full exposition page, captured at the same
	// instant as the counters above (obs-enabled agents only). Because the
	// agent flushes a final delta push before replying to the poll, the
	// controller's push-merged fleet totals equal this page's totals — the
	// equality the live-vs-sim acceptance gate checks.
	Expo string `json:"expo,omitempty"`
}

// Conn frames control messages over a TCP connection: 4-byte big-endian
// length prefix, JSON body. Writes are serialized; reads belong to one
// reader goroutine.
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex
	w  *bufio.Writer
}

// NewConn wraps a connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// Send writes one message.
func (c *Conn) Send(m *Msg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("deploy: control frame of %d bytes", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	c.wm.Lock()
	defer c.wm.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(body); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one message.
func (c *Conn) Recv() (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("deploy: control frame of %d bytes", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return nil, err
	}
	var m Msg
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("deploy: bad control frame: %v", err)
	}
	return &m, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// SetDeadline bounds the next read or write.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }
