// Package dsl implements the MACEDON domain-specific language of the
// paper's Figure 4: a lexer, recursive-descent parser, and semantic
// validator for .mac protocol specifications. The AST it produces drives
// the code generator (internal/codegen), which emits Go agents for the
// engine.
//
// A specification declares a protocol header (name, optional base layer,
// addressing mode, trace level), constants, FSM states, neighbor types,
// transports, messages, auxiliary data (scalars, timers, neighbor lists,
// and the indexed collections nodeset/nodetable/keymap), and guarded
// transitions whose bodies are written in a C-like action language:
// assignments, handler-scoped locals, if/else, foreach over collections,
// early return, message transmission, and the action-library primitives
// (state changes, timer scheduling, neighbor/list/table/map management,
// ring-interval and prefix key arithmetic). The full language reference is
// docs/maclang.md.
//
// Statements outside the recognized grammar are not rejected: the parser
// preserves them as OpaqueStmt nodes, exactly as the paper's translator
// passed unknown C fragments through, and the code generator turns them
// into TODO comments. Parse and Validate errors carry line:column
// positions (Error) for `macedon check` diagnostics.
package dsl

import "fmt"

// Spec is a parsed PROTOCOL SPECIFICATION.
type Spec struct {
	Name       string // protocol name
	Uses       string // base protocol for layering ("" when lowest)
	Addressing string // "hash" (default) or "ip"
	Trace      string // "off" (default), "low", "med", "high"

	Constants     []Constant
	States        []string
	NeighborTypes []NeighborType
	Transports    []Transport
	Messages      []Message
	StateVars     []StateVar
	Transitions   []Transition
}

// Constant is one CONSTANTS entry.
type Constant struct {
	Name  string
	Value string
	Pos   Pos
}

// NeighborType declares a neighbor set type with per-neighbor fields.
type NeighborType struct {
	Name   string
	Max    string // literal or constant name; "" = 1
	Fields []Field
	Pos    Pos
}

// Transport declares a transport instance: kind TCP, UDP, or SWP.
type Transport struct {
	Kind string
	Name string
	Pos  Pos
}

// Message declares a message with an optional default transport binding.
type Message struct {
	Transport string // "" for higher-layer messages
	Name      string
	Fields    []Field
	Pos       Pos
}

// Field is a typed field in a message or neighbor type.
type Field struct {
	Type string // int, double, key, node, buffer, string, nodeset, keyset
	Name string
	Pos  Pos
}

// StateVarKind discriminates auxiliary-data entries.
type StateVarKind int

// State variable kinds.
const (
	VarPlain StateVarKind = iota // typed scalar
	VarTimer
	VarNeighborList
	VarTable // fixed-size indexed node table ("nodetable name SIZE;")
)

// StateVar is one auxiliary_data entry.
type StateVar struct {
	Kind       StateVarKind
	Type       string // scalar type, or the neighbor type name
	Name       string
	Period     string // timers: default period expression ("" = none)
	Periodic   bool   // timers: auto re-arm
	Max        string // neighbor lists: capacity; node tables: size
	FailDetect bool   // neighbor lists: engine failure monitoring
	Pos        Pos
}

// TransitionKind discriminates the three event classes of §3.1.
type TransitionKind int

// Transition kinds.
const (
	TransAPI TransitionKind = iota
	TransTimer
	TransRecv
	TransForward
)

// String names the kind as the grammar does.
func (k TransitionKind) String() string {
	switch k {
	case TransAPI:
		return "API"
	case TransTimer:
		return "timer"
	case TransRecv:
		return "recv"
	default:
		return "forward"
	}
}

// Transition is one TRANSITIONS entry.
type Transition struct {
	Guard   StateGuard
	Kind    TransitionKind
	Name    string // API kind, timer name, or message name
	Locking string // "read" or "write" (default)
	Body    []Stmt
	Pos     Pos
}

// StateGuard is a parsed STATE EXPR.
type StateGuard interface {
	guard()
	String() string
}

// GuardAny matches every state.
type GuardAny struct{}

func (GuardAny) guard()         {}
func (GuardAny) String() string { return "any" }

// GuardStates matches an alternation of states.
type GuardStates struct{ States []string }

func (GuardStates) guard() {}
func (g GuardStates) String() string {
	s := ""
	for i, st := range g.States {
		if i > 0 {
			s += "|"
		}
		s += st
	}
	return "(" + s + ")"
}

// GuardNot negates a guard.
type GuardNot struct{ Inner StateGuard }

func (GuardNot) guard()           {}
func (g GuardNot) String() string { return "!" + g.Inner.String() }

// Stmt is one statement of the action language (§3.3). Unrecognized C-style
// statements parse as Opaque so every published spec round-trips.
type Stmt interface {
	stmt()
	Position() Pos
}

// CallStmt invokes a primitive: state_change, timer_sched, neighbor_add,
// deliver, notify, upcall/downcall, or a message transmission
// ("send <msg>(dest, field=value, ...)").
type CallStmt struct {
	Fn   string
	Args []Expr
	// Msg is set for transmission statements: the message being sent, with
	// Args[0] the destination and Fields the named field initializers.
	Msg    string
	Fields []FieldInit
	Pos    Pos
}

// FieldInit is a named field initializer in a transmission statement.
type FieldInit struct {
	Name  string
	Value Expr
}

func (s *CallStmt) stmt()         {}
func (s *CallStmt) Position() Pos { return s.Pos }

// AssignStmt assigns to a declared state variable.
type AssignStmt struct {
	Target string
	Value  Expr
	Pos    Pos
}

func (s *AssignStmt) stmt()         {}
func (s *AssignStmt) Position() Pos { return s.Pos }

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

func (s *IfStmt) stmt()         {}
func (s *IfStmt) Position() Pos { return s.Pos }

// ForeachStmt iterates a node collection: a neighbor list, a nodeset state
// variable, a nodetable, or a nodeset-valued expression such as a message
// field — "foreach (k in kids) { ... }", "foreach (l in field(leaves)) ...".
type ForeachStmt struct {
	Var  string
	List Expr
	Body []Stmt
	Pos  Pos
}

func (s *ForeachStmt) stmt()         {}
func (s *ForeachStmt) Position() Pos { return s.Pos }

// LocalStmt declares a handler-scoped local variable with an optional
// initializer: "node best;", "int row = 0;". Locals are visible from the
// declaration to the end of the enclosing block.
type LocalStmt struct {
	Type  string // scalar type: int, double, bool, key, node, ...
	Name  string
	Value Expr // nil when the declaration has no initializer
	Pos   Pos
}

func (s *LocalStmt) stmt()         {}
func (s *LocalStmt) Position() Pos { return s.Pos }

// ReturnStmt ends the enclosing transition early: "return;".
type ReturnStmt struct {
	Pos Pos
}

func (s *ReturnStmt) stmt()         {}
func (s *ReturnStmt) Position() Pos { return s.Pos }

// OpaqueStmt preserves statements outside the translatable subset.
type OpaqueStmt struct {
	Text string
	Pos  Pos
}

func (s *OpaqueStmt) stmt()         {}
func (s *OpaqueStmt) Position() Pos { return s.Pos }

// Expr is an action-language expression.
type Expr interface {
	expr()
	String() string
}

// Ident references a state variable or builtin (from, self, bootstrap).
type Ident struct{ Name string }

func (Ident) expr()            {}
func (e Ident) String() string { return e.Name }

// IntLit is an integer literal.
type IntLit struct{ Value string }

func (IntLit) expr()            {}
func (e IntLit) String() string { return e.Value }

// CallExpr invokes a value primitive: field(x), neighbor_size(l),
// neighbor_random(l), neighbor_query(l, e), neighbor_full(l).
type CallExpr struct {
	Fn   string
	Args []Expr
}

func (CallExpr) expr() {}
func (e CallExpr) String() string {
	s := e.Fn + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// BinExpr is a binary operation: == != < > <= >= && || + - .
type BinExpr struct {
	Op   string
	L, R Expr
}

func (BinExpr) expr() {}
func (e BinExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct{ Inner Expr }

func (NotExpr) expr()            {}
func (e NotExpr) String() string { return "!" + e.Inner.String() }

// Pos locates a construct in the source for error messages.
type Pos struct {
	Line, Col int
}

// String renders the position.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned specification error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }
