package dsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macedon/internal/repo"
)

const miniSpec = `
// comment
protocol demo
addressing ip
trace_low
constants { MAX = 4; }
states { joining; joined; }
neighbor_types {
  parent_t 1 { }
  kids_t MAX { double rtt; }
}
transports { UDP BE; TCP REL; SWP WIN; }
messages {
  BE join { }
  REL reply { int code; node who; buffer blob; }
}
auxiliary_data {
  node root;
  int count;
  timer tick 1000;
  fail_detect kids_t kids MAX;
  parent_t parent;
}
transitions {
  init API init { root = bootstrap; state_change(joining); }
  any recv join [locking read;] { send reply(from, code = 1); }
  !(joining|init) recv reply { count = field(code); }
  joined timer tick { timer_sched(tick, 1000); }
  (joining|joined) API error { neighbor_clear(kids); }
}
`

func TestParseMiniSpec(t *testing.T) {
	spec, err := Parse(miniSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || spec.Addressing != "ip" || spec.Trace != "low" {
		t.Fatalf("headers: %+v", spec)
	}
	if len(spec.States) != 2 || len(spec.Transports) != 3 || len(spec.Messages) != 2 {
		t.Fatalf("sections: states=%d transports=%d messages=%d",
			len(spec.States), len(spec.Transports), len(spec.Messages))
	}
	if len(spec.Transitions) != 5 {
		t.Fatalf("transitions = %d", len(spec.Transitions))
	}
	tr := spec.Transitions[2]
	if tr.Kind != TransRecv || tr.Name != "reply" {
		t.Fatalf("transition 2 = %+v", tr)
	}
	not, ok := tr.Guard.(GuardNot)
	if !ok {
		t.Fatalf("guard = %T", tr.Guard)
	}
	states, ok := not.Inner.(GuardStates)
	if !ok || len(states.States) != 2 || states.States[0] != "joining" {
		t.Fatalf("inner guard = %+v", not.Inner)
	}
	if spec.Transitions[1].Locking != "read" {
		t.Fatal("locking option lost")
	}
	if spec.Transitions[0].Locking != "write" {
		t.Fatal("default locking should be write")
	}
	// Statement shapes.
	body := spec.Transitions[0].Body
	if _, ok := body[0].(*AssignStmt); !ok {
		t.Fatalf("stmt 0 = %T", body[0])
	}
	if cs, ok := body[1].(*CallStmt); !ok || cs.Fn != "state_change" {
		t.Fatalf("stmt 1 = %+v", body[1])
	}
}

func TestParseLayeredSpec(t *testing.T) {
	src := `
protocol mscribe uses pastry
states { running; }
messages { joinmsg { key group; } }
transitions {
  any recv joinmsg { }
  any forward joinmsg { quash(); }
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Uses != "pastry" {
		t.Fatalf("uses = %q", spec.Uses)
	}
	if spec.Transitions[1].Kind != TransForward {
		t.Fatal("forward transition lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"no protocol", `states { a; }`},
		{"unknown section", `protocol p bogus { }`},
		{"undeclared message transition", `protocol p transports { UDP u; } transitions { any recv nope { } }`},
		{"undeclared timer transition", `protocol p transitions { any timer nope { } }`},
		{"bad addressing", `protocol p addressing carrier`},
		{"bad API", `protocol p transitions { any API frobnicate { } }`},
		{"guard unknown state", `protocol p transitions { flying API init { } }`},
		{"transport on layered", `protocol p uses q transports { UDP u; }`},
		{"message without transport", `protocol p messages { m { } }`},
		{"duplicate state", `protocol p states { a; a; }`},
		{"unterminated block", `protocol p states { a;`},
		{"message bad transport", `protocol p transports { UDP u; } messages { X m { } }`},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestOpaqueStatementsPreserved(t *testing.T) {
	src := `
protocol p
transports { UDP u; }
messages { u m { int x; } }
transitions {
  any recv m {
    weird_c_call(a->b, *ptr);
    for (i = 0; i < 10; i = i + 1) { something(); }
  }
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := spec.Transitions[0].Body
	if len(body) < 2 {
		t.Fatalf("body = %d stmts", len(body))
	}
	found := 0
	for _, st := range body {
		if _, ok := st.(*OpaqueStmt); ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("opaque statements were dropped")
	}
}

func TestCountLines(t *testing.T) {
	src := "protocol x\n\n// comment only\nstates { a; }\n/* block\ncomment */\ntransports { UDP u; }\n"
	if n := CountLines(src); n != 3 {
		t.Fatalf("CountLines = %d, want 3", n)
	}
}

// TestAllBundledSpecsParse validates every specs/*.mac in the repository:
// the paper's expressiveness claim (§4.1) for this codebase.
func TestAllBundledSpecsParse(t *testing.T) {
	paths, err := repo.Specs()
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	names := map[string]bool{}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(string(src))
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		names[spec.Name] = true
		base := strings.TrimSuffix(filepath.Base(path), ".mac")
		if spec.Name != base {
			t.Errorf("%s declares protocol %q", path, spec.Name)
		}
		if n := CountLines(string(src)); n < 20 {
			t.Errorf("%s suspiciously small: %d lines", path, n)
		}
	}
	for _, want := range []string{"randtree", "overcast", "chord", "pastry", "scribe", "splitstream", "nice", "bullet", "ammo"} {
		if !names[want] {
			t.Errorf("missing bundled spec for %s", want)
		}
	}
}
