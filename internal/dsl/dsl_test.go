package dsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macedon/internal/repo"
)

const miniSpec = `
// comment
protocol demo
addressing ip
trace_low
constants { MAX = 4; }
states { joining; joined; }
neighbor_types {
  parent_t 1 { }
  kids_t MAX { double rtt; }
}
transports { UDP BE; TCP REL; SWP WIN; }
messages {
  BE join { }
  REL reply { int code; node who; buffer blob; }
}
auxiliary_data {
  node root;
  int count;
  timer tick 1000;
  fail_detect kids_t kids MAX;
  parent_t parent;
}
transitions {
  init API init { root = bootstrap; state_change(joining); }
  any recv join [locking read;] { send reply(from, code = 1); }
  !(joining|init) recv reply { count = field(code); }
  joined timer tick { timer_sched(tick, 1000); }
  (joining|joined) API error { neighbor_clear(kids); }
}
`

func TestParseMiniSpec(t *testing.T) {
	spec, err := Parse(miniSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || spec.Addressing != "ip" || spec.Trace != "low" {
		t.Fatalf("headers: %+v", spec)
	}
	if len(spec.States) != 2 || len(spec.Transports) != 3 || len(spec.Messages) != 2 {
		t.Fatalf("sections: states=%d transports=%d messages=%d",
			len(spec.States), len(spec.Transports), len(spec.Messages))
	}
	if len(spec.Transitions) != 5 {
		t.Fatalf("transitions = %d", len(spec.Transitions))
	}
	tr := spec.Transitions[2]
	if tr.Kind != TransRecv || tr.Name != "reply" {
		t.Fatalf("transition 2 = %+v", tr)
	}
	not, ok := tr.Guard.(GuardNot)
	if !ok {
		t.Fatalf("guard = %T", tr.Guard)
	}
	states, ok := not.Inner.(GuardStates)
	if !ok || len(states.States) != 2 || states.States[0] != "joining" {
		t.Fatalf("inner guard = %+v", not.Inner)
	}
	if spec.Transitions[1].Locking != "read" {
		t.Fatal("locking option lost")
	}
	if spec.Transitions[0].Locking != "write" {
		t.Fatal("default locking should be write")
	}
	// Statement shapes.
	body := spec.Transitions[0].Body
	if _, ok := body[0].(*AssignStmt); !ok {
		t.Fatalf("stmt 0 = %T", body[0])
	}
	if cs, ok := body[1].(*CallStmt); !ok || cs.Fn != "state_change" {
		t.Fatalf("stmt 1 = %+v", body[1])
	}
}

func TestParseLayeredSpec(t *testing.T) {
	src := `
protocol mscribe uses pastry
states { running; }
messages { joinmsg { key group; } }
transitions {
  any recv joinmsg { }
  any forward joinmsg { quash(); }
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Uses != "pastry" {
		t.Fatalf("uses = %q", spec.Uses)
	}
	if spec.Transitions[1].Kind != TransForward {
		t.Fatal("forward transition lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"no protocol", `states { a; }`},
		{"unknown section", `protocol p bogus { }`},
		{"undeclared message transition", `protocol p transports { UDP u; } transitions { any recv nope { } }`},
		{"undeclared timer transition", `protocol p transitions { any timer nope { } }`},
		{"bad addressing", `protocol p addressing carrier`},
		{"bad API", `protocol p transitions { any API frobnicate { } }`},
		{"guard unknown state", `protocol p transitions { flying API init { } }`},
		{"transport on layered", `protocol p uses q transports { UDP u; }`},
		{"message without transport", `protocol p messages { m { } }`},
		{"duplicate state", `protocol p states { a; a; }`},
		{"unterminated block", `protocol p states { a;`},
		{"message bad transport", `protocol p transports { UDP u; } messages { X m { } }`},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestOpaqueStatementsPreserved(t *testing.T) {
	src := `
protocol p
transports { UDP u; }
messages { u m { int x; } }
transitions {
  any recv m {
    weird_c_call(a->b, *ptr);
    for (i = 0; i < 10; i = i + 1) { something(); }
  }
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := spec.Transitions[0].Body
	if len(body) < 2 {
		t.Fatalf("body = %d stmts", len(body))
	}
	found := 0
	for _, st := range body {
		if _, ok := st.(*OpaqueStmt); ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("opaque statements were dropped")
	}
}

// TestParseGrownSubset covers the structured-overlay constructs: local
// declarations, return, nodetable and keymap state, foreach over arbitrary
// collection expressions, and multiplicative arithmetic.
func TestParseGrownSubset(t *testing.T) {
	src := `
protocol p
constants { N = 8; }
transports { UDP u; }
messages { u m { key target; nodeset others; } }
auxiliary_data {
  nodeset ring;
  nodetable table N;
  keymap cache;
  int cursor;
}
transitions {
  any recv m {
    node best;
    int idx = 0;
    idx = (cursor * 2 + 1) % N;
    best = table_get(table, idx);
    if (best == nil_node) {
      return;
    }
    foreach (x in field(others)) {
      list_append(ring, x);
    }
    foreach (x in ring) {
      table_put(table, idx, x);
    }
  }
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var table, cache *StateVar
	for i := range spec.StateVars {
		switch spec.StateVars[i].Name {
		case "table":
			table = &spec.StateVars[i]
		case "cache":
			cache = &spec.StateVars[i]
		}
	}
	if table == nil || table.Kind != VarTable || table.Max != "N" {
		t.Fatalf("nodetable state var = %+v", table)
	}
	if cache == nil || cache.Kind != VarPlain || cache.Type != "keymap" {
		t.Fatalf("keymap state var = %+v", cache)
	}
	body := spec.Transitions[0].Body
	if l, ok := body[0].(*LocalStmt); !ok || l.Type != "node" || l.Name != "best" || l.Value != nil {
		t.Fatalf("stmt 0 = %#v", body[0])
	}
	if l, ok := body[1].(*LocalStmt); !ok || l.Value == nil {
		t.Fatalf("stmt 1 = %#v", body[1])
	}
	if a, ok := body[2].(*AssignStmt); !ok || !strings.Contains(a.Value.String(), "%") {
		t.Fatalf("stmt 2 = %#v", body[2])
	}
	ifst, ok := body[4].(*IfStmt)
	if !ok || len(ifst.Then) != 1 {
		t.Fatalf("stmt 4 = %#v", body[4])
	}
	if _, ok := ifst.Then[0].(*ReturnStmt); !ok {
		t.Fatalf("if body = %#v", ifst.Then[0])
	}
	fe, ok := body[5].(*ForeachStmt)
	if !ok {
		t.Fatalf("stmt 5 = %#v", body[5])
	}
	if call, ok := fe.List.(CallExpr); !ok || call.Fn != "field" {
		t.Fatalf("foreach list = %#v", fe.List)
	}
}

// TestParseErrorPositions checks the line:column coordinates of positioned
// diagnostics, which `macedon check` users navigate by.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name, src string
		line, col int
	}{
		{"bad char", "protocol p\ntransports { UDP u; }\nmessages { u m { int #; } }\n", 3, 22},
		{"bad section", "protocol p\nnonsense { }\n", 2, 1},
		{"bad transport kind", "protocol p\ntransports {\n  QUIC q;\n}\n", 3, 3},
		{"missing semicolon", "protocol p\nstates { a b }\n", 2, 12},
		{"bad state var type", "protocol p\nauxiliary_data {\n  widget w;\n}\n", 3, 3},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		perr, ok := err.(*Error)
		if !ok {
			t.Errorf("%s: error %v is not positioned", c.name, err)
			continue
		}
		if perr.Pos.Line != c.line || perr.Pos.Col != c.col {
			t.Errorf("%s: error at %v, want %d:%d (%v)", c.name, perr.Pos, c.line, c.col, err)
		}
	}
}

// TestValidateDiagnostics covers the semantic checks on malformed but
// syntactically valid specifications: bad timer arguments, unsizeable
// collections, and unknown references.
func TestValidateDiagnostics(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"timer period not a number",
			`protocol p transports { UDP u; } messages { u m { } }
			 auxiliary_data { timer t BOGUS; }`,
			"timer \"t\" period"},
		{"timer period negative constant",
			`protocol p constants { T = x9; } transports { UDP u; } messages { u m { } }
			 auxiliary_data { timer t T; }`,
			"timer \"t\" period"},
		{"nodetable size not positive",
			`protocol p transports { UDP u; } messages { u m { } }
			 auxiliary_data { nodetable t 0; }`,
			"nodetable \"t\" size"},
		{"nodetable size unknown constant",
			`protocol p transports { UDP u; } messages { u m { } }
			 auxiliary_data { nodetable t SIZE; }`,
			"nodetable \"t\" size"},
		{"neighbor list capacity bad",
			`protocol p transports { UDP u; } messages { u m { } }
			 neighbor_types { k_t 2 { } } auxiliary_data { k_t kids NOPE; }`,
			"neighbor list \"kids\" capacity"},
		{"neighbor type capacity bad",
			`protocol p transports { UDP u; } messages { u m { } }
			 neighbor_types { k_t WAT { } }`,
			"neighbor type \"k_t\" capacity"},
		{"message field unknown type",
			`protocol p transports { UDP u; } messages { u m { gadget x; } }`,
			"unknown type"},
		{"guard references unknown state",
			`protocol p transports { UDP u; } messages { u m { } }
			 transitions { flying recv m { } }`,
			"undeclared state"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCountLines(t *testing.T) {
	src := "protocol x\n\n// comment only\nstates { a; }\n/* block\ncomment */\ntransports { UDP u; }\n"
	if n := CountLines(src); n != 3 {
		t.Fatalf("CountLines = %d, want 3", n)
	}
}

// TestAllBundledSpecsParse validates every specs/*.mac in the repository:
// the paper's expressiveness claim (§4.1) for this codebase.
func TestAllBundledSpecsParse(t *testing.T) {
	paths, err := repo.Specs()
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	names := map[string]bool{}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(string(src))
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		names[spec.Name] = true
		base := strings.TrimSuffix(filepath.Base(path), ".mac")
		if spec.Name != base {
			t.Errorf("%s declares protocol %q", path, spec.Name)
		}
		if n := CountLines(string(src)); n < 20 {
			t.Errorf("%s suspiciously small: %d lines", path, n)
		}
	}
	for _, want := range []string{"randtree", "overcast", "chord", "pastry", "scribe", "splitstream", "nice", "bullet", "ammo"} {
		if !names[want] {
			t.Errorf("missing bundled spec for %s", want)
		}
	}
}
