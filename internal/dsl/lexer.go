package dsl

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // single or double rune punctuation
)

type token struct {
	kind tokenKind
	text string
	pos  Pos
}

type lexer struct {
	src  []rune
	i    int
	line int
	col  int
	toks []token
}

// lex tokenizes a .mac source, stripping // and /* */ comments.
func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekRune() rune {
	if l.i >= len(l.src) {
		return 0
	}
	return l.src[l.i]
}

func (l *lexer) peekRune2() rune {
	if l.i+1 >= len(l.src) {
		return 0
	}
	return l.src[l.i+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.i]
	l.i++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) next() (token, error) {
	for l.i < len(l.src) {
		r := l.peekRune()
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			l.advance()
		case r == '/' && l.peekRune2() == '/':
			for l.i < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekRune2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.i >= len(l.src) {
					return token{}, &Error{Pos: start, Msg: "unterminated block comment"}
				}
				if l.peekRune() == '*' && l.peekRune2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			goto tokenStart
		}
	}
	return token{kind: tokEOF, pos: l.pos()}, nil

tokenStart:
	p := l.pos()
	r := l.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var s []rune
		for l.i < len(l.src) {
			r := l.peekRune()
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				s = append(s, l.advance())
			} else {
				break
			}
		}
		return token{kind: tokIdent, text: string(s), pos: p}, nil
	case unicode.IsDigit(r):
		var s []rune
		for l.i < len(l.src) {
			r := l.peekRune()
			if unicode.IsDigit(r) || r == '.' || r == 'x' ||
				(r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F') {
				s = append(s, l.advance())
			} else {
				break
			}
		}
		return token{kind: tokNumber, text: string(s), pos: p}, nil
	default:
		// Two-rune operators first.
		two := string(r) + string(l.peekRune2())
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||", "->":
			l.advance()
			l.advance()
			return token{kind: tokPunct, text: two, pos: p}, nil
		}
		switch r {
		case '{', '}', '(', ')', '[', ']', ';', ',', '=', '!', '|', '<', '>', '+', '-', '*', '/', '%', '.', '&':
			l.advance()
			return token{kind: tokPunct, text: string(r), pos: p}, nil
		}
		return token{}, &Error{Pos: p, Msg: fmt.Sprintf("unexpected character %q", r)}
	}
}
