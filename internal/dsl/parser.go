package dsl

import (
	"fmt"
	"strings"
)

// Parse parses a .mac specification.
func Parse(src string) (*Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	spec, err := p.spec()
	if err != nil {
		return nil, err
	}
	if err := Validate(spec); err != nil {
		return nil, err
	}
	return spec, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t.pos, "expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) expectPunct(s string) (token, error) {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return t, p.errf(t.pos, "expected %q, got %q", s, t.text)
	}
	return t, nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptIdent(s string) bool {
	if p.cur().kind == tokIdent && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

var scalarTypes = map[string]bool{
	"int": true, "double": true, "bool": true, "key": true,
	"macedon_key": true, "node": true, "buffer": true, "string": true,
	"nodeset": true, "keyset": true,
}

// stateVarTypes are the additional types legal only for auxiliary_data
// entries (not message fields or locals).
var stateVarTypes = map[string]bool{
	"keymap": true, // key → node map (Pastry's location cache)
}

func (p *parser) spec() (*Spec, error) {
	spec := &Spec{Addressing: "hash", Trace: "off"}
	if !p.acceptIdent("protocol") {
		return nil, p.errf(p.cur().pos, "specification must start with \"protocol\"")
	}
	name, err := p.expectIdent("protocol name")
	if err != nil {
		return nil, err
	}
	spec.Name = name.text
	if p.acceptIdent("uses") {
		base, err := p.expectIdent("base protocol name")
		if err != nil {
			return nil, err
		}
		spec.Uses = base.text
	}
	for p.cur().kind != tokEOF {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, p.errf(t.pos, "expected section keyword, got %q", t.text)
		}
		switch {
		case t.text == "addressing":
			p.next()
			mode, err := p.expectIdent("addressing mode")
			if err != nil {
				return nil, err
			}
			if mode.text != "hash" && mode.text != "ip" {
				return nil, p.errf(mode.pos, "addressing must be hash or ip")
			}
			spec.Addressing = mode.text
		case strings.HasPrefix(t.text, "trace_"):
			p.next()
			lvl := strings.TrimPrefix(t.text, "trace_")
			switch lvl {
			case "off", "low", "med", "high":
				spec.Trace = lvl
			default:
				return nil, p.errf(t.pos, "unknown trace level %q", lvl)
			}
		case t.text == "constants":
			if err := p.constants(spec); err != nil {
				return nil, err
			}
		case t.text == "states":
			if err := p.states(spec); err != nil {
				return nil, err
			}
		case t.text == "neighbor_types":
			if err := p.neighborTypes(spec); err != nil {
				return nil, err
			}
		case t.text == "transports":
			if err := p.transports(spec); err != nil {
				return nil, err
			}
		case t.text == "messages":
			if err := p.messages(spec); err != nil {
				return nil, err
			}
		case t.text == "auxiliary_data" || t.text == "state_variables":
			if err := p.stateVars(spec); err != nil {
				return nil, err
			}
		case t.text == "transitions":
			if err := p.transitions(spec); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(t.pos, "unknown section %q", t.text)
		}
	}
	return spec, nil
}

func (p *parser) openBlock(section string) error {
	p.next() // section keyword
	_, err := p.expectPunct("{")
	return err
}

func (p *parser) constants(spec *Spec) error {
	if err := p.openBlock("constants"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		name, err := p.expectIdent("constant name")
		if err != nil {
			return err
		}
		if _, err := p.expectPunct("="); err != nil {
			return err
		}
		val := p.next()
		if val.kind != tokNumber && val.kind != tokIdent {
			return p.errf(val.pos, "expected constant value")
		}
		if _, err := p.expectPunct(";"); err != nil {
			return err
		}
		spec.Constants = append(spec.Constants, Constant{Name: name.text, Value: val.text, Pos: name.pos})
	}
	return nil
}

func (p *parser) states(spec *Spec) error {
	if err := p.openBlock("states"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		name, err := p.expectIdent("state name")
		if err != nil {
			return err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return err
		}
		spec.States = append(spec.States, name.text)
	}
	return nil
}

func (p *parser) neighborTypes(spec *Spec) error {
	if err := p.openBlock("neighbor_types"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		name, err := p.expectIdent("neighbor type name")
		if err != nil {
			return err
		}
		nt := NeighborType{Name: name.text, Pos: name.pos}
		if t := p.cur(); t.kind == tokNumber || (t.kind == tokIdent && t.text != "{") {
			nt.Max = p.next().text
		}
		if _, err := p.expectPunct("{"); err != nil {
			return err
		}
		for !p.acceptPunct("}") {
			f, err := p.field()
			if err != nil {
				return err
			}
			nt.Fields = append(nt.Fields, f)
		}
		spec.NeighborTypes = append(spec.NeighborTypes, nt)
	}
	return nil
}

func (p *parser) field() (Field, error) {
	typ, err := p.expectIdent("field type")
	if err != nil {
		return Field{}, err
	}
	name, err := p.expectIdent("field name")
	if err != nil {
		return Field{}, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return Field{}, err
	}
	return Field{Type: typ.text, Name: name.text, Pos: typ.pos}, nil
}

func (p *parser) transports(spec *Spec) error {
	if err := p.openBlock("transports"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		kind, err := p.expectIdent("transport kind")
		if err != nil {
			return err
		}
		if kind.text != "TCP" && kind.text != "UDP" && kind.text != "SWP" {
			return p.errf(kind.pos, "transport kind must be TCP, UDP, or SWP")
		}
		name, err := p.expectIdent("transport name")
		if err != nil {
			return err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return err
		}
		spec.Transports = append(spec.Transports, Transport{Kind: kind.text, Name: name.text, Pos: kind.pos})
	}
	return nil
}

func (p *parser) messages(spec *Spec) error {
	if err := p.openBlock("messages"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		first, err := p.expectIdent("message name or transport")
		if err != nil {
			return err
		}
		m := Message{Pos: first.pos}
		if p.cur().kind == tokIdent {
			// Two identifiers: transport then name.
			m.Transport = first.text
			m.Name = p.next().text
		} else {
			m.Name = first.text
		}
		if _, err := p.expectPunct("{"); err != nil {
			return err
		}
		for !p.acceptPunct("}") {
			f, err := p.field()
			if err != nil {
				return err
			}
			m.Fields = append(m.Fields, f)
		}
		spec.Messages = append(spec.Messages, m)
	}
	return nil
}

func (p *parser) stateVars(spec *Spec) error {
	nbrTypes := make(map[string]bool, len(spec.NeighborTypes))
	for _, nt := range spec.NeighborTypes {
		nbrTypes[nt.Name] = true
	}
	if err := p.openBlock("auxiliary_data"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		t := p.cur()
		switch {
		case t.text == "timer" || (t.text == "periodic" && p.peek().text == "timer"):
			periodic := p.acceptIdent("periodic")
			p.next() // timer
			name, err := p.expectIdent("timer name")
			if err != nil {
				return err
			}
			v := StateVar{Kind: VarTimer, Name: name.text, Periodic: periodic, Pos: t.pos}
			if nt := p.cur(); nt.kind == tokNumber || (nt.kind == tokIdent && nt.text != ";") {
				v.Period = p.next().text
			}
			if _, err := p.expectPunct(";"); err != nil {
				return err
			}
			spec.StateVars = append(spec.StateVars, v)
		case t.text == "nodetable":
			p.next()
			name, err := p.expectIdent("node table name")
			if err != nil {
				return err
			}
			size := p.next()
			if size.kind != tokNumber && size.kind != tokIdent {
				return p.errf(size.pos, "nodetable %q needs a size (literal or constant)", name.text)
			}
			if _, err := p.expectPunct(";"); err != nil {
				return err
			}
			spec.StateVars = append(spec.StateVars, StateVar{
				Kind: VarTable, Type: "nodetable", Name: name.text, Max: size.text, Pos: t.pos,
			})
		case t.text == "fail_detect" || nbrTypes[t.text]:
			fail := p.acceptIdent("fail_detect")
			typ, err := p.expectIdent("neighbor type")
			if err != nil {
				return err
			}
			if !nbrTypes[typ.text] {
				return p.errf(typ.pos, "unknown neighbor type %q", typ.text)
			}
			name, err := p.expectIdent("neighbor list name")
			if err != nil {
				return err
			}
			v := StateVar{Kind: VarNeighborList, Type: typ.text, Name: name.text, FailDetect: fail, Pos: t.pos}
			if mx := p.cur(); mx.kind == tokNumber || (mx.kind == tokIdent && mx.text != ";") {
				v.Max = p.next().text
			}
			if _, err := p.expectPunct(";"); err != nil {
				return err
			}
			spec.StateVars = append(spec.StateVars, v)
		default:
			typ, err := p.expectIdent("variable type")
			if err != nil {
				return err
			}
			if !scalarTypes[typ.text] && !stateVarTypes[typ.text] {
				return p.errf(typ.pos, "unknown type %q", typ.text)
			}
			name, err := p.expectIdent("variable name")
			if err != nil {
				return err
			}
			if _, err := p.expectPunct(";"); err != nil {
				return err
			}
			spec.StateVars = append(spec.StateVars, StateVar{Kind: VarPlain, Type: typ.text, Name: name.text, Pos: typ.pos})
		}
	}
	return nil
}

// --- transitions -------------------------------------------------------------

var apiNames = map[string]bool{
	"init": true, "route": true, "routeIP": true, "multicast": true,
	"anycast": true, "collect": true, "create_group": true, "join": true,
	"leave": true, "error": true, "notify": true, "upcall_ext": true,
	"downcall_ext": true,
}

func (p *parser) transitions(spec *Spec) error {
	if err := p.openBlock("transitions"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		tr, err := p.transition()
		if err != nil {
			return err
		}
		spec.Transitions = append(spec.Transitions, tr)
	}
	return nil
}

func (p *parser) transition() (Transition, error) {
	pos := p.cur().pos
	guard, err := p.stateGuard()
	if err != nil {
		return Transition{}, err
	}
	tr := Transition{Guard: guard, Locking: "write", Pos: pos}
	kw, err := p.expectIdent("transition kind")
	if err != nil {
		return Transition{}, err
	}
	switch kw.text {
	case "API":
		tr.Kind = TransAPI
		name, err := p.expectIdent("API name")
		if err != nil {
			return Transition{}, err
		}
		if !apiNames[name.text] {
			return Transition{}, p.errf(name.pos, "unknown API %q", name.text)
		}
		tr.Name = name.text
	case "timer":
		tr.Kind = TransTimer
		name, err := p.expectIdent("timer name")
		if err != nil {
			return Transition{}, err
		}
		tr.Name = name.text
	case "recv", "forward":
		if kw.text == "recv" {
			tr.Kind = TransRecv
		} else {
			tr.Kind = TransForward
		}
		name, err := p.expectIdent("message name")
		if err != nil {
			return Transition{}, err
		}
		tr.Name = name.text
	default:
		return Transition{}, p.errf(kw.pos, "expected API, timer, recv, or forward; got %q", kw.text)
	}
	// Options: [locking read;]
	if p.acceptPunct("[") {
		for !p.acceptPunct("]") {
			opt, err := p.expectIdent("transition option")
			if err != nil {
				return Transition{}, err
			}
			switch opt.text {
			case "locking":
				mode, err := p.expectIdent("locking mode")
				if err != nil {
					return Transition{}, err
				}
				if mode.text != "read" && mode.text != "write" {
					return Transition{}, p.errf(mode.pos, "locking must be read or write")
				}
				tr.Locking = mode.text
			default:
				return Transition{}, p.errf(opt.pos, "unknown option %q", opt.text)
			}
			if _, err := p.expectPunct(";"); err != nil {
				return Transition{}, err
			}
		}
	}
	if _, err := p.expectPunct("{"); err != nil {
		return Transition{}, err
	}
	body, err := p.block()
	if err != nil {
		return Transition{}, err
	}
	tr.Body = body
	return tr, nil
}

// stateGuard parses "any", "name", "(a|b)", "!(a|b)", "a|b".
func (p *parser) stateGuard() (StateGuard, error) {
	if p.acceptIdent("any") {
		return GuardAny{}, nil
	}
	if p.acceptPunct("!") {
		inner, err := p.stateGuard()
		if err != nil {
			return nil, err
		}
		return GuardNot{Inner: inner}, nil
	}
	if p.acceptPunct("(") {
		inner, err := p.stateList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.stateList()
}

func (p *parser) stateList() (StateGuard, error) {
	name, err := p.expectIdent("state name")
	if err != nil {
		return nil, err
	}
	g := GuardStates{States: []string{name.text}}
	for p.acceptPunct("|") {
		name, err := p.expectIdent("state name")
		if err != nil {
			return nil, err
		}
		g.States = append(g.States, name.text)
	}
	return g, nil
}

// --- statements ----------------------------------------------------------------

// block parses statements until the matching close brace (already inside).
func (p *parser) block() ([]Stmt, error) {
	var out []Stmt
	for {
		if p.acceptPunct("}") {
			return out, nil
		}
		if p.cur().kind == tokEOF {
			return nil, p.errf(p.cur().pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	if t.kind == tokIdent {
		switch t.text {
		case "if":
			return p.ifStmt()
		case "send":
			return p.sendStmt()
		case "foreach":
			return p.foreachStmt()
		case "return":
			if p.peek().kind == tokPunct && p.peek().text == ";" {
				p.next()
				p.next()
				return &ReturnStmt{Pos: t.pos}, nil
			}
		}
		// Local declaration: "<type> <name> [= expr] ;". On a parse failure
		// the statement rewinds and degrades to Opaque like everything else.
		if scalarTypes[t.text] && p.peek().kind == tokIdent {
			mark := p.i
			st, err := p.localStmt()
			if err == nil {
				return st, nil
			}
			p.i = mark
			return p.opaqueStmt()
		}
		// Call or assignment; on a parse failure inside the statement,
		// rewind and preserve it opaquely (arbitrary C fragments are legal
		// transition actions in MACEDON).
		if p.peek().kind == tokPunct {
			switch p.peek().text {
			case "(":
				mark := p.i
				st, err := p.callStmt()
				if err == nil {
					return st, nil
				}
				p.i = mark
				return p.opaqueStmt()
			case "=":
				mark := p.i
				pos := t.pos
				p.next()
				p.next()
				val, err := p.expr()
				if err == nil {
					if _, err2 := p.expectPunct(";"); err2 == nil {
						return &AssignStmt{Target: t.text, Value: val, Pos: pos}, nil
					}
				}
				p.i = mark
				return p.opaqueStmt()
			}
		}
	}
	return p.opaqueStmt()
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.next().pos // "if"
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.acceptIdent("else") {
		if p.cur().kind == tokIdent && p.cur().text == "if" {
			inner, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{inner}
			return st, nil
		}
		if _, err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		els, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

// localStmt: <type> <name> [= expr] ;
func (p *parser) localStmt() (Stmt, error) {
	typ := p.next() // type keyword
	name, err := p.expectIdent("local variable name")
	if err != nil {
		return nil, err
	}
	st := &LocalStmt{Type: typ.text, Name: name.text, Pos: typ.pos}
	if p.acceptPunct("=") {
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Value = val
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

// foreachStmt: foreach (k in <collection expr>) { ... }
func (p *parser) foreachStmt() (Stmt, error) {
	pos := p.next().pos // "foreach"
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	v, err := p.expectIdent("loop variable")
	if err != nil {
		return nil, err
	}
	if !p.acceptIdent("in") {
		return nil, p.errf(p.cur().pos, "expected \"in\"")
	}
	list, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForeachStmt{Var: v.text, List: list, Body: body, Pos: pos}, nil
}

// sendStmt: send msg(dest, field=value, ...);
func (p *parser) sendStmt() (Stmt, error) {
	pos := p.next().pos // "send"
	msg, err := p.expectIdent("message name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	dest, err := p.expr()
	if err != nil {
		return nil, err
	}
	st := &CallStmt{Fn: "send", Msg: msg.text, Args: []Expr{dest}, Pos: pos}
	for p.acceptPunct(",") {
		name, err := p.expectIdent("field name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Fields = append(st.Fields, FieldInit{Name: name.text, Value: val})
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) callStmt() (Stmt, error) {
	name := p.next() // ident
	pos := name.pos
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &CallStmt{Fn: name.text, Pos: pos}
	if !p.acceptPunct(")") {
		for {
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, arg)
			if p.acceptPunct(")") {
				break
			}
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

// opaqueStmt swallows one balanced statement: up to ';' at depth 0, or a
// balanced brace group.
func (p *parser) opaqueStmt() (Stmt, error) {
	pos := p.cur().pos
	var sb strings.Builder
	depth := 0
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return nil, p.errf(pos, "unterminated statement")
		}
		if t.kind == tokPunct {
			switch t.text {
			case "{", "(", "[":
				depth++
			case ")", "]":
				depth--
			case "}":
				if depth == 0 {
					// Statement ended by block close (leave it unconsumed).
					return &OpaqueStmt{Text: strings.TrimSpace(sb.String()), Pos: pos}, nil
				}
				depth--
			case ";":
				if depth == 0 {
					p.next()
					return &OpaqueStmt{Text: strings.TrimSpace(sb.String()), Pos: pos}, nil
				}
			}
		}
		sb.WriteString(p.next().text)
		sb.WriteString(" ")
	}
}

// --- expressions ----------------------------------------------------------------

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "||" {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "&&" {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokPunct {
		switch t.text {
		case "==", "!=", "<", ">", "<=", ">=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tokPunct && (t.text == "+" || t.text == "-"); t = p.cur() {
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tokPunct && (t.text == "*" || t.text == "/" || t.text == "%"); t = p.cur() {
		p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptPunct("!") {
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{Inner: inner}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return IntLit{Value: t.text}, nil
	case tokIdent:
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			p.next()
			call := CallExpr{Fn: t.text}
			if !p.acceptPunct(")") {
				for {
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.acceptPunct(")") {
						break
					}
					if _, err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return Ident{Name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			inner, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errf(t.pos, "unexpected %q in expression", t.text)
}
