package dsl

import (
	"fmt"
	"strconv"
)

// Validate performs the semantic checks the MACEDON translator applies
// before code generation: every referenced state, message, timer, transport,
// and neighbor type must be declared, names must be unique, and layered
// specifications must not bind messages to transports (their traffic rides
// the base protocol).
func Validate(s *Spec) error {
	if s.Name == "" {
		return fmt.Errorf("dsl: protocol has no name")
	}
	states := map[string]bool{"init": true}
	for _, st := range s.States {
		if states[st] && st != "init" {
			return fmt.Errorf("dsl: %s: state %q declared twice", s.Name, st)
		}
		states[st] = true
	}
	nbrTypes := map[string]bool{}
	for _, nt := range s.NeighborTypes {
		if nbrTypes[nt.Name] {
			return fmt.Errorf("dsl: %s: neighbor type %q declared twice", s.Name, nt.Name)
		}
		nbrTypes[nt.Name] = true
	}
	transports := map[string]bool{}
	for _, tr := range s.Transports {
		if transports[tr.Name] {
			return fmt.Errorf("dsl: %s: transport %q declared twice", s.Name, tr.Name)
		}
		transports[tr.Name] = true
	}
	if s.Uses != "" && len(s.Transports) > 0 {
		return fmt.Errorf("dsl: %s: layered protocols (uses %s) must not declare transports", s.Name, s.Uses)
	}
	msgs := map[string]bool{}
	for _, m := range s.Messages {
		if msgs[m.Name] {
			return fmt.Errorf("dsl: %s: message %q declared twice", s.Name, m.Name)
		}
		msgs[m.Name] = true
		if m.Transport != "" {
			if s.Uses != "" {
				return fmt.Errorf("dsl: %s: message %q binds transport %q but the protocol is layered", s.Name, m.Name, m.Transport)
			}
			if !transports[m.Transport] {
				return fmt.Errorf("dsl: %s: message %q binds undeclared transport %q", s.Name, m.Name, m.Transport)
			}
		} else if s.Uses == "" {
			return fmt.Errorf("dsl: %s: message %q of a lowest-layer protocol needs a transport", s.Name, m.Name)
		}
		for _, f := range m.Fields {
			if !scalarTypes[f.Type] && !nbrTypes[f.Type] {
				return fmt.Errorf("dsl: %s: message %q field %q has unknown type %q", s.Name, m.Name, f.Name, f.Type)
			}
		}
	}
	consts := map[string]string{}
	for _, c := range s.Constants {
		consts[c.Name] = c.Value
	}
	// intValue resolves a literal or constant reference to an integer; it
	// backs the sizing diagnostics below (timer periods, list capacities,
	// table sizes must be compile-time integers).
	intValue := func(v string) (int, bool) {
		if rep, ok := consts[v]; ok {
			v = rep
		}
		n, err := strconv.Atoi(v)
		return n, err == nil
	}
	for _, nt := range s.NeighborTypes {
		if nt.Max != "" {
			if n, ok := intValue(nt.Max); !ok || n <= 0 {
				return &Error{Pos: nt.Pos, Msg: fmt.Sprintf(
					"neighbor type %q capacity %q is not a positive integer literal or constant", nt.Name, nt.Max)}
			}
		}
	}
	timers := map[string]bool{}
	vars := map[string]bool{}
	lists := map[string]bool{}
	for _, v := range s.StateVars {
		if vars[v.Name] {
			return fmt.Errorf("dsl: %s: state variable %q declared twice", s.Name, v.Name)
		}
		vars[v.Name] = true
		switch v.Kind {
		case VarTimer:
			timers[v.Name] = true
			if v.Period != "" {
				if n, ok := intValue(v.Period); !ok || n < 0 {
					return &Error{Pos: v.Pos, Msg: fmt.Sprintf(
						"timer %q period %q is not a non-negative integer literal or constant", v.Name, v.Period)}
				}
			}
		case VarNeighborList:
			lists[v.Name] = true
			if !nbrTypes[v.Type] {
				return fmt.Errorf("dsl: %s: neighbor list %q has unknown type %q", s.Name, v.Name, v.Type)
			}
			if v.Max != "" {
				if n, ok := intValue(v.Max); !ok || n <= 0 {
					return &Error{Pos: v.Pos, Msg: fmt.Sprintf(
						"neighbor list %q capacity %q is not a positive integer literal or constant", v.Name, v.Max)}
				}
			}
		case VarTable:
			if n, ok := intValue(v.Max); !ok || n <= 0 {
				return &Error{Pos: v.Pos, Msg: fmt.Sprintf(
					"nodetable %q size %q is not a positive integer literal or constant", v.Name, v.Max)}
			}
		}
	}
	checkGuard := func(tr Transition) error {
		var walk func(g StateGuard) error
		walk = func(g StateGuard) error {
			switch g := g.(type) {
			case GuardStates:
				for _, st := range g.States {
					if !states[st] {
						return fmt.Errorf("dsl: %s: %s: guard references undeclared state %q", s.Name, tr.Pos, st)
					}
				}
			case GuardNot:
				return walk(g.Inner)
			}
			return nil
		}
		return walk(tr.Guard)
	}
	for _, tr := range s.Transitions {
		if err := checkGuard(tr); err != nil {
			return err
		}
		switch tr.Kind {
		case TransTimer:
			if !timers[tr.Name] {
				return fmt.Errorf("dsl: %s: %s: transition on undeclared timer %q", s.Name, tr.Pos, tr.Name)
			}
		case TransRecv, TransForward:
			if !msgs[tr.Name] {
				return fmt.Errorf("dsl: %s: %s: transition on undeclared message %q", s.Name, tr.Pos, tr.Name)
			}
		}
	}
	return nil
}

// CountLines counts the non-blank, non-comment source lines of a
// specification — the LOC metric of the paper's Figure 7.
func CountLines(src string) int {
	count := 0
	inBlock := false
	line := ""
	flush := func() {
		trimmed := ""
		for _, r := range line {
			if r != ' ' && r != '\t' {
				trimmed += string(r)
			}
		}
		if trimmed != "" {
			count++
		}
		line = ""
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case inBlock:
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i++
			} else if c == '\n' {
				flush()
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			inBlock = true
			i++
		case c == '\n':
			flush()
		default:
			line += string(c)
		}
		i++
	}
	flush()
	return count
}
