package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"macedon/internal/harness"
	"macedon/internal/scenario"
)

// Options configures a fuzz campaign.
type Options struct {
	// Seed is the first fuzz seed; Runs how many consecutive seeds to try.
	Seed int64
	Runs int
	// Shards is the emulator shard count (0 = 2). Any value produces the
	// same verdicts — the simulator is shard-invariant.
	Shards int
	// Budget bounds the campaign's wall-clock time (0 = unbounded). The
	// per-seed results are deterministic either way; the budget only decides
	// how far into the seed range a CI lane gets.
	Budget time.Duration
	// Synthetic enables the always-fails-under-churn checker, exercising
	// the shrinking machinery end to end.
	Synthetic bool
	// Obs runs every generated scenario (and every shrink probe) with the
	// observability plane enabled: the fuzzer then also exercises the obs
	// hooks — series sampling, scheduler telemetry, exposition assembly —
	// under random churn. Verdicts are unchanged: the obs plane never
	// perturbs engine execution.
	Obs bool
	// Out is the repro directory (default testdata/repro).
	Out string
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

// Found is one failing seed's outcome.
type Found struct {
	Seed       int64
	Violations int
	ReproPath  string
	Repro      *scenario.Scenario
}

// Violations runs one scenario on the emulator and returns its total
// invariant-violation count.
func Violations(s *scenario.Scenario, shards int) (int, error) {
	return ViolationsExec(s, shards, false)
}

// ViolationsExec is Violations with the observability plane optionally
// enabled (obs never changes the verdict, only what else gets exercised).
func ViolationsExec(s *scenario.Scenario, shards int, obsOn bool) (int, error) {
	if shards <= 0 {
		shards = 2
	}
	rep, err := harness.RunScenarioExec(s, harness.ExecOptions{
		Shards: shards,
		Obs:    harness.ObsOptions{Enabled: obsOn},
	})
	if err != nil {
		return 0, err
	}
	return rep.CheckViolations(), nil
}

// Run executes the campaign: generate, check, and — on failure — shrink
// and persist a minimal repro. It returns every failing seed's outcome.
func Run(opts Options) ([]Found, error) {
	logw := opts.Log
	if logw == nil {
		logw = io.Discard
	}
	if opts.Runs <= 0 {
		opts.Runs = 1
	}
	if opts.Out == "" {
		opts.Out = filepath.Join("testdata", "repro")
	}
	start := time.Now()
	var found []Found
	for i := 0; i < opts.Runs; i++ {
		if opts.Budget > 0 && time.Since(start) > opts.Budget {
			fmt.Fprintf(logw, "fuzz: budget %s exhausted after %d seed(s)\n", opts.Budget, i)
			break
		}
		seed := opts.Seed + int64(i)
		s := Generate(seed, opts.Synthetic)
		v, err := ViolationsExec(s, opts.Shards, opts.Obs)
		if err != nil {
			return found, fmt.Errorf("fuzz seed %d: %w", seed, err)
		}
		fmt.Fprintf(logw, "fuzz seed %d: %s nodes=%d phases=%d -> %d violation(s)\n",
			seed, s.Protocol, s.Nodes, len(s.Phases), v)
		if v == 0 {
			continue
		}
		min := Shrink(s, func(c *scenario.Scenario) bool {
			cv, cerr := ViolationsExec(c, opts.Shards, opts.Obs)
			return cerr == nil && cv > 0
		}, func(format string, args ...any) { fmt.Fprintf(logw, "  "+format+"\n", args...) })
		mv, err := ViolationsExec(min, opts.Shards, opts.Obs)
		if err != nil {
			return found, fmt.Errorf("fuzz seed %d: shrunken repro: %w", seed, err)
		}
		path, err := WriteRepro(opts.Out, min, opts.Synthetic)
		if err != nil {
			return found, err
		}
		fmt.Fprintf(logw, "fuzz seed %d: shrunk to nodes=%d phases=%d (%d violation(s)), repro %s\n",
			seed, min.Nodes, len(min.Phases), mv, path)
		found = append(found, Found{Seed: seed, Violations: mv, ReproPath: path, Repro: min})
	}
	return found, nil
}

// ReproBytes renders a repro scenario deterministically (the bytes a given
// fuzz seed always shrinks to).
func ReproBytes(s *scenario.Scenario) []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// A Scenario is plain data; this cannot fail.
		panic(fmt.Sprintf("fuzz: encode repro: %v", err))
	}
	return append(b, '\n')
}

// WriteRepro persists a shrunken repro under dir. Synthetic repros are
// prefixed so the regression replay can tell demos (expected to still
// fail) from fixed bugs (expected to pass).
func WriteRepro(dir string, s *scenario.Scenario, synthetic bool) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	prefix := "fuzz"
	if synthetic {
		prefix = "synthetic"
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.json", prefix, s.Seed))
	if err := os.WriteFile(path, ReproBytes(s), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
