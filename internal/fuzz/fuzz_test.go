package fuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macedon/internal/repo"
	"macedon/internal/scenario"
)

// TestGenerateDeterministic is the fuzzer's core promise: the same seed
// always produces byte-identical scenarios, with no ambient entropy.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := ReproBytes(Generate(seed, false))
		b := ReproBytes(Generate(seed, false))
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d generated two different scenarios", seed)
		}
		s := Generate(seed, false)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d generated an invalid scenario: %v", seed, err)
		}
	}
}

// TestShrinkDeterministicEndToEnd runs the whole campaign twice for the
// synthetic always-fails seed and demands byte-identical repro files, then
// pins them against the committed shrinker demo: the same seed must fail
// the same way and shrink to the same bytes on every machine.
func TestShrinkDeterministicEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the emulator many times while shrinking")
	}
	run := func(dir string) []byte {
		found, err := Run(Options{Seed: 2, Runs: 1, Shards: 2, Synthetic: true, Out: dir})
		if err != nil {
			t.Fatal(err)
		}
		if len(found) != 1 {
			t.Fatalf("synthetic seed 2 produced %d failures, want 1", len(found))
		}
		b, err := os.ReadFile(found[0].ReproPath)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same synthetic seed shrank to different repro bytes")
	}
	committed, err := os.ReadFile(repo.Path("testdata", "repro", "synthetic-2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, committed) {
		t.Fatal("synthetic seed 2 no longer shrinks to the committed testdata/repro/synthetic-2.json")
	}
}

// TestReproReplay replays every committed repro scenario. fuzz-*.json are
// shrunken reproductions of bugs that have since been fixed — they must
// stay violation-free, which is what turns each found bug into a permanent
// regression test. synthetic-*.json use the synthetic always-fails checker
// and must still fail, which guards the shrinking machinery itself.
func TestReproReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replays emulator scenarios")
	}
	files, err := filepath.Glob(repo.Path("testdata", "repro", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed repro scenarios found")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			s, err := scenario.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			v, err := Violations(s, 2)
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasPrefix(filepath.Base(f), "synthetic-") {
				if v == 0 {
					t.Fatal("synthetic repro no longer fails: the shrinker demo lost its bug")
				}
				return
			}
			if v > 0 {
				t.Fatalf("fixed-bug repro regressed with %d violation(s)", v)
			}
		})
	}
}

// TestVerdictShardInvariant replays one repro at several shard counts: the
// checkers snapshot state at global barriers, so the verdict cannot depend
// on the execution's parallelism.
func TestVerdictShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("replays emulator scenarios")
	}
	s, err := scenario.Load(repo.Path("testdata", "repro", "fuzz-4.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		v, err := Violations(s, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if v != 0 {
			t.Fatalf("shards=%d: %d violation(s), want 0 at every shard count", shards, v)
		}
	}
}
