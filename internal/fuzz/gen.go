// Package fuzz is the deterministic scenario fuzzer: seed-keyed random
// scenarios composed from the existing schedule primitives (churn models,
// network events, workloads), executed on the emulator with the invariant
// checkers enabled, and — when a run fails — deterministically shrunk to a
// minimal reproduction. Everything is keyed by the fuzz seed: the same
// seed generates the same scenario, fails the same way, and shrinks to the
// same repro bytes, so a failure found anywhere replays everywhere.
package fuzz

import (
	"fmt"
	"math/rand"

	"macedon/internal/scenario"
)

// protocols is the fuzzed stack pool: every bundled protocol the
// correctness plane has structural checkers for, hand and generated.
var protocols = []string{
	"chord", "genchord", "pastry", "genpastry", "randtree", "genrandtree", "overcast",
}

// treeProtocol reports whether the stack disseminates (multicast workload)
// rather than routes (lookup workload).
func treeProtocol(proto string) bool {
	switch proto {
	case "randtree", "genrandtree", "overcast", "bullet":
		return true
	}
	return false
}

// sec returns a whole-second Duration — generated scenarios stay readable.
func sec(n int) scenario.Duration { return scenario.Duration(int64(n) * 1e9) }

// Generate builds the seed's scenario. All randomness comes from the seed;
// no ambient entropy. synthetic additionally enables the
// synthetic-full-population checker, which flags every down node — a
// checker that always fails under churn, used to exercise the shrinker
// end to end.
func Generate(seed int64, synthetic bool) *scenario.Scenario {
	rng := rand.New(rand.NewSource(seed))
	proto := protocols[rng.Intn(len(protocols))]
	nodes := 8 + rng.Intn(13) // 8..20
	s := &scenario.Scenario{
		Name:     fmt.Sprintf("fuzz-%d", seed),
		Seed:     seed,
		Nodes:    nodes,
		Routers:  100,
		Protocol: proto,
		Join:     scenario.JoinSpec{Process: "staggered", Window: sec(10 + rng.Intn(11))},
		Settle:   sec(45 + rng.Intn(31)),
		Drain:    sec(15),
		// Fast failure detection keeps the grace window meaningful on the
		// fuzzer's short phases.
		HeartbeatAfter: sec(1 + rng.Intn(2)),
		FailAfter:      sec(4 + rng.Intn(5)),
		Checks: &scenario.ChecksSpec{
			Names: []string{"auto"},
			Grace: sec(20 + rng.Intn(11)),
		},
	}
	if synthetic {
		s.Checks.Names = append(s.Checks.Names, "synthetic-full-population")
	}
	nphases := 1 + rng.Intn(3)
	for pi := 0; pi < nphases; pi++ {
		s.Phases = append(s.Phases, genPhase(rng, pi, nodes, proto))
	}
	return s
}

// genPhase rolls one phase: a duration, an optional churn process, an
// optional scripted event pair, and a workload matched to the protocol
// family.
func genPhase(rng *rand.Rand, pi, nodes int, proto string) scenario.Phase {
	durS := 50 + rng.Intn(41) // 50..90s
	p := scenario.Phase{
		Name:     fmt.Sprintf("p%d", pi),
		Duration: sec(durS),
	}
	if rng.Intn(2) == 0 {
		if rng.Intn(2) == 0 {
			p.Churn = &scenario.Churn{
				Model:    "poisson",
				Rate:     0.02 + 0.06*rng.Float64(),
				Downtime: sec(20 + rng.Intn(21)),
			}
		} else {
			p.Churn = &scenario.Churn{
				Model:    "wave",
				Kill:     1 + rng.Intn(2),
				Period:   sec(15 + rng.Intn(16)),
				Downtime: sec(20 + rng.Intn(16)),
			}
		}
	}
	if rng.Intn(3) == 0 {
		p.Events = genEvents(rng, durS, nodes)
	}
	wl := &scenario.Workload{Kind: scenario.WlLookups, Rate: 1 + float64(rng.Intn(3)), Size: 64}
	if treeProtocol(proto) {
		wl.Kind = scenario.WlMulticast
		wl.Size = 200
	}
	p.Workload = wl
	return p
}

// genEvents scripts one paired disturbance inside the phase: a hit at t1
// and its undo at t2 (both inside the phase, t1 < t2). Node 0 is never a
// target — it is the bootstrap and the tree root, and the schedule
// compiler protects it from churn for the same reason.
func genEvents(rng *rand.Rand, durS, nodes int) []scenario.Event {
	t1 := sec(5 + rng.Intn(durS/3))
	t2 := sec(durS/2 + rng.Intn(durS/2-2))
	victim := 1 + rng.Intn(nodes-1)
	switch rng.Intn(5) {
	case 0:
		frac := 0.25 + 0.25*rng.Float64()
		return []scenario.Event{
			{At: t1, Kind: scenario.EvPartition, Fraction: frac},
			{At: t2, Kind: scenario.EvHeal},
		}
	case 1:
		return []scenario.Event{
			{At: t1, Kind: scenario.EvNodeDown, Node: victim},
			{At: t2, Kind: scenario.EvNodeUp, Node: victim},
		}
	case 2:
		return []scenario.Event{
			{At: t1, Kind: scenario.EvDegrade, Node: victim,
				LatencyFactor: 2 + 3*rng.Float64(), Loss: 0.05 + 0.15*rng.Float64()},
			{At: t2, Kind: scenario.EvRestore, Node: victim},
		}
	case 3:
		return []scenario.Event{
			{At: t1, Kind: scenario.EvLinkDown, Node: victim},
			{At: t2, Kind: scenario.EvLinkUp, Node: victim},
		}
	default:
		return []scenario.Event{
			{At: t1, Kind: scenario.EvKill, Node: victim},
			{At: t2, Kind: scenario.EvRevive, Node: victim},
		}
	}
}
