package fuzz

import (
	"encoding/json"

	"macedon/internal/scenario"
)

// The shrinker reduces a failing scenario to a minimal reproduction while
// the failure predicate keeps holding. It is fully deterministic: a fixed
// transformation order over a deterministic predicate (the emulator), no
// randomness, so the same failing scenario always shrinks to the same
// bytes. The order is structural first — drop whole phases, then whole
// phase components (churn, events, workload) — then numeric bisection of
// populations, rates and counts, which matches how a human would minimize:
// first "which part matters", then "how little of it still breaks".

// maxShrinkRounds bounds the fixpoint loop; each round only keeps
// transformations that preserve the failure, so the bound is a backstop,
// not a tuning knob.
const maxShrinkRounds = 12

// Shrink minimizes s under the failing predicate. The returned scenario
// always fails (it starts from a failing s and only keeps failing
// candidates). logf receives one line per accepted transformation.
func Shrink(s *scenario.Scenario, failing func(*scenario.Scenario) bool, logf func(string, ...any)) *scenario.Scenario {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cur := clone(s)
	for round := 0; round < maxShrinkRounds; round++ {
		changed := false
		// 1. Drop whole phases (first to last; restart after each success so
		// indices stay meaningful).
		for len(cur.Phases) > 1 {
			dropped := false
			for pi := 0; pi < len(cur.Phases); pi++ {
				c := clone(cur)
				c.Phases = append(append([]scenario.Phase(nil), c.Phases[:pi]...), c.Phases[pi+1:]...)
				if failing(c) {
					logf("shrink: drop phase %d (%s)", pi, cur.Phases[pi].Name)
					cur, changed, dropped = c, true, true
					break
				}
			}
			if !dropped {
				break
			}
		}
		// 2. Drop phase components.
		for pi := range cur.Phases {
			if cur.Phases[pi].Churn != nil {
				c := clone(cur)
				c.Phases[pi].Churn = nil
				if failing(c) {
					logf("shrink: drop phase %d churn", pi)
					cur, changed = c, true
				}
			}
			if len(cur.Phases[pi].Events) > 0 {
				c := clone(cur)
				c.Phases[pi].Events = nil
				if failing(c) {
					logf("shrink: drop phase %d events", pi)
					cur, changed = c, true
				}
			}
			if cur.Phases[pi].Workload != nil {
				c := clone(cur)
				c.Phases[pi].Workload = nil
				if failing(c) {
					logf("shrink: drop phase %d workload", pi)
					cur, changed = c, true
				}
			}
		}
		// 3. Bisect the population toward the 4-node floor.
		for cur.Nodes > 4 {
			c := clone(cur)
			c.Nodes = cur.Nodes / 2
			if c.Nodes < 4 {
				c.Nodes = 4
			}
			if !failing(c) {
				break
			}
			logf("shrink: nodes %d -> %d", cur.Nodes, c.Nodes)
			cur, changed = c, true
		}
		// 4. Halve churn and workload intensity while the failure survives.
		for pi := range cur.Phases {
			for {
				ch := cur.Phases[pi].Churn
				if ch == nil {
					break
				}
				c := clone(cur)
				cc := c.Phases[pi].Churn
				switch {
				case ch.Model == "poisson" && ch.Rate > 0.005:
					cc.Rate = ch.Rate / 2
				case ch.Model == "wave" && ch.Kill > 1:
					cc.Kill = ch.Kill / 2
				default:
					ch = nil
				}
				if ch == nil || !failing(c) {
					break
				}
				logf("shrink: phase %d churn halved", pi)
				cur, changed = c, true
			}
			for {
				wl := cur.Phases[pi].Workload
				if wl == nil || wl.Rate < 0.5 {
					break
				}
				c := clone(cur)
				c.Phases[pi].Workload.Rate = wl.Rate / 2
				if !failing(c) {
					break
				}
				logf("shrink: phase %d workload rate halved", pi)
				cur, changed = c, true
			}
		}
		if !changed {
			break
		}
	}
	return cur
}

// clone deep-copies a scenario through its JSON form — the same round trip
// a repro file takes, so shrinking operates on exactly what will be
// persisted.
func clone(s *scenario.Scenario) *scenario.Scenario {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	var c scenario.Scenario
	if err := json.Unmarshal(b, &c); err != nil {
		panic(err)
	}
	return &c
}
