package harness

import (
	"fmt"
	"time"

	"macedon/internal/check"
	"macedon/internal/obs"
	"macedon/internal/scenario"
)

// engineChecks is the scenario engine's hook into the correctness plane:
// the resolved checker set plus the windows the View assembler needs. The
// liveness/connectivity age arrays live on the engine itself (they are
// maintained unconditionally — cheap — so sweep branching stays uniform).
type engineChecks struct {
	checkers []check.Checker
	grace    scenario.Duration
	stale    scenario.Duration
}

// newEngineChecks resolves a scenario's checks spec; nil when checks are
// off.
func newEngineChecks(s *scenario.Scenario) (*engineChecks, error) {
	cfg := s.CheckConfig()
	if cfg == nil {
		return nil, nil
	}
	checkers, err := check.New(*cfg)
	if err != nil {
		return nil, err
	}
	g, st := cfg.Resolve()
	return &engineChecks{checkers: checkers, grace: scenario.Duration(g), stale: scenario.Duration(st)}, nil
}

// runChecks extracts every node's state at a phase boundary and drives the
// checkers. It runs as a global event at an epoch barrier: all shards are
// parked, so node-state reads are race-free and — because node state is
// shard-invariant by the simulator's determinism contract — the verdict is
// byte-identical at any shard count.
func (e *scenarioEngine) runChecks(pi int) *check.PhaseChecks {
	now := e.c.Sched.Elapsed()
	v := &check.View{
		Phase:       pi,
		PhaseName:   e.sched.Phases[pi].Name,
		At:          now,
		Grace:       e.checks.grace.D(),
		StaleBound:  e.checks.stale.D(),
		Partitioned: e.partitioned,
	}
	n := len(e.alive)
	v.Nodes = make([]check.NodeState, 0, n)
	v.UpFor = make([]time.Duration, n)
	v.DownFor = make([]time.Duration, n)
	v.ConnAge = make([]time.Duration, n)
	v.Reachable = make([]bool, n)
	v.Degraded = make([]bool, n)
	for i := 0; i < n; i++ {
		if e.alive[i] {
			v.Nodes = append(v.Nodes, check.Extract(e.c.Nodes[e.c.Addrs[i]], i))
			v.UpFor[i] = now - e.upAt[i]
		} else {
			v.Nodes = append(v.Nodes, check.DeadState(i, e.c.Addrs[i]))
			v.DownFor[i] = now - e.downAt[i]
		}
		v.ConnAge[i] = now - e.connAt[i]
		v.Reachable[i] = !e.hostDown[i] && !e.linkDown[i]
		v.Degraded[i] = e.nodeDegraded[i]
	}
	pc := check.Run(e.checks.checkers, v)
	if e.obs != nil {
		for _, vi := range pc.Violations {
			e.obs.onViolation(now, pi, vi)
		}
	}
	return pc
}

// onViolation records an invariant violation on the event log. Violations
// bypass the sampler-by-key semantics only in severity: the record is
// emitted at warn level keyed by the offending node, so the population a
// shard count admits matches the live backend's, like every other event.
func (o *engineObs) onViolation(at time.Duration, pi int, vi check.Violation) {
	key := vi.Node
	if key < 0 {
		key = 0
	}
	o.events.EmitAt(at, uint64(key), obs.LevelWarn, "check_violation",
		obs.F("checker", vi.Checker), obs.F("node", vi.Node),
		obs.F("phase", pi), obs.F("detail", fmt.Sprintf("%q", vi.Detail)))
}
