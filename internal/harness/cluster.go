// Package harness assembles MACEDON experiments: a topology, the simnet
// emulator, a set of overlay nodes running protocol stacks, workload
// applications, and per-figure experiment drivers that regenerate the
// paper's evaluation (Figures 7–12). It plays the role of the paper's
// ModelNet deployment scripts and evaluation tools.
package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
	"macedon/internal/simnet"
	"macedon/internal/statecopy"
	"macedon/internal/topology"
)

// ClusterConfig describes an emulated deployment.
type ClusterConfig struct {
	// Nodes is the number of overlay clients.
	Nodes int
	// Routers sizes the generated INET topology (ignored when Graph is
	// given). Defaults to max(4*Nodes, 100).
	Routers int
	// Seed drives every random choice in the experiment.
	Seed int64
	// Shards is the number of parallel event-loop shards. 0 or 1 selects
	// the sequential loop; any value produces byte-identical results (see
	// docs/simnet.md), larger values trade synchronization overhead for
	// parallelism on big populations.
	Shards int
	// Partitioner selects the vertex→shard assignment strategy:
	// simnet.PartitionerStriped (the default, also "") or
	// simnet.PartitionerLatency, which clusters low-latency cliques onto one
	// shard to widen the conservative lookahead window. Either choice
	// produces byte-identical traces; only wall-clock scaling differs.
	Partitioner string

	// Graph optionally supplies a prebuilt topology with clients attached
	// (addresses Addrs). When nil an INET topology is generated and clients
	// are attached to stub routers.
	Graph *topology.Graph
	Addrs []overlay.Address

	// Access overrides the client access pipe for generated topologies.
	Access topology.AccessLink

	// Sim tunes the emulator (loss rate, per-hop overhead).
	Sim simnet.Config

	// Node-level knobs passed through to core.Config.
	TraceLevel     core.TraceLevel
	TraceWriter    io.Writer
	HeartbeatAfter time.Duration
	FailAfter      time.Duration
	Sweep          time.Duration
}

// Cluster is a running emulated deployment.
type Cluster struct {
	cfg    ClusterConfig
	Sched  *simnet.Scheduler
	Net    *simnet.Network
	Graph  *topology.Graph
	Addrs  []overlay.Address
	Nodes  map[overlay.Address]*core.Node
	Routes *topology.Routes
}

// NewCluster builds the topology and emulator but spawns no nodes yet:
// experiments control join timing (Figure 10 stages 1000 joins over time).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 && cfg.Graph == nil {
		return nil, fmt.Errorf("harness: cluster needs nodes")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	switch cfg.Partitioner {
	case "", simnet.PartitionerStriped, simnet.PartitionerLatency:
	default:
		return nil, fmt.Errorf("harness: unknown partitioner %q (want %q or %q)",
			cfg.Partitioner, simnet.PartitionerStriped, simnet.PartitionerLatency)
	}
	sched := simnet.NewSharded(cfg.Seed, shards)
	g := cfg.Graph
	addrs := cfg.Addrs
	if g == nil {
		var err error
		g, addrs, err = buildGraph(cfg.Nodes, cfg.Routers, cfg.Seed, cfg.Access)
		if err != nil {
			return nil, err
		}
	} else if len(addrs) == 0 {
		addrs = g.Clients()
	}
	simCfg := cfg.Sim
	if cfg.Partitioner != "" {
		simCfg.Partitioner = cfg.Partitioner
	}
	net := simnet.New(sched, g, simCfg)
	return &Cluster{
		cfg:    cfg,
		Sched:  sched,
		Net:    net,
		Graph:  g,
		Addrs:  addrs,
		Nodes:  make(map[overlay.Address]*core.Node),
		Routes: net.Routes(),
	}, nil
}

// buildGraph generates the INET topology and attaches clients exactly the
// way NewCluster always has: the address assignment is a pure function of
// (nodes, routers, seed).
func buildGraph(nodes, routers int, seed int64, access topology.AccessLink) (*topology.Graph, []overlay.Address, error) {
	if routers <= 0 {
		routers = 4 * nodes
		if routers < 100 {
			routers = 100
		}
	}
	g, err := topology.INET(topology.DefaultINET(routers, seed))
	if err != nil {
		return nil, nil, err
	}
	if access.Bandwidth == 0 {
		access = topology.DefaultAccess
	}
	addrs := topology.AttachClients(g, nodes, 1, access, seed+1)
	return g, addrs, nil
}

// TopologyAddrs returns the client addresses the emulated cluster for the
// same (nodes, routers, seed) assigns. `macedon deploy` gives live node i
// the same overlay address — and therefore the same hash key — as emulated
// node i, so a live run and a sim run of one scenario route the identical
// key space (the live-vs-sim conformance harness depends on it).
func TopologyAddrs(nodes, routers int, seed int64) ([]overlay.Address, error) {
	_, addrs, err := buildGraph(nodes, routers, seed, topology.AccessLink{})
	return addrs, err
}

// Bootstrap returns the conventional bootstrap node: the first client.
func (c *Cluster) Bootstrap() overlay.Address { return c.Addrs[0] }

// NodeSub returns the shard-bound substrate of the i-th node's endpoint:
// its clock reads the owning shard's virtual time, which is the correct
// timestamp source inside delivery callbacks of a sharded run.
func (c *Cluster) NodeSub(i int) *simnet.NodeSubstrate {
	ns, err := c.Net.NodeNet(c.Addrs[i])
	if err != nil {
		panic(fmt.Sprintf("harness: node substrate %d: %v", i, err))
	}
	return ns
}

// Spawn creates and starts the i-th node with the given stack, immediately,
// at the current virtual time. The node runs on its endpoint's event shard.
func (c *Cluster) Spawn(i int, stack []core.Factory) (*core.Node, error) {
	n, err := c.buildNode(i, stack)
	if err != nil {
		return nil, err
	}
	c.Nodes[c.Addrs[i]] = n
	return n, nil
}

// buildNode constructs and starts the i-th node without registering it in
// the cluster map. Construction only touches state owned by the node's own
// event shard (its endpoint, its access pipe, its PRNG), which is what makes
// SpawnBatch's per-shard parallel construction race-free and deterministic.
func (c *Cluster) buildNode(i int, stack []core.Factory) (*core.Node, error) {
	addr := c.Addrs[i]
	sub, err := c.Net.NodeNet(addr)
	if err != nil {
		return nil, err
	}
	n, err := core.NewNode(core.Config{
		Addr:           addr,
		Net:            sub,
		Stack:          stack,
		Bootstrap:      c.Bootstrap(),
		Seed:           c.cfg.Seed + int64(i)*7919 + 13,
		TraceLevel:     c.cfg.TraceLevel,
		TraceWriter:    c.cfg.TraceWriter,
		HeartbeatAfter: c.cfg.HeartbeatAfter,
		FailAfter:      c.cfg.FailAfter,
		Sweep:          c.cfg.Sweep,
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

// spawnBatchThreshold is the population below which SpawnBatch constructs
// sequentially: goroutine fan-out only pays for itself on real herds.
const spawnBatchThreshold = 8

// SpawnBatch spawns the given node indices at the current virtual time,
// constructing them in parallel with one worker per event shard. The result
// is byte-identical to spawning the same indices sequentially in order:
// construction only mutates per-endpoint and per-shard state (actor
// sequence counters, link serialization state, shard heaps under their
// locks), each worker processes its shard's nodes in index order, and
// cross-shard heap pushes are commutative because event execution order is
// defined by deterministic keys, not insertion order. This is what breaks
// up the t=0 spawn herd: a 10k-node immediate join used to construct all
// nodes serially inside one epoch barrier.
func (c *Cluster) SpawnBatch(idx []int, stack []core.Factory) error {
	if len(idx) < spawnBatchThreshold || c.Sched.Shards() < 2 {
		for _, i := range idx {
			if _, err := c.Spawn(i, stack); err != nil {
				return err
			}
		}
		return nil
	}
	// Group by shard, preserving index order within each shard. NodeSub is
	// called on the coordinator so lazy substrate creation stays unshared.
	byShard := make(map[int][]int)
	var shards []int
	for _, i := range idx {
		sh := c.NodeSub(i).Shard()
		if _, ok := byShard[sh]; !ok {
			shards = append(shards, sh)
		}
		byShard[sh] = append(byShard[sh], i)
	}
	built := make(map[int]*core.Node, len(idx))
	errs := make([]error, len(shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, mine []int) {
			defer wg.Done()
			local := make(map[int]*core.Node, len(mine))
			for _, i := range mine {
				n, err := c.buildNode(i, stack)
				if err != nil {
					errs[si] = fmt.Errorf("harness: batch spawn %d: %w", i, err)
					return
				}
				local[i] = n
			}
			mu.Lock()
			for i, n := range local {
				built[i] = n
			}
			mu.Unlock()
		}(si, byShard[sh])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, i := range idx {
		c.Nodes[c.Addrs[i]] = built[i]
	}
	return nil
}

// SpawnAll spawns every node now, bootstrap first.
func (c *Cluster) SpawnAll(stackFor func(i int) []core.Factory) error {
	for i := range c.Addrs {
		if _, err := c.Spawn(i, stackFor(i)); err != nil {
			return err
		}
	}
	return nil
}

// SpawnAt schedules the i-th node's creation at a virtual-time offset from
// now: staggered joins.
func (c *Cluster) SpawnAt(i int, stack []core.Factory, at time.Duration) {
	c.Sched.After(at, func() {
		if _, err := c.Spawn(i, stack); err != nil {
			panic(fmt.Sprintf("harness: spawn %d: %v", i, err))
		}
	})
}

// Kill emulates a host crash of the i-th node: the process stops, its
// address blackholes, and its endpoint detaches so Revive can respawn
// there. Safe to call for a node that never spawned.
func (c *Cluster) Kill(i int) {
	addr := c.Addrs[i]
	if n := c.Nodes[addr]; n != nil {
		n.Stop()
		delete(c.Nodes, addr)
	}
	_ = c.Net.SetDown(addr, true)
	_ = c.Net.Detach(addr)
}

// Revive respawns a killed node with a fresh protocol stack — a cold
// rejoin, as a rebooted host would perform.
func (c *Cluster) Revive(i int, stack []core.Factory) (*core.Node, error) {
	addr := c.Addrs[i]
	if c.Nodes[addr] != nil {
		return nil, fmt.Errorf("harness: node %d (%v) is already running", i, addr)
	}
	_ = c.Net.SetDown(addr, false)
	return c.Spawn(i, stack)
}

// RunFor advances virtual time.
func (c *Cluster) RunFor(d time.Duration) { c.Sched.RunFor(d) }

// Node returns the node at an address (nil if not spawned).
func (c *Cluster) Node(addr overlay.Address) *core.Node { return c.Nodes[addr] }

// DirectLatency returns the one-way IP-path latency between two clients:
// the denominator of stretch and RDP.
func (c *Cluster) DirectLatency(a, b overlay.Address) (time.Duration, error) {
	return c.Routes.ClientLatency(a, b)
}

// StopAll stops every node and releases the scheduler's shard workers.
func (c *Cluster) StopAll() {
	for _, n := range c.Nodes {
		n.Stop()
	}
	c.Sched.Close()
}

// Checkpoint is a restorable capture of a whole running deployment: the
// event scheduler, the emulated network, and every node's engine, transport,
// and protocol state. See docs/sweeps.md.
type Checkpoint struct {
	sched *simnet.SchedulerSnapshot
	net   *simnet.NetworkSnapshot
	nodes *statecopy.Image
}

// Checkpoint captures the deployment at the current virtual instant. It must
// be called from the coordinating goroutine between RunFor windows — the
// same quiescent points every other coordinator-side operation uses. The
// checkpoint stays valid for the cluster's lifetime and can be restored any
// number of times.
func (c *Cluster) Checkpoint() *Checkpoint {
	return &Checkpoint{
		sched: c.Sched.Snapshot(),
		net:   c.Net.Snapshot(),
		nodes: statecopy.Capture(&c.Nodes),
	}
}

// Restore rewinds the deployment to a checkpoint taken on this cluster:
// virtual time, event heaps, packets in flight, link queues, node membership
// and all node state return to the captured instant, byte-identically — a
// branch executed after the restore produces the same event trace as one
// executed right after the capture (fork determinism, gated by the golden
// corpus).
func (c *Cluster) Restore(cp *Checkpoint) {
	c.Sched.Restore(cp.sched)
	c.Net.Restore(cp.net)
	cp.nodes.Restore()
}
