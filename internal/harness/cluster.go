// Package harness assembles MACEDON experiments: a topology, the simnet
// emulator, a set of overlay nodes running protocol stacks, workload
// applications, and per-figure experiment drivers that regenerate the
// paper's evaluation (Figures 7–12). It plays the role of the paper's
// ModelNet deployment scripts and evaluation tools.
package harness

import (
	"fmt"
	"io"
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
	"macedon/internal/simnet"
	"macedon/internal/topology"
)

// ClusterConfig describes an emulated deployment.
type ClusterConfig struct {
	// Nodes is the number of overlay clients.
	Nodes int
	// Routers sizes the generated INET topology (ignored when Graph is
	// given). Defaults to max(4*Nodes, 100).
	Routers int
	// Seed drives every random choice in the experiment.
	Seed int64
	// Shards is the number of parallel event-loop shards. 0 or 1 selects
	// the sequential loop; any value produces byte-identical results (see
	// docs/simnet.md), larger values trade synchronization overhead for
	// parallelism on big populations.
	Shards int

	// Graph optionally supplies a prebuilt topology with clients attached
	// (addresses Addrs). When nil an INET topology is generated and clients
	// are attached to stub routers.
	Graph *topology.Graph
	Addrs []overlay.Address

	// Access overrides the client access pipe for generated topologies.
	Access topology.AccessLink

	// Sim tunes the emulator (loss rate, per-hop overhead).
	Sim simnet.Config

	// Node-level knobs passed through to core.Config.
	TraceLevel     core.TraceLevel
	TraceWriter    io.Writer
	HeartbeatAfter time.Duration
	FailAfter      time.Duration
	Sweep          time.Duration
}

// Cluster is a running emulated deployment.
type Cluster struct {
	cfg    ClusterConfig
	Sched  *simnet.Scheduler
	Net    *simnet.Network
	Graph  *topology.Graph
	Addrs  []overlay.Address
	Nodes  map[overlay.Address]*core.Node
	Routes *topology.Routes
}

// NewCluster builds the topology and emulator but spawns no nodes yet:
// experiments control join timing (Figure 10 stages 1000 joins over time).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 && cfg.Graph == nil {
		return nil, fmt.Errorf("harness: cluster needs nodes")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	sched := simnet.NewSharded(cfg.Seed, shards)
	g := cfg.Graph
	addrs := cfg.Addrs
	if g == nil {
		routers := cfg.Routers
		if routers <= 0 {
			routers = 4 * cfg.Nodes
			if routers < 100 {
				routers = 100
			}
		}
		var err error
		g, err = topology.INET(topology.DefaultINET(routers, cfg.Seed))
		if err != nil {
			return nil, err
		}
		access := cfg.Access
		if access.Bandwidth == 0 {
			access = topology.DefaultAccess
		}
		addrs = topology.AttachClients(g, cfg.Nodes, 1, access, cfg.Seed+1)
	} else if len(addrs) == 0 {
		addrs = g.Clients()
	}
	net := simnet.New(sched, g, cfg.Sim)
	return &Cluster{
		cfg:    cfg,
		Sched:  sched,
		Net:    net,
		Graph:  g,
		Addrs:  addrs,
		Nodes:  make(map[overlay.Address]*core.Node),
		Routes: net.Routes(),
	}, nil
}

// Bootstrap returns the conventional bootstrap node: the first client.
func (c *Cluster) Bootstrap() overlay.Address { return c.Addrs[0] }

// NodeSub returns the shard-bound substrate of the i-th node's endpoint:
// its clock reads the owning shard's virtual time, which is the correct
// timestamp source inside delivery callbacks of a sharded run.
func (c *Cluster) NodeSub(i int) *simnet.NodeSubstrate {
	ns, err := c.Net.NodeNet(c.Addrs[i])
	if err != nil {
		panic(fmt.Sprintf("harness: node substrate %d: %v", i, err))
	}
	return ns
}

// Spawn creates and starts the i-th node with the given stack, immediately,
// at the current virtual time. The node runs on its endpoint's event shard.
func (c *Cluster) Spawn(i int, stack []core.Factory) (*core.Node, error) {
	addr := c.Addrs[i]
	sub, err := c.Net.NodeNet(addr)
	if err != nil {
		return nil, err
	}
	n, err := core.NewNode(core.Config{
		Addr:           addr,
		Net:            sub,
		Stack:          stack,
		Bootstrap:      c.Bootstrap(),
		Seed:           c.cfg.Seed + int64(i)*7919 + 13,
		TraceLevel:     c.cfg.TraceLevel,
		TraceWriter:    c.cfg.TraceWriter,
		HeartbeatAfter: c.cfg.HeartbeatAfter,
		FailAfter:      c.cfg.FailAfter,
		Sweep:          c.cfg.Sweep,
	})
	if err != nil {
		return nil, err
	}
	c.Nodes[addr] = n
	return n, nil
}

// SpawnAll spawns every node now, bootstrap first.
func (c *Cluster) SpawnAll(stackFor func(i int) []core.Factory) error {
	for i := range c.Addrs {
		if _, err := c.Spawn(i, stackFor(i)); err != nil {
			return err
		}
	}
	return nil
}

// SpawnAt schedules the i-th node's creation at a virtual-time offset from
// now: staggered joins.
func (c *Cluster) SpawnAt(i int, stack []core.Factory, at time.Duration) {
	c.Sched.After(at, func() {
		if _, err := c.Spawn(i, stack); err != nil {
			panic(fmt.Sprintf("harness: spawn %d: %v", i, err))
		}
	})
}

// Kill emulates a host crash of the i-th node: the process stops, its
// address blackholes, and its endpoint detaches so Revive can respawn
// there. Safe to call for a node that never spawned.
func (c *Cluster) Kill(i int) {
	addr := c.Addrs[i]
	if n := c.Nodes[addr]; n != nil {
		n.Stop()
		delete(c.Nodes, addr)
	}
	_ = c.Net.SetDown(addr, true)
	_ = c.Net.Detach(addr)
}

// Revive respawns a killed node with a fresh protocol stack — a cold
// rejoin, as a rebooted host would perform.
func (c *Cluster) Revive(i int, stack []core.Factory) (*core.Node, error) {
	addr := c.Addrs[i]
	if c.Nodes[addr] != nil {
		return nil, fmt.Errorf("harness: node %d (%v) is already running", i, addr)
	}
	_ = c.Net.SetDown(addr, false)
	return c.Spawn(i, stack)
}

// RunFor advances virtual time.
func (c *Cluster) RunFor(d time.Duration) { c.Sched.RunFor(d) }

// Node returns the node at an address (nil if not spawned).
func (c *Cluster) Node(addr overlay.Address) *core.Node { return c.Nodes[addr] }

// DirectLatency returns the one-way IP-path latency between two clients:
// the denominator of stretch and RDP.
func (c *Cluster) DirectLatency(a, b overlay.Address) (time.Duration, error) {
	return c.Routes.ClientLatency(a, b)
}

// StopAll stops every node and releases the scheduler's shard workers.
func (c *Cluster) StopAll() {
	for _, n := range c.Nodes {
		n.Stop()
	}
	c.Sched.Close()
}
