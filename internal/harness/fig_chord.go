package harness

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/metrics"
	"macedon/internal/overlays/chord"
)

// ChordMode selects one Figure-10 curve.
type ChordMode struct {
	Name    string
	Dynamic bool          // lsd-style adaptive fix-fingers
	Period  time.Duration // static fix-fingers period
}

// Figure10Modes are the paper's three curves: MACEDON with 1 s and 20 s
// static timers, and the MIT-lsd dynamic baseline.
func Figure10Modes() []ChordMode {
	return []ChordMode{
		{Name: "MACEDON (1 sec timer)", Period: time.Second},
		{Name: "MIT lsd (dynamic)", Dynamic: true},
		{Name: "MACEDON (20 sec timer)", Period: 20 * time.Second},
	}
}

// ChordParams configures the Figure-10 reproduction.
type ChordParams struct {
	Nodes       int // default 200 (paper: 1000)
	Routers     int // default 4*Nodes
	Seed        int64
	JoinWindow  time.Duration // joins staggered across this window (default 40 s)
	Duration    time.Duration // observation length (default 120 s)
	SampleEvery time.Duration // default 2 s, as the paper dumps tables
	Modes       []ChordMode
}

func (p *ChordParams) setDefaults() {
	if p.Nodes <= 0 {
		p.Nodes = 200
	}
	if p.JoinWindow <= 0 {
		p.JoinWindow = 40 * time.Second
	}
	if p.Duration <= 0 {
		p.Duration = 120 * time.Second
	}
	if p.SampleEvery <= 0 {
		p.SampleEvery = 2 * time.Second
	}
	if len(p.Modes) == 0 {
		p.Modes = Figure10Modes()
	}
}

// ChordResult is Figure 10: per mode, average correct route entries vs time.
type ChordResult struct {
	Series []Series
}

// RunChordConvergence reproduces Figure 10: staggered joins, routing tables
// sampled every two seconds and graded against the global-knowledge oracle.
func RunChordConvergence(p ChordParams) (*ChordResult, error) {
	p.setDefaults()
	res := &ChordResult{}
	for _, mode := range p.Modes {
		c, err := NewCluster(ClusterConfig{Nodes: p.Nodes, Routers: p.Routers, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		cp := chord.Params{
			FixFingersPeriod: mode.Period,
			Dynamic:          mode.Dynamic,
		}
		stack := []core.Factory{chord.New(cp)}
		// Stagger joins uniformly across the window, bootstrap first.
		if _, err := c.Spawn(0, stack); err != nil {
			return nil, err
		}
		for i := 1; i < p.Nodes; i++ {
			at := time.Duration(int64(p.JoinWindow) * int64(i) / int64(p.Nodes))
			c.SpawnAt(i, stack, at)
		}
		oracle := metrics.NewChordOracle(c.Addrs)
		series := Series{Name: mode.Name}
		for elapsed := time.Duration(0); elapsed <= p.Duration; elapsed += p.SampleEvery {
			c.RunFor(p.SampleEvery)
			total := 0
			for _, a := range c.Addrs {
				n := c.Node(a)
				if n == nil {
					continue // not joined yet
				}
				pr := n.Instance("chord").Agent().(*chord.Protocol)
				fingers := pr.FingerSnapshot()
				total += oracle.CorrectFingers(a, fingers[:])
			}
			avg := float64(total) / float64(p.Nodes)
			series.Points = append(series.Points, Point{
				X: (elapsed + p.SampleEvery).Seconds(),
				Y: avg,
			})
		}
		c.StopAll()
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Print renders the convergence table, one column per mode.
func (r *ChordResult) Print(w func(format string, args ...any)) {
	w("Figure 10 — convergence toward correct routing tables\n")
	w("%-8s", "time(s)")
	for _, s := range r.Series {
		w(" %-24s", s.Name)
	}
	w("\n")
	if len(r.Series) == 0 {
		return
	}
	for i := range r.Series[0].Points {
		w("%-8.0f", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			if i < len(s.Points) {
				w(" %-24.2f", s.Points[i].Y)
			}
		}
		w("\n")
	}
}

// FinalValues returns each mode's final average correct entries: the
// level-off points of the curves.
func (r *ChordResult) FinalValues() map[string]float64 {
	out := make(map[string]float64, len(r.Series))
	for _, s := range r.Series {
		if len(s.Points) > 0 {
			out[s.Name] = s.Points[len(s.Points)-1].Y
		}
	}
	return out
}
