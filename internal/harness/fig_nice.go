package harness

import (
	"fmt"
	"time"

	"macedon/internal/core"
	"macedon/internal/metrics"
	"macedon/internal/overlay"
	"macedon/internal/overlays/nice"
	"macedon/internal/topology"
)

// NICEPublishedStretch and NICEPublishedLatency are the values we extracted
// from Figures 15/16 of the NICE SIGCOMM paper [4] — the same extraction the
// MACEDON authors performed for their Figures 8 and 9. Latencies in
// milliseconds; one entry per site.
var (
	NICEPublishedStretch = []float64{1.1, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4}
	NICEPublishedLatency = []float64{5, 10, 14, 18, 23, 27, 33, 40}
)

// NICESiteMatrix re-creates the authors' 8-site Internet-like topology from
// extracted latency information: one-way inter-site latencies growing with
// site index relative to the source site.
func NICESiteMatrix(sites int) topology.SiteMatrixParams {
	lat := make([][]time.Duration, sites)
	for i := range lat {
		lat[i] = make([]time.Duration, sites)
		for j := range lat[i] {
			if i == j {
				continue
			}
			d := i - j
			if d < 0 {
				d = -d
			}
			lat[i][j] = time.Duration(2+5*d) * time.Millisecond
			if lat[i][j] > 40*time.Millisecond {
				lat[i][j] = 40 * time.Millisecond
			}
		}
	}
	return topology.SiteMatrixParams{Latency: lat, LANLatency: time.Millisecond}
}

// NICEParams configures the Figure 8/9 reproduction.
type NICEParams struct {
	Sites    int // default 8
	PerSite  int // default 8 (64 members total)
	Seed     int64
	Settle   time.Duration // hierarchy stabilization (default 5 min)
	Packets  int           // measurement packets (default 50)
	Rate     time.Duration // inter-packet gap (default 250 ms)
	ClusterK int           // NICE k (default 3)
}

func (p *NICEParams) setDefaults() {
	if p.Sites <= 0 {
		p.Sites = 8
	}
	if p.PerSite <= 0 {
		p.PerSite = 8
	}
	if p.Settle <= 0 {
		p.Settle = 5 * time.Minute
	}
	if p.Packets <= 0 {
		p.Packets = 50
	}
	if p.Rate <= 0 {
		p.Rate = 250 * time.Millisecond
	}
	if p.ClusterK <= 0 {
		p.ClusterK = 3
	}
}

// NICESiteStat aggregates one site's receivers.
type NICESiteStat struct {
	Site        int
	Members     int
	MeanStretch float64
	MeanLatency time.Duration
	Received    int
}

// NICEResult is the Figure 8 (stretch) and Figure 9 (latency) data.
type NICEResult struct {
	Sites []NICESiteStat
}

// RunNICE reproduces Figures 8 and 9: 64 members across 8 sites, source
// multicast, per-site observed stretch and end-to-end latency.
func RunNICE(p NICEParams) (*NICEResult, error) {
	p.setDefaults()
	sm := NICESiteMatrix(p.Sites)
	g, gws, err := topology.SiteMatrix(sm)
	if err != nil {
		return nil, err
	}
	addrs, sites := topology.AttachSiteClients(g, gws, p.PerSite, 1, sm)
	c, err := NewCluster(ClusterConfig{Graph: g, Addrs: addrs, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	stack := []core.Factory{nice.New(nice.Params{K: p.ClusterK})}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		return nil, err
	}

	siteOf := make(map[overlay.Address]int, len(addrs))
	for i, a := range addrs {
		siteOf[a] = sites[i]
	}
	src := addrs[0]

	type rx struct {
		stretches []float64
		latencies []float64
		received  int
	}
	perSite := make([]rx, p.Sites)
	for _, a := range addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, _ overlay.Address) {
				sent, ok := DecodeTimestamp(payload)
				if !ok {
					return
				}
				lat := c.Sched.Now().Sub(sent)
				st := metrics.Stretch(c.Routes, src, addr, lat)
				s := &perSite[siteOf[addr]]
				s.received++
				s.latencies = append(s.latencies, float64(lat.Microseconds())/1000.0)
				if st > 0 {
					s.stretches = append(s.stretches, st)
				}
			},
		})
	}

	c.RunFor(p.Settle)
	for i := 0; i < p.Packets; i++ {
		payload := TimestampPayload(c.Sched.Now(), 1000)
		if err := c.Nodes[src].Multicast(0, payload, 1, overlay.PriorityDefault); err != nil {
			return nil, err
		}
		c.RunFor(p.Rate)
	}
	c.RunFor(10 * time.Second)

	res := &NICEResult{}
	for s := 0; s < p.Sites; s++ {
		stat := NICESiteStat{Site: s, Received: perSite[s].received}
		for _, a := range addrs {
			if siteOf[a] == s {
				stat.Members++
			}
		}
		if n := len(perSite[s].stretches); n > 0 {
			stat.MeanStretch = mean(perSite[s].stretches)
		}
		if n := len(perSite[s].latencies); n > 0 {
			stat.MeanLatency = time.Duration(mean(perSite[s].latencies) * float64(time.Millisecond))
		}
		res.Sites = append(res.Sites, stat)
	}
	c.StopAll()
	return res, nil
}

// PrintFigure8 renders the stretch rows next to the published values.
func (r *NICEResult) PrintFigure8(w func(format string, args ...any)) {
	w("Figure 8 — distribution of stretch (%d members)\n", totalMembers(r))
	w("%-6s %-12s %-16s %-16s\n", "site", "members", "MACEDON stretch", "published (NICE)")
	for _, s := range r.Sites {
		pub := "-"
		if s.Site < len(NICEPublishedStretch) {
			pub = fmt.Sprintf("%.2f", NICEPublishedStretch[s.Site])
		}
		w("%-6d %-12d %-16.2f %-16s\n", s.Site, s.Members, s.MeanStretch, pub)
	}
}

// PrintFigure9 renders the latency rows next to the published values.
func (r *NICEResult) PrintFigure9(w func(format string, args ...any)) {
	w("Figure 9 — distribution of latency (%d members)\n", totalMembers(r))
	w("%-6s %-12s %-18s %-18s\n", "site", "members", "MACEDON lat (ms)", "published (ms)")
	for _, s := range r.Sites {
		pub := "-"
		if s.Site < len(NICEPublishedLatency) {
			pub = fmt.Sprintf("%.0f", NICEPublishedLatency[s.Site])
		}
		w("%-6d %-12d %-18.2f %-18s\n", s.Site, s.Members,
			float64(s.MeanLatency.Microseconds())/1000.0, pub)
	}
}

func totalMembers(r *NICEResult) int {
	n := 0
	for _, s := range r.Sites {
		n += s.Members
	}
	return n
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
