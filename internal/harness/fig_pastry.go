package harness

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
	"macedon/internal/overlays/pastry"
)

// PastryParams configures the Figure-11 reproduction: the random-key
// streaming application of §4.2.3 (each instance streams 1000-byte packets
// at 10 Kbps to uniformly random hash destinations).
type PastryParams struct {
	Sizes         []int // node counts on the x-axis (default 25..250)
	Routers       int   // default 4*max size
	Seed          int64
	Converge      time.Duration // routing-table convergence idle (default 300 s)
	Measure       time.Duration // measurement window (default 30 s)
	PacketSize    int           // default 1000 bytes
	RateBitsSec   int           // default 10_000 (10 Kbps per node)
	FreePastryCap int           // baseline's max size (default 100, as the
	// paper could not run FreePastry beyond 100 participants)
}

func (p *PastryParams) setDefaults() {
	if len(p.Sizes) == 0 {
		p.Sizes = []int{25, 50, 100, 150, 200, 250}
	}
	if p.Converge <= 0 {
		p.Converge = 300 * time.Second
	}
	if p.Measure <= 0 {
		p.Measure = 30 * time.Second
	}
	if p.PacketSize <= 0 {
		p.PacketSize = 1000
	}
	if p.RateBitsSec <= 0 {
		p.RateBitsSec = 10_000
	}
	if p.FreePastryCap <= 0 {
		p.FreePastryCap = 100
	}
}

// PastryResult is Figure 11: average packet latency vs overlay size for the
// MACEDON implementation and the FreePastry(RMI)-modeled baseline.
type PastryResult struct {
	MACEDON    Series
	FreePastry Series
}

// RunPastryLatency reproduces Figure 11.
func RunPastryLatency(p PastryParams) (*PastryResult, error) {
	p.setDefaults()
	res := &PastryResult{MACEDON: Series{Name: "MACEDON"}, FreePastry: Series{Name: "FreePastry"}}
	for _, size := range p.Sizes {
		lat, err := runPastryOnce(p, size, pastry.Params{})
		if err != nil {
			return nil, err
		}
		res.MACEDON.Points = append(res.MACEDON.Points, Point{X: float64(size), Y: lat.Seconds()})
		if size <= p.FreePastryCap {
			lat, err := runPastryOnce(p, size, pastry.Params{RMI: true, NetworkSize: size})
			if err != nil {
				return nil, err
			}
			res.FreePastry.Points = append(res.FreePastry.Points, Point{X: float64(size), Y: lat.Seconds()})
		}
	}
	return res, nil
}

func runPastryOnce(p PastryParams, size int, pp pastry.Params) (time.Duration, error) {
	c, err := NewCluster(ClusterConfig{Nodes: size, Routers: p.Routers, Seed: p.Seed})
	if err != nil {
		return 0, err
	}
	stack := []core.Factory{pastry.New(pp)}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		return 0, err
	}
	var sumLatency time.Duration
	var count int
	for _, a := range c.Addrs {
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, _ overlay.Address) {
				if sent, ok := DecodeTimestamp(payload); ok {
					sumLatency += c.Sched.Now().Sub(sent)
					count++
				}
			},
		})
	}
	c.RunFor(p.Converge)
	// Each node streams to uniformly random keys at the configured rate.
	interval := time.Duration(int64(p.PacketSize*8) * int64(time.Second) / int64(p.RateBitsSec))
	for elapsed := time.Duration(0); elapsed < p.Measure; elapsed += interval {
		for _, a := range c.Addrs {
			dest := overlay.Key(c.Sched.Rand().Uint32())
			payload := TimestampPayload(c.Sched.Now(), p.PacketSize)
			_ = c.Nodes[a].Route(dest, payload, 1, overlay.PriorityDefault)
		}
		c.RunFor(interval)
	}
	c.RunFor(10 * time.Second)
	c.StopAll()
	if count == 0 {
		return 0, nil
	}
	return sumLatency / time.Duration(count), nil
}

// Print renders Figure 11's two curves side by side.
func (r *PastryResult) Print(w func(format string, args ...any)) {
	w("Figure 11 — average latency of received Pastry packets\n")
	w("%-8s %-16s %-16s\n", "nodes", "MACEDON (s)", "FreePastry (s)")
	fp := make(map[float64]float64, len(r.FreePastry.Points))
	for _, pt := range r.FreePastry.Points {
		fp[pt.X] = pt.Y
	}
	for _, pt := range r.MACEDON.Points {
		if y, ok := fp[pt.X]; ok {
			w("%-8.0f %-16.3f %-16.3f\n", pt.X, pt.Y, y)
		} else {
			w("%-8.0f %-16.3f %-16s\n", pt.X, pt.Y, "(exceeds capacity)")
		}
	}
}
