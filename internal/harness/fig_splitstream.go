package harness

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/metrics"
	"macedon/internal/overlay"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/scribe"
	"macedon/internal/overlays/splitstream"
)

// SplitStreamPolicy is one Figure-12 curve: a Pastry location-cache
// configuration.
type SplitStreamPolicy struct {
	Name          string
	CacheLifetime time.Duration // <0 never evict, >0 TTL
}

// Figure12Policies are the paper's two flavors.
func Figure12Policies() []SplitStreamPolicy {
	return []SplitStreamPolicy{
		{Name: "Avg Bandwidth (no cache evictions)", CacheLifetime: -1},
		{Name: "Avg Bandwidth (10 sec cache lifetime)", CacheLifetime: 10 * time.Second},
	}
}

// SplitStreamParams configures the Figure-12 reproduction.
type SplitStreamParams struct {
	Nodes       int // default 100 (paper: 300)
	Routers     int
	Seed        int64
	Stripes     int           // default 16
	MaxChildren int           // per-stripe fan-out bound (default 16)
	Converge    time.Duration // Pastry convergence idle (default 300 s)
	Stream      time.Duration // stream length (default 300 s)
	RateBitsSec int           // default 600_000
	PacketSize  int           // default 1000
	Bucket      time.Duration // bandwidth buckets (default 10 s)
	Policies    []SplitStreamPolicy
}

func (p *SplitStreamParams) setDefaults() {
	if p.Nodes <= 0 {
		p.Nodes = 100
	}
	if p.Stripes <= 0 {
		p.Stripes = 16
	}
	if p.MaxChildren <= 0 {
		p.MaxChildren = 16
	}
	if p.Converge <= 0 {
		p.Converge = 300 * time.Second
	}
	if p.Stream <= 0 {
		p.Stream = 300 * time.Second
	}
	if p.RateBitsSec <= 0 {
		p.RateBitsSec = 600_000
	}
	if p.PacketSize <= 0 {
		p.PacketSize = 1000
	}
	if p.Bucket <= 0 {
		p.Bucket = 10 * time.Second
	}
	if len(p.Policies) == 0 {
		p.Policies = Figure12Policies()
	}
}

// SplitStreamResult is Figure 12: per policy, per-node average delivered
// bandwidth over time.
type SplitStreamResult struct {
	Series []Series
	// TargetBitsSec echoes the stream rate for reference lines.
	TargetBitsSec int
}

// RunSplitStream reproduces Figure 12: a SplitStream forest, one source
// streaming at the target rate, receivers' average bandwidth bucketed over
// time, under each location-cache policy.
func RunSplitStream(p SplitStreamParams) (*SplitStreamResult, error) {
	p.setDefaults()
	res := &SplitStreamResult{TargetBitsSec: p.RateBitsSec}
	for _, pol := range p.Policies {
		series, err := runSplitStreamOnce(p, pol)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

func runSplitStreamOnce(p SplitStreamParams, pol SplitStreamPolicy) (Series, error) {
	c, err := NewCluster(ClusterConfig{Nodes: p.Nodes, Routers: p.Routers, Seed: p.Seed})
	if err != nil {
		return Series{}, err
	}
	stack := []core.Factory{
		pastry.New(pastry.Params{CacheLifetime: pol.CacheLifetime}),
		scribe.New(scribe.Params{MaxChildren: p.MaxChildren}),
		splitstream.New(splitstream.Params{Stripes: p.Stripes}),
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		return Series{}, err
	}
	group := overlay.HashString("figure12-session")

	// Pastry converges while the system idles (§4.2.4: "we first allow
	// Pastry routing tables to converge by idling the system").
	c.RunFor(p.Converge)

	src := c.Addrs[0]
	receivers := c.Addrs[1:]
	streamStart := c.Sched.Now().Add(30 * time.Second) // after trees build
	perNode := make(map[overlay.Address]*metrics.BandwidthSeries, len(receivers))
	for _, a := range receivers {
		addr := a
		series := metrics.NewBandwidthSeries(streamStart, p.Bucket)
		perNode[addr] = series
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(payload []byte, typ int32, _ overlay.Address) {
				series.Add(c.Sched.Now(), len(payload))
			},
		})
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(30 * time.Second) // forest construction

	interval := time.Duration(int64(p.PacketSize*8) * int64(time.Second) / int64(p.RateBitsSec))
	for elapsed := time.Duration(0); elapsed < p.Stream; elapsed += interval {
		payload := TimestampPayload(c.Sched.Now(), p.PacketSize)
		_ = c.Nodes[src].Multicast(group, payload, 1, overlay.PriorityDefault)
		c.RunFor(interval)
	}
	c.RunFor(5 * time.Second)
	c.StopAll()

	// Average the per-node series pointwise.
	buckets := int(p.Stream / p.Bucket)
	series := Series{Name: pol.Name}
	for b := 0; b < buckets; b++ {
		var sum float64
		var n int
		for _, bs := range perNode {
			pts := bs.Points()
			if b < len(pts) {
				sum += pts[b].BitsPerSec
				n++
			}
		}
		avg := 0.0
		if n > 0 {
			avg = sum / float64(len(perNode))
		}
		series.Points = append(series.Points, Point{
			X: (time.Duration(b) * p.Bucket).Seconds(),
			Y: avg / 1000.0, // Kbps, as the figure's axis
		})
	}
	return series, nil
}

// Print renders the Figure-12 table.
func (r *SplitStreamResult) Print(w func(format string, args ...any)) {
	w("Figure 12 — SplitStream bandwidth for two cache policies (target %d Kbps)\n",
		r.TargetBitsSec/1000)
	w("%-8s", "time(s)")
	for _, s := range r.Series {
		w(" %-40s", s.Name)
	}
	w("\n")
	if len(r.Series) == 0 {
		return
	}
	for i := range r.Series[0].Points {
		w("%-8.0f", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			if i < len(s.Points) {
				w(" %-40.0f", s.Points[i].Y)
			}
		}
		w("\n")
	}
}

// SteadyStateKbps averages each curve over its second half: the paper's
// "delivers an average of X Kbps" numbers.
func (r *SplitStreamResult) SteadyStateKbps() map[string]float64 {
	out := make(map[string]float64, len(r.Series))
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			continue
		}
		half := s.Points[len(s.Points)/2:]
		var sum float64
		for _, pt := range half {
			sum += pt.Y
		}
		out[s.Name] = sum / float64(len(half))
	}
	return out
}
