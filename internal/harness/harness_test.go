package harness

import (
	"strings"
	"testing"
	"time"
)

func TestClusterBasics(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 5, Routers: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Addrs) != 5 {
		t.Fatalf("addrs = %d", len(c.Addrs))
	}
	if c.Bootstrap() != c.Addrs[0] {
		t.Fatal("bootstrap should be first client")
	}
	if _, err := c.DirectLatency(c.Addrs[0], c.Addrs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Fatal("empty config should fail")
	}
}

func TestTimestampPayload(t *testing.T) {
	now := time.Unix(12345, 67890)
	p := TimestampPayload(now, 100)
	if len(p) != 100 {
		t.Fatalf("len = %d", len(p))
	}
	got, ok := DecodeTimestamp(p)
	if !ok || !got.Equal(now) {
		t.Fatalf("decode = %v, %v", got, ok)
	}
	if _, ok := DecodeTimestamp([]byte{1}); ok {
		t.Fatal("short payload should fail")
	}
	if p := TimestampPayload(now, 2); len(p) != 8 {
		t.Fatalf("minimum size not applied: %d", len(p))
	}
}

// TestFigure10Shape runs a scaled-down Figure 10 and validates the paper's
// qualitative claims: the 1 s static timer converges faster than the 20 s
// one, and the dynamic baseline sits in between (or near the fast curve).
func TestFigure10Shape(t *testing.T) {
	res, err := RunChordConvergence(ChordParams{
		Nodes:      40,
		Routers:    150,
		Seed:       5,
		JoinWindow: 20 * time.Second,
		Duration:   100 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	finals := res.FinalValues()
	fast := finals["MACEDON (1 sec timer)"]
	slow := finals["MACEDON (20 sec timer)"]
	lsd := finals["MIT lsd (dynamic)"]
	t.Logf("final correct entries: 1s=%.1f lsd=%.1f 20s=%.1f", fast, lsd, slow)
	if fast <= slow {
		t.Fatalf("1s timer (%.1f) should beat 20s timer (%.1f)", fast, slow)
	}
	if fast < 10 {
		t.Fatalf("1s timer converged too little: %.1f correct entries", fast)
	}
	if lsd <= slow {
		t.Fatalf("lsd dynamic (%.1f) should beat the 20s static timer (%.1f)", lsd, slow)
	}
	// Convergence must be monotone-ish: final >= value at 1/4 time.
	for _, s := range res.Series {
		q := s.Points[len(s.Points)/4].Y
		f := s.Points[len(s.Points)-1].Y
		if f+1 < q {
			t.Errorf("%s regressed: %.1f -> %.1f", s.Name, q, f)
		}
	}
	var sb strings.Builder
	res.Print(func(f string, a ...any) { sb.WriteString(sprintf(f, a...)) })
	if !strings.Contains(sb.String(), "Figure 10") {
		t.Fatal("printer missing header")
	}
}

// TestFigure11Shape validates the paper's claim that MACEDON latency is far
// below the FreePastry baseline and roughly flat with size.
func TestFigure11Shape(t *testing.T) {
	res, err := RunPastryLatency(PastryParams{
		Sizes:    []int{15, 30},
		Seed:     7,
		Converge: 60 * time.Second,
		Measure:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MACEDON.Points) != 2 || len(res.FreePastry.Points) != 2 {
		t.Fatalf("points: %d macedon, %d freepastry", len(res.MACEDON.Points), len(res.FreePastry.Points))
	}
	for i := range res.MACEDON.Points {
		m, f := res.MACEDON.Points[i].Y, res.FreePastry.Points[i].Y
		t.Logf("size %.0f: MACEDON %.3fs FreePastry %.3fs", res.MACEDON.Points[i].X, m, f)
		if m <= 0 {
			t.Fatalf("no MACEDON deliveries at size %v", res.MACEDON.Points[i].X)
		}
		if f < m*1.5 {
			t.Fatalf("FreePastry baseline (%.3fs) should be well above MACEDON (%.3fs)", f, m)
		}
	}
	var sb strings.Builder
	res.Print(func(f string, a ...any) { sb.WriteString(sprintf(f, a...)) })
	if !strings.Contains(sb.String(), "Figure 11") {
		t.Fatal("printer missing header")
	}
}

// TestFigure12Shape validates the cache-policy ordering: no eviction beats a
// short TTL, and both deliver a large fraction of the stream rate.
func TestFigure12Shape(t *testing.T) {
	res, err := RunSplitStream(SplitStreamParams{
		Nodes:       24,
		Routers:     100,
		Seed:        11,
		Stripes:     4,
		Converge:    60 * time.Second,
		Stream:      60 * time.Second,
		RateBitsSec: 100_000,
		PacketSize:  500,
		Bucket:      10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := res.SteadyStateKbps()
	noEvict := ss["Avg Bandwidth (no cache evictions)"]
	ttl := ss["Avg Bandwidth (10 sec cache lifetime)"]
	t.Logf("steady state: no-evict %.0f Kbps, ttl %.0f Kbps (target %d)", noEvict, ttl, res.TargetBitsSec/1000)
	if noEvict < float64(res.TargetBitsSec)/1000*0.7 {
		t.Fatalf("no-eviction bandwidth %.0f Kbps far below target", noEvict)
	}
	if ttl <= 0 {
		t.Fatal("ttl policy delivered nothing")
	}
	if noEvict < ttl*0.85 {
		t.Fatalf("no-eviction (%.0f) should not clearly lose to short TTL (%.0f)", noEvict, ttl)
	}
	var sb strings.Builder
	res.Print(func(f string, a ...any) { sb.WriteString(sprintf(f, a...)) })
	if !strings.Contains(sb.String(), "Figure 12") {
		t.Fatal("printer missing header")
	}
}

// TestNICEFigureShape validates Figures 8/9 qualitatively: distant sites see
// higher latency, stretch stays in the published band, everyone receives.
func TestNICEFigureShape(t *testing.T) {
	res, err := RunNICE(NICEParams{
		Sites:   4,
		PerSite: 4,
		Seed:    13,
		Settle:  3 * time.Minute,
		Packets: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 4 {
		t.Fatalf("sites = %d", len(res.Sites))
	}
	for _, s := range res.Sites {
		t.Logf("site %d: members=%d received=%d stretch=%.2f latency=%v",
			s.Site, s.Members, s.Received, s.MeanStretch, s.MeanLatency)
	}
	for _, s := range res.Sites[1:] {
		if s.Received == 0 {
			t.Fatalf("site %d received nothing", s.Site)
		}
		if s.MeanStretch < 0.8 || s.MeanStretch > 8 {
			t.Fatalf("site %d stretch %.2f outside plausible band", s.Site, s.MeanStretch)
		}
	}
	// The farthest site must see more latency than the source's own site.
	near, far := res.Sites[0], res.Sites[len(res.Sites)-1]
	if far.MeanLatency <= near.MeanLatency {
		t.Fatalf("far site latency %v <= near site %v", far.MeanLatency, near.MeanLatency)
	}
	var sb strings.Builder
	res.PrintFigure8(func(f string, a ...any) { sb.WriteString(sprintf(f, a...)) })
	res.PrintFigure9(func(f string, a ...any) { sb.WriteString(sprintf(f, a...)) })
	out := sb.String()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "Figure 9") {
		t.Fatal("printers missing headers")
	}
}
