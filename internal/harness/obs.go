package harness

import (
	"fmt"
	"time"

	"macedon/internal/obs"
	"macedon/internal/overlay"
	"macedon/internal/scenario"
)

// ObsOptions configures the observability plane of a scenario run.
type ObsOptions struct {
	// Enabled turns the obs plane on: registry, sampled event log, and
	// operation traces. Off keeps the engine byte-for-byte on its legacy
	// path (goldens).
	Enabled bool
	// TraceSample keeps 1-in-N operation traces and event-log records,
	// decided by key hash on the scenario seed so every shard count — and a
	// live run of the same scenario — samples the same population. 0 or 1
	// keeps everything.
	TraceSample int
	// SeriesInterval adds intra-phase time-series samples every interval of
	// virtual time; 0 samples only at phase boundaries. Samples are
	// global-actor events at fixed positions in the shard-count-independent
	// total order, so the series is byte-identical at any shard count.
	SeriesInterval time.Duration
	// SeriesCap bounds each phase's series ring; 0 selects
	// obs.DefaultSeriesCap.
	SeriesCap int
}

// seriesColumns are the engine quantities each time-series point carries.
// Every one is a deterministic function of the executed-event prefix, so
// sampling them at barrier instants is shard-invariant.
var seriesColumns = []string{"events", "pending", "net_sent", "net_delivered", "ops_delivered"}

// RunScenarioObs is RunScenario with the observability plane configured.
func RunScenarioObs(s *scenario.Scenario, opts ObsOptions) (*scenario.Report, error) {
	return RunScenarioShardsObs(s, 1, opts)
}

// RunScenarioShardsObs runs a scenario on a sharded event loop with the
// observability plane configured. Like the trace and report, the obs
// output (exposition, sampled events, merged spans) is byte-identical at
// any shard count.
func RunScenarioShardsObs(s *scenario.Scenario, shards int, opts ObsOptions) (*scenario.Report, error) {
	return RunScenarioExec(s, ExecOptions{Shards: shards, Obs: opts})
}

// engineObs is the scenario engine's observability plane. Hot-path
// recording is shard-safe by construction: counters and histogram buckets
// accumulate by commutative atomic adds, per-op tallies live in atomic
// arrays indexed by op ID, spans go to per-shard buffers merged by a
// content-total-order, and the event log is only written from the
// coordinator (workload injection and lifecycle ops run at epoch barriers
// while every shard is parked), so its record order is schedule order.
type engineObs struct {
	reg     *obs.Registry
	events  *obs.EventLog
	spans   *obs.TraceSet
	sampler obs.KeySampler
	seed    int64

	opsLookup    *obs.Counter
	opsMulticast *obs.Counter
	opsSkipped   *obs.Counter
	opsDelivered *obs.Counter
	nodesAlive   *obs.Gauge

	// Per-phase distribution histograms: latency is observed at delivery
	// (the value depends only on virtual send/deliver times, so bucket
	// increments commute); hops are observed at run end from the final
	// per-op tallies (a hop count read at delivery time would depend on
	// shard interleaving of concurrent forwards).
	latHist []*obs.Histogram
	hopHist []*obs.Histogram

	// Per-op atomic tallies, indexed by workload op ID.
	opFwd []obs.Counter
	opDel []obs.Counter

	// Per-phase time series, sampled at phase boundaries and every
	// interval of virtual time. Samples run at epoch barriers
	// (coordinator-only), never from shard workers.
	series   []*obs.Series
	interval time.Duration
}

// obsNodeField is the canonical node field on lifecycle events.
func obsNodeField(n int) obs.Field { return obs.F("node", n) }

// obsPhaseLabel renders the phase label every per-phase family carries.
func obsPhaseLabel(pi int, name string) obs.Label {
	return obs.L("phase", fmt.Sprintf("%d-%s", pi, name))
}

func newEngineObs(s *scenario.Scenario, sched *scenario.Schedule, shards int, opts ObsOptions) *engineObs {
	n := uint64(opts.TraceSample)
	if n < 1 {
		n = 1
	}
	sampler := obs.KeySampler{Seed: uint64(s.Seed), N: n}
	reg := obs.NewRegistry()
	o := &engineObs{
		reg:     reg,
		events:  obs.NewEventLog(sampler, obs.LevelInfo),
		spans:   obs.NewTraceSet(shards),
		sampler: sampler,
		seed:    s.Seed,

		opsLookup:    reg.Counter("macedon_ops_total", "Workload operations injected.", obs.L("kind", "lookup")),
		opsMulticast: reg.Counter("macedon_ops_total", "Workload operations injected.", obs.L("kind", "multicast")),
		opsSkipped:   reg.Counter("macedon_ops_skipped_total", "Workload operations skipped because the sender was down."),
		opsDelivered: reg.Counter("macedon_ops_delivered_total", "Workload deliveries (one per receiving member)."),
		nodesAlive:   reg.Gauge("macedon_nodes_alive", "Nodes currently alive."),
	}
	maxOp := 0
	for _, op := range sched.Ops {
		if (op.Kind == scenario.OpLookup || op.Kind == scenario.OpMulticast) && op.ID >= maxOp {
			maxOp = op.ID + 1
		}
	}
	o.opFwd = make([]obs.Counter, maxOp)
	o.opDel = make([]obs.Counter, maxOp)
	o.latHist = make([]*obs.Histogram, len(sched.Phases))
	o.hopHist = make([]*obs.Histogram, len(sched.Phases))
	o.series = make([]*obs.Series, len(sched.Phases))
	o.interval = opts.SeriesInterval
	for pi, p := range sched.Phases {
		l := obsPhaseLabel(pi, p.Name)
		o.latHist[pi] = reg.Histogram("macedon_op_latency_seconds", "End-to-end operation latency.", obs.LatencyBuckets, l)
		o.hopHist[pi] = reg.Histogram("macedon_op_hops", "Mean overlay hops per delivery of an operation.", obs.HopBuckets, l)
		o.series[pi] = obs.NewSeries(seriesColumns, opts.SeriesCap)
	}
	return o
}

// samplePhase records one time-series point for a phase at phase-relative
// offset rel. It runs at an epoch barrier, where every value it reads —
// executed events, pending events, net totals, delivered ops — is a pure
// function of the executed-event prefix and therefore shard-invariant.
func (o *engineObs) samplePhase(e *scenarioEngine, pi int, rel time.Duration) {
	st := e.c.Net.Stats()
	o.series[pi].Append(rel,
		float64(e.c.Sched.Executed()),
		float64(e.c.Sched.Pending()),
		float64(st.Sent),
		float64(st.Delivered),
		float64(o.opsDelivered.Load()),
	)
}

// onInject records a workload injection: the coordinator-side end of the
// trace, plus the sampled event-log record. Runs at an epoch barrier.
func (o *engineObs) onInject(kind string, op scenario.Op, node int, at time.Duration) {
	if kind == "lookup" {
		o.opsLookup.Inc()
	} else {
		o.opsMulticast.Inc()
	}
	tid := obs.MintTraceID(o.seed, op.ID)
	o.events.EmitAt(at, uint64(op.ID), obs.LevelInfo, "inject",
		obs.F("kind", kind), obs.F("op", op.ID), obs.F("node", node),
		obs.F("trace", fmt.Sprintf("%016x", uint64(tid))))
	if o.sampler.Admit("span", uint64(op.ID)) {
		o.spans.Record(-1, obs.Span{Trace: tid, Op: op.ID, Kind: obs.SpanInject, Node: node, Next: -1, At: at})
	}
}

// onSkip records a workload op whose sender was down.
func (o *engineObs) onSkip(kind string, op scenario.Op, node int, at time.Duration) {
	o.opsSkipped.Inc()
	o.events.EmitAt(at, uint64(op.ID), obs.LevelWarn, "skip",
		obs.F("kind", kind), obs.F("op", op.ID), obs.F("node", node))
}

// onLifecycle records a sampled lifecycle event (kill, revive, partition,
// heal), keyed by node index. Runs at an epoch barrier.
func (o *engineObs) onLifecycle(at time.Duration, key int, name string, fields ...obs.Field) {
	o.events.EmitAt(at, uint64(key), obs.LevelInfo, name, fields...)
}

// onForward runs on the forwarding node's shard: atomic tally plus a
// sampled span.
func (o *engineObs) onForward(opID, node, next, shard int, at time.Duration) {
	if opID < 0 || opID >= len(o.opFwd) {
		return
	}
	o.opFwd[opID].Inc()
	if o.sampler.Admit("span", uint64(opID)) {
		o.spans.Record(shard, obs.Span{
			Trace: obs.MintTraceID(o.seed, opID), Op: opID,
			Kind: obs.SpanForward, Node: node, Next: next, At: at,
		})
	}
}

// onDeliver runs on the receiving node's shard. The latency value depends
// only on the op's virtual send and deliver instants, so observing it here
// is deterministic at any shard count.
func (o *engineObs) onDeliver(opID, node, shard, phase int, at, latency time.Duration) {
	if opID < 0 || opID >= len(o.opDel) {
		return
	}
	o.opDel[opID].Inc()
	o.opsDelivered.Inc()
	o.latHist[phase].Observe(latency.Seconds())
	if o.sampler.Admit("span", uint64(opID)) {
		o.spans.Record(shard, obs.Span{
			Trace: obs.MintTraceID(o.seed, opID), Op: opID,
			Kind: obs.SpanDeliver, Node: node, Next: -1, At: at,
		})
	}
}

// finish runs once at report time, after the run ended and every shard
// parked: hop distributions from the final per-op tallies, engine counter
// and net-stat mirrors, and the assembled report sections.
func (e *scenarioEngine) finishObs(rep *scenario.Report) {
	o := e.obs
	if o == nil {
		return
	}
	for opID := range o.opDel {
		del := o.opDel[opID].Load()
		if del == 0 {
			continue
		}
		ph, ok := e.sendPhase[opID]
		if !ok || ph < 0 || ph >= len(o.hopHist) {
			continue
		}
		fwd := o.opFwd[opID].Load()
		o.hopHist[ph].Observe(float64(fwd+del) / float64(del))
	}

	ctl := e.sumCounters()
	o.reg.Counter("macedon_engine_msgs_sent_total", "Protocol messages sent by live nodes.").Store(ctl.MsgsSent)
	o.reg.Counter("macedon_engine_msgs_recv_total", "Protocol messages received by live nodes.").Store(ctl.MsgsRecv)
	o.reg.Counter("macedon_engine_bytes_sent_total", "Protocol bytes sent by live nodes.").Store(ctl.BytesSent)
	o.reg.Counter("macedon_engine_bytes_recv_total", "Protocol bytes received by live nodes.").Store(ctl.BytesRecv)

	net := rep.Final
	o.reg.Counter("macedon_net_sent_total", "Network frames sent.").Store(uint64(net.Sent))
	o.reg.Counter("macedon_net_delivered_total", "Network frames delivered.").Store(uint64(net.Delivered))
	o.reg.Counter("macedon_net_bytes_total", "Network payload bytes carried.").Store(uint64(net.Bytes))
	drops := net.QueueDrops + net.RandomLoss + net.DownDrops + net.LinkDownDrops +
		net.DegradeLoss + net.PartitionDrops + net.NoRouteDrops
	o.reg.Counter("macedon_net_dropped_total", "Network frames dropped (all causes).").Store(uint64(drops))

	// Scheduler telemetry: mirrored from the engine's own counters at this
	// quiescent point. Every value is shard-invariant — executed/pending
	// events and the pool recycler are pure functions of the total event
	// order, and barrier stall accrues the same virtual-time quantity per
	// global-actor instant in both the sequential and the sharded loop —
	// so the merged exposition is byte-identical at any shard count.
	sc := e.c.Sched
	o.reg.Counter("macedon_sched_events_total", "Events the scheduler executed.").Store(sc.Executed())
	o.reg.Gauge("macedon_sched_heap_depth", "Events pending in the scheduler heaps at run end.").Set(float64(sc.Pending()))
	o.reg.Counter("macedon_sched_barrier_stall_ns_total", "Virtual nanoseconds global-actor barriers sat ahead of the engine frontier.").Store(uint64(sc.BarrierStall()))
	util := 0.0
	if el := sc.Elapsed().Seconds(); el > 0 {
		util = float64(sc.Executed()) / el
	}
	o.reg.Gauge("macedon_sched_window_utilization", "Events executed per virtual second: the density the lookahead windows carried.").Set(util)
	pool := e.c.Net.PoolStats()
	o.reg.Counter("macedon_sched_pool_gets_total", "Packet records requested from the per-shard pools.").Store(pool.Gets)
	o.reg.Counter("macedon_sched_pool_recycled_total", "Terminal packets recycled for reuse.").Store(pool.Recycled)
	o.reg.Counter("macedon_sched_pool_pinned_total", "Terminal packets pinned by a snapshot generation.").Store(pool.Pinned)

	live := 0
	for _, up := range e.alive {
		if up {
			live++
		}
	}
	o.nodesAlive.Set(float64(live))

	for pi := range rep.Phases {
		rep.Phases[pi].Obs = &scenario.PhaseObs{
			Latency: o.latHist[pi].Snapshot(),
			Hops:    o.hopHist[pi].Snapshot(),
			Series:  o.series[pi].Snapshot(),
		}
	}
	rep.Obs = &scenario.ObsReport{
		Exposition: o.reg.Text(),
		Events:     o.events.Lines(),
		Spans:      o.spans.Lines(),
	}
}

// addrIndex resolves a node address to its cluster index (-1 if unknown):
// span records carry node indices, not raw addresses. The map is built
// eagerly at engine construction, so concurrent shard callbacks only read.
func (e *scenarioEngine) addrIndex(a overlay.Address) int {
	if i, ok := e.addrIdx[a]; ok {
		return i
	}
	return -1
}
