package harness

import (
	"strings"
	"sync"
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/scenario"
)

// TestObsShardInvariance is the obs plane's determinism contract: the
// exposition, the sampled event log, and the merged span records must be
// byte-identical at any shard count — and turning obs on must not perturb
// the legacy trace or report by a single byte.
func TestObsShardInvariance(t *testing.T) {
	opts := ObsOptions{Enabled: true, TraceSample: 2}
	base, err := RunScenarioShardsObs(testScenario(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Obs == nil {
		t.Fatal("obs enabled but report carries no obs section")
	}
	if base.Obs.Exposition == "" || len(base.Obs.Events) == 0 || len(base.Obs.Spans) == 0 {
		t.Fatalf("obs section incomplete: exposition=%d bytes, %d events, %d spans",
			len(base.Obs.Exposition), len(base.Obs.Events), len(base.Obs.Spans))
	}
	for _, shards := range []int{2, 4} {
		got, err := RunScenarioShardsObs(testScenario(), shards, opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.ObsText() != base.ObsText() {
			diffLines(t, shards, base.ObsText(), got.ObsText())
		}
		if got.TraceText() != base.TraceText() || got.String() != base.String() {
			t.Fatalf("shards=%d: legacy output drifted under obs", shards)
		}
		if got.VerboseString() != base.VerboseString() {
			t.Fatalf("shards=%d: verbose report drifted:\n--- shards=1\n%s\n--- shards=%d\n%s",
				shards, base.VerboseString(), shards, got.VerboseString())
		}
	}

	// Obs off must reproduce the exact pre-obs run.
	plain, err := RunScenario(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceText() != base.TraceText() || plain.String() != base.String() {
		t.Fatal("enabling obs changed the legacy trace or report")
	}
	if plain.Obs != nil || plain.Phases[0].Obs != nil {
		t.Fatal("obs disabled but report carries obs sections")
	}
}

// TestSchedFamiliesShardInvariant pins the scheduler-telemetry contract:
// every macedon_sched_* family must be present in the merged exposition,
// carry plausible values, and be byte-identical across shard counts — the
// per-shard counters (heap depth, barrier stalls, pool traffic) sum to
// totals that depend only on the executed schedule, never on how the actors
// were partitioned. The per-phase time series rides the same contract.
func TestSchedFamiliesShardInvariant(t *testing.T) {
	opts := ObsOptions{Enabled: true, SeriesInterval: 20 * time.Second}
	schedLines := func(expo string) string {
		var b strings.Builder
		for _, line := range strings.Split(expo, "\n") {
			if strings.Contains(line, "macedon_sched_") {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	var base string
	var baseRep *scenario.Report
	for _, shards := range []int{1, 2, 4} {
		rep, err := RunScenarioShardsObs(testScenario(), shards, opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := schedLines(rep.Obs.Exposition)
		if base == "" {
			base, baseRep = got, rep
			for _, fam := range []string{
				"macedon_sched_events_total",
				"macedon_sched_heap_depth",
				"macedon_sched_barrier_stall_ns_total",
				"macedon_sched_window_utilization",
				"macedon_sched_pool_gets_total",
				"macedon_sched_pool_recycled_total",
				"macedon_sched_pool_pinned_total",
			} {
				if !strings.Contains(got, fam) {
					t.Errorf("merged exposition missing %s:\n%s", fam, got)
				}
			}
			continue
		}
		if got != base {
			diffLines(t, shards, base, got)
		}
		for pi, p := range rep.Phases {
			bs, gs := baseRep.Phases[pi].Obs.Series, p.Obs.Series
			if len(gs.Points) == 0 {
				t.Fatalf("shards=%d: phase %d has no series points", shards, pi)
			}
			if len(gs.Points) != len(bs.Points) {
				t.Fatalf("shards=%d: phase %d series has %d points, shards=1 has %d",
					shards, pi, len(gs.Points), len(bs.Points))
			}
			for i := range gs.Points {
				if gs.Points[i].At != bs.Points[i].At {
					t.Fatalf("shards=%d: phase %d point %d at %v, shards=1 at %v",
						shards, pi, i, gs.Points[i].At, bs.Points[i].At)
				}
				for j := range gs.Points[i].Values {
					if gs.Points[i].Values[j] != bs.Points[i].Values[j] {
						t.Fatalf("shards=%d: phase %d point %d column %s: %v vs %v",
							shards, pi, i, gs.Columns[j], gs.Points[i].Values[j], bs.Points[i].Values[j])
					}
				}
			}
		}
	}
}

func diffLines(t *testing.T, shards int, a, b string) {
	t.Helper()
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			t.Fatalf("shards=%d: obs output diverges at line %d:\n  shards=1: %s\n  shards=%d: %s",
				shards, i, al[i], shards, bl[i])
		}
	}
	t.Fatalf("shards=%d: obs output lengths differ: %d vs %d lines", shards, len(al), len(bl))
}

// TestObsPhaseHistograms sanity-checks the per-phase distribution columns:
// delivered lookups must land in the latency and hop histograms of the
// phase that issued them.
func TestObsPhaseHistograms(t *testing.T) {
	rep, err := RunScenarioObs(testScenario(), ObsOptions{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range rep.Phases {
		if p.Obs == nil {
			t.Fatalf("phase %d: no obs snapshot", pi)
		}
		if p.OpsDelivered > 0 {
			if p.Obs.Latency.Count != uint64(p.OpsDelivered) {
				t.Errorf("phase %d: latency hist count=%d, delivered=%d", pi, p.Obs.Latency.Count, p.OpsDelivered)
			}
			if p.Obs.Hops.Count == 0 {
				t.Errorf("phase %d: delivered ops but empty hop histogram", pi)
			}
			if p.Obs.Latency.Sum <= 0 {
				t.Errorf("phase %d: latency sum = %v", pi, p.Obs.Latency.Sum)
			}
		}
	}
	if !strings.Contains(rep.Obs.Exposition, "macedon_ops_total{kind=\"lookup\"}") {
		t.Error("exposition missing macedon_ops_total{kind=\"lookup\"}")
	}
	if !strings.Contains(rep.Obs.Exposition, "macedon_engine_msgs_sent_total") {
		t.Error("exposition missing engine counter mirror")
	}
}

// TestCountersConcurrentSnapshots is the satellite race audit: engine
// counters must be snapshottable from control goroutines while a sharded
// run executes — exactly what live agents do when serving /metrics. Run
// under -race this catches any non-atomic counter increment.
func TestCountersConcurrentSnapshots(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 8, Routers: 40, Seed: 11, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.StopAll()
	stack, err := ScenarioStack("chord")
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*core.Node, 0, 8)
	for i := 0; i < 8; i++ {
		n, err := c.Spawn(i, stack)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, n := range nodes {
				_ = n.Counters()
			}
		}
	}()
	c.RunFor(60 * time.Second)
	close(stop)
	wg.Wait()
	var total uint64
	for _, n := range nodes {
		total += n.Counters().MsgsSent
	}
	if total == 0 {
		t.Fatal("no protocol traffic recorded")
	}
}
