package harness

import (
	"fmt"
	"time"

	"macedon/internal/check"
	"macedon/internal/core"
	"macedon/internal/obs"
	"macedon/internal/overlay"
	"macedon/internal/overlays/ammo"
	"macedon/internal/overlays/bullet"
	"macedon/internal/overlays/chord"
	"macedon/internal/overlays/genchord"
	"macedon/internal/overlays/genpastry"
	"macedon/internal/overlays/genrandtree"
	"macedon/internal/overlays/nice"
	"macedon/internal/overlays/overcast"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/randtree"
	"macedon/internal/overlays/scribe"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
)

// ScenarioStack resolves a scenario protocol name onto a node stack:
// chord, pastry, randtree, scribe (pastry+scribe), nice, overcast, ammo,
// bullet (randtree+bullet), or the machine-generated genchord, genpastry,
// and genrandtree agents that `macedon gen` emits from specs/*.mac.
func ScenarioStack(proto string) ([]core.Factory, error) {
	switch proto {
	case "", "chord":
		return []core.Factory{chord.New(chord.Params{})}, nil
	case "pastry":
		return []core.Factory{pastry.New(pastry.Params{})}, nil
	case "randtree":
		return []core.Factory{randtree.New(randtree.Params{})}, nil
	case "scribe":
		return []core.Factory{pastry.New(pastry.Params{}), scribe.New(scribe.Params{})}, nil
	case "nice":
		return []core.Factory{nice.New(nice.Params{})}, nil
	case "overcast":
		return []core.Factory{overcast.New(overcast.Params{})}, nil
	case "ammo":
		return []core.Factory{ammo.New(ammo.Params{})}, nil
	case "bullet":
		// Bullet layers over RandTree (the paper's Figure 2 stack): the tree
		// stripes blocks, the RanSub mesh recovers the rest. Snappier epoch
		// and exchange cadences than the library defaults keep mesh recovery
		// inside a scenario phase's horizon.
		return []core.Factory{
			randtree.New(randtree.Params{}),
			bullet.New(bullet.Params{
				EpochPeriod: 3 * time.Second,
				HavePeriod:  time.Second,
			}),
		}, nil
	case "genchord":
		return []core.Factory{genchord.New()}, nil
	case "genpastry":
		return []core.Factory{genpastry.New()}, nil
	case "genrandtree":
		return []core.Factory{genrandtree.New()}, nil
	}
	return nil, fmt.Errorf("harness: unknown scenario protocol %q (have chord, pastry, randtree, scribe, nice, overcast, ammo, bullet, genchord, genpastry, genrandtree)", proto)
}

// ExecOptions are execution parameters of a scenario run: knobs that change
// how the run executes (parallelism, vertex placement, observability) but
// never what it computes — every combination produces the identical trace
// and report, which is what lets one golden corpus gate them all.
type ExecOptions struct {
	// Shards is the event-loop shard count; 0 or 1 is sequential.
	Shards int
	// Partitioner is the vertex→shard assignment strategy ("" or
	// simnet.PartitionerStriped, or simnet.PartitionerLatency).
	Partitioner string
	// Obs configures the observability plane.
	Obs ObsOptions
}

// RunScenario compiles a declarative scenario and executes it against an
// emulated cluster, returning the structured report. The run is fully
// deterministic: the same scenario and seed produce a byte-identical event
// trace and report.
func RunScenario(s *scenario.Scenario) (*scenario.Report, error) {
	return RunScenarioShards(s, 1)
}

// RunScenarioShards runs a scenario on a sharded event loop. The shard
// count is an execution parameter, not a scenario property: any value
// yields the identical trace and report (docs/simnet.md explains why), so
// golden traces recorded at one shard count verify every other.
func RunScenarioShards(s *scenario.Scenario, shards int) (*scenario.Report, error) {
	return RunScenarioExec(s, ExecOptions{Shards: shards})
}

// RunScenarioExec runs a scenario with the full set of execution options.
func RunScenarioExec(s *scenario.Scenario, exec ExecOptions) (*scenario.Report, error) {
	sched, err := scenario.Compile(s)
	if err != nil {
		return nil, err
	}
	eng, err := newScenarioEngineExec(s, sched, exec)
	if err != nil {
		return nil, err
	}
	defer eng.c.StopAll()
	if exec.Obs.Enabled {
		eng.obs = newEngineObs(s, sched, eng.c.Sched.Shards(), exec.Obs)
	}
	eng.scheduleSetup()
	eng.schedulePhases(0, len(sched.Phases)-1)
	eng.c.RunFor(sched.Total)
	return eng.report(), nil
}

// scenarioEngine executes one compiled schedule — or, under checkpoint/fork
// (docs/sweeps.md), one shared prefix followed by several variant branches
// of it: branch() rewinds the accounting the way Cluster.Restore rewinds the
// world.
type scenarioEngine struct {
	s     *scenario.Scenario
	sched *scenario.Schedule
	c     *Cluster
	stack []core.Factory

	needsGroup bool
	group      overlay.Key

	alive     []bool
	sendTime  map[int]time.Duration // workload op id → virtual send offset
	sendPhase map[int]int           // workload op id → phase index
	opsSent   []int
	opsSkip   []int
	// Delivery accounting is indexed [shard][phase]: callbacks run on the
	// receiving node's shard, concurrently with other shards, and the
	// per-shard sums merge deterministically (addition commutes).
	delivered [][]int
	latSum    [][]time.Duration
	forwards  [][]int        // forward() upcalls per shard and op phase
	phaseNet  []simnet.Stats // stats snapshot at each phase end
	phaseLive []int
	phaseCtl  []core.Counters // per-node counters summed at each phase end
	baseNet   simnet.Stats    // stats snapshot when phase 0 starts
	baseCtl   core.Counters   // counter sum when phase 0 starts

	eventsRun int
	trace     []string

	// Liveness and connectivity ages for the correctness plane
	// (internal/check): maintained unconditionally so sweep branching is
	// uniform, consulted only when the scenario opted into checks.
	upAt         []time.Duration // last transition to up (spawn/revive)
	downAt       []time.Duration // last transition to down (0 = down since start)
	connAt       []time.Duration // last connectivity change (down/up, link, degrade, partition)
	hostDown     []bool          // node_down active
	linkDown     []bool          // link_down active
	nodeDegraded []bool          // degrade active
	partitioned  bool

	// checks is the run's correctness plane; nil when the scenario has no
	// checks spec. phaseChecks collects the per-phase verdicts.
	checks      *engineChecks
	phaseChecks []*check.PhaseChecks

	// obs is the run's observability plane; nil (the default) keeps the
	// engine byte-for-byte on its legacy path. Not carried across sweep
	// fork branches.
	obs     *engineObs
	addrIdx map[overlay.Address]int
}

func makeGrid[T any](shards, phases int) [][]T {
	out := make([][]T, shards)
	for i := range out {
		out[i] = make([]T, phases)
	}
	return out
}

// newScenarioEngine builds the cluster and a fresh engine for a compiled
// schedule. The caller owns eng.c.StopAll.
func newScenarioEngine(s *scenario.Scenario, sched *scenario.Schedule, shards int) (*scenarioEngine, error) {
	return newScenarioEngineExec(s, sched, ExecOptions{Shards: shards})
}

// newScenarioEngineExec is newScenarioEngine with the full execution options.
func newScenarioEngineExec(s *scenario.Scenario, sched *scenario.Schedule, exec ExecOptions) (*scenarioEngine, error) {
	stack, err := ScenarioStack(s.Protocol)
	if err != nil {
		return nil, err
	}
	shards := exec.Shards
	if shards < 1 {
		shards = 1
	}
	c, err := NewCluster(ClusterConfig{
		Nodes:          s.Nodes,
		Routers:        s.Routers,
		Seed:           s.Seed,
		Shards:         shards,
		Partitioner:    exec.Partitioner,
		HeartbeatAfter: s.HeartbeatAfter.D(),
		FailAfter:      s.FailAfter.D(),
	})
	if err != nil {
		return nil, err
	}
	eng := &scenarioEngine{
		s:         s,
		sched:     sched,
		c:         c,
		stack:     stack,
		alive:     make([]bool, s.Nodes),
		sendTime:  make(map[int]time.Duration),
		sendPhase: make(map[int]int),
		opsSent:   make([]int, len(sched.Phases)),
		opsSkip:   make([]int, len(sched.Phases)),
		delivered: makeGrid[int](shards, len(sched.Phases)),
		latSum:    makeGrid[time.Duration](shards, len(sched.Phases)),
		forwards:  makeGrid[int](shards, len(sched.Phases)),
		phaseNet:  make([]simnet.Stats, len(sched.Phases)),
		phaseLive: make([]int, len(sched.Phases)),
		phaseCtl:  make([]core.Counters, len(sched.Phases)),
		addrIdx:   make(map[overlay.Address]int, s.Nodes),

		upAt:         make([]time.Duration, s.Nodes),
		downAt:       make([]time.Duration, s.Nodes),
		connAt:       make([]time.Duration, s.Nodes),
		hostDown:     make([]bool, s.Nodes),
		linkDown:     make([]bool, s.Nodes),
		nodeDegraded: make([]bool, s.Nodes),
		phaseChecks:  make([]*check.PhaseChecks, len(sched.Phases)),
	}
	if eng.checks, err = newEngineChecks(s); err != nil {
		c.StopAll()
		return nil, err
	}
	for i, addr := range c.Addrs {
		eng.addrIdx[addr] = i
	}
	if s.NeedsGroup() {
		eng.group = overlay.HashString(s.GroupName())
		eng.needsGroup = true
	}
	return eng, nil
}

// scheduleSetup schedules the setup operations (joins) plus the settle-end
// baseline snapshot. Runs of spawns at the same instant are batched into one
// event so node construction can parallelize across shards instead of
// serializing inside a single epoch barrier — the t=0 spawn herd. The batch
// executes its spawns in op order, so the trace is byte-identical to
// unbatched scheduling.
func (e *scenarioEngine) scheduleSetup() {
	base := e.c.Sched.Elapsed()
	ops := e.sched.Ops
	i := 0
	for i < len(ops) && ops[i].Phase < 0 {
		if ops[i].Kind == scenario.OpSpawn {
			j := i + 1
			for j < len(ops) && ops[j].Phase < 0 && ops[j].Kind == scenario.OpSpawn && ops[j].At == ops[i].At {
				j++
			}
			if j-i > 1 {
				batch := ops[i:j]
				e.c.Sched.After(batch[0].At-base, func() { e.applySpawnBatch(batch) })
				i = j
				continue
			}
		}
		e.scheduleFrom(ops[i], base)
		i++
	}
	e.c.Sched.After(e.sched.Settle-base, func() {
		e.baseNet = e.c.Net.Stats()
		e.baseCtl = e.sumCounters()
	})
}

// schedulePhases schedules the ops and end-of-phase snapshots of phases
// [from, to]. Ops fire at their absolute schedule offsets regardless of when
// scheduling happens — which is what lets a fork branch schedule its tail
// phases after the shared prefix already ran.
func (e *scenarioEngine) schedulePhases(from, to int) {
	base := e.c.Sched.Elapsed()
	ops := e.sched.Ops
	i := 0
	for i < len(ops) && ops[i].Phase < from {
		i++
	}
	for pi := from; pi <= to; pi++ {
		for ; i < len(ops) && ops[i].Phase == pi; i++ {
			e.scheduleFrom(ops[i], base)
		}
		end := e.sched.Phases[pi].End
		p := pi
		e.c.Sched.After(end-base, func() { e.snapshot(p) })
		if e.obs != nil {
			e.scheduleObsSeries(pi, base)
		}
	}
}

// scheduleObsSeries schedules one phase's time-series samples: the start
// and end boundaries plus every intra-phase interval point. Samples are
// read-only global-actor events scheduled after the phase's ops and
// end-of-phase snapshot at the same instants (a later global sequence
// number preserves relative order), so turning them on never perturbs the
// legacy trace or report, and each sample reads engine state at a fixed
// position in the shard-count-independent total order.
func (e *scenarioEngine) scheduleObsSeries(pi int, base time.Duration) {
	ph := e.sched.Phases[pi]
	o := e.obs
	sample := func(at time.Duration) {
		rel := at - ph.Start
		e.c.Sched.After(at-base, func() { o.samplePhase(e, pi, rel) })
	}
	sample(ph.Start)
	if iv := o.interval; iv > 0 {
		for t := ph.Start + iv; t < ph.End; t += iv {
			sample(t)
		}
	}
	sample(ph.End)
}

// scheduleFrom schedules one op against the virtual instant scheduling
// happens at.
func (e *scenarioEngine) scheduleFrom(op scenario.Op, base time.Duration) {
	e.c.Sched.After(op.At-base, func() { e.apply(op) })
}

// engineState is the engine's accounting at a fork point, restored at the
// start of every branch.
type engineState struct {
	alive     []bool
	sendTime  map[int]time.Duration
	sendPhase map[int]int
	opsSent   []int
	opsSkip   []int
	delivered [][]int
	latSum    [][]time.Duration
	forwards  [][]int
	phaseNet  []simnet.Stats
	phaseLive []int
	phaseCtl  []core.Counters
	baseNet   simnet.Stats
	baseCtl   core.Counters
	eventsRun int
	trace     []string

	upAt         []time.Duration
	downAt       []time.Duration
	connAt       []time.Duration
	hostDown     []bool
	linkDown     []bool
	nodeDegraded []bool
	partitioned  bool
	phaseChecks  []*check.PhaseChecks
}

// saveState captures the engine accounting for later branches.
func (e *scenarioEngine) saveState() *engineState {
	st := &engineState{
		alive:     append([]bool(nil), e.alive...),
		sendTime:  make(map[int]time.Duration, len(e.sendTime)),
		sendPhase: make(map[int]int, len(e.sendPhase)),
		opsSent:   append([]int(nil), e.opsSent...),
		opsSkip:   append([]int(nil), e.opsSkip...),
		delivered: copyGrid(e.delivered),
		latSum:    copyGrid(e.latSum),
		forwards:  copyGrid(e.forwards),
		phaseNet:  append([]simnet.Stats(nil), e.phaseNet...),
		phaseLive: append([]int(nil), e.phaseLive...),
		phaseCtl:  append([]core.Counters(nil), e.phaseCtl...),
		baseNet:   e.baseNet,
		baseCtl:   e.baseCtl,
		eventsRun: e.eventsRun,
		trace:     append([]string(nil), e.trace...),

		upAt:         append([]time.Duration(nil), e.upAt...),
		downAt:       append([]time.Duration(nil), e.downAt...),
		connAt:       append([]time.Duration(nil), e.connAt...),
		hostDown:     append([]bool(nil), e.hostDown...),
		linkDown:     append([]bool(nil), e.linkDown...),
		nodeDegraded: append([]bool(nil), e.nodeDegraded...),
		partitioned:  e.partitioned,
		phaseChecks:  append([]*check.PhaseChecks(nil), e.phaseChecks...),
	}
	for k, v := range e.sendTime {
		st.sendTime[k] = v
	}
	for k, v := range e.sendPhase {
		st.sendPhase[k] = v
	}
	return st
}

// branch points the engine at a variant's scenario and schedule and rewinds
// the accounting to the fork state. Phase-indexed arrays are resized to the
// variant's phase count; the shared-prefix columns carry over. The engine
// object itself must survive branches unchanged — delivery handlers
// installed on prefix-spawned nodes captured it.
func (e *scenarioEngine) branch(s *scenario.Scenario, sched *scenario.Schedule, st *engineState) {
	e.s, e.sched = s, sched
	np := len(sched.Phases)
	e.alive = append(e.alive[:0:0], st.alive...)
	e.sendTime = make(map[int]time.Duration, len(st.sendTime))
	for k, v := range st.sendTime {
		e.sendTime[k] = v
	}
	e.sendPhase = make(map[int]int, len(st.sendPhase))
	for k, v := range st.sendPhase {
		e.sendPhase[k] = v
	}
	e.opsSent = resizeInts(st.opsSent, np)
	e.opsSkip = resizeInts(st.opsSkip, np)
	e.delivered = resizeGrid(st.delivered, np)
	e.latSum = resizeGrid(st.latSum, np)
	e.forwards = resizeGrid(st.forwards, np)
	e.phaseNet = resizeSlice(st.phaseNet, np)
	e.phaseLive = resizeInts(st.phaseLive, np)
	e.phaseCtl = resizeSlice(st.phaseCtl, np)
	e.baseNet = st.baseNet
	e.baseCtl = st.baseCtl
	e.eventsRun = st.eventsRun
	e.trace = append(e.trace[:0:0], st.trace...)

	e.upAt = append(e.upAt[:0:0], st.upAt...)
	e.downAt = append(e.downAt[:0:0], st.downAt...)
	e.connAt = append(e.connAt[:0:0], st.connAt...)
	e.hostDown = append(e.hostDown[:0:0], st.hostDown...)
	e.linkDown = append(e.linkDown[:0:0], st.linkDown...)
	e.nodeDegraded = append(e.nodeDegraded[:0:0], st.nodeDegraded...)
	e.partitioned = st.partitioned
	e.phaseChecks = resizeSlice(st.phaseChecks, np)
	// A variant may re-window or re-select its checkers.
	var err error
	if e.checks, err = newEngineChecks(s); err != nil {
		panic(fmt.Sprintf("harness: sweep variant checks: %v", err))
	}
}

func copyGrid[T any](g [][]T) [][]T {
	out := make([][]T, len(g))
	for i := range g {
		out[i] = append([]T(nil), g[i]...)
	}
	return out
}

func resizeSlice[T any](src []T, n int) []T {
	out := make([]T, n)
	copy(out, src)
	return out
}

func resizeInts(src []int, n int) []int { return resizeSlice(src, n) }

func resizeGrid[T any](g [][]T, n int) [][]T {
	out := make([][]T, len(g))
	for i := range g {
		out[i] = resizeSlice(g[i], n)
	}
	return out
}

// report assembles the structured result after the run (or branch) ends.
func (e *scenarioEngine) report() *scenario.Report {
	rep := &scenario.Report{
		Scenario:  e.s.Name,
		Protocol:  e.protoName(),
		Seed:      e.s.Seed,
		Nodes:     e.s.Nodes,
		Settle:    e.sched.Settle,
		End:       e.sched.End,
		Total:     e.sched.Total,
		EventsRun: e.eventsRun,
		Final:     e.c.Net.Stats(),
		Trace:     append([]string(nil), e.trace...),
	}
	rows := make([]scenario.PhaseTotals, len(e.sched.Phases))
	for pi := range e.sched.Phases {
		row := scenario.PhaseTotals{
			Live:     e.phaseLive[pi],
			Sent:     e.opsSent[pi],
			Skipped:  e.opsSkip[pi],
			Net:      e.phaseNet[pi],
			CtlMsgs:  e.phaseCtl[pi].MsgsSent,
			CtlBytes: e.phaseCtl[pi].BytesSent,
			Checks:   e.phaseChecks[pi],
		}
		for sh := range e.delivered {
			row.Delivered += e.delivered[sh][pi]
			row.LatSum += e.latSum[sh][pi]
			row.Forwards += e.forwards[sh][pi]
		}
		rows[pi] = row
	}
	rep.Phases = scenario.AssemblePhases(e.sched.Phases, rows, scenario.PhaseTotals{
		Net:      e.baseNet,
		CtlMsgs:  e.baseCtl.MsgsSent,
		CtlBytes: e.baseCtl.BytesSent,
	})
	e.finishObs(rep)
	return rep
}

// sumCounters totals the engine counters over the currently live nodes:
// the protocol-level control-traffic overhead snapshot taken at phase
// boundaries (all shards are parked there, so the instance reads race
// nothing).
func (e *scenarioEngine) sumCounters() core.Counters {
	var sum core.Counters
	for _, n := range e.c.Nodes {
		c := n.Counters()
		sum.MsgsSent += c.MsgsSent
		sum.BytesSent += c.BytesSent
		sum.MsgsRecv += c.MsgsRecv
		sum.BytesRecv += c.BytesRecv
	}
	return sum
}

func (e *scenarioEngine) protoName() string {
	if e.s.Protocol == "" {
		return "chord"
	}
	return e.s.Protocol
}

func (e *scenarioEngine) snapshot(pi int) {
	e.phaseNet[pi] = e.c.Net.Stats()
	e.phaseCtl[pi] = e.sumCounters()
	live := 0
	for _, up := range e.alive {
		if up {
			live++
		}
	}
	e.phaseLive[pi] = live
	if e.checks != nil {
		e.phaseChecks[pi] = e.runChecks(pi)
	}
}

func (e *scenarioEngine) tracef(format string, args ...any) {
	at := e.c.Sched.Elapsed()
	e.trace = append(e.trace, fmt.Sprintf("t=%10.3fs  %s", at.Seconds(), fmt.Sprintf(format, args...)))
}

// applySpawnBatch executes one same-instant run of setup spawns, fanning
// node construction out across the event shards. Trace lines and accounting
// are emitted in op order, exactly as per-op execution would.
func (e *scenarioEngine) applySpawnBatch(ops []scenario.Op) {
	var idx []int
	for _, op := range ops {
		e.eventsRun++
		if e.alive[op.Node] {
			e.tracef("spawn node %d skipped (already up)", op.Node)
			continue
		}
		idx = append(idx, op.Node)
	}
	if len(idx) == 0 {
		return
	}
	if err := e.c.SpawnBatch(idx, e.stack); err != nil {
		panic(fmt.Sprintf("harness: scenario spawn batch: %v", err))
	}
	for _, n := range idx {
		e.alive[n] = true
		e.upAt[n] = e.c.Sched.Elapsed()
		e.attach(n)
		e.tracef("spawn node %d (%v)", n, e.c.Addrs[n])
	}
}

// apply executes one op at its scheduled instant.
func (e *scenarioEngine) apply(op scenario.Op) {
	e.eventsRun++
	addr := e.c.Addrs[op.Node]
	switch op.Kind {
	case scenario.OpSpawn:
		if e.alive[op.Node] {
			e.tracef("spawn node %d skipped (already up)", op.Node)
			return
		}
		if _, err := e.c.Spawn(op.Node, e.stack); err != nil {
			panic(fmt.Sprintf("harness: scenario spawn %d: %v", op.Node, err))
		}
		e.alive[op.Node] = true
		e.upAt[op.Node] = e.c.Sched.Elapsed()
		e.attach(op.Node)
		e.tracef("spawn node %d (%v)", op.Node, addr)
	case scenario.OpKill:
		if !e.alive[op.Node] {
			e.tracef("kill node %d skipped (already down)", op.Node)
			return
		}
		e.c.Kill(op.Node)
		e.alive[op.Node] = false
		e.downAt[op.Node] = e.c.Sched.Elapsed()
		e.tracef("kill node %d (%v)", op.Node, addr)
		if e.obs != nil {
			e.obs.onLifecycle(e.c.Sched.Elapsed(), op.Node, "kill", obsNodeField(op.Node))
		}
	case scenario.OpRevive:
		if e.alive[op.Node] {
			e.tracef("revive node %d skipped (already up)", op.Node)
			return
		}
		if _, err := e.c.Revive(op.Node, e.stack); err != nil {
			panic(fmt.Sprintf("harness: scenario revive %d: %v", op.Node, err))
		}
		e.alive[op.Node] = true
		e.upAt[op.Node] = e.c.Sched.Elapsed()
		e.attach(op.Node)
		e.tracef("revive node %d (%v)", op.Node, addr)
		if e.obs != nil {
			e.obs.onLifecycle(e.c.Sched.Elapsed(), op.Node, "revive", obsNodeField(op.Node))
		}
	case scenario.OpNodeDown:
		_ = e.c.Net.SetDown(addr, true)
		e.hostDown[op.Node] = true
		e.connAt[op.Node] = e.c.Sched.Elapsed()
		e.tracef("node_down node %d (%v)", op.Node, addr)
	case scenario.OpNodeUp:
		_ = e.c.Net.SetDown(addr, false)
		e.hostDown[op.Node] = false
		e.connAt[op.Node] = e.c.Sched.Elapsed()
		e.tracef("node_up node %d (%v)", op.Node, addr)
	case scenario.OpPartition:
		sides := make(map[overlay.Address]int, len(e.c.Addrs))
		for i, a := range e.c.Addrs {
			if i < op.SideA {
				sides[a] = 1
			} else {
				sides[a] = 2
			}
		}
		e.c.Net.SetPartition(sides)
		e.partitioned = true
		e.touchAllConn()
		e.tracef("partition [0..%d) | [%d..%d)", op.SideA, op.SideA, len(e.c.Addrs))
		if e.obs != nil {
			e.obs.onLifecycle(e.c.Sched.Elapsed(), op.SideA, "partition", obs.F("side_a", op.SideA))
		}
	case scenario.OpHeal:
		e.c.Net.ClearPartition()
		e.partitioned = false
		e.touchAllConn()
		e.tracef("heal partition")
		if e.obs != nil {
			e.obs.onLifecycle(e.c.Sched.Elapsed(), 0, "heal")
		}
	case scenario.OpDegrade:
		_ = e.c.Net.DegradeNodeAccess(addr, simnet.Degradation{LatencyFactor: op.LatencyFactor, LossRate: op.Loss})
		e.nodeDegraded[op.Node] = true
		e.connAt[op.Node] = e.c.Sched.Elapsed()
		e.tracef("degrade node %d (latency x%.1f, loss %.2f)", op.Node, op.LatencyFactor, op.Loss)
	case scenario.OpRestore:
		_ = e.c.Net.RestoreNodeAccess(addr)
		e.nodeDegraded[op.Node] = false
		e.connAt[op.Node] = e.c.Sched.Elapsed()
		e.tracef("restore node %d", op.Node)
	case scenario.OpLinkDown:
		_ = e.c.Net.SetNodeAccessDown(addr, true)
		e.linkDown[op.Node] = true
		e.connAt[op.Node] = e.c.Sched.Elapsed()
		e.tracef("link_down node %d", op.Node)
	case scenario.OpLinkUp:
		_ = e.c.Net.SetNodeAccessDown(addr, false)
		e.linkDown[op.Node] = false
		e.connAt[op.Node] = e.c.Sched.Elapsed()
		e.tracef("link_up node %d", op.Node)
	case scenario.OpLookup:
		if !e.alive[op.Node] {
			e.opsSkip[op.Phase]++
			e.tracef("lookup #%d skipped (node %d down)", op.ID, op.Node)
			if e.obs != nil {
				e.obs.onSkip("lookup", op, op.Node, e.c.Sched.Elapsed())
			}
			return
		}
		at := e.c.Sched.Elapsed()
		e.sendTime[op.ID] = at
		e.sendPhase[op.ID] = op.Phase
		e.opsSent[op.Phase]++
		if e.obs != nil {
			e.obs.onInject("lookup", op, op.Node, at)
		}
		_ = e.c.Nodes[addr].Route(overlay.Key(op.Key), make([]byte, op.Size), int32(op.ID), overlay.PriorityDefault)
	case scenario.OpMulticast:
		if !e.alive[op.Node] {
			e.opsSkip[op.Phase]++
			e.tracef("multicast #%d skipped (node %d down)", op.ID, op.Node)
			if e.obs != nil {
				e.obs.onSkip("multicast", op, op.Node, e.c.Sched.Elapsed())
			}
			return
		}
		at := e.c.Sched.Elapsed()
		e.sendTime[op.ID] = at
		e.sendPhase[op.ID] = op.Phase
		e.opsSent[op.Phase]++
		if e.obs != nil {
			e.obs.onInject("multicast", op, op.Node, at)
		}
		_ = e.c.Nodes[addr].Multicast(e.group, make([]byte, op.Size), int32(op.ID), overlay.PriorityDefault)
	}
}

// touchAllConn stamps every node's connectivity-change instant: partitions
// and heals change everyone's reachability at once.
func (e *scenarioEngine) touchAllConn() {
	now := e.c.Sched.Elapsed()
	for i := range e.connAt {
		e.connAt[i] = now
	}
}

// attach registers delivery accounting (and group membership) on a node
// that just spawned or revived. The deliver callback fires on the node's
// event shard, so it captures the shard-bound clock and accounting row.
func (e *scenarioEngine) attach(i int) {
	n := e.c.Nodes[e.c.Addrs[i]]
	sub := e.c.NodeSub(i)
	shard := sub.Shard()
	n.RegisterHandlers(core.Handlers{
		Deliver: func(payload []byte, typ int32, src overlay.Address) {
			e.onDeliver(int(typ), shard, sub)
			if o := e.obs; o != nil {
				opID := int(typ)
				if at, ok := e.sendTime[opID]; ok {
					now := sub.Elapsed()
					o.onDeliver(opID, i, shard, e.sendPhase[opID], now, now-at)
				}
			}
		},
		Forward: func(payload []byte, typ int32, next overlay.Address, nextKey overlay.Key) bool {
			e.onForward(int(typ), shard)
			if o := e.obs; o != nil {
				opID := int(typ)
				if _, ok := e.sendTime[opID]; ok {
					o.onForward(opID, i, e.addrIndex(next), shard, sub.Elapsed())
				}
			}
			return true
		},
	})
	if e.needsGroup {
		if i == 0 {
			_ = n.CreateGroup(e.group)
		} else {
			_ = n.Join(e.group)
		}
	}
}

// onDeliver runs on the receiving node's shard. sendTime and sendPhase are
// only written by workload ops, which execute at barriers while every shard
// is parked, so the concurrent reads here are safe.
func (e *scenarioEngine) onDeliver(opID, shard int, sub *simnet.NodeSubstrate) {
	at, ok := e.sendTime[opID]
	if !ok {
		return
	}
	ph := e.sendPhase[opID]
	e.delivered[shard][ph]++
	e.latSum[shard][ph] += sub.Elapsed() - at
}

// onForward runs on the forwarding node's shard: one more overlay hop for
// the op's payload, attributed to the phase that issued it.
func (e *scenarioEngine) onForward(opID, shard int) {
	if _, ok := e.sendTime[opID]; !ok {
		return
	}
	e.forwards[shard][e.sendPhase[opID]]++
}
