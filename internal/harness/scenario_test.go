package harness

import (
	"strings"
	"testing"
	"time"

	"macedon/internal/scenario"
)

// testScenario is the canonical shape of the acceptance criterion: Poisson
// churn, a mid-run network partition, and a phased lookup workload — small
// enough for CI.
func testScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:     "churn-partition-lookups",
		Seed:     2004,
		Nodes:    12,
		Routers:  80,
		Protocol: "chord",
		Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(10 * time.Second)},
		Settle:   scenario.Duration(60 * time.Second),
		Drain:    scenario.Duration(15 * time.Second),
		Phases: []scenario.Phase{
			{
				Name:     "baseline",
				Duration: scenario.Duration(30 * time.Second),
				Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 1},
			},
			{
				Name:     "churn",
				Duration: scenario.Duration(40 * time.Second),
				Churn: &scenario.Churn{
					Model:    "poisson",
					Rate:     0.1,
					Downtime: scenario.Duration(15 * time.Second),
				},
				Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 1},
			},
			{
				Name:     "partition",
				Duration: scenario.Duration(30 * time.Second),
				Events: []scenario.Event{
					{At: scenario.Duration(5 * time.Second), Kind: scenario.EvPartition, Fraction: 0.33},
					{At: scenario.Duration(20 * time.Second), Kind: scenario.EvHeal},
				},
				Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 1},
			},
		},
	}
}

// TestScenarioDeterminism runs the same scenario twice and requires
// byte-identical event traces and metric reports — the engine's core
// reproducibility guarantee.
func TestScenarioDeterminism(t *testing.T) {
	a, err := RunScenario(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceText() != b.TraceText() {
		at, bt := a.Trace, b.Trace
		for i := 0; i < len(at) && i < len(bt); i++ {
			if at[i] != bt[i] {
				t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s", i, at[i], bt[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(at), len(bt))
	}
	if a.String() != b.String() {
		t.Fatalf("reports differ:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
}

// TestScenarioShardInvariance is the sharded event loop's core guarantee:
// the shard count is an execution parameter, so 1, 2, and 4 shards must
// produce byte-identical traces and reports for the same scenario and seed.
func TestScenarioShardInvariance(t *testing.T) {
	base, err := RunScenarioShards(testScenario(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		got, err := RunScenarioShards(testScenario(), shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.TraceText() != base.TraceText() {
			at, bt := base.Trace, got.Trace
			for i := 0; i < len(at) && i < len(bt); i++ {
				if at[i] != bt[i] {
					t.Fatalf("shards=%d: traces diverge at line %d:\n  shards=1: %s\n  shards=%d: %s",
						shards, i, at[i], shards, bt[i])
				}
			}
			t.Fatalf("shards=%d: trace lengths differ: %d vs %d", shards, len(at), len(bt))
		}
		if got.String() != base.String() {
			t.Fatalf("shards=%d: reports differ:\n--- shards=1\n%s\n--- shards=%d\n%s",
				shards, base, shards, got)
		}
	}
}

// TestScenarioRunsTheScript checks the executed run actually contains what
// the scenario declared: kills, a partition, heals, lookups, and sane
// metrics.
func TestScenarioRunsTheScript(t *testing.T) {
	rep, err := RunScenario(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	text := rep.TraceText()
	for _, want := range []string{"spawn node 0", "kill node", "partition [0..4)", "heal partition"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace is missing %q:\n%s", want, text)
		}
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	base := rep.Phases[0]
	if base.OpsSent == 0 {
		t.Fatal("baseline phase sent no lookups")
	}
	if base.OpsDelivered == 0 {
		t.Fatal("baseline lookups never delivered")
	}
	if base.MeanLatency <= 0 {
		t.Fatal("baseline mean latency missing")
	}
	if base.LiveNodes != 12 {
		t.Errorf("baseline live = %d, want 12", base.LiveNodes)
	}
	part := rep.Phases[2]
	if part.Net.PartitionDrops == 0 {
		t.Error("partition phase recorded no partition drops")
	}
	if rep.Final.Sent == 0 || rep.Final.Delivered == 0 {
		t.Errorf("final counters empty: %+v", rep.Final)
	}
}

// TestScenarioMulticastWorkload drives the multicast workload over
// RandTree with wave churn and revives.
func TestScenarioMulticastWorkload(t *testing.T) {
	s := &scenario.Scenario{
		Name:           "stream-massacre",
		Seed:           7,
		Nodes:          10,
		Routers:        60,
		Protocol:       "randtree",
		Settle:         scenario.Duration(30 * time.Second),
		Drain:          scenario.Duration(10 * time.Second),
		HeartbeatAfter: scenario.Duration(2 * time.Second),
		FailAfter:      scenario.Duration(6 * time.Second),
		Phases: []scenario.Phase{
			{
				Name:     "steady",
				Duration: scenario.Duration(20 * time.Second),
				Workload: &scenario.Workload{Kind: scenario.WlMulticast, Rate: 2, Size: 256},
			},
			{
				Name:     "massacre",
				Duration: scenario.Duration(40 * time.Second),
				Churn: &scenario.Churn{
					Model:    "wave",
					Kill:     2,
					Period:   scenario.Duration(15 * time.Second),
					Downtime: scenario.Duration(10 * time.Second),
				},
				Workload: &scenario.Workload{Kind: scenario.WlMulticast, Rate: 2, Size: 256},
			},
		},
	}
	rep, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	steady := rep.Phases[0]
	if steady.OpsSent == 0 || steady.OpsDelivered == 0 {
		t.Fatalf("steady multicast: sent=%d delivered=%d", steady.OpsSent, steady.OpsDelivered)
	}
	// A full tree delivers each packet to every other member.
	if steady.OpsDelivered < steady.OpsSent*5 {
		t.Errorf("steady multicast reached too few members: sent=%d deliveries=%d",
			steady.OpsSent, steady.OpsDelivered)
	}
	if !strings.Contains(rep.TraceText(), "revive node") {
		t.Error("wave churn with downtime produced no revives")
	}
}

// disseminationChurnScenario is the kill/revive audit the scenario engine
// ran against RandTree in PR 1, applied to the other dissemination
// protocols: wave churn with revives under a multicast workload, then an
// explicit kill and revive of the multicast source itself (node 0), then a
// recovery phase whose deliveries prove the revived source's stream is
// accepted (a source that reuses sequence numbers after a cold restart
// trips stale dedup state in long-lived receivers).
func disseminationChurnScenario(proto string) *scenario.Scenario {
	return &scenario.Scenario{
		Name:           "dissemination-churn-" + proto,
		Seed:           41,
		Nodes:          10,
		Routers:        60,
		Protocol:       proto,
		Settle:         scenario.Duration(40 * time.Second),
		Drain:          scenario.Duration(10 * time.Second),
		HeartbeatAfter: scenario.Duration(2 * time.Second),
		FailAfter:      scenario.Duration(6 * time.Second),
		Phases: []scenario.Phase{
			{
				Name:     "steady",
				Duration: scenario.Duration(20 * time.Second),
				Workload: &scenario.Workload{Kind: scenario.WlMulticast, Rate: 2, Size: 200},
			},
			{
				Name:     "members-churn",
				Duration: scenario.Duration(30 * time.Second),
				Churn: &scenario.Churn{
					Model:    "wave",
					Kill:     2,
					Period:   scenario.Duration(10 * time.Second),
					Downtime: scenario.Duration(8 * time.Second),
				},
				Workload: &scenario.Workload{Kind: scenario.WlMulticast, Rate: 2, Size: 200},
			},
			{
				Name:     "source-outage",
				Duration: scenario.Duration(30 * time.Second),
				Events: []scenario.Event{
					{At: scenario.Duration(2 * time.Second), Kind: scenario.EvKill, Node: 0},
					{At: scenario.Duration(12 * time.Second), Kind: scenario.EvRevive, Node: 0},
				},
				Workload: &scenario.Workload{Kind: scenario.WlMulticast, Rate: 2, Size: 200},
			},
			{
				Name:     "recovered",
				Duration: scenario.Duration(30 * time.Second),
				Workload: &scenario.Workload{Kind: scenario.WlMulticast, Rate: 2, Size: 200},
			},
		},
	}
}

func auditDissemination(t *testing.T, proto string) {
	t.Helper()
	rep, err := RunScenario(disseminationChurnScenario(proto))
	if err != nil {
		t.Fatal(err)
	}
	steady := rep.Phases[0]
	if steady.OpsSent == 0 || steady.OpsDelivered < steady.OpsSent*5 {
		t.Fatalf("%s steady phase broken: sent=%d delivered=%d", proto, steady.OpsSent, steady.OpsDelivered)
	}
	churn := rep.Phases[1]
	if churn.OpsDelivered == 0 {
		t.Fatalf("%s delivered nothing under member churn", proto)
	}
	if !strings.Contains(rep.TraceText(), "revive node") {
		t.Fatalf("%s: churn produced no revives", proto)
	}
	rec := rep.Phases[3]
	if rec.OpsSent == 0 {
		t.Fatalf("%s recovery phase sent nothing", proto)
	}
	// The revived source must reach most of the population again: require
	// at least half the full-dissemination volume.
	if rec.OpsDelivered < rec.OpsSent*(rep.Nodes-1)/2 {
		t.Fatalf("%s: revived source not accepted: sent=%d delivered=%d (want >= %d)",
			proto, rec.OpsSent, rec.OpsDelivered, rec.OpsSent*(rep.Nodes-1)/2)
	}
}

// TestScenarioNICEChurnAudit audits NICE under kill/revive churn plus a
// source restart, the way PR 1 audited RandTree.
func TestScenarioNICEChurnAudit(t *testing.T) { auditDissemination(t, "nice") }

// TestScenarioOvercastChurnAudit audits Overcast the same way.
func TestScenarioOvercastChurnAudit(t *testing.T) { auditDissemination(t, "overcast") }

// TestScenarioReviveKeepsRunning checks kill/revive over the same address:
// the revived node must actually rejoin and the run must stay alive (the
// endpoint detach/reattach path).
func TestScenarioReviveKeepsRunning(t *testing.T) {
	s := testScenario()
	s.Phases = s.Phases[:2] // baseline + churn only
	rep, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	text := rep.TraceText()
	if !strings.Contains(text, "kill node") {
		t.Skip("no kills under this seed")
	}
	if !strings.Contains(text, "revive node") {
		t.Error("kills never revived despite downtime")
	}
	last := rep.Phases[len(rep.Phases)-1]
	if last.LiveNodes < 10 {
		t.Errorf("population did not recover: live=%d", last.LiveNodes)
	}
}

// TestScenarioAMMOChurnAudit audits AMMO under kill/revive churn plus a
// source restart — the stale-incarnation class that bit NICE and Overcast
// (PR 2): a revived source's fresh stream restarts its sequence numbers, and
// any dedup state keyed without an incarnation stamp silently eats it.
func TestScenarioAMMOChurnAudit(t *testing.T) { auditDissemination(t, "ammo") }

// TestScenarioBulletChurnAudit runs the kill/revive audit over the
// bullet-on-randtree stack — the per-stripe state that had not had it yet.
// Bullet stripes each block down ONE tree branch and relies on the RanSub
// mesh to recover the rest, so the thresholds ask for most (not all) of
// the full-dissemination volume. The source-outage phase is the
// stale-incarnation probe that caught NICE, Overcast, and AMMO: a revived
// source restarts its block sequence at zero, and any dedup or summary
// state keyed without an incarnation stamp silently eats the fresh
// stream. The recovery phase also proves mesh slots recycle: peers that
// died during churn must be evicted, or the mesh wedges at its degree cap
// and striped blocks stop being recovered.
func TestScenarioBulletChurnAudit(t *testing.T) {
	rep, err := RunScenario(disseminationChurnScenario("bullet"))
	if err != nil {
		t.Fatal(err)
	}
	// Bullet's mesh recovery iterates incarnation sets; pin that it does so
	// deterministically (same seed ⇒ identical report), like every other
	// protocol under the engine.
	rep2, err := RunScenario(disseminationChurnScenario("bullet"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != rep2.String() {
		t.Fatalf("bullet scenario is nondeterministic:\n--- run1\n%s\n--- run2\n%s", rep, rep2)
	}
	n := rep.Nodes
	steady := rep.Phases[0]
	if steady.OpsSent == 0 || steady.OpsDelivered < steady.OpsSent*(n-1)/2 {
		t.Fatalf("bullet steady phase broken: sent=%d delivered=%d (want >= %d)",
			steady.OpsSent, steady.OpsDelivered, steady.OpsSent*(n-1)/2)
	}
	churn := rep.Phases[1]
	if churn.OpsDelivered == 0 {
		t.Fatal("bullet delivered nothing under member churn")
	}
	if !strings.Contains(rep.TraceText(), "revive node") {
		t.Fatal("bullet: churn produced no revives")
	}
	rec := rep.Phases[3]
	if rec.OpsSent == 0 {
		t.Fatal("bullet recovery phase sent nothing")
	}
	if rec.OpsDelivered < rec.OpsSent*(n-1)/3 {
		t.Fatalf("bullet: revived source not accepted: sent=%d delivered=%d (want >= %d)",
			rec.OpsSent, rec.OpsDelivered, rec.OpsSent*(n-1)/3)
	}
}
