package harness

import (
	"fmt"
	"strings"
	"time"

	"macedon/internal/scenario"
)

// Checkpoint/fork scenario execution (docs/sweeps.md). The expensive part of
// every overlay evaluation is the settled prefix — joins plus convergence —
// and a comparative sweep re-simulates it once per variant. RunSweep runs
// each group of variants that share a byte-identical prefix on one cluster:
// prefix once, checkpoint, then rewind-and-branch per variant. Every branch
// trace is byte-identical to the same variant executed cold, which the
// golden corpus gates.

// forkTime returns the fork instant of a schedule: the settle boundary, or
// the end of the fork-point phase.
func forkTime(sched *scenario.Schedule, forkPhase int) time.Duration {
	if forkPhase < 0 {
		return sched.Settle
	}
	return sched.Phases[forkPhase].End
}

// prefixEpsilon is how far before the fork instant the shared prefix stops
// executing. Ops scheduled exactly at the fork instant belong to the
// branches; running the prefix one nanosecond shy of it leaves them (and the
// settle-boundary snapshot) queued for every branch to execute identically.
const prefixEpsilon = time.Nanosecond

// forkVariant is one resolved member of a fork group.
type forkVariant struct {
	name  string
	s     *scenario.Scenario
	sched *scenario.Schedule
}

// prefixKey fingerprints everything that determines a scenario's behavior up
// to its fork instant: the cluster configuration, the protocol stack, the
// multicast group setup, the prefix phase boundaries, and the full prefix op
// list. Variants with equal keys are guaranteed byte-identical prefixes and
// may share one.
func prefixKey(s *scenario.Scenario, sched *scenario.Schedule, forkPhase, shards int) string {
	forkT := forkTime(sched, forkPhase)
	// The multicast group only exists (and only influences the prefix — every
	// member joins it during setup) when some phase runs a multicast
	// workload; otherwise GroupName's fallback to the per-variant scenario
	// name must not split the group.
	groupName := ""
	if s.NeedsGroup() {
		groupName = s.GroupName()
	}
	var key strings.Builder
	fmt.Fprintf(&key, "nodes=%d routers=%d seed=%d proto=%q shards=%d hb=%v fail=%v settle=%v fork=%d@%v group=%v/%q phases=[",
		s.Nodes, s.Routers, s.Seed, s.Protocol, shards,
		s.HeartbeatAfter.D(), s.FailAfter.D(), sched.Settle,
		forkPhase, forkT, s.NeedsGroup(), groupName)
	for pi := 0; pi <= forkPhase && pi < len(sched.Phases); pi++ {
		fmt.Fprintf(&key, "(%v,%v)", sched.Phases[pi].Start, sched.Phases[pi].End)
	}
	key.WriteString("] ops=[")
	for _, op := range sched.Ops {
		if op.Phase > forkPhase {
			continue
		}
		fmt.Fprintf(&key, "%+v;", op)
	}
	key.WriteString("]")
	return key.String()
}

// forkGroupTiming reports the wall clock a shared-prefix group consumed.
type forkGroupTiming struct {
	prefix   time.Duration
	branches []time.Duration
}

// runForkedGroup executes variants that share one prefix: run the prefix
// once on a fresh cluster, checkpoint, then branch per variant (restoring
// the checkpoint between branches). Reports come back in variant order.
func runForkedGroup(vs []forkVariant, shards, forkPhase int) ([]*scenario.Report, forkGroupTiming, error) {
	var timing forkGroupTiming
	base := vs[0]
	eng, err := newScenarioEngine(base.s, base.sched, shards)
	if err != nil {
		return nil, timing, err
	}
	defer eng.c.StopAll()

	start := time.Now()
	forkT := forkTime(base.sched, forkPhase)
	eng.scheduleSetup()
	if forkPhase >= 0 {
		eng.schedulePhases(0, forkPhase)
	}
	eng.c.RunFor(forkT - prefixEpsilon)
	cp := eng.c.Checkpoint()
	st := eng.saveState()
	timing.prefix = time.Since(start)

	var reps []*scenario.Report
	for vi, v := range vs {
		bstart := time.Now()
		if vi > 0 {
			eng.c.Restore(cp)
		}
		eng.branch(v.s, v.sched, st)
		if forkPhase+1 < len(v.sched.Phases) {
			eng.schedulePhases(forkPhase+1, len(v.sched.Phases)-1)
		}
		eng.c.RunFor(v.sched.Total - (forkT - prefixEpsilon))
		reps = append(reps, eng.report())
		timing.branches = append(timing.branches, time.Since(bstart))
	}
	return reps, timing, nil
}

// RunScenarioForked executes one scenario through the checkpoint/fork
// machinery twice: shared prefix, fork, branch, rewind, branch again. Both
// returned reports must be byte-identical to RunScenarioShards on the same
// scenario — the fork-determinism property the golden corpus gates (the
// second report additionally proves a restored world replays exactly after
// a dirty branch).
func RunScenarioForked(s *scenario.Scenario, shards int) (*scenario.Report, *scenario.Report, error) {
	sched, err := scenario.Compile(s)
	if err != nil {
		return nil, nil, err
	}
	fp := s.ForkPhase()
	vs := []forkVariant{{name: "a", s: s, sched: sched}, {name: "b", s: s, sched: sched}}
	reps, _, err := runForkedGroup(vs, shards, fp)
	if err != nil {
		return nil, nil, err
	}
	return reps[0], reps[1], nil
}

// RunSweep executes a parameter sweep: the base scenario with each variant's
// overrides applied. Variants whose settled prefix is byte-identical (same
// seed, protocol, topology, and pre-fork schedule) share one simulated
// prefix via checkpoint/fork; variants that change the prefix itself (a
// different seed or protocol) run cold. defaultShards applies to variants
// without a shards override.
func RunSweep(sw *scenario.Sweep, defaultShards int) (*scenario.SweepReport, error) {
	return RunSweepExec(sw, defaultShards, ObsOptions{})
}

// RunSweepExec is RunSweep with an observability configuration. An
// obs-enabled sweep runs every variant cold: the obs plane hooks the engine
// from time zero and is not carried across a checkpoint/fork branch, so a
// forked branch could not report its own prefix metrics. Cold execution
// keeps each variant's exposition self-contained (and still deterministic).
func RunSweepExec(sw *scenario.Sweep, defaultShards int, obsOpts ObsOptions) (*scenario.SweepReport, error) {
	if defaultShards < 1 {
		defaultShards = 1
	}
	resolved, err := sw.Resolve()
	if err != nil {
		return nil, err
	}
	forkPhase := sw.Base.ForkPhase()

	type slot struct {
		v      forkVariant
		shards int
		key    string
	}
	slots := make([]slot, len(resolved))
	for i, rv := range resolved {
		sched, err := scenario.Compile(rv.Scenario)
		if err != nil {
			return nil, fmt.Errorf("sweep variant %q: %w", rv.Name, err)
		}
		shards := rv.Shards
		if shards <= 0 {
			shards = defaultShards
		}
		slots[i] = slot{
			v:      forkVariant{name: rv.Name, s: rv.Scenario, sched: sched},
			shards: shards,
			key:    prefixKey(rv.Scenario, sched, forkPhase, shards),
		}
	}

	// Group variants by prefix fingerprint, keeping first-seen order.
	groupIdx := make(map[string][]int)
	var keys []string
	for i, sl := range slots {
		if _, ok := groupIdx[sl.key]; !ok {
			keys = append(keys, sl.key)
		}
		groupIdx[sl.key] = append(groupIdx[sl.key], i)
	}

	rep := &scenario.SweepReport{
		Name:    sw.Name,
		Groups:  len(keys),
		Results: make([]scenario.SweepVariantResult, len(slots)),
	}
	totalStart := time.Now()
	for _, key := range keys {
		idxs := groupIdx[key]
		if len(idxs) == 1 || obsOpts.Enabled {
			// A lone prefix gains nothing from forking; an obs-enabled sweep
			// runs every variant cold (see RunSweepExec).
			for _, i := range idxs {
				start := time.Now()
				r, err := RunScenarioExec(slots[i].v.s, ExecOptions{Shards: slots[i].shards, Obs: obsOpts})
				if err != nil {
					return nil, fmt.Errorf("sweep variant %q: %w", slots[i].v.name, err)
				}
				rep.Results[i] = scenario.SweepVariantResult{
					Name:       slots[i].v.name,
					Protocol:   r.Protocol,
					Shards:     slots[i].shards,
					BranchWall: time.Since(start),
					Report:     r,
				}
			}
			continue
		}
		group := make([]forkVariant, len(idxs))
		for gi, i := range idxs {
			group[gi] = slots[i].v
		}
		reps, timing, err := runForkedGroup(group, slots[idxs[0]].shards, forkPhase)
		if err != nil {
			return nil, fmt.Errorf("sweep group %q: %w", group[0].name, err)
		}
		rep.ForkAt = forkTime(slots[idxs[0]].v.sched, forkPhase)
		rep.PrefixWall += timing.prefix
		rep.ColdPrefixWall += time.Duration(len(idxs)) * timing.prefix
		for gi, i := range idxs {
			rep.Results[i] = scenario.SweepVariantResult{
				Name:         group[gi].name,
				Protocol:     reps[gi].Protocol,
				Shards:       slots[i].shards,
				SharedPrefix: true,
				BranchWall:   timing.branches[gi],
				Report:       reps[gi],
			}
		}
	}
	rep.TotalWall = time.Since(totalStart)
	return rep, nil
}
