package harness

import (
	"strings"
	"testing"
	"time"

	"macedon/internal/scenario"
)

// sweepBase is a small settle-heavy scenario for sweep tests.
func sweepBase() scenario.Scenario {
	return scenario.Scenario{
		Name:     "sweep-test",
		Seed:     2004,
		Nodes:    10,
		Routers:  60,
		Protocol: "chord",
		Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(8 * time.Second)},
		Settle:   scenario.Duration(30 * time.Second),
		Drain:    scenario.Duration(5 * time.Second),
		Phases: []scenario.Phase{
			{
				Name:     "churn",
				Duration: scenario.Duration(20 * time.Second),
				Churn:    &scenario.Churn{Model: "poisson", Rate: 0.05, Downtime: scenario.Duration(8 * time.Second)},
				Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 2},
			},
		},
	}
}

// TestSweepMatchesColdRuns is the core sweep correctness gate: every variant
// branch of a shared-prefix sweep must be byte-identical (trace and report)
// to the same resolved scenario executed cold.
func TestSweepMatchesColdRuns(t *testing.T) {
	sw := &scenario.Sweep{
		Name: "cold-equivalence",
		Base: sweepBase(),
		Variants: []scenario.SweepVariant{
			{Name: "calm", ChurnRate: 0.02},
			{Name: "storm", ChurnRate: 0.2},
			{Name: "busy", WorkloadRate: 6},
		},
	}
	rep, err := RunSweep(sw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != 1 {
		t.Fatalf("variants should share one prefix group, got %d", rep.Groups)
	}
	resolved, err := sw.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for i, rv := range resolved {
		vr := rep.Results[i]
		if !vr.SharedPrefix {
			t.Fatalf("variant %q did not share the prefix", vr.Name)
		}
		cold, err := RunScenarioShards(rv.Scenario, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := vr.Report.TraceText()+vr.Report.String(), cold.TraceText()+cold.String(); got != want {
			t.Fatalf("variant %q: forked branch diverges from cold run:\nforked:\n%s\ncold:\n%s", vr.Name, got, want)
		}
	}
}

// TestSweepColdFallback checks variants that change the prefix itself (seed,
// protocol) drop out of prefix sharing but still run.
func TestSweepColdFallback(t *testing.T) {
	sw := &scenario.Sweep{
		Name: "fallback",
		Base: sweepBase(),
		Variants: []scenario.SweepVariant{
			{Name: "base-a", ChurnRate: 0.02},
			{Name: "base-b", ChurnRate: 0.1},
			{Name: "other-seed", Seed: 99},
			{Name: "other-proto", Protocol: "randtree"},
		},
	}
	rep, err := RunSweep(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != 3 {
		t.Fatalf("want 3 prefix groups (shared pair + 2 cold), got %d", rep.Groups)
	}
	if !rep.Results[0].SharedPrefix || !rep.Results[1].SharedPrefix {
		t.Fatal("same-prefix variants should fork")
	}
	if rep.Results[2].SharedPrefix || rep.Results[3].SharedPrefix {
		t.Fatal("prefix-changing variants must run cold")
	}
	if rep.Results[3].Protocol != "randtree" {
		t.Fatalf("protocol override lost: %q", rep.Results[3].Protocol)
	}
	if !strings.Contains(rep.TimingSummary(), "forked") {
		t.Fatal("timing summary missing fork accounting")
	}
}

// TestSweepForkPointPhase checks forking at a marked phase boundary: the
// phases up to the marker are shared, and variant phase replacements attach
// after it.
func TestSweepForkPointPhase(t *testing.T) {
	base := sweepBase()
	base.Phases = []scenario.Phase{
		{
			Name:      "warm",
			Duration:  scenario.Duration(10 * time.Second),
			Workload:  &scenario.Workload{Kind: scenario.WlLookups, Rate: 1},
			ForkPoint: true,
		},
		{
			Name:     "measure",
			Duration: scenario.Duration(15 * time.Second),
			Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 2},
		},
	}
	sw := &scenario.Sweep{
		Name: "fork-phase",
		Base: base,
		Variants: []scenario.SweepVariant{
			{Name: "keep"},
			{Name: "replaced", Phases: []scenario.Phase{
				{
					Name:     "blast",
					Duration: scenario.Duration(10 * time.Second),
					Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 8},
				},
			}},
		},
	}
	rep, err := RunSweep(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != 1 {
		t.Fatalf("fork-point variants should share a group, got %d", rep.Groups)
	}
	if got := rep.Results[1].Report.Phases; len(got) != 2 || got[1].Name != "blast" {
		t.Fatalf("phase replacement after fork point failed: %+v", got)
	}
	// The shared warm phase must be identical across variants.
	a, b := rep.Results[0].Report.Phases[0], rep.Results[1].Report.Phases[0]
	if a.OpsSent != b.OpsSent || a.Net != b.Net {
		t.Fatalf("shared warm phase diverges: %+v vs %+v", a, b)
	}
	// And each variant must equal its cold run.
	resolved, _ := sw.Resolve()
	for i, rv := range resolved {
		cold, err := RunScenarioShards(rv.Scenario, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[i].Report.TraceText() != cold.TraceText() {
			t.Fatalf("variant %q trace diverges from cold run", rv.Name)
		}
	}
}
