package harness

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Timestamped payloads: the measurement applications of §4.2 stream packets
// whose delivery latency the evaluation records. The first eight bytes carry
// the (virtual) send time.

// TimestampPayload builds a payload of the given size carrying the send time.
func TimestampPayload(now time.Time, size int) []byte {
	if size < 8 {
		size = 8
	}
	p := make([]byte, size)
	binary.BigEndian.PutUint64(p, uint64(now.UnixNano()))
	return p
}

// DecodeTimestamp extracts the send time from a timestamped payload.
func DecodeTimestamp(p []byte) (time.Time, bool) {
	if len(p) < 8 {
		return time.Time{}, false
	}
	ns := int64(binary.BigEndian.Uint64(p))
	return time.Unix(0, ns), true
}

// Point is one (x, y) sample of a reported series.
type Point struct {
	X float64
	Y float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// sprintf is a tiny alias so figure printers can be driven by
// strings.Builder-backed writers in tests.
func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }
