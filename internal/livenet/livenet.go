// Package livenet is the live-deployment substrate: the same Endpoint and
// Clock interfaces the simnet emulator provides, implemented over real UDP
// sockets and the wall clock. Running a node over livenet instead of simnet
// changes nothing in any protocol — the paper's claim that MACEDON code
// "runs unmodified in live Internet settings" (§1) holds by construction,
// because the engine only sees the substrate interfaces.
package livenet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/substrate"
)

// MTU is the largest datagram payload livenet transmits.
const MTU = 1400

// Network maps overlay addresses onto UDP ports of one host (or, with a
// custom Resolver, onto arbitrary UDP endpoints).
type Network struct {
	mu       sync.Mutex
	basePort int
	host     string
	eps      map[overlay.Address]*endpoint
	resolver func(a overlay.Address) string
}

// Option configures the network.
type Option func(*Network)

// WithResolver overrides address resolution (default: host:basePort+addr).
func WithResolver(r func(a overlay.Address) string) Option {
	return func(n *Network) { n.resolver = r }
}

// New creates a live network mapping address a to host:basePort+a.
func New(host string, basePort int, opts ...Option) *Network {
	n := &Network{
		basePort: basePort,
		host:     host,
		eps:      make(map[overlay.Address]*endpoint),
	}
	n.resolver = func(a overlay.Address) string {
		return fmt.Sprintf("%s:%d", n.host, n.basePort+int(a))
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Now implements substrate.Clock with the wall clock.
func (n *Network) Now() time.Time { return time.Now() }

// liveTimer wraps time.Timer as a substrate.Timer.
type liveTimer struct{ t *time.Timer }

func (lt liveTimer) Stop() bool { return lt.t.Stop() }

// After implements substrate.Clock with real timers.
func (n *Network) After(d time.Duration, fn func()) substrate.Timer {
	return liveTimer{t: time.AfterFunc(d, fn)}
}

// Endpoint binds (or returns) the UDP socket for an address.
func (n *Network) Endpoint(addr overlay.Address) (substrate.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[addr]; ok {
		return ep, nil
	}
	laddr, err := net.ResolveUDPAddr("udp", n.resolver(addr))
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("livenet: bind %v: %w", addr, err)
	}
	ep := &endpoint{net: n, addr: addr, conn: conn}
	n.eps[addr] = ep
	go ep.readLoop()
	return ep, nil
}

// Close shuts every socket down.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ep := range n.eps {
		_ = ep.conn.Close()
	}
}

type endpoint struct {
	net  *Network
	addr overlay.Address
	conn *net.UDPConn

	mu   sync.Mutex
	recv func(src overlay.Address, payload []byte)
}

func (e *endpoint) Addr() overlay.Address { return e.addr }
func (e *endpoint) MTU() int              { return MTU }

// wire format: [src addr u32][payload...]
func (e *endpoint) Send(dst overlay.Address, payload []byte) error {
	if len(payload) > MTU {
		return fmt.Errorf("livenet: datagram of %d bytes exceeds MTU %d", len(payload), MTU)
	}
	raddr, err := net.ResolveUDPAddr("udp", e.net.resolver(dst))
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(payload))
	u := uint32(e.addr)
	buf[0], buf[1], buf[2], buf[3] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
	copy(buf[4:], payload)
	_, err = e.conn.WriteToUDP(buf, raddr)
	return err
}

func (e *endpoint) SetRecv(fn func(src overlay.Address, payload []byte)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.recv != nil {
		panic(fmt.Sprintf("livenet: receive handler for %v set twice", e.addr))
	}
	e.recv = fn
}

func (e *endpoint) readLoop() {
	buf := make([]byte, MTU+4)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < 4 {
			continue
		}
		src := overlay.Address(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]))
		payload := append([]byte(nil), buf[4:n]...)
		e.mu.Lock()
		fn := e.recv
		e.mu.Unlock()
		if fn != nil {
			fn(src, payload)
		}
	}
}
