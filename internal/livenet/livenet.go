// Package livenet is the live-deployment substrate: the same Endpoint and
// Clock interfaces the simnet emulator provides, implemented over real UDP
// sockets and the wall clock. Running a node over livenet instead of simnet
// changes nothing in any protocol — the paper's claim that MACEDON code
// "runs unmodified in live Internet settings" (§1) holds by construction,
// because the engine only sees the substrate interfaces.
//
// Beyond bare sockets, livenet carries the deployment subsystem's network
// dynamics: per-peer shaping filters (blackhole, random loss, added latency)
// that `macedon deploy` drives to realize partitions, link failures, and
// degradations from the same scenario files the emulator runs
// (docs/deploy.md). Shaping is applied on the outbound path; a partition is
// realized by installing symmetric drop rules on both sides.
package livenet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/substrate"
)

// MTU is the largest datagram payload livenet transmits.
const MTU = 1400

// Shaping is one per-peer traffic rule, applied to datagrams leaving this
// process toward the peer. The zero value passes traffic through untouched.
type Shaping struct {
	// Drop blackholes every datagram (partitions, link_down, node_down).
	Drop bool
	// Loss drops each datagram independently with this probability.
	Loss float64
	// Delay adds one-way latency before the datagram is written. Delayed
	// datagrams may reorder, exactly as UDP permits.
	Delay time.Duration
}

// pass reports whether the rule is a no-op.
func (s Shaping) pass() bool { return !s.Drop && s.Loss == 0 && s.Delay == 0 }

// Stats counts the network's traffic since creation. Loads are atomic;
// the counters are monotone.
type Stats struct {
	// Sent counts datagrams accepted for transmission (after shaping).
	Sent uint64
	// Recv counts datagrams delivered to receive callbacks.
	Recv uint64
	// BytesSent and BytesRecv count payload bytes the same way.
	BytesSent, BytesRecv uint64
	// ShapeDrops counts datagrams blackholed by a Drop rule; LossDrops
	// counts datagrams lost to a Loss rule.
	ShapeDrops, LossDrops uint64
}

// Network maps overlay addresses onto UDP ports of one host (or, with a
// custom Resolver or address table, onto arbitrary UDP endpoints).
type Network struct {
	mu       sync.Mutex
	basePort int
	host     string
	eps      map[overlay.Address]*endpoint
	resolver func(a overlay.Address) string
	deadline time.Duration
	closed   bool

	// Shaping state: per-peer rules plus an optional default applied to
	// peers without an explicit rule. Consulted on every outbound datagram.
	rules    map[overlay.Address]Shaping
	defRule  *Shaping
	shapeRng *rand.Rand

	sent, recv, bytesSent, bytesRecv, shapeDrops, lossDrops atomic.Uint64
}

// Option configures the network.
type Option func(*Network)

// WithResolver overrides address resolution (default: host:basePort+addr).
func WithResolver(r func(a overlay.Address) string) Option {
	return func(n *Network) { n.resolver = r }
}

// WithTable resolves addresses through an explicit addr→"host:port" table:
// how `macedon deploy` agents reach a fleet whose overlay addresses come
// from the emulated topology rather than a dense port range. Addresses
// absent from the table fall back to host:basePort+addr.
func WithTable(table map[overlay.Address]string) Option {
	return func(n *Network) {
		cp := make(map[overlay.Address]string, len(table))
		for a, hp := range table {
			cp[a] = hp
		}
		base := n.resolver
		n.resolver = func(a overlay.Address) string {
			if hp, ok := cp[a]; ok {
				return hp
			}
			return base(a)
		}
	}
}

// WithSendDeadline bounds each socket write: a send that cannot complete
// within d fails instead of blocking the caller (0 = no deadline).
func WithSendDeadline(d time.Duration) Option {
	return func(n *Network) { n.deadline = d }
}

// New creates a live network mapping address a to host:basePort+a.
func New(host string, basePort int, opts ...Option) *Network {
	n := &Network{
		basePort: basePort,
		host:     host,
		eps:      make(map[overlay.Address]*endpoint),
		rules:    make(map[overlay.Address]Shaping),
		shapeRng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	n.resolver = func(a overlay.Address) string {
		return fmt.Sprintf("%s:%d", n.host, n.basePort+int(a))
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Now implements substrate.Clock with the wall clock.
func (n *Network) Now() time.Time { return time.Now() }

// liveTimer wraps time.Timer as a substrate.Timer.
type liveTimer struct{ t *time.Timer }

func (lt liveTimer) Stop() bool { return lt.t.Stop() }

// After implements substrate.Clock with real timers.
func (n *Network) After(d time.Duration, fn func()) substrate.Timer {
	return liveTimer{t: time.AfterFunc(d, fn)}
}

// Endpoint binds (or returns) the UDP socket for an address. An address
// whose previous endpoint was closed re-binds a fresh socket — the
// rebind path an agent restart takes after a crash.
func (n *Network) Endpoint(addr overlay.Address) (substrate.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("livenet: network is closed")
	}
	if ep, ok := n.eps[addr]; ok {
		return ep, nil
	}
	laddr, err := net.ResolveUDPAddr("udp", n.resolver(addr))
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("livenet: bind %v: %w", addr, err)
	}
	ep := &endpoint{net: n, addr: addr, conn: conn}
	n.eps[addr] = ep
	go ep.readLoop()
	return ep, nil
}

// CloseEndpoint shuts one address's socket down and forgets it, so a later
// Endpoint call re-binds. Unknown addresses are a no-op.
func (n *Network) CloseEndpoint(addr overlay.Address) {
	n.mu.Lock()
	ep := n.eps[addr]
	delete(n.eps, addr)
	n.mu.Unlock()
	if ep != nil {
		ep.close()
	}
}

// Close shuts every socket down. Idempotent; the network is unusable
// afterwards.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[overlay.Address]*endpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
}

// SetPeerShaping installs (or, for a zero rule, removes) the outbound
// shaping rule toward one peer.
func (n *Network) SetPeerShaping(peer overlay.Address, s Shaping) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s.pass() {
		delete(n.rules, peer)
		return
	}
	n.rules[peer] = s
}

// SetDefaultShaping installs the rule applied to peers without an explicit
// rule; nil removes it. A default Drop rule makes the node's host
// unreachable (the scenario engine's node_down).
func (n *Network) SetDefaultShaping(s *Shaping) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s == nil || s.pass() {
		n.defRule = nil
		return
	}
	cp := *s
	n.defRule = &cp
}

// ClearShaping removes every rule.
func (n *Network) ClearShaping() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules = make(map[overlay.Address]Shaping)
	n.defRule = nil
}

// shapeFor resolves the effective rule toward dst and rolls the loss dice
// under the lock (the PRNG is shared).
func (n *Network) shapeFor(dst overlay.Address) (drop bool, loss bool, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rule, ok := n.rules[dst]
	if !ok {
		if n.defRule == nil {
			return false, false, 0
		}
		rule = *n.defRule
	}
	if rule.Drop {
		return true, false, 0
	}
	if rule.Loss > 0 && n.shapeRng.Float64() < rule.Loss {
		return false, true, 0
	}
	return false, false, rule.Delay
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Recv:       n.recv.Load(),
		BytesSent:  n.bytesSent.Load(),
		BytesRecv:  n.bytesRecv.Load(),
		ShapeDrops: n.shapeDrops.Load(),
		LossDrops:  n.lossDrops.Load(),
	}
}

type endpoint struct {
	net  *Network
	addr overlay.Address
	conn *net.UDPConn

	mu     sync.Mutex
	recv   func(src overlay.Address, payload []byte)
	closed bool
}

func (e *endpoint) Addr() overlay.Address { return e.addr }
func (e *endpoint) MTU() int              { return MTU }

// close is idempotent: the socket closes once, later calls are no-ops.
func (e *endpoint) close() {
	e.mu.Lock()
	was := e.closed
	e.closed = true
	e.mu.Unlock()
	if !was {
		_ = e.conn.Close()
	}
}

// wire format: [src addr u32][payload...]
func (e *endpoint) Send(dst overlay.Address, payload []byte) error {
	if len(payload) > MTU {
		return fmt.Errorf("livenet: datagram of %d bytes exceeds MTU %d", len(payload), MTU)
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("livenet: endpoint %v is closed", e.addr)
	}
	drop, loss, delay := e.net.shapeFor(dst)
	if drop {
		e.net.shapeDrops.Add(1)
		return nil // shaped away, like any other network loss: not an error
	}
	if loss {
		e.net.lossDrops.Add(1)
		return nil
	}
	raddr, err := net.ResolveUDPAddr("udp", e.net.resolver(dst))
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(payload))
	u := uint32(e.addr)
	buf[0], buf[1], buf[2], buf[3] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
	copy(buf[4:], payload)
	if delay > 0 {
		// Shaped latency: the copy above means the caller may reuse payload.
		time.AfterFunc(delay, func() { e.write(buf, raddr) })
		return nil
	}
	return e.write(buf, raddr)
}

func (e *endpoint) write(buf []byte, raddr *net.UDPAddr) error {
	if d := e.net.deadline; d > 0 {
		_ = e.conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := e.conn.WriteToUDP(buf, raddr)
	if err == nil {
		e.net.sent.Add(1)
		e.net.bytesSent.Add(uint64(len(buf) - 4))
	}
	return err
}

func (e *endpoint) SetRecv(fn func(src overlay.Address, payload []byte)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.recv != nil {
		panic(fmt.Sprintf("livenet: receive handler for %v set twice", e.addr))
	}
	e.recv = fn
}

func (e *endpoint) readLoop() {
	buf := make([]byte, MTU+4)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < 4 {
			continue
		}
		src := overlay.Address(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]))
		payload := append([]byte(nil), buf[4:n]...)
		e.mu.Lock()
		fn := e.recv
		e.mu.Unlock()
		if fn != nil {
			e.net.recv.Add(1)
			e.net.bytesRecv.Add(uint64(len(payload)))
			fn(src, payload)
		}
	}
}
