package livenet_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/livenet"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
)

// TestLiveChordRing runs real Chord nodes over real UDP sockets on
// localhost: the "same generated code runs live" claim, in miniature.
func TestLiveChordRing(t *testing.T) {
	net := livenet.New("127.0.0.1", 38850)
	defer net.Close()
	stack := []core.Factory{chord.New(chord.Params{
		StabilizePeriod:  200 * time.Millisecond,
		FixFingersPeriod: 200 * time.Millisecond,
	})}
	const n = 5
	var nodes []*core.Node
	for i := 1; i <= n; i++ {
		node, err := core.NewNode(core.Config{
			Addr:      overlay.Address(i),
			Net:       net,
			Stack:     stack,
			Bootstrap: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		defer node.Stop()
	}

	deadline := time.After(20 * time.Second)
	for {
		joined := 0
		for _, nd := range nodes {
			// Protocol state is owned by the node's event queue; sample it
			// through Exec so the poll is serialized with live dispatch.
			nd.Exec(func() {
				if nd.Instance("chord").Agent().(*chord.Protocol).Joined() {
					joined++
				}
			})
		}
		if joined == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d joined over live UDP", joined, n)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Route a payload over real sockets and watch it arrive somewhere.
	done := make(chan overlay.Address, n)
	for _, nd := range nodes {
		nd := nd
		addr := nd.Addr()
		nd.Exec(func() {
			nd.RegisterHandlers(core.Handlers{
				Deliver: func(p []byte, typ int32, src overlay.Address) {
					select {
					case done <- addr:
					default:
					}
				},
			})
		})
	}
	time.Sleep(2 * time.Second) // let stabilization settle
	if err := nodes[2].Route(overlay.Key(0x42424242), []byte("live"), 1, overlay.PriorityDefault); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("routed payload never delivered over live UDP")
	}
}
