package livenet_test

import (
	"strings"
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/livenet"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
	"macedon/internal/substrate"
)

// TestLiveChordRing runs real Chord nodes over real UDP sockets on
// localhost: the "same generated code runs live" claim, in miniature.
func TestLiveChordRing(t *testing.T) {
	net := livenet.New("127.0.0.1", 38850)
	defer net.Close()
	stack := []core.Factory{chord.New(chord.Params{
		StabilizePeriod:  200 * time.Millisecond,
		FixFingersPeriod: 200 * time.Millisecond,
	})}
	const n = 5
	var nodes []*core.Node
	for i := 1; i <= n; i++ {
		node, err := core.NewNode(core.Config{
			Addr:      overlay.Address(i),
			Net:       net,
			Stack:     stack,
			Bootstrap: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		defer node.Stop()
	}

	deadline := time.After(20 * time.Second)
	for {
		joined := 0
		for _, nd := range nodes {
			// Protocol state is owned by the node's event queue; sample it
			// through Exec so the poll is serialized with live dispatch.
			nd.Exec(func() {
				if nd.Instance("chord").Agent().(*chord.Protocol).Joined() {
					joined++
				}
			})
		}
		if joined == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d joined over live UDP", joined, n)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Route a payload over real sockets and watch it arrive somewhere.
	done := make(chan overlay.Address, n)
	for _, nd := range nodes {
		nd := nd
		addr := nd.Addr()
		nd.Exec(func() {
			nd.RegisterHandlers(core.Handlers{
				Deliver: func(p []byte, typ int32, src overlay.Address) {
					select {
					case done <- addr:
					default:
					}
				},
			})
		})
	}
	time.Sleep(2 * time.Second) // let stabilization settle
	if err := nodes[2].Route(overlay.Key(0x42424242), []byte("live"), 1, overlay.PriorityDefault); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("routed payload never delivered over live UDP")
	}
}

// pair binds two endpoints on the given network and wires b's receive
// callback into a channel.
func pair(t *testing.T, net *livenet.Network, a, b overlay.Address) (substrate.Endpoint, substrate.Endpoint, chan []byte) {
	t.Helper()
	epA, err := net.Endpoint(a)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Endpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 256)
	epB.SetRecv(func(src overlay.Address, payload []byte) {
		if src != a {
			t.Errorf("src = %v, want %v", src, a)
		}
		got <- payload
	})
	return epA, epB, got
}

func recvCount(got chan []byte, wait time.Duration) int {
	deadline := time.After(wait)
	n := 0
	for {
		select {
		case <-got:
			n++
		case <-deadline:
			return n
		}
	}
}

// TestShapingDrop: a Drop rule blackholes traffic toward the peer; clearing
// it restores delivery.
func TestShapingDrop(t *testing.T) {
	net := livenet.New("127.0.0.1", 39100)
	defer net.Close()
	epA, _, got := pair(t, net, 1, 2)

	net.SetPeerShaping(2, livenet.Shaping{Drop: true})
	for i := 0; i < 5; i++ {
		if err := epA.Send(2, []byte("dropped")); err != nil {
			t.Fatalf("shaped send must not error: %v", err)
		}
	}
	if n := recvCount(got, 300*time.Millisecond); n != 0 {
		t.Fatalf("partitioned peer received %d datagrams", n)
	}
	if s := net.Stats(); s.ShapeDrops != 5 {
		t.Fatalf("ShapeDrops = %d, want 5", s.ShapeDrops)
	}

	net.SetPeerShaping(2, livenet.Shaping{}) // zero rule removes
	if err := epA.Send(2, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if n := recvCount(got, 2*time.Second); n != 1 {
		t.Fatalf("after heal received %d datagrams, want 1", n)
	}
}

// TestShapingLoss: a 100% loss rule behaves like drop but counts separately;
// a 0-loss rule passes everything.
func TestShapingLoss(t *testing.T) {
	net := livenet.New("127.0.0.1", 39110)
	defer net.Close()
	epA, _, got := pair(t, net, 1, 2)

	net.SetPeerShaping(2, livenet.Shaping{Loss: 1.0})
	for i := 0; i < 10; i++ {
		if err := epA.Send(2, []byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	if n := recvCount(got, 300*time.Millisecond); n != 0 {
		t.Fatalf("full loss delivered %d datagrams", n)
	}
	if s := net.Stats(); s.LossDrops != 10 {
		t.Fatalf("LossDrops = %d, want 10", s.LossDrops)
	}
}

// TestShapingDelay: added latency arrives, later than the rule's delay.
func TestShapingDelay(t *testing.T) {
	net := livenet.New("127.0.0.1", 39120)
	defer net.Close()
	epA, _, got := pair(t, net, 1, 2)

	const delay = 300 * time.Millisecond
	net.SetPeerShaping(2, livenet.Shaping{Delay: delay})
	start := time.Now()
	if err := epA.Send(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		if el := time.Since(start); el < delay {
			t.Fatalf("delayed datagram arrived after %v, want >= %v", el, delay)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed datagram never arrived")
	}
}

// TestDefaultShaping: a default Drop rule silences every peer without an
// explicit rule — the live node_down.
func TestDefaultShaping(t *testing.T) {
	net := livenet.New("127.0.0.1", 39130)
	defer net.Close()
	epA, _, got2 := pair(t, net, 1, 2)
	ep3, err := net.Endpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	got3 := make(chan []byte, 16)
	ep3.SetRecv(func(src overlay.Address, payload []byte) { got3 <- payload })

	net.SetDefaultShaping(&livenet.Shaping{Drop: true})
	net.SetPeerShaping(3, livenet.Shaping{Delay: time.Millisecond}) // explicit rule wins over default
	_ = epA.Send(2, []byte("x"))
	_ = epA.Send(3, []byte("y"))
	if n := recvCount(got2, 300*time.Millisecond); n != 0 {
		t.Fatalf("default drop delivered %d", n)
	}
	if n := recvCount(got3, 2*time.Second); n != 1 {
		t.Fatalf("explicit rule peer received %d, want 1", n)
	}
	net.SetDefaultShaping(nil)
	_ = epA.Send(2, []byte("x"))
	if n := recvCount(got2, 2*time.Second); n != 1 {
		t.Fatalf("after clearing default received %d, want 1", n)
	}
}

// TestMTUEnforcement: oversize datagrams are rejected before hitting the
// socket; MTU-sized ones pass.
func TestMTUEnforcement(t *testing.T) {
	net := livenet.New("127.0.0.1", 39140)
	defer net.Close()
	epA, _, got := pair(t, net, 1, 2)

	if err := epA.Send(2, make([]byte, livenet.MTU+1)); err == nil {
		t.Fatal("oversize datagram accepted")
	} else if !strings.Contains(err.Error(), "MTU") {
		t.Fatalf("oversize error %q does not mention MTU", err)
	}
	if err := epA.Send(2, make([]byte, livenet.MTU)); err != nil {
		t.Fatalf("MTU-sized datagram rejected: %v", err)
	}
	select {
	case p := <-got:
		if len(p) != livenet.MTU {
			t.Fatalf("received %d bytes, want %d", len(p), livenet.MTU)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MTU-sized datagram never arrived")
	}
}

// TestDoubleCloseIdempotent: closing the network (or an endpoint) twice is
// safe, and sends on closed endpoints fail instead of panicking.
func TestDoubleCloseIdempotent(t *testing.T) {
	net := livenet.New("127.0.0.1", 39150)
	ep, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	net.CloseEndpoint(1)
	net.CloseEndpoint(1) // second close: no-op
	if err := ep.Send(2, []byte("x")); err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
	net.Close()
	net.Close() // idempotent
	if _, err := net.Endpoint(3); err == nil {
		t.Fatal("endpoint on closed network succeeded")
	}
}

// TestRebindAfterClose: an address whose endpoint was closed re-binds a
// fresh socket — the crash/restart path a deploy agent takes.
func TestRebindAfterClose(t *testing.T) {
	net := livenet.New("127.0.0.1", 39160)
	defer net.Close()
	ep1, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	ep1.SetRecv(func(overlay.Address, []byte) {})
	net.CloseEndpoint(1)

	// Same address, same port: must bind again cleanly.
	ep1b, err := net.Endpoint(1)
	if err != nil {
		t.Fatalf("rebind failed: %v", err)
	}
	got := make(chan []byte, 1)
	ep1b.SetRecv(func(src overlay.Address, payload []byte) { got <- payload }) // fresh endpoint: recv settable again
	ep2, err := net.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep2.Send(1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("rebound endpoint never received")
	}

	// A second network on the same port range also binds once this one
	// releases the address — the cross-process restart.
	net.CloseEndpoint(1)
	net2 := livenet.New("127.0.0.1", 39160)
	defer net2.Close()
	if _, err := net2.Endpoint(1); err != nil {
		t.Fatalf("cross-network rebind failed: %v", err)
	}
}

// TestAddressTable: WithTable routes listed addresses and falls back to the
// port arithmetic for the rest.
func TestAddressTable(t *testing.T) {
	// Address 7001 lives at a port unrelated to basePort+7001; address 1
	// falls back to basePort+1.
	table := map[overlay.Address]string{7001: "127.0.0.1:39179"}
	net := livenet.New("127.0.0.1", 39170, livenet.WithTable(table))
	defer net.Close()
	epA, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Endpoint(7001)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	epB.SetRecv(func(src overlay.Address, payload []byte) { got <- payload })
	if err := epA.Send(7001, []byte("via table")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("table-resolved datagram never arrived")
	}
}

// TestSendDeadline: a bounded write deadline still delivers on a healthy
// socket (the deadline path arms before every write).
func TestSendDeadline(t *testing.T) {
	net := livenet.New("127.0.0.1", 39180, livenet.WithSendDeadline(2*time.Second))
	defer net.Close()
	epA, _, got := pair(t, net, 1, 2)
	if err := epA.Send(2, []byte("bounded")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("datagram with send deadline never arrived")
	}
}
