package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"

	"macedon/internal/scenario"
)

// Gen-vs-hand differential conformance: `macedon diff` runs a generated
// protocol (genchord, genpastry, genrandtree) and its hand-written port on
// the same compiled schedule and grades the disagreement. The generated
// agent is translated mechanically from the .mac specification while the
// hand port is an independent implementation of the same algorithm, so the
// two runs double-check each other: a drift outside tolerance means one of
// them diverged from the algorithm. The grading mirrors the live-vs-sim
// conformance verdict (deploy.Compare) — delivery in absolute points for
// once-per-op workloads, relative percent for fan-out workloads, hops and
// control overhead as relative fractions — and the rendered table is
// deterministic, so it can be pinned as a golden like a sweep table.

// DiffTolerances bound how far the generated protocol's run may drift from
// the hand-written port's before the verdict fails. Zero fields select the
// defaults.
type DiffTolerances struct {
	// DeliveryPoints is the allowed delivery-rate gap in percentage points
	// (relative percent for fan-out workloads, see deploy.Compare).
	DeliveryPoints float64
	// HopsFrac is the allowed |gen − hand| / hand mean-hop gap.
	HopsFrac float64
	// MsgsFrac and BytesFrac bound the relative control-overhead gap
	// (cumulative protocol messages and bytes over the phased window). The
	// two implementations share timer constants but not message encodings,
	// so these bounds are looser than the routing-behavior ones.
	MsgsFrac  float64
	BytesFrac float64
}

// DefaultDiffTolerances are the conformance-gate acceptance bounds.
var DefaultDiffTolerances = DiffTolerances{
	DeliveryPoints: 2,
	HopsFrac:       0.25,
	MsgsFrac:       0.35,
	BytesFrac:      0.50,
}

// ProtocolDiff is the gen-vs-hand verdict for one scenario.
type ProtocolDiff struct {
	Scenario string
	// Gen and Hand name the two protocol implementations.
	Gen  string
	Hand string

	GenSent, HandSent           int
	GenDelivered, HandDelivered int
	// Delivery rates in percent, aggregated over every workload phase;
	// DeliveryUnit is "points" or "% relative" (fan-out workloads).
	GenDelivery, HandDelivery float64
	DeliveryDelta             float64
	DeliveryUnit              string

	// Mean hops per delivered operation ((forwards+deliveries)/deliveries).
	GenHops, HandHops float64
	HopsDelta         float64

	// Control overhead at the end of the phased window.
	GenCtlMsgs, HandCtlMsgs   uint64
	MsgsDelta                 float64
	GenCtlBytes, HandCtlBytes uint64
	BytesDelta                float64

	// Violations totals invariant-checker breaches on either run (the diff
	// gate fails on any, independent of the tolerance bounds).
	GenViolations, HandViolations int

	Tol      DiffTolerances
	Pass     bool
	Failures []string

	genPhases, handPhases []scenario.PhaseReport
}

// lastCtlOf returns the final phase's cumulative control counters.
func lastCtlOf(r *scenario.Report) (msgs, bytes uint64) {
	if len(r.Phases) == 0 {
		return 0, 0
	}
	last := r.Phases[len(r.Phases)-1]
	return last.CtlMsgs, last.CtlBytes
}

// relDelta is |a − b| / b, or 0 when either side is unmeasured.
func relDelta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Abs(a-b) / b
}

// DiffConformance grades a generated protocol's report against its
// hand-written port's. Zero tolerance fields select the defaults.
func DiffConformance(gen, hand *scenario.Report, tol DiffTolerances) *ProtocolDiff {
	if tol.DeliveryPoints == 0 {
		tol.DeliveryPoints = DefaultDiffTolerances.DeliveryPoints
	}
	if tol.HopsFrac == 0 {
		tol.HopsFrac = DefaultDiffTolerances.HopsFrac
	}
	if tol.MsgsFrac == 0 {
		tol.MsgsFrac = DefaultDiffTolerances.MsgsFrac
	}
	if tol.BytesFrac == 0 {
		tol.BytesFrac = DefaultDiffTolerances.BytesFrac
	}
	d := &ProtocolDiff{
		Scenario: gen.Scenario, Gen: gen.Protocol, Hand: hand.Protocol,
		Tol: tol, Pass: true,
		genPhases: gen.Phases, handPhases: hand.Phases,
	}
	var genFwd, handFwd int
	for _, p := range gen.Phases {
		d.GenSent += p.OpsSent
		d.GenDelivered += p.OpsDelivered
		genFwd += p.OpsForwarded
	}
	for _, p := range hand.Phases {
		d.HandSent += p.OpsSent
		d.HandDelivered += p.OpsDelivered
		handFwd += p.OpsForwarded
	}
	d.GenCtlMsgs, d.GenCtlBytes = lastCtlOf(gen)
	d.HandCtlMsgs, d.HandCtlBytes = lastCtlOf(hand)
	d.GenViolations, d.HandViolations = gen.CheckViolations(), hand.CheckViolations()

	if d.GenSent > 0 {
		d.GenDelivery = 100 * float64(d.GenDelivered) / float64(d.GenSent)
	}
	if d.HandSent > 0 {
		d.HandDelivery = 100 * float64(d.HandDelivered) / float64(d.HandSent)
	}
	d.DeliveryDelta = math.Abs(d.GenDelivery - d.HandDelivery)
	d.DeliveryUnit = "points"
	if math.Max(d.GenDelivery, d.HandDelivery) > 100 && d.HandDelivery > 0 {
		d.DeliveryDelta = 100 * d.DeliveryDelta / d.HandDelivery
		d.DeliveryUnit = "% relative"
	}
	if d.DeliveryDelta > tol.DeliveryPoints {
		d.fail("delivery: gen %.2f%% vs hand %.2f%% (Δ %.2f %s > %.2f)",
			d.GenDelivery, d.HandDelivery, d.DeliveryDelta, d.DeliveryUnit, tol.DeliveryPoints)
	}

	if d.GenDelivered > 0 {
		d.GenHops = float64(genFwd+d.GenDelivered) / float64(d.GenDelivered)
	}
	if d.HandDelivered > 0 {
		d.HandHops = float64(handFwd+d.HandDelivered) / float64(d.HandDelivered)
	}
	d.HopsDelta = relDelta(d.GenHops, d.HandHops)
	if d.HopsDelta > tol.HopsFrac {
		d.fail("hops: gen %.3f vs hand %.3f (Δ %.1f%% > %.0f%%)",
			d.GenHops, d.HandHops, 100*d.HopsDelta, 100*tol.HopsFrac)
	}

	d.MsgsDelta = relDelta(float64(d.GenCtlMsgs), float64(d.HandCtlMsgs))
	if d.MsgsDelta > tol.MsgsFrac {
		d.fail("ctl msgs: gen %d vs hand %d (Δ %.1f%% > %.0f%%)",
			d.GenCtlMsgs, d.HandCtlMsgs, 100*d.MsgsDelta, 100*tol.MsgsFrac)
	}
	d.BytesDelta = relDelta(float64(d.GenCtlBytes), float64(d.HandCtlBytes))
	if d.BytesDelta > tol.BytesFrac {
		d.fail("ctl bytes: gen %d vs hand %d (Δ %.1f%% > %.0f%%)",
			d.GenCtlBytes, d.HandCtlBytes, 100*d.BytesDelta, 100*tol.BytesFrac)
	}

	if d.GenViolations > 0 || d.HandViolations > 0 {
		d.fail("invariants: gen %d violation(s), hand %d", d.GenViolations, d.HandViolations)
	}
	return d
}

func (d *ProtocolDiff) fail(format string, args ...any) {
	d.Pass = false
	d.Failures = append(d.Failures, fmt.Sprintf(format, args...))
}

// Table renders the verdict deterministically: the aggregate comparison
// columns, a per-phase delivery matrix in the sweep-table shape, and the
// verdict line. Byte-identical across runs, machines and shard counts.
func (d *ProtocolDiff) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen-vs-hand %q: %s vs %s\n", d.Scenario, d.Gen, d.Hand)
	fmt.Fprintf(&b, "  %-12s %14s %14s\n", "", d.Gen, d.Hand)
	fmt.Fprintf(&b, "  %-12s %8d/%-5d %8d/%-5d\n", "delivered",
		d.GenDelivered, d.GenSent, d.HandDelivered, d.HandSent)
	fmt.Fprintf(&b, "  %-12s %13.2f%% %13.2f%%  (Δ %.2f %s, tol %.1f)\n",
		"delivery", d.GenDelivery, d.HandDelivery, d.DeliveryDelta, d.DeliveryUnit, d.Tol.DeliveryPoints)
	fmt.Fprintf(&b, "  %-12s %14.3f %14.3f  (Δ %.1f%%, tol %.0f%%)\n",
		"mean hops", d.GenHops, d.HandHops, 100*d.HopsDelta, 100*d.Tol.HopsFrac)
	fmt.Fprintf(&b, "  %-12s %14d %14d  (Δ %.1f%%, tol %.0f%%)\n",
		"ctl msgs", d.GenCtlMsgs, d.HandCtlMsgs, 100*d.MsgsDelta, 100*d.Tol.MsgsFrac)
	fmt.Fprintf(&b, "  %-12s %14d %14d  (Δ %.1f%%, tol %.0f%%)\n",
		"ctl bytes", d.GenCtlBytes, d.HandCtlBytes, 100*d.BytesDelta, 100*d.Tol.BytesFrac)
	fmt.Fprintf(&b, "  %-12s %14d %14d\n", "violations", d.GenViolations, d.HandViolations)
	b.WriteString("\nper-phase delivered/sent (mean latency):\n")
	fmt.Fprintf(&b, "%-24s %-26s %-26s\n", "phase", d.Gen, d.Hand)
	n := len(d.genPhases)
	if len(d.handPhases) > n {
		n = len(d.handPhases)
	}
	cell := func(ps []scenario.PhaseReport, pi int) string {
		if pi >= len(ps) {
			return "-"
		}
		p := ps[pi]
		c := fmt.Sprintf("%d/%d", p.OpsDelivered, p.OpsSent)
		if p.MeanLatency > 0 {
			c += fmt.Sprintf(" (%s)", p.MeanLatency.Round(time.Microsecond))
		}
		return c
	}
	for pi := 0; pi < n; pi++ {
		label := fmt.Sprintf("%d", pi)
		if pi < len(d.genPhases) && d.genPhases[pi].Name != "" {
			label = fmt.Sprintf("%d %s", pi, d.genPhases[pi].Name)
		}
		fmt.Fprintf(&b, "%-24s %-26s %-26s\n", label, cell(d.genPhases, pi), cell(d.handPhases, pi))
	}
	if d.Pass {
		b.WriteString("\nverdict: PASS\n")
	} else {
		b.WriteString("\nverdict: FAIL\n")
		for _, f := range d.Failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	return b.String()
}
