package metrics

import (
	"encoding/json"

	"macedon/internal/check"
	"macedon/internal/obs"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
)

// The JSON encoders are the machine-readable twins of the text renderers:
// `macedon sweep -json` and `macedon scenario`/`macedon deploy -json` emit
// them, and the live-deployment subsystem diffs a live report against an
// emulated one through this shared encoding (docs/deploy.md). Everything
// encoded here is deterministic for the emulated backends — wall-clock
// timings stay out — so the output can be diffed like a golden trace.

// PhaseJSON is one phase's encoded metrics.
type PhaseJSON struct {
	Name         string  `json:"name"`
	Start        string  `json:"start"`
	End          string  `json:"end"`
	LiveNodes    int     `json:"live_nodes"`
	OpsSent      int     `json:"ops_sent"`
	OpsDelivered int     `json:"ops_delivered"`
	OpsSkipped   int     `json:"ops_skipped,omitempty"`
	OpsForwarded int     `json:"ops_forwarded,omitempty"`
	DeliveryPct  float64 `json:"delivery_pct"`
	MeanLatency  float64 `json:"mean_latency_ms"`
	MeanHops     float64 `json:"mean_hops,omitempty"`
	CtlMsgs      uint64  `json:"ctl_msgs,omitempty"`
	CtlBytes     uint64  `json:"ctl_bytes,omitempty"`
	Net          NetJSON `json:"net"`
	// Obs carries the phase's observability histograms; absent unless the
	// run executed with the obs plane enabled, so pre-obs golden JSON is
	// byte-identical.
	Obs *PhaseObsJSON `json:"obs,omitempty"`
	// Checks carries the phase's invariant-checker verdict; absent unless
	// the scenario opted into the correctness plane (same byte-identity
	// contract as Obs).
	Checks *check.PhaseChecks `json:"checks,omitempty"`
}

// HistJSON encodes one histogram snapshot: per-bucket (non-cumulative)
// counts, the last entry being the +Inf overflow bucket.
type HistJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

func histJSON(s obs.HistSnapshot) HistJSON {
	return HistJSON{Bounds: s.Bounds, Counts: s.Counts, Count: s.Count, Sum: s.Sum}
}

// PhaseObsJSON is one phase's encoded observability distributions and
// engine time series.
type PhaseObsJSON struct {
	Latency HistJSON    `json:"latency"`
	Hops    HistJSON    `json:"hops"`
	Series  *SeriesJSON `json:"series,omitempty"`
}

// SeriesJSON encodes one phase's engine time series: the column names and
// one point per sample, each with the phase-relative virtual-time offset in
// seconds and the column values.
type SeriesJSON struct {
	Columns []string          `json:"columns"`
	Points  []SeriesPointJSON `json:"points"`
	Dropped int               `json:"dropped,omitempty"`
}

// SeriesPointJSON is one encoded time-series point.
type SeriesPointJSON struct {
	T      float64   `json:"t"`
	Values []float64 `json:"values"`
}

func seriesJSON(s obs.SeriesSnapshot) *SeriesJSON {
	if len(s.Points) == 0 {
		return nil
	}
	out := &SeriesJSON{Columns: s.Columns, Dropped: s.Dropped}
	for _, p := range s.Points {
		out.Points = append(out.Points, SeriesPointJSON{T: p.At.Seconds(), Values: p.Values})
	}
	return out
}

// ObsJSON is the run-level observability section: the final metrics
// exposition plus the sampled event and span records.
type ObsJSON struct {
	Exposition string   `json:"exposition"`
	Events     []string `json:"events,omitempty"`
	Spans      []string `json:"spans,omitempty"`
}

// NetJSON encodes the network counter delta of a phase (or run).
type NetJSON struct {
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Drops     uint64 `json:"drops"`
	Bytes     uint64 `json:"bytes"`
}

func netJSON(s simnet.Stats) NetJSON {
	return NetJSON{Sent: s.Sent, Delivered: s.Delivered, Drops: sweepDrops(s), Bytes: s.Bytes}
}

// ReportJSON is a scenario report's machine-readable form.
type ReportJSON struct {
	Scenario string      `json:"scenario"`
	Protocol string      `json:"protocol"`
	Seed     int64       `json:"seed"`
	Nodes    int         `json:"nodes"`
	Settle   string      `json:"settle"`
	End      string      `json:"end"`
	Total    string      `json:"total"`
	Events   int         `json:"events_run"`
	Phases   []PhaseJSON `json:"phases"`
	Final    NetJSON     `json:"final"`
	Obs      *ObsJSON    `json:"obs,omitempty"`
}

// EncodeReport reduces a report to its JSON form.
func EncodeReport(r *scenario.Report) *ReportJSON {
	out := &ReportJSON{
		Scenario: r.Scenario,
		Protocol: r.Protocol,
		Seed:     r.Seed,
		Nodes:    r.Nodes,
		Settle:   r.Settle.String(),
		End:      r.End.String(),
		Total:    r.Total.String(),
		Events:   r.EventsRun,
		Final:    netJSON(r.Final),
	}
	for _, p := range r.Phases {
		pj := PhaseJSON{
			Name:         p.Name,
			Start:        p.Start.String(),
			End:          p.End.String(),
			LiveNodes:    p.LiveNodes,
			OpsSent:      p.OpsSent,
			OpsDelivered: p.OpsDelivered,
			OpsSkipped:   p.OpsSkipped,
			OpsForwarded: p.OpsForwarded,
			MeanLatency:  float64(p.MeanLatency.Microseconds()) / 1000,
			MeanHops:     p.MeanHops,
			CtlMsgs:      p.CtlMsgs,
			CtlBytes:     p.CtlBytes,
			Net:          netJSON(p.Net),
		}
		if p.OpsSent > 0 {
			pj.DeliveryPct = 100 * float64(p.OpsDelivered) / float64(p.OpsSent)
		}
		if p.Obs != nil {
			pj.Obs = &PhaseObsJSON{
				Latency: histJSON(p.Obs.Latency),
				Hops:    histJSON(p.Obs.Hops),
				Series:  seriesJSON(p.Obs.Series),
			}
		}
		pj.Checks = p.Checks
		out.Phases = append(out.Phases, pj)
	}
	if r.Obs != nil {
		out.Obs = &ObsJSON{Exposition: r.Obs.Exposition, Events: r.Obs.Events, Spans: r.Obs.Spans}
	}
	return out
}

// ReportToJSON renders a report as indented JSON.
func ReportToJSON(r *scenario.Report) ([]byte, error) {
	return json.MarshalIndent(EncodeReport(r), "", "  ")
}

// SweepVariantJSON is one sweep variant's encoded result.
type SweepVariantJSON struct {
	Name         string      `json:"name"`
	Protocol     string      `json:"protocol"`
	SharedPrefix bool        `json:"shared_prefix"`
	Report       *ReportJSON `json:"report"`
}

// SweepJSON is a sweep's machine-readable form. Wall-clock timings are
// deliberately absent: like SweepTable, the encoding is deterministic.
type SweepJSON struct {
	Name     string             `json:"name"`
	ForkAt   string             `json:"fork_at,omitempty"`
	Groups   int                `json:"groups"`
	Variants []SweepVariantJSON `json:"variants"`
}

// EncodeSweep reduces a sweep report to its JSON form.
func EncodeSweep(rep *scenario.SweepReport) *SweepJSON {
	out := &SweepJSON{Name: rep.Name, Groups: rep.Groups}
	if rep.ForkAt > 0 {
		out.ForkAt = rep.ForkAt.String()
	}
	for _, vr := range rep.Results {
		out.Variants = append(out.Variants, SweepVariantJSON{
			Name:         vr.Name,
			Protocol:     vr.Protocol,
			SharedPrefix: vr.SharedPrefix,
			Report:       EncodeReport(vr.Report),
		})
	}
	return out
}

// SweepToJSON renders a sweep report as indented JSON.
func SweepToJSON(rep *scenario.SweepReport) ([]byte, error) {
	return json.MarshalIndent(EncodeSweep(rep), "", "  ")
}
