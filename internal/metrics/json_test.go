package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"macedon/internal/scenario"
	"macedon/internal/simnet"
)

func sampleReport() *scenario.Report {
	return &scenario.Report{
		Scenario: "enc-test",
		Protocol: "genchord",
		Seed:     9,
		Nodes:    4,
		Settle:   30 * time.Second,
		End:      60 * time.Second,
		Total:    70 * time.Second,
		Phases: []scenario.PhaseReport{
			{
				Name: "p0", Start: 30 * time.Second, End: 60 * time.Second,
				LiveNodes: 4, OpsSent: 10, OpsDelivered: 9, OpsSkipped: 1,
				OpsForwarded: 18, MeanHops: 3.0, MeanLatency: 5 * time.Millisecond,
				CtlMsgs: 100, CtlBytes: 4000,
				Net: simnet.Stats{Sent: 500, Delivered: 490, RandomLoss: 10, Bytes: 12345},
			},
		},
		Final: simnet.Stats{Sent: 700, Delivered: 690, Bytes: 54321},
	}
}

// TestReportJSONRoundTrip checks the encoding carries the fields the
// live-vs-sim diff needs and parses back cleanly.
func TestReportJSONRoundTrip(t *testing.T) {
	b, err := ReportToJSON(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	var back ReportJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("encoded report does not parse: %v\n%s", err, b)
	}
	if back.Scenario != "enc-test" || back.Protocol != "genchord" || back.Nodes != 4 {
		t.Fatalf("header mangled: %+v", back)
	}
	if len(back.Phases) != 1 {
		t.Fatalf("phases = %d", len(back.Phases))
	}
	p := back.Phases[0]
	if p.OpsSent != 10 || p.OpsDelivered != 9 || p.OpsForwarded != 18 {
		t.Fatalf("ops mangled: %+v", p)
	}
	if p.MeanHops != 3.0 || p.DeliveryPct != 90 {
		t.Fatalf("derived metrics mangled: hops=%v pct=%v", p.MeanHops, p.DeliveryPct)
	}
	if p.CtlMsgs != 100 || p.Net.Drops != 10 {
		t.Fatalf("counters mangled: %+v", p)
	}
}

// TestReportJSONDeterministic: same report, same bytes.
func TestReportJSONDeterministic(t *testing.T) {
	a, _ := ReportToJSON(sampleReport())
	b, _ := ReportToJSON(sampleReport())
	if string(a) != string(b) {
		t.Fatal("encoding is not deterministic")
	}
}

// TestSweepJSON encodes a two-variant sweep and checks the structure.
func TestSweepJSON(t *testing.T) {
	rep := &scenario.SweepReport{
		Name:   "s",
		ForkAt: 30 * time.Second,
		Groups: 1,
		Results: []scenario.SweepVariantResult{
			{Name: "v1", Protocol: "chord", SharedPrefix: true, BranchWall: 123 * time.Millisecond, Report: sampleReport()},
			{Name: "v2", Protocol: "pastry", SharedPrefix: false, BranchWall: 456 * time.Millisecond, Report: sampleReport()},
		},
	}
	b, err := SweepToJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("encoded sweep does not parse: %v", err)
	}
	if len(back.Variants) != 2 || back.Variants[0].Name != "v1" || !back.Variants[0].SharedPrefix {
		t.Fatalf("variants mangled: %+v", back.Variants)
	}
	// Wall timings are machine-dependent and must stay out of the encoding.
	if strings.Contains(string(b), "wall") || strings.Contains(string(b), "123ms") {
		t.Fatalf("nondeterministic timing leaked into sweep JSON:\n%s", b)
	}
}
