// Package metrics implements the overlay evaluation metrics the paper's
// §4.3 lists as built-in MACEDON facilities: latency stretch and relative
// delay penalty (RDP), physical link stress computed from extracted topology
// and routing information, control-traffic overhead, routing-table
// convergence against a global oracle (Figure 10), and bandwidth time
// series (Figure 12).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"macedon/internal/obs"
	"macedon/internal/overlay"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
	"macedon/internal/topology"
)

// Stretch is the ratio of overlay path latency to direct unicast latency
// between the same two clients. A negative return means the direct latency
// is unknown (disconnected or same node).
func Stretch(routes *topology.Routes, src, dst overlay.Address, overlayLatency time.Duration) float64 {
	direct, err := routes.ClientLatency(src, dst)
	if err != nil || direct <= 0 {
		return -1
	}
	return float64(overlayLatency) / float64(direct)
}

// Summary holds order statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
}

// Summarize computes order statistics over a sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	var sum float64
	for _, x := range cp {
		sum += x
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(cp)-1))
		return cp[idx]
	}
	return Summary{
		N:    len(cp),
		Mean: sum / float64(len(cp)),
		Min:  cp[0],
		Max:  cp[len(cp)-1],
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// OverlayEdge is one logical overlay hop (e.g. tree parent → child).
type OverlayEdge struct {
	From, To overlay.Address
}

// LinkStress computes, for each physical link, how many overlay edges'
// unicast paths traverse it — the classic link-stress metric. It returns
// per-link counts for links with non-zero stress.
func LinkStress(g *topology.Graph, routes *topology.Routes, edges []OverlayEdge) map[topology.LinkID]int {
	stress := make(map[topology.LinkID]int)
	for _, e := range edges {
		fv, ok1 := g.ClientVertex(e.From)
		tv, ok2 := g.ClientVertex(e.To)
		if !ok1 || !ok2 {
			continue
		}
		for _, l := range routes.Path(fv, tv) {
			stress[l]++
		}
	}
	return stress
}

// StressSummary reduces a stress map to order statistics.
func StressSummary(stress map[topology.LinkID]int) Summary {
	xs := make([]float64, 0, len(stress))
	for _, s := range stress {
		xs = append(xs, float64(s))
	}
	return Summarize(xs)
}

// BandwidthSeries accumulates delivered bytes into fixed-width time buckets:
// Figure 12's per-node average bandwidth over time.
type BandwidthSeries struct {
	Bucket time.Duration
	start  time.Time
	bytes  []uint64
}

// NewBandwidthSeries starts a series at the given origin.
func NewBandwidthSeries(start time.Time, bucket time.Duration) *BandwidthSeries {
	return &BandwidthSeries{Bucket: bucket, start: start}
}

// Add records n bytes delivered at time at. Samples timestamped before the
// series origin (clock skew, deliveries racing the origin snapshot) clamp
// into the first bucket rather than silently vanishing, so the series total
// always equals the bytes recorded.
func (b *BandwidthSeries) Add(at time.Time, n int) {
	idx := int(at.Sub(b.start) / b.Bucket)
	if idx < 0 {
		idx = 0
	}
	for len(b.bytes) <= idx {
		b.bytes = append(b.bytes, 0)
	}
	b.bytes[idx] += uint64(n)
}

// Points returns (bucket start offset, bits/sec) pairs.
func (b *BandwidthSeries) Points() []BandwidthPoint {
	out := make([]BandwidthPoint, len(b.bytes))
	for i, by := range b.bytes {
		out[i] = BandwidthPoint{
			Offset:     time.Duration(i) * b.Bucket,
			BitsPerSec: float64(by*8) / b.Bucket.Seconds(),
		}
	}
	return out
}

// BandwidthPoint is one bucket of a bandwidth series.
type BandwidthPoint struct {
	Offset     time.Duration
	BitsPerSec float64
}

// ChordOracle grades finger tables against global membership knowledge:
// "we calculated correct routing tables for each node given global
// knowledge of all nodes joining the system" (§4.2.2).
type ChordOracle struct {
	keys []uint32
	addr map[uint32]overlay.Address
}

// NewChordOracle builds the oracle over the full member set.
func NewChordOracle(members []overlay.Address) *ChordOracle {
	o := &ChordOracle{addr: make(map[uint32]overlay.Address, len(members))}
	for _, a := range members {
		k := uint32(overlay.HashAddress(a))
		o.keys = append(o.keys, k)
		o.addr[k] = a
	}
	sort.Slice(o.keys, func(i, j int) bool { return o.keys[i] < o.keys[j] })
	return o
}

// Successor returns the true owner of a key.
func (o *ChordOracle) Successor(k overlay.Key) overlay.Address {
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= uint32(k) })
	if i == len(o.keys) {
		i = 0
	}
	return o.addr[o.keys[i]]
}

// CorrectFingers counts how many of a node's finger entries match the true
// successor of their targets.
func (o *ChordOracle) CorrectFingers(self overlay.Address, fingers []overlay.Address) int {
	selfKey := uint32(overlay.HashAddress(self))
	correct := 0
	for i, f := range fingers {
		if f == overlay.NilAddress {
			continue
		}
		target := overlay.Key(selfKey + 1<<uint(i))
		if o.Successor(target) == f {
			correct++
		}
	}
	return correct
}

// SweepTable renders a sweep's per-variant comparative report: one summary
// row per variant, then a per-phase delivery matrix aligning the variants
// column by column. Everything in the table is deterministic (wall-clock
// timing lives in SweepReport.TimingSummary instead), so sweep outputs can
// be diffed across runs and machines like any other trace.
func SweepTable(rep *scenario.SweepReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep %q: %d variants, %d shared-prefix group(s)", rep.Name, len(rep.Results), rep.Groups)
	if rep.ForkAt > 0 {
		fmt.Fprintf(&b, ", fork at %s", rep.ForkAt)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-18s %-11s %-10s %-7s %8s %10s %8s %12s %12s %10s\n",
		"variant", "protocol", "seed", "prefix", "ops", "delivered", "deliv%", "mean_lat", "net_sent", "drops")
	for _, vr := range rep.Results {
		r := vr.Report
		sent, del := 0, 0
		var lat time.Duration
		for _, p := range r.Phases {
			sent += p.OpsSent
			del += p.OpsDelivered
			lat += p.MeanLatency * time.Duration(p.OpsDelivered)
		}
		pct := 0.0
		var mean time.Duration
		if sent > 0 {
			pct = 100 * float64(del) / float64(sent)
		}
		if del > 0 {
			mean = lat / time.Duration(del)
		}
		mode := "cold"
		if vr.SharedPrefix {
			mode = "shared"
		}
		fmt.Fprintf(&b, "%-18s %-11s %-10d %-7s %8d %10d %7.1f%% %12s %12d %10d\n",
			vr.Name, vr.Protocol, r.Seed, mode, sent, del, pct,
			mean.Round(time.Microsecond), r.Final.Sent, sweepDrops(r.Final))
	}
	// Per-phase delivery matrix: phases aligned by index (variants may
	// diverge in phase structure after the fork; blank cells mark absent
	// phases).
	maxPhases := 0
	for _, vr := range rep.Results {
		if n := len(vr.Report.Phases); n > maxPhases {
			maxPhases = n
		}
	}
	if maxPhases > 0 {
		b.WriteString("\nper-phase delivered/sent (mean latency):\n")
		fmt.Fprintf(&b, "%-24s", "phase")
		for _, vr := range rep.Results {
			fmt.Fprintf(&b, " %-26s", vr.Name)
		}
		b.WriteString("\n")
		for pi := 0; pi < maxPhases; pi++ {
			label := fmt.Sprintf("%d", pi)
			for _, vr := range rep.Results {
				if pi < len(vr.Report.Phases) && vr.Report.Phases[pi].Name != "" {
					label = fmt.Sprintf("%d %s", pi, vr.Report.Phases[pi].Name)
					break
				}
			}
			fmt.Fprintf(&b, "%-24s", label)
			for _, vr := range rep.Results {
				if pi >= len(vr.Report.Phases) {
					fmt.Fprintf(&b, " %-26s", "-")
					continue
				}
				p := vr.Report.Phases[pi]
				cell := fmt.Sprintf("%d/%d", p.OpsDelivered, p.OpsSent)
				if p.MeanLatency > 0 {
					cell += fmt.Sprintf(" (%s)", p.MeanLatency.Round(time.Microsecond))
				}
				fmt.Fprintf(&b, " %-26s", cell)
			}
			b.WriteString("\n")
		}
	}
	sweepObsSection(&b, rep)
	return b.String()
}

// sweepObsColumns maps the obs-snapshot table's column heads to the merged
// exposition families they read (engine workload plus the scheduler
// telemetry — obs-enabled sweeps run cold, so every variant carries both).
var sweepObsColumns = []struct{ head, family string }{
	{"ops_deliv", "macedon_ops_delivered_total"},
	{"sched_events", "macedon_sched_events_total"},
	{"stall_ns", "macedon_sched_barrier_stall_ns_total"},
	{"ev_per_vs", "macedon_sched_window_utilization"},
	{"pool_gets", "macedon_sched_pool_gets_total"},
	{"recycled", "macedon_sched_pool_recycled_total"},
}

// sweepObsSection appends the per-variant obs snapshot rows when the sweep
// ran with the observability plane enabled. Values come straight from each
// variant's merged exposition, so the section is as deterministic (and
// shard-invariant) as the exposition itself.
func sweepObsSection(b *strings.Builder, rep *scenario.SweepReport) {
	withObs := false
	for _, vr := range rep.Results {
		if vr.Report.Obs != nil {
			withObs = true
			break
		}
	}
	if !withObs {
		return
	}
	b.WriteString("\nper-variant obs snapshot:\n")
	fmt.Fprintf(b, "%-18s", "variant")
	for _, c := range sweepObsColumns {
		fmt.Fprintf(b, " %14s", c.head)
	}
	b.WriteString("\n")
	for _, vr := range rep.Results {
		fmt.Fprintf(b, "%-18s", vr.Name)
		vals := expoFamilyTotals(vr.Report.Obs)
		for _, c := range sweepObsColumns {
			v, ok := vals[c.family]
			if !ok {
				fmt.Fprintf(b, " %14s", "-")
				continue
			}
			fmt.Fprintf(b, " %14s", sweepObsValue(v))
		}
		b.WriteString("\n")
	}
}

// expoFamilyTotals parses an obs report's exposition and sums its samples
// by family name (nil-safe: returns an empty map for variants without obs).
func expoFamilyTotals(or *scenario.ObsReport) map[string]float64 {
	out := make(map[string]float64)
	if or == nil {
		return out
	}
	sc, err := obs.ParseText([]byte(or.Exposition))
	if err != nil {
		return out
	}
	for _, s := range sc.Samples {
		out[s.Name] += s.Value
	}
	return out
}

// sweepObsValue renders one cell: integral values print exactly, the rest
// with shortest-roundtrip precision (the exposition's own convention).
func sweepObsValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

// sweepDrops sums every drop class of a network counter snapshot.
func sweepDrops(s simnet.Stats) uint64 {
	return s.QueueDrops + s.RandomLoss + s.DownDrops + s.LinkDownDrops +
		s.DegradeLoss + s.PartitionDrops + s.NoRouteDrops
}
