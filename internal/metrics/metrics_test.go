package metrics

import (
	"strings"
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
	"macedon/internal/topology"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func testGraph() (*topology.Graph, *topology.Routes) {
	g := topology.NewGraph()
	a, b := g.AddRouter(), g.AddRouter()
	g.AddLink(a, b, 10*time.Millisecond, 1e6, 15000)
	g.AttachClient(1, a, topology.DefaultAccess)
	g.AttachClient(2, b, topology.DefaultAccess)
	g.AttachClient(3, a, topology.DefaultAccess)
	return g, topology.NewRoutes(g)
}

func TestStretch(t *testing.T) {
	_, routes := testGraph()
	// direct 1-2: 1 + 10 + 1 = 12ms. Overlay took 24ms => stretch 2.
	if got := Stretch(routes, 1, 2, 24*time.Millisecond); got != 2 {
		t.Fatalf("stretch = %f", got)
	}
	if got := Stretch(routes, 1, 99, time.Millisecond); got >= 0 {
		t.Fatalf("unknown client stretch = %f", got)
	}
}

func TestLinkStress(t *testing.T) {
	g, routes := testGraph()
	// Overlay edges 1->2 and 3->2 both cross the middle physical link.
	edges := []OverlayEdge{{From: 1, To: 2}, {From: 3, To: 2}}
	stress := LinkStress(g, routes, edges)
	max := 0
	for _, s := range stress {
		if s > max {
			max = s
		}
	}
	if max != 2 {
		t.Fatalf("max stress = %d, want 2 (shared middle link)", max)
	}
	sum := StressSummary(stress)
	if sum.Max != 2 {
		t.Fatalf("stress summary = %+v", sum)
	}
}

func TestBandwidthSeries(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewBandwidthSeries(start, time.Second)
	s.Add(start.Add(100*time.Millisecond), 1000)
	s.Add(start.Add(900*time.Millisecond), 1000)
	s.Add(start.Add(1500*time.Millisecond), 500)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].BitsPerSec != 16000 {
		t.Fatalf("bucket0 = %f bps", pts[0].BitsPerSec)
	}
	if pts[1].BitsPerSec != 4000 {
		t.Fatalf("bucket1 = %f bps", pts[1].BitsPerSec)
	}
}

// TestBandwidthSeriesPreStartClamped is the regression test for the silent
// sample drop: a delivery timestamped before the series origin (clock skew
// between recorder and origin snapshot) must land in the first bucket, not
// vanish — the series total has to equal the bytes recorded.
func TestBandwidthSeriesPreStartClamped(t *testing.T) {
	start := time.Unix(100, 0)
	s := NewBandwidthSeries(start, time.Second)
	s.Add(start.Add(-300*time.Millisecond), 250)
	s.Add(start.Add(200*time.Millisecond), 750)
	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	if got, want := pts[0].BitsPerSec, float64((250+750)*8); got != want {
		t.Fatalf("bucket0 = %f bps, want %f (pre-start sample dropped?)", got, want)
	}
}

func TestChordOracle(t *testing.T) {
	members := []overlay.Address{10, 20, 30, 40}
	o := NewChordOracle(members)
	// Every member's own key maps to itself.
	for _, m := range members {
		if got := o.Successor(overlay.HashAddress(m)); got != m {
			t.Fatalf("Successor(own key) = %v, want %v", got, m)
		}
	}
	// A fully correct finger table scores all populated entries.
	self := overlay.Address(10)
	selfKey := uint32(overlay.HashAddress(self))
	fingers := make([]overlay.Address, 32)
	for i := range fingers {
		fingers[i] = o.Successor(overlay.Key(selfKey + 1<<uint(i)))
	}
	if got := o.CorrectFingers(self, fingers); got != 32 {
		t.Fatalf("correct fingers = %d", got)
	}
	// Nil entries are skipped, wrong entries are not counted.
	fingers[0] = overlay.NilAddress
	fingers[1] = overlay.Address(99)
	if got := o.CorrectFingers(self, fingers); got > 30 {
		t.Fatalf("correct fingers after corruption = %d", got)
	}
}

func TestSweepTable(t *testing.T) {
	rep := &scenario.SweepReport{
		Name:   "tbl",
		ForkAt: 75 * time.Second,
		Groups: 1,
		Results: []scenario.SweepVariantResult{
			{
				Name: "calm", Protocol: "genchord", SharedPrefix: true,
				Report: &scenario.Report{
					Seed:  7,
					Final: simnet.Stats{Sent: 100, QueueDrops: 3, PartitionDrops: 2},
					Phases: []scenario.PhaseReport{
						{Name: "churn", OpsSent: 10, OpsDelivered: 9, MeanLatency: 20 * time.Millisecond},
					},
				},
			},
			{
				Name: "storm", Protocol: "genpastry",
				Report: &scenario.Report{
					Seed:  7,
					Final: simnet.Stats{Sent: 200},
					Phases: []scenario.PhaseReport{
						{Name: "churn", OpsSent: 10, OpsDelivered: 5, MeanLatency: 90 * time.Millisecond},
						{Name: "extra", OpsSent: 4, OpsDelivered: 4},
					},
				},
			},
		},
	}
	got := SweepTable(rep)
	for _, want := range []string{
		"sweep \"tbl\"", "fork at 1m15s",
		"calm", "storm", "shared", "cold",
		"9/10 (20ms)", "5/10 (90ms)", "4/4",
		"90.0%", "1 extra",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("table missing %q:\n%s", want, got)
		}
	}
	// Variant absent from a phase row renders a blank cell, not a crash.
	if !strings.Contains(got, "-") {
		t.Fatalf("missing blank cell marker:\n%s", got)
	}
}
