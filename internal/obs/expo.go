package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample: a metric name (possibly a
// histogram's derived _bucket/_sum/_count name), a canonical label string,
// and a value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Scrape is one parsed exposition page.
type Scrape struct {
	// Types maps family name → TYPE (counter, gauge, histogram).
	Types map[string]string
	// Help maps family name → HELP text.
	Help    map[string]string
	Samples []Sample
}

// ParseText parses Prometheus text exposition format (the subset this
// package emits: HELP/TYPE comments and `name[{labels}] value` samples).
func ParseText(b []byte) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string), Help: make(map[string]string)}
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) >= 4 && parts[1] == "HELP" {
				sc.Help[parts[2]] = parts[3]
			}
			if len(parts) >= 4 && parts[1] == "TYPE" {
				sc.Types[parts[2]] = strings.TrimSpace(parts[3])
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", ln+1, err)
		}
		sc.Samples = append(sc.Samples, s)
	}
	return sc, nil
}

// parseSample parses one `name[{labels}] value` line, canonicalizing the
// label order.
func parseSample(line string) (Sample, error) {
	name := line
	labels := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return Sample{}, fmt.Errorf("unbalanced label braces in %q", line)
		}
		name = line[:i]
		var err error
		labels, err = canonLabels(line[i+1 : j])
		if err != nil {
			return Sample{}, err
		}
		line = name + " " + strings.TrimSpace(line[j+1:])
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return Sample{}, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return Sample{Name: fields[0], Labels: labels, Value: v}, nil
}

// canonLabels re-renders a label body (`a="x",b="y"`) in sorted canonical
// form. Label values containing commas or braces inside quotes are
// supported; escaped quotes are not (this package never emits them).
func canonLabels(body string) (string, error) {
	body = strings.TrimSpace(body)
	if body == "" {
		return "", nil
	}
	var labels []Label
	for _, pair := range splitPairs(body) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return "", fmt.Errorf("malformed label %q", pair)
		}
		uq, err := strconv.Unquote(strings.TrimSpace(v))
		if err != nil {
			return "", fmt.Errorf("malformed label value %q: %v", v, err)
		}
		labels = append(labels, Label{Key: strings.TrimSpace(k), Value: uq})
	}
	return renderLabels(labels), nil
}

// splitPairs splits a label body on commas outside quotes.
func splitPairs(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// Diff returns cur minus prev, per sample: each of cur's samples keeps its
// name and labels with prev's value for the same (name, labels) key
// subtracted (zero when prev never saw it). Types and Help carry over from
// cur. Agents ship these deltas so a Fleet summing every delta from one
// source reconstructs the source's latest absolute values — counters and
// gauges alike — without the controller tracking per-agent state.
func Diff(cur, prev *Scrape) *Scrape {
	out := &Scrape{Types: make(map[string]string), Help: make(map[string]string)}
	for n, t := range cur.Types {
		out.Types[n] = t
	}
	for n, h := range cur.Help {
		out.Help[n] = h
	}
	var base map[string]float64
	if prev != nil {
		base = make(map[string]float64, len(prev.Samples))
		for _, s := range prev.Samples {
			base[s.Name+" "+s.Labels] = s.Value
		}
	}
	for _, s := range cur.Samples {
		s.Value -= base[s.Name+" "+s.Labels]
		out.Samples = append(out.Samples, s)
	}
	return out
}

// Fleet aggregates exposition pages from many sources (one scrape per
// agent) into fleet-level families: samples with the same name and label
// set sum. Histogram derived samples (_bucket/_sum/_count) sum too, which
// is exactly histogram merging. `macedon deploy` feeds each agent's
// /metrics page in and renders the aggregate through the same report path
// the emulator uses.
type Fleet struct {
	types map[string]string
	help  map[string]string
	vals  map[string]float64 // "name labels" → summed value
	order []string
}

// NewFleet returns an empty aggregation.
func NewFleet() *Fleet {
	return &Fleet{types: make(map[string]string), help: make(map[string]string), vals: make(map[string]float64)}
}

// Add folds one scrape into the aggregate.
func (f *Fleet) Add(sc *Scrape) {
	for n, t := range sc.Types {
		f.types[n] = t
	}
	for n, h := range sc.Help {
		f.help[n] = h
	}
	for _, s := range sc.Samples {
		key := s.Name + " " + s.Labels
		if _, ok := f.vals[key]; !ok {
			f.order = append(f.order, key)
		}
		f.vals[key] += s.Value
	}
}

// Families returns the sorted family names seen in TYPE lines.
func (f *Fleet) Families() []string {
	out := make([]string, 0, len(f.types))
	for n := range f.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Text renders the aggregate in exposition format, sorted like
// Registry.Text: derived histogram samples group under their family's
// TYPE line.
func (f *Fleet) Text() string {
	keys := append([]string(nil), f.order...)
	sort.Slice(keys, func(i, j int) bool {
		fi, fj := familyOf(keys[i], f.types), familyOf(keys[j], f.types)
		if fi != fj {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	lastFam := ""
	for _, key := range keys {
		name, labels, _ := strings.Cut(key, " ")
		fam := familyOf(key, f.types)
		if fam != lastFam {
			if h := f.help[fam]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", fam, h)
			}
			if t := f.types[fam]; t != "" {
				fmt.Fprintf(&b, "# TYPE %s %s\n", fam, t)
			}
			lastFam = fam
		}
		fmt.Fprintf(&b, "%s%s %s\n", name, labels, formatFloat(f.vals[key]))
	}
	return b.String()
}

// familyOf maps a sample key to its family name: histogram-derived names
// reduce to the base family when the base has a TYPE entry.
func familyOf(key string, types map[string]string) string {
	name, _, _ := strings.Cut(key, " ")
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if _, ok := types[base]; ok {
				return base
			}
		}
	}
	return name
}
