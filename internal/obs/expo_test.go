package obs

import (
	"strings"
	"testing"
	"time"
)

// TestParseTextEmpty asserts the degenerate pages an agent can legitimately
// ship — nothing at all, or only comments — parse to an empty scrape rather
// than an error, so a Fleet.Add of a just-started agent is a no-op.
func TestParseTextEmpty(t *testing.T) {
	for _, src := range []string{
		"",
		"\n\n\n",
		"# HELP macedon_x_total x.\n# TYPE macedon_x_total counter\n",
	} {
		sc, err := ParseText([]byte(src))
		if err != nil {
			t.Fatalf("ParseText(%q): %v", src, err)
		}
		if len(sc.Samples) != 0 {
			t.Fatalf("ParseText(%q): %d samples, want 0", src, len(sc.Samples))
		}
	}
}

// TestParseTextDuplicateLabels asserts label-order canonicalization: the
// same label set written in different orders parses to one canonical Labels
// string, so fleet merging sums them instead of splitting the family.
func TestParseTextDuplicateLabels(t *testing.T) {
	src := `macedon_ops_total{kind="lookup",proto="chord"} 3
macedon_ops_total{proto="chord",kind="lookup"} 4
`
	sc, err := ParseText([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Samples) != 2 {
		t.Fatalf("%d samples, want 2", len(sc.Samples))
	}
	if sc.Samples[0].Labels != sc.Samples[1].Labels {
		t.Fatalf("label order not canonicalized: %q vs %q", sc.Samples[0].Labels, sc.Samples[1].Labels)
	}
	f := NewFleet()
	f.Add(sc)
	if !strings.Contains(f.Text(), "macedon_ops_total{kind=\"lookup\",proto=\"chord\"} 7") {
		t.Fatalf("duplicate-label samples did not sum:\n%s", f.Text())
	}
}

// TestParseTextMalformed asserts malformed pages fail loudly instead of
// silently dropping samples.
func TestParseTextMalformed(t *testing.T) {
	for _, src := range []string{
		"macedon_x_total",               // no value
		"macedon_x_total one",           // non-numeric value
		"macedon_x_total{a=\"x\" 1",     // unbalanced braces: '}' missing
		"macedon_x_total{a} 1",          // label without value
		"macedon_x_total{a=unquoted} 1", // unquoted label value
		"macedon_x_total 1 2",           // trailing junk
	} {
		if _, err := ParseText([]byte(src)); err == nil {
			t.Errorf("ParseText(%q): expected error", src)
		}
	}
}

// TestFleetMismatchedTypes exercises two agents disagreeing on a family's
// TYPE (a mixed-version fleet mid-upgrade): the merge must not lose samples,
// and the rendered aggregate carries exactly one TYPE line for the family —
// last writer wins, deterministically in Add order.
func TestFleetMismatchedTypes(t *testing.T) {
	a, err := ParseText([]byte("# TYPE macedon_depth counter\nmacedon_depth 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText([]byte("# TYPE macedon_depth gauge\nmacedon_depth 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	f.Add(a)
	f.Add(b)
	text := f.Text()
	if !strings.Contains(text, "macedon_depth 7") {
		t.Fatalf("samples lost across the type mismatch:\n%s", text)
	}
	if got := strings.Count(text, "# TYPE macedon_depth"); got != 1 {
		t.Fatalf("%d TYPE lines for the family, want 1:\n%s", got, text)
	}
	if !strings.Contains(text, "# TYPE macedon_depth gauge") {
		t.Fatalf("type merge not last-writer-wins:\n%s", text)
	}
}

// TestFleetEmptyExposition asserts folding empty pages in (agents that have
// not ticked yet) leaves the aggregate untouched.
func TestFleetEmptyExposition(t *testing.T) {
	empty, err := ParseText(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	f.Add(empty)
	if f.Text() != "" {
		t.Fatalf("empty fleet renders %q", f.Text())
	}
	page, err := ParseText([]byte("macedon_x_total 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	f.Add(page)
	before := f.Text()
	f.Add(empty)
	if f.Text() != before {
		t.Fatalf("adding an empty page changed the aggregate:\n%s\nvs\n%s", before, f.Text())
	}
}

// TestFleetHistogramBucketMerge asserts histogram merging: per-agent
// _bucket/_sum/_count samples sum bucket-by-bucket, and the derived samples
// group under the base family's TYPE line in the rendered aggregate.
func TestFleetHistogramBucketMerge(t *testing.T) {
	page := func(le1, le2, inf, sum, count string) string {
		return "# TYPE macedon_hops histogram\n" +
			"macedon_hops_bucket{le=\"1\"} " + le1 + "\n" +
			"macedon_hops_bucket{le=\"2\"} " + le2 + "\n" +
			"macedon_hops_bucket{le=\"+Inf\"} " + inf + "\n" +
			"macedon_hops_sum " + sum + "\n" +
			"macedon_hops_count " + count + "\n"
	}
	f := NewFleet()
	for _, src := range []string{
		page("1", "3", "4", "7.5", "4"),
		page("0", "2", "3", "5.5", "3"),
	} {
		sc, err := ParseText([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		f.Add(sc)
	}
	text := f.Text()
	for _, want := range []string{
		"macedon_hops_bucket{le=\"1\"} 1",
		"macedon_hops_bucket{le=\"2\"} 5",
		"macedon_hops_bucket{le=\"+Inf\"} 7",
		"macedon_hops_sum 13",
		"macedon_hops_count 7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged histogram missing %q:\n%s", want, text)
		}
	}
	if got := strings.Count(text, "# TYPE macedon_hops histogram"); got != 1 {
		t.Fatalf("%d TYPE lines for the histogram family, want 1:\n%s", got, text)
	}
	// The merged page must itself round-trip, so a controller can re-parse
	// what it rendered.
	if _, err := ParseText([]byte(text)); err != nil {
		t.Fatalf("merged exposition does not re-parse: %v", err)
	}
}

// TestDiffDelta pins the delta-push algebra: Diff(cur, prev) carries
// cur-prev per (name, labels) key, zero-baselines samples prev never saw,
// and a fleet summing consecutive deltas from one source telescopes back to
// the source's latest absolute page.
func TestDiffDelta(t *testing.T) {
	p1, _ := ParseText([]byte("# TYPE macedon_x_total counter\nmacedon_x_total 3\n"))
	p2, _ := ParseText([]byte("# TYPE macedon_x_total counter\nmacedon_x_total 10\nmacedon_y_total 2\n"))
	d1 := Diff(p1, nil)
	if len(d1.Samples) != 1 || d1.Samples[0].Value != 3 {
		t.Fatalf("Diff(cur, nil) = %+v, want the page itself", d1.Samples)
	}
	d2 := Diff(p2, p1)
	vals := map[string]float64{}
	for _, s := range d2.Samples {
		vals[s.Name] = s.Value
	}
	if vals["macedon_x_total"] != 7 || vals["macedon_y_total"] != 2 {
		t.Fatalf("Diff deltas = %v, want x=7 y=2", vals)
	}
	// Telescoping: the fleet that consumed both deltas equals the one that
	// consumed the absolute latest page.
	got, want := NewFleet(), NewFleet()
	got.Add(d1)
	got.Add(d2)
	want.Add(p2)
	if got.Text() != want.Text() {
		t.Fatalf("delta telescoping diverged:\n%s\nvs\n%s", got.Text(), want.Text())
	}
}

// TestSeriesRing pins the fixed-capacity ring: appends past capacity evict
// oldest-first, Dropped counts the evictions, and Snapshot returns the
// retained window in order.
func TestSeriesRing(t *testing.T) {
	s := NewSeries([]string{"v"}, 3)
	for i := 1; i <= 5; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	snap := s.Snapshot()
	if snap.Dropped != 2 || s.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", snap.Dropped)
	}
	vals, ok := snap.Column("v")
	if !ok || len(vals) != 3 || vals[0] != 3 || vals[2] != 5 {
		t.Fatalf("ring window = %v, want [3 4 5]", vals)
	}
	if snap.Points[0].At != 3*time.Second {
		t.Fatalf("oldest retained at %v, want 3s", snap.Points[0].At)
	}
	if _, ok := snap.Column("missing"); ok {
		t.Fatal("Column found a column that does not exist")
	}
}

// TestSeriesAppendMismatchPanics asserts the column-arity contract is
// enforced at the call site rather than surfacing as a skewed series later.
func TestSeriesAppendMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong arity did not panic")
		}
	}()
	NewSeries([]string{"a", "b"}, 4).Append(time.Second, 1)
}

// TestSparkline pins the renderer's determinism and edge cases: empty input,
// flat series (all-low bars), and full-range scaling.
func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("Sparkline(nil) = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Fatalf("flat sparkline = %q, want all-low bars", got)
	}
	if got := Sparkline([]float64{0, 7}); got != "▁█" {
		t.Fatalf("range sparkline = %q, want min and max glyphs", got)
	}
}
