package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level grades event records.
type Level uint8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// Field is one key=value pair on a record.
type Field struct {
	Key   string
	Value string
}

// F builds a field, formatting the value with %v.
func F(k string, v any) Field { return Field{Key: k, Value: fmt.Sprintf("%v", v)} }

// Record is one structured event. At is virtual elapsed time in the
// emulator and wall-clock-since-start in live; either way it renders
// deterministically given the same run.
type Record struct {
	At     time.Duration
	Level  Level
	Name   string
	Fields []Field
}

// String renders the record as one canonical line:
// `t=1.234567s lvl=info ev=name k=v ...`.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.6fs lvl=%s ev=%s", r.At.Seconds(), r.Level, r.Name)
	for _, f := range r.Fields {
		v := f.Value
		if strings.ContainsAny(v, " \t\n\"") {
			v = fmt.Sprintf("%q", v)
		}
		fmt.Fprintf(&b, " %s=%s", f.Key, v)
	}
	return b.String()
}

// Sampler decides which events an EventLog keeps. Implementations must be
// safe for concurrent use.
type Sampler interface {
	// Admit reports whether the event named name with sampling key key
	// should be recorded. The key is an event-specific stable identifier
	// (an op ID, a node index) — NOT a sequence number — so that the
	// decision is independent of arrival order.
	Admit(name string, key uint64) bool
}

// KeySampler admits events whose hashed key falls in a 1-in-N slice. The
// decision depends only on (Seed, key): two runs of the same scenario at
// different shard counts, or one emulated and one live run with the same
// seed, sample the same population. N <= 1 admits everything.
type KeySampler struct {
	Seed uint64
	N    uint64
}

// Admit implements Sampler.
func (s KeySampler) Admit(_ string, key uint64) bool {
	if s.N <= 1 {
		return true
	}
	return splitmix64(s.Seed^key)%s.N == 0
}

// CountSampler admits the first Head events of each name, then every
// Every-th after that. Deterministic only for serialized event streams
// (a single-goroutine coordinator); do not use it on concurrent paths.
type CountSampler struct {
	Head  uint64
	Every uint64

	mu   sync.Mutex
	seen map[string]uint64
}

// Admit implements Sampler.
func (s *CountSampler) Admit(name string, _ uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen == nil {
		s.seen = make(map[string]uint64)
	}
	n := s.seen[name]
	s.seen[name] = n + 1
	if n < s.Head {
		return true
	}
	return s.Every > 0 && (n-s.Head)%s.Every == 0
}

// TokenBucket is a wall-clock rate sampler for the live backend: at most
// Rate admissions per second with a burst of Burst. Now is injectable for
// tests and defaults to time.Now.
type TokenBucket struct {
	Rate  float64
	Burst float64
	Now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// Admit implements Sampler.
func (t *TokenBucket) Admit(string, uint64) bool {
	now := time.Now
	if t.Now != nil {
		now = t.Now
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := now()
	if t.last.IsZero() {
		t.tokens = t.Burst
	} else {
		t.tokens += n.Sub(t.last).Seconds() * t.Rate
		if t.tokens > t.Burst {
			t.tokens = t.Burst
		}
	}
	t.last = n
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// EventLog retains sampled structured records and optionally tees their
// rendered lines to a writer as they arrive.
type EventLog struct {
	mu      sync.Mutex
	sampler Sampler
	min     Level
	w       io.Writer
	render  func(Record) string
	cap     int // ring capacity; 0 = unbounded
	recs    []Record
	dropped uint64
}

// NewEventLog builds a log that keeps records admitted by sampler (nil
// admits everything) at or above min.
func NewEventLog(sampler Sampler, min Level) *EventLog {
	return &EventLog{sampler: sampler, min: min}
}

// SetWriter tees admitted records to w as rendered lines.
func (l *EventLog) SetWriter(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = w
}

// SetCap bounds retention to the most recent n records (ring semantics).
func (l *EventLog) SetCap(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cap = n
}

// SetRender overrides how teed lines are formatted (Record.String by
// default). Legacy sinks — core.Tracer's wall-clock trace format — hook
// in here so they can ride the obs pipeline without changing their bytes.
func (l *EventLog) SetRender(f func(Record) string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.render = f
}

// Emit records one event if it clears the level gate and the sampler.
// key is the event's stable sampling key (see Sampler.Admit).
func (l *EventLog) Emit(key uint64, lvl Level, name string, fields ...Field) {
	if l == nil || lvl < l.min {
		return
	}
	if l.sampler != nil && !l.sampler.Admit(name, key) {
		return
	}
	rec := Record{Level: lvl, Name: name, Fields: fields}
	l.append(rec)
}

// EmitAt is Emit with an explicit timestamp (virtual time in the emulator).
func (l *EventLog) EmitAt(at time.Duration, key uint64, lvl Level, name string, fields ...Field) {
	if l == nil || lvl < l.min {
		return
	}
	if l.sampler != nil && !l.sampler.Admit(name, key) {
		return
	}
	l.append(Record{At: at, Level: lvl, Name: name, Fields: fields})
}

func (l *EventLog) append(rec Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		line := ""
		if l.render != nil {
			line = l.render(rec)
		} else {
			line = rec.String()
		}
		fmt.Fprintln(l.w, line)
	}
	if l.cap > 0 && len(l.recs) >= l.cap {
		copy(l.recs, l.recs[1:])
		l.recs[len(l.recs)-1] = rec
		l.dropped++
		return
	}
	l.recs = append(l.recs, rec)
}

// Records returns a copy of the retained records in arrival order.
func (l *EventLog) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.recs...)
}

// Lines returns the retained records rendered one per line.
func (l *EventLog) Lines() []string {
	recs := l.Records()
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.String()
	}
	return out
}

// Dropped returns how many records the ring evicted.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
