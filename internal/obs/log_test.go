package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRecordString(t *testing.T) {
	r := Record{At: 12345678 * time.Microsecond, Level: LevelInfo, Name: "deliver",
		Fields: []Field{F("op", 3), F("node", 7), F("msg", "has space")}}
	want := `t=12.345678s lvl=info ev=deliver op=3 node=7 msg="has space"`
	if got := r.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestKeySamplerOrderIndependent(t *testing.T) {
	s := KeySampler{Seed: 42, N: 4}
	admitted := map[uint64]bool{}
	for k := uint64(0); k < 1000; k++ {
		admitted[k] = s.Admit("ev", k)
	}
	// Same decisions regardless of query order.
	for k := uint64(999); ; k-- {
		if s.Admit("ev", k) != admitted[k] {
			t.Fatalf("key %d: decision changed on re-query", k)
		}
		if k == 0 {
			break
		}
	}
	n := 0
	for _, ok := range admitted {
		if ok {
			n++
		}
	}
	// Roughly 1-in-4 of 1000 keys; the hash should land well inside [150, 350].
	if n < 150 || n > 350 {
		t.Errorf("admitted %d of 1000 keys at N=4", n)
	}
	// N<=1 admits all.
	all := KeySampler{Seed: 42, N: 1}
	if !all.Admit("ev", 12345) {
		t.Error("N=1 sampler rejected a key")
	}
}

func TestCountSampler(t *testing.T) {
	s := &CountSampler{Head: 3, Every: 5}
	var got []bool
	for i := 0; i < 14; i++ {
		got = append(got, s.Admit("ev", uint64(i)))
	}
	// Head 0,1,2 then every 5th after: 3, 8, 13.
	want := []bool{true, true, true, true, false, false, false, false, true, false, false, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %v want %v (%v)", i, got[i], want[i], got)
		}
	}
	// Names are tracked independently.
	if !s.Admit("other", 0) {
		t.Error("fresh name not admitted at head")
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	tb := &TokenBucket{Rate: 10, Burst: 2, Now: func() time.Time { return now }}
	if !tb.Admit("ev", 0) || !tb.Admit("ev", 0) {
		t.Fatal("burst of 2 not admitted")
	}
	if tb.Admit("ev", 0) {
		t.Fatal("admitted past burst with no elapsed time")
	}
	now = now.Add(100 * time.Millisecond) // refills 1 token at rate 10/s
	if !tb.Admit("ev", 0) {
		t.Fatal("refilled token not admitted")
	}
	if tb.Admit("ev", 0) {
		t.Fatal("admitted past refill")
	}
}

func TestEventLogSamplingAndRing(t *testing.T) {
	l := NewEventLog(KeySampler{Seed: 7, N: 2}, LevelInfo)
	for k := uint64(0); k < 100; k++ {
		l.EmitAt(time.Duration(k)*time.Millisecond, k, LevelInfo, "ev", F("k", k))
		l.EmitAt(time.Duration(k)*time.Millisecond, k, LevelDebug, "ev", F("k", k)) // below min
	}
	recs := l.Records()
	if len(recs) == 0 || len(recs) == 100 {
		t.Fatalf("sampler kept %d of 100", len(recs))
	}
	for _, r := range recs {
		if r.Level == LevelDebug {
			t.Fatal("level gate leaked a debug record")
		}
	}

	ring := NewEventLog(nil, LevelDebug)
	ring.SetCap(3)
	for i := 0; i < 5; i++ {
		ring.Emit(uint64(i), LevelInfo, "ev", F("i", i))
	}
	lines := ring.Lines()
	if len(lines) != 3 || !strings.Contains(lines[0], "i=2") || !strings.Contains(lines[2], "i=4") {
		t.Fatalf("ring retained %v", lines)
	}
	if ring.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", ring.Dropped())
	}
}

func TestEventLogWriter(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(nil, LevelDebug)
	l.SetWriter(&sb)
	l.EmitAt(time.Second, 0, LevelWarn, "late", F("x", 1))
	want := "t=1.000000s lvl=warn ev=late x=1\n"
	if sb.String() != want {
		t.Errorf("writer got %q want %q", sb.String(), want)
	}
}
