// Package obs is the observability plane: a zero-dependency metrics
// registry with Prometheus text-format exposition, a sampled structured
// event log, and end-to-end operation traces built from per-hop span
// records. It replaces the ad-hoc core.Counters/core.Tracer pair as the
// one instrumentation layer both execution backends report through — the
// virtual-time scenario engine snapshots a registry at phase boundaries,
// and `macedon agent` serves the same families over HTTP for `macedon
// deploy` to scrape and aggregate (docs/observability.md).
//
// Everything in the package is deterministic where the substrate is:
// counters and histogram buckets only ever accumulate by commutative
// atomic adds, exposition output is sorted, histogram sums are kept in
// integer nano-units so no float-addition order dependence can leak into
// golden output, and the samplers used by the emulated backend decide by
// key hash, never by arrival order.
package obs

// splitmix64 is the avalanche mixer used wherever the package needs a
// deterministic, order-independent hash of a small integer key (trace IDs,
// key-based sampling decisions). It is the same construction the simnet
// uses for per-link loss processes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
