package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter. It is a named uint64 — not an
// atomic.Uint64 — on purpose: statecopy captures and restores plain
// integer kinds, so engine counters embedded in forkable node state rewind
// correctly across checkpoint/restore, while sync/atomic struct types are
// deliberately skipped by the walker. Always use counters through the
// pointer the registry (or the owning struct) hands out.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { atomic.AddUint64((*uint64)(c), 1) }

// Add adds n.
func (c *Counter) Add(n uint64) { atomic.AddUint64((*uint64)(c), n) }

// Store overwrites the value: used by snapshot mirrors that copy an
// externally-accumulated total into the registry at a quiescent point.
func (c *Counter) Store(n uint64) { atomic.StoreUint64((*uint64)(c), n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return atomic.LoadUint64((*uint64)(c)) }

// Gauge is an atomic float64 (stored as bits).
type Gauge uint64

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { atomic.StoreUint64((*uint64)(g), math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(atomic.LoadUint64((*uint64)(g))) }

// Histogram is a fixed-bucket histogram: cumulative-on-exposition bucket
// counts plus an integer-nano sum. Observations are atomic adds, so the
// final counts of a sharded deterministic run are identical at any shard
// count — and the sum is accumulated in rounded nano-units precisely so
// that no float-addition ordering can make two equivalent runs differ.
type Histogram struct {
	bounds   []float64 // ascending upper bounds; +Inf is implicit
	counts   []Counter // len(bounds)+1, per-bucket (non-cumulative)
	count    Counter
	sumNanos Counter // sum of round(v * 1e9)
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]Counter, len(bounds)+1),
	}
}

// Observe records v into the bucket whose upper bound is the smallest
// bound >= v (Prometheus `le` semantics: bounds are inclusive).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Inc()
	h.count.Inc()
	h.sumNanos.Add(uint64(math.Round(v * 1e9)))
}

// HistSnapshot is a histogram's point-in-time copy.
type HistSnapshot struct {
	Bounds []float64
	// Counts holds per-bucket (non-cumulative) counts; the last entry is
	// the +Inf overflow bucket.
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    float64(h.sumNanos.Load()) / 1e9,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// String renders the snapshot as one deterministic line.
func (s HistSnapshot) String() string {
	var b strings.Builder
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		bound := "+Inf"
		if i < len(s.Bounds) {
			bound = formatFloat(s.Bounds[i])
		}
		fmt.Fprintf(&b, "le=%s:%d ", bound, cum)
	}
	fmt.Fprintf(&b, "sum=%s count=%d", formatFloat(s.Sum), s.Count)
	return b.String()
}

// LatencyBuckets are the default operation-latency bounds, in seconds.
var LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// HopBuckets are the default per-operation hop-count bounds.
var HopBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Label is one metric dimension.
type Label struct{ Key, Value string }

// L is shorthand for building a label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// kind tags a family for the TYPE exposition line.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled sample stream of a family.
type series struct {
	labels string // canonical rendered label set ("" or `{a="x",b="y"}`)
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is one metric family: a name, a type, and its labeled series.
type family struct {
	name, help string
	kind       kind
	series     map[string]*series
}

// Registry is a set of metric families with atomic hot-path handles and
// deterministic Prometheus text-format exposition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// renderLabels canonicalizes a label set (sorted by key).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	cp := append([]Label(nil), labels...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range cp {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating if needed) the family and series for a handle
// request, enforcing kind consistency.
func (r *Registry) lookup(name, help string, k kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: family %q registered as %s, requested as %s", name, f.kind, k))
	}
	ls := renderLabels(labels)
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter handle for name+labels, registering it on
// first use. Handle resolution takes a lock; the handle itself is atomic.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil && s.fn == nil {
		s.c = new(Counter)
	}
	return s.c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time: the collector pattern, used where an existing
// accumulator (engine counters, socket stats) is the source of truth.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindCounter, labels)
	s.fn = fn
	s.c = nil
}

// Gauge returns the gauge handle for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil && s.fn == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// GaugeFunc registers a gauge evaluated at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGauge, labels)
	s.fn = fn
	s.g = nil
}

// Histogram returns the histogram handle for name+labels, creating it with
// the given bounds on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// Families returns the sorted family names.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.fams))
	for n := range r.fams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// formatFloat renders a float the same way everywhere: shortest
// round-trippable form, so exposition output is diffable.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Text renders the registry in Prometheus text exposition format,
// deterministically: families sorted by name, series sorted by canonical
// label string, histogram buckets cumulative with an explicit +Inf.
func (r *Registry) Text() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.fams[n]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case f.kind == kindHistogram && s.h != nil:
				writeHistogram(&b, f.name, k, s.h.Snapshot())
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, k, formatFloat(s.fn()))
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, k, s.c.Load())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, k, formatFloat(s.g.Load()))
			}
		}
	}
	return b.String()
}

// writeHistogram emits one histogram series in exposition form.
func writeHistogram(b *strings.Builder, name, labels string, s HistSnapshot) {
	// Re-open the label set to append le.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		bound := "+Inf"
		if i < len(s.Bounds) {
			bound = formatFloat(s.Bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", name, open, bound, cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, s.Count)
}
