package obs

import (
	"os"
	"path/filepath"
	"testing"

	"macedon/internal/repo"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	cases := []struct {
		v      float64
		bucket int
	}{
		{0.5, 0}, {1, 0}, {1.0001, 1}, {2, 1}, {3, 2}, {4, 2}, {4.5, 3}, {100, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (snapshot %s)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 8 {
		t.Errorf("count: got %d want 8", s.Count)
	}
	// Sum is exact in nano-units: 0.5+1+1.0001+2+3+4+4.5+100 = 116.0001
	if got := s.Sum; got != 116.0001 {
		t.Errorf("sum: got %v want 116.0001", got)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", L("k", "v"))
	b := r.Counter("c_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counter handles")
	}
	c := r.Counter("c_total", "help", L("k", "w"))
	if a == c {
		t.Fatal("distinct labels returned the same handle")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Fatalf("aliased handle sees %d, want 3", b.Load())
	}
}

// TestExpositionGolden pins the exposition byte format: a registry with
// one of each family kind, labeled and unlabeled, must render exactly the
// checked-in golden. Regenerate with MACEDON_UPDATE_GOLDEN=1.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("macedon_ops_total", "Workload operations injected.", L("kind", "lookup")).Add(42)
	r.Counter("macedon_ops_total", "Workload operations injected.", L("kind", "multicast")).Add(7)
	r.Counter("macedon_msgs_sent_total", "Protocol messages sent.").Add(1234)
	g := r.Gauge("macedon_nodes_alive", "Nodes currently alive.")
	g.Set(32)
	r.GaugeFunc("macedon_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })
	h := r.Histogram("macedon_op_latency_seconds", "End-to-end op latency.", []float64{0.01, 0.1, 1}, L("phase", "churn"))
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	got := r.Text()

	path := repo.Path("testdata", "golden", "obs-exposition.txt")
	if os.Getenv("MACEDON_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with MACEDON_UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", L("x", "1")).Add(5)
	h := r.Histogram("lat_seconds", "L.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	text := r.Text()
	sc, err := ParseText([]byte(text))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if sc.Types["a_total"] != "counter" || sc.Types["lat_seconds"] != "histogram" {
		t.Fatalf("types: %v", sc.Types)
	}
	// One counter sample + 3 buckets + sum + count.
	if len(sc.Samples) != 6 {
		t.Fatalf("samples: got %d want 6: %v", len(sc.Samples), sc.Samples)
	}
	f := NewFleet()
	f.Add(sc)
	f.Add(sc)
	doubled, err := ParseText([]byte(f.Text()))
	if err != nil {
		t.Fatalf("ParseText(fleet): %v", err)
	}
	for _, s := range doubled.Samples {
		if s.Name == "a_total" && s.Value != 10 {
			t.Errorf("fleet sum: a_total = %v, want 10", s.Value)
		}
		if s.Name == "lat_seconds_count" && s.Value != 4 {
			t.Errorf("fleet sum: lat_seconds_count = %v, want 4", s.Value)
		}
	}
}
