package obs

import (
	"fmt"
	"strings"
	"time"
)

// SeriesPoint is one sample of a Series: a phase-relative virtual-time
// offset and one value per column.
type SeriesPoint struct {
	At     time.Duration
	Values []float64
}

// Series is a fixed-capacity ring of (virtual-time, snapshot) samples with
// a named column per tracked quantity. Sampling happens at deterministic
// virtual-time instants (phase boundaries plus a configurable intra-phase
// interval), so two runs of the same scenario — at any shard count —
// produce identical series. When the ring is full the oldest point is
// evicted; Dropped counts evictions so renderers can say so instead of
// silently truncating.
type Series struct {
	cols    []string
	cap     int
	pts     []SeriesPoint
	head    int // next write slot when full
	dropped int
}

// DefaultSeriesCap bounds a series when the caller doesn't choose one.
const DefaultSeriesCap = 256

// NewSeries builds an empty series over the given columns with the given
// point capacity (DefaultSeriesCap if capacity <= 0).
func NewSeries(cols []string, capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Series{cols: append([]string(nil), cols...), cap: capacity}
}

// Columns returns the column names.
func (s *Series) Columns() []string { return s.cols }

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.pts) }

// Append records one sample. len(values) must equal len(cols).
func (s *Series) Append(at time.Duration, values ...float64) {
	if len(values) != len(s.cols) {
		panic(fmt.Sprintf("obs: series append: %d values for %d columns", len(values), len(s.cols)))
	}
	p := SeriesPoint{At: at, Values: append([]float64(nil), values...)}
	if len(s.pts) < s.cap {
		s.pts = append(s.pts, p)
		return
	}
	s.pts[s.head] = p
	s.head = (s.head + 1) % s.cap
	s.dropped++
}

// Dropped returns how many points were evicted by the ring.
func (s *Series) Dropped() int { return s.dropped }

// Snapshot copies the series oldest-first.
func (s *Series) Snapshot() SeriesSnapshot {
	out := SeriesSnapshot{
		Columns: append([]string(nil), s.cols...),
		Points:  make([]SeriesPoint, 0, len(s.pts)),
		Dropped: s.dropped,
	}
	for i := 0; i < len(s.pts); i++ {
		p := s.pts[(s.head+i)%len(s.pts)]
		out.Points = append(out.Points, SeriesPoint{At: p.At, Values: append([]float64(nil), p.Values...)})
	}
	return out
}

// SeriesSnapshot is a series' point-in-time copy, oldest-first.
type SeriesSnapshot struct {
	Columns []string
	Points  []SeriesPoint
	Dropped int
}

// Lines renders the snapshot deterministically, one point per line:
//
//	t=+1.000000s events=42 pending=3
//
// using the same float formatting as the exposition renderer.
func (s SeriesSnapshot) Lines() []string {
	out := make([]string, 0, len(s.Points)+1)
	for _, p := range s.Points {
		var b strings.Builder
		fmt.Fprintf(&b, "t=%.6fs", p.At.Seconds())
		for i, c := range s.Columns {
			fmt.Fprintf(&b, " %s=%s", c, formatFloat(p.Values[i]))
		}
		out = append(out, b.String())
	}
	if s.Dropped > 0 {
		out = append(out, fmt.Sprintf("(ring dropped %d older points)", s.Dropped))
	}
	return out
}

// Column returns the values of one named column, oldest-first, and whether
// the column exists.
func (s SeriesSnapshot) Column(name string) ([]float64, bool) {
	for i, c := range s.Columns {
		if c == name {
			out := make([]float64, len(s.Points))
			for j, p := range s.Points {
				out[j] = p.Values[i]
			}
			return out, true
		}
	}
	return nil, false
}

// sparkRunes are the eight-level bar glyphs Sparkline draws with.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode bar string scaled to the value
// range; a flat series renders as all-low bars. Deterministic: pure
// function of the input.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}
