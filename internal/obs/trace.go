package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// TraceID identifies one end-to-end operation trace. It is minted at
// injection from (scenario seed, op ID), so an emulated run and a live run
// of the same scenario mint identical IDs for the same workload ops.
type TraceID uint64

// MintTraceID derives the trace ID for a workload op.
func MintTraceID(seed int64, op int) TraceID {
	return TraceID(splitmix64(uint64(seed) ^ (uint64(op) << 1)))
}

// SpanKind classifies one hop record.
type SpanKind uint8

const (
	// SpanInject marks the workload injection at the origin node.
	SpanInject SpanKind = iota
	// SpanForward marks an intermediate routing hop (the forward upcall).
	SpanForward
	// SpanDeliver marks delivery at the owner/root.
	SpanDeliver
)

func (k SpanKind) String() string {
	switch k {
	case SpanInject:
		return "inject"
	case SpanForward:
		return "forward"
	case SpanDeliver:
		return "deliver"
	}
	return "unknown"
}

// Span is one hop of an operation trace. Node is the observing node's
// index; Next is the next-hop node index for forwards (-1 otherwise).
type Span struct {
	Trace TraceID
	Op    int
	Kind  SpanKind
	Node  int
	Next  int
	At    time.Duration
}

// String renders the span as one canonical line.
func (s Span) String() string {
	if s.Kind == SpanForward && s.Next >= 0 {
		return fmt.Sprintf("trace=%016x op=%d t=%.6fs %s node=%d next=%d",
			uint64(s.Trace), s.Op, s.At.Seconds(), s.Kind, s.Node, s.Next)
	}
	return fmt.Sprintf("trace=%016x op=%d t=%.6fs %s node=%d",
		uint64(s.Trace), s.Op, s.At.Seconds(), s.Kind, s.Node)
}

// TraceSet collects spans from concurrent shards. Each shard appends to
// its own buffer with no synchronization against the others; Merged sorts
// by a total order that depends only on span content, so the merged
// sequence is identical at any shard count.
type TraceSet struct {
	mu     sync.Mutex
	global []Span
	shards [][]Span
}

// NewTraceSet sizes the set for n shards (shard -1, the coordinator,
// writes to a locked global buffer).
func NewTraceSet(n int) *TraceSet {
	return &TraceSet{shards: make([][]Span, n)}
}

// Record appends a span from the given shard. Shard -1 (or out of range)
// uses the locked global buffer; in-range shards append lock-free to
// their own slice, relying on the engine's guarantee that a shard's
// upcalls run on one goroutine at a time.
func (t *TraceSet) Record(shard int, s Span) {
	if shard >= 0 && shard < len(t.shards) {
		t.shards[shard] = append(t.shards[shard], s)
		return
	}
	t.mu.Lock()
	t.global = append(t.global, s)
	t.mu.Unlock()
}

// Merged returns every recorded span in the canonical total order:
// (At, Op, kind rank, Node, Next). Kind rank places inject before forward
// before deliver so ties at the same instant read in causal order.
func (t *TraceSet) Merged() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.global...)
	t.mu.Unlock()
	for _, sh := range t.shards {
		out = append(out, sh...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Next < b.Next
	})
	return out
}

// Chains groups the merged spans by trace ID, each chain in canonical
// order, returned sorted by op ID.
func (t *TraceSet) Chains() [][]Span {
	merged := t.Merged()
	byOp := make(map[int][]Span)
	ops := []int{}
	for _, s := range merged {
		if _, ok := byOp[s.Op]; !ok {
			ops = append(ops, s.Op)
		}
		byOp[s.Op] = append(byOp[s.Op], s)
	}
	sort.Ints(ops)
	out := make([][]Span, 0, len(ops))
	for _, op := range ops {
		out = append(out, byOp[op])
	}
	return out
}

// Lines renders the merged spans one per line.
func (t *TraceSet) Lines() []string {
	merged := t.Merged()
	out := make([]string, len(merged))
	for i, s := range merged {
		out[i] = s.String()
	}
	return out
}
