package obs

import (
	"reflect"
	"testing"
	"time"
)

func TestMintTraceIDStable(t *testing.T) {
	a := MintTraceID(42, 7)
	b := MintTraceID(42, 7)
	if a != b {
		t.Fatal("same (seed, op) minted different trace IDs")
	}
	if MintTraceID(42, 8) == a || MintTraceID(43, 7) == a {
		t.Fatal("distinct (seed, op) collided")
	}
}

// TestTraceSetMergeShardInvariant records the same spans under two
// different shard assignments and asserts the merged order is identical —
// the property that makes sim trace output byte-identical at -shards=1/4.
func TestTraceSetMergeShardInvariant(t *testing.T) {
	spans := []Span{
		{Trace: 1, Op: 0, Kind: SpanInject, Node: 2, Next: -1, At: 10 * time.Millisecond},
		{Trace: 1, Op: 0, Kind: SpanForward, Node: 2, Next: 5, At: 15 * time.Millisecond},
		{Trace: 1, Op: 0, Kind: SpanDeliver, Node: 5, Next: -1, At: 20 * time.Millisecond},
		{Trace: 2, Op: 1, Kind: SpanInject, Node: 0, Next: -1, At: 10 * time.Millisecond},
		{Trace: 2, Op: 1, Kind: SpanDeliver, Node: 0, Next: -1, At: 10 * time.Millisecond},
	}

	one := NewTraceSet(1)
	for _, s := range spans {
		one.Record(0, s)
	}
	four := NewTraceSet(4)
	// Reverse order, scattered across shards and the coordinator buffer.
	for i := len(spans) - 1; i >= 0; i-- {
		four.Record(i%4-1, spans[i]) // shard -1..2
	}
	if !reflect.DeepEqual(one.Merged(), four.Merged()) {
		t.Fatalf("merge differs across shard assignments:\n%v\n%v", one.Merged(), four.Merged())
	}

	// Causal tie-break: op 1's inject sorts before its deliver at the same
	// instant, and op 0's spans stay in hop order.
	m := one.Merged()
	if m[0].Op != 0 || m[0].Kind != SpanInject {
		t.Fatalf("first span = %v", m[0])
	}
	chains := one.Chains()
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	if chains[1][0].Kind != SpanInject || chains[1][1].Kind != SpanDeliver {
		t.Fatalf("op 1 chain out of causal order: %v", chains[1])
	}
}

func TestSpanString(t *testing.T) {
	f := Span{Trace: 0xabc, Op: 3, Kind: SpanForward, Node: 1, Next: 9, At: 1500 * time.Microsecond}
	if got, want := f.String(), "trace=0000000000000abc op=3 t=0.001500s forward node=1 next=9"; got != want {
		t.Errorf("got %q want %q", got, want)
	}
	d := Span{Trace: 0xabc, Op: 3, Kind: SpanDeliver, Node: 9, Next: -1, At: 2 * time.Millisecond}
	if got, want := d.String(), "trace=0000000000000abc op=3 t=0.002000s deliver node=9"; got != want {
		t.Errorf("got %q want %q", got, want)
	}
}
