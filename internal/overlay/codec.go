package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Message is a protocol control or data message: the unit the TRANSITIONS
// section of a specification receives and the transmission primitives of
// §3.3.1 send. Implementations are plain structs whose fields mirror the
// MESSAGE FIELDS of the specification; the codec methods are what the code
// generator emits.
type Message interface {
	// MsgName returns the message's grammar name, e.g. "join_reply".
	MsgName() string
	// Encode appends the message's wire form.
	Encode(w *Writer)
	// Decode parses the message's wire form; it must consume exactly what
	// Encode produced.
	Decode(r *Reader) error
}

// Errors returned by the codec layer.
var (
	ErrShortMessage   = errors.New("overlay: truncated message")
	ErrUnknownMessage = errors.New("overlay: unknown message type")
	ErrTooLarge       = errors.New("overlay: field exceeds codec limit")
)

// Writer accumulates the big-endian wire form of a message. The zero value
// is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer reusing buf's storage.
func NewWriter(buf []byte) *Writer { return &Writer{buf: buf[:0]} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes accumulated so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards accumulated bytes, retaining storage.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// I32 appends a big-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends a big-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends an IEEE-754 float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Addr appends a node address.
func (w *Writer) Addr(a Address) { w.U32(uint32(a)) }

// Key appends a hash key.
func (w *Writer) Key(k Key) { w.U32(uint32(k)) }

// Bytes32 appends a length-prefixed byte string (max 4 GiB).
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String16 appends a length-prefixed string (max 64 KiB).
func (w *Writer) String16(s string) {
	w.U16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// Addrs appends a length-prefixed address list: the grammar's "neighbor set"
// message field.
func (w *Writer) Addrs(as []Address) {
	w.U16(uint16(len(as)))
	for _, a := range as {
		w.Addr(a)
	}
}

// Keys appends a length-prefixed key list.
func (w *Writer) Keys(ks []Key) {
	w.U16(uint16(len(ks)))
	for _, k := range ks {
		w.Key(k)
	}
}

// Reader consumes the wire form of a message. It is sticky-error: after the
// first failure every accessor returns zero values and Err reports the
// failure, so Decode bodies read linearly without per-field checks.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = ErrShortMessage
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// U8 consumes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 consumes a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I32 consumes a big-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 consumes a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 consumes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool consumes a one-byte boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Addr consumes a node address.
func (r *Reader) Addr() Address { return Address(r.U32()) }

// Key consumes a hash key.
func (r *Reader) Key() Key { return Key(r.U32()) }

// Bytes32 consumes a length-prefixed byte string. The returned slice aliases
// the input buffer; callers that retain it must copy.
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	return r.take(n)
}

// String16 consumes a length-prefixed string.
func (r *Reader) String16() string {
	n := int(r.U16())
	return string(r.take(n))
}

// Addrs consumes a length-prefixed address list.
func (r *Reader) Addrs() []Address {
	n := int(r.U16())
	if r.err != nil {
		return nil
	}
	as := make([]Address, 0, n)
	for i := 0; i < n; i++ {
		as = append(as, r.Addr())
	}
	if r.err != nil {
		return nil
	}
	return as
}

// Keys consumes a length-prefixed key list.
func (r *Reader) Keys() []Key {
	n := int(r.U16())
	if r.err != nil {
		return nil
	}
	ks := make([]Key, 0, n)
	for i := 0; i < n; i++ {
		ks = append(ks, r.Key())
	}
	if r.err != nil {
		return nil
	}
	return ks
}

// Registry maps a protocol's message names to dense type identifiers and
// factories: the demultiplexing table the code generator emits for each
// specification (§3.2).
type Registry struct {
	proto   string
	byName  map[string]uint16
	entries []registryEntry
}

type registryEntry struct {
	name    string
	factory func() Message
}

// NewRegistry returns an empty registry for the named protocol.
func NewRegistry(proto string) *Registry {
	return &Registry{proto: proto, byName: make(map[string]uint16)}
}

// Proto returns the protocol name the registry belongs to.
func (r *Registry) Proto() string { return r.proto }

// Register assigns the next type identifier to the named message. It panics
// on duplicate names: registries are built once at protocol construction, so
// a duplicate is a programming error.
func (r *Registry) Register(name string, factory func() Message) uint16 {
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("overlay: duplicate message %q in protocol %q", name, r.proto))
	}
	id := uint16(len(r.entries))
	r.byName[name] = id
	r.entries = append(r.entries, registryEntry{name: name, factory: factory})
	return id
}

// ID returns the type identifier for the named message.
func (r *Registry) ID(name string) (uint16, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Len returns the number of registered message types.
func (r *Registry) Len() int { return len(r.entries) }

// Name returns the message name for a type identifier.
func (r *Registry) Name(id uint16) string {
	if int(id) >= len(r.entries) {
		return fmt.Sprintf("msg(%d)", id)
	}
	return r.entries[id].name
}

// New instantiates an empty message of the identified type.
func (r *Registry) New(id uint16) (Message, error) {
	if int(id) >= len(r.entries) {
		return nil, fmt.Errorf("%w: protocol %q id %d", ErrUnknownMessage, r.proto, id)
	}
	return r.entries[id].factory(), nil
}

// EncodeMessage renders a message with its type header: [type u16][body].
func EncodeMessage(reg *Registry, m Message) ([]byte, error) {
	id, ok := reg.ID(m.MsgName())
	if !ok {
		return nil, fmt.Errorf("%w: protocol %q message %q", ErrUnknownMessage, reg.Proto(), m.MsgName())
	}
	var w Writer
	w.U16(id)
	m.Encode(&w)
	return w.Bytes(), nil
}

// DecodeMessage parses a [type u16][body] frame produced by EncodeMessage.
func DecodeMessage(reg *Registry, frame []byte) (Message, error) {
	r := NewReader(frame)
	id := r.U16()
	if err := r.Err(); err != nil {
		return nil, err
	}
	m, err := reg.New(id)
	if err != nil {
		return nil, err
	}
	if err := m.Decode(r); err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
