package overlay

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// testMsg exercises every codec field type.
type testMsg struct {
	A   uint8
	B   uint16
	C   uint32
	D   uint64
	E   int32
	F   int64
	G   float64
	H   bool
	Src Address
	Dst Key
	Buf []byte
	S   string
	As  []Address
	Ks  []Key
}

func (m *testMsg) MsgName() string { return "test" }

func (m *testMsg) Encode(w *Writer) {
	w.U8(m.A)
	w.U16(m.B)
	w.U32(m.C)
	w.U64(m.D)
	w.I32(m.E)
	w.I64(m.F)
	w.F64(m.G)
	w.Bool(m.H)
	w.Addr(m.Src)
	w.Key(m.Dst)
	w.Bytes32(m.Buf)
	w.String16(m.S)
	w.Addrs(m.As)
	w.Keys(m.Ks)
}

func (m *testMsg) Decode(r *Reader) error {
	m.A = r.U8()
	m.B = r.U16()
	m.C = r.U32()
	m.D = r.U64()
	m.E = r.I32()
	m.F = r.I64()
	m.G = r.F64()
	m.H = r.Bool()
	m.Src = r.Addr()
	m.Dst = r.Key()
	m.Buf = append([]byte(nil), r.Bytes32()...)
	m.S = r.String16()
	m.As = r.Addrs()
	m.Ks = r.Keys()
	return r.Err()
}

func TestCodecRoundTrip(t *testing.T) {
	in := &testMsg{
		A: 7, B: 300, C: 70000, D: 1 << 40, E: -5, F: -1 << 50,
		G: 3.25, H: true, Src: 99, Dst: 0xdeadbeef,
		Buf: []byte("payload"), S: "hello",
		As: []Address{1, 2, 3}, Ks: []Key{10, 20},
	}
	var w Writer
	in.Encode(&w)
	out := &testMsg{}
	if err := out.Decode(NewReader(w.Bytes())); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.A != in.A || out.B != in.B || out.C != in.C || out.D != in.D ||
		out.E != in.E || out.F != in.F || out.G != in.G || out.H != in.H ||
		out.Src != in.Src || out.Dst != in.Dst || out.S != in.S {
		t.Fatalf("scalar mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Buf, in.Buf) {
		t.Fatalf("buf mismatch: %q vs %q", out.Buf, in.Buf)
	}
	if len(out.As) != 3 || out.As[1] != 2 || len(out.Ks) != 2 || out.Ks[1] != 20 {
		t.Fatalf("list mismatch: %+v", out)
	}
}

// Property: random scalar messages round-trip exactly.
func TestCodecRoundTripQuick(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, e int32, g float64, h bool, buf []byte, s string) bool {
		if g != g { // NaN: equality can't verify round trip; skip
			return true
		}
		in := &testMsg{A: a, B: b, C: c, D: d, E: e, G: g, H: h, Buf: buf, S: s}
		if len(in.S) > 1000 {
			in.S = in.S[:1000]
		}
		var w Writer
		in.Encode(&w)
		out := &testMsg{}
		if err := out.Decode(NewReader(w.Bytes())); err != nil {
			return false
		}
		return out.A == in.A && out.B == in.B && out.C == in.C && out.D == in.D &&
			out.E == in.E && out.G == in.G && out.H == in.H &&
			bytes.Equal(out.Buf, in.Buf) && out.S == in.S
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	in := &testMsg{Buf: []byte("0123456789"), S: "s"}
	var w Writer
	in.Encode(&w)
	full := w.Bytes()
	// Every strict prefix must fail with ErrShortMessage, never panic.
	for n := 0; n < len(full); n++ {
		out := &testMsg{}
		err := out.Decode(NewReader(full[:n]))
		if !errors.Is(err, ErrShortMessage) {
			t.Fatalf("prefix %d: err = %v, want ErrShortMessage", n, err)
		}
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U32() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	if got := r.U8(); got != 0 {
		t.Fatalf("post-error read = %d, want 0", got)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry("p")
	idA := reg.Register("a", func() Message { return &testMsg{} })
	idB := reg.Register("b", func() Message { return &testMsg{} })
	if idA == idB {
		t.Fatal("duplicate ids")
	}
	if got, ok := reg.ID("a"); !ok || got != idA {
		t.Fatalf("ID(a) = %d,%v", got, ok)
	}
	if reg.Name(idB) != "b" {
		t.Fatalf("Name(idB) = %q", reg.Name(idB))
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d", reg.Len())
	}
	if _, err := reg.New(99); err == nil {
		t.Fatal("New(99) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	reg.Register("a", func() Message { return &testMsg{} })
}

func TestEncodeDecodeMessage(t *testing.T) {
	reg := NewRegistry("p")
	reg.Register("test", func() Message { return &testMsg{} })
	in := &testMsg{C: 42, S: "x"}
	frame, err := EncodeMessage(reg, in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMessage(reg, frame)
	if err != nil {
		t.Fatal(err)
	}
	if m.(*testMsg).C != 42 {
		t.Fatalf("round trip lost field: %+v", m)
	}
	if _, err := DecodeMessage(reg, []byte{0}); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short frame err = %v", err)
	}
	if _, err := DecodeMessage(reg, []byte{0xff, 0xff}); !errors.Is(err, ErrUnknownMessage) {
		t.Fatalf("unknown type err = %v", err)
	}
	// Unregistered message name on the encode side.
	other := NewRegistry("q")
	if _, err := EncodeMessage(other, in); !errors.Is(err, ErrUnknownMessage) {
		t.Fatalf("unregistered encode err = %v", err)
	}
}
