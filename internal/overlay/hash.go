package overlay

import (
	"crypto/sha1"
	"encoding/binary"
)

// HashBytes maps arbitrary bytes onto the 32-bit hash address space using
// SHA-1, the hash the MACEDON libraries provide ("SHA hashing" in Figure 5).
// The digest is truncated to the keyspace width; truncation of a
// cryptographic hash preserves the uniformity consistent hashing relies on.
func HashBytes(b []byte) Key {
	sum := sha1.Sum(b)
	return Key(binary.BigEndian.Uint32(sum[:4]))
}

// HashString maps a string (e.g. a group name) onto the keyspace.
func HashString(s string) Key { return HashBytes([]byte(s)) }

// HashAddress maps a node address onto the keyspace: the node-identifier
// assignment used by Chord and Pastry ("it could be a hash of an IP
// address"). Nodes hash to the same key in every protocol, matching the
// paper's arrangement that its Chord and MIT lsd hash nodes identically.
func HashAddress(a Address) Key {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(a))
	return HashBytes(buf[:])
}
