// Package overlay defines the shared vocabulary of the MACEDON system: node
// addresses, the 32-bit hash keyspace used by hash-addressed protocols, the
// message abstraction with its binary wire codec, the overlay-generic API
// identifiers of Figure 3 of the paper, and transport/priority classes.
//
// Every other package — the engine, the transports, the emulator, and the
// protocol implementations — speaks in these types.
package overlay

import (
	"fmt"
)

// Address identifies an overlay node, playing the role of an IPv4 address in
// the paper ("addressing ip"). Address 0 is reserved and never assigned.
type Address int32

// NilAddress is the zero Address; it is never assigned to a node.
const NilAddress Address = 0

// String renders the address in dotted-quad style for traces.
func (a Address) String() string {
	u := uint32(a)
	return fmt.Sprintf("%d.%d.%d.%d", u>>24, (u>>16)&0xff, (u>>8)&0xff, u&0xff)
}

// Key is a point in the 32-bit circular hash address space ("addressing
// hash"). The paper notes its Chord uses a 32-bit hash space; we use the same
// space for every hash-addressed protocol so that nodes hash to identical
// positions across DHTs.
type Key uint32

// KeyBits is the width of the hash address space.
const KeyBits = 32

// String renders the key as fixed-width hex, which keeps traces alignable.
func (k Key) String() string { return fmt.Sprintf("%08x", uint32(k)) }

// Distance returns the clockwise ring distance from k to other.
func (k Key) Distance(other Key) uint32 { return uint32(other) - uint32(k) }

// Between reports whether k lies in the clockwise open interval (a, b).
// When a == b the interval is the whole ring minus the endpoint.
func (k Key) Between(a, b Key) bool {
	if a == b {
		return k != a
	}
	return a.Distance(k) != 0 && a.Distance(k) < a.Distance(b)
}

// BetweenIncl reports whether k lies in the clockwise half-open interval
// (a, b]: the Chord successor test.
func (k Key) BetweenIncl(a, b Key) bool {
	if a == b {
		return true
	}
	return a.Distance(k) != 0 && a.Distance(k) <= a.Distance(b)
}

// Digit returns the i-th base-2^b digit of the key, counting from the most
// significant digit. Pastry's prefix routing uses b=4 (hex digits).
func (k Key) Digit(i, b int) int {
	shift := KeyBits - (i+1)*b
	if shift < 0 {
		return 0
	}
	return int((uint32(k) >> uint(shift)) & ((1 << uint(b)) - 1))
}

// WithDigit returns a copy of k with its i-th base-2^b digit replaced by d.
func (k Key) WithDigit(i, b, d int) Key {
	shift := KeyBits - (i+1)*b
	if shift < 0 {
		return k
	}
	mask := uint32((1<<uint(b))-1) << uint(shift)
	return Key((uint32(k) &^ mask) | (uint32(d) << uint(shift) & mask))
}

// SharedPrefix returns the number of leading base-2^b digits k and other
// share. Pastry's routing-table row selection.
func (k Key) SharedPrefix(other Key, b int) int {
	n := KeyBits / b
	for i := 0; i < n; i++ {
		if k.Digit(i, b) != other.Digit(i, b) {
			return i
		}
	}
	return n
}

// KeyStep returns k + 2^i on the ring: the target of Chord's i-th finger.
// The shift wraps modulo the keyspace width so any non-negative index is
// safe (generated code passes spec-controlled indices through here).
func KeyStep(k Key, i int) Key {
	return Key(uint32(k) + 1<<(uint(i)%KeyBits))
}

// RingDiff returns the minimum of the clockwise and counter-clockwise
// distances between a and b: the metric Pastry leaf sets minimize.
func RingDiff(a, b Key) uint32 {
	d := a.Distance(b)
	if d2 := b.Distance(a); d2 < d {
		return d2
	}
	return d
}

// Priority classes for message transmission, highest first. A message sent
// with PriorityDefault uses the transport its declaration binds it to.
const (
	PriorityDefault = -1
	PriorityHighest = 0
	PriorityHigh    = 1
	PriorityMed     = 2
	PriorityLow     = 3
	PriorityBestEff = 4
)

// TransportKind names the three MACEDON transport disciplines of §3.1.
type TransportKind uint8

const (
	// TCP is reliable, in-order, congestion-friendly (slow start + AIMD).
	TCP TransportKind = iota
	// UDP is unreliable and congestion-unfriendly.
	UDP
	// SWP is the simple sliding-window protocol: reliable, in-order, but
	// congestion-unfriendly (fixed window, no backoff of the send rate).
	SWP
)

// String returns the grammar keyword for the transport kind.
func (t TransportKind) String() string {
	switch t {
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	case SWP:
		return "SWP"
	}
	return fmt.Sprintf("TransportKind(%d)", uint8(t))
}

// API identifies the API transition kinds of the grammar (Figure 4): the
// calls a layer above (or the application) makes into a protocol instance.
type API uint8

const (
	APIInit API = iota
	APIRoute
	APIRouteIP
	APIMulticast
	APIAnycast
	APICollect
	APICreateGroup
	APIJoin
	APILeave
	APIError       // failure detector reports a monitored neighbor dead
	APINotify      // lower layer reports a changed neighbor set
	APIUpcallExt   // extensible upcall (lower layer -> this layer)
	APIDowncallExt // extensible downcall (higher layer -> this layer)
)

var apiNames = [...]string{
	APIInit:        "init",
	APIRoute:       "route",
	APIRouteIP:     "routeIP",
	APIMulticast:   "multicast",
	APIAnycast:     "anycast",
	APICollect:     "collect",
	APICreateGroup: "create_group",
	APIJoin:        "join",
	APILeave:       "leave",
	APIError:       "error",
	APINotify:      "notify",
	APIUpcallExt:   "upcall_ext",
	APIDowncallExt: "downcall_ext",
}

// String returns the grammar keyword for the API kind.
func (a API) String() string {
	if int(a) < len(apiNames) {
		return apiNames[a]
	}
	return fmt.Sprintf("API(%d)", uint8(a))
}

// APIByName maps a grammar keyword back to its API kind.
func APIByName(name string) (API, bool) {
	for i, n := range apiNames {
		if n == name {
			return API(i), true
		}
	}
	return 0, false
}

// NeighborType tags notify() upcalls with which neighbor relationship
// changed, mirroring the paper's NBR_TYPE_* constants.
type NeighborType uint8

const (
	NbrTypeParent NeighborType = iota
	NbrTypeChild
	NbrTypeSibling
	NbrTypePeer
	NbrTypeSuccessor
	NbrTypePredecessor
	NbrTypeFinger
	NbrTypeLeafSet
	NbrTypeRouteRow
	NbrTypeClusterMember
	NbrTypeMeshPeer
)

var nbrNames = [...]string{
	NbrTypeParent:        "parent",
	NbrTypeChild:         "child",
	NbrTypeSibling:       "sibling",
	NbrTypePeer:          "peer",
	NbrTypeSuccessor:     "successor",
	NbrTypePredecessor:   "predecessor",
	NbrTypeFinger:        "finger",
	NbrTypeLeafSet:       "leafset",
	NbrTypeRouteRow:      "routerow",
	NbrTypeClusterMember: "clustermember",
	NbrTypeMeshPeer:      "meshpeer",
}

// String names the neighbor type.
func (n NeighborType) String() string {
	if int(n) < len(nbrNames) {
		return nbrNames[n]
	}
	return fmt.Sprintf("NeighborType(%d)", uint8(n))
}
