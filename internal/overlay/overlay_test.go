package overlay

import (
	"testing"
	"testing/quick"
)

func TestKeyBetween(t *testing.T) {
	cases := []struct {
		k, a, b Key
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},                 // open at a
		{10, 1, 10, false},                // open at b
		{0xfffffff0, 0xffffff00, 5, true}, // wraps zero
		{3, 0xffffff00, 5, true},
		{6, 0xffffff00, 5, false},
		{7, 10, 10, true}, // a==b: whole ring minus endpoint
		{10, 10, 10, false},
	}
	for _, c := range cases {
		if got := c.k.Between(c.a, c.b); got != c.want {
			t.Errorf("Key(%v).Between(%v,%v) = %v, want %v", c.k, c.a, c.b, got, c.want)
		}
	}
}

func TestKeyBetweenIncl(t *testing.T) {
	cases := []struct {
		k, a, b Key
		want    bool
	}{
		{10, 1, 10, true}, // closed at b
		{1, 1, 10, false},
		{5, 10, 10, true}, // a==b: everything qualifies
		{2, 0xfffffffe, 3, true},
	}
	for _, c := range cases {
		if got := c.k.BetweenIncl(c.a, c.b); got != c.want {
			t.Errorf("Key(%v).BetweenIncl(%v,%v) = %v, want %v", c.k, c.a, c.b, got, c.want)
		}
	}
}

// Property: for distinct a, b, k with k != a and k != b, exactly one of
// k in (a,b) and k in (b,a) holds — the two arcs partition the ring.
func TestKeyBetweenPartitionsRing(t *testing.T) {
	f := func(k, a, b Key) bool {
		if k == a || k == b || a == b {
			return true // excluded endpoints; vacuously fine
		}
		return k.Between(a, b) != k.Between(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDigits(t *testing.T) {
	k := Key(0x12345678)
	want := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for i, d := range want {
		if got := k.Digit(i, 4); got != d {
			t.Errorf("Digit(%d) = %x, want %x", i, got, d)
		}
	}
	if got := k.WithDigit(0, 4, 0xf); got != Key(0xf2345678) {
		t.Errorf("WithDigit(0,4,f) = %v", got)
	}
	if got := k.WithDigit(7, 4, 0); got != Key(0x12345670) {
		t.Errorf("WithDigit(7,4,0) = %v", got)
	}
}

func TestKeySharedPrefix(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{0x12345678, 0x12345678, 8},
		{0x12345678, 0x12345679, 7},
		{0x12345678, 0x22345678, 0},
		{0xabcd0000, 0xabcf0000, 3},
	}
	for _, c := range cases {
		if got := c.a.SharedPrefix(c.b, 4); got != c.want {
			t.Errorf("SharedPrefix(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: digit decomposition round-trips through WithDigit.
func TestKeyDigitRoundTrip(t *testing.T) {
	f := func(k Key) bool {
		var rebuilt Key
		for i := 0; i < 8; i++ {
			rebuilt = rebuilt.WithDigit(i, 4, k.Digit(i, 4))
		}
		return rebuilt == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingDiffSymmetric(t *testing.T) {
	f := func(a, b Key) bool { return RingDiff(a, b) == RingDiff(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDeterminism(t *testing.T) {
	if HashString("bullet") != HashString("bullet") {
		t.Fatal("HashString not deterministic")
	}
	if HashAddress(42) != HashAddress(42) {
		t.Fatal("HashAddress not deterministic")
	}
	if HashString("scribe") == HashString("chord") {
		t.Fatal("distinct strings should hash apart (collision in test vectors)")
	}
}

func TestAddressString(t *testing.T) {
	if got := Address(0x0a000001).String(); got != "10.0.0.1" {
		t.Errorf("Address string = %q", got)
	}
}

func TestAPIRoundTrip(t *testing.T) {
	for a := APIInit; a <= APIDowncallExt; a++ {
		got, ok := APIByName(a.String())
		if !ok || got != a {
			t.Errorf("APIByName(%q) = %v,%v", a.String(), got, ok)
		}
	}
	if _, ok := APIByName("bogus"); ok {
		t.Error("APIByName accepted bogus name")
	}
}
