// Package ammo implements AMMO [21] — Adaptive Multi-Metric Overlays — as a
// MACEDON agent, the system the paper says MACEDON's design process guided.
// AMMO maintains a degree-bounded multicast tree and continuously re-optimizes
// each node's choice of parent against a configurable cost function over
// multiple network metrics (here latency and bandwidth, the two the paper's
// overlays trade off). Candidates come from the node's tree relatives; every
// probe carries the candidate's root path so adaptation never creates cycles.
package ammo

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol and the cost function.
type Params struct {
	// WeightLatency scales the RTT term (cost per millisecond).
	WeightLatency float64
	// WeightBandwidth scales the inverse-bandwidth term (cost per inverse
	// Mbps). Setting one weight to zero yields a single-metric overlay.
	WeightBandwidth float64
	// SwitchGain is the relative cost improvement required to move
	// (default 1.2: 20% better).
	SwitchGain float64
	// EvalPeriod is the re-evaluation cadence (default 8 s).
	EvalPeriod time.Duration
	// MaxDegree bounds children (default 4).
	MaxDegree int
}

func (p *Params) setDefaults() {
	if p.WeightLatency == 0 && p.WeightBandwidth == 0 {
		p.WeightLatency = 1
	}
	if p.SwitchGain <= 1 {
		p.SwitchGain = 1.2
	}
	if p.EvalPeriod <= 0 {
		p.EvalPeriod = 8 * time.Second
	}
	if p.MaxDegree <= 0 {
		p.MaxDegree = 4
	}
}

// New returns a factory for AMMO agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

// --- messages ----------------------------------------------------------------

type joinMsg struct{}

func (m *joinMsg) MsgName() string                { return "join" }
func (m *joinMsg) Encode(*overlay.Writer)         {}
func (m *joinMsg) Decode(r *overlay.Reader) error { return r.Err() }

type joinReply struct {
	Accept   bool
	Redirect overlay.Address
	RootPath []overlay.Address // receiver's path to the root, receiver first
	Family   []overlay.Address // receiver's parent + other children
}

func (m *joinReply) MsgName() string { return "join_reply" }
func (m *joinReply) Encode(w *overlay.Writer) {
	w.Bool(m.Accept)
	w.Addr(m.Redirect)
	w.Addrs(m.RootPath)
	w.Addrs(m.Family)
}
func (m *joinReply) Decode(r *overlay.Reader) error {
	m.Accept = r.Bool()
	m.Redirect = r.Addr()
	m.RootPath = r.Addrs()
	m.Family = r.Addrs()
	return r.Err()
}

type leaveMsg struct{}

func (m *leaveMsg) MsgName() string                { return "leave" }
func (m *leaveMsg) Encode(*overlay.Writer)         {}
func (m *leaveMsg) Decode(r *overlay.Reader) error { return r.Err() }

type pathUpdate struct {
	RootPath []overlay.Address
	Family   []overlay.Address
}

func (m *pathUpdate) MsgName() string { return "path_update" }
func (m *pathUpdate) Encode(w *overlay.Writer) {
	w.Addrs(m.RootPath)
	w.Addrs(m.Family)
}
func (m *pathUpdate) Decode(r *overlay.Reader) error {
	m.RootPath = r.Addrs()
	m.Family = r.Addrs()
	return r.Err()
}

type probeReq struct {
	Nonce uint32
}

func (m *probeReq) MsgName() string                { return "probe_req" }
func (m *probeReq) Encode(w *overlay.Writer)       { w.U32(m.Nonce) }
func (m *probeReq) Decode(r *overlay.Reader) error { m.Nonce = r.U32(); return r.Err() }

type probeResp struct {
	Nonce     uint32
	RootPath  []overlay.Address
	Children  uint16
	Capacity  uint16
	Bandwidth float64 // candidate's own access-bandwidth estimate, bps
}

func (m *probeResp) MsgName() string { return "probe_resp" }
func (m *probeResp) Encode(w *overlay.Writer) {
	w.U32(m.Nonce)
	w.Addrs(m.RootPath)
	w.U16(m.Children)
	w.U16(m.Capacity)
	w.F64(m.Bandwidth)
}
func (m *probeResp) Decode(r *overlay.Reader) error {
	m.Nonce = r.U32()
	m.RootPath = r.Addrs()
	m.Children = r.U16()
	m.Capacity = r.U16()
	m.Bandwidth = r.F64()
	return r.Err()
}

type mdata struct {
	Src     overlay.Address
	Inc     uint64 // source incarnation stamp: restarts reset Seq, not Inc order
	Seq     uint32
	Typ     int32
	Payload []byte
}

func (m *mdata) MsgName() string { return "mdata" }
func (m *mdata) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.U64(m.Inc)
	w.U32(m.Seq)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *mdata) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Inc = r.U64()
	m.Seq = r.U32()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// pktKey identifies one multicast packet across source restarts: a revived
// source's Seq counter restarts at zero, and without the incarnation stamp
// its fresh stream would be deduplicated against its dead predecessor's —
// the class the kill/revive churn audit flushes out (same fix as NICE and
// Overcast in PR 2).
type pktKey struct {
	src overlay.Address
	inc uint64
	seq uint32
}

// --- protocol ------------------------------------------------------------------

type probeState struct {
	to overlay.Address
	at time.Time
}

type candidateInfo struct {
	rtt       time.Duration
	bandwidth float64
	rootPath  []overlay.Address
	full      bool
}

// Protocol is one node's AMMO instance.
type Protocol struct {
	p Params

	self overlay.Address
	root overlay.Address

	rootPath []overlay.Address // self first, root last
	family   []overlay.Address // grandparent + siblings (candidates)

	probes    map[uint32]probeState
	nextNonce uint32
	pending   map[overlay.Address]*candidateInfo
	awaiting  int

	parentCost float64
	moves      uint64

	inc     uint64 // incarnation stamp carried on our own mdata
	nextSeq uint32
	seen    map[pktKey]bool
}

// ProtocolName implements the engine's naming hook.
func (a *Protocol) ProtocolName() string { return "ammo" }

// Moves counts adaptations (for the ablation benches).
func (a *Protocol) Moves() uint64 { return a.moves }

// RootPath returns this node's current path to the root.
func (a *Protocol) RootPath() []overlay.Address {
	return append([]overlay.Address(nil), a.rootPath...)
}

// Define declares the AMMO FSM: the Go equivalent of ammo.mac.
func (a *Protocol) Define(d *core.Def) {
	d.States("joining", "joined")
	d.Addressing(core.IPAddressing)

	d.UDPTransport("CTRL")
	d.TCPTransport("DATA")

	d.Message("join", func() overlay.Message { return &joinMsg{} }, "CTRL")
	d.Message("join_reply", func() overlay.Message { return &joinReply{} }, "CTRL")
	d.Message("leave", func() overlay.Message { return &leaveMsg{} }, "CTRL")
	d.Message("path_update", func() overlay.Message { return &pathUpdate{} }, "CTRL")
	d.Message("probe_req", func() overlay.Message { return &probeReq{} }, "CTRL")
	d.Message("probe_resp", func() overlay.Message { return &probeResp{} }, "CTRL")
	d.Message("mdata", func() overlay.Message { return &mdata{} }, "DATA")

	d.PeriodicTimer("eval", a.p.EvalPeriod)
	d.Timer("probe_deadline", 3*time.Second)
	d.Timer("join_retry", 5*time.Second)
	d.NeighborList("parent", 1, true)
	d.NeighborList("kids", a.p.MaxDegree, true)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, a.apiInit)
	d.OnAPI(overlay.APIMulticast, core.In("joined"), core.Read, a.apiMulticast)
	d.OnAPI(overlay.APIError, core.Any, core.Write, a.apiError)

	d.OnRecv("join", core.In("joined"), core.Write, a.recvJoin)
	d.OnRecv("join_reply", core.In("joining"), core.Write, a.recvJoinReply)
	d.OnRecv("leave", core.Any, core.Write, a.recvLeave)
	d.OnRecv("path_update", core.Any, core.Write, a.recvPathUpdate)
	d.OnRecv("probe_req", core.Any, core.Read, a.recvProbeReq)
	d.OnRecv("probe_resp", core.Any, core.Write, a.recvProbeResp)
	d.OnRecv("mdata", core.Not(core.In(core.StateInit)), core.Read, a.recvMdata)

	d.OnTimer("eval", core.In("joined"), core.Write, a.onEval)
	d.OnTimer("probe_deadline", core.In("joined"), core.Write, a.onProbeDeadline)
	d.OnTimer("join_retry", core.In("joining"), core.Write, a.onJoinRetry)
}

// onJoinRetry fires while still joining: a join (or its reply) was lost —
// the root may have been down when we asked. Fall back to the root, the one
// address every member knows, and keep trying; without this an orphan whose
// join raced the root's outage stays detached forever.
func (a *Protocol) onJoinRetry(ctx *core.Context) {
	_ = ctx.Send(a.root, &joinMsg{}, overlay.PriorityDefault)
	ctx.TimerResched("join_retry", 5*time.Second)
}

func (a *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	a.self = ctx.Self()
	a.root = call.Bootstrap
	// Incarnation stamp: the full virtual-nanosecond clock reading, strictly
	// later at any later event, so a restarted source never repeats one.
	a.inc = uint64(ctx.Now().UnixNano())
	a.probes = make(map[uint32]probeState)
	a.pending = make(map[overlay.Address]*candidateInfo)
	a.seen = make(map[pktKey]bool)
	if a.root == a.self || a.root == overlay.NilAddress {
		a.rootPath = []overlay.Address{a.self}
		ctx.StateChange("joined")
		ctx.TimerSched("eval", a.jitter(ctx, a.p.EvalPeriod))
		return
	}
	ctx.StateChange("joining")
	_ = ctx.Send(a.root, &joinMsg{}, overlay.PriorityDefault)
	ctx.TimerResched("join_retry", 5*time.Second)
}

func (a *Protocol) jitter(ctx *core.Context, d time.Duration) time.Duration {
	return d*3/4 + time.Duration(ctx.Rand().Int63n(int64(d)/2+1))
}

func (a *Protocol) familyOf(exclude overlay.Address) []overlay.Address {
	var fam []overlay.Address
	if p := a.parentAddr(); p != overlay.NilAddress {
		fam = append(fam, p)
	}
	return fam
}

func (a *Protocol) parentAddr() overlay.Address {
	if len(a.rootPath) > 1 {
		return a.rootPath[1]
	}
	return overlay.NilAddress
}

func (a *Protocol) recvJoin(ctx *core.Context, ev *core.MsgEvent) {
	kids := ctx.Neighbors("kids")
	if !kids.Contains(ev.From) && kids.Full() {
		child := kids.Random(ctx.Rand())
		_ = ctx.Send(ev.From, &joinReply{Redirect: child.Addr}, overlay.PriorityDefault)
		return
	}
	kids.Add(ev.From)
	fam := a.familyOf(ev.From)
	for _, k := range kids.Addrs() {
		if k != ev.From {
			fam = append(fam, k)
		}
	}
	_ = ctx.Send(ev.From, &joinReply{Accept: true, RootPath: a.rootPath, Family: fam}, overlay.PriorityDefault)
	ctx.NotifyNeighbors(overlay.NbrTypeChild, kids.Addrs())
}

func (a *Protocol) recvJoinReply(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinReply)
	if !m.Accept {
		target := m.Redirect
		if target == overlay.NilAddress || target == a.self {
			target = a.root
		}
		_ = ctx.Send(target, &joinMsg{}, overlay.PriorityDefault)
		return
	}
	parent := ctx.Neighbors("parent")
	if old := parent.First(); old != nil && old.Addr != ev.From {
		_ = ctx.Send(old.Addr, &leaveMsg{}, overlay.PriorityDefault)
	}
	parent.Clear()
	parent.Add(ev.From)
	a.rootPath = append([]overlay.Address{a.self}, m.RootPath...)
	a.family = m.Family
	a.parentCost = 0 // re-measured on the next eval
	ctx.TimerCancel("join_retry")
	ctx.StateChange("joined")
	ctx.TimerSched("eval", a.jitter(ctx, a.p.EvalPeriod))
	ctx.NotifyNeighbors(overlay.NbrTypeParent, []overlay.Address{ev.From})
	a.pushPathUpdates(ctx)
}

// pushPathUpdates refreshes children's root paths after ours changed.
func (a *Protocol) pushPathUpdates(ctx *core.Context) {
	kids := ctx.Neighbors("kids")
	for _, k := range kids.Addrs() {
		fam := a.familyOf(k)
		for _, other := range kids.Addrs() {
			if other != k {
				fam = append(fam, other)
			}
		}
		_ = ctx.Send(k, &pathUpdate{RootPath: a.rootPath, Family: fam}, overlay.PriorityDefault)
	}
}

func (a *Protocol) recvPathUpdate(ctx *core.Context, ev *core.MsgEvent) {
	if !ctx.Neighbors("parent").Contains(ev.From) {
		return
	}
	m := ev.Msg.(*pathUpdate)
	a.rootPath = append([]overlay.Address{a.self}, m.RootPath...)
	a.family = m.Family
	a.pushPathUpdates(ctx)
}

func (a *Protocol) recvLeave(ctx *core.Context, ev *core.MsgEvent) {
	kids := ctx.Neighbors("kids")
	kids.Remove(ev.From)
	ctx.NotifyNeighbors(overlay.NbrTypeChild, kids.Addrs())
}

func (a *Protocol) apiError(ctx *core.Context, call *core.APICall) {
	parent := ctx.Neighbors("parent")
	if parent.Size() == 0 && ctx.State() == "joined" && a.self != a.root {
		ctx.StateChange("joining")
		_ = ctx.Send(a.root, &joinMsg{}, overlay.PriorityDefault)
		ctx.TimerResched("join_retry", 5*time.Second)
	}
	ctx.NotifyNeighbors(overlay.NbrTypeChild, ctx.Neighbors("kids").Addrs())
}

// --- adaptation ---------------------------------------------------------------

func (a *Protocol) onEval(ctx *core.Context) {
	if a.self == a.root || len(a.family) == 0 {
		return
	}
	// Probe the parent (to refresh its cost) and every family candidate.
	a.pending = make(map[overlay.Address]*candidateInfo)
	targets := append([]overlay.Address{}, a.family...)
	if p := a.parentAddr(); p != overlay.NilAddress && !contains(targets, p) {
		targets = append(targets, p)
	}
	a.awaiting = len(targets)
	for _, t := range targets {
		if t == a.self {
			a.awaiting--
			continue
		}
		a.nextNonce++
		a.probes[a.nextNonce] = probeState{to: t, at: ctx.Now()}
		_ = ctx.Send(t, &probeReq{Nonce: a.nextNonce}, overlay.PriorityDefault)
	}
	if a.awaiting > 0 {
		ctx.TimerResched("probe_deadline", 3*time.Second)
	}
}

func (a *Protocol) recvProbeReq(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*probeReq)
	kids := ctx.Neighbors("kids")
	_ = ctx.Send(ev.From, &probeResp{
		Nonce:     m.Nonce,
		RootPath:  a.rootPath,
		Children:  uint16(kids.Size()),
		Capacity:  uint16(a.p.MaxDegree),
		Bandwidth: 10e6, // homogeneous access estimate; refined by probes in Overcast-style trains
	}, overlay.PriorityDefault)
}

func (a *Protocol) recvProbeResp(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*probeResp)
	ps, ok := a.probes[m.Nonce]
	if !ok {
		return
	}
	delete(a.probes, m.Nonce)
	rtt := ctx.Now().Sub(ps.at)
	// Effective bandwidth divides the candidate's access estimate across
	// its occupied degree: a loaded parent is a worse parent.
	bw := m.Bandwidth / float64(int(m.Children)+1)
	a.pending[ps.to] = &candidateInfo{
		rtt:       rtt,
		bandwidth: bw,
		rootPath:  m.RootPath,
		full:      int(m.Children) >= int(m.Capacity),
	}
	a.awaiting--
	if a.awaiting <= 0 {
		ctx.TimerCancel("probe_deadline")
		a.decide(ctx)
	}
}

func (a *Protocol) onProbeDeadline(ctx *core.Context) {
	a.awaiting = 0
	a.decide(ctx)
}

// cost is the AMMO multi-metric objective.
func (a *Protocol) cost(ci *candidateInfo) float64 {
	lat := float64(ci.rtt.Microseconds()) / 1000.0 // ms
	invBw := 0.0
	if ci.bandwidth > 0 {
		invBw = 1e6 / ci.bandwidth // inverse Mbps
	}
	return a.p.WeightLatency*lat + a.p.WeightBandwidth*invBw
}

func (a *Protocol) decide(ctx *core.Context) {
	parent := a.parentAddr()
	if pi, ok := a.pending[parent]; ok {
		a.parentCost = a.cost(pi)
	}
	var best overlay.Address
	bestCost := 0.0
	for addr, ci := range a.pending {
		if addr == parent || ci.full {
			continue
		}
		// Cycle guard: never adopt a parent whose root path includes us.
		if contains(ci.rootPath, a.self) {
			continue
		}
		c := a.cost(ci)
		if best == overlay.NilAddress || c < bestCost {
			best, bestCost = addr, c
		}
	}
	if best == overlay.NilAddress || a.parentCost == 0 {
		return
	}
	if bestCost*a.p.SwitchGain < a.parentCost {
		a.moves++
		ctx.StateChange("joining")
		_ = ctx.Send(best, &joinMsg{}, overlay.PriorityDefault)
		ctx.TimerResched("join_retry", 5*time.Second)
	}
}

// --- data path ------------------------------------------------------------------

func (a *Protocol) apiMulticast(ctx *core.Context, call *core.APICall) {
	a.nextSeq++
	m := &mdata{Src: a.self, Inc: a.inc, Seq: a.nextSeq, Typ: call.PayloadType, Payload: call.Payload}
	a.disseminate(ctx, m, overlay.NilAddress, call.Priority)
}

func (a *Protocol) disseminate(ctx *core.Context, m *mdata, except overlay.Address, pri int) {
	for _, kid := range ctx.Neighbors("kids").Addrs() {
		if kid == except {
			continue
		}
		ok, next, payload := ctx.Forward(m.Payload, m.Typ, kid, overlay.HashAddress(kid))
		if !ok {
			continue
		}
		_ = ctx.Send(next, &mdata{Src: m.Src, Inc: m.Inc, Seq: m.Seq, Typ: m.Typ, Payload: payload}, pri)
	}
	if m.Src != a.self {
		ctx.Deliver(m.Payload, m.Typ, m.Src)
	}
}

func (a *Protocol) recvMdata(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*mdata)
	key := pktKey{src: m.Src, inc: m.Inc, seq: m.Seq}
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	if len(a.seen) > 8192 {
		a.seen = map[pktKey]bool{key: true} // coarse window reset
	}
	a.disseminate(ctx, m, ev.From, overlay.PriorityDefault)
}

func contains(s []overlay.Address, a overlay.Address) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}
