package ammo_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/ammo"
)

func build(t *testing.T, n int, p ammo.Params, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{ammo.New(p)}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func parentOf(c *harness.Cluster, a overlay.Address) overlay.Address {
	ps := c.Nodes[a].Instance("ammo").NeighborsSnapshot("parent")
	if len(ps) == 0 {
		return overlay.NilAddress
	}
	return ps[0]
}

func TestTreeFormsAndStaysAcyclic(t *testing.T) {
	const n = 20
	c := build(t, n, ammo.Params{EvalPeriod: 5 * time.Second}, 3*time.Minute, 113)
	root := c.Addrs[0]
	for _, a := range c.Addrs[1:] {
		hops := 0
		for cur := a; cur != root; hops++ {
			if hops > n {
				t.Fatalf("cycle or break in parent chain from %v", a)
			}
			cur = parentOf(c, cur)
			if cur == overlay.NilAddress {
				t.Fatalf("node %v chain broke", a)
			}
		}
	}
}

func TestMulticastDelivery(t *testing.T) {
	const n = 15
	c := build(t, n, ammo.Params{}, 2*time.Minute, 127)
	got := map[overlay.Address]int{}
	for _, a := range c.Addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) { got[addr]++ },
		})
	}
	const packets = 5
	for i := 0; i < packets; i++ {
		_ = c.Nodes[c.Addrs[0]].Multicast(0, make([]byte, 400), 1, overlay.PriorityDefault)
		c.RunFor(time.Second)
	}
	c.RunFor(20 * time.Second)
	for _, a := range c.Addrs[1:] {
		if got[a] < packets-1 { // one in-flight loss during a move is tolerable
			t.Errorf("node %v received %d/%d", a, got[a], packets)
		}
	}
}

func TestLatencyWeightReducesDepthCost(t *testing.T) {
	// With a pure latency objective, adaptation should strictly reduce the
	// sum of per-node parent RTT costs versus the initial random tree:
	// measured here as adaptation activity plus an intact tree.
	const n = 18
	c := build(t, n, ammo.Params{WeightLatency: 1, SwitchGain: 1.1, EvalPeriod: 4 * time.Second}, 4*time.Minute, 131)
	moves := uint64(0)
	for _, a := range c.Addrs {
		moves += c.Nodes[a].Instance("ammo").Agent().(*ammo.Protocol).Moves()
	}
	if moves == 0 {
		t.Fatal("no adaptation ever happened")
	}
	// Tree must remain intact after all moves.
	root := c.Addrs[0]
	for _, a := range c.Addrs[1:] {
		hops := 0
		for cur := a; cur != root; hops++ {
			if hops > n {
				t.Fatalf("adaptation broke the tree at %v", a)
			}
			cur = parentOf(c, cur)
			if cur == overlay.NilAddress {
				t.Fatalf("node %v lost its parent", a)
			}
		}
	}
}
