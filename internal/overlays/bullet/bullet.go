// Package bullet implements Bullet [16] as a MACEDON agent layered over
// RandTree, mirroring the paper's Figure 2 stack. The source stripes blocks
// across tree branches so descendants receive disjoint subsets; a
// RanSub-style epoch protocol (collect up the tree, distribute down it)
// carries bloom-filter summary tickets so nodes can find peers with disjoint
// data; and a mesh of such peers exchanges the missing blocks. Receivers
// therefore approach the full stream rate even though the tree alone gives
// each subtree only a slice — the paper's motivating result for Bullet.
package bullet

import (
	"sort"
	"time"

	"macedon/internal/bloom"
	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol.
type Params struct {
	// EpochPeriod is the RanSub collect/distribute cadence (default 5 s).
	EpochPeriod time.Duration
	// MaxPeers bounds the mesh degree (default 4).
	MaxPeers int
	// CandidateSample is the number of candidates kept when merging collect
	// messages (default 8).
	CandidateSample int
	// HavePeriod is the peer summary-exchange cadence (default 2 s).
	HavePeriod time.Duration
	// FilterBits sizes block summaries (default 2048 bits).
	FilterBits int
	// RequestBatch bounds how many blocks are requested from one peer per
	// exchange (default 32).
	RequestBatch int
}

func (p *Params) setDefaults() {
	if p.EpochPeriod <= 0 {
		p.EpochPeriod = 5 * time.Second
	}
	if p.MaxPeers <= 0 {
		p.MaxPeers = 4
	}
	if p.CandidateSample <= 0 {
		p.CandidateSample = 8
	}
	if p.HavePeriod <= 0 {
		p.HavePeriod = 2 * time.Second
	}
	if p.FilterBits <= 0 {
		p.FilterBits = 2048
	}
	if p.RequestBatch <= 0 {
		p.RequestBatch = 32
	}
}

// New returns a factory for Bullet agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

type storedBlock struct {
	typ     int32
	payload []byte
}

// blockKey identifies a block across source restarts: a revived source
// resets seq to zero under a fresh incarnation stamp, and the two streams
// must not collide in dedup or summary state.
type blockKey struct {
	inc uint64
	seq uint32
}

// bloomKey mixes the incarnation into the summary-filter key so tickets
// advertise (incarnation, seq) pairs, not bare seqs.
func (k blockKey) bloomKey() uint64 {
	return k.inc ^ (uint64(k.seq)+1)*0x9E3779B97F4A7C15
}

// maxTrackedIncs bounds the per-incarnation horizon map: only the most
// recent restarts matter for mesh recovery.
const maxTrackedIncs = 3

// Protocol is one node's Bullet instance.
type Protocol struct {
	p Params

	self overlay.Address
	root bool

	// Tree view cached from RandTree notify upcalls.
	children []overlay.Address
	parent   overlay.Address

	inc        uint64 // incarnation stamp carried on our own stream
	blocks     map[blockKey]storedBlock
	incHorizon map[uint64]uint32 // incarnation → highest seq held
	summary    *bloom.Filter
	nextSeq    uint32

	peers      map[overlay.Address]bool
	peerSeen   map[overlay.Address]time.Time
	peerHaves  map[overlay.Address]*bloom.Filter
	candidates []candidate

	fromTree uint64
	fromMesh uint64
}

// ProtocolName implements the engine's naming hook.
func (b *Protocol) ProtocolName() string { return "bullet" }

// BlocksFromTree counts blocks that arrived down the tree.
func (b *Protocol) BlocksFromTree() uint64 { return b.fromTree }

// BlocksFromMesh counts blocks recovered from mesh peers.
func (b *Protocol) BlocksFromMesh() uint64 { return b.fromMesh }

// Blocks returns the total distinct blocks held.
func (b *Protocol) Blocks() int { return len(b.blocks) }

// Peers returns the current mesh peers.
func (b *Protocol) Peers() []overlay.Address {
	out := make([]overlay.Address, 0, len(b.peers))
	for a := range b.peers {
		out = append(out, a)
	}
	return out
}

// Define declares the Bullet FSM: the Go equivalent of
// "protocol bullet uses randtree".
func (b *Protocol) Define(d *core.Def) {
	d.States("running")
	d.Addressing(core.IPAddressing)

	d.Message("tblock", func() overlay.Message { return &tblock{} }, "")
	d.Message("collect", func() overlay.Message { return &collectMsg{} }, "")
	d.Message("dist", func() overlay.Message { return &distMsg{} }, "")
	d.Message("peer_req", func() overlay.Message { return &peerReq{} }, "")
	d.Message("peer_resp", func() overlay.Message { return &peerResp{} }, "")
	d.Message("have", func() overlay.Message { return &have{} }, "")
	d.Message("block_req", func() overlay.Message { return &blockReq{} }, "")
	d.Message("block_data", func() overlay.Message { return &blockData{} }, "")

	d.PeriodicTimer("epoch", b.p.EpochPeriod)
	d.PeriodicTimer("haves", b.p.HavePeriod)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, b.apiInit)
	d.OnAPI(overlay.APIMulticast, core.In("running"), core.Read, b.apiMulticast)
	d.OnAPI(overlay.APINotify, core.Any, core.Write, b.apiNotify)

	d.OnRecv("tblock", core.In("running"), core.Write, b.recvTblock)
	d.OnRecv("collect", core.In("running"), core.Write, b.recvCollect)
	d.OnForward("collect", core.In("running"), core.Write, b.forwardCollect)
	d.OnRecv("dist", core.In("running"), core.Write, b.recvDist)
	d.OnRecv("peer_req", core.In("running"), core.Write, b.recvPeerReq)
	d.OnRecv("peer_resp", core.In("running"), core.Write, b.recvPeerResp)
	d.OnRecv("have", core.In("running"), core.Write, b.recvHave)
	d.OnRecv("block_req", core.In("running"), core.Read, b.recvBlockReq)
	d.OnRecv("block_data", core.In("running"), core.Write, b.recvBlockData)

	d.OnTimer("epoch", core.In("running"), core.Write, b.onEpoch)
	d.OnTimer("haves", core.In("running"), core.Write, b.onHaves)
}

func (b *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	b.self = ctx.Self()
	b.root = call.Bootstrap == b.self || call.Bootstrap == overlay.NilAddress
	// Incarnation stamp: the clock reading at init, strictly greater after
	// every restart, so a revived source's restarted seq counter can never
	// collide with its previous life (the NICE/Overcast/AMMO fix).
	b.inc = uint64(ctx.Now().UnixNano())
	b.blocks = make(map[blockKey]storedBlock)
	b.incHorizon = make(map[uint64]uint32)
	b.summary = bloom.New(b.p.FilterBits, 4)
	b.peers = make(map[overlay.Address]bool)
	b.peerSeen = make(map[overlay.Address]time.Time)
	b.peerHaves = make(map[overlay.Address]*bloom.Filter)
	ctx.StateChange("running")
	ctx.TimerSched("epoch", b.jitter(ctx, b.p.EpochPeriod))
	ctx.TimerSched("haves", b.jitter(ctx, b.p.HavePeriod))
}

func (b *Protocol) jitter(ctx *core.Context, d time.Duration) time.Duration {
	return d*3/4 + time.Duration(ctx.Rand().Int63n(int64(d)/2+1))
}

// apiNotify caches the RandTree topology around this node.
func (b *Protocol) apiNotify(ctx *core.Context, call *core.APICall) {
	switch call.NbrType {
	case overlay.NbrTypeChild:
		b.children = append([]overlay.Address(nil), call.Neighbors...)
	case overlay.NbrTypeParent:
		if len(call.Neighbors) > 0 {
			b.parent = call.Neighbors[0]
		}
	}
}

// --- data path ---------------------------------------------------------------

// apiMulticast runs at the source: store the block and stripe it across
// tree branches so subtrees receive disjoint subsets.
func (b *Protocol) apiMulticast(ctx *core.Context, call *core.APICall) {
	seq := b.nextSeq
	b.nextSeq++
	b.store(ctx, blockKey{inc: b.inc, seq: seq}, call.PayloadType, call.Payload, true, false)
	if len(b.children) == 0 {
		return
	}
	child := b.children[int(seq)%len(b.children)]
	m := &tblock{Inc: b.inc, Seq: seq, Typ: call.PayloadType, Payload: call.Payload}
	_ = ctx.Send(child, m, call.Priority)
}

// recvTblock: a block arrived down the tree; forward to all children.
func (b *Protocol) recvTblock(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*tblock)
	if !b.store(ctx, blockKey{inc: m.Inc, seq: m.Seq}, m.Typ, m.Payload, true, true) {
		return
	}
	for _, kid := range b.children {
		if kid != ev.From {
			_ = ctx.Send(kid, m, overlay.PriorityDefault)
		}
	}
}

// store records a block once, delivering it upward. It reports whether the
// block was new.
func (b *Protocol) store(ctx *core.Context, k blockKey, typ int32, payload []byte, deliver, fromTree bool) bool {
	if _, dup := b.blocks[k]; dup {
		return false
	}
	b.blocks[k] = storedBlock{typ: typ, payload: append([]byte(nil), payload...)}
	b.summary.Add(k.bloomKey())
	if hi, ok := b.incHorizon[k.inc]; !ok || k.seq > hi {
		b.incHorizon[k.inc] = k.seq
		b.pruneIncs()
	}
	if fromTree {
		b.fromTree++
	}
	if deliver && !b.root {
		ctx.Deliver(payload, typ, b.self)
	}
	return true
}

// pruneIncs keeps only the most recent incarnations' horizons: mesh
// recovery chases live streams, not ancient ones.
func (b *Protocol) pruneIncs() {
	for len(b.incHorizon) > maxTrackedIncs {
		lowest := uint64(0)
		first := true
		for inc := range b.incHorizon {
			if first || inc < lowest {
				lowest, first = inc, false
			}
		}
		delete(b.incHorizon, lowest)
	}
}

// --- RanSub epochs -------------------------------------------------------------

func (b *Protocol) ownCandidate() (candidate, bool) {
	enc, err := b.summary.MarshalBinary()
	if err != nil {
		return candidate{}, false
	}
	return candidate{Addr: b.self, Summary: enc}, true
}

// onEpoch starts a collect phase from the leaves; interior nodes merge in
// their forward transitions as collects climb.
func (b *Protocol) onEpoch(ctx *core.Context) {
	if b.root {
		return // the root turns collects around as distributes
	}
	if len(b.children) > 0 {
		return // interior nodes rely on leaf-initiated collects
	}
	own, ok := b.ownCandidate()
	if !ok {
		return
	}
	frame, err := ctx.EncodeFrame(&collectMsg{Cands: []candidate{own}})
	if err != nil {
		return
	}
	_ = ctx.Collect(0, frame, core.ProtocolPayload, overlay.PriorityDefault)
}

// forwardCollect runs at interior nodes as the collect climbs: merge our
// candidate plus a uniform subsample.
func (b *Protocol) forwardCollect(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*collectMsg)
	if own, ok := b.ownCandidate(); ok {
		m.Cands = append(m.Cands, own)
	}
	m.Cands = sample(ctx, m.Cands, b.p.CandidateSample)
}

// recvCollect runs at the root: turn the sample around as a distribute.
func (b *Protocol) recvCollect(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*collectMsg)
	if !b.root {
		// A collect delivered off-root means the tree is still forming.
		return
	}
	b.candidates = sample(ctx, append(b.candidates, m.Cands...), b.p.CandidateSample*2)
	dist := &distMsg{Cands: b.candidates}
	for _, kid := range b.children {
		_ = ctx.Send(kid, dist, overlay.PriorityDefault)
	}
}

// recvDist descends: adopt candidates, re-randomize, pass down.
func (b *Protocol) recvDist(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*distMsg)
	b.candidates = m.Cands
	b.maybePeer(ctx)
	down := &distMsg{Cands: sample(ctx, m.Cands, b.p.CandidateSample)}
	for _, kid := range b.children {
		_ = ctx.Send(kid, down, overlay.PriorityDefault)
	}
}

// maybePeer ranks candidates by estimated disjointness and courts the best.
func (b *Protocol) maybePeer(ctx *core.Context) {
	if len(b.peers) >= b.p.MaxPeers {
		return
	}
	var best overlay.Address
	var bestScore float64 = -1
	for _, c := range b.candidates {
		if c.Addr == b.self || b.peers[c.Addr] || c.Addr == b.parent {
			continue
		}
		f, ok := c.filter()
		if !ok {
			continue
		}
		score := b.summary.EstimateDisjointness(f)
		if score > bestScore {
			best, bestScore = c.Addr, score
		}
	}
	if best == overlay.NilAddress {
		return
	}
	_ = ctx.Send(best, &peerReq{}, overlay.PriorityDefault)
}

func (b *Protocol) recvPeerReq(ctx *core.Context, ev *core.MsgEvent) {
	accept := len(b.peers) < 2*b.p.MaxPeers // accept more than we court
	if accept {
		b.peers[ev.From] = true
		b.peerSeen[ev.From] = ctx.Now()
	}
	_ = ctx.Send(ev.From, &peerResp{Accept: accept}, overlay.PriorityDefault)
}

func (b *Protocol) recvPeerResp(ctx *core.Context, ev *core.MsgEvent) {
	if ev.Msg.(*peerResp).Accept && len(b.peers) < 2*b.p.MaxPeers {
		b.peers[ev.From] = true
		b.peerSeen[ev.From] = ctx.Now()
	}
}

// --- mesh recovery ---------------------------------------------------------------

func (b *Protocol) onHaves(ctx *core.Context) {
	b.evictDeadPeers(ctx)
	if len(b.peers) == 0 {
		return
	}
	enc, err := b.summary.MarshalBinary()
	if err != nil {
		return
	}
	m := &have{Summary: enc, Incs: b.knownIncs()}
	for _, a := range b.sortedPeers() {
		_ = ctx.Send(a, m, overlay.PriorityDefault)
	}
}

// sortedPeers lists the mesh peers in address order: sends that fan out
// over the peer set must happen in a deterministic order or the engine's
// same-seed → identical-trace contract breaks.
func (b *Protocol) sortedPeers() []overlay.Address {
	out := make([]overlay.Address, 0, len(b.peers))
	for a := range b.peers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// knownIncs lists the tracked incarnations newest-first (stamps are
// init-clock readings, so higher = more recent). The order is
// deterministic, which keeps mesh request traffic identical across runs
// of one scenario and seed.
func (b *Protocol) knownIncs() []uint64 {
	incs := make([]uint64, 0, len(b.incHorizon))
	for inc := range b.incHorizon {
		incs = append(incs, inc)
	}
	sort.Slice(incs, func(i, j int) bool { return incs[i] > incs[j] })
	return incs
}

// evictDeadPeers drops mesh peers that have gone silent for several
// exchange periods. Without eviction, peers that died during churn clog
// the degree cap forever and mesh recovery wedges — the join-retry class
// of the churn audits, in mesh form.
func (b *Protocol) evictDeadPeers(ctx *core.Context) {
	cutoff := ctx.Now().Add(-4 * b.p.HavePeriod)
	for _, a := range b.sortedPeers() {
		if seen, ok := b.peerSeen[a]; ok && seen.After(cutoff) {
			continue
		}
		if _, ok := b.peerSeen[a]; !ok {
			// Never heard: start the grace period now.
			b.peerSeen[a] = ctx.Now()
			continue
		}
		delete(b.peers, a)
		delete(b.peerSeen, a)
		delete(b.peerHaves, a)
	}
}

// recvHave: request blocks the peer has and we lack, incarnation by
// incarnation, newest stream first. The scan covers the peer's
// advertised incarnations too, so a node holding zero blocks of a
// stream (a long-detached orphan recovering mesh-only) can still
// bootstrap into it.
func (b *Protocol) recvHave(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*have)
	b.peerSeen[ev.From] = ctx.Now()
	var f bloom.Filter
	if err := f.UnmarshalBinary(m.Summary); err != nil {
		return
	}
	b.peerHaves[ev.From] = &f
	// Horizon per incarnation: our own high-water mark plus a window, or
	// a bare window for incarnations we only know from the advert.
	horizon := make(map[uint64]uint32, len(b.incHorizon)+len(m.Incs))
	for inc, hi := range b.incHorizon {
		horizon[inc] = hi + 64
	}
	for _, inc := range m.Incs {
		if _, ok := horizon[inc]; !ok {
			horizon[inc] = 64
		}
	}
	incs := make([]uint64, 0, len(horizon))
	for inc := range horizon {
		incs = append(incs, inc)
	}
	sort.Slice(incs, func(i, j int) bool { return incs[i] > incs[j] })
	budget := b.p.RequestBatch
	for _, inc := range incs {
		if budget <= 0 {
			break
		}
		var want []uint32
		for seq := uint32(0); seq < horizon[inc] && budget > 0; seq++ {
			k := blockKey{inc: inc, seq: seq}
			if _, got := b.blocks[k]; got {
				continue
			}
			if f.Contains(k.bloomKey()) {
				want = append(want, seq)
				budget--
			}
		}
		if len(want) > 0 {
			_ = ctx.Send(ev.From, &blockReq{Inc: inc, Seqs: want}, overlay.PriorityDefault)
		}
	}
}

func (b *Protocol) recvBlockReq(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*blockReq)
	for _, seq := range m.Seqs {
		if blk, ok := b.blocks[blockKey{inc: m.Inc, seq: seq}]; ok {
			_ = ctx.Send(ev.From, &blockData{Inc: m.Inc, Seq: seq, Typ: blk.typ, Payload: blk.payload}, overlay.PriorityDefault)
		}
	}
}

func (b *Protocol) recvBlockData(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*blockData)
	b.peerSeen[ev.From] = ctx.Now()
	if b.store(ctx, blockKey{inc: m.Inc, seq: m.Seq}, m.Typ, m.Payload, true, false) {
		b.fromMesh++
	}
}

// sample returns up to n uniformly chosen entries.
func sample(ctx *core.Context, cs []candidate, n int) []candidate {
	if len(cs) <= n {
		return cs
	}
	ctx.Rand().Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
	return cs[:n]
}
