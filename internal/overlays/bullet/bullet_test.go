package bullet_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/bullet"
	"macedon/internal/overlays/randtree"
)

func stack(bp bullet.Params, deg int) []core.Factory {
	return []core.Factory{
		randtree.New(randtree.Params{MaxDegree: deg}),
		bullet.New(bp),
	}
}

func build(t *testing.T, n int, s []core.Factory, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SpawnAll(func(int) []core.Factory { return s }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func bulletOf(c *harness.Cluster, a overlay.Address) *bullet.Protocol {
	return c.Nodes[a].Instance("bullet").Agent().(*bullet.Protocol)
}

func TestMeshRecoversStripedBlocks(t *testing.T) {
	const n = 16
	c := build(t, n, stack(bullet.Params{EpochPeriod: 3 * time.Second, HavePeriod: time.Second}, 3), 60*time.Second, 103)
	src := c.Nodes[c.Addrs[0]]
	const blocks = 60
	for i := 0; i < blocks; i++ {
		_ = src.Multicast(0, make([]byte, 500), 1, overlay.PriorityDefault)
		c.RunFor(200 * time.Millisecond)
	}
	c.RunFor(2 * time.Minute) // epochs + mesh recovery
	for _, a := range c.Addrs[1:] {
		b := bulletOf(c, a)
		if b.Blocks() < blocks*3/4 {
			t.Errorf("node %v holds %d/%d blocks (tree=%d mesh=%d peers=%d)",
				a, b.Blocks(), blocks, b.BlocksFromTree(), b.BlocksFromMesh(), len(b.Peers()))
		}
	}
	// The whole point of Bullet: a meaningful share came from the mesh.
	var tree, mesh uint64
	for _, a := range c.Addrs[1:] {
		b := bulletOf(c, a)
		tree += b.BlocksFromTree()
		mesh += b.BlocksFromMesh()
	}
	if mesh == 0 {
		t.Fatal("no blocks recovered from the mesh")
	}
	t.Logf("tree=%d mesh=%d", tree, mesh)
}

func TestTreeAloneDeliversSubset(t *testing.T) {
	// With the mesh disabled (no peers allowed), striping means interior
	// subtrees see only a slice of the stream — the gap Bullet's mesh fills.
	const n = 12
	c := build(t, n, stack(bullet.Params{MaxPeers: 1, EpochPeriod: time.Hour, HavePeriod: time.Hour}, 3), 60*time.Second, 107)
	src := c.Nodes[c.Addrs[0]]
	const blocks = 40
	for i := 0; i < blocks; i++ {
		_ = src.Multicast(0, make([]byte, 300), 1, overlay.PriorityDefault)
		c.RunFor(100 * time.Millisecond)
	}
	c.RunFor(30 * time.Second)
	full := 0
	for _, a := range c.Addrs[1:] {
		if bulletOf(c, a).Blocks() >= blocks {
			full++
		}
	}
	if full != 0 {
		t.Fatalf("%d nodes got the full stream from the tree alone; striping is not striping", full)
	}
}

func TestPeersForm(t *testing.T) {
	c := build(t, 12, stack(bullet.Params{EpochPeriod: 2 * time.Second}, 3), 2*time.Minute, 109)
	src := c.Nodes[c.Addrs[0]]
	for i := 0; i < 20; i++ {
		_ = src.Multicast(0, make([]byte, 200), 1, overlay.PriorityDefault)
		c.RunFor(500 * time.Millisecond)
	}
	c.RunFor(time.Minute)
	peered := 0
	for _, a := range c.Addrs[1:] {
		if len(bulletOf(c, a).Peers()) > 0 {
			peered++
		}
	}
	if peered < 6 {
		t.Fatalf("only %d/11 nodes found mesh peers", peered)
	}
}
