package bullet

import (
	"macedon/internal/bloom"
	"macedon/internal/overlay"
)

// candidate is one RanSub advertisement: a node and the bloom summary of the
// blocks it holds (the "summary ticket").
type candidate struct {
	Addr    overlay.Address
	Summary []byte // bloom.Filter encoding
}

func encodeCands(w *overlay.Writer, cs []candidate) {
	w.U16(uint16(len(cs)))
	for _, c := range cs {
		w.Addr(c.Addr)
		w.Bytes32(c.Summary)
	}
}

func decodeCands(r *overlay.Reader) []candidate {
	n := int(r.U16())
	if r.Err() != nil {
		return nil
	}
	out := make([]candidate, 0, n)
	for i := 0; i < n; i++ {
		var c candidate
		c.Addr = r.Addr()
		c.Summary = append([]byte(nil), r.Bytes32()...)
		out = append(out, c)
	}
	return out
}

func (c candidate) filter() (*bloom.Filter, bool) {
	var f bloom.Filter
	if err := f.UnmarshalBinary(c.Summary); err != nil {
		return nil, false
	}
	return &f, true
}

// tblock is a stream block moving down the tree. Inc is the source's
// incarnation stamp: a cold-restarted source resets Seq but never Inc, so
// receivers that lived through the restart keep old and new streams apart
// (the stale-incarnation dedup class the churn audits keep finding).
type tblock struct {
	Inc     uint64
	Seq     uint32
	Typ     int32
	Payload []byte
}

func (m *tblock) MsgName() string { return "tblock" }
func (m *tblock) Encode(w *overlay.Writer) {
	w.U64(m.Inc)
	w.U32(m.Seq)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *tblock) Decode(r *overlay.Reader) error {
	m.Inc = r.U64()
	m.Seq = r.U32()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// collectMsg climbs the tree during a RanSub collect phase, carrying a
// uniform sample of descendants' candidates.
type collectMsg struct {
	Cands []candidate
}

func (m *collectMsg) MsgName() string                { return "collect" }
func (m *collectMsg) Encode(w *overlay.Writer)       { encodeCands(w, m.Cands) }
func (m *collectMsg) Decode(r *overlay.Reader) error { m.Cands = decodeCands(r); return r.Err() }

// distMsg descends the tree during the distribute phase.
type distMsg struct {
	Cands []candidate
}

func (m *distMsg) MsgName() string                { return "dist" }
func (m *distMsg) Encode(w *overlay.Writer)       { encodeCands(w, m.Cands) }
func (m *distMsg) Decode(r *overlay.Reader) error { m.Cands = decodeCands(r); return r.Err() }

// peerReq asks to become mesh peers; peerResp accepts or declines.
type peerReq struct{}

func (m *peerReq) MsgName() string                { return "peer_req" }
func (m *peerReq) Encode(*overlay.Writer)         {}
func (m *peerReq) Decode(r *overlay.Reader) error { return r.Err() }

type peerResp struct {
	Accept bool
}

func (m *peerResp) MsgName() string                { return "peer_resp" }
func (m *peerResp) Encode(w *overlay.Writer)       { w.Bool(m.Accept) }
func (m *peerResp) Decode(r *overlay.Reader) error { m.Accept = r.Bool(); return r.Err() }

// have advertises the sender's block summary to a mesh peer, together
// with the stream incarnations it knows: the bloom summary is opaque, so
// without the list a peer holding zero blocks of an incarnation could
// never learn which (inc, seq) keys to probe for.
type have struct {
	Summary []byte
	Incs    []uint64
}

func (m *have) MsgName() string { return "have" }
func (m *have) Encode(w *overlay.Writer) {
	w.Bytes32(m.Summary)
	w.U16(uint16(len(m.Incs)))
	for _, inc := range m.Incs {
		w.U64(inc)
	}
}
func (m *have) Decode(r *overlay.Reader) error {
	m.Summary = append([]byte(nil), r.Bytes32()...)
	n := int(r.U16())
	if r.Err() != nil {
		return r.Err()
	}
	m.Incs = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		m.Incs = append(m.Incs, r.U64())
	}
	return r.Err()
}

// blockReq requests specific missing blocks of one stream incarnation
// from a peer.
type blockReq struct {
	Inc  uint64
	Seqs []uint32
}

func (m *blockReq) MsgName() string { return "block_req" }
func (m *blockReq) Encode(w *overlay.Writer) {
	w.U64(m.Inc)
	w.U16(uint16(len(m.Seqs)))
	for _, s := range m.Seqs {
		w.U32(s)
	}
}
func (m *blockReq) Decode(r *overlay.Reader) error {
	m.Inc = r.U64()
	n := int(r.U16())
	if r.Err() != nil {
		return r.Err()
	}
	m.Seqs = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		m.Seqs = append(m.Seqs, r.U32())
	}
	return r.Err()
}

// blockData answers a blockReq.
type blockData struct {
	Inc     uint64
	Seq     uint32
	Typ     int32
	Payload []byte
}

func (m *blockData) MsgName() string { return "block_data" }
func (m *blockData) Encode(w *overlay.Writer) {
	w.U64(m.Inc)
	w.U32(m.Seq)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *blockData) Decode(r *overlay.Reader) error {
	m.Inc = r.U64()
	m.Seq = r.U32()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}
