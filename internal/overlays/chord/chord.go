// Package chord implements the Chord distributed hash table [25] as a
// MACEDON agent: successor lists, finger tables, periodic stabilization, and
// the fix-fingers route-repair process whose timer policy Figure 10 of the
// paper studies. The implementation matches the paper's: a 32-bit hash
// address space, recursive greedy routing through fingers, and either a
// static fix-fingers period (the MACEDON curves) or the MIT-lsd-style
// adaptive period (the baseline curve).
package chord

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Fingers is the number of finger-table entries: one per bit of the hash
// address space.
const Fingers = overlay.KeyBits

// Params tunes the protocol.
type Params struct {
	// StabilizePeriod is the successor-pointer maintenance period
	// (default 1 s).
	StabilizePeriod time.Duration
	// FixFingersPeriod is the static route-repair period (default 1 s);
	// Figure 10 contrasts 1 s and 20 s.
	FixFingersPeriod time.Duration
	// RingProbePeriod is the ring-merge probe period (default 10 s): joined
	// nodes re-run the join lookup through the bootstrap so ring fragments
	// left behind by a healed partition find each other again.
	RingProbePeriod time.Duration
	// Dynamic selects the lsd-style adaptive fix-fingers policy: the period
	// halves when a repair changes an entry and doubles when it confirms
	// one, clamped to [DynamicMin, DynamicMax].
	Dynamic    bool
	DynamicMin time.Duration // default 1 s
	DynamicMax time.Duration // default 32 s
	// SuccListLen is the replicated successor-list length (default 4).
	SuccListLen int
}

func (p *Params) setDefaults() {
	if p.StabilizePeriod <= 0 {
		p.StabilizePeriod = time.Second
	}
	if p.RingProbePeriod <= 0 {
		p.RingProbePeriod = 10 * time.Second
	}
	if p.FixFingersPeriod <= 0 {
		p.FixFingersPeriod = time.Second
	}
	if p.DynamicMin <= 0 {
		p.DynamicMin = time.Second
	}
	if p.DynamicMax <= 0 {
		p.DynamicMax = 32 * time.Second
	}
	if p.SuccListLen <= 0 {
		p.SuccListLen = 4
	}
}

// New returns a factory for Chord agents with the given parameters.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

// Protocol is one node's Chord instance. Exported accessors expose routing
// state to the harness the way the paper's debugging features dump routing
// tables every two seconds for the convergence experiment.
type Protocol struct {
	p Params

	self    overlay.Address
	selfKey overlay.Key
	boot    overlay.Address

	pred      overlay.Address // NilAddress when unknown
	succs     []overlay.Address
	fingers   [Fingers]overlay.Address
	fixIvl    time.Duration
	nextReqID uint32
	joinedAt  time.Time
	hasJoined bool
}

// ProtocolName implements the engine's naming hook.
func (c *Protocol) ProtocolName() string { return "chord" }

// Successor returns the current successor (self when alone).
func (c *Protocol) Successor() overlay.Address {
	if len(c.succs) == 0 {
		return c.self
	}
	return c.succs[0]
}

// Predecessor returns the current predecessor, NilAddress when unknown.
func (c *Protocol) Predecessor() overlay.Address { return c.pred }

// SuccList copies the successor list (the redundancy the correctness
// plane's ring and staleness checkers audit).
func (c *Protocol) SuccList() []overlay.Address {
	return append([]overlay.Address(nil), c.succs...)
}

// FingerSnapshot copies the finger table (the per-node routing state the
// convergence oracle grades).
func (c *Protocol) FingerSnapshot() [Fingers]overlay.Address { return c.fingers }

// Joined reports whether the node completed its join.
func (c *Protocol) Joined() bool { return c.hasJoined }

// JoinedAt returns the virtual time the node entered the ring.
func (c *Protocol) JoinedAt() time.Time { return c.joinedAt }

// FixInterval returns the current fix-fingers period (interesting in
// dynamic mode).
func (c *Protocol) FixInterval() time.Duration { return c.fixIvl }

// Define declares the Chord FSM: the Go equivalent of chord.mac.
func (c *Protocol) Define(d *core.Def) {
	d.States("joining", "joined")
	d.Addressing(core.HashAddressing)

	d.UDPTransport("CTRL")
	d.TCPTransport("DATA")

	d.Message("find_req", func() overlay.Message { return &findReq{} }, "CTRL")
	d.Message("find_resp", func() overlay.Message { return &findResp{} }, "CTRL")
	d.Message("get_pred_req", func() overlay.Message { return &getPredReq{} }, "CTRL")
	d.Message("get_pred_resp", func() overlay.Message { return &getPredResp{} }, "CTRL")
	d.Message("notify", func() overlay.Message { return &notify{} }, "CTRL")
	d.Message("data", func() overlay.Message { return &data{} }, "DATA")
	d.Message("data_ip", func() overlay.Message { return &dataIP{} }, "DATA")

	d.Timer("stabilize", c.p.StabilizePeriod)
	d.Timer("fix_fingers", c.p.FixFingersPeriod)
	d.Timer("ring_probe", c.p.RingProbePeriod)
	d.NeighborList("succs", c.p.SuccListLen+1, true)
	d.NeighborList("pred", 1, true)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, c.apiInit)
	// Routing while joining would claim ownership of everything (the ring
	// is a self-loop until the join completes): drop and let layers above
	// retry via their soft state.
	d.OnAPI(overlay.APIRoute, core.In("joined"), core.Read, c.apiRoute)
	d.OnAPI(overlay.APIRouteIP, core.Any, core.Read, c.apiRouteIP)
	d.OnAPI(overlay.APIError, core.Any, core.Write, c.apiError)

	d.OnRecv("find_req", core.Any, core.Read, c.recvFindReq)
	d.OnRecv("find_resp", core.In("joining"), core.Write, c.recvFindRespJoining)
	d.OnRecv("find_resp", core.In("joined"), core.Write, c.recvFindRespJoined)
	d.OnRecv("get_pred_req", core.Any, core.Read, c.recvGetPredReq)
	d.OnRecv("get_pred_resp", core.In("joined"), core.Write, c.recvGetPredResp)
	d.OnRecv("notify", core.Any, core.Write, c.recvNotify)
	d.OnRecv("data", core.Any, core.Read, c.recvData)
	d.OnRecv("data_ip", core.Any, core.Read, c.recvDataIP)

	d.OnTimer("stabilize", core.In("joined"), core.Write, c.onStabilize)
	d.OnTimer("fix_fingers", core.In("joined"), core.Write, c.onFixFingers)
	d.OnTimer("ring_probe", core.In("joined"), core.Write, c.onRingProbe)
}

func (c *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	c.self = ctx.Self()
	c.selfKey = ctx.SelfKey()
	c.boot = call.Bootstrap
	c.fixIvl = c.p.FixFingersPeriod
	if c.p.Dynamic {
		c.fixIvl = c.p.DynamicMin
	}
	if c.boot == c.self || c.boot == overlay.NilAddress {
		// The bootstrap starts a one-node ring.
		c.becomeJoined(ctx)
		return
	}
	ctx.StateChange("joining")
	c.nextReqID++
	_ = ctx.Send(c.boot, &findReq{Target: c.selfKey, Origin: c.self,
		ReqID: c.nextReqID, Purpose: purposeJoin}, overlay.PriorityDefault)
}

func (c *Protocol) becomeJoined(ctx *core.Context) {
	ctx.StateChange("joined")
	c.hasJoined = true
	c.joinedAt = ctx.Now()
	ctx.TimerSched("stabilize", c.jitter(ctx, c.p.StabilizePeriod))
	ctx.TimerSched("fix_fingers", c.jitter(ctx, c.fixIvl))
	ctx.TimerSched("ring_probe", c.jitter(ctx, c.p.RingProbePeriod))
}

// jitter spreads periodic timers ±25% so a thousand nodes do not
// synchronize their maintenance traffic.
func (c *Protocol) jitter(ctx *core.Context, d time.Duration) time.Duration {
	return d*3/4 + time.Duration(ctx.Rand().Int63n(int64(d)/2+1))
}

// owner reports whether this node owns key k: k ∈ (pred, self].
func (c *Protocol) owner(k overlay.Key) bool {
	if k == c.selfKey {
		return true
	}
	if c.pred == overlay.NilAddress {
		// Without a predecessor, claim ownership only when alone.
		return c.Successor() == c.self
	}
	return k.BetweenIncl(overlay.HashAddress(c.pred), c.selfKey)
}

// nextHop picks the routing target for key k: the successor if k lies in
// (self, succ], else the closest preceding finger.
func (c *Protocol) nextHop(k overlay.Key) overlay.Address {
	succ := c.Successor()
	if succ == c.self {
		return c.self
	}
	if k.BetweenIncl(c.selfKey, overlay.HashAddress(succ)) {
		return succ
	}
	// Closest preceding node: among known nodes in (self, k), the one whose
	// key is nearest to k. The successor is always a valid fallback because
	// k ∉ (self, succ] here implies succ ∈ (self, k).
	best := succ
	bestKey := overlay.HashAddress(succ)
	consider := func(a overlay.Address) {
		if a == overlay.NilAddress || a == c.self {
			return
		}
		ak := overlay.HashAddress(a)
		if ak.Between(c.selfKey, k) && ak.Distance(k) < bestKey.Distance(k) {
			best, bestKey = a, ak
		}
	}
	for _, f := range c.fingers {
		consider(f)
	}
	for _, s := range c.succs {
		consider(s)
	}
	return best
}

// updateFinger records a repair result and applies the lsd-style dynamic
// period adaptation when enabled.
func (c *Protocol) updateFinger(idx int, owner overlay.Address) {
	changed := c.fingers[idx] != owner
	c.fingers[idx] = owner
	if !c.p.Dynamic {
		return
	}
	if changed {
		c.fixIvl /= 2
		if c.fixIvl < c.p.DynamicMin {
			c.fixIvl = c.p.DynamicMin
		}
	} else {
		c.fixIvl *= 2
		if c.fixIvl > c.p.DynamicMax {
			c.fixIvl = c.p.DynamicMax
		}
	}
}

func (c *Protocol) recvFindReq(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*findReq)
	m.Hops++
	succ := c.Successor()
	var owner overlay.Address
	switch {
	case c.owner(m.Target):
		owner = c.self
	case succ != c.self && m.Target.BetweenIncl(c.selfKey, overlay.HashAddress(succ)):
		owner = succ
	}
	if owner != overlay.NilAddress {
		_ = ctx.Send(m.Origin, &findResp{ReqID: m.ReqID, Owner: owner,
			Purpose: m.Purpose, Idx: m.Idx, Hops: m.Hops}, overlay.PriorityDefault)
		return
	}
	if m.Hops > 2*Fingers {
		return // routing loop during churn; the requester will retry
	}
	next := c.nextHop(m.Target)
	if next == c.self {
		return
	}
	_ = ctx.Send(next, m, overlay.PriorityDefault)
}

func (c *Protocol) recvFindRespJoining(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*findResp)
	if m.Purpose != purposeJoin {
		return
	}
	c.setSuccessor(ctx, m.Owner)
	c.becomeJoined(ctx)
	_ = ctx.Send(m.Owner, &notify{}, overlay.PriorityDefault)
}

func (c *Protocol) recvFindRespJoined(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*findResp)
	if m.Purpose == purposeJoin {
		// Ring-merge probe answer (onRingProbe): in a healthy ring the owner
		// of our own key is self and the answer is a no-op; after a partition
		// heal it is a node from the boot-side fragment, adopted as successor
		// when closer than (or substituting for a missing) successor so
		// ordinary stabilization can knit the rings back together.
		if m.Owner == c.self || m.Owner == overlay.NilAddress {
			return
		}
		succ := c.Successor()
		if succ == c.self || overlay.HashAddress(m.Owner).Between(c.selfKey, overlay.HashAddress(succ)) {
			c.setSuccessor(ctx, m.Owner)
			_ = ctx.Send(m.Owner, &notify{}, overlay.PriorityDefault)
		}
		return
	}
	if m.Purpose != purposeFix || int(m.Idx) >= Fingers {
		return
	}
	// lsd-style adaptation inside updateFinger: repairs that change an entry
	// suggest churn (probe faster); confirmations suggest stability.
	c.updateFinger(int(m.Idx), m.Owner)
}

func (c *Protocol) recvGetPredReq(ctx *core.Context, ev *core.MsgEvent) {
	_ = ctx.Send(ev.From, &getPredResp{Pred: c.pred, SuccList: c.succs}, overlay.PriorityDefault)
}

func (c *Protocol) recvGetPredResp(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*getPredResp)
	succ := c.Successor()
	if m.Pred != overlay.NilAddress && m.Pred != c.self {
		pk := overlay.HashAddress(m.Pred)
		if succ == c.self || pk.Between(c.selfKey, overlay.HashAddress(succ)) {
			c.setSuccessor(ctx, m.Pred)
		}
	}
	// Successor-list replication: adopt succ's list shifted by one.
	list := []overlay.Address{c.Successor()}
	for _, a := range m.SuccList {
		if len(list) >= c.p.SuccListLen {
			break
		}
		if a != c.self && a != overlay.NilAddress && !contains(list, a) {
			list = append(list, a)
		}
	}
	c.setSuccList(ctx, list)
	_ = ctx.Send(c.Successor(), &notify{}, overlay.PriorityDefault)
}

func (c *Protocol) recvNotify(ctx *core.Context, ev *core.MsgEvent) {
	from := ev.From
	if from == c.self {
		return
	}
	fk := overlay.HashAddress(from)
	if c.pred == overlay.NilAddress || fk.Between(overlay.HashAddress(c.pred), c.selfKey) {
		c.pred = from
		pl := ctx.Neighbors("pred")
		pl.Clear()
		pl.Add(from)
		if c.Successor() == c.self {
			// Alone until now: the notifier is also our successor.
			c.setSuccessor(ctx, from)
		}
		ctx.NotifyNeighbors(overlay.NbrTypePredecessor, []overlay.Address{from})
	}
}

// onRingProbe re-runs the join lookup through the bootstrap. A split ring
// cannot be detected locally — every fragment looks like a consistent ring
// to its own members — so whichever fragment still holds boot answers with
// its owner of our key and recvFindRespJoined merges the answer in. Only
// the initial offset (becomeJoined) is jittered: that already de-phases the
// fleet, and a fixed steady period keeps this slow timer from draining the
// per-node entropy stream the finer-grained maintenance jitters consume.
func (c *Protocol) onRingProbe(ctx *core.Context) {
	defer ctx.TimerSched("ring_probe", c.p.RingProbePeriod)
	if c.boot == c.self || c.boot == overlay.NilAddress {
		return
	}
	c.nextReqID++
	_ = ctx.Send(c.boot, &findReq{Target: c.selfKey, Origin: c.self,
		ReqID: c.nextReqID, Purpose: purposeJoin}, overlay.PriorityDefault)
}

func (c *Protocol) onStabilize(ctx *core.Context) {
	defer ctx.TimerSched("stabilize", c.jitter(ctx, c.p.StabilizePeriod))
	succ := c.Successor()
	if succ == c.self {
		if c.pred != overlay.NilAddress {
			c.setSuccessor(ctx, c.pred)
		}
		return
	}
	_ = ctx.Send(succ, &getPredReq{}, overlay.PriorityDefault)
}

func (c *Protocol) onFixFingers(ctx *core.Context) {
	defer ctx.TimerSched("fix_fingers", c.jitter(ctx, c.fixIvl))
	if c.Successor() == c.self {
		return
	}
	// Repair a random finger, as lsd does ("route a repair request message
	// to a random finger table entry").
	i := ctx.Rand().Intn(Fingers)
	target := overlay.Key(uint32(c.selfKey) + 1<<uint(i))
	c.nextReqID++
	m := &findReq{Target: target, Origin: c.self, ReqID: c.nextReqID,
		Purpose: purposeFix, Idx: uint8(i)}
	// Start the lookup locally: route as any find request.
	c.routeFindLocally(ctx, m)
}

func (c *Protocol) routeFindLocally(ctx *core.Context, m *findReq) {
	succ := c.Successor()
	if c.owner(m.Target) {
		c.fingers[m.Idx] = c.self
		return
	}
	if m.Target.BetweenIncl(c.selfKey, overlay.HashAddress(succ)) {
		c.updateFinger(int(m.Idx), succ)
		return
	}
	next := c.nextHop(m.Target)
	if next == c.self {
		return
	}
	_ = ctx.Send(next, m, overlay.PriorityDefault)
}

func (c *Protocol) apiRoute(ctx *core.Context, call *core.APICall) {
	m := &data{Src: c.self, Dest: call.Dest, Typ: call.PayloadType, Payload: call.Payload}
	c.routeData(ctx, m, call.Priority)
}

func (c *Protocol) routeData(ctx *core.Context, m *data, pri int) {
	if c.owner(m.Dest) {
		ctx.Deliver(m.Payload, m.Typ, m.Src)
		return
	}
	next := c.nextHop(m.Dest)
	if next == c.self {
		ctx.Deliver(m.Payload, m.Typ, m.Src) // degenerate ring: keep it local
		return
	}
	ok, newNext, payload := ctx.Forward(m.Payload, m.Typ, next, overlay.HashAddress(next))
	if !ok {
		return
	}
	m.Payload = payload
	_ = ctx.Send(newNext, m, pri)
}

func (c *Protocol) recvData(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*data)
	m.Hops++
	if m.Hops > 2*Fingers {
		return
	}
	c.routeData(ctx, m, overlay.PriorityDefault)
}

func (c *Protocol) apiRouteIP(ctx *core.Context, call *core.APICall) {
	if call.DestIP == c.self {
		ctx.Deliver(call.Payload, call.PayloadType, c.self)
		return
	}
	_ = ctx.Send(call.DestIP, &dataIP{Src: c.self, Typ: call.PayloadType, Payload: call.Payload}, call.Priority)
}

func (c *Protocol) recvDataIP(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*dataIP)
	ctx.Deliver(m.Payload, m.Typ, m.Src)
}

func (c *Protocol) apiError(ctx *core.Context, call *core.APICall) {
	failed := call.Failed
	if c.pred == failed {
		c.pred = overlay.NilAddress
		ctx.Neighbors("pred").Clear()
	}
	var list []overlay.Address
	for _, a := range c.succs {
		if a != failed {
			list = append(list, a)
		}
	}
	if len(list) == 0 {
		list = []overlay.Address{c.self}
	}
	c.setSuccList(ctx, list)
	for i, f := range c.fingers {
		if f == failed {
			c.fingers[i] = overlay.NilAddress
		}
	}
}

func (c *Protocol) setSuccessor(ctx *core.Context, a overlay.Address) {
	list := append([]overlay.Address{a}, c.succs...)
	c.setSuccList(ctx, dedup(list, c.p.SuccListLen))
}

func (c *Protocol) setSuccList(ctx *core.Context, list []overlay.Address) {
	list = dedup(list, c.p.SuccListLen)
	if equal(c.succs, list) {
		return
	}
	c.succs = list
	nl := ctx.Neighbors("succs")
	nl.Clear()
	for _, a := range list {
		if a != c.self {
			nl.Add(a)
		}
	}
	ctx.NotifyNeighbors(overlay.NbrTypeSuccessor, list)
}

func dedup(in []overlay.Address, max int) []overlay.Address {
	var out []overlay.Address
	for _, a := range in {
		if a == overlay.NilAddress || contains(out, a) {
			continue
		}
		out = append(out, a)
		if len(out) >= max {
			break
		}
	}
	return out
}

func contains(s []overlay.Address, a overlay.Address) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

func equal(a, b []overlay.Address) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
