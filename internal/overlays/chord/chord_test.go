package chord_test

import (
	"sort"
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
)

func stack(p chord.Params) []core.Factory { return []core.Factory{chord.New(p)} }

func buildRing(t *testing.T, n int, p chord.Params, settle time.Duration) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack(p) }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func chordOf(c *harness.Cluster, a overlay.Address) *chord.Protocol {
	return c.Nodes[a].Instance("chord").Agent().(*chord.Protocol)
}

// oracle computes each key's true owner given the member set.
type oracle struct {
	keys []uint32
	addr map[uint32]overlay.Address
}

func newOracle(addrs []overlay.Address) *oracle {
	o := &oracle{addr: make(map[uint32]overlay.Address)}
	for _, a := range addrs {
		k := uint32(overlay.HashAddress(a))
		o.keys = append(o.keys, k)
		o.addr[k] = a
	}
	sort.Slice(o.keys, func(i, j int) bool { return o.keys[i] < o.keys[j] })
	return o
}

// successor returns the owner of key k: the first member key >= k (wrapping).
func (o *oracle) successor(k overlay.Key) overlay.Address {
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= uint32(k) })
	if i == len(o.keys) {
		i = 0
	}
	return o.addr[o.keys[i]]
}

func TestRingForms(t *testing.T) {
	const n = 16
	c := buildRing(t, n, chord.Params{}, 60*time.Second)
	o := newOracle(c.Addrs)
	// Every node's successor must match the oracle ring.
	for _, a := range c.Addrs {
		p := chordOf(c, a)
		if !p.Joined() {
			t.Fatalf("node %v never joined", a)
		}
		next := overlay.Key(uint32(overlay.HashAddress(a)) + 1)
		want := o.successor(next)
		if got := p.Successor(); got != want {
			t.Errorf("node %v successor = %v, want %v", a, got, want)
		}
	}
	// Following successor pointers visits every node exactly once.
	seen := map[overlay.Address]bool{}
	cur := c.Addrs[0]
	for i := 0; i < n; i++ {
		if seen[cur] {
			t.Fatalf("successor cycle shorter than ring at %v", cur)
		}
		seen[cur] = true
		cur = chordOf(c, cur).Successor()
	}
	if cur != c.Addrs[0] || len(seen) != n {
		t.Fatalf("ring does not close: visited %d", len(seen))
	}
}

func TestRoutingDeliversAtOwner(t *testing.T) {
	c := buildRing(t, 12, chord.Params{}, 60*time.Second)
	o := newOracle(c.Addrs)
	delivered := make(map[overlay.Address][]overlay.Key)
	for _, a := range c.Addrs {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) {
				delivered[addr] = append(delivered[addr], overlay.Key(typ))
			},
		})
	}
	// Route payloads to many keys; each must arrive exactly at its owner.
	// Payload type encodes the key for verification (app types are >= 0 and
	// 31-bit here).
	keys := []overlay.Key{0, 1 << 20, 0x3fffffff, 0x7ffffffe, 0x12345678}
	src := c.Nodes[c.Addrs[3]]
	for _, k := range keys {
		if err := src.Route(k, []byte("blob"), int32(k&0x7fffffff), overlay.PriorityDefault); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(10 * time.Second)
	got := 0
	for addr, ks := range delivered {
		for _, k := range ks {
			got++
			if want := o.successor(k); want != addr {
				t.Errorf("key %v delivered at %v, want %v", k, addr, want)
			}
		}
	}
	if got != len(keys) {
		t.Fatalf("delivered %d/%d routed payloads", got, len(keys))
	}
}

func TestRouteIPDirect(t *testing.T) {
	c := buildRing(t, 4, chord.Params{}, 30*time.Second)
	var got []byte
	c.Nodes[c.Addrs[2]].RegisterHandlers(core.Handlers{
		Deliver: func(p []byte, typ int32, src overlay.Address) { got = append([]byte(nil), p...) },
	})
	_ = c.Nodes[c.Addrs[0]].RouteIP(c.Addrs[2], []byte("direct"), 9, overlay.PriorityDefault)
	c.RunFor(5 * time.Second)
	if string(got) != "direct" {
		t.Fatalf("routeIP payload = %q", got)
	}
}

func TestFingersConverge(t *testing.T) {
	const n = 24
	c := buildRing(t, n, chord.Params{FixFingersPeriod: time.Second}, 180*time.Second)
	o := newOracle(c.Addrs)
	correct, total := 0, 0
	for _, a := range c.Addrs {
		p := chordOf(c, a)
		fingers := p.FingerSnapshot()
		self := uint32(overlay.HashAddress(a))
		for i, f := range fingers {
			if f == overlay.NilAddress {
				continue
			}
			total++
			if o.successor(overlay.Key(self+1<<uint(i))) == f {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no fingers populated")
	}
	frac := float64(correct) / float64(total)
	if frac < 0.9 {
		t.Fatalf("only %.0f%% of populated fingers correct after 180s", frac*100)
	}
}

func TestDynamicFixFingersAdapts(t *testing.T) {
	c := buildRing(t, 8, chord.Params{Dynamic: true}, 120*time.Second)
	grew := false
	for _, a := range c.Addrs {
		if chordOf(c, a).FixInterval() > time.Second {
			grew = true
		}
	}
	if !grew {
		t.Fatal("dynamic fix-fingers interval never backed off on a stable ring")
	}
}

func TestSuccessorFailureRepair(t *testing.T) {
	c, err := harness.NewCluster(harness.ClusterConfig{
		Nodes: 10, Routers: 100, Seed: 7,
		HeartbeatAfter: 2 * time.Second, FailAfter: 8 * time.Second, Sweep: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack(chord.Params{}) }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * time.Second)

	// Kill one non-bootstrap node.
	victim := c.Addrs[4]
	if err := c.Net.SetDown(victim, true); err != nil {
		t.Fatal(err)
	}
	c.Nodes[victim].Stop()
	c.RunFor(90 * time.Second)

	var live []overlay.Address
	for _, a := range c.Addrs {
		if a != victim {
			live = append(live, a)
		}
	}
	o := newOracle(live)
	for _, a := range live {
		p := chordOf(c, a)
		next := overlay.Key(uint32(overlay.HashAddress(a)) + 1)
		if got, want := p.Successor(), o.successor(next); got != want {
			t.Errorf("after failure: node %v successor = %v, want %v", a, got, want)
		}
		if p.Successor() == victim || p.Predecessor() == victim {
			t.Errorf("node %v still points at dead node", a)
		}
	}
}

func TestStaggeredJoins(t *testing.T) {
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: 12, Routers: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Addrs {
		c.SpawnAt(i, stack(chord.Params{}), time.Duration(i)*2*time.Second)
	}
	c.RunFor(120 * time.Second)
	o := newOracle(c.Addrs)
	for _, a := range c.Addrs {
		p := chordOf(c, a)
		next := overlay.Key(uint32(overlay.HashAddress(a)) + 1)
		if got, want := p.Successor(), o.successor(next); got != want {
			t.Errorf("node %v successor = %v, want %v", a, got, want)
		}
	}
}
