package chord

import "macedon/internal/overlay"

// Find-successor purposes.
const (
	purposeJoin = 0 // joining node locating its successor
	purposeFix  = 1 // fix-fingers route repair (§2.1.3: "route repair requests")
)

// findReq locates the successor of Target. It routes greedily through
// finger tables; the owner answers the origin directly.
type findReq struct {
	Target  overlay.Key
	Origin  overlay.Address
	ReqID   uint32
	Purpose uint8
	Idx     uint8 // finger index when Purpose == purposeFix
	Hops    uint8
}

func (m *findReq) MsgName() string { return "find_req" }
func (m *findReq) Encode(w *overlay.Writer) {
	w.Key(m.Target)
	w.Addr(m.Origin)
	w.U32(m.ReqID)
	w.U8(m.Purpose)
	w.U8(m.Idx)
	w.U8(m.Hops)
}
func (m *findReq) Decode(r *overlay.Reader) error {
	m.Target = r.Key()
	m.Origin = r.Addr()
	m.ReqID = r.U32()
	m.Purpose = r.U8()
	m.Idx = r.U8()
	m.Hops = r.U8()
	return r.Err()
}

// findResp answers a findReq with the owner of the target key.
type findResp struct {
	ReqID   uint32
	Owner   overlay.Address
	Purpose uint8
	Idx     uint8
	Hops    uint8
}

func (m *findResp) MsgName() string { return "find_resp" }
func (m *findResp) Encode(w *overlay.Writer) {
	w.U32(m.ReqID)
	w.Addr(m.Owner)
	w.U8(m.Purpose)
	w.U8(m.Idx)
	w.U8(m.Hops)
}
func (m *findResp) Decode(r *overlay.Reader) error {
	m.ReqID = r.U32()
	m.Owner = r.Addr()
	m.Purpose = r.U8()
	m.Idx = r.U8()
	m.Hops = r.U8()
	return r.Err()
}

// getPredReq asks a node for its predecessor (the stabilize probe).
type getPredReq struct{}

func (m *getPredReq) MsgName() string                { return "get_pred_req" }
func (m *getPredReq) Encode(*overlay.Writer)         {}
func (m *getPredReq) Decode(r *overlay.Reader) error { return r.Err() }

// getPredResp returns the predecessor (NilAddress when unknown) and the
// responder's successor list for succ-list replication.
type getPredResp struct {
	Pred     overlay.Address
	SuccList []overlay.Address
}

func (m *getPredResp) MsgName() string { return "get_pred_resp" }
func (m *getPredResp) Encode(w *overlay.Writer) {
	w.Addr(m.Pred)
	w.Addrs(m.SuccList)
}
func (m *getPredResp) Decode(r *overlay.Reader) error {
	m.Pred = r.Addr()
	m.SuccList = r.Addrs()
	return r.Err()
}

// notify tells a successor about a potential predecessor.
type notify struct{}

func (m *notify) MsgName() string                { return "notify" }
func (m *notify) Encode(*overlay.Writer)         {}
func (m *notify) Decode(r *overlay.Reader) error { return r.Err() }

// data carries a routed payload toward the owner of Dest.
type data struct {
	Src     overlay.Address
	Dest    overlay.Key
	Typ     int32
	Hops    uint8
	Payload []byte
}

func (m *data) MsgName() string { return "data" }
func (m *data) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.Key(m.Dest)
	w.U32(uint32(m.Typ))
	w.U8(m.Hops)
	w.Bytes32(m.Payload)
}
func (m *data) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Dest = r.Key()
	m.Typ = int32(r.U32())
	m.Hops = r.U8()
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// dataIP carries a payload sent directly to an address (macedon_routeIP).
type dataIP struct {
	Src     overlay.Address
	Typ     int32
	Payload []byte
}

func (m *dataIP) MsgName() string { return "data_ip" }
func (m *dataIP) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *dataIP) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}
