// Behavioral validation of the generated Chord agent: the DSL → codegen →
// engine path produces a working DHT. Churn and routing-oracle gates live
// in the repository-root conformance tests; this is the steady-state smoke
// test at package level.
package genchord_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/overlay"
	"macedon/internal/overlays/genchord"
)

func TestGeneratedRingForms(t *testing.T) {
	const n = 12
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: 424})
	if err != nil {
		t.Fatal(err)
	}
	defer c.StopAll()
	stack := []core.Factory{genchord.New()}
	for i := 0; i < n; i++ {
		c.SpawnAt(i, stack, time.Duration(i)*300*time.Millisecond)
	}
	c.RunFor(45 * time.Second)

	oracle := metrics.NewChordOracle(c.Addrs)
	for i, addr := range c.Addrs {
		node := c.Nodes[addr]
		if st := node.Instance("chord").State(); st != "joined" {
			t.Fatalf("node %d state %q", i, st)
		}
		var succs []overlay.Address
		node.Exec(func() {
			ag := node.Instance("chord").Agent().(*genchord.Agent)
			succs = append([]overlay.Address(nil), ag.Succs...)
		})
		want := oracle.Successor(overlay.HashAddress(addr) + 1)
		if len(succs) == 0 || succs[0] != want {
			t.Errorf("node %d (%v): successor %v, oracle %v", i, addr, succs, want)
		}
	}
}
