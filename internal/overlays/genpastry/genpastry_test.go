// Behavioral validation of the generated Pastry agent: the DSL → codegen →
// engine path produces a working prefix-routing DHT. Churn and
// routing-oracle gates live in the repository-root conformance tests; this
// is the steady-state smoke test at package level.
package genpastry_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/genpastry"
)

func TestGeneratedLeafSetsForm(t *testing.T) {
	const n = 12
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: 425})
	if err != nil {
		t.Fatal(err)
	}
	defer c.StopAll()
	stack := []core.Factory{genpastry.New()}
	for i := 0; i < n; i++ {
		c.SpawnAt(i, stack, time.Duration(i)*300*time.Millisecond)
	}
	c.RunFor(45 * time.Second)

	// Every node joined, and its leaf set contains its true ring successor.
	for i, addr := range c.Addrs {
		node := c.Nodes[addr]
		if st := node.Instance("pastry").State(); st != "joined" {
			t.Fatalf("node %d state %q", i, st)
		}
		selfKey := overlay.HashAddress(addr)
		wantSucc := overlay.NilAddress
		var bestD uint32
		for _, a := range c.Addrs {
			if a == addr {
				continue
			}
			d := selfKey.Distance(overlay.HashAddress(a))
			if wantSucc == overlay.NilAddress || d < bestD {
				wantSucc, bestD = a, d
			}
		}
		var leafset []overlay.Address
		node.Exec(func() {
			ag := node.Instance("pastry").Agent().(*genpastry.Agent)
			leafset = append([]overlay.Address(nil), ag.Leafset...)
		})
		found := false
		for _, a := range leafset {
			if a == wantSucc {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d (%v): leafset %v misses ring successor %v", i, addr, leafset, wantSucc)
		}
	}
}
