// Behavioral validation of the generated RandTree agent: the DSL → codegen
// → engine path produces a working overlay, the end-to-end claim of §3.2.
package genrandtree_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/genrandtree"
)

func build(t *testing.T, n int, settle time.Duration) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: 151})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{genrandtree.New()}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func TestGeneratedTreeForms(t *testing.T) {
	const n = 20
	c := build(t, n, 60*time.Second)
	root := c.Addrs[0]
	for _, a := range c.Addrs[1:] {
		if st := c.Nodes[a].Instance("randtree").State(); st != "joined" {
			t.Fatalf("generated node %v state %q", a, st)
		}
		hops := 0
		for cur := a; cur != root; hops++ {
			if hops > n {
				t.Fatalf("parent chain from %v broken", a)
			}
			ps := c.Nodes[cur].Instance("randtree").NeighborsSnapshot("parent")
			if len(ps) == 0 {
				t.Fatalf("node %v has no parent", cur)
			}
			cur = ps[0]
		}
	}
	// Generated degree bound (MAX_KIDS = 4 from the spec's constants).
	for _, a := range c.Addrs {
		if kids := c.Nodes[a].Instance("randtree").NeighborsSnapshot("kids"); len(kids) > 4 {
			t.Fatalf("node %v exceeds generated degree bound: %d", a, len(kids))
		}
	}
}

func TestGeneratedMulticastAndCollect(t *testing.T) {
	const n = 15
	c := build(t, n, 60*time.Second)
	got := map[overlay.Address]int{}
	for _, a := range c.Addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) { got[addr]++ },
		})
	}
	const packets = 5
	for i := 0; i < packets; i++ {
		_ = c.Nodes[c.Addrs[0]].Multicast(0, []byte("generated"), 3, overlay.PriorityDefault)
		c.RunFor(time.Second)
	}
	c.RunFor(10 * time.Second)
	for _, a := range c.Addrs[1:] {
		if got[a] != packets {
			t.Errorf("node %v received %d/%d", a, got[a], packets)
		}
	}
	// Collect flows to the root.
	collected := 0
	c.Nodes[c.Addrs[0]].RegisterHandlers(core.Handlers{
		Deliver: func([]byte, int32, overlay.Address) { collected++ },
	})
	for _, a := range c.Addrs[1:] {
		_ = c.Nodes[a].Collect(0, []byte("up"), 2, overlay.PriorityDefault)
	}
	c.RunFor(10 * time.Second)
	if collected != n-1 {
		t.Fatalf("root collected %d/%d", collected, n-1)
	}
}
