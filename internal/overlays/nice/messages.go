package nice

import (
	"time"

	"macedon/internal/overlay"
)

// query asks a node for its cluster membership at a layer; -1 means the
// node's top layer. Joiners descend the hierarchy with these.
type query struct {
	Layer int8
}

func (m *query) MsgName() string                { return "query" }
func (m *query) Encode(w *overlay.Writer)       { w.U8(uint8(m.Layer)) }
func (m *query) Decode(r *overlay.Reader) error { m.Layer = int8(r.U8()); return r.Err() }

type queryResp struct {
	Layer   int8
	Leader  overlay.Address
	Members []overlay.Address
}

func (m *queryResp) MsgName() string { return "query_resp" }
func (m *queryResp) Encode(w *overlay.Writer) {
	w.U8(uint8(m.Layer))
	w.Addr(m.Leader)
	w.Addrs(m.Members)
}
func (m *queryResp) Decode(r *overlay.Reader) error {
	m.Layer = int8(r.U8())
	m.Leader = r.Addr()
	m.Members = r.Addrs()
	return r.Err()
}

// probeReq/probeResp measure member-to-member RTT, the distance metric the
// entire protocol optimizes.
type probeReq struct {
	Nonce uint32
}

func (m *probeReq) MsgName() string                { return "probe_req" }
func (m *probeReq) Encode(w *overlay.Writer)       { w.U32(m.Nonce) }
func (m *probeReq) Decode(r *overlay.Reader) error { m.Nonce = r.U32(); return r.Err() }

type probeResp struct {
	Nonce uint32
}

func (m *probeResp) MsgName() string                { return "probe_resp" }
func (m *probeResp) Encode(w *overlay.Writer)       { w.U32(m.Nonce) }
func (m *probeResp) Decode(r *overlay.Reader) error { m.Nonce = r.U32(); return r.Err() }

// joinCluster asks a leader to add the sender to its cluster at a layer.
type joinCluster struct {
	Layer int8
}

func (m *joinCluster) MsgName() string                { return "join_cluster" }
func (m *joinCluster) Encode(w *overlay.Writer)       { w.U8(uint8(m.Layer)) }
func (m *joinCluster) Decode(r *overlay.Reader) error { m.Layer = int8(r.U8()); return r.Err() }

// clusterUpdate is a leader's authoritative cluster view broadcast. The
// ParentLeader hint tells a newly promoted leader whom to join at the next
// layer up.
type clusterUpdate struct {
	Layer        int8
	Leader       overlay.Address
	ParentLeader overlay.Address
	Members      []overlay.Address
}

func (m *clusterUpdate) MsgName() string { return "cluster_update" }
func (m *clusterUpdate) Encode(w *overlay.Writer) {
	w.U8(uint8(m.Layer))
	w.Addr(m.Leader)
	w.Addr(m.ParentLeader)
	w.Addrs(m.Members)
}
func (m *clusterUpdate) Decode(r *overlay.Reader) error {
	m.Layer = int8(r.U8())
	m.Leader = r.Addr()
	m.ParentLeader = r.Addr()
	m.Members = r.Addrs()
	return r.Err()
}

// heartbeat carries liveness plus the sender's distance vector so leaders
// can compute graph-theoretic cluster centers.
type heartbeat struct {
	Layer int8
	Addrs []overlay.Address
	Dists []time.Duration // parallel to Addrs, RTT estimates
}

func (m *heartbeat) MsgName() string { return "hb" }
func (m *heartbeat) Encode(w *overlay.Writer) {
	w.U8(uint8(m.Layer))
	w.Addrs(m.Addrs)
	w.U16(uint16(len(m.Dists)))
	for _, d := range m.Dists {
		w.I64(int64(d))
	}
}
func (m *heartbeat) Decode(r *overlay.Reader) error {
	m.Layer = int8(r.U8())
	m.Addrs = r.Addrs()
	n := int(r.U16())
	if err := r.Err(); err != nil {
		return err
	}
	m.Dists = make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		m.Dists = append(m.Dists, time.Duration(r.I64()))
	}
	return r.Err()
}

// mdata is multicast payload moving through the cluster hierarchy. Inc is
// the source's incarnation stamp: a member that restarts resets its Seq
// counter, and without the stamp long-lived receivers would deduplicate the
// fresh stream against the dead one's sequence numbers.
type mdata struct {
	Src     overlay.Address
	Inc     uint64
	Seq     uint32
	Typ     int32
	Payload []byte
}

func (m *mdata) MsgName() string { return "mdata" }
func (m *mdata) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.I64(int64(m.Inc))
	w.U32(m.Seq)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *mdata) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Inc = uint64(r.I64())
	m.Seq = r.U32()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}
