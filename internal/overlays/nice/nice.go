// Package nice implements the NICE application-layer multicast protocol [4]
// as a MACEDON agent: members arrange into a hierarchy of latency-based
// clusters of size [k, 3k-1]; each cluster's leader is its graph-theoretic
// center and represents it one layer up. Joiners descend the hierarchy
// probing each layer's members for the closest, and periodic invariant
// timers split oversize clusters and merge undersize ones — the behaviour
// §2.1.2 of the paper uses as its timer-transition example. Figures 8 and 9
// of the paper validate exactly this implementation's stretch and latency
// against the NICE authors' published results.
package nice

import (
	"sort"
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol.
type Params struct {
	// K is the cluster size constant: clusters hold [K, 3K-1] members
	// (default 3).
	K int
	// HeartbeatPeriod drives intra-cluster liveness and distance gossip
	// (default 2 s).
	HeartbeatPeriod time.Duration
	// RefinePeriod drives the leader's invariant checks: split, merge, and
	// center re-election (default 5 s).
	RefinePeriod time.Duration
	// MemberTimeout removes silent clustermates (default 15 s).
	MemberTimeout time.Duration
}

func (p *Params) setDefaults() {
	if p.K <= 0 {
		p.K = 3
	}
	if p.HeartbeatPeriod <= 0 {
		p.HeartbeatPeriod = 2 * time.Second
	}
	if p.RefinePeriod <= 0 {
		p.RefinePeriod = 5 * time.Second
	}
	if p.MemberTimeout <= 0 {
		p.MemberTimeout = 15 * time.Second
	}
}

// New returns a factory for NICE agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

// maxLayers bounds hierarchy depth: with k >= 3 a population of 2^32 nodes
// needs fewer than 24 layers, so anything deeper is a protocol error.
const maxLayers = 24

// cluster is this node's view of one cluster it belongs to.
type cluster struct {
	leader  overlay.Address
	members map[overlay.Address]bool // includes self
	parent  overlay.Address          // leader of the cluster one layer up
}

// Protocol is one node's NICE instance.
type Protocol struct {
	p Params

	self overlay.Address
	rp   overlay.Address // rendezvous point (the bootstrap)

	layers []*cluster // index = layer; node belongs to 0..len-1

	dists     map[overlay.Address]time.Duration
	probeSent map[uint32]probeState
	nextNonce uint32
	lastSeen  map[overlay.Address]time.Time
	// Leader's gossip matrix: member -> (member -> RTT).
	matrix map[overlay.Address]map[overlay.Address]time.Duration

	// Join descent state.
	descendLayer int8
	descendHost  overlay.Address
	candidates   []overlay.Address
	probesLeft   int
	bestCand     overlay.Address
	bestDist     time.Duration

	inc      uint64 // incarnation stamp carried on our own mdata
	nextSeq  uint32
	seen     map[pktKey]bool
	delivers uint64
}

// pktKey identifies one multicast packet across source restarts: without
// the incarnation, a churned-and-revived source's reset Seq counter would
// collide with the seen-window of its previous life.
type pktKey struct {
	src overlay.Address
	inc uint64
	seq uint32
}

type probeState struct {
	to overlay.Address
	at time.Time
}

// ProtocolName implements the engine's naming hook.
func (n *Protocol) ProtocolName() string { return "nice" }

// TopLayer returns the highest layer this node belongs to.
func (n *Protocol) TopLayer() int { return len(n.layers) - 1 }

// ClusterMembers returns this node's cluster view at a layer.
func (n *Protocol) ClusterMembers(layer int) []overlay.Address {
	if layer < 0 || layer >= len(n.layers) {
		return nil
	}
	out := make([]overlay.Address, 0, len(n.layers[layer].members))
	for a := range n.layers[layer].members {
		out = append(out, a)
	}
	return out
}

// Leader reports whether this node leads its cluster at a layer.
func (n *Protocol) Leader(layer int) bool {
	return layer >= 0 && layer < len(n.layers) && n.layers[layer].leader == n.self
}

// Delivered counts data payloads delivered to the application here.
func (n *Protocol) Delivered() uint64 { return n.delivers }

// Define declares the NICE FSM: the Go equivalent of nice.mac.
func (n *Protocol) Define(d *core.Def) {
	d.States("joining", "joined")
	d.Addressing(core.IPAddressing)

	d.UDPTransport("CTRL")
	d.TCPTransport("DATA")

	d.Message("query", func() overlay.Message { return &query{} }, "CTRL")
	d.Message("query_resp", func() overlay.Message { return &queryResp{} }, "CTRL")
	d.Message("probe_req", func() overlay.Message { return &probeReq{} }, "CTRL")
	d.Message("probe_resp", func() overlay.Message { return &probeResp{} }, "CTRL")
	d.Message("join_cluster", func() overlay.Message { return &joinCluster{} }, "CTRL")
	d.Message("cluster_update", func() overlay.Message { return &clusterUpdate{} }, "CTRL")
	d.Message("hb", func() overlay.Message { return &heartbeat{} }, "CTRL")
	d.Message("mdata", func() overlay.Message { return &mdata{} }, "DATA")

	d.PeriodicTimer("hb", n.p.HeartbeatPeriod)
	d.PeriodicTimer("refine", n.p.RefinePeriod)
	d.Timer("join_retry", 5*time.Second)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, n.apiInit)
	d.OnAPI(overlay.APIMulticast, core.In("joined"), core.Read, n.apiMulticast)

	d.OnRecv("query", core.Any, core.Read, n.recvQuery)
	d.OnRecv("query_resp", core.In("joining"), core.Write, n.recvQueryResp)
	d.OnRecv("probe_req", core.Any, core.Read, n.recvProbeReq)
	d.OnRecv("probe_resp", core.Any, core.Write, n.recvProbeResp)
	d.OnRecv("join_cluster", core.In("joined"), core.Write, n.recvJoinCluster)
	d.OnRecv("cluster_update", core.Any, core.Write, n.recvClusterUpdate)
	d.OnRecv("hb", core.Any, core.Write, n.recvHeartbeat)
	d.OnRecv("mdata", core.In("joined"), core.Read, n.recvMdata)

	d.OnTimer("hb", core.In("joined"), core.Write, n.onHeartbeat)
	d.OnTimer("refine", core.In("joined"), core.Write, n.onRefine)
	d.OnTimer("join_retry", core.In("joining"), core.Write, n.onJoinRetry)
}

func (n *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	n.self = ctx.Self()
	n.rp = call.Bootstrap
	// The full virtual-nanosecond clock reading: deterministic, and a
	// revived node always restarts strictly later than its previous
	// incarnation, so the stamp can never collide across restarts.
	n.inc = uint64(ctx.Now().UnixNano())
	n.dists = make(map[overlay.Address]time.Duration)
	n.probeSent = make(map[uint32]probeState)
	n.lastSeen = make(map[overlay.Address]time.Time)
	n.matrix = make(map[overlay.Address]map[overlay.Address]time.Duration)
	n.seen = make(map[pktKey]bool)
	if n.rp == n.self || n.rp == overlay.NilAddress {
		// The rendezvous point starts as the lone member and leader of L0.
		n.layers = []*cluster{{leader: n.self, members: map[overlay.Address]bool{n.self: true}}}
		n.becomeJoined(ctx)
		return
	}
	ctx.StateChange("joining")
	n.descendHost = n.rp
	n.descendLayer = -1 // ask for the RP's top layer
	_ = ctx.Send(n.rp, &query{Layer: -1}, overlay.PriorityDefault)
	ctx.TimerSched("join_retry", 0)
}

func (n *Protocol) becomeJoined(ctx *core.Context) {
	ctx.StateChange("joined")
	ctx.TimerSched("hb", n.jitter(ctx, n.p.HeartbeatPeriod))
	ctx.TimerSched("refine", n.jitter(ctx, n.p.RefinePeriod))
}

func (n *Protocol) jitter(ctx *core.Context, d time.Duration) time.Duration {
	return d*3/4 + time.Duration(ctx.Rand().Int63n(int64(d)/2+1))
}

func (n *Protocol) onJoinRetry(ctx *core.Context) {
	// Restart the descent from the RP.
	n.descendHost = n.rp
	n.descendLayer = -1
	_ = ctx.Send(n.rp, &query{Layer: -1}, overlay.PriorityDefault)
	ctx.TimerSched("join_retry", 5*time.Second)
}

// --- join descent -----------------------------------------------------------

func (n *Protocol) recvQuery(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*query)
	layer := int(m.Layer)
	if layer < 0 {
		layer = len(n.layers) - 1
	}
	if layer < 0 || layer >= len(n.layers) {
		// Not a member at that layer; answer with the lowest cluster so the
		// joiner can still make progress.
		layer = 0
	}
	if len(n.layers) == 0 {
		return // still joining ourselves
	}
	cl := n.layers[layer]
	_ = ctx.Send(ev.From, &queryResp{Layer: int8(layer), Leader: cl.leader,
		Members: setToSlice(cl.members)}, overlay.PriorityDefault)
}

func (n *Protocol) recvQueryResp(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*queryResp)
	n.descendLayer = m.Layer
	n.candidates = nil
	for _, a := range m.Members {
		if a != n.self {
			n.candidates = append(n.candidates, a)
		}
	}
	if len(n.candidates) == 0 {
		// Empty layer: join the responder's cluster directly.
		_ = ctx.Send(ev.From, &joinCluster{Layer: 0}, overlay.PriorityDefault)
		return
	}
	// Probe every member of this layer; the closest guides the descent
	// (Figures 8/9 rest on this latency-driven placement).
	n.probesLeft = len(n.candidates)
	n.bestCand = overlay.NilAddress
	n.bestDist = 1<<63 - 1
	for _, a := range n.candidates {
		n.sendProbe(ctx, a)
	}
}

func (n *Protocol) sendProbe(ctx *core.Context, to overlay.Address) {
	n.nextNonce++
	n.probeSent[n.nextNonce] = probeState{to: to, at: ctx.Now()}
	_ = ctx.Send(to, &probeReq{Nonce: n.nextNonce}, overlay.PriorityDefault)
}

func (n *Protocol) recvProbeReq(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*probeReq)
	_ = ctx.Send(ev.From, &probeResp{Nonce: m.Nonce}, overlay.PriorityDefault)
}

func (n *Protocol) recvProbeResp(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*probeResp)
	ps, ok := n.probeSent[m.Nonce]
	if !ok {
		return
	}
	delete(n.probeSent, m.Nonce)
	rtt := ctx.Now().Sub(ps.at)
	n.dists[ps.to] = rtt
	if ctx.State() != "joining" {
		return
	}
	// Join-descent accounting.
	if inList(n.candidates, ps.to) {
		if rtt < n.bestDist {
			n.bestCand, n.bestDist = ps.to, rtt
		}
		n.probesLeft--
		if n.probesLeft == 0 && n.bestCand != overlay.NilAddress {
			if n.descendLayer <= 0 {
				// Bottom: join the closest candidate's L0 cluster.
				_ = ctx.Send(n.bestCand, &joinCluster{Layer: 0}, overlay.PriorityDefault)
				return
			}
			// Descend: ask the closest leader for its cluster one layer
			// down.
			n.descendHost = n.bestCand
			_ = ctx.Send(n.bestCand, &query{Layer: n.descendLayer - 1}, overlay.PriorityDefault)
		}
	}
}

// recvJoinCluster runs at a (would-be) leader: add the member. Refreshes
// from existing members are idempotent soft state.
func (n *Protocol) recvJoinCluster(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinCluster)
	layer := int(m.Layer)
	if layer < 0 || layer > maxLayers {
		return
	}
	n.lastSeen[ev.From] = ctx.Now()
	if layer == len(n.layers) && layer > 0 && n.layers[layer-1].leader == n.self {
		// A fellow leader wants a cluster one above our shared top: grow
		// the hierarchy (this is also how the very first split creates L1).
		n.layers = append(n.layers, &cluster{
			leader:  n.self,
			members: map[overlay.Address]bool{n.self: true, ev.From: true},
		})
		n.broadcastUpdate(ctx, layer)
		return
	}
	if layer >= len(n.layers) {
		// We are not a member at that layer. Redirect the asker toward the
		// highest leader we know: a provisional view listing both, which
		// the asker installs (invariant permitting) and then refreshes with
		// that leader directly.
		top := len(n.layers) - 1
		if top < 0 {
			return
		}
		lead := n.layers[top].leader
		if lead == ev.From || lead == overlay.NilAddress {
			return // the asker already heads the tallest chain we know
		}
		_ = ctx.Send(ev.From, &clusterUpdate{Layer: m.Layer, Leader: lead,
			Members: []overlay.Address{lead, ev.From}}, overlay.PriorityDefault)
		return
	}
	cl := n.layers[layer]
	if cl.leader != n.self {
		// Not the leader: bounce the joiner to the real one, listing the
		// joiner provisionally so it installs the corrected leader and
		// refreshes with it.
		ms := append(setToSlice(cl.members), ev.From)
		_ = ctx.Send(ev.From, &clusterUpdate{Layer: int8(layer), Leader: cl.leader,
			ParentLeader: cl.parent, Members: ms}, overlay.PriorityDefault)
		return
	}
	if cl.members[ev.From] {
		return // refresh: nothing changed
	}
	cl.members[ev.From] = true
	n.broadcastUpdate(ctx, layer)
}

// broadcastUpdate sends the leader's authoritative view to every member.
func (n *Protocol) broadcastUpdate(ctx *core.Context, layer int) {
	cl := n.layers[layer]
	members := setToSlice(cl.members)
	up := &clusterUpdate{Layer: int8(layer), Leader: cl.leader,
		ParentLeader: cl.parent, Members: members}
	for _, a := range members {
		if a != n.self {
			_ = ctx.Send(a, up, overlay.PriorityDefault)
		}
	}
	ctx.NotifyNeighbors(overlay.NbrTypeClusterMember, setToSlice(cl.members))
}

func (n *Protocol) recvClusterUpdate(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*clusterUpdate)
	layer := int(m.Layer)
	members := make(map[overlay.Address]bool, len(m.Members))
	mentioned := false
	for _, a := range m.Members {
		members[a] = true
		if a == n.self {
			mentioned = true
		}
	}
	if !mentioned {
		if ctx.State() == "joining" {
			// Bounced during the descent: join via the named leader.
			_ = ctx.Send(m.Leader, &joinCluster{Layer: 0}, overlay.PriorityDefault)
			return
		}
		// Only react when the update is authoritative for the cluster we
		// believe we are in: our recorded leader dropped us, so re-join.
		// Anything else is a stale or foreign view.
		if layer >= 0 && layer < len(n.layers) && n.layers[layer].leader == m.Leader {
			_ = ctx.Send(m.Leader, &joinCluster{Layer: m.Layer}, overlay.PriorityDefault)
		}
		return
	}
	if layer < 0 || layer > maxLayers {
		return // corrupt or amplified view; ignore
	}
	// Membership at layer i requires leadership at i-1: never install a
	// view more than one layer above what we legitimately hold.
	if layer > len(n.layers) {
		return
	}
	if layer == len(n.layers) {
		if layer > 0 && n.layers[layer-1].leader != n.self {
			return
		}
		n.layers = append(n.layers, &cluster{members: map[overlay.Address]bool{n.self: true}})
	}
	cl := n.layers[layer]
	wasLeader := cl.leader == n.self
	cl.members = members
	cl.leader = m.Leader
	cl.parent = m.ParentLeader
	for a := range members {
		n.lastSeen[a] = ctx.Now()
	}
	if ctx.State() == "joining" {
		n.becomeJoined(ctx)
		ctx.TimerCancel("join_retry")
	}
	isLeader := m.Leader == n.self
	switch {
	case isLeader && !wasLeader:
		n.promote(ctx, layer)
	case !isLeader && wasLeader:
		n.demote(ctx, layer)
	}
}

// promote: a new leader of layer joins the cluster one layer up. With no
// parent hint the rendezvous point bootstraps the connection, exactly as a
// fresh join does.
func (n *Protocol) promote(ctx *core.Context, layer int) {
	parent := n.layers[layer].parent
	if parent == overlay.NilAddress || parent == n.self {
		parent = n.rp
	}
	if parent == overlay.NilAddress || parent == n.self {
		return
	}
	_ = ctx.Send(parent, &joinCluster{Layer: int8(layer + 1)}, overlay.PriorityDefault)
}

// demote: an ex-leader leaves every layer above.
func (n *Protocol) demote(ctx *core.Context, layer int) {
	if len(n.layers) > layer+1 {
		n.layers = n.layers[:layer+1]
	}
}

// --- maintenance ------------------------------------------------------------

func (n *Protocol) onHeartbeat(ctx *core.Context) {
	for layer, cl := range n.layers {
		// Gossip distances to clustermates and probe the ones we lack.
		var addrs []overlay.Address
		for a := range n.dists {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		ds := make([]time.Duration, len(addrs))
		for i, a := range addrs {
			ds[i] = n.dists[a]
		}
		hb := &heartbeat{Layer: int8(layer), Addrs: addrs, Dists: ds}
		for _, a := range setToSlice(cl.members) {
			if a == n.self {
				continue
			}
			_ = ctx.Send(a, hb, overlay.PriorityDefault)
			if _, ok := n.dists[a]; !ok {
				n.sendProbe(ctx, a)
			}
		}
		if cl.leader == n.self {
			// The leader's view is the soft-state authority: rebroadcast it
			// every heartbeat so lost or stale updates cannot leave member
			// views divergent (divergent views break the forwarding rule).
			n.broadcastUpdate(ctx, layer)
		} else if cl.leader != overlay.NilAddress {
			// Members refresh their membership with the leader.
			_ = ctx.Send(cl.leader, &joinCluster{Layer: int8(layer)}, overlay.PriorityDefault)
		}
	}
}

func (n *Protocol) recvHeartbeat(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*heartbeat)
	n.lastSeen[ev.From] = ctx.Now()
	row := make(map[overlay.Address]time.Duration, len(m.Addrs))
	for i, a := range m.Addrs {
		if i < len(m.Dists) {
			row[a] = m.Dists[i]
		}
	}
	n.matrix[ev.From] = row
}

// onRefine is the invariant check the paper cites: "a NICE node schedules
// timers to check protocol invariants; if a cluster is unsuitably large or
// small, the node initiates a cluster split or merge".
func (n *Protocol) onRefine(ctx *core.Context) {
	now := ctx.Now()
	// Partition self-heal: a non-RP node alone in its bottom cluster
	// restarts the join descent.
	if n.self != n.rp && len(n.layers) > 0 && len(n.layers[0].members) <= 1 {
		ctx.StateChange("joining")
		n.layers = nil
		n.onJoinRetry(ctx)
		return
	}
	// Enforce the hierarchy invariant: membership at layer i requires
	// leadership at layer i-1. Drop phantom layers above a lost leadership.
	for i := 1; i < len(n.layers); i++ {
		if n.layers[i-1].leader != n.self {
			n.layers = n.layers[:i]
			break
		}
	}
	// Upward connectivity is soft state: a non-RP node that leads its top
	// cluster must be a member one layer higher; keep asking until an
	// update installs it (lost promotions heal here).
	if top := len(n.layers) - 1; n.self != n.rp && top >= 0 && n.layers[top].leader == n.self {
		target := n.layers[top].parent
		if target == overlay.NilAddress || target == n.self {
			target = n.rp
		}
		if target != n.self && target != overlay.NilAddress {
			_ = ctx.Send(target, &joinCluster{Layer: int8(top + 1)}, overlay.PriorityDefault)
		}
	}
	// Expire silent members everywhere; elect replacement leaders.
	for layer, cl := range n.layers {
		changed := false
		for _, a := range setToSlice(cl.members) {
			if a == n.self {
				continue
			}
			seen, ok := n.lastSeen[a]
			if ok && now.Sub(seen) > n.p.MemberTimeout {
				delete(cl.members, a)
				delete(n.matrix, a)
				changed = true
				if cl.leader == a {
					cl.leader = n.center(cl)
				}
			}
		}
		if changed && cl.leader == n.self {
			n.broadcastUpdate(ctx, layer)
		}
	}
	// Leader invariants, bottom-up.
	for layer := 0; layer < len(n.layers); layer++ {
		cl := n.layers[layer]
		if cl.leader != n.self {
			continue
		}
		size := len(cl.members)
		switch {
		case size > 3*n.p.K-1:
			n.split(ctx, layer)
		case size < n.p.K && layer+1 < len(n.layers):
			n.merge(ctx, layer)
		default:
			// Re-elect the center if it moved.
			if c := n.center(cl); c != n.self && c != overlay.NilAddress {
				cl.leader = c
				n.broadcastUpdate(ctx, layer)
				n.demote(ctx, layer)
			}
		}
	}
}

// dist looks up the leader's best estimate of the a↔b RTT.
func (n *Protocol) dist(a, b overlay.Address) time.Duration {
	if a == b {
		return 0
	}
	if a == n.self {
		if d, ok := n.dists[b]; ok {
			return d
		}
	}
	if row, ok := n.matrix[a]; ok {
		if d, ok := row[b]; ok {
			return d
		}
	}
	if b == n.self {
		if d, ok := n.dists[a]; ok {
			return d
		}
	}
	if row, ok := n.matrix[b]; ok {
		if d, ok := row[a]; ok {
			return d
		}
	}
	return time.Second // unknown: pessimistic
}

// center returns the graph-theoretic center of a cluster: the member
// minimizing its maximum distance to the others (ties to lowest address).
func (n *Protocol) center(cl *cluster) overlay.Address {
	best := overlay.NilAddress
	bestMax := time.Duration(1<<63 - 1)
	for a := range cl.members {
		var worst time.Duration
		for b := range cl.members {
			if d := n.dist(a, b); d > worst {
				worst = d
			}
		}
		if worst < bestMax || (worst == bestMax && (best == overlay.NilAddress || a < best)) {
			best, bestMax = a, worst
		}
	}
	return best
}

// split partitions an oversize cluster around its two farthest members and
// hands each part to its center, the classic NICE split.
func (n *Protocol) split(ctx *core.Context, layer int) {
	cl := n.layers[layer]
	members := setToSlice(cl.members)
	// Seeds: the farthest pair (by the leader's matrix).
	var s1, s2 overlay.Address
	var worst time.Duration = -1
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if d := n.dist(members[i], members[j]); d > worst {
				worst, s1, s2 = d, members[i], members[j]
			}
		}
	}
	if s1 == overlay.NilAddress || s2 == overlay.NilAddress {
		return
	}
	g1 := map[overlay.Address]bool{s1: true}
	g2 := map[overlay.Address]bool{s2: true}
	for _, a := range members {
		if a == s1 || a == s2 {
			continue
		}
		if n.dist(a, s1) <= n.dist(a, s2) {
			g1[a] = true
		} else {
			g2[a] = true
		}
	}
	l1 := n.center(&cluster{members: g1})
	l2 := n.center(&cluster{members: g2})
	topSplit := layer+1 >= len(n.layers)
	parent := cl.parent
	if !topSplit {
		parent = n.layers[layer+1].leader
	} else {
		// Splitting the top cluster creates the next layer: the two part
		// leaders form a fresh cluster one layer up.
		upLead := l1
		if n.dist(l2, l1) < n.dist(l1, l2) || (l2 < l1 && n.dist(l1, l2) == n.dist(l2, l1)) {
			upLead = l2
		}
		parent = upLead
		upSet := map[overlay.Address]bool{l1: true, l2: true}
		up := &clusterUpdate{Layer: int8(layer + 1), Leader: upLead,
			ParentLeader: overlay.NilAddress, Members: setToSlice(upSet)}
		for _, lead := range []overlay.Address{l1, l2} {
			if lead != n.self {
				_ = ctx.Send(lead, up, overlay.PriorityDefault)
			}
		}
		if upSet[n.self] {
			for len(n.layers) <= layer+1 {
				n.layers = append(n.layers, &cluster{members: map[overlay.Address]bool{n.self: true}})
			}
			upCl := n.layers[layer+1]
			upCl.members = upSet
			upCl.leader = upLead
			upCl.parent = overlay.NilAddress
		}
	}
	// Install whichever part we belong to; announce both.
	announce := func(lead overlay.Address, set map[overlay.Address]bool) {
		ms := setToSlice(set)
		up := &clusterUpdate{Layer: int8(layer), Leader: lead, ParentLeader: parent,
			Members: ms}
		for _, a := range ms {
			if a != n.self {
				_ = ctx.Send(a, up, overlay.PriorityDefault)
			}
		}
	}
	if g1[n.self] {
		cl.members, cl.leader = g1, l1
	} else {
		cl.members, cl.leader = g2, l2
	}
	cl.parent = parent
	announce(l1, g1)
	announce(l2, g2)
	if cl.leader != n.self {
		n.demote(ctx, layer)
	}
	ctx.Tracef(core.TraceLow, "split layer %d into %d+%d", layer, len(g1), len(g2))
}

// merge folds an undersize cluster into the nearest sibling cluster: its
// members re-join through that sibling's leader.
func (n *Protocol) merge(ctx *core.Context, layer int) {
	upper := n.layers[layer+1]
	var target overlay.Address
	var best time.Duration = 1<<63 - 1
	for a := range upper.members {
		if a == n.self {
			continue
		}
		if d := n.dist(n.self, a); d < best {
			target, best = a, d
		}
	}
	if target == overlay.NilAddress {
		return
	}
	cl := n.layers[layer]
	for _, a := range setToSlice(cl.members) {
		if a != n.self {
			// Hand each member a provisional view of the target cluster
			// listing them; their refresh with the target completes it.
			_ = ctx.Send(a, &clusterUpdate{Layer: int8(layer), Leader: target,
				ParentLeader: upper.leader, Members: []overlay.Address{target, a}}, overlay.PriorityDefault)
		}
	}
	// Collapse our own view and step down; the target's update will restore
	// a consistent cluster listing us.
	cl.members = map[overlay.Address]bool{n.self: true}
	cl.leader = target
	n.demote(ctx, layer)
	_ = ctx.Send(target, &joinCluster{Layer: int8(layer)}, overlay.PriorityDefault)
	ctx.Tracef(core.TraceLow, "merge layer %d into cluster of %v", layer, target)
}

// --- data path ----------------------------------------------------------------

func (n *Protocol) apiMulticast(ctx *core.Context, call *core.APICall) {
	n.nextSeq++
	m := &mdata{Src: n.self, Inc: n.inc, Seq: n.nextSeq, Typ: call.PayloadType, Payload: call.Payload}
	n.forward(ctx, m, -1, call.Priority)
}

// forward implements NICE data forwarding: send to all members of every
// cluster this node belongs to, except the cluster the packet arrived from.
func (n *Protocol) forward(ctx *core.Context, m *mdata, fromLayer int, pri int) {
	sent := map[overlay.Address]bool{n.self: true}
	for layer, cl := range n.layers {
		if layer == fromLayer {
			continue
		}
		for _, a := range setToSlice(cl.members) {
			if sent[a] || a == m.Src {
				continue
			}
			sent[a] = true
			_ = ctx.Send(a, m, pri)
		}
	}
}

func (n *Protocol) recvMdata(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*mdata)
	key := pktKey{src: m.Src, inc: m.Inc, seq: m.Seq}
	if n.seen[key] {
		return
	}
	n.seen[key] = true
	if len(n.seen) > 8192 {
		n.seen = map[pktKey]bool{key: true} // coarse window reset
	}
	// Which of our clusters does the sender share with us?
	fromLayer := -1
	for layer, cl := range n.layers {
		if cl.members[ev.From] {
			fromLayer = layer
			break
		}
	}
	n.delivers++
	ctx.Deliver(m.Payload, m.Typ, m.Src)
	n.forward(ctx, m, fromLayer, overlay.PriorityDefault)
}

// setToSlice returns the members in sorted order: every send loop iterates
// these slices, which keeps simulation runs deterministic (map iteration
// order would otherwise leak runtime randomness into event order).
func setToSlice(s map[overlay.Address]bool) []overlay.Address {
	out := make([]overlay.Address, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func inList(l []overlay.Address, a overlay.Address) bool {
	for _, x := range l {
		if x == a {
			return true
		}
	}
	return false
}
