package nice_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/nice"
	"macedon/internal/topology"
)

func build(t *testing.T, n int, p nice.Params, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{nice.New(p)}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func niceOf(c *harness.Cluster, a overlay.Address) *nice.Protocol {
	return c.Nodes[a].Instance("nice").Agent().(*nice.Protocol)
}

func TestAllJoin(t *testing.T) {
	c := build(t, 20, nice.Params{}, 3*time.Minute, 91)
	for _, a := range c.Addrs {
		if st := c.Nodes[a].Instance("nice").State(); st != "joined" {
			t.Fatalf("node %v state %q", a, st)
		}
		if len(niceOf(c, a).ClusterMembers(0)) < 2 {
			t.Errorf("node %v has a singleton L0 cluster", a)
		}
	}
}

func TestClusterSizeInvariant(t *testing.T) {
	const k = 3
	c := build(t, 30, nice.Params{K: k}, 5*time.Minute, 93)
	over := 0
	for _, a := range c.Addrs {
		p := niceOf(c, a)
		if p.Leader(0) {
			if size := len(p.ClusterMembers(0)); size > 3*k-1 {
				over++
				t.Logf("leader %v cluster size %d exceeds %d", a, size, 3*k-1)
			}
		}
	}
	if over > 1 {
		t.Fatalf("%d clusters above the 3k-1 bound after settling", over)
	}
}

func TestHierarchyForms(t *testing.T) {
	c := build(t, 30, nice.Params{K: 3}, 5*time.Minute, 95)
	// With 30 nodes and k=3 there must be at least two layers somewhere.
	maxTop := 0
	for _, a := range c.Addrs {
		if tl := niceOf(c, a).TopLayer(); tl > maxTop {
			maxTop = tl
		}
	}
	if maxTop < 1 {
		t.Fatalf("no hierarchy formed: max top layer = %d", maxTop)
	}
}

func TestMulticastReachesAll(t *testing.T) {
	const n = 24
	c := build(t, n, nice.Params{}, 8*time.Minute, 97)
	got := map[overlay.Address]int{}
	for _, a := range c.Addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) { got[addr]++ },
		})
	}
	const packets = 5
	for i := 0; i < packets; i++ {
		_ = c.Nodes[c.Addrs[0]].Multicast(0, make([]byte, 500), 1, overlay.PriorityDefault)
		c.RunFor(2 * time.Second)
	}
	c.RunFor(30 * time.Second)
	// NICE has no retransmission layer: a packet in flight during a
	// cluster reconfiguration can be lost (as in the published system), so
	// require all-but-one delivery per member rather than perfection.
	missing := 0
	for _, a := range c.Addrs[1:] {
		if got[a] < packets-1 {
			missing++
			t.Logf("node %v received %d/%d", a, got[a], packets)
		}
	}
	if missing > 0 {
		t.Fatalf("%d/%d members missed more than one packet", missing, n-1)
	}
}

// TestLatencyAwareClustering puts members at two distant sites: L0 clusters
// must not straddle the WAN link.
func TestLatencyAwareClustering(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	p := topology.SiteMatrixParams{
		Latency: [][]time.Duration{
			{0, ms(80)},
			{ms(80), 0},
		},
		LANLatency: ms(1),
	}
	g, gws, err := topology.SiteMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	addrs, sites := topology.AttachSiteClients(g, gws, 6, 1, p)
	c, err := harness.NewCluster(harness.ClusterConfig{Graph: g, Addrs: addrs, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{nice.New(nice.Params{K: 3})}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Minute)
	siteOf := map[overlay.Address]int{}
	for i, a := range addrs {
		siteOf[a] = sites[i]
	}
	straddling := 0
	for _, a := range addrs {
		p := niceOf(c, a)
		for _, m := range p.ClusterMembers(0) {
			if siteOf[m] != siteOf[a] {
				straddling++
			}
		}
	}
	// A few transients are tolerable; systematic straddling is not.
	if straddling > 4 {
		t.Fatalf("%d cross-site L0 cluster memberships; clustering ignores latency", straddling)
	}
}
