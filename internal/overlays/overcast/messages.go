package overcast

import "macedon/internal/overlay"

// joinMsg is the paper's "BEST_EFFORT join { }": an empty datagram.
type joinMsg struct{}

func (m *joinMsg) MsgName() string                { return "join" }
func (m *joinMsg) Encode(*overlay.Writer)         {}
func (m *joinMsg) Decode(r *overlay.Reader) error { return r.Err() }

// joinReply is the paper's "HIGHEST join_reply { int response; }", extended
// with the grandparent/sibling information a joiner probes later (the paper
// omits how a node acquires this; the reply is the natural carrier) and the
// acceptor's root path, which keeps relocation acyclic.
type joinReply struct {
	Response    int32
	Redirect    overlay.Address
	Grandparent overlay.Address
	Siblings    []overlay.Address
	RootPath    []overlay.Address // acceptor first, root last
}

func (m *joinReply) MsgName() string { return "join_reply" }
func (m *joinReply) Encode(w *overlay.Writer) {
	w.I32(m.Response)
	w.Addr(m.Redirect)
	w.Addr(m.Grandparent)
	w.Addrs(m.Siblings)
	w.Addrs(m.RootPath)
}
func (m *joinReply) Decode(r *overlay.Reader) error {
	m.Response = r.I32()
	m.Redirect = r.Addr()
	m.Grandparent = r.Addr()
	m.Siblings = r.Addrs()
	m.RootPath = r.Addrs()
	return r.Err()
}

// removeMsg tells an old parent its child moved (Figure 6 line 6).
type removeMsg struct{}

func (m *removeMsg) MsgName() string                { return "remove" }
func (m *removeMsg) Encode(*overlay.Writer)         {}
func (m *removeMsg) Decode(r *overlay.Reader) error { return r.Err() }

// probeRequest asks a relative to send a probe train.
type probeRequest struct {
	Count uint16
}

func (m *probeRequest) MsgName() string                { return "probe_request" }
func (m *probeRequest) Encode(w *overlay.Writer)       { w.U16(m.Count) }
func (m *probeRequest) Decode(r *overlay.Reader) error { m.Count = r.U16(); return r.Err() }

// probe is one padded element of a train.
type probe struct {
	Idx   uint16
	Total uint16
	Pad   []byte
}

func (m *probe) MsgName() string { return "probe" }
func (m *probe) Encode(w *overlay.Writer) {
	w.U16(m.Idx)
	w.U16(m.Total)
	w.Bytes32(m.Pad)
}
func (m *probe) Decode(r *overlay.Reader) error {
	m.Idx = r.U16()
	m.Total = r.U16()
	m.Pad = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// probeReply closes a train; it carries the prober's root path so the
// probed node never relocates under its own descendant.
type probeReply struct {
	Sent     uint16
	RootPath []overlay.Address
}

func (m *probeReply) MsgName() string { return "probe_reply" }
func (m *probeReply) Encode(w *overlay.Writer) {
	w.U16(m.Sent)
	w.Addrs(m.RootPath)
}
func (m *probeReply) Decode(r *overlay.Reader) error {
	m.Sent = r.U16()
	m.RootPath = r.Addrs()
	return r.Err()
}

// familyUpdate refreshes a child's grandparent/sibling view and carries the
// parent's root path for cycle detection.
type familyUpdate struct {
	Grandparent overlay.Address
	Siblings    []overlay.Address
	RootPath    []overlay.Address // parent first, root last
}

func (m *familyUpdate) MsgName() string { return "family" }
func (m *familyUpdate) Encode(w *overlay.Writer) {
	w.Addr(m.Grandparent)
	w.Addrs(m.Siblings)
	w.Addrs(m.RootPath)
}
func (m *familyUpdate) Decode(r *overlay.Reader) error {
	m.Grandparent = r.Addr()
	m.Siblings = r.Addrs()
	m.RootPath = r.Addrs()
	return r.Err()
}

// mdata is multicast payload moving down the tree. (Inc, Seq) deduplicates
// deliveries when relocation rewires the tree mid-flight: Inc is the
// source's incarnation stamp, so a restarted root whose Seq counter resets
// is not mistaken for a replay of the previous incarnation's stream.
type mdata struct {
	Src     overlay.Address
	Inc     uint64
	Seq     uint32
	Typ     int32
	Payload []byte
}

func (m *mdata) MsgName() string { return "mdata" }
func (m *mdata) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.I64(int64(m.Inc))
	w.U32(m.Seq)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *mdata) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Inc = uint64(r.I64())
	m.Seq = r.U32()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}
