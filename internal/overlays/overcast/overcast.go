// Package overcast implements Overcast [13] as a MACEDON agent, following
// the five-state FSM the paper's Figure 1 draws: init → joining → joined,
// with the periodic Q timer driving a probing episode (joined → probed) in
// which the node asks its grandparent and siblings to send equally spaced
// probe trains (their Z timer), estimates the bandwidth from each, and
// relocates to a better parent when one exists. The transport set is the
// paper's §3.1 Overcast example verbatim: SWP HIGHEST, TCP HIGH/MED/LOW,
// UDP BEST_EFFORT.
package overcast

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol.
type Params struct {
	// ProbeRequestPeriod is the Q timer: how often a joined node
	// re-evaluates its position (default 10 s).
	ProbeRequestPeriod time.Duration
	// ProbeSpacing is the Z timer: the gap between probes in a train
	// (default 20 ms).
	ProbeSpacing time.Duration
	// ProbesPerTrain is the train length (default 10).
	ProbesPerTrain int
	// ProbeSize is the padding per probe (default 1000 bytes).
	ProbeSize int
	// ProbeTimeout bounds a probing episode (default 5 s).
	ProbeTimeout time.Duration
	// MaxChildren bounds fan-out (default 6).
	MaxChildren int
	// MoveGain is the bandwidth-improvement factor required to relocate
	// (default 1.2: move only for a 20% better estimate).
	MoveGain float64
	// JoinRetryPeriod re-sends a join request that got no reply (joins ride
	// best-effort UDP; without a retry a lost join orphans the node
	// forever, which kill/revive churn reliably provokes). Default 2 s.
	JoinRetryPeriod time.Duration
}

func (p *Params) setDefaults() {
	if p.ProbeRequestPeriod <= 0 {
		p.ProbeRequestPeriod = 10 * time.Second
	}
	if p.ProbeSpacing <= 0 {
		p.ProbeSpacing = 20 * time.Millisecond
	}
	if p.ProbesPerTrain <= 0 {
		p.ProbesPerTrain = 10
	}
	if p.ProbeSize <= 0 {
		p.ProbeSize = 1000
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = 5 * time.Second
	}
	if p.MaxChildren <= 0 {
		p.MaxChildren = 6
	}
	if p.MoveGain <= 1 {
		p.MoveGain = 1.2
	}
	if p.JoinRetryPeriod <= 0 {
		p.JoinRetryPeriod = 2 * time.Second
	}
}

// New returns a factory for Overcast agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

// Protocol is one node's Overcast instance. The field names mirror the
// state_variables block of the paper's overcast.mac excerpt (§3.1): papa,
// kids, grandpa, brothers, probed_node, probes_to_send.
type Protocol struct {
	p Params

	self overlay.Address
	root overlay.Address

	grandpa  overlay.Address
	brothers []overlay.Address
	rootPath []overlay.Address // self first, root last

	// Candidate root paths from the latest probe replies: a candidate whose
	// path contains us is our descendant and must never become our parent.
	candPaths map[overlay.Address][]overlay.Address

	// Probing-episode state (as the probed node).
	awaiting  int // replies still expected ("count" in Figure 1)
	estimates map[overlay.Address]bandwidthEstimate
	moves     uint64

	// Probing-train state (as the prober).
	probedNode   overlay.Address // who we are sending probes to
	probesToSend int             // "# probes" in Figure 1
	firstArrival map[overlay.Address]time.Time
	lastArrival  map[overlay.Address]time.Time
	probesSeen   map[overlay.Address]int

	// Multicast dedup: relocation can transiently double-parent a node.
	// Keys carry the source's incarnation stamp so a restarted root (whose
	// Seq counter resets to 0) is never deduplicated against the previous
	// incarnation's stream — the TTL-class bug kill/revive churn exposes.
	// curInc/curHigh track the newest incarnation and its stream head so
	// window pruning is always judged against the live stream, never
	// against a stale backlog replay.
	inc      uint64
	nextSeq  uint32
	seenSeqs map[seqKey]bool
	curInc   uint64
	curHigh  uint32

	// Overcast is *reliable* multicast [13]: parents keep a short log and
	// replay it to newly adopted children so moves do not lose packets.
	backlog []*mdata
}

// backlogWindow bounds the replay log.
const backlogWindow = 64

// seqKey identifies one multicast packet across source restarts.
type seqKey struct {
	inc uint64
	seq uint32
}

type bandwidthEstimate struct {
	bitsPerSec float64
	delay      time.Duration
}

// ProtocolName implements the engine's naming hook.
func (o *Protocol) ProtocolName() string { return "overcast" }

// Moves counts parent relocations (for experiments).
func (o *Protocol) Moves() uint64 { return o.moves }

// Grandparent returns the currently known grandparent.
func (o *Protocol) Grandparent() overlay.Address { return o.grandpa }

// Define declares the Overcast FSM: the Go equivalent of overcast.mac and
// of Figure 1.
func (o *Protocol) Define(d *core.Def) {
	d.States("joining", "joined", "probing", "probed")
	d.Addressing(core.IPAddressing)

	// The transports block of §3.1, verbatim.
	d.SWPTransport("HIGHEST", 0)
	d.TCPTransport("HIGH")
	d.TCPTransport("MED")
	d.TCPTransport("LOW")
	d.UDPTransport("BEST_EFFORT")

	d.Message("join", func() overlay.Message { return &joinMsg{} }, "BEST_EFFORT")
	d.Message("join_reply", func() overlay.Message { return &joinReply{} }, "HIGHEST")
	d.Message("remove", func() overlay.Message { return &removeMsg{} }, "HIGH")
	d.Message("probe_request", func() overlay.Message { return &probeRequest{} }, "HIGHEST")
	d.Message("probe", func() overlay.Message { return &probe{} }, "BEST_EFFORT")
	d.Message("probe_reply", func() overlay.Message { return &probeReply{} }, "HIGHEST")
	d.Message("family", func() overlay.Message { return &familyUpdate{} }, "MED")
	d.Message("mdata", func() overlay.Message { return &mdata{} }, "MED")

	d.Timer("probe_requester", o.p.ProbeRequestPeriod) // timer Q
	d.Timer("keep_probing", o.p.ProbeSpacing)          // timer Z
	d.Timer("probe_timeout", o.p.ProbeTimeout)
	d.Timer("join_retry", o.p.JoinRetryPeriod)

	d.NeighborList("papa", 1, true)
	d.NeighborList("kids", o.p.MaxChildren, true)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, o.apiInit)
	d.OnAPI(overlay.APIMulticast, core.Not(core.In(core.StateInit, "joining")), core.Read, o.apiMulticast)
	d.OnAPI(overlay.APIError, core.Any, core.Write, o.apiError)

	// The paper's example transition: join reception scoped !(joining|init).
	d.OnRecv("join", core.Not(core.In("joining", core.StateInit)), core.Write, o.recvJoin)
	d.OnRecv("join_reply", core.In("joining"), core.Write, o.recvJoinReply)
	d.OnRecv("remove", core.Any, core.Write, o.recvRemove)
	d.OnRecv("probe_request", core.Not(core.In(core.StateInit)), core.Write, o.recvProbeRequest)
	d.OnRecv("probe", core.In("probed"), core.Write, o.recvProbe)
	d.OnRecv("probe_reply", core.In("probed"), core.Write, o.recvProbeReply)
	d.OnRecv("family", core.Any, core.Write, o.recvFamily)
	d.OnRecv("mdata", core.Not(core.In(core.StateInit, "joining")), core.Read, o.recvMdata)

	d.OnTimer("probe_requester", core.In("joined"), core.Write, o.onProbeRequester)
	d.OnTimer("keep_probing", core.In("probing"), core.Read, o.onKeepProbing)
	d.OnTimer("probe_timeout", core.In("probed"), core.Write, o.onProbeTimeout)
	d.OnTimer("join_retry", core.In("joining"), core.Write, o.onJoinRetry)
}

func (o *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	o.self = ctx.Self()
	o.root = call.Bootstrap
	// Incarnation stamp: the full virtual-nanosecond clock reading. A
	// revived node restarts strictly later than it first started, so the
	// stamp is distinct per incarnation yet fully deterministic.
	o.inc = uint64(ctx.Now().UnixNano())
	o.estimates = make(map[overlay.Address]bandwidthEstimate)
	o.firstArrival = make(map[overlay.Address]time.Time)
	o.lastArrival = make(map[overlay.Address]time.Time)
	o.probesSeen = make(map[overlay.Address]int)
	o.seenSeqs = make(map[seqKey]bool)
	o.candPaths = make(map[overlay.Address][]overlay.Address)
	o.rootPath = []overlay.Address{o.self}
	if o.root == o.self || o.root == overlay.NilAddress {
		// "Bootstrap = yes": the root starts joined.
		ctx.StateChange("joined")
		return
	}
	// "Bootstrap = no": send a join request to the bootstrap.
	o.startJoin(ctx, o.root)
}

// startJoin enters the joining state, asks target for adoption, and arms
// the retry timer: joins ride best-effort UDP, so a lost request (or a
// request sent to a crashed node) must not orphan us forever.
func (o *Protocol) startJoin(ctx *core.Context, target overlay.Address) {
	ctx.StateChange("joining")
	_ = ctx.Send(target, &joinMsg{}, overlay.PriorityDefault)
	ctx.TimerResched("join_retry", o.p.JoinRetryPeriod)
}

// onJoinRetry fires while still joining: fall back to the root, the one
// address every member knows survives redirect chains and crashes.
func (o *Protocol) onJoinRetry(ctx *core.Context) {
	_ = ctx.Send(o.root, &joinMsg{}, overlay.PriorityDefault)
	ctx.TimerResched("join_retry", o.p.JoinRetryPeriod)
}

// recvJoin: "Recv join request → add child, send join reply".
func (o *Protocol) recvJoin(ctx *core.Context, ev *core.MsgEvent) {
	kids := ctx.Neighbors("kids")
	for _, anc := range o.rootPath[1:] {
		if anc == ev.From {
			// Our own ancestor asking to join under us would close a cycle:
			// bounce it to the root instead.
			_ = ctx.Send(ev.From, &joinReply{Response: 0, Redirect: o.root}, overlay.PriorityDefault)
			return
		}
	}
	if !kids.Contains(ev.From) && kids.Full() {
		// No capacity: bounce toward a random child, keeping the tree legal.
		child := kids.Random(ctx.Rand())
		_ = ctx.Send(ev.From, &joinReply{Response: 0, Redirect: child.Addr}, overlay.PriorityDefault)
		return
	}
	kids.Add(ev.From)
	papa := ctx.Neighbors("papa").First()
	gp := overlay.NilAddress
	if papa != nil {
		gp = papa.Addr
	}
	sibs := make([]overlay.Address, 0, kids.Size())
	for _, k := range kids.Addrs() {
		if k != ev.From {
			sibs = append(sibs, k)
		}
	}
	_ = ctx.Send(ev.From, &joinReply{Response: 1, Grandparent: gp, Siblings: sibs,
		RootPath: o.rootPath}, overlay.PriorityDefault)
	ctx.NotifyNeighbors(overlay.NbrTypeChild, kids.Addrs())
	// Catch the new child up from the log; its dedup drops overlaps.
	for _, m := range o.backlog {
		_ = ctx.Send(ev.From, m, overlay.PriorityLow)
	}
}

// recvJoinReply is the transition of the paper's Figure 6.
func (o *Protocol) recvJoinReply(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinReply)
	papa := ctx.Neighbors("papa")
	if m.Response == 1 {
		if papa.Size() > 0 {
			pops := papa.First()
			if pops.Addr != ev.From {
				// Figure 6 line 6: tell the old parent we moved.
				_ = ctx.Send(pops.Addr, &removeMsg{}, overlay.PriorityDefault)
			}
			papa.Clear()
		}
		papa.Add(ev.From)
		ctx.StateChange("joined")
		ctx.TimerCancel("join_retry")
		ctx.TimerResched("probe_requester", o.jitter(ctx, o.p.ProbeRequestPeriod))
		o.grandpa = m.Grandparent
		o.brothers = m.Siblings
		o.setRootPath(ctx, m.RootPath)
		ctx.NotifyNeighbors(overlay.NbrTypeParent, []overlay.Address{ev.From})
		return
	}
	// Rejected: follow the redirect (or fall back to the root).
	target := m.Redirect
	if target == overlay.NilAddress || target == o.self {
		target = o.root
	}
	if papa.Size() > 0 {
		// We already have a tree position; stay there.
		ctx.StateChange("joined")
		ctx.TimerCancel("join_retry")
		return
	}
	_ = ctx.Send(target, &joinMsg{}, overlay.PriorityDefault)
}

func (o *Protocol) recvRemove(ctx *core.Context, ev *core.MsgEvent) {
	kids := ctx.Neighbors("kids")
	kids.Remove(ev.From)
	ctx.NotifyNeighbors(overlay.NbrTypeChild, kids.Addrs())
}

// recvFamily refreshes grandparent/sibling knowledge between probes.
func (o *Protocol) recvFamily(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*familyUpdate)
	if !ctx.Neighbors("papa").Contains(ev.From) {
		return
	}
	o.grandpa = m.Grandparent
	o.brothers = m.Siblings
	o.setRootPath(ctx, m.RootPath)
}

// setRootPath installs self + the parent's path, rejoining through the root
// if the path loops through us (a cycle escaped the guards).
func (o *Protocol) setRootPath(ctx *core.Context, parentPath []overlay.Address) {
	for _, a := range parentPath {
		if a == o.self {
			ctx.Neighbors("papa").Clear()
			o.startJoin(ctx, o.root)
			return
		}
	}
	o.rootPath = append([]overlay.Address{o.self}, parentPath...)
	// Propagate the changed path to children with fresh family info.
	o.pushFamily(ctx)
}

// pushFamily refreshes every child's grandparent/siblings/path view.
func (o *Protocol) pushFamily(ctx *core.Context) {
	kids := ctx.Neighbors("kids")
	papa := ctx.Neighbors("papa").First()
	gp := overlay.NilAddress
	if papa != nil {
		gp = papa.Addr
	}
	all := kids.Addrs()
	for _, k := range all {
		sibs := make([]overlay.Address, 0, len(all))
		for _, other := range all {
			if other != k {
				sibs = append(sibs, other)
			}
		}
		_ = ctx.Send(k, &familyUpdate{Grandparent: gp, Siblings: sibs, RootPath: o.rootPath}, overlay.PriorityDefault)
	}
}

// onProbeRequester is the Q-timer transition: "send probe requests to
// gparent and siblings; count = |gparent| + |siblings|" and move to probed.
func (o *Protocol) onProbeRequester(ctx *core.Context) {
	defer ctx.TimerResched("probe_requester", o.jitter(ctx, o.p.ProbeRequestPeriod))
	o.pushFamily(ctx) // keep children's grandparent/sibling/path views fresh
	var candidates []overlay.Address
	if o.grandpa != overlay.NilAddress && o.grandpa != o.self {
		candidates = append(candidates, o.grandpa)
	}
	for _, b := range o.brothers {
		if b != o.self {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return
	}
	o.awaiting = len(candidates)
	o.estimates = make(map[overlay.Address]bandwidthEstimate)
	o.firstArrival = make(map[overlay.Address]time.Time)
	o.lastArrival = make(map[overlay.Address]time.Time)
	o.probesSeen = make(map[overlay.Address]int)
	ctx.StateChange("probed")
	for _, cand := range candidates {
		_ = ctx.Send(cand, &probeRequest{Count: uint16(o.p.ProbesPerTrain)}, overlay.PriorityDefault)
	}
	ctx.TimerResched("probe_timeout", o.p.ProbeTimeout)
}

// recvProbeRequest starts a probe train: "send probe, sched timer Z,
// # probes = N" and enter probing.
func (o *Protocol) recvProbeRequest(ctx *core.Context, ev *core.MsgEvent) {
	if ctx.State() == "probing" || ctx.State() == "probed" {
		return // one outstanding episode at a time, as the FSM's scalar
	}
	if ctx.State() == "joining" {
		// Refuse while homeless: the probing episode would end in a
		// StateChange to joined, silently abandoning the join retry and
		// leaving this node a parentless zombie "root" — the subtree
		// detachment kill/revive churn of the real root reliably produced.
		return
	}
	m := ev.Msg.(*probeRequest)
	o.probedNode = ev.From
	o.probesToSend = int(m.Count)
	ctx.StateChange("probing")
	o.sendOneProbe(ctx)
}

func (o *Protocol) sendOneProbe(ctx *core.Context) {
	if o.probesToSend <= 0 {
		return
	}
	o.probesToSend--
	idx := o.p.ProbesPerTrain - o.probesToSend - 1
	_ = ctx.Send(o.probedNode, &probe{Idx: uint16(idx), Total: uint16(o.p.ProbesPerTrain),
		Pad: make([]byte, o.p.ProbeSize)}, overlay.PriorityDefault)
	if o.probesToSend > 0 {
		// "Timer Z expires, # probes > 0 → send probe, # probes--"
		ctx.TimerResched("keep_probing", o.p.ProbeSpacing)
		return
	}
	// "Timer Z expires, # probes = 0 → send probe reply", back to joined.
	_ = ctx.Send(o.probedNode, &probeReply{Sent: uint16(o.p.ProbesPerTrain),
		RootPath: o.rootPath}, overlay.PriorityDefault)
	ctx.StateChange("joined")
}

func (o *Protocol) onKeepProbing(ctx *core.Context) {
	o.sendOneProbe(ctx)
}

// recvProbe timestamps train arrivals for the bandwidth estimate (§3.3.2:
// "Overcast estimates bandwidth by measuring the delay associated with
// receiving some number of probes at a sustained bandwidth").
func (o *Protocol) recvProbe(ctx *core.Context, ev *core.MsgEvent) {
	from := ev.From
	if _, ok := o.firstArrival[from]; !ok {
		o.firstArrival[from] = ctx.Now()
	}
	o.lastArrival[from] = ctx.Now()
	o.probesSeen[from]++
}

// recvProbeReply finalizes one candidate's estimate; count-- and decide at 0.
func (o *Protocol) recvProbeReply(ctx *core.Context, ev *core.MsgEvent) {
	from := ev.From
	o.candPaths[from] = ev.Msg.(*probeReply).RootPath
	seen := o.probesSeen[from]
	if seen >= 2 {
		spread := o.lastArrival[from].Sub(o.firstArrival[from])
		if spread > 0 {
			bits := float64((seen - 1) * o.p.ProbeSize * 8)
			o.estimates[from] = bandwidthEstimate{
				bitsPerSec: bits / spread.Seconds(),
				delay:      spread,
			}
		}
	}
	o.awaiting--
	if o.awaiting > 0 {
		return
	}
	ctx.TimerCancel("probe_timeout")
	o.decideMove(ctx)
}

// onProbeTimeout gives up on missing repliers and decides with what we have.
func (o *Protocol) onProbeTimeout(ctx *core.Context) {
	o.awaiting = 0
	o.decideMove(ctx)
}

// decideMove is Figure 1's "count = 0" fork: pick the candidate with the
// best bandwidth estimate; if it beats the current parent by MoveGain, send
// a join request to it ("new parent = yes"), else return to joined.
func (o *Protocol) decideMove(ctx *core.Context) {
	papa := ctx.Neighbors("papa").First()
	var best overlay.Address
	var bestBw float64
	for a, e := range o.estimates {
		// A candidate whose root path includes us is our descendant:
		// adopting it as a parent would detach the subtree into a cycle.
		descendant := false
		for _, hop := range o.candPaths[a] {
			if hop == o.self {
				descendant = true
				break
			}
		}
		if descendant {
			continue
		}
		// Ties break toward the lower address so runs are deterministic
		// regardless of map iteration order.
		if e.bitsPerSec > bestBw || (e.bitsPerSec == bestBw && best != overlay.NilAddress && a < best) {
			best, bestBw = a, e.bitsPerSec
		}
	}
	if papa != nil && best != overlay.NilAddress && best != papa.Addr {
		// The parent's bandwidth estimate: delay field on its entry, kept
		// from the joining train if we ever probed it; otherwise compare
		// against the recorded estimate on the papa entry.
		parentBw := papa.Bandwidth
		if e, ok := o.estimates[papa.Addr]; ok {
			parentBw = e.bitsPerSec
			papa.Bandwidth = parentBw
		}
		if parentBw == 0 || bestBw > parentBw*o.p.MoveGain {
			o.moves++
			o.startJoin(ctx, best)
			return
		}
	}
	if papa == nil && o.self != o.root {
		// Root guard: never settle into joined without a parent (the
		// parent died mid-episode). Resume the join instead.
		o.startJoin(ctx, o.root)
		return
	}
	ctx.StateChange("joined")
}

func (o *Protocol) apiError(ctx *core.Context, call *core.APICall) {
	papa := ctx.Neighbors("papa")
	if papa.Size() == 0 && ctx.State() != "joining" && ctx.State() != core.StateInit {
		// Parent failed: rejoin through the root (or become root's child).
		if o.self != o.root {
			o.startJoin(ctx, o.root)
		}
	}
	ctx.NotifyNeighbors(overlay.NbrTypeChild, ctx.Neighbors("kids").Addrs())
}

func (o *Protocol) apiMulticast(ctx *core.Context, call *core.APICall) {
	o.nextSeq++
	m := &mdata{Src: o.self, Inc: o.inc, Seq: o.nextSeq, Typ: call.PayloadType, Payload: call.Payload}
	o.disseminate(ctx, m, overlay.NilAddress, call.Priority)
}

func (o *Protocol) disseminate(ctx *core.Context, m *mdata, except overlay.Address, pri int) {
	o.backlog = append(o.backlog, m)
	if len(o.backlog) > backlogWindow {
		o.backlog = o.backlog[len(o.backlog)-backlogWindow:]
	}
	for _, kid := range ctx.Neighbors("kids").Addrs() {
		if kid == except {
			continue
		}
		ok, next, payload := ctx.Forward(m.Payload, m.Typ, kid, overlay.HashAddress(kid))
		if !ok {
			continue
		}
		_ = ctx.Send(next, &mdata{Src: m.Src, Inc: m.Inc, Seq: m.Seq, Typ: m.Typ, Payload: payload}, pri)
	}
	if m.Src != o.self {
		ctx.Deliver(m.Payload, m.Typ, m.Src)
	}
}

func (o *Protocol) recvMdata(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*mdata)
	// Track the newest source incarnation (stamps are nanosecond clock
	// readings, strictly increasing across restarts). Packets of older
	// incarnations are dead streams — backlog replays of a pre-restart
	// root — and are dropped outright rather than re-delivered.
	if m.Inc > o.curInc {
		o.curInc, o.curHigh = m.Inc, 0
	} else if m.Inc != o.curInc {
		return
	}
	key := seqKey{inc: m.Inc, seq: m.Seq} // single multicast source (the root) in Overcast
	if o.seenSeqs[key] {
		return
	}
	o.seenSeqs[key] = true
	if m.Seq > o.curHigh {
		o.curHigh = m.Seq
	}
	if len(o.seenSeqs) > 4096 {
		// Bound the window against the live stream's head: dead-incarnation
		// entries go first, then live entries far behind curHigh. Keying the
		// purge to the packet itself would let one stale replay wipe the
		// live window.
		for k := range o.seenSeqs {
			if k.inc != o.curInc || k.seq+2048 < o.curHigh {
				delete(o.seenSeqs, k)
			}
		}
	}
	o.disseminate(ctx, m, ev.From, overlay.PriorityDefault)
}

func (o *Protocol) jitter(ctx *core.Context, d time.Duration) time.Duration {
	return d*3/4 + time.Duration(ctx.Rand().Int63n(int64(d)/2+1))
}
