package overcast_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/overcast"
	"macedon/internal/topology"
)

func build(t *testing.T, n int, p overcast.Params, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{overcast.New(p)}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func parentOf(c *harness.Cluster, a overlay.Address) overlay.Address {
	ps := c.Nodes[a].Instance("overcast").NeighborsSnapshot("papa")
	if len(ps) == 0 {
		return overlay.NilAddress
	}
	return ps[0]
}

func TestTreeFormsAndStatesSettle(t *testing.T) {
	const n = 20
	c := build(t, n, overcast.Params{}, 90*time.Second, 81)
	root := c.Addrs[0]
	for _, a := range c.Addrs[1:] {
		st := c.Nodes[a].Instance("overcast").State()
		if st == core.StateInit || st == "joining" {
			t.Fatalf("node %v stuck in %q", a, st)
		}
		hops := 0
		for cur := a; cur != root; hops++ {
			if hops > n {
				t.Fatalf("parent chain from %v broken", a)
			}
			next := parentOf(c, cur)
			if next == overlay.NilAddress {
				t.Fatalf("node %v (reached from %v) has no parent", cur, a)
			}
			cur = next
		}
	}
}

func TestMulticastFromRoot(t *testing.T) {
	const n = 15
	c := build(t, n, overcast.Params{}, 90*time.Second, 83)
	got := map[overlay.Address]int{}
	for _, a := range c.Addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) { got[addr]++ },
		})
	}
	const packets = 5
	for i := 0; i < packets; i++ {
		_ = c.Nodes[c.Addrs[0]].Multicast(0, make([]byte, 800), 1, overlay.PriorityDefault)
		c.RunFor(time.Second)
	}
	c.RunFor(15 * time.Second)
	for _, a := range c.Addrs[1:] {
		if got[a] != packets {
			t.Errorf("node %v received %d/%d", a, got[a], packets)
		}
	}
}

func TestProbingEpisodesRun(t *testing.T) {
	c := build(t, 12, overcast.Params{ProbeRequestPeriod: 5 * time.Second}, 120*time.Second, 87)
	// Someone must have probed: look for at least one node that recorded a
	// probing episode (counter via state transitions is enough: counters
	// show timer fires on keep_probing).
	probed := false
	for _, a := range c.Addrs {
		cnt := c.Nodes[a].Instance("overcast").Counters()
		if cnt.TimerFires > 0 && cnt.MsgsRecv > 0 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("no probing activity observed")
	}
}

// TestRelocatesTowardBandwidth builds a topology where the root's access
// link is fat but one child sits behind a thin pipe; nodes behind the thin
// pipe should gravitate to parents on their side of it.
func TestRelocatesTowardBandwidth(t *testing.T) {
	g := topology.NewGraph()
	fast := g.AddRouter()
	slow := g.AddRouter()
	// Thin 500 Kbps pipe between the two sides.
	g.AddLink(fast, slow, 20*time.Millisecond, 500_000, 50*1500)
	fatAccess := topology.AccessLink{Latency: time.Millisecond, Bandwidth: 100_000_000, QueueBytes: 64 << 10}
	// Root and two nodes on the fast side; four nodes on the slow side.
	g.AttachClient(1, fast, fatAccess)
	g.AttachClient(2, fast, fatAccess)
	g.AttachClient(3, fast, fatAccess)
	for a := overlay.Address(4); a <= 7; a++ {
		g.AttachClient(a, slow, fatAccess)
	}
	c, err := harness.NewCluster(harness.ClusterConfig{Graph: g, Seed: 89})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{overcast.New(overcast.Params{
		ProbeRequestPeriod: 5 * time.Second, MaxChildren: 2})}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Minute)
	moves := uint64(0)
	for _, a := range c.Addrs {
		moves += c.Nodes[a].Instance("overcast").Agent().(*overcast.Protocol).Moves()
	}
	if moves == 0 {
		t.Fatal("no relocation ever happened despite bandwidth asymmetry")
	}
	// The tree must stay intact after all the moving.
	root := c.Addrs[0]
	for _, a := range c.Addrs[1:] {
		hops := 0
		for cur := a; cur != root; hops++ {
			if hops > 10 {
				t.Fatalf("parent chain from %v broken after moves", a)
			}
			cur = parentOf(c, cur)
			if cur == overlay.NilAddress {
				t.Fatalf("node %v lost its parent after moves", a)
			}
		}
	}
}
