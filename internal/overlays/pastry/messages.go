package pastry

import "macedon/internal/overlay"

// joinReq is routed toward the joiner's key; every hop appends the routing
// rows the joiner needs, and the final (numerically closest) node answers
// with its leaf set.
type joinReq struct {
	Joiner overlay.Address
	Rows   []rowTransfer
	Hops   uint8
}

type rowTransfer struct {
	Row     uint8
	Entries []overlay.Address // len 2^b; NilAddress for empty
}

func (m *joinReq) MsgName() string { return "join_req" }
func (m *joinReq) Encode(w *overlay.Writer) {
	w.Addr(m.Joiner)
	w.U8(m.Hops)
	w.U16(uint16(len(m.Rows)))
	for _, rt := range m.Rows {
		w.U8(rt.Row)
		w.Addrs(rt.Entries)
	}
}
func (m *joinReq) Decode(r *overlay.Reader) error {
	m.Joiner = r.Addr()
	m.Hops = r.U8()
	n := int(r.U16())
	if err := r.Err(); err != nil {
		return err
	}
	m.Rows = make([]rowTransfer, 0, n)
	for i := 0; i < n; i++ {
		var rt rowTransfer
		rt.Row = r.U8()
		rt.Entries = r.Addrs()
		m.Rows = append(m.Rows, rt)
	}
	return r.Err()
}

// joinReply completes a join with the closest node's leaf set plus the
// accumulated rows.
type joinReply struct {
	Rows   []rowTransfer
	Leaves []overlay.Address
}

func (m *joinReply) MsgName() string { return "join_reply" }
func (m *joinReply) Encode(w *overlay.Writer) {
	w.U16(uint16(len(m.Rows)))
	for _, rt := range m.Rows {
		w.U8(rt.Row)
		w.Addrs(rt.Entries)
	}
	w.Addrs(m.Leaves)
}
func (m *joinReply) Decode(r *overlay.Reader) error {
	n := int(r.U16())
	if err := r.Err(); err != nil {
		return err
	}
	m.Rows = make([]rowTransfer, 0, n)
	for i := 0; i < n; i++ {
		var rt rowTransfer
		rt.Row = r.U8()
		rt.Entries = r.Addrs()
		m.Rows = append(m.Rows, rt)
	}
	m.Leaves = r.Addrs()
	return r.Err()
}

// announce tells existing nodes about a newly joined node so they can fold
// it into their tables.
type announce struct{}

func (m *announce) MsgName() string                { return "announce" }
func (m *announce) Encode(*overlay.Writer)         {}
func (m *announce) Decode(r *overlay.Reader) error { return r.Err() }

// lsReq/lsResp implement the periodic leaf-set exchange.
type lsReq struct{}

func (m *lsReq) MsgName() string                { return "ls_req" }
func (m *lsReq) Encode(*overlay.Writer)         {}
func (m *lsReq) Decode(r *overlay.Reader) error { return r.Err() }

type lsResp struct {
	Leaves []overlay.Address
}

func (m *lsResp) MsgName() string                { return "ls_resp" }
func (m *lsResp) Encode(w *overlay.Writer)       { w.Addrs(m.Leaves) }
func (m *lsResp) Decode(r *overlay.Reader) error { m.Leaves = r.Addrs(); return r.Err() }

// data is a payload routed by key.
type data struct {
	Src       overlay.Address
	Dest      overlay.Key
	Typ       int32
	Hops      uint8
	WantCache bool // origin asks the owner for a location-cache entry
	Payload   []byte
}

func (m *data) MsgName() string { return "data" }
func (m *data) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.Key(m.Dest)
	w.U32(uint32(m.Typ))
	w.U8(m.Hops)
	w.Bool(m.WantCache)
	w.Bytes32(m.Payload)
}
func (m *data) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Dest = r.Key()
	m.Typ = int32(r.U32())
	m.Hops = r.U8()
	m.WantCache = r.Bool()
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// dataIP is a payload sent directly to an address (macedon_routeIP).
type dataIP struct {
	Src     overlay.Address
	Typ     int32
	Payload []byte
}

func (m *dataIP) MsgName() string { return "data_ip" }
func (m *dataIP) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *dataIP) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// cacheInfo lets the owner of a key teach the origin its address: the
// location-cache fill whose eviction policy Figure 12 studies.
type cacheInfo struct {
	Key overlay.Key
}

func (m *cacheInfo) MsgName() string                { return "cache_info" }
func (m *cacheInfo) Encode(w *overlay.Writer)       { w.Key(m.Key) }
func (m *cacheInfo) Decode(r *overlay.Reader) error { m.Key = r.Key(); return r.Err() }
