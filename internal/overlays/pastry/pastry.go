// Package pastry implements the Pastry DHT [22] as a MACEDON agent: prefix
// routing over a 2^b digit table, leaf sets, join-time row transfer, and the
// routeIP location cache whose eviction policy Figure 12 of the paper
// studies. A configurable RMI cost model reproduces the FreePastry baseline
// of Figure 11 (per-hop marshalling delay growing with instance count, the
// overhead the paper attributes Java RMI's performance to).
package pastry

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol.
type Params struct {
	// B is the routing digit width in bits (default 4: hex digits, 8 rows).
	B int
	// LeafSize is the total leaf-set size (default 8: 4 each side).
	LeafSize int
	// LeafExchangePeriod is the leaf-set maintenance period (default 2 s).
	LeafExchangePeriod time.Duration

	// CacheLifetime controls the routeIP location cache: 0 disables
	// caching, a negative value caches forever ("cache evictions
	// disabled"), a positive value is the entry TTL.
	CacheLifetime time.Duration

	// RMI enables the FreePastry-baseline cost model: every message hop
	// pays RMIBase + RMIPerNode × NetworkSize of processing delay before
	// it is acted on, standing in for Java RMI marshalling and memory
	// pressure (§4.2.3 attributes FreePastry's latency to exactly this).
	RMI         bool
	RMIBase     time.Duration
	RMIPerNode  time.Duration
	NetworkSize int
}

func (p *Params) setDefaults() {
	if p.B <= 0 {
		p.B = 4
	}
	if p.LeafSize <= 0 {
		p.LeafSize = 8
	}
	if p.LeafExchangePeriod <= 0 {
		p.LeafExchangePeriod = 2 * time.Second
	}
	if p.RMI {
		if p.RMIBase <= 0 {
			p.RMIBase = 40 * time.Millisecond
		}
		if p.RMIPerNode <= 0 {
			p.RMIPerNode = 600 * time.Microsecond
		}
	}
}

// New returns a factory for Pastry agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

type cacheEntry struct {
	addr    overlay.Address
	expires time.Time // zero when entries never expire
}

// Protocol is one node's Pastry instance.
type Protocol struct {
	p Params

	self    overlay.Address
	selfKey overlay.Key
	boot    overlay.Address

	rows, cols int
	table      [][]overlay.Address // [row][col]
	// Leaves sorted by ring distance: cw grows clockwise, ccw counter-.
	cw, ccw []overlay.Address

	cache       map[overlay.Key]cacheEntry
	cacheFills  uint64 // cache_info messages processed (overhead metric)
	directSends uint64 // routes short-circuited by a cache hit
	joined      bool
}

// ProtocolName implements the engine's naming hook.
func (pt *Protocol) ProtocolName() string { return "pastry" }

// Joined reports whether the node completed its join.
func (pt *Protocol) Joined() bool { return pt.joined }

// LeafSet returns the current leaf set, counter-clockwise then clockwise.
func (pt *Protocol) LeafSet() []overlay.Address {
	out := append([]overlay.Address(nil), pt.ccw...)
	return append(out, pt.cw...)
}

// TableEntry returns the routing-table entry at (row, col).
func (pt *Protocol) TableEntry(row, col int) overlay.Address { return pt.table[row][col] }

// CacheFills reports how many location-cache fills this node processed.
func (pt *Protocol) CacheFills() uint64 { return pt.cacheFills }

// DirectSends reports how many routed payloads the location cache
// short-circuited to a single direct hop.
func (pt *Protocol) DirectSends() uint64 { return pt.directSends }

// Define declares the Pastry FSM: the Go equivalent of pastry.mac.
func (pt *Protocol) Define(d *core.Def) {
	d.States("joining", "joined")
	d.Addressing(core.HashAddressing)

	d.UDPTransport("CTRL")
	d.TCPTransport("DATA")

	d.Message("join_req", func() overlay.Message { return &joinReq{} }, "CTRL")
	d.Message("join_reply", func() overlay.Message { return &joinReply{} }, "CTRL")
	d.Message("announce", func() overlay.Message { return &announce{} }, "CTRL")
	d.Message("ls_req", func() overlay.Message { return &lsReq{} }, "CTRL")
	d.Message("ls_resp", func() overlay.Message { return &lsResp{} }, "CTRL")
	d.Message("data", func() overlay.Message { return &data{} }, "DATA")
	d.Message("data_ip", func() overlay.Message { return &dataIP{} }, "DATA")
	d.Message("cache_info", func() overlay.Message { return &cacheInfo{} }, "CTRL")

	d.Timer("ls_exchange", pt.p.LeafExchangePeriod)
	d.NeighborList("leaves", pt.p.LeafSize+1, true)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, pt.apiInit)
	// Routing before the join completes would deliver everything locally
	// (cold tables route to self); unjoined nodes drop route calls and the
	// layer above's soft state retries.
	d.OnAPI(overlay.APIRoute, core.In("joined"), core.Read, pt.apiRoute)
	d.OnAPI(overlay.APIRouteIP, core.Any, core.Read, pt.apiRouteIP)
	d.OnAPI(overlay.APIError, core.Any, core.Write, pt.apiError)

	d.OnRecv("join_req", core.Any, core.Write, pt.recvJoinReq)
	d.OnRecv("join_reply", core.In("joining"), core.Write, pt.recvJoinReply)
	d.OnRecv("announce", core.Any, core.Write, pt.recvAnnounce)
	d.OnRecv("ls_req", core.Any, core.Read, pt.recvLsReq)
	d.OnRecv("ls_resp", core.Any, core.Write, pt.recvLsResp)
	d.OnRecv("data", core.Any, core.Read, pt.recvData)
	d.OnRecv("data_ip", core.Any, core.Read, pt.recvDataIP)
	d.OnRecv("cache_info", core.Any, core.Write, pt.recvCacheInfo)

	d.OnTimer("ls_exchange", core.In("joined"), core.Write, pt.onLsExchange)
}

func (pt *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	pt.self = ctx.Self()
	pt.selfKey = ctx.SelfKey()
	pt.boot = call.Bootstrap
	pt.rows = overlay.KeyBits / pt.p.B
	pt.cols = 1 << uint(pt.p.B)
	pt.table = make([][]overlay.Address, pt.rows)
	for r := range pt.table {
		pt.table[r] = make([]overlay.Address, pt.cols)
	}
	pt.cache = make(map[overlay.Key]cacheEntry)
	if pt.boot == pt.self || pt.boot == overlay.NilAddress {
		pt.becomeJoined(ctx)
		return
	}
	ctx.StateChange("joining")
	_ = ctx.Send(pt.boot, &joinReq{Joiner: pt.self}, overlay.PriorityDefault)
}

func (pt *Protocol) becomeJoined(ctx *core.Context) {
	ctx.StateChange("joined")
	pt.joined = true
	ctx.TimerSched("ls_exchange", pt.jitter(ctx, pt.p.LeafExchangePeriod))
}

func (pt *Protocol) jitter(ctx *core.Context, d time.Duration) time.Duration {
	return d*3/4 + time.Duration(ctx.Rand().Int63n(int64(d)/2+1))
}

// rmi wraps an action with the FreePastry cost model's per-hop delay.
func (pt *Protocol) rmi(ctx *core.Context, fn func(ctx *core.Context)) {
	if !pt.p.RMI {
		fn(ctx)
		return
	}
	d := pt.p.RMIBase + time.Duration(pt.p.NetworkSize)*pt.p.RMIPerNode
	ctx.After(d, fn)
}

// --- node knowledge ------------------------------------------------------

// learn folds a node into the routing table and leaf set.
func (pt *Protocol) learn(ctx *core.Context, a overlay.Address) {
	if a == pt.self || a == overlay.NilAddress {
		return
	}
	ak := overlay.HashAddress(a)
	row := pt.selfKey.SharedPrefix(ak, pt.p.B)
	if row < pt.rows {
		col := ak.Digit(row, pt.p.B)
		if pt.table[row][col] == overlay.NilAddress {
			pt.table[row][col] = a
		}
	}
	pt.updateLeaves(ctx, a)
}

// updateLeaves inserts a into the cw/ccw leaf halves, keeping the closest
// LeafSize/2 on each side.
func (pt *Protocol) updateLeaves(ctx *core.Context, a overlay.Address) {
	if a == pt.self || contains(pt.cw, a) || contains(pt.ccw, a) {
		return
	}
	ak := overlay.HashAddress(a)
	half := pt.p.LeafSize / 2
	insert := func(side []overlay.Address, dist func(overlay.Key) uint32) []overlay.Address {
		side = append(side, a)
		// insertion sort by distance; sides are tiny
		for i := len(side) - 1; i > 0; i-- {
			if dist(overlay.HashAddress(side[i])) < dist(overlay.HashAddress(side[i-1])) {
				side[i], side[i-1] = side[i-1], side[i]
			}
		}
		if len(side) > half {
			side = side[:half]
		}
		return side
	}
	cwDist := func(k overlay.Key) uint32 { return pt.selfKey.Distance(k) }
	ccwDist := func(k overlay.Key) uint32 { return k.Distance(pt.selfKey) }
	// a belongs to the side it is nearer on; with few nodes it may sit in
	// both halves' candidate range, so try both and let distance sorting
	// keep the right ones.
	if cwDist(ak) <= ccwDist(ak) {
		pt.cw = insert(pt.cw, cwDist)
	} else {
		pt.ccw = insert(pt.ccw, ccwDist)
	}
	pt.syncLeafList(ctx)
}

func (pt *Protocol) syncLeafList(ctx *core.Context) {
	nl := ctx.Neighbors("leaves")
	nl.Clear()
	for _, a := range pt.LeafSet() {
		nl.Add(a)
	}
	ctx.NotifyNeighbors(overlay.NbrTypeLeafSet, pt.LeafSet())
}

func (pt *Protocol) forget(ctx *core.Context, a overlay.Address) {
	pt.cw = remove(pt.cw, a)
	pt.ccw = remove(pt.ccw, a)
	for r := range pt.table {
		for c := range pt.table[r] {
			if pt.table[r][c] == a {
				pt.table[r][c] = overlay.NilAddress
			}
		}
	}
	for k, e := range pt.cache {
		if e.addr == a {
			delete(pt.cache, k)
		}
	}
	pt.syncLeafList(ctx)
}

// inLeafRange reports whether k falls inside the leaf-set arc.
func (pt *Protocol) inLeafRange(k overlay.Key) bool {
	if len(pt.cw) == 0 && len(pt.ccw) == 0 {
		return true // alone: we own everything
	}
	lo := pt.selfKey
	if len(pt.ccw) > 0 {
		lo = overlay.HashAddress(pt.ccw[len(pt.ccw)-1])
	}
	hi := pt.selfKey
	if len(pt.cw) > 0 {
		hi = overlay.HashAddress(pt.cw[len(pt.cw)-1])
	}
	return k == lo || k.BetweenIncl(lo, hi)
}

// closestKnown returns the numerically closest node to k among self, the
// leaf set, and the routing table.
func (pt *Protocol) closestKnown(k overlay.Key) overlay.Address {
	best := pt.self
	bestD := overlay.RingDiff(pt.selfKey, k)
	consider := func(a overlay.Address) {
		if a == overlay.NilAddress {
			return
		}
		d := overlay.RingDiff(overlay.HashAddress(a), k)
		if d < bestD || (d == bestD && a < best) {
			best, bestD = a, d
		}
	}
	for _, a := range pt.cw {
		consider(a)
	}
	for _, a := range pt.ccw {
		consider(a)
	}
	for r := range pt.table {
		for _, a := range pt.table[r] {
			consider(a)
		}
	}
	return best
}

// nextHop implements Pastry routing for key k; self means "deliver here".
func (pt *Protocol) nextHop(k overlay.Key) overlay.Address {
	if pt.inLeafRange(k) {
		best := pt.self
		bestD := overlay.RingDiff(pt.selfKey, k)
		for _, a := range append(append([]overlay.Address(nil), pt.cw...), pt.ccw...) {
			d := overlay.RingDiff(overlay.HashAddress(a), k)
			if d < bestD || (d == bestD && a < best) {
				best, bestD = a, d
			}
		}
		return best
	}
	row := pt.selfKey.SharedPrefix(k, pt.p.B)
	if row < pt.rows {
		if e := pt.table[row][k.Digit(row, pt.p.B)]; e != overlay.NilAddress {
			return e
		}
	}
	// Rare case: no table entry; fall back to the numerically closest known
	// node that improves on self.
	best := pt.closestKnown(k)
	return best
}

// --- join -----------------------------------------------------------------

func (pt *Protocol) recvJoinReq(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinReq)
	m.Hops++
	jk := overlay.HashAddress(m.Joiner)
	// Contribute the row the joiner needs from this hop.
	row := pt.selfKey.SharedPrefix(jk, pt.p.B)
	if row < pt.rows {
		m.Rows = append(m.Rows, rowTransfer{Row: uint8(row), Entries: append([]overlay.Address{pt.self}, pt.table[row]...)})
	}
	next := pt.nextHop(jk)
	if next == pt.self || m.Hops > uint8(2*pt.rows) {
		// This node is numerically closest: complete the join.
		_ = ctx.Send(m.Joiner, &joinReply{Rows: m.Rows, Leaves: append(pt.LeafSet(), pt.self)}, overlay.PriorityDefault)
		pt.learn(ctx, m.Joiner)
		return
	}
	_ = ctx.Send(next, m, overlay.PriorityDefault)
}

func (pt *Protocol) recvJoinReply(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinReply)
	for _, rt := range m.Rows {
		for _, a := range rt.Entries {
			pt.learn(ctx, a)
		}
	}
	for _, a := range m.Leaves {
		pt.learn(ctx, a)
	}
	pt.becomeJoined(ctx)
	// Announce to everyone now known so they fold us in.
	for _, a := range pt.known() {
		_ = ctx.Send(a, &announce{}, overlay.PriorityDefault)
	}
}

func (pt *Protocol) known() []overlay.Address {
	var out []overlay.Address
	seen := map[overlay.Address]bool{}
	add := func(a overlay.Address) {
		if a != overlay.NilAddress && a != pt.self && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range pt.cw {
		add(a)
	}
	for _, a := range pt.ccw {
		add(a)
	}
	for r := range pt.table {
		for _, a := range pt.table[r] {
			add(a)
		}
	}
	return out
}

func (pt *Protocol) recvAnnounce(ctx *core.Context, ev *core.MsgEvent) {
	pt.learn(ctx, ev.From)
}

func (pt *Protocol) onLsExchange(ctx *core.Context) {
	defer ctx.TimerSched("ls_exchange", pt.jitter(ctx, pt.p.LeafExchangePeriod))
	leaves := pt.LeafSet()
	if len(leaves) == 0 {
		if pt.boot != pt.self {
			_ = ctx.Send(pt.boot, &lsReq{}, overlay.PriorityDefault)
		}
		return
	}
	target := leaves[ctx.Rand().Intn(len(leaves))]
	_ = ctx.Send(target, &lsReq{}, overlay.PriorityDefault)
}

func (pt *Protocol) recvLsReq(ctx *core.Context, ev *core.MsgEvent) {
	_ = ctx.Send(ev.From, &lsResp{Leaves: append(pt.LeafSet(), pt.self)}, overlay.PriorityDefault)
}

func (pt *Protocol) recvLsResp(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*lsResp)
	for _, a := range m.Leaves {
		pt.learn(ctx, a)
	}
}

// --- data path --------------------------------------------------------------

func (pt *Protocol) apiRoute(ctx *core.Context, call *core.APICall) {
	m := &data{Src: pt.self, Dest: call.Dest, Typ: call.PayloadType,
		WantCache: pt.p.CacheLifetime != 0, Payload: call.Payload}
	// Location cache: a fresh entry short-circuits DHT routing to one hop.
	if e, ok := pt.cache[call.Dest]; ok {
		if e.expires.IsZero() || ctx.Now().Before(e.expires) {
			m.WantCache = false
			pt.directSends++
			_ = ctx.Send(e.addr, m, call.Priority)
			return
		}
		delete(pt.cache, call.Dest)
	}
	pt.routeData(ctx, m, call.Priority)
}

func (pt *Protocol) routeData(ctx *core.Context, m *data, pri int) {
	next := pt.nextHop(m.Dest)
	if next == pt.self {
		pt.deliverData(ctx, m)
		return
	}
	ok, newNext, payload := ctx.Forward(m.Payload, m.Typ, next, overlay.HashAddress(next))
	if !ok {
		return
	}
	m.Payload = payload
	_ = ctx.Send(newNext, m, pri)
}

func (pt *Protocol) deliverData(ctx *core.Context, m *data) {
	if m.WantCache && m.Src != pt.self {
		_ = ctx.Send(m.Src, &cacheInfo{Key: m.Dest}, overlay.PriorityDefault)
	}
	ctx.Deliver(m.Payload, m.Typ, m.Src)
}

func (pt *Protocol) recvData(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*data)
	m.Hops++
	if m.Hops > uint8(4*pt.rows) {
		return
	}
	pt.rmi(ctx, func(ctx *core.Context) { pt.routeData(ctx, m, overlay.PriorityDefault) })
}

func (pt *Protocol) recvCacheInfo(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*cacheInfo)
	pt.cacheFills++
	e := cacheEntry{addr: ev.From}
	if pt.p.CacheLifetime > 0 {
		e.expires = ctx.Now().Add(pt.p.CacheLifetime)
	}
	pt.cache[m.Key] = e
}

func (pt *Protocol) apiRouteIP(ctx *core.Context, call *core.APICall) {
	if call.DestIP == pt.self {
		ctx.Deliver(call.Payload, call.PayloadType, pt.self)
		return
	}
	_ = ctx.Send(call.DestIP, &dataIP{Src: pt.self, Typ: call.PayloadType, Payload: call.Payload}, call.Priority)
}

func (pt *Protocol) recvDataIP(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*dataIP)
	pt.rmi(ctx, func(ctx *core.Context) { ctx.Deliver(m.Payload, m.Typ, m.Src) })
}

func (pt *Protocol) apiError(ctx *core.Context, call *core.APICall) {
	pt.forget(ctx, call.Failed)
}

func contains(s []overlay.Address, a overlay.Address) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

func remove(s []overlay.Address, a overlay.Address) []overlay.Address {
	out := s[:0]
	for _, x := range s {
		if x != a {
			out = append(out, x)
		}
	}
	return out
}
