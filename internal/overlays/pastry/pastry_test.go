package pastry_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/pastry"
)

func stack(p pastry.Params) []core.Factory { return []core.Factory{pastry.New(p)} }

func build(t *testing.T, n int, p pastry.Params, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack(p) }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func pastryOf(c *harness.Cluster, a overlay.Address) *pastry.Protocol {
	return c.Nodes[a].Instance("pastry").Agent().(*pastry.Protocol)
}

// owner is the numerically closest node to k (ties to the lower address):
// Pastry's delivery rule.
func owner(addrs []overlay.Address, k overlay.Key) overlay.Address {
	best := addrs[0]
	bestD := overlay.RingDiff(overlay.HashAddress(best), k)
	for _, a := range addrs[1:] {
		d := overlay.RingDiff(overlay.HashAddress(a), k)
		if d < bestD || (d == bestD && a < best) {
			best, bestD = a, d
		}
	}
	return best
}

func TestAllNodesJoin(t *testing.T) {
	c := build(t, 20, pastry.Params{}, 60*time.Second, 11)
	for _, a := range c.Addrs {
		if !pastryOf(c, a).Joined() {
			t.Fatalf("node %v never joined", a)
		}
		if len(pastryOf(c, a).LeafSet()) == 0 {
			t.Fatalf("node %v has empty leaf set", a)
		}
	}
}

func TestRoutingDeliversAtNumericallyClosest(t *testing.T) {
	c := build(t, 20, pastry.Params{}, 90*time.Second, 11)
	delivered := make(map[overlay.Key]overlay.Address)
	for _, a := range c.Addrs {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) {
				delivered[overlay.Key(typ)] = addr
			},
		})
	}
	keys := []overlay.Key{1, 0x10000000, 0x40000000, 0x7abc0000, 0x7fffffff, 0x2468ace0}
	src := c.Nodes[c.Addrs[7]]
	for _, k := range keys {
		if err := src.Route(k, []byte("x"), int32(k), overlay.PriorityDefault); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(10 * time.Second)
	for _, k := range keys {
		got, ok := delivered[k]
		if !ok {
			t.Errorf("key %v never delivered", k)
			continue
		}
		if want := owner(c.Addrs, k); got != want {
			t.Errorf("key %v delivered at %v, want %v", k, got, want)
		}
	}
}

func TestLocationCacheShortCircuits(t *testing.T) {
	c := build(t, 16, pastry.Params{CacheLifetime: -1}, 90*time.Second, 13)
	dest := overlay.Key(0x55555555)
	own := owner(c.Addrs, dest)
	hops := make(map[int]int) // route # -> deliveries seen so far
	_ = hops
	var deliveries int
	c.Nodes[own].RegisterHandlers(core.Handlers{
		Deliver: func([]byte, int32, overlay.Address) { deliveries++ },
	})
	src := c.Addrs[3]
	if src == own {
		src = c.Addrs[4]
	}
	// First route fills the cache (after delivery), then subsequent routes
	// go direct.
	_ = c.Nodes[src].Route(dest, []byte("a"), 1, overlay.PriorityDefault)
	c.RunFor(5 * time.Second)
	_ = c.Nodes[src].Route(dest, []byte("b"), 1, overlay.PriorityDefault)
	c.RunFor(5 * time.Second)
	if deliveries != 2 {
		t.Fatalf("deliveries = %d", deliveries)
	}
	p := pastryOf(c, src)
	if p.CacheFills() == 0 {
		t.Fatal("cache never filled")
	}
	if p.DirectSends() != 1 {
		t.Fatalf("direct sends = %d, want 1 (second route short-circuited)", p.DirectSends())
	}
}

func TestLocationCacheTTLExpires(t *testing.T) {
	c := build(t, 10, pastry.Params{CacheLifetime: 2 * time.Second}, 60*time.Second, 17)
	dest := overlay.Key(0x99999999)
	src := c.Addrs[2]
	if owner(c.Addrs, dest) == src {
		src = c.Addrs[3]
	}
	_ = c.Nodes[src].Route(dest, []byte("a"), 1, overlay.PriorityDefault)
	c.RunFor(5 * time.Second)
	fills0 := pastryOf(c, src).CacheFills()
	if fills0 == 0 {
		t.Fatal("first route did not fill the cache")
	}
	// Wait past the TTL; the next route must refill (stale entry evicted).
	c.RunFor(5 * time.Second)
	_ = c.Nodes[src].Route(dest, []byte("b"), 1, overlay.PriorityDefault)
	c.RunFor(5 * time.Second)
	if fills := pastryOf(c, src).CacheFills(); fills <= fills0 {
		t.Fatalf("cache not refilled after TTL: %d -> %d", fills0, fills)
	}
}

func TestRMIModeSlowsDelivery(t *testing.T) {
	run := func(p pastry.Params) time.Duration {
		c := build(t, 10, p, 60*time.Second, 19)
		dest := overlay.Key(0x31415926)
		own := owner(c.Addrs, dest)
		var at time.Duration = -1
		c.Nodes[own].RegisterHandlers(core.Handlers{
			Deliver: func([]byte, int32, overlay.Address) {
				if at < 0 {
					at = c.Sched.Elapsed()
				}
			},
		})
		src := c.Addrs[5]
		if src == own {
			src = c.Addrs[6]
		}
		start := c.Sched.Elapsed()
		_ = c.Nodes[src].Route(dest, []byte("x"), 1, overlay.PriorityDefault)
		c.RunFor(20 * time.Second)
		if at < 0 {
			t.Fatal("undelivered")
		}
		return at - start
	}
	plain := run(pastry.Params{})
	rmi := run(pastry.Params{RMI: true, NetworkSize: 100})
	if rmi < plain+50*time.Millisecond {
		t.Fatalf("RMI model adds no latency: plain=%v rmi=%v", plain, rmi)
	}
}

func TestFailureRemovesFromTables(t *testing.T) {
	c, err := harness.NewCluster(harness.ClusterConfig{
		Nodes: 12, Routers: 100, Seed: 23,
		HeartbeatAfter: 2 * time.Second, FailAfter: 8 * time.Second, Sweep: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack(pastry.Params{}) }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * time.Second)
	victim := c.Addrs[6]
	_ = c.Net.SetDown(victim, true)
	c.Nodes[victim].Stop()
	c.RunFor(60 * time.Second)
	for _, a := range c.Addrs {
		if a == victim {
			continue
		}
		for _, l := range pastryOf(c, a).LeafSet() {
			if l == victim {
				t.Errorf("node %v still has dead node in leaf set", a)
			}
		}
	}
}

func TestRouteToSelfDelivers(t *testing.T) {
	c := build(t, 6, pastry.Params{}, 30*time.Second, 29)
	a := c.Addrs[1]
	var got bool
	c.Nodes[a].RegisterHandlers(core.Handlers{
		Deliver: func([]byte, int32, overlay.Address) { got = true },
	})
	_ = c.Nodes[a].Route(overlay.HashAddress(a), []byte("self"), 1, overlay.PriorityDefault)
	c.RunFor(2 * time.Second)
	if !got {
		t.Fatal("route to own key not delivered locally")
	}
}
