// Package randtree implements RandTree, the simple randomly constructed
// distribution tree the paper's Figure 2 shows as Bullet's base layer:
// joiners walk down from the root, each saturated node bouncing them to a
// random child, until someone with spare degree adopts them. Multicast
// flows root-down with forward upcalls at every hop; collect flows leaf-up,
// giving the layer above (Bullet's RanSub epochs) its aggregation path.
package randtree

import (
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol.
type Params struct {
	// MaxDegree bounds children per node (default 4).
	MaxDegree int
	// RejoinDelay is how long an orphan waits before rejoining through the
	// root after its parent fails (default 1 s).
	RejoinDelay time.Duration
	// MaxHops bounds tree-data forwarding (default 32). Churn can briefly
	// cycle the tree — an orphan rejoining under its own descendant — and
	// the hop limit keeps packets from circulating such a cycle forever,
	// exactly as the IP TTL would on a routing loop.
	MaxHops int
}

func (p *Params) setDefaults() {
	if p.MaxDegree <= 0 {
		p.MaxDegree = 4
	}
	if p.RejoinDelay <= 0 {
		p.RejoinDelay = time.Second
	}
	if p.MaxHops <= 0 {
		p.MaxHops = 32
	}
}

// New returns a factory for RandTree agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

type joinMsg struct{}

func (m *joinMsg) MsgName() string                { return "join" }
func (m *joinMsg) Encode(*overlay.Writer)         {}
func (m *joinMsg) Decode(r *overlay.Reader) error { return r.Err() }

type joinReply struct {
	Accept   bool
	Redirect overlay.Address
}

func (m *joinReply) MsgName() string { return "join_reply" }
func (m *joinReply) Encode(w *overlay.Writer) {
	w.Bool(m.Accept)
	w.Addr(m.Redirect)
}
func (m *joinReply) Decode(r *overlay.Reader) error {
	m.Accept = r.Bool()
	m.Redirect = r.Addr()
	return r.Err()
}

type mdata struct {
	Src     overlay.Address
	Typ     int32
	TTL     uint32
	Payload []byte
}

func (m *mdata) MsgName() string { return "mdata" }
func (m *mdata) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.U32(uint32(m.Typ))
	w.U32(m.TTL)
	w.Bytes32(m.Payload)
}
func (m *mdata) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Typ = int32(r.U32())
	m.TTL = r.U32()
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

type cdata struct {
	Src     overlay.Address
	Typ     int32
	TTL     uint32
	Payload []byte
}

func (m *cdata) MsgName() string { return "cdata" }
func (m *cdata) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.U32(uint32(m.Typ))
	w.U32(m.TTL)
	w.Bytes32(m.Payload)
}
func (m *cdata) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Typ = int32(r.U32())
	m.TTL = r.U32()
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// Protocol is one node's RandTree instance.
type Protocol struct {
	p Params

	self overlay.Address
	root overlay.Address
}

// ProtocolName implements the engine's naming hook.
func (rt *Protocol) ProtocolName() string { return "randtree" }

// Root returns the tree root (the bootstrap).
func (rt *Protocol) Root() overlay.Address { return rt.root }

// Define declares the RandTree FSM: the Go equivalent of randtree.mac. Its
// structure is deliberately identical to what the code generator emits from
// specs/randtree.mac (see internal/codegen's tests).
func (rt *Protocol) Define(d *core.Def) {
	d.States("joining", "joined")
	d.Addressing(core.IPAddressing)

	d.UDPTransport("BEST_EFFORT")
	d.TCPTransport("RELIABLE")

	d.Message("join", func() overlay.Message { return &joinMsg{} }, "BEST_EFFORT")
	d.Message("join_reply", func() overlay.Message { return &joinReply{} }, "RELIABLE")
	d.Message("mdata", func() overlay.Message { return &mdata{} }, "RELIABLE")
	d.Message("cdata", func() overlay.Message { return &cdata{} }, "RELIABLE")
	d.Message("data_ip", func() overlay.Message { return &mdataIP{} }, "RELIABLE")

	d.Timer("rejoin", rt.p.RejoinDelay)
	d.NeighborList("parent", 1, true)
	d.NeighborList("kids", rt.p.MaxDegree, true)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, rt.apiInit)
	d.OnAPI(overlay.APIMulticast, core.In("joined"), core.Read, rt.apiMulticast)
	d.OnAPI(overlay.APICollect, core.In("joined"), core.Read, rt.apiCollect)
	d.OnAPI(overlay.APIRouteIP, core.Any, core.Read, rt.apiRouteIP)
	d.OnAPI(overlay.APIError, core.Any, core.Write, rt.apiError)

	d.OnRecv("join", core.In("joined"), core.Write, rt.recvJoin)
	d.OnRecv("join", core.In("joining", core.StateInit), core.Write, rt.recvJoinEarly)
	d.OnRecv("join_reply", core.In("joining"), core.Write, rt.recvJoinReply)
	d.OnRecv("mdata", core.Any, core.Read, rt.recvMdata)
	d.OnRecv("cdata", core.Any, core.Read, rt.recvCdata)
	d.OnRecv("data_ip", core.Any, core.Read, rt.recvDataIP)

	d.OnTimer("rejoin", core.In("joining"), core.Write, rt.onRejoin)
}

func (rt *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	rt.self = ctx.Self()
	rt.root = call.Bootstrap
	if rt.root == rt.self || rt.root == overlay.NilAddress {
		ctx.StateChange("joined") // the bootstrap is the root
		return
	}
	ctx.StateChange("joining")
	_ = ctx.Send(rt.root, &joinMsg{}, overlay.PriorityDefault)
	ctx.TimerSched("rejoin", 3*rt.p.RejoinDelay) // retry lost joins
}

func (rt *Protocol) recvJoin(ctx *core.Context, ev *core.MsgEvent) {
	kids := ctx.Neighbors("kids")
	if kids.Contains(ev.From) {
		_ = ctx.Send(ev.From, &joinReply{Accept: true}, overlay.PriorityDefault)
		return
	}
	if kids.Full() {
		// Bounce to a random child: the random walk that names the tree.
		child := kids.Random(ctx.Rand())
		_ = ctx.Send(ev.From, &joinReply{Redirect: child.Addr}, overlay.PriorityDefault)
		return
	}
	kids.Add(ev.From)
	_ = ctx.Send(ev.From, &joinReply{Accept: true}, overlay.PriorityDefault)
	ctx.NotifyNeighbors(overlay.NbrTypeChild, kids.Addrs())
}

// recvJoinEarly handles a join racing our own: bounce to the root.
func (rt *Protocol) recvJoinEarly(ctx *core.Context, ev *core.MsgEvent) {
	_ = ctx.Send(ev.From, &joinReply{Redirect: rt.root}, overlay.PriorityDefault)
}

func (rt *Protocol) recvJoinReply(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinReply)
	if !m.Accept {
		target := m.Redirect
		if target == overlay.NilAddress || target == rt.self {
			target = rt.root
		}
		_ = ctx.Send(target, &joinMsg{}, overlay.PriorityDefault)
		ctx.TimerResched("rejoin", 3*rt.p.RejoinDelay)
		return
	}
	parent := ctx.Neighbors("parent")
	parent.Clear()
	parent.Add(ev.From)
	ctx.TimerCancel("rejoin")
	ctx.StateChange("joined")
	ctx.NotifyNeighbors(overlay.NbrTypeParent, []overlay.Address{ev.From})
}

func (rt *Protocol) onRejoin(ctx *core.Context) {
	_ = ctx.Send(rt.root, &joinMsg{}, overlay.PriorityDefault)
	ctx.TimerSched("rejoin", 3*rt.p.RejoinDelay)
}

func (rt *Protocol) apiError(ctx *core.Context, call *core.APICall) {
	parent := ctx.Neighbors("parent")
	// The self != root guard matters: the root never has a parent, so a
	// dead *child* of the root would otherwise read as "my parent died"
	// and send the root join-chasing itself in a zero-latency loop
	// (specs/randtree.mac always had the guard; the port had drifted).
	if parent.Size() == 0 && ctx.State() == "joined" && rt.self != rt.root && call.Failed != overlay.NilAddress {
		// Our parent died (the engine already removed it): rejoin via root.
		ctx.StateChange("joining")
		ctx.TimerSched("rejoin", rt.p.RejoinDelay)
	}
	ctx.NotifyNeighbors(overlay.NbrTypeChild, ctx.Neighbors("kids").Addrs())
}

func (rt *Protocol) apiMulticast(ctx *core.Context, call *core.APICall) {
	m := &mdata{Src: rt.self, Typ: call.PayloadType, TTL: uint32(rt.p.MaxHops), Payload: call.Payload}
	rt.disseminate(ctx, m, overlay.NilAddress, call.Priority)
}

func (rt *Protocol) disseminate(ctx *core.Context, m *mdata, except overlay.Address, pri int) {
	if m.TTL > 0 {
		for _, kid := range ctx.Neighbors("kids").Addrs() {
			if kid == except {
				continue
			}
			ok, next, payload := ctx.Forward(m.Payload, m.Typ, kid, overlay.HashAddress(kid))
			if !ok {
				continue
			}
			fwd := &mdata{Src: m.Src, Typ: m.Typ, TTL: m.TTL - 1, Payload: payload}
			_ = ctx.Send(next, fwd, pri)
		}
	}
	if m.Src != rt.self {
		ctx.Deliver(m.Payload, m.Typ, m.Src)
	}
}

func (rt *Protocol) recvMdata(ctx *core.Context, ev *core.MsgEvent) {
	rt.disseminate(ctx, ev.Msg.(*mdata), ev.From, overlay.PriorityDefault)
}

func (rt *Protocol) apiCollect(ctx *core.Context, call *core.APICall) {
	rt.sendUp(ctx, &cdata{Src: rt.self, Typ: call.PayloadType, TTL: uint32(rt.p.MaxHops), Payload: call.Payload}, call.Priority)
}

func (rt *Protocol) sendUp(ctx *core.Context, m *cdata, pri int) {
	parent := ctx.Neighbors("parent").First()
	if parent == nil {
		// At the root: collection terminates here.
		ctx.Deliver(m.Payload, m.Typ, m.Src)
		return
	}
	_ = ctx.Send(parent.Addr, m, pri)
}

func (rt *Protocol) recvCdata(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*cdata)
	if m.TTL == 0 {
		return // parent-chain cycle under churn: the hop limit ends it
	}
	m.TTL--
	// Offer the payload to the layer above for in-path aggregation; it may
	// rewrite it through the extensible downcall before it travels on.
	ok, _, payload := ctx.Forward(m.Payload, m.Typ, rt.self, ctx.SelfKey())
	if !ok {
		return
	}
	m.Payload = payload
	rt.sendUp(ctx, m, overlay.PriorityDefault)
}

func (rt *Protocol) apiRouteIP(ctx *core.Context, call *core.APICall) {
	if call.DestIP == rt.self {
		ctx.Deliver(call.Payload, call.PayloadType, rt.self)
		return
	}
	_ = ctx.Send(call.DestIP, &mdataIP{Src: rt.self, Typ: call.PayloadType, Payload: call.Payload}, call.Priority)
}

func (rt *Protocol) recvDataIP(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*mdataIP)
	ctx.Deliver(m.Payload, m.Typ, m.Src)
}

type mdataIP struct {
	Src     overlay.Address
	Typ     int32
	Payload []byte
}

func (m *mdataIP) MsgName() string { return "data_ip" }
func (m *mdataIP) Encode(w *overlay.Writer) {
	w.Addr(m.Src)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *mdataIP) Decode(r *overlay.Reader) error {
	m.Src = r.Addr()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}
