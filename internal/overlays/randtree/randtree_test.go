package randtree_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/randtree"
)

func build(t *testing.T, n int, p randtree.Params, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{randtree.New(p)}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func parentOf(c *harness.Cluster, a overlay.Address) overlay.Address {
	ps := c.Nodes[a].Instance("randtree").NeighborsSnapshot("parent")
	if len(ps) == 0 {
		return overlay.NilAddress
	}
	return ps[0]
}

func TestTreeForms(t *testing.T) {
	const n = 30
	const deg = 3
	c := build(t, n, randtree.Params{MaxDegree: deg}, 60*time.Second, 61)
	root := c.Addrs[0]
	// Every non-root node has a parent; walking parents reaches the root;
	// degree bound holds.
	for _, a := range c.Addrs[1:] {
		if st := c.Nodes[a].Instance("randtree").State(); st != "joined" {
			t.Fatalf("node %v state %q", a, st)
		}
		hops := 0
		for cur := a; cur != root; hops++ {
			if hops > n {
				t.Fatalf("parent chain from %v does not reach root", a)
			}
			cur = parentOf(c, cur)
			if cur == overlay.NilAddress {
				t.Fatalf("node %v has a broken parent chain", a)
			}
		}
	}
	for _, a := range c.Addrs {
		kids := c.Nodes[a].Instance("randtree").NeighborsSnapshot("kids")
		if len(kids) > deg {
			t.Fatalf("node %v has %d children, bound %d", a, len(kids), deg)
		}
	}
}

func TestMulticastReachesEveryone(t *testing.T) {
	const n = 20
	c := build(t, n, randtree.Params{MaxDegree: 4}, 60*time.Second, 67)
	got := map[overlay.Address]int{}
	for _, a := range c.Addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) { got[addr]++ },
		})
	}
	const packets = 10
	for i := 0; i < packets; i++ {
		_ = c.Nodes[c.Addrs[0]].Multicast(0, []byte("tree-data"), 5, overlay.PriorityDefault)
		c.RunFor(500 * time.Millisecond)
	}
	c.RunFor(10 * time.Second)
	for _, a := range c.Addrs[1:] {
		if got[a] != packets {
			t.Errorf("node %v received %d/%d", a, got[a], packets)
		}
	}
}

func TestCollectReachesRoot(t *testing.T) {
	const n = 15
	c := build(t, n, randtree.Params{}, 60*time.Second, 71)
	var collected int
	c.Nodes[c.Addrs[0]].RegisterHandlers(core.Handlers{
		Deliver: func(p []byte, typ int32, src overlay.Address) { collected++ },
	})
	for _, a := range c.Addrs[1:] {
		_ = c.Nodes[a].Collect(0, []byte("up"), 2, overlay.PriorityDefault)
	}
	c.RunFor(15 * time.Second)
	if collected != n-1 {
		t.Fatalf("root collected %d/%d payloads", collected, n-1)
	}
}

func TestParentFailureRejoin(t *testing.T) {
	c, err := harness.NewCluster(harness.ClusterConfig{
		Nodes: 12, Routers: 100, Seed: 73,
		HeartbeatAfter: 2 * time.Second, FailAfter: 6 * time.Second, Sweep: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Factory{randtree.New(randtree.Params{MaxDegree: 2})}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * time.Second)
	// Kill an interior node (one with children).
	var victim overlay.Address
	for _, a := range c.Addrs[1:] {
		if len(c.Nodes[a].Instance("randtree").NeighborsSnapshot("kids")) > 0 {
			victim = a
			break
		}
	}
	if victim == overlay.NilAddress {
		t.Skip("no interior non-root node in this seed")
	}
	_ = c.Net.SetDown(victim, true)
	c.Nodes[victim].Stop()
	c.RunFor(120 * time.Second)
	root := c.Addrs[0]
	for _, a := range c.Addrs[1:] {
		if a == victim {
			continue
		}
		hops := 0
		for cur := a; cur != root; hops++ {
			if hops > 20 {
				t.Fatalf("node %v not reattached after parent failure", a)
			}
			cur = parentOf(c, cur)
			if cur == overlay.NilAddress || cur == victim {
				t.Fatalf("node %v has broken chain (cur=%v)", a, cur)
			}
		}
	}
}
