package scribe

import "macedon/internal/overlay"

// joinG is routed toward the group root; intermediate nodes graft the
// reverse path into the distribution tree (§5: "Receivers enter the session
// by routing join requests toward the root").
type joinG struct {
	Group  overlay.Key
	Joiner overlay.Address
	// Direct marks joins sent point-to-point (refresh to a known parent,
	// pushdown re-join): the receiver grafts the child but is not the
	// group's rendezvous root.
	Direct bool
}

func (m *joinG) MsgName() string { return "join_g" }
func (m *joinG) Encode(w *overlay.Writer) {
	w.Key(m.Group)
	w.Addr(m.Joiner)
	w.Bool(m.Direct)
}
func (m *joinG) Decode(r *overlay.Reader) error {
	m.Group = r.Key()
	m.Joiner = r.Addr()
	m.Direct = r.Bool()
	return r.Err()
}

// joinAck tells a joiner who its tree parent is.
type joinAck struct {
	Group overlay.Key
}

func (m *joinAck) MsgName() string                { return "join_ack" }
func (m *joinAck) Encode(w *overlay.Writer)       { w.Key(m.Group) }
func (m *joinAck) Decode(r *overlay.Reader) error { m.Group = r.Key(); return r.Err() }

// joinRedirect implements the SplitStream pushdown: a saturated parent
// bounces the joiner to one of its children.
type joinRedirect struct {
	Group overlay.Key
	To    overlay.Address
}

func (m *joinRedirect) MsgName() string { return "join_redirect" }
func (m *joinRedirect) Encode(w *overlay.Writer) {
	w.Key(m.Group)
	w.Addr(m.To)
}
func (m *joinRedirect) Decode(r *overlay.Reader) error {
	m.Group = r.Key()
	m.To = r.Addr()
	return r.Err()
}

// leaveG prunes a child from the tree.
type leaveG struct {
	Group overlay.Key
}

func (m *leaveG) MsgName() string                { return "leave_g" }
func (m *leaveG) Encode(w *overlay.Writer)       { w.Key(m.Group) }
func (m *leaveG) Decode(r *overlay.Reader) error { m.Group = r.Key(); return r.Err() }

// createG marks the rendezvous node as the group's root.
type createG struct {
	Group overlay.Key
}

func (m *createG) MsgName() string                { return "create_g" }
func (m *createG) Encode(w *overlay.Writer)       { w.Key(m.Group) }
func (m *createG) Decode(r *overlay.Reader) error { m.Group = r.Key(); return r.Err() }

// mdata is multicast payload moving through the tree. Seq plus Src
// deduplicates while the tree reconverges (transient cycles and
// double-parenting must not amplify traffic).
type mdata struct {
	Group   overlay.Key
	Src     overlay.Address
	Seq     uint32
	Typ     int32
	Payload []byte
}

func (m *mdata) MsgName() string { return "mdata" }
func (m *mdata) Encode(w *overlay.Writer) {
	w.Key(m.Group)
	w.Addr(m.Src)
	w.U32(m.Seq)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *mdata) Decode(r *overlay.Reader) error {
	m.Group = r.Key()
	m.Src = r.Addr()
	m.Seq = r.U32()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// cdata is collect payload moving up the tree toward the root (the
// macedon_collect primitive of §2.2).
type cdata struct {
	Group   overlay.Key
	Src     overlay.Address
	Typ     int32
	Payload []byte
}

func (m *cdata) MsgName() string { return "cdata" }
func (m *cdata) Encode(w *overlay.Writer) {
	w.Key(m.Group)
	w.Addr(m.Src)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *cdata) Decode(r *overlay.Reader) error {
	m.Group = r.Key()
	m.Src = r.Addr()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// acast performs the DFS anycast over the tree.
type acast struct {
	Group   overlay.Key
	Src     overlay.Address
	Typ     int32
	Payload []byte
	Visited []overlay.Address
}

func (m *acast) MsgName() string { return "acast" }
func (m *acast) Encode(w *overlay.Writer) {
	w.Key(m.Group)
	w.Addr(m.Src)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
	w.Addrs(m.Visited)
}
func (m *acast) Decode(r *overlay.Reader) error {
	m.Group = r.Key()
	m.Src = r.Addr()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	m.Visited = r.Addrs()
	return r.Err()
}
