// Package scribe implements the Scribe application-level multicast system
// [24] as a layered MACEDON agent: reverse-path distribution trees rooted at
// the DHT node owning each group key. Because it only uses the
// overlay-generic API of the layer below, the same specification runs over
// Pastry or Chord — the paper's one-line "protocol scribe uses chord"
// switch is the one-element change of the node's stack here.
package scribe

import (
	"sort"
	"time"

	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol.
type Params struct {
	// RefreshPeriod is the soft-state tree refresh: members re-route their
	// joins at this period and parents expire silent children after three
	// periods (default 10 s).
	RefreshPeriod time.Duration
	// MaxChildren bounds per-group fan-out; joins beyond it are pushed down
	// to a child (the SplitStream adaptation). Zero means unbounded.
	MaxChildren int
}

func (p *Params) setDefaults() {
	if p.RefreshPeriod <= 0 {
		p.RefreshPeriod = 10 * time.Second
	}
}

// New returns a factory for Scribe agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

type groupState struct {
	member    bool
	forwarder bool
	root      bool
	parent    overlay.Address
	children  map[overlay.Address]time.Time // last refresh
}

// Protocol is one node's Scribe instance.
type Protocol struct {
	p Params

	self   overlay.Address
	groups map[overlay.Key]*groupState

	nextSeq   uint32
	seen      map[uint64]bool // (src, seq) dedup across reconvergence
	delivered uint64          // multicast payloads handed to this node's member
}

// ProtocolName implements the engine's naming hook.
func (s *Protocol) ProtocolName() string { return "scribe" }

// Children returns the current children of this node for a group.
func (s *Protocol) Children(g overlay.Key) []overlay.Address {
	gs, ok := s.groups[g]
	if !ok {
		return nil
	}
	out := make([]overlay.Address, 0, len(gs.children))
	for a := range gs.children {
		out = append(out, a)
	}
	return out
}

// Parent returns this node's tree parent for a group (NilAddress if none).
func (s *Protocol) Parent(g overlay.Key) overlay.Address {
	if gs, ok := s.groups[g]; ok {
		return gs.parent
	}
	return overlay.NilAddress
}

// Member reports group membership.
func (s *Protocol) Member(g overlay.Key) bool {
	gs, ok := s.groups[g]
	return ok && gs.member
}

// Delivered counts multicast payloads delivered to the local member.
func (s *Protocol) Delivered() uint64 { return s.delivered }

func (s *Protocol) group(g overlay.Key) *groupState {
	gs, ok := s.groups[g]
	if !ok {
		gs = &groupState{children: make(map[overlay.Address]time.Time)}
		s.groups[g] = gs
	}
	return gs
}

// Define declares the Scribe FSM: the Go equivalent of scribe.mac.
func (s *Protocol) Define(d *core.Def) {
	d.States("running")
	d.Addressing(core.HashAddressing)

	// All messages ride the DHT below: no transport bindings.
	d.Message("join_g", func() overlay.Message { return &joinG{} }, "")
	d.Message("join_ack", func() overlay.Message { return &joinAck{} }, "")
	d.Message("join_redirect", func() overlay.Message { return &joinRedirect{} }, "")
	d.Message("leave_g", func() overlay.Message { return &leaveG{} }, "")
	d.Message("create_g", func() overlay.Message { return &createG{} }, "")
	d.Message("mdata", func() overlay.Message { return &mdata{} }, "")
	d.Message("cdata", func() overlay.Message { return &cdata{} }, "")
	d.Message("acast", func() overlay.Message { return &acast{} }, "")

	d.PeriodicTimer("refresh", s.p.RefreshPeriod)

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, s.apiInit)
	d.OnAPI(overlay.APICreateGroup, core.Any, core.Write, s.apiCreateGroup)
	d.OnAPI(overlay.APIJoin, core.Any, core.Write, s.apiJoin)
	d.OnAPI(overlay.APILeave, core.Any, core.Write, s.apiLeave)
	d.OnAPI(overlay.APIMulticast, core.Any, core.Read, s.apiMulticast)
	d.OnAPI(overlay.APIAnycast, core.Any, core.Read, s.apiAnycast)
	d.OnAPI(overlay.APICollect, core.Any, core.Read, s.apiCollect)
	d.OnAPI(overlay.APIRoute, core.Any, core.Read, s.apiRoute)
	d.OnAPI(overlay.APIRouteIP, core.Any, core.Read, s.apiRouteIP)

	d.OnRecv("join_g", core.Any, core.Write, s.recvJoin)
	d.OnForward("join_g", core.Any, core.Write, s.forwardJoin)
	d.OnRecv("join_ack", core.Any, core.Write, s.recvJoinAck)
	d.OnRecv("join_redirect", core.Any, core.Write, s.recvJoinRedirect)
	d.OnRecv("leave_g", core.Any, core.Write, s.recvLeave)
	d.OnRecv("create_g", core.Any, core.Write, s.recvCreate)
	d.OnRecv("mdata", core.Any, core.Read, s.recvMdata)
	d.OnRecv("cdata", core.Any, core.Read, s.recvCdata)
	d.OnRecv("acast", core.Any, core.Read, s.recvAcast)

	d.OnTimer("refresh", core.In("running"), core.Write, s.onRefresh)
}

func (s *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	s.self = ctx.Self()
	s.groups = make(map[overlay.Key]*groupState)
	s.seen = make(map[uint64]bool)
	ctx.StateChange("running")
	ctx.TimerSched("refresh", s.p.RefreshPeriod/2+time.Duration(ctx.Rand().Int63n(int64(s.p.RefreshPeriod))))
}

func (s *Protocol) send(ctx *core.Context, dst overlay.Address, m overlay.Message) {
	_ = ctx.Send(dst, m, overlay.PriorityDefault)
}

func (s *Protocol) routeToRoot(ctx *core.Context, g overlay.Key, m overlay.Message) {
	frame, err := ctx.EncodeFrame(m)
	if err != nil {
		return
	}
	_ = ctx.Route(g, frame, core.ProtocolPayload, overlay.PriorityDefault)
}

// --- group management -----------------------------------------------------

func (s *Protocol) apiCreateGroup(ctx *core.Context, call *core.APICall) {
	s.routeToRoot(ctx, call.Group, &createG{Group: call.Group})
}

func (s *Protocol) recvCreate(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*createG)
	gs := s.group(m.Group)
	gs.root = true
	gs.forwarder = true
}

func (s *Protocol) apiJoin(ctx *core.Context, call *core.APICall) {
	gs := s.group(call.Group)
	gs.member = true
	if gs.forwarder || gs.root {
		return // already on the tree
	}
	s.routeToRoot(ctx, call.Group, &joinG{Group: call.Group, Joiner: s.self})
}

// addChild grafts a child, enforcing the pushdown bound. It reports whether
// the child was accepted; on refusal it returns a child to push down to.
func (s *Protocol) addChild(ctx *core.Context, g overlay.Key, child overlay.Address) (bool, overlay.Address) {
	gs := s.group(g)
	if child == s.self {
		return true, overlay.NilAddress
	}
	if _, have := gs.children[child]; have {
		gs.children[child] = ctx.Now()
		return true, overlay.NilAddress
	}
	if s.p.MaxChildren > 0 && len(gs.children) >= s.p.MaxChildren {
		// Pushdown: bounce to an existing child, chosen through the
		// seeded PRNG so runs reproduce.
		kids := sortedChildren(gs)
		return false, kids[ctx.Rand().Intn(len(kids))]
	}
	gs.children[child] = ctx.Now()
	ctx.NotifyNeighbors(overlay.NbrTypeChild, s.Children(g))
	return true, overlay.NilAddress
}

// forwardJoin runs at intermediate DHT hops: graft the reverse path.
func (s *Protocol) forwardJoin(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinG)
	if m.Joiner == s.self {
		return // our own join leaving the origin: pass through untouched
	}
	gs := s.group(m.Group)
	accepted, pushTo := s.addChild(ctx, m.Group, m.Joiner)
	if !accepted {
		s.send(ctx, m.Joiner, &joinRedirect{Group: m.Group, To: pushTo})
		ev.Quash = true
		return
	}
	s.send(ctx, m.Joiner, &joinAck{Group: m.Group})
	if gs.forwarder || gs.root {
		ev.Quash = true // the tree already reaches this node
		return
	}
	gs.forwarder = true
	// Continue joining upward as ourselves.
	m.Joiner = s.self
}

// recvJoin runs at the group root (DHT delivery point) or, for Direct
// joins, at the specific parent the joiner was told to use.
func (s *Protocol) recvJoin(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinG)
	gs := s.group(m.Group)
	if !m.Direct {
		// DHT-delivered: this node owns the group key and is the root.
		gs.root = true
		gs.forwarder = true
	}
	accepted, pushTo := s.addChild(ctx, m.Group, m.Joiner)
	if !accepted {
		s.send(ctx, m.Joiner, &joinRedirect{Group: m.Group, To: pushTo})
		return
	}
	if m.Joiner != s.self {
		s.send(ctx, m.Joiner, &joinAck{Group: m.Group})
	}
}

func (s *Protocol) recvJoinAck(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinAck)
	gs := s.group(m.Group)
	if gs.root && ev.From != s.self {
		// Our own revalidation join landed at another node: the DHT says
		// the group key is not ours (we became root on a cold routing
		// table). Step down and graft under the true root.
		gs.root = false
	}
	if old := gs.parent; old != overlay.NilAddress && old != ev.From {
		// Re-parenting: prune the old edge eagerly so the tree never
		// carries two upward edges for long.
		s.send(ctx, old, &leaveG{Group: m.Group})
	}
	gs.parent = ev.From
	ctx.NotifyNeighbors(overlay.NbrTypeParent, []overlay.Address{ev.From})
}

func (s *Protocol) recvJoinRedirect(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*joinRedirect)
	gs := s.group(m.Group)
	if gs.parent != overlay.NilAddress || m.To == s.self {
		return
	}
	// Re-issue the join directly to the pushed-down parent.
	s.send(ctx, m.To, &joinG{Group: m.Group, Joiner: s.self, Direct: true})
}

func (s *Protocol) apiLeave(ctx *core.Context, call *core.APICall) {
	gs := s.group(call.Group)
	gs.member = false
	s.maybePrune(ctx, call.Group)
}

func (s *Protocol) maybePrune(ctx *core.Context, g overlay.Key) {
	gs := s.group(g)
	if gs.member || gs.root || len(gs.children) > 0 {
		return
	}
	gs.forwarder = false
	if gs.parent != overlay.NilAddress {
		s.send(ctx, gs.parent, &leaveG{Group: g})
		gs.parent = overlay.NilAddress
	}
}

func (s *Protocol) recvLeave(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*leaveG)
	gs := s.group(m.Group)
	delete(gs.children, ev.From)
	s.maybePrune(ctx, m.Group)
}

// onRefresh re-joins (soft state) and expires silent children.
func (s *Protocol) onRefresh(ctx *core.Context) {
	now := ctx.Now()
	horizon := 3 * s.p.RefreshPeriod
	keys := make([]overlay.Key, 0, len(s.groups))
	for g := range s.groups {
		keys = append(keys, g)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, g := range keys {
		gs := s.groups[g]
		if (gs.member || gs.forwarder) && !gs.root {
			if gs.parent != overlay.NilAddress {
				// Refresh directly with the known parent.
				s.send(ctx, gs.parent, &joinG{Group: g, Joiner: s.self, Direct: true})
			}
			// And revalidate against the DHT: the ack re-parents us onto
			// the DHT-consistent path, which is what breaks any parent
			// cycles left over from routing on cold tables.
			s.routeToRoot(ctx, g, &joinG{Group: g, Joiner: s.self})
		} else if gs.root && (gs.member || len(gs.children) > 0) {
			// Revalidate rootship against the DHT: if the key's true owner
			// is elsewhere (we rooted ourselves on cold tables), the ack
			// demotes us and merges the trees.
			s.routeToRoot(ctx, g, &joinG{Group: g, Joiner: s.self})
		}
		for child, last := range gs.children {
			if now.Sub(last) > horizon {
				delete(gs.children, child)
			}
		}
		s.maybePrune(ctx, g)
	}
}

// --- data path --------------------------------------------------------------

func (s *Protocol) apiMulticast(ctx *core.Context, call *core.APICall) {
	s.nextSeq++
	m := &mdata{Group: call.Group, Src: s.self, Seq: s.nextSeq,
		Typ: call.PayloadType, Payload: call.Payload}
	gs := s.group(call.Group)
	if gs.root {
		s.markSeen(m)
		s.disseminate(ctx, m, overlay.NilAddress)
		return
	}
	// Route to the root; the DHT's location cache makes repeats one hop.
	s.routeToRoot(ctx, call.Group, m)
}

func (s *Protocol) markSeen(m *mdata) bool {
	key := uint64(m.Src)<<32 | uint64(m.Seq)
	if s.seen[key] {
		return false
	}
	s.seen[key] = true
	if len(s.seen) > 8192 {
		s.seen = map[uint64]bool{key: true} // coarse window reset
	}
	return true
}

func (s *Protocol) disseminate(ctx *core.Context, m *mdata, except overlay.Address) {
	gs := s.group(m.Group)
	for _, child := range sortedChildren(gs) {
		if child != except && child != s.self {
			s.send(ctx, child, m)
		}
	}
	if gs.member {
		s.delivered++
		ctx.Deliver(m.Payload, m.Typ, m.Src)
	}
}

func (s *Protocol) recvMdata(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*mdata)
	if !s.markSeen(m) {
		return
	}
	s.disseminate(ctx, m, ev.From)
}

func (s *Protocol) apiCollect(ctx *core.Context, call *core.APICall) {
	m := &cdata{Group: call.Group, Src: s.self, Typ: call.PayloadType, Payload: call.Payload}
	s.sendCollect(ctx, m)
}

func (s *Protocol) sendCollect(ctx *core.Context, m *cdata) {
	gs := s.group(m.Group)
	if gs.root {
		// The root is the collection point: deliver upward.
		ctx.Deliver(m.Payload, m.Typ, m.Src)
		return
	}
	if gs.parent != overlay.NilAddress {
		s.send(ctx, gs.parent, m)
		return
	}
	s.routeToRoot(ctx, m.Group, m)
}

func (s *Protocol) recvCdata(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*cdata)
	// Intermediate nodes may summarize application-specifically: expose the
	// payload to the layer above via the extensible upcall, then pass it on.
	ctx.UpcallExt(opCollectTransit, m.Payload)
	s.sendCollect(ctx, m)
}

// opCollectTransit identifies collect payloads passing through this node in
// upcall_ext notifications.
const opCollectTransit = 1001

func (s *Protocol) apiAnycast(ctx *core.Context, call *core.APICall) {
	m := &acast{Group: call.Group, Src: s.self, Typ: call.PayloadType, Payload: call.Payload}
	s.routeToRoot(ctx, call.Group, m)
}

func (s *Protocol) recvAcast(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*acast)
	gs := s.group(m.Group)
	if gs.member {
		ctx.Deliver(m.Payload, m.Typ, m.Src)
		return
	}
	m.Visited = append(m.Visited, s.self)
	// DFS down unvisited children.
	for _, child := range sortedChildren(gs) {
		if !visited(m.Visited, child) {
			s.send(ctx, child, m)
			return
		}
	}
	// Dead end: back up to the parent if it has not seen this message.
	if gs.parent != overlay.NilAddress && !visited(m.Visited, gs.parent) {
		s.send(ctx, gs.parent, m)
	}
}

// sortedChildren returns a group's children in address order so send order
// (and therefore simulation event order) is deterministic.
func sortedChildren(gs *groupState) []overlay.Address {
	out := make([]overlay.Address, 0, len(gs.children))
	for a := range gs.children {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func visited(vs []overlay.Address, a overlay.Address) bool {
	for _, v := range vs {
		if v == a {
			return true
		}
	}
	return false
}

// apiRoute / apiRouteIP pass through to the DHT so applications over Scribe
// can still use point-to-point primitives.
func (s *Protocol) apiRoute(ctx *core.Context, call *core.APICall) {
	_ = ctx.Route(call.Dest, call.Payload, call.PayloadType, call.Priority)
}

func (s *Protocol) apiRouteIP(ctx *core.Context, call *core.APICall) {
	_ = ctx.RouteIP(call.DestIP, call.Payload, call.PayloadType, call.Priority)
}
