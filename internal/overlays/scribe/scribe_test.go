package scribe_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/chord"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/scribe"
)

// overPastry and overChord are the paper's one-line DHT switch.
func overPastry(sp scribe.Params) []core.Factory {
	return []core.Factory{pastry.New(pastry.Params{}), scribe.New(sp)}
}

func overChord(sp scribe.Params) []core.Factory {
	return []core.Factory{chord.New(chord.Params{}), scribe.New(sp)}
}

func build(t *testing.T, n int, stack []core.Factory, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func scribeOf(c *harness.Cluster, a overlay.Address) *scribe.Protocol {
	return c.Nodes[a].Instance("scribe").Agent().(*scribe.Protocol)
}

func testMulticastReachesAllMembers(t *testing.T, stack []core.Factory) {
	t.Helper()
	const n = 16
	c := build(t, n, stack, 90*time.Second, 31)
	group := overlay.HashString("session-1")
	got := make(map[overlay.Address]int)
	for _, a := range c.Addrs {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) {
				if typ == 42 {
					got[addr]++
				}
			},
		})
	}
	// Everyone except the sender joins.
	sender := c.Addrs[0]
	for _, a := range c.Addrs[1:] {
		if err := c.Nodes[a].Join(group); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(30 * time.Second) // trees build
	const packets = 5
	for i := 0; i < packets; i++ {
		if err := c.Nodes[sender].Multicast(group, []byte("payload"), 42, overlay.PriorityDefault); err != nil {
			t.Fatal(err)
		}
		c.RunFor(time.Second)
	}
	c.RunFor(20 * time.Second)
	for _, a := range c.Addrs[1:] {
		if got[a] != packets {
			t.Errorf("member %v received %d/%d packets", a, got[a], packets)
		}
	}
	if got[sender] != 0 {
		t.Errorf("non-member sender received %d packets", got[sender])
	}
}

func TestMulticastOverPastry(t *testing.T) {
	testMulticastReachesAllMembers(t, overPastry(scribe.Params{}))
}

// TestMulticastOverChord is the paper's headline interoperability claim:
// switching Scribe's DHT is a one-line change.
func TestMulticastOverChord(t *testing.T) {
	testMulticastReachesAllMembers(t, overChord(scribe.Params{}))
}

func TestAnycastReachesExactlyOneMember(t *testing.T) {
	c := build(t, 12, overPastry(scribe.Params{}), 90*time.Second, 37)
	group := overlay.HashString("anycast-group")
	var hits int
	for _, a := range c.Addrs[2:6] {
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) {
				if typ == 7 {
					hits++
				}
			},
		})
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(30 * time.Second)
	_ = c.Nodes[c.Addrs[10]].Anycast(group, []byte("any"), 7, overlay.PriorityDefault)
	c.RunFor(15 * time.Second)
	if hits != 1 {
		t.Fatalf("anycast delivered to %d members, want exactly 1", hits)
	}
}

func TestCollectReachesRoot(t *testing.T) {
	c := build(t, 10, overPastry(scribe.Params{}), 90*time.Second, 41)
	group := overlay.HashString("collect-group")
	for _, a := range c.Addrs[1:] {
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(30 * time.Second)
	// Find the root: the node that is root for the group.
	var root overlay.Address = overlay.NilAddress
	var collected int
	for _, a := range c.Addrs {
		if p := scribeOf(c, a); p.Parent(group) == overlay.NilAddress && len(p.Children(group)) > 0 {
			root = a
		}
	}
	if root == overlay.NilAddress {
		t.Fatal("no root found")
	}
	c.Nodes[root].RegisterHandlers(core.Handlers{
		Deliver: func(p []byte, typ int32, src overlay.Address) {
			if typ == 9 {
				collected++
			}
		},
	})
	for _, a := range c.Addrs[5:8] {
		if a == root {
			continue
		}
		_ = c.Nodes[a].Collect(group, []byte("up"), 9, overlay.PriorityDefault)
	}
	c.RunFor(15 * time.Second)
	if collected < 2 {
		t.Fatalf("root collected %d payloads", collected)
	}
}

func TestLeavePrunesTree(t *testing.T) {
	c := build(t, 10, overPastry(scribe.Params{RefreshPeriod: 5 * time.Second}), 60*time.Second, 43)
	group := overlay.HashString("leave-group")
	for _, a := range c.Addrs[1:] {
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(30 * time.Second)
	for _, a := range c.Addrs[1:] {
		_ = c.Nodes[a].Leave(group)
	}
	c.RunFor(60 * time.Second) // refreshes expire children
	for _, a := range c.Addrs {
		p := scribeOf(c, a)
		if n := len(p.Children(group)); n != 0 {
			t.Errorf("node %v still has %d children after everyone left", a, n)
		}
	}
}

func TestPushdownBoundsChildren(t *testing.T) {
	const maxKids = 2
	c := build(t, 14, overPastry(scribe.Params{MaxChildren: maxKids}), 90*time.Second, 47)
	group := overlay.HashString("bounded-group")
	for _, a := range c.Addrs {
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(60 * time.Second)
	reached := 0
	for _, a := range c.Addrs {
		p := scribeOf(c, a)
		if kids := len(p.Children(group)); kids > maxKids {
			t.Errorf("node %v has %d children, bound %d", a, kids, maxKids)
		}
		if p.Member(group) && (p.Parent(group) != overlay.NilAddress || len(p.Children(group)) > 0) {
			reached++
		}
	}
	if reached < 10 {
		t.Fatalf("only %d members attached to the bounded tree", reached)
	}
}
