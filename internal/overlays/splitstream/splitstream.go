// Package splitstream implements SplitStream [6] as a MACEDON agent layered
// on Scribe: the stream is striped across k Scribe trees whose group keys
// differ in their first routing digit, so prefix routing gives each stripe a
// different root and (largely) interior-node-disjoint trees. Forwarding load
// spreads across members instead of concentrating at interior nodes of one
// tree. The capacity bound that makes this work is Scribe's pushdown
// (Params.MaxChildren there), exactly the "small change to Scribe" §4.1
// describes.
package splitstream

import (
	"macedon/internal/core"
	"macedon/internal/overlay"
)

// Params tunes the protocol.
type Params struct {
	// Stripes is the number of Scribe trees the stream is split across
	// (default 16, one per first hex digit).
	Stripes int
}

func (p *Params) setDefaults() {
	if p.Stripes <= 0 {
		p.Stripes = 16
	}
}

// New returns a factory for SplitStream agents.
func New(p Params) core.Factory {
	p.setDefaults()
	return func() core.Agent { return &Protocol{p: p} }
}

// StripeKey derives stripe i's group key: the group key with its first
// base-16 digit replaced, following the SplitStream stripe-id construction.
func StripeKey(group overlay.Key, i int) overlay.Key {
	return group.WithDigit(0, 4, i&0xf)
}

// block is the striped payload unit.
type block struct {
	Group   overlay.Key
	Seq     uint32
	Typ     int32
	Payload []byte
}

func (m *block) MsgName() string { return "block" }
func (m *block) Encode(w *overlay.Writer) {
	w.Key(m.Group)
	w.U32(m.Seq)
	w.U32(uint32(m.Typ))
	w.Bytes32(m.Payload)
}
func (m *block) Decode(r *overlay.Reader) error {
	m.Group = r.Key()
	m.Seq = r.U32()
	m.Typ = int32(r.U32())
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// Protocol is one node's SplitStream instance.
type Protocol struct {
	p Params

	self    overlay.Address
	nextSeq map[overlay.Key]uint32

	blocksDelivered uint64
	bytesDelivered  uint64
}

// ProtocolName implements the engine's naming hook.
func (ss *Protocol) ProtocolName() string { return "splitstream" }

// BlocksDelivered counts blocks handed to the application here.
func (ss *Protocol) BlocksDelivered() uint64 { return ss.blocksDelivered }

// BytesDelivered counts payload bytes handed to the application here.
func (ss *Protocol) BytesDelivered() uint64 { return ss.bytesDelivered }

// Stripes returns the stripe count.
func (ss *Protocol) Stripes() int { return ss.p.Stripes }

// Define declares the SplitStream FSM: the Go equivalent of
// splitstream.mac ("protocol splitstream uses scribe").
func (ss *Protocol) Define(d *core.Def) {
	d.States("running")
	d.Addressing(core.HashAddressing)
	d.Message("block", func() overlay.Message { return &block{} }, "")

	d.OnAPI(overlay.APIInit, core.In(core.StateInit), core.Write, ss.apiInit)
	d.OnAPI(overlay.APICreateGroup, core.Any, core.Write, ss.apiCreateGroup)
	d.OnAPI(overlay.APIJoin, core.Any, core.Write, ss.apiJoin)
	d.OnAPI(overlay.APILeave, core.Any, core.Write, ss.apiLeave)
	d.OnAPI(overlay.APIMulticast, core.Any, core.Read, ss.apiMulticast)
	d.OnAPI(overlay.APIRoute, core.Any, core.Read, ss.apiRoute)
	d.OnAPI(overlay.APIRouteIP, core.Any, core.Read, ss.apiRouteIP)
	d.OnRecv("block", core.Any, core.Write, ss.recvBlock)
}

func (ss *Protocol) apiInit(ctx *core.Context, call *core.APICall) {
	ss.self = ctx.Self()
	ss.nextSeq = make(map[overlay.Key]uint32)
	ctx.StateChange("running")
}

func (ss *Protocol) apiCreateGroup(ctx *core.Context, call *core.APICall) {
	for i := 0; i < ss.p.Stripes; i++ {
		_ = ctx.CreateGroup(StripeKey(call.Group, i))
	}
}

// apiJoin subscribes to every stripe tree: a SplitStream receiver joins the
// forest, not one tree.
func (ss *Protocol) apiJoin(ctx *core.Context, call *core.APICall) {
	for i := 0; i < ss.p.Stripes; i++ {
		_ = ctx.JoinGroup(StripeKey(call.Group, i))
	}
}

func (ss *Protocol) apiLeave(ctx *core.Context, call *core.APICall) {
	for i := 0; i < ss.p.Stripes; i++ {
		_ = ctx.LeaveGroup(StripeKey(call.Group, i))
	}
}

// apiMulticast stripes blocks across the forest round-robin.
func (ss *Protocol) apiMulticast(ctx *core.Context, call *core.APICall) {
	seq := ss.nextSeq[call.Group]
	ss.nextSeq[call.Group] = seq + 1
	stripe := int(seq) % ss.p.Stripes
	b := &block{Group: call.Group, Seq: seq, Typ: call.PayloadType, Payload: call.Payload}
	frame, err := ctx.EncodeFrame(b)
	if err != nil {
		return
	}
	_ = ctx.Multicast(StripeKey(call.Group, stripe), frame, core.ProtocolPayload, call.Priority)
}

func (ss *Protocol) recvBlock(ctx *core.Context, ev *core.MsgEvent) {
	m := ev.Msg.(*block)
	ss.blocksDelivered++
	ss.bytesDelivered += uint64(len(m.Payload))
	ctx.Deliver(m.Payload, m.Typ, ev.From)
}

func (ss *Protocol) apiRoute(ctx *core.Context, call *core.APICall) {
	_ = ctx.Route(call.Dest, call.Payload, call.PayloadType, call.Priority)
}

func (ss *Protocol) apiRouteIP(ctx *core.Context, call *core.APICall) {
	_ = ctx.RouteIP(call.DestIP, call.Payload, call.PayloadType, call.Priority)
}
