package splitstream_test

import (
	"testing"
	"time"

	"macedon/internal/core"
	"macedon/internal/harness"
	"macedon/internal/overlay"
	"macedon/internal/overlays/pastry"
	"macedon/internal/overlays/scribe"
	"macedon/internal/overlays/splitstream"
)

func forest(stripes, maxKids int) []core.Factory {
	return []core.Factory{
		pastry.New(pastry.Params{CacheLifetime: -1}),
		scribe.New(scribe.Params{MaxChildren: maxKids}),
		splitstream.New(splitstream.Params{Stripes: stripes}),
	}
}

func build(t *testing.T, n int, stack []core.Factory, settle time.Duration, seed int64) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(harness.ClusterConfig{Nodes: n, Routers: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SpawnAll(func(int) []core.Factory { return stack }); err != nil {
		t.Fatal(err)
	}
	c.RunFor(settle)
	return c
}

func TestStripeKeysDiffer(t *testing.T) {
	g := overlay.HashString("stream")
	seen := map[overlay.Key]bool{}
	for i := 0; i < 16; i++ {
		k := splitstream.StripeKey(g, i)
		if seen[k] {
			t.Fatalf("duplicate stripe key %v", k)
		}
		seen[k] = true
		if k.Digit(0, 4) != i {
			t.Fatalf("stripe %d first digit = %x", i, k.Digit(0, 4))
		}
	}
}

func TestForestDeliversStream(t *testing.T) {
	const n = 16
	const stripes = 4
	c := build(t, n, forest(stripes, 0), 90*time.Second, 51)
	group := overlay.HashString("video")
	recv := make(map[overlay.Address]int)
	for _, a := range c.Addrs[1:] {
		addr := a
		c.Nodes[a].RegisterHandlers(core.Handlers{
			Deliver: func(p []byte, typ int32, src overlay.Address) { recv[addr]++ },
		})
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(60 * time.Second) // build all stripe trees
	sender := c.Nodes[c.Addrs[0]]
	const blocks = 20
	for i := 0; i < blocks; i++ {
		if err := sender.Multicast(group, make([]byte, 500), 3, overlay.PriorityDefault); err != nil {
			t.Fatal(err)
		}
		c.RunFor(200 * time.Millisecond)
	}
	c.RunFor(30 * time.Second)
	for _, a := range c.Addrs[1:] {
		if recv[a] < blocks*9/10 {
			t.Errorf("member %v received %d/%d blocks", a, recv[a], blocks)
		}
	}
}

func TestForwardingLoadSpreads(t *testing.T) {
	// The SplitStream claim: with striping plus bounded fan-out, interior
	// forwarding load spreads across members instead of concentrating on
	// the single-tree interior.
	const n = 20
	c := build(t, n, forest(8, 4), 90*time.Second, 53)
	group := overlay.HashString("spread")
	for _, a := range c.Addrs[1:] {
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(90 * time.Second)
	// Count how many nodes are interior (have children) in at least one
	// stripe tree.
	interior := 0
	for _, a := range c.Addrs {
		sc := c.Nodes[a].Instance("scribe").Agent().(*scribe.Protocol)
		kids := 0
		for i := 0; i < 8; i++ {
			kids += len(sc.Children(splitstream.StripeKey(group, i)))
		}
		if kids > 0 {
			interior++
		}
	}
	if interior < n/3 {
		t.Fatalf("only %d/%d nodes carry forwarding load; striping failed to spread it", interior, n)
	}
}

func TestStripesRoundRobin(t *testing.T) {
	c := build(t, 8, forest(4, 0), 60*time.Second, 57)
	group := overlay.HashString("rr")
	ss := c.Nodes[c.Addrs[0]].Instance("splitstream").Agent().(*splitstream.Protocol)
	if ss.Stripes() != 4 {
		t.Fatalf("stripes = %d", ss.Stripes())
	}
	for _, a := range c.Addrs[1:] {
		_ = c.Nodes[a].Join(group)
	}
	c.RunFor(60 * time.Second)
	// Watch which stripe trees carry data by checking delivery works even
	// though successive blocks ride different trees.
	var got int
	c.Nodes[c.Addrs[3]].RegisterHandlers(core.Handlers{
		Deliver: func([]byte, int32, overlay.Address) { got++ },
	})
	for i := 0; i < 8; i++ {
		_ = c.Nodes[c.Addrs[0]].Multicast(group, []byte("b"), 1, overlay.PriorityDefault)
		c.RunFor(500 * time.Millisecond)
	}
	c.RunFor(20 * time.Second)
	if got < 7 {
		t.Fatalf("round-robin striping lost blocks: %d/8", got)
	}
}
