// Package repo locates the repository root so that tests and tools can
// resolve bundled assets (specs/*.mac, example scenarios) regardless of the
// working directory they run from.
package repo

import (
	"os"
	"path/filepath"
	"runtime"
)

// Root returns the absolute repository root. It prefers walking up from the
// working directory looking for go.mod (correct under `go test ./...` and
// any checkout location), falling back to the compile-time source path.
func Root() string {
	if dir, err := os.Getwd(); err == nil {
		for d := dir; ; d = filepath.Dir(d) {
			if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
				return d
			}
			if filepath.Dir(d) == d {
				break
			}
		}
	}
	_, file, _, _ := runtime.Caller(0)
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// Path joins path elements onto the repository root.
func Path(elem ...string) string {
	return filepath.Join(append([]string{Root()}, elem...)...)
}

// Specs returns the sorted paths of the bundled .mac specifications.
func Specs() ([]string, error) {
	return filepath.Glob(Path("specs", "*.mac"))
}
