package repo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the process into dir for one test; the cleanup restores the
// original working directory so later tests see the normal layout.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(old) })
}

func TestRootFindsGoModFromNestedDir(t *testing.T) {
	want := Root()
	if _, err := os.Stat(filepath.Join(want, "go.mod")); err != nil {
		t.Fatalf("Root() = %q does not contain go.mod: %v", want, err)
	}
	// Resolution must be working-directory independent: descend into a
	// nested package directory and ask again.
	chdir(t, filepath.Join(want, "internal", "repo"))
	if got := Root(); got != want {
		t.Fatalf("Root() from nested dir = %q, want %q", got, want)
	}
}

func TestRootFallsBackWithoutMarker(t *testing.T) {
	// From a directory tree with no go.mod anywhere above, the walk finds
	// no marker and Root falls back to the compile-time source path — which
	// still identifies this repository.
	want := Root()
	tmp := t.TempDir()
	if _, err := os.Stat(filepath.Join(tmp, "go.mod")); err == nil {
		t.Skip("temp dir unexpectedly contains go.mod")
	}
	chdir(t, tmp)
	got := Root()
	if got != want {
		t.Fatalf("Root() without a marker = %q, want source-path fallback %q", got, want)
	}
}

func TestPathJoinsOntoRoot(t *testing.T) {
	got := Path("specs", "chord.mac")
	if !strings.HasSuffix(got, filepath.Join("specs", "chord.mac")) {
		t.Fatalf("Path() = %q", got)
	}
	if !filepath.IsAbs(got) {
		t.Fatalf("Path() = %q, want absolute", got)
	}
	if _, err := os.Stat(got); err != nil {
		t.Fatalf("Path() result does not exist: %v", err)
	}
}

func TestSpecsListsBundledSpecifications(t *testing.T) {
	specs, err := Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("Specs() returned no bundled .mac files")
	}
	for _, s := range specs {
		if filepath.Ext(s) != ".mac" {
			t.Fatalf("Specs() returned non-spec file %q", s)
		}
	}
}
