package scenario

import (
	"math/rand"
	"sort"
	"time"
)

// Churn models: a churn spec expands into concrete kill instants at
// compile time, so the whole kill/revive schedule is a pure function of the
// scenario and seed. Victims are assigned later by the compiler's
// chronological walk (see schedule.go), which knows who is still up.

// killTimes generates the kill instants of a churn spec within
// [start, end), using rng for every random draw.
func killTimes(c *Churn, start, end time.Duration, rng *rand.Rand) []time.Duration {
	var out []time.Duration
	switch c.Model {
	case "poisson":
		// Independent kills: exponential interarrivals at Rate per second.
		for t := start + expDuration(rng, c.Rate); t < end; t += expDuration(rng, c.Rate) {
			out = append(out, t)
		}
	case "wave":
		// Massacres: Kill simultaneous deaths every Period, first wave one
		// period into the phase.
		for t := start + c.Period.D(); t < end; t += c.Period.D() {
			for i := 0; i < c.Kill; i++ {
				out = append(out, t)
			}
		}
	}
	return out
}

// expDuration draws an exponential interarrival for a rate in events/sec.
func expDuration(rng *rand.Rand, ratePerSec float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / ratePerSec * float64(time.Second))
}

// population tracks, during compilation, which node indices are up so that
// churn victims are always chosen among live nodes. Node 0 (the bootstrap)
// is never a churn victim.
type population struct {
	up      []bool
	upCount int
	revives reviveQueue
}

func newPopulation(n int) *population {
	p := &population{up: make([]bool, n), upCount: n}
	for i := range p.up {
		p.up[i] = true
	}
	return p
}

// advance applies every revive due at or before t.
func (p *population) advance(t time.Duration) {
	for len(p.revives) > 0 && p.revives[0].at <= t {
		p.setUp(p.revives[0].node, true)
		p.revives = p.revives[1:]
	}
}

func (p *population) setUp(node int, up bool) {
	if p.up[node] == up {
		return
	}
	p.up[node] = up
	if up {
		p.upCount++
	} else {
		p.upCount--
	}
}

// scheduleRevive records that node comes back at t.
func (p *population) scheduleRevive(node int, t time.Duration) {
	p.revives = append(p.revives, revive{at: t, node: node})
	sort.SliceStable(p.revives, func(i, j int) bool { return p.revives[i].at < p.revives[j].at })
}

// pickVictim chooses a live non-bootstrap node uniformly, or -1 if churn
// has exhausted the population.
func (p *population) pickVictim(rng *rand.Rand) int {
	candidates := p.upCount
	if p.up[0] {
		candidates--
	}
	if candidates <= 0 {
		return -1
	}
	k := rng.Intn(candidates)
	for i := 1; i < len(p.up); i++ {
		if !p.up[i] {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1
}

type revive struct {
	at   time.Duration
	node int
}

type reviveQueue []revive
