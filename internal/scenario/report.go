package scenario

import (
	"fmt"
	"strings"
	"time"

	"macedon/internal/check"
	"macedon/internal/obs"
	"macedon/internal/simnet"
)

// SubStats returns a-b field-wise: the per-phase delta of network counters.
func SubStats(a, b simnet.Stats) simnet.Stats {
	return simnet.Stats{
		Sent:           a.Sent - b.Sent,
		Delivered:      a.Delivered - b.Delivered,
		QueueDrops:     a.QueueDrops - b.QueueDrops,
		RandomLoss:     a.RandomLoss - b.RandomLoss,
		DownDrops:      a.DownDrops - b.DownDrops,
		LinkDownDrops:  a.LinkDownDrops - b.LinkDownDrops,
		DegradeLoss:    a.DegradeLoss - b.DegradeLoss,
		PartitionDrops: a.PartitionDrops - b.PartitionDrops,
		NoRouteDrops:   a.NoRouteDrops - b.NoRouteDrops,
		Bytes:          a.Bytes - b.Bytes,
	}
}

// PhaseReport is the metric snapshot of one phase.
type PhaseReport struct {
	Name       string
	Start, End time.Duration
	// LiveNodes is the population still up when the phase ended.
	LiveNodes int
	// OpsSent counts workload operations issued during the phase (skipped
	// ops — dead sender — are excluded); OpsDelivered counts deliveries
	// attributed to them, by the end of the whole run. A multicast op
	// yields one delivery per receiving member.
	OpsSent, OpsDelivered int
	// OpsSkipped counts workload operations whose sender was down.
	OpsSkipped int
	// OpsForwarded counts forward() upcalls attributed to the phase's
	// workload operations: the intermediate overlay hops their payloads
	// took. MeanHops is the derived per-delivery hop count,
	// (forwards + deliveries) / deliveries — protocol-level numbers the
	// live-vs-sim conformance harness compares across substrates
	// (docs/deploy.md). Neither appears in the legacy Format output, so
	// golden traces predating them still verify.
	OpsForwarded int
	MeanHops     float64
	// MeanLatency averages delivery latency over the phase's delivered
	// operations (0 when none).
	MeanLatency time.Duration
	// CtlMsgs and CtlBytes are the protocol messages and bytes every live
	// node had sent by the end of the phase, minus the settle baseline:
	// cumulative control+data overhead at protocol level. Zero when the
	// executing engine does not sample node counters.
	CtlMsgs, CtlBytes uint64
	// Net is the network counter delta across the phase.
	Net simnet.Stats
	// Obs holds the phase's observability histograms when the run was
	// executed with the obs plane enabled; nil otherwise, and nil keeps
	// every legacy output byte-identical.
	Obs *PhaseObs
	// Checks holds the phase's invariant-checker verdict when the scenario
	// opted into the correctness plane; nil otherwise (same byte-identity
	// contract as Obs).
	Checks *check.PhaseChecks
}

// PhaseObs is the per-phase slice of the observability plane: distribution
// snapshots of the op latency and hop-count histograms attributed to the
// phase's workload, plus the phase's engine time series.
type PhaseObs struct {
	Latency obs.HistSnapshot
	Hops    obs.HistSnapshot
	// Series holds the phase's engine time series: points at phase-relative
	// virtual-time offsets, sampled at phase boundaries and any configured
	// intra-phase interval. Empty (no points) when the executor records no
	// series — live runs older than the push path, for instance.
	Series obs.SeriesSnapshot
}

// ObsReport is the run-level observability output: the final registry
// exposition, the sampled event log, and the merged per-hop span records.
type ObsReport struct {
	// Exposition is the full Prometheus text-format registry dump at run
	// end.
	Exposition string
	// Events are the sampled structured event-log lines.
	Events []string
	// Spans are the merged operation-trace span lines, in canonical order
	// (byte-identical across shard counts).
	Spans []string
}

// PhaseTotals is the substrate-independent accounting a schedule executor
// gathers for one phase: per-phase workload tallies plus cumulative
// counter snapshots taken when the phase ended. Both execution backends —
// the virtual-time scenario engine and the live deployment controller —
// reduce their bookkeeping to rows of this shape and assemble the report
// with AssemblePhases, so a sim report and a live report of the same
// scenario are comparable field by field.
type PhaseTotals struct {
	// Live is the population still up at phase end.
	Live int
	// Sent/Skipped/Delivered/Forwards and LatSum are per-phase workload
	// tallies (deliveries and forwards attributed to the phase whose
	// workload issued the operation).
	Sent, Skipped, Delivered, Forwards int
	LatSum                             time.Duration
	// Net is the cumulative network counter snapshot at phase end.
	Net simnet.Stats
	// CtlMsgs/CtlBytes are cumulative per-node protocol counters summed
	// over live nodes at phase end.
	CtlMsgs, CtlBytes uint64
	// Checks is the phase's invariant verdict; nil when checks are off.
	Checks *check.PhaseChecks
}

// satSub is saturating subtraction: counter sums taken over the live
// population can dip below the settle baseline when churn removes nodes
// (a revived node's counters restart at zero on both backends), and a
// clamped zero reads better than a wrapped uint64.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// AssemblePhases turns per-phase totals into the report's phase entries.
// base holds the cumulative snapshots taken when the settle period ended
// (the zero point of every cumulative column).
func AssemblePhases(phases []CompiledPhase, rows []PhaseTotals, base PhaseTotals) []PhaseReport {
	out := make([]PhaseReport, 0, len(phases))
	prev := base
	for pi, cp := range phases {
		row := rows[pi]
		pr := PhaseReport{
			Name:         cp.Name,
			Start:        cp.Start,
			End:          cp.End,
			LiveNodes:    row.Live,
			OpsSent:      row.Sent,
			OpsSkipped:   row.Skipped,
			OpsDelivered: row.Delivered,
			OpsForwarded: row.Forwards,
			Net:          SubStats(row.Net, prev.Net),
			CtlMsgs:      satSub(row.CtlMsgs, base.CtlMsgs),
			CtlBytes:     satSub(row.CtlBytes, base.CtlBytes),
			Checks:       row.Checks,
		}
		if pr.OpsDelivered > 0 {
			pr.MeanLatency = row.LatSum / time.Duration(pr.OpsDelivered)
			pr.MeanHops = float64(row.Forwards+row.Delivered) / float64(row.Delivered)
		}
		prev = row
		out = append(out, pr)
	}
	return out
}

// Report is the structured result of an executed scenario.
type Report struct {
	Scenario string
	Protocol string
	Seed     int64
	Nodes    int
	// Settle/End/Total are the resolved timeline boundaries.
	Settle, End, Total time.Duration
	// EventsRun counts schedule operations executed.
	EventsRun int
	Phases    []PhaseReport
	// Final is the network counter total over the whole run.
	Final simnet.Stats
	// Trace is the executed event log, one line per operation, identical
	// across runs of the same scenario and seed.
	Trace []string
	// Obs is the run's observability output; nil unless the run executed
	// with the obs plane enabled.
	Obs *ObsReport
}

// CheckViolations totals the invariant violations across every phase (0
// when checks were off or clean).
func (r *Report) CheckViolations() int {
	total := 0
	for _, p := range r.Phases {
		if p.Checks != nil {
			total += p.Checks.Total
		}
	}
	return total
}

// ChecksEnabled reports whether any phase carries a checks verdict.
func (r *Report) ChecksEnabled() bool {
	for _, p := range r.Phases {
		if p.Checks != nil {
			return true
		}
	}
	return false
}

// TraceText joins the event trace into one newline-terminated string.
func (r *Report) TraceText() string {
	if len(r.Trace) == 0 {
		return ""
	}
	return strings.Join(r.Trace, "\n") + "\n"
}

// Format renders the report deterministically. The output is pinned by the
// golden-trace corpus; anything new goes behind FormatOpts' verbose flag.
func (r *Report) Format(w func(format string, args ...any)) {
	r.FormatOpts(w, false)
}

// FormatOpts renders the report; verbose additionally prints the
// per-phase columns the legacy format omits (forwards, mean hops, control
// traffic) and the obs histogram snapshots when present.
func (r *Report) FormatOpts(w func(format string, args ...any), verbose bool) {
	w("scenario %q: protocol=%s nodes=%d seed=%d\n", r.Scenario, r.Protocol, r.Nodes, r.Seed)
	w("timeline: settle=%s end=%s total=%s events=%d\n", r.Settle, r.End, r.Total, r.EventsRun)
	for i, p := range r.Phases {
		w("phase %d %-14q [%s..%s] live=%d", i, p.Name, p.Start, p.End, p.LiveNodes)
		if p.OpsSent > 0 || p.OpsSkipped > 0 {
			w(" ops=%d delivered=%d", p.OpsSent, p.OpsDelivered)
			if p.OpsSkipped > 0 {
				w(" skipped=%d", p.OpsSkipped)
			}
			if p.MeanLatency > 0 {
				w(" mean_latency=%.3fms", float64(p.MeanLatency.Microseconds())/1000)
			}
			if verbose {
				w(" forwarded=%d mean_hops=%.2f", p.OpsForwarded, p.MeanHops)
			}
		}
		w("\n")
		w("  net: sent=%d delivered=%d qdrop=%d loss=%d down=%d linkdown=%d degrade=%d partition=%d noroute=%d\n",
			p.Net.Sent, p.Net.Delivered, p.Net.QueueDrops, p.Net.RandomLoss, p.Net.DownDrops,
			p.Net.LinkDownDrops, p.Net.DegradeLoss, p.Net.PartitionDrops, p.Net.NoRouteDrops)
		if verbose {
			w("  ctl: msgs=%d bytes=%d\n", p.CtlMsgs, p.CtlBytes)
			if p.Obs != nil {
				w("  obs latency: %s\n", p.Obs.Latency)
				w("  obs hops: %s\n", p.Obs.Hops)
				for _, line := range p.Obs.Series.Lines() {
					w("  obs series: %s\n", line)
				}
			}
		}
		// The checks section only exists for scenarios that opted in, so
		// printing it unconditionally keeps legacy goldens byte-identical.
		if c := p.Checks; c != nil {
			w("  checks: %s nodes=%d violations=%d\n", strings.Join(c.Checkers, ","), c.Nodes, c.Total)
			for _, vi := range c.Violations {
				w("    %s\n", vi)
			}
			if c.Total > len(c.Violations) {
				w("    ... %d more\n", c.Total-len(c.Violations))
			}
		}
	}
	w("total: sent=%d delivered=%d qdrop=%d loss=%d down=%d linkdown=%d degrade=%d partition=%d noroute=%d\n",
		r.Final.Sent, r.Final.Delivered, r.Final.QueueDrops, r.Final.RandomLoss, r.Final.DownDrops,
		r.Final.LinkDownDrops, r.Final.DegradeLoss, r.Final.PartitionDrops, r.Final.NoRouteDrops)
}

// String renders the report to a string (for determinism comparisons).
func (r *Report) String() string {
	var b strings.Builder
	r.Format(func(format string, args ...any) { fmt.Fprintf(&b, format, args...) })
	return b.String()
}

// VerboseString renders the report with the verbose columns.
func (r *Report) VerboseString() string {
	var b strings.Builder
	r.FormatOpts(func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }, true)
	return b.String()
}

// ObsText renders the run's observability section (exposition, sampled
// events, span records) as one deterministic block, or "" when the obs
// plane was off.
func (r *Report) ObsText() string {
	if r.Obs == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("--- obs exposition ---\n")
	b.WriteString(r.Obs.Exposition)
	if len(r.Obs.Events) > 0 {
		b.WriteString("--- obs events ---\n")
		for _, e := range r.Obs.Events {
			b.WriteString(e)
			b.WriteByte('\n')
		}
	}
	if len(r.Obs.Spans) > 0 {
		b.WriteString("--- obs spans ---\n")
		for _, s := range r.Obs.Spans {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	wroteHeader := false
	for pi, p := range r.Phases {
		if p.Obs == nil || len(p.Obs.Series.Points) == 0 {
			continue
		}
		if !wroteHeader {
			b.WriteString("--- obs series ---\n")
			wroteHeader = true
		}
		fmt.Fprintf(&b, "phase %d %q:\n", pi, p.Name)
		for _, line := range p.Obs.Series.Lines() {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
