package scenario

import (
	"fmt"
	"strings"
	"time"

	"macedon/internal/simnet"
)

// SubStats returns a-b field-wise: the per-phase delta of network counters.
func SubStats(a, b simnet.Stats) simnet.Stats {
	return simnet.Stats{
		Sent:           a.Sent - b.Sent,
		Delivered:      a.Delivered - b.Delivered,
		QueueDrops:     a.QueueDrops - b.QueueDrops,
		RandomLoss:     a.RandomLoss - b.RandomLoss,
		DownDrops:      a.DownDrops - b.DownDrops,
		LinkDownDrops:  a.LinkDownDrops - b.LinkDownDrops,
		DegradeLoss:    a.DegradeLoss - b.DegradeLoss,
		PartitionDrops: a.PartitionDrops - b.PartitionDrops,
		NoRouteDrops:   a.NoRouteDrops - b.NoRouteDrops,
		Bytes:          a.Bytes - b.Bytes,
	}
}

// PhaseReport is the metric snapshot of one phase.
type PhaseReport struct {
	Name       string
	Start, End time.Duration
	// LiveNodes is the population still up when the phase ended.
	LiveNodes int
	// OpsSent counts workload operations issued during the phase (skipped
	// ops — dead sender — are excluded); OpsDelivered counts deliveries
	// attributed to them, by the end of the whole run. A multicast op
	// yields one delivery per receiving member.
	OpsSent, OpsDelivered int
	// OpsSkipped counts workload operations whose sender was down.
	OpsSkipped int
	// MeanLatency averages delivery latency over the phase's delivered
	// operations (0 when none).
	MeanLatency time.Duration
	// Net is the network counter delta across the phase.
	Net simnet.Stats
}

// Report is the structured result of an executed scenario.
type Report struct {
	Scenario string
	Protocol string
	Seed     int64
	Nodes    int
	// Settle/End/Total are the resolved timeline boundaries.
	Settle, End, Total time.Duration
	// EventsRun counts schedule operations executed.
	EventsRun int
	Phases    []PhaseReport
	// Final is the network counter total over the whole run.
	Final simnet.Stats
	// Trace is the executed event log, one line per operation, identical
	// across runs of the same scenario and seed.
	Trace []string
}

// TraceText joins the event trace into one newline-terminated string.
func (r *Report) TraceText() string {
	if len(r.Trace) == 0 {
		return ""
	}
	return strings.Join(r.Trace, "\n") + "\n"
}

// Format renders the report deterministically.
func (r *Report) Format(w func(format string, args ...any)) {
	w("scenario %q: protocol=%s nodes=%d seed=%d\n", r.Scenario, r.Protocol, r.Nodes, r.Seed)
	w("timeline: settle=%s end=%s total=%s events=%d\n", r.Settle, r.End, r.Total, r.EventsRun)
	for i, p := range r.Phases {
		w("phase %d %-14q [%s..%s] live=%d", i, p.Name, p.Start, p.End, p.LiveNodes)
		if p.OpsSent > 0 || p.OpsSkipped > 0 {
			w(" ops=%d delivered=%d", p.OpsSent, p.OpsDelivered)
			if p.OpsSkipped > 0 {
				w(" skipped=%d", p.OpsSkipped)
			}
			if p.MeanLatency > 0 {
				w(" mean_latency=%.3fms", float64(p.MeanLatency.Microseconds())/1000)
			}
		}
		w("\n")
		w("  net: sent=%d delivered=%d qdrop=%d loss=%d down=%d linkdown=%d degrade=%d partition=%d noroute=%d\n",
			p.Net.Sent, p.Net.Delivered, p.Net.QueueDrops, p.Net.RandomLoss, p.Net.DownDrops,
			p.Net.LinkDownDrops, p.Net.DegradeLoss, p.Net.PartitionDrops, p.Net.NoRouteDrops)
	}
	w("total: sent=%d delivered=%d qdrop=%d loss=%d down=%d linkdown=%d degrade=%d partition=%d noroute=%d\n",
		r.Final.Sent, r.Final.Delivered, r.Final.QueueDrops, r.Final.RandomLoss, r.Final.DownDrops,
		r.Final.LinkDownDrops, r.Final.DegradeLoss, r.Final.PartitionDrops, r.Final.NoRouteDrops)
}

// String renders the report to a string (for determinism comparisons).
func (r *Report) String() string {
	var b strings.Builder
	r.Format(func(format string, args ...any) { fmt.Fprintf(&b, format, args...) })
	return b.String()
}
