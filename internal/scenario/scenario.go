// Package scenario is the declarative experiment engine: a scenario
// describes an entire overlay evaluation — how the population joins, how it
// churns, which network events strike, and what workload runs in each
// phase — and compiles into a deterministic virtual-time event schedule.
// The same scenario and seed always produce the identical event trace and
// metric report, which turns "as many scenarios as you can imagine" into
// reproducible regression tests instead of hand-rolled driver code.
//
// Scenarios are built either with Go literals or loaded from JSON (see
// docs/scenarios.md); internal/harness.RunScenario executes the compiled
// schedule against an emulated cluster.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"macedon/internal/check"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms", "1m30s") in JSON.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"10s\"")
	}
	*d = Duration(ns)
	return nil
}

// Scenario is a complete declarative experiment description.
type Scenario struct {
	// Name labels the scenario in reports and traces.
	Name string `json:"name"`
	// Seed drives every random choice: joins, churn, events, workload.
	Seed int64 `json:"seed"`
	// Nodes is the overlay population size.
	Nodes int `json:"nodes"`
	// Routers sizes the generated INET topology (0 = default).
	Routers int `json:"routers,omitempty"`
	// Protocol selects the stack: chord, pastry, randtree, scribe
	// (pastry+scribe), or nice.
	Protocol string `json:"protocol"`
	// Join describes how the population enters the overlay.
	Join JoinSpec `json:"join"`
	// Settle is the setup period before the first phase: joins happen
	// inside it and protocols converge. 0 = join span + 60 s.
	Settle Duration `json:"settle,omitempty"`
	// Drain extends the run after the last phase so in-flight work can
	// finish before the final snapshot. 0 = 10 s.
	Drain Duration `json:"drain,omitempty"`
	// Phases run back-to-back after Settle.
	Phases []Phase `json:"phases"`

	// HeartbeatAfter/FailAfter tune the engine failure detector (§3.1);
	// zero keeps the node defaults.
	HeartbeatAfter Duration `json:"heartbeat_after,omitempty"`
	FailAfter      Duration `json:"fail_after,omitempty"`

	// Checks opts the run into the correctness plane (internal/check):
	// invariant checkers driven at every phase boundary by both backends.
	// Nil keeps every legacy output byte-identical.
	Checks *ChecksSpec `json:"checks,omitempty"`
}

// ChecksSpec selects the runtime invariant checkers of a scenario.
type ChecksSpec struct {
	// Names lists checkers: "ring", "leafset", "tree", "staleness", or
	// "auto" (the set fitting the protocol). docs/testing.md documents
	// each.
	Names []string `json:"names"`
	// Grace is the stability window: structural checks only judge nodes
	// whose liveness and connectivity were unchanged this long (default
	// 30s).
	Grace Duration `json:"grace,omitempty"`
	// StaleBound caps how long dead nodes may linger in failure-detected
	// route state (default 2×grace).
	StaleBound Duration `json:"stale_bound,omitempty"`
}

// JoinSpec describes the join process.
type JoinSpec struct {
	// Process is "immediate" (default), "staggered", or "poisson".
	Process string `json:"process,omitempty"`
	// Window spreads staggered joins uniformly across this duration.
	Window Duration `json:"window,omitempty"`
	// Rate is the Poisson arrival rate in joins per second.
	Rate float64 `json:"rate,omitempty"`
}

// Phase is one experiment stage: a duration with optional churn, network
// events, and workload, snapshotted into the report when it ends.
type Phase struct {
	Name     string    `json:"name"`
	Duration Duration  `json:"duration"`
	Churn    *Churn    `json:"churn,omitempty"`
	Events   []Event   `json:"events,omitempty"`
	Workload *Workload `json:"workload,omitempty"`
	// ForkPoint marks the end of this phase as the checkpoint/fork instant
	// for sweeps (docs/sweeps.md): variants share the simulation up to here
	// and diverge afterwards. Without a marker, sweeps fork at the settle
	// boundary. At most one phase may carry it. Plain `macedon scenario`
	// runs ignore it.
	ForkPoint bool `json:"fork_point,omitempty"`
}

// Churn is a node kill/revive process running for a phase.
type Churn struct {
	// Model is "poisson" (independent kills at Rate per second) or "wave"
	// (a massacre of Kill nodes every Period).
	Model string `json:"model"`
	// Rate is the Poisson kill rate in kills per second.
	Rate float64 `json:"rate,omitempty"`
	// Kill is the wave size.
	Kill int `json:"kill,omitempty"`
	// Period is the wave interval.
	Period Duration `json:"period,omitempty"`
	// Downtime revives each victim this long after its kill; 0 means the
	// kill is permanent.
	Downtime Duration `json:"downtime,omitempty"`
}

// Event kinds.
const (
	EvNodeDown  = "node_down" // host unreachable (node keeps running)
	EvNodeUp    = "node_up"   // host reachable again
	EvKill      = "kill"      // process death (node stops; cold rejoin on revive)
	EvRevive    = "revive"    // respawn a killed node
	EvPartition = "partition" // split the population in two
	EvHeal      = "heal"      // heal the partition
	EvDegrade   = "degrade"   // worsen a node's access pipe
	EvRestore   = "restore"   // restore a node's access pipe
	EvLinkDown  = "link_down" // fail a node's access pipe
	EvLinkUp    = "link_up"   // restore a failed access pipe
)

// Event is one scripted network event inside a phase.
type Event struct {
	// At is the offset from the phase start.
	At Duration `json:"at"`
	// Kind is one of the Ev* constants.
	Kind string `json:"kind"`
	// Node is the target node index (node events, degrade, link_down).
	Node int `json:"node,omitempty"`
	// Fraction sizes side A of a partition (0 < f < 1). Side A is the
	// first ⌈f·Nodes⌉ addresses, so the cut is deterministic.
	Fraction float64 `json:"fraction,omitempty"`
	// LatencyFactor multiplies the access-pipe latency (degrade).
	LatencyFactor float64 `json:"latency_factor,omitempty"`
	// Loss adds per-hop loss probability on the access pipe (degrade).
	Loss float64 `json:"loss,omitempty"`
}

// Workload kinds.
const (
	WlLookups   = "lookups"   // DHT lookup storm: random keys from random nodes
	WlMulticast = "multicast" // node 0 streams to a group every member joins
)

// Workload is the application traffic of a phase.
type Workload struct {
	// Kind is "lookups" or "multicast".
	Kind string `json:"kind"`
	// Rate is operations (or stream packets) per second.
	Rate float64 `json:"rate"`
	// Size is the payload size in bytes (default 64, minimum 8).
	Size int `json:"size,omitempty"`
	// Group names the multicast session (default the scenario name).
	Group string `json:"group,omitempty"`
}

// Load reads and validates a JSON scenario file.
func Load(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// Parse decodes and validates a JSON scenario.
func Parse(b []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the description before compilation.
func (s *Scenario) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("scenario %q: need at least 2 nodes, have %d", s.Name, s.Nodes)
	}
	switch s.Join.Process {
	case "", "immediate":
	case "staggered":
		if s.Join.Window <= 0 {
			return fmt.Errorf("scenario %q: staggered join needs a window", s.Name)
		}
	case "poisson":
		if s.Join.Rate <= 0 {
			return fmt.Errorf("scenario %q: poisson join needs a rate", s.Name)
		}
	default:
		return fmt.Errorf("scenario %q: unknown join process %q", s.Name, s.Join.Process)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", s.Name)
	}
	if c := s.Checks; c != nil {
		if len(c.Names) == 0 {
			return fmt.Errorf("scenario %q: checks needs at least one checker name (or drop the field)", s.Name)
		}
		for _, n := range c.Names {
			if !check.Known(n) {
				return fmt.Errorf("scenario %q: unknown checker %q", s.Name, n)
			}
		}
		if c.Grace < 0 || c.StaleBound < 0 {
			return fmt.Errorf("scenario %q: checks grace/stale_bound must be positive", s.Name)
		}
	}
	forks := 0
	for _, p := range s.Phases {
		if p.ForkPoint {
			forks++
		}
	}
	if forks > 1 {
		return fmt.Errorf("scenario %q: at most one phase may set fork_point, have %d", s.Name, forks)
	}
	for i, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("scenario %q: phase %d (%s) has no duration", s.Name, i, p.Name)
		}
		if c := p.Churn; c != nil {
			switch c.Model {
			case "poisson":
				if c.Rate <= 0 {
					return fmt.Errorf("scenario %q: phase %s: poisson churn needs a rate", s.Name, p.Name)
				}
			case "wave":
				if c.Kill <= 0 || c.Period <= 0 {
					return fmt.Errorf("scenario %q: phase %s: wave churn needs kill and period", s.Name, p.Name)
				}
			default:
				return fmt.Errorf("scenario %q: phase %s: unknown churn model %q", s.Name, p.Name, c.Model)
			}
		}
		for _, e := range p.Events {
			switch e.Kind {
			case EvNodeDown, EvNodeUp, EvKill, EvRevive, EvDegrade, EvRestore, EvLinkDown, EvLinkUp:
				if e.Node < 0 || e.Node >= s.Nodes {
					return fmt.Errorf("scenario %q: phase %s: event %s targets node %d of %d", s.Name, p.Name, e.Kind, e.Node, s.Nodes)
				}
			case EvPartition:
				if e.Fraction <= 0 || e.Fraction >= 1 {
					return fmt.Errorf("scenario %q: phase %s: partition fraction must be in (0,1)", s.Name, p.Name)
				}
			case EvHeal:
			default:
				return fmt.Errorf("scenario %q: phase %s: unknown event kind %q", s.Name, p.Name, e.Kind)
			}
			if e.Kind == EvDegrade {
				if e.LatencyFactor != 0 && e.LatencyFactor < 1 {
					return fmt.Errorf("scenario %q: phase %s: degrade latency_factor must be >= 1 (or 0 for unchanged)", s.Name, p.Name)
				}
				if e.Loss < 0 || e.Loss >= 1 {
					return fmt.Errorf("scenario %q: phase %s: degrade loss must be in [0,1)", s.Name, p.Name)
				}
			}
			if e.At < 0 || e.At.D() >= p.Duration.D() {
				return fmt.Errorf("scenario %q: phase %s: event at %v outside the phase", s.Name, p.Name, e.At.D())
			}
		}
		if w := p.Workload; w != nil {
			switch w.Kind {
			case WlLookups, WlMulticast:
			default:
				return fmt.Errorf("scenario %q: phase %s: unknown workload %q", s.Name, p.Name, w.Kind)
			}
			if w.Rate <= 0 {
				return fmt.Errorf("scenario %q: phase %s: workload needs a rate", s.Name, p.Name)
			}
		}
	}
	return nil
}

// CheckConfig resolves the scenario's checks spec into the correctness
// plane's configuration, or nil when checks are off.
func (s *Scenario) CheckConfig() *check.Config {
	if s.Checks == nil {
		return nil
	}
	return &check.Config{
		Names:      s.Checks.Names,
		Protocol:   s.Protocol,
		Grace:      s.Checks.Grace.D(),
		StaleBound: s.Checks.StaleBound.D(),
	}
}

// ForkPhase returns the index of the phase whose end is the checkpoint/fork
// instant, or -1 when sweeps fork at the settle boundary (no marker).
func (s *Scenario) ForkPhase() int {
	for i, p := range s.Phases {
		if p.ForkPoint {
			return i
		}
	}
	return -1
}

// NeedsGroup reports whether any phase runs a multicast workload (the
// engine then creates a group and has every member join during setup).
func (s *Scenario) NeedsGroup() bool {
	for _, p := range s.Phases {
		if p.Workload != nil && p.Workload.Kind == WlMulticast {
			return true
		}
	}
	return false
}

// GroupName returns the multicast session name.
func (s *Scenario) GroupName() string {
	for _, p := range s.Phases {
		if p.Workload != nil && p.Workload.Kind == WlMulticast && p.Workload.Group != "" {
			return p.Workload.Group
		}
	}
	if s.Name != "" {
		return s.Name
	}
	return "scenario-session"
}
