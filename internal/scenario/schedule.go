package scenario

import (
	"math/rand"
	"sort"
	"time"
)

// OpKind enumerates the concrete operations a compiled schedule contains.
type OpKind int

// Operation kinds, in rough lifecycle order.
const (
	OpSpawn     OpKind = iota // start node Node (joins the overlay)
	OpKill                    // stop node Node and drop its traffic
	OpRevive                  // respawn node Node (cold rejoin)
	OpNodeDown                // make node Node unreachable (process keeps running)
	OpNodeUp                  // make node Node reachable again
	OpPartition               // split: first SideA addresses vs the rest
	OpHeal                    // heal the partition
	OpDegrade                 // degrade node Node's access pipe
	OpRestore                 // restore node Node's access pipe
	OpLinkDown                // fail node Node's access pipe
	OpLinkUp                  // restore node Node's failed access pipe
	OpLookup                  // node Node routes key Key, op id ID
	OpMulticast               // node Node multicasts packet ID to the group
)

// String names the op kind for traces.
func (k OpKind) String() string {
	switch k {
	case OpSpawn:
		return "spawn"
	case OpKill:
		return "kill"
	case OpRevive:
		return "revive"
	case OpNodeDown:
		return "node_down"
	case OpNodeUp:
		return "node_up"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpDegrade:
		return "degrade"
	case OpRestore:
		return "restore"
	case OpLinkDown:
		return "link_down"
	case OpLinkUp:
		return "link_up"
	case OpLookup:
		return "lookup"
	case OpMulticast:
		return "multicast"
	}
	return "?"
}

// Op is one scheduled operation at an absolute virtual-time offset.
type Op struct {
	At   time.Duration
	Kind OpKind
	// Node is the target node index (spawn/kill/revive/degrade/lookup...).
	Node int
	// ID tags workload operations; it rides the payload type field so
	// deliveries can be matched to sends.
	ID int
	// Key is the lookup target.
	Key uint32
	// SideA is the partition's side-A size.
	SideA int
	// LatencyFactor and Loss parameterize degradation.
	LatencyFactor, Loss float64
	// Size is the workload payload size.
	Size int
	// Phase is the phase the op fires in (-1 = setup).
	Phase int
}

// CompiledPhase is a phase with resolved absolute boundaries.
type CompiledPhase struct {
	Name       string
	Start, End time.Duration
}

// Schedule is the deterministic expansion of a scenario: every operation
// with its absolute firing time, sorted by (phase, time, emission order).
type Schedule struct {
	Scenario *Scenario
	Ops      []Op
	Phases   []CompiledPhase
	// JoinDone is when the last setup spawn fires.
	JoinDone time.Duration
	// Settle is the resolved setup length (phase 0 starts here).
	Settle time.Duration
	// End is the last phase boundary; Total adds the drain window.
	End, Total time.Duration
	// Lookups and Multicasts count the workload ops per kind.
	Lookups, Multicasts int
}

// Compile expands a scenario into its schedule. Compilation consumes the
// scenario's seed through a private PRNG in a fixed order (joins, churn
// instants, victim assignment, workloads), so the same scenario and seed
// always yield the identical op list.
func Compile(s *Scenario) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	sched := &Schedule{Scenario: s}

	// 1. Joins. Node 0 is the bootstrap and always spawns at t=0.
	sched.Ops = append(sched.Ops, Op{At: 0, Kind: OpSpawn, Node: 0, Phase: -1})
	process := s.Join.Process
	if (process == "" || process == "immediate") && s.Join.Window > 0 {
		// A warm-up window turns the t=0 spawn herd into a uniform spread:
		// "immediate" with a window is the staggered process by another
		// name, so herd-heavy scenarios can opt out of the single-instant
		// join without restating their join spec.
		process = "staggered"
	}
	switch process {
	case "", "immediate":
		for i := 1; i < s.Nodes; i++ {
			sched.Ops = append(sched.Ops, Op{At: 0, Kind: OpSpawn, Node: i, Phase: -1})
		}
	case "staggered":
		for i := 1; i < s.Nodes; i++ {
			at := time.Duration(int64(s.Join.Window.D()) * int64(i) / int64(s.Nodes))
			sched.Ops = append(sched.Ops, Op{At: at, Kind: OpSpawn, Node: i, Phase: -1})
			if at > sched.JoinDone {
				sched.JoinDone = at
			}
		}
	case "poisson":
		at := time.Duration(0)
		for i := 1; i < s.Nodes; i++ {
			at += expDuration(rng, s.Join.Rate)
			sched.Ops = append(sched.Ops, Op{At: at, Kind: OpSpawn, Node: i, Phase: -1})
		}
		sched.JoinDone = at
	}

	// 2. Phase boundaries. The settle period absorbs the join process.
	sched.Settle = s.Settle.D()
	if sched.Settle == 0 {
		sched.Settle = sched.JoinDone + 60*time.Second
	}
	if sched.Settle < sched.JoinDone {
		sched.Settle = sched.JoinDone
	}
	start := sched.Settle
	for _, p := range s.Phases {
		sched.Phases = append(sched.Phases, CompiledPhase{Name: p.Name, Start: start, End: start + p.Duration.D()})
		start += p.Duration.D()
	}
	sched.End = start
	drain := s.Drain.D()
	if drain == 0 {
		drain = 10 * time.Second
	}
	sched.Total = sched.End + drain

	// 3. Churn instants, phase by phase (fixed rng order), then victims
	// assigned chronologically against the live population.
	type slot struct {
		at    time.Duration
		phase int
		churn *Churn
	}
	var slots []slot
	for pi, p := range s.Phases {
		if p.Churn == nil {
			continue
		}
		cp := sched.Phases[pi]
		for _, t := range killTimes(p.Churn, cp.Start, cp.End, rng) {
			slots = append(slots, slot{at: t, phase: pi, churn: p.Churn})
		}
	}
	sort.SliceStable(slots, func(i, j int) bool { return slots[i].at < slots[j].at })
	pop := newPopulation(s.Nodes)
	for _, sl := range slots {
		pop.advance(sl.at)
		victim := pop.pickVictim(rng)
		if victim < 0 {
			continue // population exhausted; skip deterministically
		}
		pop.setUp(victim, false)
		sched.Ops = append(sched.Ops, Op{At: sl.at, Kind: OpKill, Node: victim, Phase: sl.phase})
		if dt := sl.churn.Downtime.D(); dt > 0 {
			rt := sl.at + dt
			if rt < sched.Total {
				pop.scheduleRevive(victim, rt)
				sched.Ops = append(sched.Ops, Op{At: rt, Kind: OpRevive, Node: victim, Phase: phaseAt(sched.Phases, rt)})
			}
		}
	}

	// 4. Explicit events.
	for pi, p := range s.Phases {
		cp := sched.Phases[pi]
		for _, e := range p.Events {
			op := Op{At: cp.Start + e.At.D(), Phase: pi, Node: e.Node}
			switch e.Kind {
			case EvNodeDown:
				op.Kind = OpNodeDown
			case EvNodeUp:
				op.Kind = OpNodeUp
			case EvKill:
				op.Kind = OpKill
			case EvRevive:
				op.Kind = OpRevive
			case EvPartition:
				op.Kind = OpPartition
				op.SideA = int(e.Fraction*float64(s.Nodes) + 0.5)
				if op.SideA < 1 {
					op.SideA = 1
				}
				if op.SideA >= s.Nodes {
					op.SideA = s.Nodes - 1
				}
			case EvHeal:
				op.Kind = OpHeal
			case EvDegrade:
				op.Kind = OpDegrade
				op.LatencyFactor = e.LatencyFactor
				op.Loss = e.Loss
			case EvRestore:
				op.Kind = OpRestore
			case EvLinkDown:
				op.Kind = OpLinkDown
			case EvLinkUp:
				op.Kind = OpLinkUp
			}
			sched.Ops = append(sched.Ops, op)
		}
	}

	// 5. Workloads.
	opID := 0
	for pi, p := range s.Phases {
		if p.Workload == nil {
			continue
		}
		w := p.Workload
		cp := sched.Phases[pi]
		size := w.Size
		if size <= 0 {
			size = 64
		}
		if size < 8 {
			size = 8 // room for the send timestamp
		}
		for t := cp.Start + expDuration(rng, w.Rate); t < cp.End; t += expDuration(rng, w.Rate) {
			op := Op{At: t, Phase: pi, ID: opID, Size: size}
			switch w.Kind {
			case WlLookups:
				op.Kind = OpLookup
				op.Node = rng.Intn(s.Nodes)
				op.Key = rng.Uint32()
				sched.Lookups++
			case WlMulticast:
				op.Kind = OpMulticast
				op.Node = 0
				sched.Multicasts++
			}
			sched.Ops = append(sched.Ops, op)
			opID++
		}
	}

	// Sort by (phase, time, emission order): the engine schedules in this
	// order, so simultaneous ops fire in a defined sequence and each
	// phase's snapshot sits exactly between its ops and the next phase's.
	sort.SliceStable(sched.Ops, func(i, j int) bool {
		if sched.Ops[i].Phase != sched.Ops[j].Phase {
			return sched.Ops[i].Phase < sched.Ops[j].Phase
		}
		return sched.Ops[i].At < sched.Ops[j].At
	})
	return sched, nil
}

// phaseAt maps an absolute time onto its phase index (clamped to the last).
func phaseAt(phases []CompiledPhase, t time.Duration) int {
	for i, p := range phases {
		if t < p.End {
			return i
		}
	}
	return len(phases) - 1
}
