package scenario

import (
	"reflect"
	"testing"
	"time"
)

func churnScenario(model string) *Scenario {
	c := &Churn{Model: model}
	switch model {
	case "poisson":
		c.Rate = 0.5
		c.Downtime = Duration(20 * time.Second)
	case "wave":
		c.Kill = 3
		c.Period = Duration(15 * time.Second)
	}
	return &Scenario{
		Name:     "churn-test",
		Seed:     42,
		Nodes:    20,
		Protocol: "chord",
		Join:     JoinSpec{Process: "staggered", Window: Duration(10 * time.Second)},
		Settle:   Duration(30 * time.Second),
		Phases: []Phase{
			{Name: "quiet", Duration: Duration(20 * time.Second)},
			{Name: "churn", Duration: Duration(60 * time.Second), Churn: c},
		},
	}
}

// TestPoissonChurnSchedule checks the kill process lands inside its phase,
// never touches the bootstrap, and pairs every kill with a revive one
// downtime later.
func TestPoissonChurnSchedule(t *testing.T) {
	s := churnScenario("poisson")
	sched, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	phase := sched.Phases[1]
	kills := map[int][]time.Duration{}
	revives := map[int][]time.Duration{}
	total := 0
	for _, op := range sched.Ops {
		switch op.Kind {
		case OpKill:
			if op.At < phase.Start || op.At >= phase.End {
				t.Errorf("kill at %v outside churn phase [%v, %v)", op.At, phase.Start, phase.End)
			}
			if op.Node == 0 {
				t.Error("churn killed the bootstrap node")
			}
			kills[op.Node] = append(kills[op.Node], op.At)
			total++
		case OpRevive:
			revives[op.Node] = append(revives[op.Node], op.At)
		}
	}
	if total == 0 {
		t.Fatal("poisson churn produced no kills")
	}
	// Per node, kills and revives must alternate (a node is never killed
	// while dead) and each revive lands exactly one downtime after its
	// kill. Kill times within a node are emitted in order.
	for n, ks := range kills {
		rs := revives[n]
		if len(rs) < len(ks)-1 || len(rs) > len(ks) {
			t.Fatalf("node %d: %d kills but %d revives", n, len(ks), len(rs))
		}
		for i, kt := range ks {
			if i > 0 && rs[i-1] >= kt {
				t.Errorf("node %d killed at %v before reviving at %v", n, kt, rs[i-1])
			}
			if i < len(rs) {
				if want := kt + 20*time.Second; rs[i] != want {
					t.Errorf("node %d killed at %v revives at %v, want %v", n, kt, rs[i], want)
				}
			}
		}
	}
}

// TestWaveChurnSchedule checks massacres: Kill simultaneous victims every
// period, all distinct and alive at the time.
func TestWaveChurnSchedule(t *testing.T) {
	s := churnScenario("wave")
	sched, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	phase := sched.Phases[1]
	byTime := map[time.Duration][]int{}
	for _, op := range sched.Ops {
		if op.Kind == OpKill {
			byTime[op.At] = append(byTime[op.At], op.Node)
		}
	}
	if len(byTime) == 0 {
		t.Fatal("wave churn produced no waves")
	}
	for at, victims := range byTime {
		if (at-phase.Start)%(15*time.Second) != 0 {
			t.Errorf("wave at %v is not on a period boundary", at)
		}
		if len(victims) != 3 {
			t.Errorf("wave at %v killed %d nodes, want 3", at, len(victims))
		}
		seen := map[int]bool{}
		for _, v := range victims {
			if seen[v] {
				t.Errorf("wave at %v killed node %d twice", at, v)
			}
			seen[v] = true
		}
	}
	// Without downtime the kills are permanent: across the whole phase no
	// node may die twice.
	dead := map[int]bool{}
	for _, op := range sched.Ops {
		if op.Kind == OpKill {
			if dead[op.Node] {
				t.Errorf("node %d killed twice without a revive", op.Node)
			}
			dead[op.Node] = true
		}
	}
}

// TestCompileDeterminism requires two compilations of the same scenario to
// be structurally identical.
func TestCompileDeterminism(t *testing.T) {
	for _, model := range []string{"poisson", "wave"} {
		a, err := Compile(churnScenario(model))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(churnScenario(model))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Ops, b.Ops) {
			t.Fatalf("%s: schedules differ across compilations", model)
		}
	}
}

// TestCompileSeedSensitivity: a different seed must actually change the
// schedule (otherwise the PRNG is not wired through).
func TestCompileSeedSensitivity(t *testing.T) {
	s1 := churnScenario("poisson")
	s2 := churnScenario("poisson")
	s2.Seed = 43
	a, _ := Compile(s1)
	b, _ := Compile(s2)
	if reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestWorkloadOps checks lookup storms stay inside their phase and carry
// unique op ids.
func TestWorkloadOps(t *testing.T) {
	s := churnScenario("poisson")
	s.Phases[0].Workload = &Workload{Kind: WlLookups, Rate: 2}
	sched, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	phase := sched.Phases[0]
	ids := map[int]bool{}
	count := 0
	for _, op := range sched.Ops {
		if op.Kind != OpLookup {
			continue
		}
		count++
		if op.At < phase.Start || op.At >= phase.End {
			t.Errorf("lookup at %v outside phase [%v, %v)", op.At, phase.Start, phase.End)
		}
		if ids[op.ID] {
			t.Errorf("duplicate op id %d", op.ID)
		}
		ids[op.ID] = true
		if op.Size < 8 {
			t.Errorf("lookup payload %d too small", op.Size)
		}
	}
	if count == 0 {
		t.Fatal("no lookups generated")
	}
	if sched.Lookups != count {
		t.Errorf("Lookups = %d, counted %d", sched.Lookups, count)
	}
}

// TestPartitionEventCompiles checks fraction → side size and the op order
// invariant (sorted by phase, then time).
func TestPartitionEventCompiles(t *testing.T) {
	s := churnScenario("poisson")
	s.Phases[1].Events = []Event{
		{At: Duration(5 * time.Second), Kind: EvPartition, Fraction: 0.25},
		{At: Duration(30 * time.Second), Kind: EvHeal},
	}
	sched, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	var part, heal *Op
	for i := range sched.Ops {
		switch sched.Ops[i].Kind {
		case OpPartition:
			part = &sched.Ops[i]
		case OpHeal:
			heal = &sched.Ops[i]
		}
	}
	if part == nil || heal == nil {
		t.Fatal("partition/heal ops missing")
	}
	if part.SideA != 5 {
		t.Errorf("side A = %d, want 5 (25%% of 20)", part.SideA)
	}
	if want := sched.Phases[1].Start + 5*time.Second; part.At != want {
		t.Errorf("partition at %v, want %v", part.At, want)
	}
	if heal.At <= part.At {
		t.Error("heal before partition")
	}
	for i := 1; i < len(sched.Ops); i++ {
		a, b := sched.Ops[i-1], sched.Ops[i]
		if a.Phase > b.Phase || (a.Phase == b.Phase && a.At > b.At) {
			t.Fatalf("ops out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestValidateErrors exercises the scenario validator.
func TestValidateErrors(t *testing.T) {
	base := func() *Scenario { return churnScenario("poisson") }
	cases := []struct {
		name string
		mod  func(*Scenario)
	}{
		{"too few nodes", func(s *Scenario) { s.Nodes = 1 }},
		{"no phases", func(s *Scenario) { s.Phases = nil }},
		{"bad join", func(s *Scenario) { s.Join.Process = "teleport" }},
		{"staggered no window", func(s *Scenario) { s.Join = JoinSpec{Process: "staggered"} }},
		{"bad churn model", func(s *Scenario) { s.Phases[1].Churn.Model = "meteor" }},
		{"poisson no rate", func(s *Scenario) { s.Phases[1].Churn.Rate = 0 }},
		{"bad event kind", func(s *Scenario) {
			s.Phases[0].Events = []Event{{Kind: "frobnicate"}}
		}},
		{"event outside phase", func(s *Scenario) {
			s.Phases[0].Events = []Event{{Kind: EvHeal, At: Duration(time.Hour)}}
		}},
		{"partition fraction", func(s *Scenario) {
			s.Phases[0].Events = []Event{{Kind: EvPartition, Fraction: 1.5}}
		}},
		{"event node range", func(s *Scenario) {
			s.Phases[0].Events = []Event{{Kind: EvKill, Node: 99}}
		}},
		{"bad workload", func(s *Scenario) {
			s.Phases[0].Workload = &Workload{Kind: "mining", Rate: 1}
		}},
		{"degrade loss range", func(s *Scenario) {
			s.Phases[0].Events = []Event{{Kind: EvDegrade, Loss: 1.5}}
		}},
		{"degrade latency factor", func(s *Scenario) {
			s.Phases[0].Events = []Event{{Kind: EvDegrade, LatencyFactor: 0.5}}
		}},
		{"workload no rate", func(s *Scenario) {
			s.Phases[0].Workload = &Workload{Kind: WlLookups}
		}},
	}
	for _, c := range cases {
		s := base()
		c.mod(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
}

// TestJSONRoundTrip parses a JSON scenario with duration strings.
func TestJSONRoundTrip(t *testing.T) {
	src := `{
	  "name": "json-test",
	  "seed": 7,
	  "nodes": 10,
	  "protocol": "chord",
	  "join": {"process": "poisson", "rate": 2},
	  "settle": "45s",
	  "phases": [
	    {"name": "load", "duration": "30s",
	     "churn": {"model": "wave", "kill": 2, "period": "10s", "downtime": "8s"},
	     "events": [{"at": "5s", "kind": "partition", "fraction": 0.5},
	                {"at": "20s", "kind": "heal"}],
	     "workload": {"kind": "lookups", "rate": 1.5, "size": 32}}
	  ]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Settle.D() != 45*time.Second {
		t.Errorf("settle = %v", s.Settle.D())
	}
	if s.Phases[0].Churn.Period.D() != 10*time.Second {
		t.Errorf("period = %v", s.Phases[0].Churn.Period.D())
	}
	if s.Phases[0].Events[0].Fraction != 0.5 {
		t.Errorf("fraction = %v", s.Phases[0].Events[0].Fraction)
	}
	if _, err := Compile(s); err != nil {
		t.Fatal(err)
	}
}
