package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// A Sweep is a comparative experiment: one base scenario plus K variants
// that override parameters — seed, protocol, churn rate, workload rate,
// shard count, or whole post-fork phases. The harness runs variants whose
// settled prefix is byte-identical from one shared checkpoint (run the
// prefix once, fork K branches), which is what makes "N designs, one
// warm-up" evaluations cheap; see docs/sweeps.md for the sharing rules.
type Sweep struct {
	// Name labels the sweep in reports.
	Name string `json:"name"`
	// Base is the scenario every variant starts from. A phase marked
	// fork_point sets the fork instant; otherwise branches fork at the
	// settle boundary.
	Base Scenario `json:"base"`
	// Variants are the parameter overrides, one per sweep branch.
	Variants []SweepVariant `json:"variants"`
}

// SweepVariant overrides base-scenario parameters for one branch. Zero
// values inherit from the base. Seed and Protocol overrides change the
// shared prefix itself, so such variants run cold (no prefix sharing);
// ChurnRate, WorkloadRate, and Phases apply only to post-fork phases and
// keep the prefix shareable. Shards is an execution parameter — it never
// changes results, but a variant pinned to a different shard count cannot
// share a checkpoint (snapshots are per-shard).
type SweepVariant struct {
	// Name labels the variant; defaults to "v<n>".
	Name string `json:"name,omitempty"`
	// Seed overrides the scenario seed (0 inherits).
	Seed int64 `json:"seed,omitempty"`
	// Protocol overrides the protocol stack ("" inherits).
	Protocol string `json:"protocol,omitempty"`
	// Shards pins this variant's event-loop shard count (0 = CLI default).
	Shards int `json:"shards,omitempty"`
	// ChurnRate overrides the Poisson churn rate of every post-fork phase
	// that has Poisson churn (0 inherits).
	ChurnRate float64 `json:"churn_rate,omitempty"`
	// WorkloadRate overrides the workload rate of every post-fork phase
	// that has a workload (0 inherits).
	WorkloadRate float64 `json:"workload_rate,omitempty"`
	// Phases, when non-empty, replaces the post-fork phases entirely.
	Phases []Phase `json:"phases,omitempty"`
}

// LoadSweep reads and validates a JSON sweep file.
func LoadSweep(path string) (*Sweep, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSweep(b)
}

// ParseSweep decodes and validates a JSON sweep.
func ParseSweep(b []byte) (*Sweep, error) {
	var sw Sweep
	if err := json.Unmarshal(b, &sw); err != nil {
		return nil, fmt.Errorf("sweep: %v", err)
	}
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	return &sw, nil
}

// Validate checks the sweep description: the base must be a valid scenario
// and every variant must resolve to one.
func (sw *Sweep) Validate() error {
	if len(sw.Variants) == 0 {
		return fmt.Errorf("sweep %q: no variants", sw.Name)
	}
	if err := sw.Base.Validate(); err != nil {
		return fmt.Errorf("sweep %q base: %w", sw.Name, err)
	}
	_, err := sw.Resolve()
	return err
}

// ResolvedVariant is one variant with its overrides applied to the base.
type ResolvedVariant struct {
	Name     string
	Shards   int
	Scenario *Scenario
}

// Resolve applies every variant's overrides to a deep copy of the base and
// validates the results.
func (sw *Sweep) Resolve() ([]ResolvedVariant, error) {
	fp := sw.Base.ForkPhase()
	out := make([]ResolvedVariant, 0, len(sw.Variants))
	for i, v := range sw.Variants {
		name := v.Name
		if name == "" {
			name = fmt.Sprintf("v%d", i+1)
		}
		s, err := cloneScenario(&sw.Base)
		if err != nil {
			return nil, fmt.Errorf("sweep %q: %v", sw.Name, err)
		}
		s.Name = name
		if v.Seed != 0 {
			s.Seed = v.Seed
		}
		if v.Protocol != "" {
			s.Protocol = v.Protocol
		}
		if len(v.Phases) > 0 {
			s.Phases = append(append([]Phase{}, s.Phases[:fp+1]...), v.Phases...)
		}
		for pi := fp + 1; pi < len(s.Phases); pi++ {
			p := &s.Phases[pi]
			if v.ChurnRate > 0 && p.Churn != nil && p.Churn.Model == "poisson" {
				p.Churn.Rate = v.ChurnRate
			}
			if v.WorkloadRate > 0 && p.Workload != nil {
				p.Workload.Rate = v.WorkloadRate
			}
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("sweep %q variant %q: %w", sw.Name, name, err)
		}
		out = append(out, ResolvedVariant{Name: name, Shards: v.Shards, Scenario: s})
	}
	return out, nil
}

// cloneScenario deep-copies a scenario through its JSON form.
func cloneScenario(s *Scenario) (*Scenario, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	var out Scenario
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SweepVariantResult is one variant's outcome.
type SweepVariantResult struct {
	Name     string
	Protocol string
	Shards   int
	// SharedPrefix reports whether the variant branched from a shared
	// checkpoint (false: it ran cold, its prefix being unique).
	SharedPrefix bool
	// BranchWall is the wall clock this variant consumed after the shared
	// prefix (the full run for a cold variant). Wall times are the only
	// nondeterministic part of a sweep result.
	BranchWall time.Duration
	Report     *Report
}

// SweepReport is the structured result of an executed sweep.
type SweepReport struct {
	Name string
	// ForkAt is the virtual fork instant of the shared-prefix groups (zero
	// when every variant ran cold).
	ForkAt time.Duration
	// Groups counts distinct prefixes across the variants.
	Groups int
	// PrefixWall is the wall clock spent simulating shared prefixes (once
	// per group); ColdPrefixWall is what the same prefixes would have cost
	// cold (each group's prefix re-simulated once per member); TotalWall
	// covers the whole sweep.
	PrefixWall, ColdPrefixWall, TotalWall time.Duration
	Results                               []SweepVariantResult
}

// TimingSummary renders the nondeterministic wall-clock accounting: how much
// real time the shared prefixes and each branch took, and what the same
// variants would have cost cold (prefix re-simulated per variant).
func (r *SweepReport) TimingSummary() string {
	var b strings.Builder
	shared := 0
	var branchSum time.Duration
	for _, vr := range r.Results {
		if vr.SharedPrefix {
			shared++
			branchSum += vr.BranchWall
		}
	}
	fmt.Fprintf(&b, "# timing: total %s", r.TotalWall.Round(time.Millisecond))
	if shared > 0 {
		fmt.Fprintf(&b, " (shared prefixes %s + branches %s)", r.PrefixWall.Round(time.Millisecond), branchSum.Round(time.Millisecond))
		est := r.ColdPrefixWall + branchSum
		fmt.Fprintf(&b, "; %d cold runs would re-simulate their prefixes (~%s)",
			shared, est.Round(time.Millisecond))
	}
	b.WriteString("\n")
	for _, vr := range r.Results {
		mode := "cold"
		if vr.SharedPrefix {
			mode = "forked"
		}
		fmt.Fprintf(&b, "#   %-16s %-7s %s\n", vr.Name, mode, vr.BranchWall.Round(time.Millisecond))
	}
	return b.String()
}
