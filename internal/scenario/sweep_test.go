package scenario

import (
	"strings"
	"testing"
	"time"
)

func sweepJSON() []byte {
	return []byte(`{
  "name": "test-sweep",
  "base": {
    "name": "base", "seed": 7, "nodes": 8, "protocol": "chord",
    "join": {"process": "immediate"},
    "settle": "20s",
    "phases": [
      {"name": "churn", "duration": "10s",
       "churn": {"model": "poisson", "rate": 0.1},
       "workload": {"kind": "lookups", "rate": 2}}
    ]
  },
  "variants": [
    {"name": "calm", "churn_rate": 0.05},
    {"protocol": "pastry"},
    {"name": "fast", "workload_rate": 9, "seed": 11}
  ]
}`)
}

func TestParseSweep(t *testing.T) {
	sw, err := ParseSweep(sweepJSON())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := sw.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("want 3 variants, got %d", len(vs))
	}
	if vs[0].Name != "calm" || vs[0].Scenario.Phases[0].Churn.Rate != 0.05 {
		t.Fatalf("churn override lost: %+v", vs[0])
	}
	if vs[1].Name != "v2" || vs[1].Scenario.Protocol != "pastry" {
		t.Fatalf("default name / protocol override wrong: %+v", vs[1])
	}
	if vs[2].Scenario.Seed != 11 || vs[2].Scenario.Phases[0].Workload.Rate != 9 {
		t.Fatalf("seed/workload override lost: %+v", vs[2].Scenario)
	}
	// Overrides must not leak into the base or across variants.
	if sw.Base.Phases[0].Churn.Rate != 0.1 || vs[1].Scenario.Phases[0].Churn.Rate != 0.1 {
		t.Fatal("variant override mutated shared state")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := ParseSweep([]byte(`{"name":"x","base":{"nodes":8,"protocol":"chord","phases":[{"name":"p","duration":"5s"}]},"variants":[]}`)); err == nil {
		t.Fatal("empty variant list must fail validation")
	}
	bad := strings.Replace(string(sweepJSON()), `"rate": 0.1`, `"rate": -1`, 1)
	if _, err := ParseSweep([]byte(bad)); err == nil {
		t.Fatal("invalid base must fail validation")
	}
}

func TestForkPointValidation(t *testing.T) {
	s := &Scenario{
		Nodes: 4, Protocol: "chord",
		Phases: []Phase{
			{Name: "a", Duration: Duration(time.Second), ForkPoint: true},
			{Name: "b", Duration: Duration(time.Second), ForkPoint: true},
		},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("two fork points must fail validation")
	}
	s.Phases[1].ForkPoint = false
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ForkPhase() != 0 {
		t.Fatalf("ForkPhase = %d, want 0", s.ForkPhase())
	}
	s.Phases[0].ForkPoint = false
	if s.ForkPhase() != -1 {
		t.Fatalf("ForkPhase without marker = %d, want -1", s.ForkPhase())
	}
}

// TestVariantPhaseReplacement checks phases after the fork marker are
// replaced while the shared prefix phases stay.
func TestVariantPhaseReplacement(t *testing.T) {
	sw, err := ParseSweep(sweepJSON())
	if err != nil {
		t.Fatal(err)
	}
	sw.Base.Phases[0].ForkPoint = true
	sw.Base.Phases = append(sw.Base.Phases, Phase{
		Name: "tail", Duration: Duration(5 * time.Second),
	})
	sw.Variants = []SweepVariant{{
		Name: "swap",
		Phases: []Phase{
			{Name: "x", Duration: Duration(2 * time.Second)},
			{Name: "y", Duration: Duration(2 * time.Second)},
		},
	}}
	vs, err := sw.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	got := vs[0].Scenario.Phases
	if len(got) != 3 || got[0].Name != "churn" || got[1].Name != "x" || got[2].Name != "y" {
		t.Fatalf("phase replacement wrong: %+v", got)
	}
}
