package scenario

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// WallExecutor receives a schedule's operations and boundaries as they fire
// in wall-clock time. Callbacks run sequentially on the runner's goroutine,
// in deterministic order; a slow callback delays everything behind it, so
// executors should hand long work off (the deploy controller's process
// launches do).
type WallExecutor interface {
	// Apply executes one schedule operation.
	Apply(op Op)
	// SettleEnd marks the settle boundary: phase 0 starts now and baseline
	// counter snapshots should be taken.
	SettleEnd()
	// PhaseEnd marks the end of phase pi: snapshot its counters.
	PhaseEnd(pi int)
}

// WallRunner executes a compiled schedule against the wall clock: the
// second execution backend beside the virtual-time scenario engine. The
// schedule itself is substrate-neutral — operations with absolute virtual
// offsets — so the same compiled scenario (same seed, same ops, same churn
// victims, same lookup keys) that drives an emulated run drives a live
// deployment, just on real time (docs/deploy.md: scenario-to-wall-clock
// mapping).
//
// Speed divides every offset: at Speed 2 a "10s" phase lasts five wall
// seconds. Speeds above 1 compress the experiment timeline but NOT
// protocol timers, which tick in real time inside each node — keep the
// compression modest (≤5) or convergence-dependent phases lose meaning.
type WallRunner struct {
	sched *Schedule
	speed float64
	exec  WallExecutor
}

// NewWallRunner builds a runner. Speed <= 0 selects 1 (real time).
func NewWallRunner(sched *Schedule, speed float64, exec WallExecutor) *WallRunner {
	if speed <= 0 {
		speed = 1
	}
	return &WallRunner{sched: sched, speed: speed, exec: exec}
}

// wallEvent is one timeline entry: an op or a boundary marker.
type wallEvent struct {
	at    time.Duration
	class int // 0 = op, 1 = settle marker, 2 = phase end
	seq   int // emission order, the tie-break
	op    Op
	phase int
}

// timeline merges ops and boundary markers into one At-ordered sequence.
// At equal instants ops fire before boundary markers, and ops keep the
// schedule's (phase, time, emission) order — exactly how the virtual-time
// engine interleaves them (ops schedule before each phase's snapshot).
func (r *WallRunner) timeline() []wallEvent {
	evs := make([]wallEvent, 0, len(r.sched.Ops)+len(r.sched.Phases)+1)
	for i, op := range r.sched.Ops {
		evs = append(evs, wallEvent{at: op.At, class: 0, seq: i, op: op})
	}
	evs = append(evs, wallEvent{at: r.sched.Settle, class: 1, seq: len(evs)})
	for pi, cp := range r.sched.Phases {
		evs = append(evs, wallEvent{at: cp.End, class: 2, seq: len(evs), phase: pi})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].class < evs[j].class
	})
	return evs
}

// Run executes the schedule to its Total boundary (including the drain
// window) or until ctx is cancelled. The wall clock of the whole run is
// roughly Total/Speed.
func (r *WallRunner) Run(ctx context.Context) error {
	start := time.Now()
	for _, ev := range r.timeline() {
		if err := r.sleepUntil(ctx, start, ev.at); err != nil {
			return err
		}
		switch ev.class {
		case 0:
			r.exec.Apply(ev.op)
		case 1:
			r.exec.SettleEnd()
		case 2:
			r.exec.PhaseEnd(ev.phase)
		}
	}
	return r.sleepUntil(ctx, start, r.sched.Total)
}

// sleepUntil waits until virtual offset at (scaled by speed) has elapsed
// since start.
func (r *WallRunner) sleepUntil(ctx context.Context, start time.Time, at time.Duration) error {
	target := time.Duration(float64(at) / r.speed)
	wait := target - time.Since(start)
	if wait <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("scenario: wall-clock run aborted at %s: %w", at, ctx.Err())
	}
}
