package scenario

import (
	"context"
	"fmt"
	"testing"
	"time"
)

type recordingExec struct {
	events []string
}

func (r *recordingExec) Apply(op Op) {
	r.events = append(r.events, fmt.Sprintf("op:%s@%s", op.Kind, op.At))
}
func (r *recordingExec) SettleEnd()      { r.events = append(r.events, "settle") }
func (r *recordingExec) PhaseEnd(pi int) { r.events = append(r.events, fmt.Sprintf("phase:%d", pi)) }

// TestWallRunnerOrder compresses a small scenario heavily and checks the
// wall-clock backend fires ops and boundaries in the virtual engine's
// order: setup ops, settle, each phase's ops then its end marker.
func TestWallRunnerOrder(t *testing.T) {
	s := &Scenario{
		Name:     "wall-order",
		Seed:     5,
		Nodes:    3,
		Protocol: "chord",
		Settle:   Duration(2 * time.Second),
		Drain:    Duration(500 * time.Millisecond),
		Phases: []Phase{
			{
				Name:     "one",
				Duration: Duration(2 * time.Second),
				Events:   []Event{{At: Duration(time.Second), Kind: EvKill, Node: 1}},
			},
			{
				Name:     "two",
				Duration: Duration(2 * time.Second),
				Events:   []Event{{At: Duration(time.Second), Kind: EvRevive, Node: 1}},
			},
		},
	}
	sched, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingExec{}
	start := time.Now()
	if err := NewWallRunner(sched, 50, rec).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 6.5 virtual seconds at 50x is 130ms; the runner must compress.
	if elapsed > 2*time.Second {
		t.Fatalf("50x run took %v", elapsed)
	}
	want := []string{
		"op:spawn@0s", "op:spawn@0s", "op:spawn@0s",
		"settle",
		"op:kill@3s", "phase:0",
		"op:revive@5s", "phase:1",
	}
	if len(rec.events) != len(want) {
		t.Fatalf("events = %v, want %v", rec.events, want)
	}
	for i := range want {
		if rec.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, rec.events[i], want[i], rec.events)
		}
	}
}

// TestWallRunnerCancel: a cancelled context aborts the run promptly.
func TestWallRunnerCancel(t *testing.T) {
	s := &Scenario{
		Name: "wall-cancel", Seed: 5, Nodes: 2, Protocol: "chord",
		Settle: Duration(time.Hour),
		Phases: []Phase{{Name: "p", Duration: Duration(time.Hour)}},
	}
	sched, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	start := time.Now()
	if err := NewWallRunner(sched, 1, &recordingExec{}).Run(ctx); err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not abort promptly")
	}
}
