package simnet

import (
	"fmt"
	"sort"
	"strings"

	"macedon/internal/overlay"
	"macedon/internal/topology"
)

// Network dynamics: the runtime events a scenario can inject — link
// failures, link quality degradation, and network partitions. These are the
// conditions the paper's §1 names as the hard part of networked systems and
// the ones ModelNet scripts injected by rewriting pipe tables mid-run.

// Degradation worsens one pipe: latency is multiplied, and an extra
// independent loss process drops datagrams at the pipe entrance.
type Degradation struct {
	LatencyFactor float64 // ≥ 1; 0 means "leave latency alone"
	LossRate      float64 // extra per-hop drop probability in [0, 1)
}

// SetLinkDown fails (or restores) the bidirectional pipe containing the
// directed link l. While a pipe is down, datagrams entering it are dropped
// and new paths route around it: the cached path set and the routing oracle
// are invalidated, exactly what a static paths map cannot express.
func (n *Network) SetLinkDown(l topology.LinkID, down bool) {
	if down {
		n.blocked[l] = true
		n.blocked[l^1] = true
	} else {
		delete(n.blocked, l)
		delete(n.blocked, l^1)
	}
	n.invalidatePaths()
}

// LinkDown reports whether a directed link is currently failed.
func (n *Network) LinkDown(l topology.LinkID) bool { return n.blocked[l] }

// DegradeLink applies a quality degradation to both directions of the pipe
// containing l. Routing is unaffected (paths still traverse the pipe); only
// the emulated service worsens.
func (n *Network) DegradeLink(l topology.LinkID, d Degradation) {
	n.degraded[l] = d
	n.degraded[l^1] = d
}

// RestoreLink clears any degradation on the pipe containing l.
func (n *Network) RestoreLink(l topology.LinkID) {
	delete(n.degraded, l)
	delete(n.degraded, l^1)
}

// SetNodeAccessDown fails the access pipe of a client: the node stays up
// but is unreachable — unlike SetDown, routing learns the cut, and any
// datagram that would enter the pipe after the failure is dropped (bits
// already serialized onto the wire still arrive, as on a real cable).
func (n *Network) SetNodeAccessDown(addr overlay.Address, down bool) error {
	up, _, ok := n.graph.AccessLinks(addr)
	if !ok {
		return fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	n.SetLinkDown(up, down)
	return nil
}

// DegradeNodeAccess degrades the access pipe of a client (both directions).
func (n *Network) DegradeNodeAccess(addr overlay.Address, d Degradation) error {
	up, _, ok := n.graph.AccessLinks(addr)
	if !ok {
		return fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	n.DegradeLink(up, d)
	return nil
}

// RestoreNodeAccess clears degradation on a client's access pipe.
func (n *Network) RestoreNodeAccess(addr overlay.Address) error {
	up, _, ok := n.graph.AccessLinks(addr)
	if !ok {
		return fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	n.RestoreLink(up)
	return nil
}

// SetPartition installs a network partition: clients whose side numbers
// differ cannot exchange datagrams (dropped at origin, and in-flight
// datagrams are dropped on arrival). Clients absent from the map are
// unrestricted. The map is copied.
func (n *Network) SetPartition(sides map[overlay.Address]int) {
	n.sides = make(map[overlay.Address]int, len(sides))
	for a, s := range sides {
		n.sides[a] = s
	}
}

// ClearPartition heals any partition.
func (n *Network) ClearPartition() { n.sides = nil }

// Partitioned reports whether a partition separates two clients.
func (n *Network) Partitioned(a, b overlay.Address) bool {
	if len(n.sides) == 0 {
		return false
	}
	sa, oka := n.sides[a]
	sb, okb := n.sides[b]
	return oka && okb && sa != sb
}

// Detach clears the receive handler of an address's endpoint so a future
// node can attach there: the revive half of kill/revive churn. The old
// handler's owner must already be stopped.
func (n *Network) Detach(addr overlay.Address) error {
	ep, ok := n.eps[addr]
	if !ok {
		return fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	ep.recv = nil
	return nil
}

// invalidatePaths rebuilds the forwarding oracle around the current failed
// set and discards every cached path. Metrics oracles (Routes()) keep using
// the failure-free topology: stretch denominators stay stable.
//
// Oracles are cached per failure set in a small LRU: a scenario cycling
// through link failures (fail, heal, fail again) reuses the oracle — and
// its lazily built shortest-path trees — instead of rebuilding, while the
// bound keeps many distinct failure sets from accumulating tree memory.
func (n *Network) invalidatePaths() {
	for i := range n.pathsBy {
		n.pathsBy[i].m = make(map[pathKey][]topology.LinkID)
	}
	if len(n.blocked) == 0 {
		n.live = n.routes
		return
	}
	key := blockedKey(n.blocked)
	if r, ok := n.oracles.get(key); ok {
		n.live = r
		return
	}
	blocked := make(map[topology.LinkID]bool, len(n.blocked))
	for l := range n.blocked {
		blocked[l] = true
	}
	r := topology.NewRoutesExcluding(n.graph, func(l topology.LinkID) bool { return blocked[l] })
	r.SetTreeBudget(n.cfg.OracleTreeBudget)
	if n.oracles.put(key, r, n.cfg.OracleCacheSize) {
		n.oracleEvictions++
	}
	n.live = r
}

// blockedKey canonicalizes a failed-link set. Link ids are small ints; the
// sorted ids joined with commas make a stable map key.
func blockedKey(blocked map[topology.LinkID]bool) string {
	ids := make([]int, 0, len(blocked))
	for l := range blocked {
		ids = append(ids, int(l))
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// oracleCache is a tiny LRU of failure-set routing oracles.
type oracleCache struct {
	keys   []string
	values []*topology.Routes
}

func (c *oracleCache) get(key string) (*topology.Routes, bool) {
	for i, k := range c.keys {
		if k == key {
			// Move to front.
			v := c.values[i]
			copy(c.keys[1:i+1], c.keys[:i])
			copy(c.values[1:i+1], c.values[:i])
			c.keys[0], c.values[0] = key, v
			return v, true
		}
	}
	return nil, false
}

// put inserts at the front and reports whether an entry was evicted.
func (c *oracleCache) put(key string, r *topology.Routes, cap int) bool {
	c.keys = append([]string{key}, c.keys...)
	c.values = append([]*topology.Routes{r}, c.values...)
	if len(c.keys) > cap {
		c.keys = c.keys[:cap]
		c.values = c.values[:cap]
		return true
	}
	return false
}

// OracleCacheLen returns how many failure-set oracles are retained.
func (n *Network) OracleCacheLen() int { return len(n.oracles.keys) }

// OracleEvictions counts failure-set oracles discarded by the LRU bound.
func (n *Network) OracleEvictions() uint64 { return n.oracleEvictions }
