package simnet

import (
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/topology"
)

// diamondNet builds two clients joined by two disjoint router paths: a fast
// one (r1-r2-r4) and a slow one (r1-r3-r4), so routing has an alternative
// when a link fails. Returns the network and the fast path's middle link.
func diamondNet(t *testing.T) (*Network, *Scheduler, topology.LinkID) {
	t.Helper()
	g := topology.NewGraph()
	r1, r2, r3, r4 := g.AddRouter(), g.AddRouter(), g.AddRouter(), g.AddRouter()
	bw := int64(10_000_000)
	q := 64 << 10
	fast, _ := g.AddLink(r1, r2, 2*time.Millisecond, bw, q)
	g.AddLink(r2, r4, 2*time.Millisecond, bw, q)
	g.AddLink(r1, r3, 20*time.Millisecond, bw, q)
	g.AddLink(r3, r4, 20*time.Millisecond, bw, q)
	access := topology.AccessLink{Latency: time.Millisecond, Bandwidth: bw, QueueBytes: q}
	g.AttachClient(1, r1, access)
	g.AttachClient(2, r4, access)
	s := NewScheduler(11)
	return New(s, g, Config{}), s, fast
}

// TestLinkDownReroutes fails the fast path and expects traffic to arrive
// via the slow one — which requires invalidating the cached path.
func TestLinkDownReroutes(t *testing.T) {
	n, s, fast := diamondNet(t)
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	var lastAt time.Duration
	got := 0
	e2.SetRecv(func(src overlay.Address, p []byte) {
		got++
		lastAt = s.Elapsed()
	})

	// Baseline: the fast path carries the packet in ~6 ms.
	if err := e1.Send(2, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	s.RunUntilIdle()
	if got != 1 {
		t.Fatalf("baseline not delivered")
	}
	fastLatency := lastAt
	if fastLatency > 10*time.Millisecond {
		t.Fatalf("baseline took %v, expected the fast path", fastLatency)
	}

	// Fail the fast path: the cached path must be discarded and the slow
	// path used.
	n.SetLinkDown(fast, true)
	start := s.Elapsed()
	if err := e1.Send(2, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	s.RunUntilIdle()
	if got != 2 {
		t.Fatalf("not delivered after reroute (stats %+v)", n.Stats())
	}
	if d := lastAt - start; d < 40*time.Millisecond {
		t.Fatalf("rerouted delivery took %v, expected the slow path (>40ms)", d)
	}

	// Restore: back on the fast path.
	n.SetLinkDown(fast, false)
	start = s.Elapsed()
	if err := e1.Send(2, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	s.RunUntilIdle()
	if got != 3 {
		t.Fatal("not delivered after restore")
	}
	if d := lastAt - start; d > 10*time.Millisecond {
		t.Fatalf("restored delivery took %v, expected the fast path again", d)
	}
}

// TestAccessLinkDownSeversNode fails a node's access pipe: no route
// survives, sends drop silently and are counted.
func TestAccessLinkDownSeversNode(t *testing.T) {
	n, s, _ := diamondNet(t)
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	got := 0
	e2.SetRecv(func(overlay.Address, []byte) { got++ })

	if err := n.SetNodeAccessDown(2, true); err != nil {
		t.Fatal(err)
	}
	if err := e1.Send(2, make([]byte, 50)); err != nil {
		t.Fatalf("severed send must drop silently, got error %v", err)
	}
	s.RunUntilIdle()
	if got != 0 {
		t.Fatal("delivered across a failed access link")
	}
	if st := n.Stats(); st.NoRouteDrops != 1 {
		t.Fatalf("NoRouteDrops = %d, want 1 (stats %+v)", st.NoRouteDrops, st)
	}

	if err := n.SetNodeAccessDown(2, false); err != nil {
		t.Fatal(err)
	}
	_ = e1.Send(2, make([]byte, 50))
	s.RunUntilIdle()
	if got != 1 {
		t.Fatal("not delivered after access link restored")
	}
}

// TestPartitionAppliesAndHeals checks cross-side traffic drops (counted),
// same-side traffic flows, and healing restores connectivity.
func TestPartitionAppliesAndHeals(t *testing.T) {
	g := topology.NewGraph()
	r := g.AddRouter()
	access := topology.AccessLink{Latency: time.Millisecond, Bandwidth: 10_000_000, QueueBytes: 64 << 10}
	g.AttachClient(1, r, access)
	g.AttachClient(2, r, access)
	g.AttachClient(3, r, access)
	s := NewScheduler(5)
	n := New(s, g, Config{})
	recv := map[overlay.Address]int{}
	for _, a := range []overlay.Address{1, 2, 3} {
		ep, _ := n.Endpoint(a)
		addr := a
		ep.SetRecv(func(overlay.Address, []byte) { recv[addr]++ })
	}
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)

	n.SetPartition(map[overlay.Address]int{1: 1, 2: 1, 3: 2})
	if n.Partitioned(1, 3) != true || n.Partitioned(1, 2) != false {
		t.Fatal("Partitioned predicate wrong")
	}
	_ = e1.Send(3, make([]byte, 20)) // cross-side: dropped
	_ = e1.Send(2, make([]byte, 20)) // same side: delivered
	_ = e2.Send(1, make([]byte, 20)) // same side: delivered
	s.RunUntilIdle()
	if recv[3] != 0 {
		t.Fatal("partition leaked a datagram")
	}
	if recv[2] != 1 || recv[1] != 1 {
		t.Fatalf("same-side traffic lost: %v", recv)
	}
	if st := n.Stats(); st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}

	n.ClearPartition()
	_ = e1.Send(3, make([]byte, 20))
	s.RunUntilIdle()
	if recv[3] != 1 {
		t.Fatal("heal did not restore connectivity")
	}
}

// TestPartitionDropsInFlight: a datagram crossing the cut when the
// partition forms is dropped on arrival.
func TestPartitionDropsInFlight(t *testing.T) {
	access := topology.AccessLink{Latency: 5 * time.Millisecond, Bandwidth: 10_000_000, QueueBytes: 64 << 10}
	n, s := twoNodeNet(t, access, Config{})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	got := 0
	e2.SetRecv(func(overlay.Address, []byte) { got++ })
	_ = e1.Send(2, make([]byte, 100))
	// Partition forms while the packet is mid-path.
	s.RunFor(time.Millisecond)
	n.SetPartition(map[overlay.Address]int{1: 1, 2: 2})
	s.RunUntilIdle()
	if got != 0 {
		t.Fatal("in-flight datagram crossed a fresh partition")
	}
	if st := n.Stats(); st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}
}

// TestDegradeLink checks the latency multiplier and extra loss process.
func TestDegradeLink(t *testing.T) {
	access := topology.AccessLink{Latency: time.Millisecond, Bandwidth: 10_000_000, QueueBytes: 64 << 10}
	n, s := twoNodeNet(t, access, Config{})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	var at time.Duration
	got := 0
	e2.SetRecv(func(overlay.Address, []byte) { got++; at = s.Elapsed() })

	_ = e1.Send(2, make([]byte, 100))
	s.RunUntilIdle()
	base := at

	// 10x latency on node 1's access pipe.
	if err := n.DegradeNodeAccess(1, Degradation{LatencyFactor: 10}); err != nil {
		t.Fatal(err)
	}
	start := s.Elapsed()
	_ = e1.Send(2, make([]byte, 100))
	s.RunUntilIdle()
	if got != 2 {
		t.Fatal("degraded packet lost")
	}
	slowed := at - start
	if slowed <= base {
		t.Fatalf("degradation did not slow delivery: %v vs %v", slowed, base)
	}

	// Total loss drops everything entering the pipe.
	if err := n.DegradeNodeAccess(1, Degradation{LossRate: 0.999999999}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_ = e1.Send(2, make([]byte, 100))
	}
	s.RunUntilIdle()
	if got != 2 {
		t.Fatalf("lossy pipe still delivered (%d)", got)
	}
	if st := n.Stats(); st.DegradeLoss == 0 {
		t.Fatal("DegradeLoss not counted")
	}

	if err := n.RestoreNodeAccess(1); err != nil {
		t.Fatal(err)
	}
	_ = e1.Send(2, make([]byte, 100))
	s.RunUntilIdle()
	if got != 3 {
		t.Fatal("restore did not clear degradation")
	}
}

// TestDetachAllowsReattach: after Detach a fresh receive handler can be
// installed, the revive path of kill/revive churn.
func TestDetachAllowsReattach(t *testing.T) {
	access := topology.AccessLink{Latency: time.Millisecond, Bandwidth: 10_000_000, QueueBytes: 64 << 10}
	n, s := twoNodeNet(t, access, Config{})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	first, second := 0, 0
	e2.SetRecv(func(overlay.Address, []byte) { first++ })
	_ = e1.Send(2, make([]byte, 10))
	s.RunUntilIdle()
	if err := n.Detach(2); err != nil {
		t.Fatal(err)
	}
	e2.SetRecv(func(overlay.Address, []byte) { second++ })
	_ = e1.Send(2, make([]byte, 10))
	s.RunUntilIdle()
	if first != 1 || second != 1 {
		t.Fatalf("handlers saw %d/%d deliveries, want 1/1", first, second)
	}
}
